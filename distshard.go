package congress

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/estimate"
	"github.com/approxdb/congress/internal/metrics"
	"github.com/approxdb/congress/internal/shard"
	"github.com/approxdb/congress/pkg/client"
)

// This file is the distributed half of sharding: a Coordinator that
// fronts K congressd shard *processes* the way ShardedWarehouse fronts
// K in-process warehouses. Each shard process owns a durable partition
// of every table (its own -data-dir, WAL and snapshots) plus the
// congressional synopsis over that partition; the coordinator routes
// inserts by the finest grouping key through the same shard.Router and
// answers estimates by fanning the partials scan out over HTTP
// (/v1/estimate/partials), merging with estimate.MergePartials, and
// taking the confidence interval exactly once with estimate.Finalize —
// per-shard half-widths are never summed. With finest-key routing the
// distributed answer is numerically identical to a single warehouse
// over the same strata, which the differential tests pin to 1e-9.

// ErrShardUnavailable marks a scatter-gather leg that failed terminally
// at the transport or availability layer after exhausting its retries:
// the shard process is down, unreachable, or persistently shedding. A
// coordinator never answers from the surviving shards alone — a merged
// partial answer would silently drop every group homed on the missing
// shard — so the whole query fails with this typed error.
var ErrShardUnavailable = errors.New("congress: shard unavailable")

// ShardBackend is one scatter-gather leg: anything that can run the
// partials scan for its slice of a table. In-process shard warehouses
// and RemoteShard (a congressd process reached over HTTP) both satisfy
// it, which is what lets ShardedWarehouse and Coordinator share the
// fan-out/merge machinery.
type ShardBackend interface {
	EstimatePartials(ctx context.Context, table string, grouping []string, aggCol string, opts PartialsOptions) ([]GroupPartial, error)
}

// localShard adapts an in-process *Warehouse to ShardBackend.
type localShard struct{ w *Warehouse }

func (s localShard) EstimatePartials(ctx context.Context, table string, grouping []string, aggCol string, opts PartialsOptions) ([]GroupPartial, error) {
	return s.w.EstimatePartialsOpts(ctx, table, grouping, aggCol, opts)
}

// scatterPartials fans the partials scan across every backend with
// cancel-on-first-terminal-failure, recording per-leg latency and
// errors in tel. Legs that report ErrNoSynopsis contribute nothing (the
// shard held no rows of the table at build time); emptyLegs counts them
// so callers can distinguish "some shards skipped" from "no shard has
// this synopsis at all".
func scatterPartials(ctx context.Context, tel *shard.Telemetry, backends []ShardBackend, table string, grouping []string, aggCol string, opts PartialsOptions) (parts [][]estimate.GroupPartial, emptyLegs int, err error) {
	var empty atomic.Int32
	parts, err = shard.Fanout(ctx, len(backends), func(ctx context.Context, i int) ([]estimate.GroupPartial, error) {
		start := time.Now()
		p, err := backends[i].EstimatePartials(ctx, table, grouping, aggCol, opts)
		if err != nil {
			if errors.Is(err, ErrNoSynopsis) {
				empty.Add(1)
				return nil, nil
			}
			tel.FanoutError(i)
			return nil, err
		}
		tel.ObserveFanout(i, time.Since(start))
		return p, nil
	})
	return parts, int(empty.Load()), err
}

// CoordinatorOptions tunes the coordinator's per-leg failure handling.
// The zero value of every field has a sensible default.
type CoordinatorOptions struct {
	// LegTimeout bounds each fan-out attempt against one shard (also
	// forwarded as the shard-side timeout_ms). Default 10s.
	LegTimeout time.Duration
	// Retries is how many extra attempts a transiently failing partials
	// leg gets (transport errors, 429/503/5xx) before the query fails
	// with ErrShardUnavailable. Default 2; negative means none.
	Retries int
	// MaxBackoff caps the exponential retry backoff. Default 2s.
	MaxBackoff time.Duration
	// HTTPClient substitutes the transport for every shard client
	// (tests, custom TLS).
	HTTPClient *http.Client
}

func (o *CoordinatorOptions) withDefaults() {
	if o.LegTimeout <= 0 {
		o.LegTimeout = 10 * time.Second
	}
	switch {
	case o.Retries == 0:
		o.Retries = 2
	case o.Retries < 0:
		o.Retries = 0
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
}

// RemoteShard is one shard process seen from the coordinator: a
// pkg/client handle plus the retry policy for its scatter-gather legs.
// It satisfies ShardBackend, so the merge path cannot tell a remote
// shard from an in-process one.
type RemoteShard struct {
	ord        int
	endpoint   string
	c          *client.Client
	tel        *shard.Telemetry
	legTimeout time.Duration
	retries    int
	maxBackoff time.Duration
}

// Endpoint returns the shard process's base URL.
func (rs *RemoteShard) Endpoint() string { return rs.endpoint }

// Client returns the underlying API client (diagnostics, tests).
func (rs *RemoteShard) Client() *client.Client { return rs.c }

// mapShardError classifies one leg failure: terminal errors are mapped
// onto the package's typed sentinels (so errors.Is classification works
// across the process boundary exactly as in-process), transient ones
// (transport failures, shedding, 5xx) report terminal=false and are
// retried by the caller.
func mapShardError(err error) (mapped error, terminal bool) {
	var ae *client.APIError
	if !errors.As(err, &ae) {
		return err, false // transport-level failure: the process may come back
	}
	switch ae.Code {
	case "bad_query", "bad_request":
		return fmt.Errorf("%w: %s", ErrBadQuery, ae.Message), true
	case "no_synopsis":
		return fmt.Errorf("%w: %s", ErrNoSynopsis, ae.Message), true
	case "unknown_table":
		return fmt.Errorf("%w: %s", ErrUnknownTable, ae.Message), true
	}
	if ae.Status == http.StatusTooManyRequests ||
		ae.Status == http.StatusServiceUnavailable || ae.Status >= 500 {
		return err, false
	}
	return err, true // remaining 4xx: retrying the same request cannot help
}

// EstimatePartials runs the partials scan on the remote shard with
// per-attempt timeouts and retry-with-backoff on transient failures,
// honoring the shard's Retry-After hint when it sheds. Terminal API
// errors map onto the typed sentinels; exhausted retries wrap
// ErrShardUnavailable with the shard ordinal and endpoint.
func (rs *RemoteShard) EstimatePartials(ctx context.Context, table string, grouping []string, aggCol string, opts PartialsOptions) ([]GroupPartial, error) {
	req := client.PartialsRequest{
		Table:     table,
		GroupBy:   grouping,
		Column:    aggCol,
		NoHybrid:  opts.NoHybrid,
		TimeoutMS: rs.legTimeout.Milliseconds(),
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt <= rs.retries; attempt++ {
		if attempt > 0 {
			rs.tel.AddRetry(rs.ord)
			wait := backoff
			var ae *client.APIError
			if errors.As(lastErr, &ae) && ae.RetryAfter > wait {
				wait = ae.RetryAfter
			}
			if wait > rs.maxBackoff {
				wait = rs.maxBackoff
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(wait):
			}
			backoff *= 2
		}
		actx, cancel := context.WithTimeout(ctx, rs.legTimeout)
		resp, err := rs.c.Partials(actx, req)
		cancel()
		if err == nil {
			return resp.Partials, nil
		}
		// The parent context going away is a sibling's failure or the
		// caller's deadline, not this shard's fault: report it as such so
		// Fanout's error selection can discard it.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		mapped, terminal := mapShardError(err)
		if terminal {
			return nil, mapped
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: shard %d (%s) after %d attempts: %v",
		ErrShardUnavailable, rs.ord, rs.endpoint, rs.retries+1, lastErr)
}

// coordTable is the coordinator's handle to one distributed table: the
// schema and finest-grouping router key discovered from the shards.
type coordTable struct {
	co     *Coordinator
	name   string
	cols   []engine.Column
	g      *core.Grouping
	maxCol int
}

// Coordinator fronts a static membership of congressd shard processes:
// inserts route by the finest grouping key, estimates scatter-gather
// partials over HTTP and merge exactly as the in-process path does. It
// serves the same backend surface as Warehouse/ShardedWarehouse, so
// congressd -coordinator mounts it behind the ordinary /v1 API. Safe
// for concurrent use after Discover.
type Coordinator struct {
	router   *shard.Router
	tel      *shard.Telemetry
	mtel     *metrics.Telemetry // coordinator-level engine counters (hybrid composition)
	mem      *shard.Membership
	shards   []*RemoteShard
	backends []ShardBackend // the shards, as scatter legs
	opts     CoordinatorOptions

	mu     sync.RWMutex
	tables map[string]*coordTable // lower-cased name → handle
}

// NewCoordinator builds a coordinator over the shard endpoints (index
// == shard ordinal; every coordinator must list the same endpoints in
// the same order or keys route differently). Call WaitHealthy and then
// Discover before serving.
func NewCoordinator(endpoints []string, opts CoordinatorOptions) (*Coordinator, error) {
	mem, err := shard.NewMembership(endpoints)
	if err != nil {
		return nil, fmt.Errorf("congress: %w", err)
	}
	opts.withDefaults()
	router, err := shard.NewRouter(len(mem.Endpoints))
	if err != nil {
		return nil, fmt.Errorf("congress: %w", err)
	}
	co := &Coordinator{
		router: router,
		tel:    shard.NewTelemetry(len(mem.Endpoints)),
		mtel:   metrics.NewTelemetry(),
		mem:    mem,
		opts:   opts,
		tables: make(map[string]*coordTable),
	}
	for i, ep := range mem.Endpoints {
		copts := []client.Option{client.WithRetry(opts.Retries, opts.MaxBackoff)}
		if opts.HTTPClient != nil {
			copts = append(copts, client.WithHTTPClient(opts.HTTPClient))
		}
		rs := &RemoteShard{
			ord:        i,
			endpoint:   ep,
			c:          client.New(ep, copts...),
			tel:        co.tel,
			legTimeout: opts.LegTimeout,
			retries:    opts.Retries,
			maxBackoff: opts.MaxBackoff,
		}
		co.shards = append(co.shards, rs)
		co.backends = append(co.backends, rs)
	}
	return co, nil
}

// NumShards returns the configured shard count.
func (co *Coordinator) NumShards() int { return len(co.shards) }

// Endpoints returns the shard base URLs in ordinal order.
func (co *Coordinator) Endpoints() []string { return co.mem.Endpoints }

// Shard returns the i-th remote shard (diagnostics, tests).
func (co *Coordinator) Shard(i int) *RemoteShard { return co.shards[i] }

// ShardTelemetry returns the coordinator's per-shard counters, rendered
// on /metrics as congress_distshard_*.
func (co *Coordinator) ShardTelemetry() *shard.Telemetry { return co.tel }

// WaitHealthy blocks until every shard process answers its health probe
// or ctx expires; the timeout error names the shards still down.
func (co *Coordinator) WaitHealthy(ctx context.Context, interval time.Duration) error {
	byEndpoint := make(map[string]*RemoteShard, len(co.shards))
	for _, rs := range co.shards {
		byEndpoint[rs.endpoint] = rs
	}
	return co.mem.WaitHealthy(ctx, interval, func(ctx context.Context, endpoint string) error {
		pctx, cancel := context.WithTimeout(ctx, co.opts.LegTimeout)
		defer cancel()
		return byEndpoint[endpoint].c.Health(pctx)
	})
}

// Discover interrogates every shard's /v1/synopses for its tables and
// schemas, verifies the shards agree (same grouping and columns for
// every shared table — a disagreeing shard would merge partials from a
// different stratification), and registers the routing state. Call once
// after WaitHealthy; re-call to pick up tables created later.
func (co *Coordinator) Discover(ctx context.Context) error {
	infos, err := shard.Fanout(ctx, len(co.shards), func(ctx context.Context, i int) ([]client.SynopsisInfo, error) {
		actx, cancel := context.WithTimeout(ctx, co.opts.LegTimeout)
		defer cancel()
		out, err := co.shards[i].c.Synopses(actx, false)
		if err != nil {
			return nil, fmt.Errorf("%w: shard %d (%s): discovery: %v",
				ErrShardUnavailable, i, co.shards[i].endpoint, err)
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	type seenAt struct {
		info  client.SynopsisInfo
		shard int
	}
	first := make(map[string]seenAt)
	for i, list := range infos {
		for _, si := range list {
			key := strings.ToLower(si.Table)
			prev, ok := first[key]
			if !ok {
				first[key] = seenAt{si, i}
				continue
			}
			if err := sameShardSchema(prev.info, si); err != nil {
				return fmt.Errorf("congress: shards %d and %d disagree on table %q: %w",
					prev.shard, i, si.Table, err)
			}
		}
	}
	tables := make(map[string]*coordTable, len(first))
	for key, at := range first {
		si := at.info
		if len(si.Columns) == 0 {
			return fmt.Errorf("congress: shard %d (%s) reports no schema for table %q — upgrade the shard congressd",
				at.shard, co.shards[at.shard].endpoint, si.Table)
		}
		cols := make([]engine.Column, len(si.Columns))
		for j, cs := range si.Columns {
			kind, err := engine.ParseKind(cs.Kind)
			if err != nil {
				return fmt.Errorf("congress: table %q column %q: %w", si.Table, cs.Name, err)
			}
			cols[j] = engine.Column{Name: cs.Name, Kind: kind}
		}
		schema, err := engine.NewSchema(cols...)
		if err != nil {
			return fmt.Errorf("congress: table %q: %w", si.Table, err)
		}
		g, err := core.NewGrouping(schema, si.GroupBy)
		if err != nil {
			return fmt.Errorf("congress: table %q routing grouping: %w", si.Table, err)
		}
		ct := &coordTable{co: co, name: si.Table, cols: cols, g: g}
		for _, c := range g.Columns() {
			if c > ct.maxCol {
				ct.maxCol = c
			}
		}
		tables[key] = ct
	}
	co.mu.Lock()
	co.tables = tables
	co.mu.Unlock()
	return nil
}

// sameShardSchema verifies two shards' views of one table agree on the
// synopsis grouping and column schema.
func sameShardSchema(a, b client.SynopsisInfo) error {
	if !equalStrings(a.GroupBy, b.GroupBy) {
		return fmt.Errorf("group-by %v vs %v", a.GroupBy, b.GroupBy)
	}
	if len(a.Columns) != len(b.Columns) {
		return fmt.Errorf("%d vs %d columns", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return fmt.Errorf("column %d: %v vs %v", i, a.Columns[i], b.Columns[i])
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Table returns the handle to a discovered table; the error wraps
// ErrUnknownTable for errors.Is classification.
func (co *Coordinator) Table(name string) (*coordTable, error) {
	co.mu.RLock()
	ct := co.tables[strings.ToLower(name)]
	co.mu.RUnlock()
	if ct == nil {
		return nil, fmt.Errorf("congress: %w %q", ErrUnknownTable, name)
	}
	return ct, nil
}

// Columns returns the table's schema columns in order.
func (t *coordTable) Columns() []engine.Column {
	out := make([]engine.Column, len(t.cols))
	copy(out, t.cols)
	return out
}

// Name returns the table name as the shards report it.
func (t *coordTable) Name() string { return t.name }

// RouteOf reports which shard a row's routing key maps to.
func (t *coordTable) RouteOf(row Row) int { return t.co.router.Route(t.g.Key(row)) }

// Insert routes one row to its home shard process. Inserts are not
// retried on transport failure — the coordinator cannot know whether
// the shard applied the row before the connection died, and a blind
// retry could double-insert; the caller sees ErrShardUnavailable and
// decides. (429 shedding is retried inside the client: shed requests
// are rejected before execution, so that retry is safe.)
func (t *coordTable) Insert(vals ...Value) error {
	return t.insertCtx(context.Background(), vals)
}

func (t *coordTable) insertCtx(ctx context.Context, vals []Value) error {
	row := Row(vals)
	if len(row) != len(t.cols) {
		return fmt.Errorf("%w: row has %d values, table %q has %d columns",
			ErrBadQuery, len(row), t.name, len(t.cols))
	}
	i := t.co.router.Route(t.g.Key(row))
	rs := t.co.shards[i]
	cctx, cancel := context.WithTimeout(ctx, rs.legTimeout)
	defer cancel()
	_, err := rs.c.Insert(cctx, client.InsertRequest{Table: t.name, Rows: [][]any{wireRow(row)}})
	if err != nil {
		return t.co.wrapShardErr(i, err)
	}
	t.co.tel.AddInserts(i, 1)
	return nil
}

// InsertBatch routes a batch of rows, grouping by home shard and
// issuing one insert per shard in parallel. Returns the number of rows
// acknowledged; on a failed leg the rows of *other* shards may still
// have been applied (per-shard inserts are independent), which the
// returned count reflects.
func (t *coordTable) InsertBatch(ctx context.Context, rows []Row) (int, error) {
	for _, row := range rows {
		if len(row) != len(t.cols) {
			return 0, fmt.Errorf("%w: row has %d values, table %q has %d columns",
				ErrBadQuery, len(row), t.name, len(t.cols))
		}
	}
	parts := make([][][]any, len(t.co.shards))
	counts := make([]int, len(t.co.shards))
	for _, row := range rows {
		i := t.co.router.Route(t.g.Key(row))
		parts[i] = append(parts[i], wireRow(row))
		counts[i]++
	}
	var acked atomic.Int64
	_, err := shard.Fanout(ctx, len(t.co.shards), func(ctx context.Context, i int) (struct{}, error) {
		if len(parts[i]) == 0 {
			return struct{}{}, nil
		}
		rs := t.co.shards[i]
		cctx, cancel := context.WithTimeout(ctx, rs.legTimeout)
		defer cancel()
		resp, err := rs.c.Insert(cctx, client.InsertRequest{Table: t.name, Rows: parts[i]})
		if err != nil {
			t.co.tel.FanoutError(i)
			return struct{}{}, t.co.wrapShardErr(i, err)
		}
		acked.Add(int64(resp.Inserted))
		t.co.tel.AddInserts(i, int64(counts[i]))
		return struct{}{}, nil
	})
	return int(acked.Load()), err
}

// wrapShardErr maps a shard client error for callers: typed sentinels
// pass through, everything transport/availability-shaped wraps
// ErrShardUnavailable with the shard's identity.
func (co *Coordinator) wrapShardErr(i int, err error) error {
	if mapped, terminal := mapShardError(err); terminal {
		return mapped
	}
	return fmt.Errorf("%w: shard %d (%s): %v", ErrShardUnavailable, i, co.shards[i].endpoint, err)
}

// EstimatePartialsCtx scatter-gathers the partials scan across the
// shard processes and merges — no confidence interval yet, so a
// coordinator can itself serve /v1/estimate/partials to a higher-tier
// coordinator (fan-out trees).
func (co *Coordinator) EstimatePartialsCtx(ctx context.Context, table string, grouping []string, aggCol string) ([]GroupPartial, error) {
	return co.EstimatePartialsOpts(ctx, table, grouping, aggCol, PartialsOptions{})
}

// EstimatePartialsOpts is EstimatePartialsCtx with options; NoHybrid is
// forwarded to every shard process, so the whole fan-out answers either
// hybrid (each covered shard exactly) or pure-sample.
func (co *Coordinator) EstimatePartialsOpts(ctx context.Context, table string, grouping []string, aggCol string, opts PartialsOptions) ([]GroupPartial, error) {
	parts, emptyLegs, err := scatterPartials(ctx, co.tel, co.backends, table, grouping, aggCol, opts)
	if err != nil {
		return nil, err
	}
	if emptyLegs == len(co.backends) {
		return nil, fmt.Errorf("%w %q", ErrNoSynopsis, table)
	}
	merged := estimate.MergePartials(parts...)
	if !opts.NoHybrid && hasResidualMix(merged) {
		co.mtel.HybridResidual()
	}
	return merged, nil
}

// EstimateCtx answers a group-by estimate across the shard processes:
// scatter partials, merge, then Finalize exactly once.
func (co *Coordinator) EstimateCtx(ctx context.Context, table string, grouping []string, agg Aggregate, aggCol string, confidence float64) ([]GroupEstimate, error) {
	merged, err := co.EstimatePartialsCtx(ctx, table, grouping, aggCol)
	if err != nil {
		return nil, err
	}
	return estimate.Finalize(merged, agg, confidence)
}

// EstimateQuery matches the Warehouse signature so congressd can serve
// any backend. Distributed estimates always bypass the result cache,
// exactly like in-process sharded ones: the merged answer spans every
// shard's data epoch at once.
func (co *Coordinator) EstimateQuery(ctx context.Context, table string, grouping []string, agg Aggregate, aggCol string, confidence float64, noCache bool) ([]GroupEstimate, CacheStatus, error) {
	return co.EstimateQueryOpts(ctx, table, grouping, agg, aggCol, confidence, ApproxOptions{NoCache: noCache})
}

// EstimateQueryOpts is EstimateQuery with the full option set; only
// NoHybrid is meaningful here (distributed estimates always bypass the
// result cache).
func (co *Coordinator) EstimateQueryOpts(ctx context.Context, table string, grouping []string, agg Aggregate, aggCol string, confidence float64, opts ApproxOptions) ([]GroupEstimate, CacheStatus, error) {
	merged, err := co.EstimatePartialsOpts(ctx, table, grouping, aggCol, PartialsOptions{NoHybrid: opts.NoHybrid})
	if err != nil {
		return nil, CacheBypass, err
	}
	ests, err := estimate.Finalize(merged, agg, confidence)
	return ests, CacheBypass, err
}

// Metrics reports the coordinator's own engine counters (today: the
// hybrid composition counter). Shard-process engine telemetry lives on
// the shards' own /metrics endpoints.
func (co *Coordinator) Metrics() MetricsSnapshot { return co.mtel.Snapshot() }

// hasResidualMix reports whether merged partials compose exact mass
// (covered shards answered from their datacubes) with sampled mass
// (uncovered shards answered from their samples) — the hybrid residual
// case a coordinator counts once per query.
func hasResidualMix(parts []estimate.GroupPartial) bool {
	exact, sampled := false, false
	for _, p := range parts {
		if p.ExactCount > 0 || p.ExactSum != 0 {
			exact = true
		}
		if p.N > 0 {
			sampled = true
		}
		if exact && sampled {
			return true
		}
	}
	return false
}

// RefreshSynopsis re-materializes the table's sample on every shard
// process holding a partition, in parallel (an empty insert with
// refresh=true on each shard). Shards without the synopsis are skipped;
// if no shard has it, the error wraps ErrNoSynopsis.
func (co *Coordinator) RefreshSynopsis(table string) error {
	var refreshed, missing atomic.Int32
	_, err := shard.Fanout(context.Background(), len(co.shards), func(ctx context.Context, i int) (struct{}, error) {
		rs := co.shards[i]
		cctx, cancel := context.WithTimeout(ctx, rs.legTimeout)
		defer cancel()
		_, err := rs.c.Insert(cctx, client.InsertRequest{Table: table, Refresh: true})
		if err != nil {
			mapped, terminal := mapShardError(err)
			if terminal && errors.Is(mapped, ErrNoSynopsis) {
				missing.Add(1)
				return struct{}{}, nil
			}
			return struct{}{}, co.wrapShardErr(i, err)
		}
		refreshed.Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		return err
	}
	if refreshed.Load() == 0 && missing.Load() == int32(len(co.shards)) {
		return fmt.Errorf("%w %q", ErrNoSynopsis, table)
	}
	return nil
}

// Synopses lists every synopsis merged across the shard processes
// (sizes, strata and pending counts sum; Shards counts partitions),
// sorted by table name. Shards that fail the listing are omitted — the
// listing is diagnostic, not transactional.
func (co *Coordinator) Synopses() []SynopsisInfo {
	ctx, cancel := context.WithTimeout(context.Background(), co.opts.LegTimeout)
	defer cancel()
	lists := make([][]client.SynopsisInfo, len(co.shards))
	var wg sync.WaitGroup
	for i := range co.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if out, err := co.shards[i].c.Synopses(ctx, false); err == nil {
				lists[i] = out
			}
		}(i)
	}
	wg.Wait()
	byTable := make(map[string]*SynopsisInfo)
	for _, list := range lists {
		for _, ci := range list {
			m := byTable[ci.Table]
			if m == nil {
				byTable[ci.Table] = &SynopsisInfo{
					Table:          ci.Table,
					GroupBy:        ci.GroupBy,
					Strategy:       ci.Strategy,
					Space:          ci.Space,
					SampleSize:     ci.SampleSize,
					Strata:         ci.Strata,
					PendingInserts: ci.PendingInserts,
					Shards:         1,
				}
				continue
			}
			m.Space += ci.Space
			m.SampleSize += ci.SampleSize
			m.Strata += ci.Strata
			m.PendingInserts += ci.PendingInserts
			m.Shards++
		}
	}
	out := make([]SynopsisInfo, 0, len(byTable))
	for _, info := range byTable {
		out = append(out, *info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Table < out[b].Table })
	return out
}

// AllocationTable concatenates the per-shard allocation tables exactly
// like ShardedWarehouse: re-sorted by descending target, ties broken by
// rendered group.
func (co *Coordinator) AllocationTable(table string) ([]AllocationRow, error) {
	want := strings.ToLower(table)
	lists, err := shard.Fanout(context.Background(), len(co.shards), func(ctx context.Context, i int) ([]AllocationRow, error) {
		rs := co.shards[i]
		cctx, cancel := context.WithTimeout(ctx, rs.legTimeout)
		defer cancel()
		infos, err := rs.c.Synopses(cctx, true)
		if err != nil {
			return nil, co.wrapShardErr(i, err)
		}
		var rows []AllocationRow
		for _, ci := range infos {
			if strings.ToLower(ci.Table) != want {
				continue
			}
			for _, ar := range ci.Allocation {
				rows = append(rows, AllocationRow{
					Group:      ar.Group,
					Population: ar.Population,
					PreScale:   ar.PreScale,
					Target:     ar.Target,
					Actual:     ar.Actual,
				})
			}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var out []AllocationRow
	for _, rows := range lists {
		out = append(out, rows...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("congress: no synopsis for %q", table)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Target != out[b].Target {
			return out[a].Target > out[b].Target
		}
		return strings.Join(out[a].Group, "\x1f") < strings.Join(out[b].Group, "\x1f")
	})
	return out, nil
}

// wireRow converts engine values to their JSON-native wire form (the
// inverse of the server's per-column decode): numbers stay numbers,
// strings and dates render as display text.
func wireRow(row Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		switch v.K {
		case engine.KindNull:
			out[i] = nil
		case engine.KindBool:
			out[i] = v.I != 0
		case engine.KindInt:
			out[i] = v.I
		case engine.KindFloat:
			out[i] = v.F
		default:
			out[i] = v.String()
		}
	}
	return out
}
