package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestMultiEndpointFailsOverOn429 is the regression test for 429
// shedding: a briefly saturated endpoint answers 429 with a Retry-After
// hint, and MultiEndpoint.Query must hop to the next endpoint instead
// of failing the read — honoring only a short, capped slice of the
// hint. Against the pre-fix failover() (429 treated as terminal) this
// test fails with an overloaded error.
func TestMultiEndpointFailsOverOn429(t *testing.T) {
	var shedHits, okHits atomic.Int32
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shedHits.Add(1)
		w.Header().Set("Retry-After", "30") // far beyond the hop cap
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"server overloaded","code":"overloaded"}`))
	}))
	defer shedding.Close()
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		okHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"groups":[{"group":["g"],"value":1,"bound":0.1,"sample_n":5}],"elapsed_ms":1}`))
	}))
	defer healthy.Close()

	// Round-robin starts at index 1 (next.Add(1) on the first call), so
	// the shedding endpoint goes there to be tried first.
	m, err := NewMulti([]string{healthy.URL, shedding.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	begin := time.Now()
	resp, served, err := m.Query(ctx, QueryRequest{Estimate: &EstimateRequest{Table: "t", Agg: "sum", Column: "v"}})
	elapsed := time.Since(begin)
	if err != nil {
		t.Fatalf("Query failed instead of failing over on 429: %v", err)
	}
	if served != healthy.URL {
		t.Errorf("served by %s, want the healthy endpoint %s", served, healthy.URL)
	}
	if shedHits.Load() != 1 || okHits.Load() != 1 {
		t.Errorf("hits: shedding=%d healthy=%d, want 1 and 1", shedHits.Load(), okHits.Load())
	}
	if len(resp.Groups) != 1 || resp.Groups[0].Value != 1 {
		t.Errorf("unexpected response: %+v", resp)
	}
	// The 30s Retry-After must be capped to the short hop pause, not
	// honored in full.
	if elapsed > 5*time.Second {
		t.Errorf("failover waited %v — Retry-After was not capped", elapsed)
	}
}

// TestMultiEndpointAllShedding: when every endpoint sheds, the caller
// gets the overloaded APIError back rather than a hang.
func TestMultiEndpointAllShedding(t *testing.T) {
	shed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"server overloaded","code":"overloaded"}`))
	})
	a, b := httptest.NewServer(shed), httptest.NewServer(shed)
	defer a.Close()
	defer b.Close()
	m, err := NewMulti([]string{a.URL, b.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, _, qerr := m.Query(ctx, QueryRequest{SQL: "select count(*) from t"})
	if !IsOverloaded(qerr) {
		t.Fatalf("err = %v, want the 429 APIError after exhausting endpoints", qerr)
	}
}
