package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// MultiEndpoint fans requests across several congressd servers —
// typically a replication leader plus its read-scaling followers. Each
// call picks the next endpoint round-robin; when that endpoint fails at
// the transport layer, reports 503 (a follower rejecting what it cannot
// serve), or sheds with 429, the call fails over to the remaining
// endpoints before giving up. It is safe for concurrent use.
type MultiEndpoint struct {
	clients []*Client
	next    atomic.Uint64
}

// NewMulti builds a round-robin client over the endpoint URLs; opts
// apply to every underlying Client.
func NewMulti(urls []string, opts ...Option) (*MultiEndpoint, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("client: NewMulti needs at least one endpoint")
	}
	m := &MultiEndpoint{clients: make([]*Client, len(urls))}
	for i, u := range urls {
		m.clients[i] = New(u, opts...)
	}
	return m, nil
}

// Endpoints returns the configured base URLs in order.
func (m *MultiEndpoint) Endpoints() []string {
	out := make([]string, len(m.clients))
	for i, c := range m.clients {
		out[i] = c.base
	}
	return out
}

// Pick returns the next client round-robin (no failover) — for callers
// that track per-endpoint outcomes themselves.
func (m *MultiEndpoint) Pick() *Client {
	return m.clients[m.next.Add(1)%uint64(len(m.clients))]
}

// failover reports whether an error warrants trying another endpoint:
// transport failures (endpoint down), 503 (a follower declining a
// request only its leader can serve), and 429 (admission control
// shedding — a briefly saturated endpoint must not fail a fan-out read
// when a sibling has spare capacity).
func failover(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusServiceUnavailable ||
			ae.Status == http.StatusTooManyRequests
	}
	return true // transport-level failure
}

// shedWaitCap bounds how long a 429's Retry-After hint delays the
// failover hop. The hint is sized for retrying the same endpoint; the
// next endpoint is an independent server, so we honor only a token
// pause (shedding often means the whole fleet is briefly hot) and move
// on rather than serializing the full backoff.
const shedWaitCap = 250 * time.Millisecond

// Query answers an approximate query, failing over across endpoints.
// The returned string is the base URL of the endpoint that served it.
// 429 responses honor a short, capped slice of the server's Retry-After
// hint before hopping to the next endpoint.
func (m *MultiEndpoint) Query(ctx context.Context, req QueryRequest) (*QueryResponse, string, error) {
	var lastErr error
	start := m.next.Add(1)
	for i := 0; i < len(m.clients); i++ {
		c := m.clients[(start+uint64(i))%uint64(len(m.clients))]
		resp, err := c.Query(ctx, req)
		if err == nil {
			return resp, c.base, nil
		}
		lastErr = err
		if ctx.Err() != nil || !failover(err) {
			break
		}
		var ae *APIError
		if i < len(m.clients)-1 && errors.As(err, &ae) &&
			ae.Status == http.StatusTooManyRequests && ae.RetryAfter > 0 {
			wait := ae.RetryAfter
			if wait > shedWaitCap {
				wait = shedWaitCap
			}
			select {
			case <-ctx.Done():
				return nil, "", lastErr
			case <-time.After(wait):
			}
		}
	}
	return nil, "", lastErr
}

// ReplStatus fetches every endpoint's replication status, keyed by base
// URL; endpoints that fail are omitted.
func (m *MultiEndpoint) ReplStatus(ctx context.Context) map[string]*ReplStatus {
	out := make(map[string]*ReplStatus, len(m.clients))
	for _, c := range m.clients {
		if st, err := c.ReplStatus(ctx); err == nil {
			out[c.base] = st
		}
	}
	return out
}
