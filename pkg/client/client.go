// Package client is the Go client for the congressd HTTP/JSON query
// service. It speaks the /v1 API: approximate queries with per-request
// rewrite-strategy and confidence options, exact queries, inserts,
// synopsis listings, and health/metrics probes.
//
//	c := client.New("http://localhost:8642")
//	res, err := c.Query(ctx, client.QueryRequest{
//		SQL: "select region, sum(amount) from sales group by region",
//	})
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client talks to one congressd server. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	retryAttempts   int
	retryMaxBackoff time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transport, TLS, global timeout).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry retries requests shed with 429 up to attempts extra times,
// honoring the server's Retry-After hint and otherwise backing off
// exponentially with jitter, capped at maxBackoff (default 5s when
// <= 0). Retries respect the request context, so a caller deadline
// still bounds the total wait.
func WithRetry(attempts int, maxBackoff time.Duration) Option {
	return func(c *Client) {
		if attempts < 0 {
			attempts = 0
		}
		if maxBackoff <= 0 {
			maxBackoff = 5 * time.Second
		}
		c.retryAttempts = attempts
		c.retryMaxBackoff = maxBackoff
	}
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8642"; a trailing slash is tolerated).
func New(baseURL string, opts ...Option) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	c := &Client{base: baseURL, hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response decoded from the server's error
// envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable cause (see ErrorBody.Code).
	Code string
	// Message is the human-readable error text.
	Message string
	// RetryAfter is the server's backoff hint on 429 responses, 0
	// otherwise.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("congressd: %s (http %d, code %s)", e.Message, e.Status, e.Code)
}

// IsOverloaded reports whether err is a 429 shed by admission control;
// the caller should back off for RetryAfter and retry.
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests
}

// Query answers an approximate query (SQL or direct-estimate form). The
// response's Cache field reports whether the server answered from its
// result cache (preferring the X-Congress-Cache header, falling back to
// the body field for older servers).
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	resp, err := c.raw(ctx, http.MethodPost, "/v1/query", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, decodeError(resp)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if h := resp.Header.Get(CacheHeader); h != "" {
		out.Cache = h
	}
	return &out, nil
}

// Exact answers a query exactly against the base tables.
func (c *Client) Exact(ctx context.Context, req ExactRequest) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/exact", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Insert appends rows to a table (feeding any synopsis maintainer) and
// optionally refreshes the synopsis.
func (c *Client) Insert(ctx context.Context, req InsertRequest) (*InsertResponse, error) {
	var out InsertResponse
	if err := c.do(ctx, http.MethodPost, "/v1/insert", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Partials runs one estimation scan and returns the mergeable
// per-group sufficient statistics — the distributed scatter-gather leg.
// Coordinators merge partials from every shard with
// estimate.MergePartials before taking confidence intervals once.
func (c *Client) Partials(ctx context.Context, req PartialsRequest) (*PartialsResponse, error) {
	var out PartialsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/estimate/partials", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Synopses lists the registered synopses; withAllocation includes each
// synopsis's full allocation table.
func (c *Client) Synopses(ctx context.Context, withAllocation bool) ([]SynopsisInfo, error) {
	path := "/v1/synopses"
	if withAllocation {
		path += "?allocation=1"
	}
	var out SynopsesResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Synopses, nil
}

// Snapshot asks the server to write a durable snapshot now, compacting
// its WAL. It fails with code "not_persistent" (409) when the server
// runs without a data directory.
func (c *Client) Snapshot(ctx context.Context) (*SnapshotResponse, error) {
	var out SnapshotResponse
	if err := c.do(ctx, http.MethodPost, "/v1/snapshot", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the Prometheus-style text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.raw(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// ReplStatus fetches the server's replication state: role
// (standalone/leader/follower) plus lag and shipping counters.
func (c *Client) ReplStatus(ctx context.Context) (*ReplStatus, error) {
	var out ReplStatus
	if err := c.do(ctx, http.MethodGet, "/v1/repl/status", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BaseURL returns the server base URL this client talks to.
func (c *Client) BaseURL() string { return c.base }

// Health probes /healthz; nil means the server is accepting requests.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.raw(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Code: "unhealthy", Message: "health check failed"}
	}
	return nil
}

// do issues one JSON request/response round trip.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.raw(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) raw(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		payload = b
	}
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return nil, err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= c.retryAttempts {
			return resp, nil
		}
		// Shed by admission control and retries remain: honor the
		// server's Retry-After when it exceeds our own backoff, cap, add
		// jitter so a burst of shed clients does not return in lockstep.
		wait := backoff
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && time.Duration(secs)*time.Second > wait {
				wait = time.Duration(secs) * time.Second
			}
		}
		if wait > c.retryMaxBackoff {
			wait = c.retryMaxBackoff
		}
		wait += time.Duration(rand.Int63n(int64(wait)/4 + 1))
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
		backoff *= 2
		if backoff > c.retryMaxBackoff {
			backoff = c.retryMaxBackoff
		}
	}
}

// decodeError turns a non-2xx response into an *APIError, tolerating
// non-JSON bodies from intermediaries.
func decodeError(resp *http.Response) error {
	ae := &APIError{Status: resp.StatusCode, Code: "internal"}
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var eb ErrorBody
	if err := json.Unmarshal(b, &eb); err == nil && eb.Error != "" {
		ae.Message = eb.Error
		if eb.Code != "" {
			ae.Code = eb.Code
		}
	} else {
		ae.Message = string(bytes.TrimSpace(b))
		if ae.Message == "" {
			ae.Message = http.StatusText(resp.StatusCode)
		}
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}
