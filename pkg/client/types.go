package client

// Wire types for the congressd HTTP/JSON API. The server
// (internal/server) imports this package so the two sides cannot drift.

import "github.com/approxdb/congress/internal/estimate"

// QueryRequest is the body of POST /v1/query. Exactly one of SQL or
// Estimate must be set: SQL answers via synopsis rewriting, Estimate via
// the direct stratified estimator with confidence bounds.
type QueryRequest struct {
	// SQL is an aggregate query over a table with a synopsis.
	SQL string `json:"sql,omitempty"`
	// Rewrite optionally overrides the synopsis's default rewriting
	// strategy for this request
	// (integrated|nested|normalized|keynormalized).
	Rewrite string `json:"rewrite,omitempty"`
	// Estimate selects the direct estimation path instead of SQL.
	Estimate *EstimateRequest `json:"estimate,omitempty"`
	// TimeoutMS caps this request's execution time, measured from when
	// the server grants it a worker slot; 0 uses the server's default
	// deadline, and the server clamps it to its configured maximum. Time
	// spent waiting in the server's admission queue is bounded separately
	// (by the smaller of this timeout and the server's queue-wait cap),
	// so under load the end-to-end latency can exceed TimeoutMS by the
	// queue wait — clients needing a hard wall-clock bound should also
	// set a transport timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache answers from the synopsis directly, skipping the server's
	// result cache for this request (the answer is not stored either).
	NoCache bool `json:"no_cache,omitempty"`
	// NoHybrid forces the pure-sample estimator for this request even
	// when the synopsis's exact datacube covers it (estimate requests
	// only; SQL answering never uses the hybrid path).
	NoHybrid bool `json:"no_hybrid,omitempty"`
}

// CacheHeader is the response header /v1/query uses to report how the
// answer was produced: "hit", "miss", or "bypass".
const CacheHeader = "X-Congress-Cache"

// EstimateRequest describes one direct-estimation query.
type EstimateRequest struct {
	// Table is the base table (must have a synopsis).
	Table string `json:"table"`
	// GroupBy is the output grouping (a subset of the synopsis's
	// grouping columns); empty means no group-by.
	GroupBy []string `json:"group_by,omitempty"`
	// Agg is the aggregate: sum|count|avg.
	Agg string `json:"agg"`
	// Column is the aggregated column.
	Column string `json:"column"`
	// Confidence is the two-sided confidence level for the reported
	// bounds; 0 means the Aqua default of 0.90.
	Confidence float64 `json:"confidence,omitempty"`
}

// PartialsRequest is the body of POST /v1/estimate/partials: one
// estimation scan returning the mergeable per-group sufficient
// statistics instead of finalized estimates. This is the distributed
// scatter-gather leg — a coordinator fans it out to every shard and
// merges the partials before taking confidence intervals exactly once.
type PartialsRequest struct {
	// Table is the base table (must have a synopsis).
	Table string `json:"table"`
	// GroupBy is the output grouping (a subset of the synopsis's
	// grouping columns); empty means no group-by.
	GroupBy []string `json:"group_by,omitempty"`
	// Column is the aggregated column. Partials are aggregate- and
	// confidence-independent: one scan serves SUM, COUNT and AVG.
	Column string `json:"column"`
	// NoHybrid forces the partials to come from the sample scan even
	// when this shard's exact datacube covers the request.
	NoHybrid bool `json:"no_hybrid,omitempty"`
	// TimeoutMS caps this request's execution time like
	// QueryRequest.TimeoutMS.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PartialsResponse is the body returned by /v1/estimate/partials. The
// records are estimate.GroupPartial in its wire encoding (non-finite
// floats travel as the strings "+Inf"/"-Inf"/"NaN").
type PartialsResponse struct {
	Partials  []estimate.GroupPartial `json:"partials"`
	ElapsedMS float64                 `json:"elapsed_ms"`
}

// ExactRequest is the body of POST /v1/exact.
type ExactRequest struct {
	SQL       string `json:"sql"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// QueryResponse is the body returned by /v1/query and /v1/exact. SQL
// answers fill Columns/Rows; estimate answers fill Groups.
type QueryResponse struct {
	Columns []string `json:"columns,omitempty"`
	// Rows hold JSON-native values: numbers, strings, booleans, null;
	// dates render as "yyyy-mm-dd" strings.
	Rows      [][]any         `json:"rows,omitempty"`
	Groups    []GroupEstimate `json:"groups,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms"`
	// Cache reports how /v1/query produced the answer: "hit", "miss", or
	// "bypass" (cache disabled or no_cache set). Mirrors CacheHeader.
	Cache string `json:"cache,omitempty"`
}

// GroupEstimate is one output group of a direct estimate.
type GroupEstimate struct {
	// Group holds the rendered grouping-column values.
	Group []string `json:"group"`
	// Value is the estimate.
	Value float64 `json:"value"`
	// Bound is the half-width of the confidence interval.
	Bound float64 `json:"bound"`
	// SampleN is the number of sampled tuples that contributed.
	SampleN int `json:"sample_n"`
}

// InsertRequest is the body of POST /v1/insert. Rows hold JSON-native
// values converted by the server against the table schema (dates as
// "yyyy-mm-dd" strings).
type InsertRequest struct {
	Table string  `json:"table"`
	Rows  [][]any `json:"rows"`
	// Refresh re-materializes the table's synopsis after the inserts so
	// they become visible to queries immediately.
	Refresh bool `json:"refresh,omitempty"`
}

// InsertResponse reports how many rows were inserted.
type InsertResponse struct {
	Inserted  int  `json:"inserted"`
	Refreshed bool `json:"refreshed,omitempty"`
}

// SynopsisInfo is one entry of GET /v1/synopses.
type SynopsisInfo struct {
	Table          string          `json:"table"`
	GroupBy        []string        `json:"group_by"`
	Strategy       string          `json:"strategy"`
	Space          int             `json:"space"`
	SampleSize     int             `json:"sample_size"`
	Strata         int             `json:"strata"`
	PendingInserts int64           `json:"pending_inserts"`
	Shards         int             `json:"shards,omitempty"`
	Allocation     []AllocationRow `json:"allocation,omitempty"`
	// Columns is the table schema in column order — a distributed
	// coordinator discovers shard schemas from it and verifies every
	// shard agrees before serving.
	Columns []ColumnSpec `json:"columns,omitempty"`
}

// ColumnSpec is one column of a table schema as reported by
// /v1/synopses.
type ColumnSpec struct {
	Name string `json:"name"`
	// Kind is the engine value kind: NULL, BOOLEAN, INTEGER, FLOAT,
	// VARCHAR or DATE.
	Kind string `json:"kind"`
}

// AllocationRow is one line of a synopsis's Figure 5-style allocation
// table (returned when /v1/synopses is called with ?allocation=1).
type AllocationRow struct {
	Group      []string `json:"group"`
	Population int64    `json:"population"`
	PreScale   float64  `json:"pre_scale"`
	Target     float64  `json:"target"`
	Actual     int      `json:"actual"`
}

// SynopsesResponse is the body of GET /v1/synopses.
type SynopsesResponse struct {
	Synopses []SynopsisInfo `json:"synopses"`
}

// SnapshotResponse is the body of POST /v1/snapshot: the durability
// layer's state after the snapshot completed.
type SnapshotResponse struct {
	// Dir is the server's data directory.
	Dir string `json:"dir"`
	// Generation is the snapshot/WAL generation after the rotation.
	Generation uint64 `json:"generation"`
	// Fsync is the active WAL durability policy.
	Fsync string `json:"fsync"`
}

// ReplStatus is the body of GET /v1/repl/status. Role selects which
// fields are meaningful: followers report lag against their leader,
// leaders report shipping progress, standalone servers report only the
// role.
type ReplStatus struct {
	// Role is "standalone", "leader", or "follower".
	Role string `json:"role"`
	// Leader is the leader base URL (followers only).
	Leader string `json:"leader,omitempty"`
	// Gen is the WAL generation currently being written (leader) or
	// shipped (follower).
	Gen uint64 `json:"gen,omitempty"`
	// LagRecords/LagSeconds report follower staleness: records not yet
	// applied and time since the follower was last fully caught up.
	LagRecords int64   `json:"lag_records,omitempty"`
	LagSeconds float64 `json:"lag_seconds,omitempty"`
	// CaughtUp reports a follower with zero lag.
	CaughtUp bool `json:"caught_up,omitempty"`
	// Reconnects counts follower reconnect/backoff cycles.
	Reconnects int64 `json:"reconnects,omitempty"`
	// SegmentsShipped counts fully shipped WAL segments.
	SegmentsShipped int64 `json:"segments_shipped,omitempty"`
	// BytesShipped counts shipped WAL bytes.
	BytesShipped int64 `json:"bytes_shipped,omitempty"`
	// RecordsApplied counts records a follower has applied.
	RecordsApplied int64 `json:"records_applied,omitempty"`
	// Watermark/RecordSeq describe a leader's current segment.
	Watermark int64 `json:"watermark,omitempty"`
	RecordSeq int64 `json:"record_seq,omitempty"`
}

// ErrorBody is the JSON error envelope every non-2xx response carries.
type ErrorBody struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Code is a stable machine-readable cause: bad_query, no_synopsis,
	// unknown_table, deadline_exceeded, canceled, overloaded,
	// not_persistent, shard_unavailable, internal.
	Code string `json:"code"`
}
