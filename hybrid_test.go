package congress

import (
	"context"
	"testing"

	"github.com/approxdb/congress/internal/estimate"
	"github.com/approxdb/congress/internal/tpcd"
)

// hybridTruth computes the exact per-region SUM/COUNT/AVG of amount via
// the SQL engine (group key = rendered region value).
func hybridTruth(t *testing.T, w *Warehouse) map[string][3]float64 {
	t.Helper()
	res, err := w.Query(`select region, sum(amount), count(*), avg(amount) from sales group by region`)
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[string][3]float64, len(res.Rows))
	for _, r := range res.Rows {
		s, _ := r[1].AsFloat()
		c, _ := r[2].AsFloat()
		a, _ := r[3].AsFloat()
		truth[r[0].String()] = [3]float64{s, c, a}
	}
	return truth
}

// TestHybridEstimateAnswersExactByDefault: with a fresh exact datacube
// covering the request, the default estimate path must return the exact
// SQL answer with a zero half-width and no sampled rows, while NoHybrid
// forces the pure-sample estimator — and the two modes must cache under
// distinct keys.
func TestHybridEstimateAnswersExactByDefault(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 500, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	truth := hybridTruth(t, w)
	ctx := context.Background()

	aggs := []struct {
		agg Aggregate
		ti  int
	}{{Sum, 0}, {Count, 1}, {Avg, 2}}
	for _, a := range aggs {
		ests, status, err := w.EstimateQueryOpts(ctx, "sales", []string{"region"}, a.agg, "amount", 0.95, ApproxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if status != CacheMiss {
			t.Errorf("%v: first hybrid estimate cache status %v, want miss", a.agg, status)
		}
		if len(ests) != len(truth) {
			t.Fatalf("%v: %d groups, want %d", a.agg, len(ests), len(truth))
		}
		for _, e := range ests {
			want := truth[e.Key][a.ti]
			if e.Bound != 0 || e.SampleN != 0 {
				t.Errorf("%v %q: bound %v sampleN %d, want exact (0, 0)", a.agg, e.Key, e.Bound, e.SampleN)
			}
			if relDiff(e.Value, want) > 1e-9 {
				t.Errorf("%v %q: hybrid value %v != exact %v", a.agg, e.Key, e.Value, want)
			}
		}
		// Same request again: served from cache under the hybrid key.
		if _, status, err = w.EstimateQueryOpts(ctx, "sales", []string{"region"}, a.agg, "amount", 0.95, ApproxOptions{}); err != nil || status != CacheHit {
			t.Errorf("%v: repeat hybrid estimate (%v, %v), want cache hit", a.agg, status, err)
		}
		// NoHybrid must not alias the hybrid cache entry and must come
		// from the sample.
		sampled, status, err := w.EstimateQueryOpts(ctx, "sales", []string{"region"}, a.agg, "amount", 0.95, ApproxOptions{NoHybrid: true})
		if err != nil {
			t.Fatal(err)
		}
		if status != CacheMiss {
			t.Errorf("%v: first NoHybrid estimate cache status %v, want miss (distinct key)", a.agg, status)
		}
		for _, e := range sampled {
			if e.SampleN == 0 {
				t.Errorf("%v %q: NoHybrid estimate has no sampled rows", a.agg, e.Key)
			}
		}
	}
	m := w.Metrics()
	if m.HybridExact != int64(len(aggs)) {
		t.Errorf("HybridExact = %d, want %d (one per uncached hybrid estimate)", m.HybridExact, len(aggs))
	}
	if m.HybridFallback != 0 {
		t.Errorf("HybridFallback = %d, want 0", m.HybridFallback)
	}
}

// TestHybridStaleEpochGuard: any epoch advance the insert feed did not
// produce (here: a synopsis refresh) must disable hybrid answering —
// the estimate falls back to the pure-sample path and counts a fallback
// — until the next insert proves the cube's feed is live again, at
// which point hybrid answers return and include the inserted rows.
func TestHybridStaleEpochGuard(t *testing.T) {
	w, tbl := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 500, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	est := func(opts ApproxOptions) []GroupEstimate {
		t.Helper()
		// NoCache: the guard must be observed live, not through a cached
		// pre-refresh answer.
		opts.NoCache = true
		ests, _, err := w.EstimateQueryOpts(ctx, "sales", []string{"region"}, Sum, "amount", 0.95, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ests
	}
	for _, e := range est(ApproxOptions{}) {
		if e.SampleN != 0 || e.Bound != 0 {
			t.Fatalf("pre-refresh %q not exact: %+v", e.Key, e)
		}
	}

	if err := w.RefreshSynopsis("sales"); err != nil {
		t.Fatal(err)
	}
	stale := est(ApproxOptions{})
	pure := est(ApproxOptions{NoHybrid: true})
	if len(stale) != len(pure) {
		t.Fatalf("stale groups %d != pure-sample %d", len(stale), len(pure))
	}
	pureByKey := make(map[string]GroupEstimate, len(pure))
	for _, e := range pure {
		pureByKey[e.Key] = e
	}
	for _, e := range stale {
		p := pureByKey[e.Key]
		if e.SampleN == 0 {
			t.Errorf("post-refresh %q answered without samples — stale cube served", e.Key)
		}
		if e.Value != p.Value || e.Bound != p.Bound || e.SampleN != p.SampleN {
			t.Errorf("post-refresh %q: hybrid-disabled answer %+v != pure-sample %+v", e.Key, e, p)
		}
	}
	if m := w.Metrics(); m.HybridFallback == 0 {
		t.Error("no HybridFallback counted for stale-cube estimates")
	}

	// An insert re-feeds the cube and re-syncs the epoch: hybrid answers
	// come back and must include the new row.
	truthBefore := hybridTruth(t, w)["east"][0]
	if err := tbl.Insert(Str("east"), Str("pen"), F(1000)); err != nil {
		t.Fatal(err)
	}
	reenabled := est(ApproxOptions{})
	for _, e := range reenabled {
		if e.SampleN != 0 || e.Bound != 0 {
			t.Fatalf("post-insert %q not exact: %+v", e.Key, e)
		}
		if e.Key == "east" && relDiff(e.Value, truthBefore+1000) > 1e-9 {
			t.Errorf("post-insert east = %v, want %v (inserted row missing from cube)", e.Value, truthBefore+1000)
		}
	}
}

// TestHybridShardedDifferential: a sharded warehouse at K ∈ {2, 4} must
// reproduce the single warehouse's hybrid answers to 1e-9 — every shard
// holds a fresh cube, so the merged estimate is exact on both sides —
// and the pure-sample (NoHybrid) scatter-gather differential must keep
// holding with hybrid code in the path. A mixed-coverage merge (only j
// of K shards answering from their cubes) must keep the point estimate
// near the exact answer while its half-width shrinks monotonically
// with j.
func TestHybridShardedDifferential(t *testing.T) {
	rel, err := tpcd.Generate(tpcd.Params{TableSize: 12_000, NumGroups: 27, GroupSkew: 0.86, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	spec := SynopsisSpec{
		Table:   rel.Name,
		GroupBy: tpcd.GroupingAttrs,
		Space:   1200,
		Seed:    7,
	}
	single := Open()
	if _, err := single.AttachRelation(rel); err != nil {
		t.Fatal(err)
	}
	if err := single.BuildSynopsis(spec); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	grouping := []string{"l_returnflag"}
	for _, k := range []int{2, 4} {
		sw, err := OpenSharded(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sw.AttachRelation(rel, tpcd.GroupingAttrs); err != nil {
			t.Fatal(err)
		}
		if err := sw.BuildSynopsis(spec); err != nil {
			t.Fatal(err)
		}
		for _, agg := range []Aggregate{Sum, Count, Avg} {
			want, err := single.Estimate(rel.Name, grouping, agg, "l_quantity", 0.95)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sw.Estimate(rel.Name, grouping, agg, "l_quantity", 0.95)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d %v: %d groups, want %d", k, agg, len(got), len(want))
			}
			byKey := make(map[string]GroupEstimate, len(want))
			for _, e := range want {
				if e.Bound != 0 || e.SampleN != 0 {
					t.Fatalf("single %v %q not hybrid-exact: %+v", agg, e.Key, e)
				}
				byKey[e.Key] = e
			}
			for _, e := range got {
				w, ok := byKey[e.Key]
				if !ok {
					t.Fatalf("k=%d %v: group %q missing from single", k, agg, e.Key)
				}
				if relDiff(e.Value, w.Value) > 1e-9 || e.Bound != 0 || e.SampleN != 0 {
					t.Errorf("k=%d %v %q: sharded hybrid %+v != single %+v", k, agg, e.Key, e, w)
				}
			}
		}

		// Mixed coverage: j covered shards, K−j sampled. The half-width
		// must shrink monotonically as coverage grows, and the value must
		// stay within the merged bound of the exact answer.
		exact, err := single.Estimate(rel.Name, grouping, Sum, "l_quantity", 0.95)
		if err != nil {
			t.Fatal(err)
		}
		exactByKey := make(map[string]float64, len(exact))
		for _, e := range exact {
			exactByKey[e.Key] = e.Value
		}
		prev := map[string]float64{}
		for j := 0; j <= k; j++ {
			lists := make([][]GroupPartial, k)
			for i := 0; i < k; i++ {
				lists[i], err = sw.Shard(i).EstimatePartialsOpts(ctx, rel.Name, grouping, "l_quantity",
					PartialsOptions{NoHybrid: i >= j})
				if err != nil {
					t.Fatal(err)
				}
			}
			ests, err := estimate.Finalize(estimate.MergePartials(lists...), Sum, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ests {
				if j > 0 {
					base, ok := prev[e.Key]
					if !ok {
						t.Fatalf("k=%d j=%d: group %q appeared mid-sweep", k, j, e.Key)
					}
					if e.Bound > base*(1+1e-12) {
						t.Errorf("k=%d j=%d %q: bound %v wider than at j-1 (%v)", k, j, e.Key, e.Bound, base)
					}
				}
				if j == k && e.Bound != 0 {
					t.Errorf("k=%d full coverage %q: bound %v, want 0", k, e.Key, e.Bound)
				}
				prev[e.Key] = e.Bound
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHybridPersistenceRoundTrip: a snapshot taken while the cube is
// fresh must restore with hybrid answering intact; a snapshot taken
// while the cube is stale (post-refresh, pre-insert) must restore with
// hybrid disabled — the same contract a legacy snapshot without an
// ExactCube gets — staying disabled until a synopsis rebuild seeds a
// fresh cube.
func TestHybridPersistenceRoundTrip(t *testing.T) {
	ctx := context.Background()
	estimateOnce := func(w *Warehouse) []GroupEstimate {
		t.Helper()
		ests, _, err := w.EstimateQueryOpts(ctx, "sales", []string{"region"}, Sum, "amount", 0.95,
			ApproxOptions{NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		return ests
	}

	t.Run("fresh cube survives recovery", func(t *testing.T) {
		dir := t.TempDir()
		w, _ := buildSalesWarehouse(t)
		if err := w.BuildSynopsis(SynopsisSpec{
			Table: "sales", GroupBy: []string{"region", "product"}, Space: 500, Seed: 3,
		}); err != nil {
			t.Fatal(err)
		}
		want := hybridTruth(t, w)
		if err := w.Save(dir); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		re, _, err := OpenDir(dir, PersistOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		ests := estimateOnce(re)
		if len(ests) != len(want) {
			t.Fatalf("%d groups after recovery, want %d", len(ests), len(want))
		}
		for _, e := range ests {
			if e.Bound != 0 || e.SampleN != 0 {
				t.Errorf("recovered %q not hybrid-exact: %+v", e.Key, e)
			}
			if relDiff(e.Value, want[e.Key][0]) > 1e-9 {
				t.Errorf("recovered %q = %v, want %v", e.Key, e.Value, want[e.Key][0])
			}
		}
	})

	t.Run("stale cube restores disabled until insert", func(t *testing.T) {
		dir := t.TempDir()
		w, _ := buildSalesWarehouse(t)
		if err := w.BuildSynopsis(SynopsisSpec{
			Table: "sales", GroupBy: []string{"region", "product"}, Space: 500, Seed: 3,
		}); err != nil {
			t.Fatal(err)
		}
		// Refresh leaves the cube stale; ExportState must then omit it.
		if err := w.RefreshSynopsis("sales"); err != nil {
			t.Fatal(err)
		}
		if err := w.Save(dir); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		re, _, err := OpenDir(dir, PersistOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		for _, e := range estimateOnce(re) {
			if e.SampleN == 0 {
				t.Errorf("recovered-from-stale %q answered exactly — cube should not have been exported", e.Key)
			}
		}
		// No cube object was restored, so there is nothing an insert could
		// re-sync: hybrid stays off until the synopsis is rebuilt (the
		// build seeds a fresh cube from the base relation).
		tbl, err := re.Table("sales")
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert(Str("west"), Str("pen"), F(3)); err != nil {
			t.Fatal(err)
		}
		for _, e := range estimateOnce(re) {
			if e.SampleN == 0 {
				t.Errorf("insert alone re-enabled hybrid with no restored cube: %q %+v", e.Key, e)
			}
		}
		if err := re.BuildSynopsis(SynopsisSpec{
			Table: "sales", GroupBy: []string{"region", "product"}, Space: 500, Seed: 3,
		}); err != nil {
			t.Fatal(err)
		}
		for _, e := range estimateOnce(re) {
			if e.SampleN != 0 || e.Bound != 0 {
				t.Errorf("rebuild did not re-enable hybrid: %q %+v", e.Key, e)
			}
		}
	})
}
