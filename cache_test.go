package congress

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
)

// buildCachedWarehouse is buildSalesWarehouse plus a synopsis, the shape
// most cache tests need.
func buildCachedWarehouse(t testing.TB) (*Warehouse, *Table) {
	t.Helper()
	w, tbl := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 1000, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	return w, tbl
}

const cacheQuery = `select region, sum(amount) from sales group by region order by region`

func TestApproxQueryHitMissStatuses(t *testing.T) {
	w, _ := buildCachedWarehouse(t)
	ctx := context.Background()

	res1, st, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheMiss {
		t.Fatalf("first call status = %v, want miss", st)
	}
	res2, st, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheHit {
		t.Fatalf("second call status = %v, want hit", st)
	}
	if res1 != res2 {
		t.Fatal("a cache hit must return the identical shared result")
	}

	// Normalized whitespace/case variants share the same fingerprint.
	_, st, err = w.ApproxQuery(ctx, "SELECT region,   SUM(amount)\nFROM sales GROUP BY region ORDER BY region", ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheHit {
		t.Fatalf("normalized variant status = %v, want hit", st)
	}

	// NoCache bypasses without disturbing the cached entry.
	_, st, err = w.ApproxQuery(ctx, cacheQuery, ApproxOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheBypass {
		t.Fatalf("NoCache status = %v, want bypass", st)
	}

	m := w.Metrics()
	if m.CacheHits < 2 || m.CacheMisses < 1 {
		t.Fatalf("metrics hits=%d misses=%d, want >=2/>=1", m.CacheHits, m.CacheMisses)
	}
}

func TestCacheHitDeterminism(t *testing.T) {
	w, _ := buildCachedWarehouse(t)
	ctx := context.Background()

	cold, st, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheBypass {
		t.Fatalf("cold status = %v", st)
	}
	if _, _, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{}); err != nil {
		t.Fatal(err) // populate
	}
	hit, st, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheHit {
		t.Fatalf("status = %v, want hit", st)
	}
	if cold.String() != hit.String() {
		t.Fatalf("cache hit differs from cold run:\ncold:\n%s\nhit:\n%s", cold, hit)
	}
}

func TestCacheInvalidationOnInsertAndRefresh(t *testing.T) {
	w, tbl := buildCachedWarehouse(t)
	ctx := context.Background()
	countQ := `select count(*) from sales`

	before, st, err := w.ApproxQuery(ctx, countQ, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheMiss {
		t.Fatalf("status = %v, want miss", st)
	}

	// Insert alone must invalidate: the next call may not be a hit on
	// the old entry even though the sample is unchanged until refresh.
	if err := tbl.Insert(Str("north"), Str("pen"), F(1)); err != nil {
		t.Fatal(err)
	}
	_, st, err = w.ApproxQuery(ctx, countQ, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st == CacheHit {
		t.Fatal("Insert must invalidate cached answers")
	}

	// A burst of inserts plus a refresh must surface in the next answer:
	// comparing against an uncached run proves no stale entry is served.
	for i := 0; i < 500; i++ {
		if err := tbl.Insert(Str("north"), Str("pen"), F(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.RefreshSynopsis("sales"); err != nil {
		t.Fatal(err)
	}
	after, st, err := w.ApproxQuery(ctx, countQ, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st == CacheHit {
		t.Fatal("RefreshSynopsis must invalidate cached answers")
	}
	uncached, _, err := w.ApproxQuery(ctx, countQ, ApproxOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if after.String() != uncached.String() {
		t.Fatalf("cached answer is stale after refresh:\ncached:\n%s\nuncached:\n%s", after, uncached)
	}
	if before.String() == after.String() {
		t.Fatal("answer did not change after 501 inserts + refresh; invalidation test is vacuous")
	}
	if w.Metrics().CacheInvalidations == 0 {
		t.Fatal("invalidation counter never advanced")
	}
}

// TestCacheInvalidationRace interleaves Insert+RefreshSynopsis with
// cached readers under -race. The table is small enough that the
// synopsis space covers every row (sf = 1, the sample is exhaustive), so
// an approximate count equals the exact row count as of the last
// refresh. Row counts only grow, so each reader must observe a
// non-decreasing sequence of counts — a cached answer from an older
// epoch served after a newer one would break monotonicity.
func TestCacheInvalidationRace(t *testing.T) {
	w := Open()
	tbl, err := w.CreateTable("ev",
		Col("g", String),
		Col("v", Float),
	)
	if err != nil {
		t.Fatal(err)
	}
	const seedRows = 64
	for i := 0; i < seedRows; i++ {
		if err := tbl.Insert(Str("g"+strconv.Itoa(i%4)), F(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Space far exceeds any row count this test reaches: every stratum
	// stays fully enumerated.
	if err := w.BuildSynopsis(SynopsisSpec{Table: "ev", GroupBy: []string{"g"}, Space: 100000}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const (
		writers    = 2
		readers    = 4
		writesEach = 60
	)
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := 0; i < writesEach; i++ {
				if err := tbl.Insert(Str("g"+strconv.Itoa(i%4)), F(1)); err != nil {
					t.Error(err)
					return
				}
				if i%8 == 0 {
					if err := w.RefreshSynopsis("ev"); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if err := w.RefreshSynopsis("ev"); err != nil {
				t.Error(err)
			}
		}(wi)
	}
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			last := int64(0)
			for i := 0; i < 200; i++ {
				res, _, err := w.ApproxQuery(ctx, `select count(*) from ev`, ApproxOptions{})
				if err != nil {
					t.Errorf("reader %d: %v", ri, err)
					return
				}
				if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
					t.Errorf("reader %d: unexpected shape %v", ri, res.Rows)
					return
				}
				n, ok := res.Rows[0][0].AsFloat()
				if !ok {
					t.Errorf("reader %d: non-numeric count %v", ri, res.Rows[0][0])
					return
				}
				got := int64(n + 0.5)
				if got < last {
					t.Errorf("reader %d: stale answer: count went %d -> %d", ri, last, got)
					return
				}
				last = got
			}
		}(ri)
	}
	wg.Wait()

	// After the dust settles, the cached answer must equal ground truth.
	if err := w.RefreshSynopsis("ev"); err != nil {
		t.Fatal(err)
	}
	res, _, err := w.ApproxQuery(ctx, `select count(*) from ev`, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := seedRows + writers*writesEach
	if n, _ := res.Rows[0][0].AsFloat(); int(n+0.5) != want {
		t.Fatalf("final count = %v, want %d", n, want)
	}
}

func TestEstimateQueryCaching(t *testing.T) {
	w, tbl := buildCachedWarehouse(t)
	ctx := context.Background()

	e1, st, err := w.EstimateQuery(ctx, "sales", []string{"region"}, Sum, "amount", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheMiss {
		t.Fatalf("first estimate status = %v, want miss", st)
	}
	_, st, err = w.EstimateQuery(ctx, "sales", []string{"region"}, Sum, "amount", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheHit {
		t.Fatalf("second estimate status = %v, want hit", st)
	}
	// A different grouping/aggregate is a different key.
	_, st, err = w.EstimateQuery(ctx, "sales", []string{"region"}, Count, "amount", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheMiss {
		t.Fatalf("different aggregate status = %v, want miss", st)
	}
	// Insert invalidates estimates too.
	if err := tbl.Insert(Str("east"), Str("pen"), F(3)); err != nil {
		t.Fatal(err)
	}
	_, st, err = w.EstimateQuery(ctx, "sales", []string{"region"}, Sum, "amount", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if st == CacheHit {
		t.Fatal("Insert must invalidate cached estimates")
	}
	if len(e1) == 0 {
		t.Fatal("estimates empty")
	}
}

func TestConfigureCacheDisable(t *testing.T) {
	w, _ := buildCachedWarehouse(t)
	w.ConfigureCache(-1, 0)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		_, st, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if st != CacheBypass {
			t.Fatalf("call %d with caching disabled: status = %v, want bypass", i, st)
		}
	}
}

func TestSplitEstimateKeyRoundTrip(t *testing.T) {
	cases := [][]string{
		{},
		{"east"},
		{"east", "pen"},
		{"a/b", "c"},
		{"", "x"},
		{"", ""},
	}
	for _, parts := range cases {
		key := joinParts(parts)
		got := SplitEstimateKey(key)
		if len(got) != len(parts) {
			t.Errorf("round-trip %q: got %d parts %q, want %d", key, len(got), got, len(parts))
			continue
		}
		for i := range parts {
			if got[i] != parts[i] {
				t.Errorf("round-trip %v: part %d = %q, want %q", parts, i, got[i], parts[i])
			}
		}
	}
	if got := SplitEstimateKey(""); len(got) != 0 {
		t.Errorf(`SplitEstimateKey("") = %q, want empty`, got)
	}
}

func TestInsertRejectsKeySeparatorInGroupValues(t *testing.T) {
	w, tbl := buildCachedWarehouse(t)

	bad := "ea" + EstimateKeySep + "st"
	err := tbl.Insert(Str(bad), Str("pen"), F(1))
	if err == nil {
		t.Fatal("insert with U+001F in a grouping value must fail")
	}
	n := tbl.NumRows()
	// The reserved byte is fine in non-grouping columns... but "amount"
	// is a float here; verify a clean row still inserts and the failed
	// row did not reach the base relation.
	if err := tbl.Insert(Str("east"), Str("pen"), F(1)); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != n+1 {
		t.Fatalf("row count %d, want %d (rejected row must not be inserted)", tbl.NumRows(), n+1)
	}
	_ = w
}

func TestBuildSynopsisRejectsKeySeparatorInExistingRows(t *testing.T) {
	// Rows that arrive before a synopsis exists bypass Table.Insert's
	// separator guard (as do CSV and generator loads); BuildSynopsis must
	// catch them instead of building a sample whose composite group keys
	// silently merge or split.
	w, tbl := buildSalesWarehouse(t)
	bad := "ea" + EstimateKeySep + "st"
	if err := tbl.Insert(Str(bad), Str("pen"), F(1)); err != nil {
		t.Fatalf("insert before synopsis exists should not be guarded: %v", err)
	}
	err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 1000, Seed: 3,
	})
	if err == nil {
		t.Fatal("BuildSynopsis over a grouping value containing U+001F must fail")
	}
	if !errors.Is(err, ErrBadQuery) {
		t.Errorf("err = %v, want ErrBadQuery", err)
	}
	// Values with the separator in non-grouping columns are fine.
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"product"}, Space: 1000, Seed: 3,
	}); err != nil {
		t.Fatalf("separator outside the grouping columns must not block the build: %v", err)
	}
}

func TestCacheStatusStrings(t *testing.T) {
	for status, want := range map[CacheStatus]string{
		CacheBypass: "bypass",
		CacheMiss:   "miss",
		CacheHit:    "hit",
	} {
		if got := status.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(status), got, want)
		}
	}
}

func TestConcurrentIdenticalQueriesShareExecution(t *testing.T) {
	w, _ := buildCachedWarehouse(t)
	ctx := context.Background()
	const callers = 16
	var wg sync.WaitGroup
	results := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = res.String()
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different answer", i)
		}
	}
	m := w.Metrics()
	if m.CacheMisses > 2 {
		t.Errorf("%d misses for %d identical concurrent queries; singleflight not sharing", m.CacheMisses, callers)
	}
}

// BenchmarkCachedQuery compares a cache hit against the uncached answer
// path for the same query. The acceptance bar for the cache is a >=5x
// speedup on hits.
func BenchmarkCachedQuery(b *testing.B) {
	w, _ := buildCachedWarehouse(b)
	ctx := context.Background()
	if _, _, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{}); err != nil {
		b.Fatal(err)
	}
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, st, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if st != CacheHit {
				b.Fatalf("status = %v, want hit", st)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{NoCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCacheContention drives the cached path from all procs at
// once: every goroutine issues the same query, so throughput is bounded
// by the cache's read-side locking rather than query execution.
func BenchmarkCacheContention(b *testing.B) {
	w, _ := buildCachedWarehouse(b)
	ctx := context.Background()
	if _, _, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := w.ApproxQuery(ctx, cacheQuery, ApproxOptions{}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
