package main

import (
	"strings"
	"testing"
)

func TestRunFig5(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "fig5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The paper's exact Figure 5 values must appear.
	for _, frag := range []string{"27.3", "22.7", "23.5", "35.3", "0.706"} {
		if !strings.Contains(s, frag) {
			t.Errorf("figure 5 output missing %q:\n%s", frag, s)
		}
	}
}

func TestRunFig3(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "fig3", "-rows", "5000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "exact answer") || !strings.Contains(s, "error1") {
		t.Errorf("fig3 output:\n%s", s)
	}
}

func TestRunExp1Small(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "exp1", "-rows", "8000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"Figure 14", "Figure 15", "Figure 16", "Congress"} {
		if !strings.Contains(s, frag) {
			t.Errorf("exp1 output missing %q", frag)
		}
	}
}

func TestRunExp3Small(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "exp3", "-rows", "8000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Integrated") {
		t.Errorf("exp3 output:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "nope"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
