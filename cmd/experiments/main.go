// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 7) plus the Figure 5 allocation example and the
// Figure 3/4 Aqua demonstration, printing paper-style tables.
//
// Usage:
//
//	experiments -run all|fig5|fig3|exp1|exp2|exp3|exp4 [-rows N] [-full]
//
// By default experiments run on a scaled-down table (200K rows) so the
// whole suite finishes in minutes; -full uses the paper's 1M-row
// default.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/rewrite"
	"github.com/approxdb/congress/internal/tpcd"
	"github.com/approxdb/congress/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	which := fs.String("run", "all", "fig5|fig3|exp1|exp2|exp3|exp4|all")
	rows := fs.Int("rows", 200_000, "table size for the experiments")
	full := fs.Bool("full", false, "use the paper's full default parameters (1M rows)")
	seed := fs.Int64("seed", 1, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := workload.Params{TableSize: *rows, Seed: *seed}
	if *full {
		p.TableSize = workload.DefaultParams.TableSize
	}

	runners := map[string]func(io.Writer, workload.Params) error{
		"fig5": func(w io.Writer, _ workload.Params) error { return figure5(w) },
		"fig3": figure34,
		"exp1": experiment1,
		"exp2": experiment2,
		"exp3": experiment3,
		"exp4": experiment4,
		"expm": experimentM,
		"expz": experimentZ,
	}
	if *which == "all" {
		for _, name := range []string{"fig5", "fig3", "exp1", "exp2", "exp3", "exp4", "expm", "expz"} {
			if err := runners[name](out, p); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	r, ok := runners[*which]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return r(out, p)
}

// figure5 prints the paper's Figure 5 allocation table from the exact
// same example distribution.
func figure5(out io.Writer) error {
	fmt.Fprintln(out, "=== Figure 5: expected sample sizes for various techniques, X = 100 ===")
	cube := datacube.MustNew([]string{"A", "B"})
	groups := []struct {
		a, b string
		n    int
	}{
		{"a1", "b1", 3000}, {"a1", "b2", 3000}, {"a1", "b3", 1500}, {"a2", "b3", 2500},
	}
	for _, g := range groups {
		id := datacube.GroupID{g.a, g.b}
		for i := 0; i < g.n; i++ {
			if err := cube.Add(id); err != nil {
				return err
			}
		}
	}
	const X = 100
	house, _ := core.Allocate(core.House, cube, X)
	senate, _ := core.Allocate(core.Senate, cube, X)
	basic, _ := core.Allocate(core.BasicCongress, cube, X)
	congress, _ := core.Allocate(core.Congress, cube, X)

	fmt.Fprintf(out, "%-4s %-4s %8s %8s %10s %10s %10s %10s\n",
		"A", "B", "House", "Senate", "Basic(pre)", "Basic", "Cong(pre)", "Congress")
	for _, g := range groups {
		key := datacube.GroupID{g.a, g.b}.Key()
		fmt.Fprintf(out, "%-4s %-4s %8.1f %8.1f %10.1f %10.1f %10.1f %10.1f\n",
			g.a, g.b,
			house.Targets[key], senate.Targets[key],
			basic.PreScale[key], basic.Targets[key],
			congress.PreScale[key], congress.Targets[key])
	}
	fmt.Fprintf(out, "scale-down f: basic %.3f, congress %.3f\n\n", basic.ScaleDown, congress.ScaleDown)
	return nil
}

// figure34 reproduces the Figure 3/4 demonstration: TPC-D Query 1 on a
// skewed lineitem, answered exactly and from a 1%% uniform (House)
// sample with Aqua error bounds — exhibiting the poor accuracy on the
// smallest group that motivates congressional samples.
func figure34(out io.Writer, p workload.Params) error {
	fmt.Fprintln(out, "=== Figures 3 & 4: TPC-D Q1, exact vs 1% uniform sample with error bounds ===")
	rel, err := tpcd.Generate(tpcd.Params{
		TableSize: p.TableSize, NumGroups: 8, GroupSkew: 1.5, Seed: p.Seed,
	})
	if err != nil {
		return err
	}
	cat := engine.NewCatalog()
	cat.Register(rel)
	a := aqua.New(cat)
	if _, err := a.CreateSynopsis(aqua.Config{
		Table:            "lineitem",
		GroupCols:        tpcd.GroupingAttrs,
		Strategy:         core.House, // Figure 4 uses a uniform sample
		Space:            p.TableSize / 100,
		WithErrorColumns: true,
		Seed:             p.Seed,
	}); err != nil {
		return err
	}
	q := `select l_returnflag, l_linestatus, sum(l_quantity)
from lineitem
where l_shipdate <= '1998-09-01'
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus`

	exact, err := a.Exact(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "exact answer:\n%s\n", exact)
	approx, err := a.Answer(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "approximate answer (90%% confidence half-widths in error1):\n%s\n", approx)
	return nil
}

func experiment1(out io.Writer, p workload.Params) error {
	p.Skew = 1.5 // the paper discusses the skewed case
	fmt.Fprintf(out, "=== Expt 1 (Figures 14-16): accuracy by strategy, T=%d, SP=7%%, z=%.1f ===\n", withDefaults(p).TableSize, p.Skew)
	start := time.Now()
	qg0, qg3, qg2, err := workload.Experiment1(p)
	if err != nil {
		return err
	}
	printAccuracy(out, "Figure 14 (Q_g0, no group-by)", qg0)
	printAccuracy(out, "Figure 15 (Q_g3, three group-bys)", qg3)
	printAccuracy(out, "Figure 16 (Q_g2, two group-bys)", qg2)
	fmt.Fprintf(out, "(elapsed %v)\n\n", time.Since(start).Round(time.Second))
	return nil
}

func experiment2(out io.Writer, p workload.Params) error {
	p.Skew = 0.86
	pcts := []float64{1, 2, 5, 7, 10, 20, 50, 75}
	fmt.Fprintf(out, "=== Expt 2 (Figure 17): Q_g2 error vs sample size, z=0.86 ===\n")
	points, err := workload.Experiment2(p, pcts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%8s", "SP%")
	for _, s := range core.Strategies {
		fmt.Fprintf(out, " %14s", s)
	}
	fmt.Fprintln(out)
	for _, pt := range points {
		fmt.Fprintf(out, "%8.0f", pt.SamplePct)
		for _, s := range core.Strategies {
			fmt.Fprintf(out, " %13.2f%%", meanFor(pt.Rows, s))
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out)
	return nil
}

func experiment3(out io.Writer, p workload.Params) error {
	fmt.Fprintf(out, "=== Expt 3 (Table 3): rewrite strategy time vs sample size, NG=1000 ===\n")
	points, err := workload.Experiment3(p, []float64{1, 5, 10})
	if err != nil {
		return err
	}
	printTimings(out, points, true)
	return nil
}

func experiment4(out io.Writer, p workload.Params) error {
	fmt.Fprintf(out, "=== Expt 4 (Figure 18): rewrite strategy time vs group count, SP=7%% ===\n")
	counts := []int{10, 100, 1000, 10000}
	points, err := workload.Experiment4(p, counts)
	if err != nil {
		return err
	}
	printTimings(out, points, false)
	return nil
}

// experimentM is this reproduction's maintenance-drift experiment (no
// figure in the paper; it quantifies the Section 6 claim that
// incremental maintenance keeps answers accurate as the data drifts).
func experimentM(out io.Writer, p workload.Params) error {
	fmt.Fprintf(out, "=== Expt M (Section 6): Q_g2 error under distribution drift ===\n")
	rows, err := workload.MaintenanceExperiment(p, 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%6s %10s %12s %14s %14s\n", "phase", "inserted", "stale", "maintained-Eq8", "maintained-Δ")
	for _, r := range rows {
		fmt.Fprintf(out, "%6d %10d %11.2f%% %13.2f%% %13.2f%%\n",
			r.Phase, r.InsertedRows, r.StaleErr, r.Eq8Err, r.DeltaErr)
	}
	fmt.Fprintln(out)
	return nil
}

// experimentZ sweeps the group-size skew (Table 1's z range), showing
// the Section 7.2.1 observation that all strategies coincide at z=0 and
// diverge as skew grows.
func experimentZ(out io.Writer, p workload.Params) error {
	fmt.Fprintf(out, "=== Expt Z (Table 1 z range): Q_g3 error vs group-size skew ===\n")
	points, err := workload.ExperimentZ(p, []float64{0, 0.5, 0.86, 1.2, 1.5})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%8s", "z")
	for _, s := range core.Strategies {
		fmt.Fprintf(out, " %14s", s)
	}
	fmt.Fprintln(out)
	for _, pt := range points {
		fmt.Fprintf(out, "%8.2f", pt.Skew)
		for _, s := range core.Strategies {
			fmt.Fprintf(out, " %13.2f%%", meanFor(pt.Rows, s))
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out)
	return nil
}

func printAccuracy(out io.Writer, title string, rows []workload.AccuracyRow) {
	fmt.Fprintf(out, "%s\n%-16s %12s %12s %8s\n", title, "Strategy", "Mean err", "Max err", "Missing")
	for _, r := range rows {
		fmt.Fprintf(out, "%-16s %11.2f%% %11.2f%% %8d\n", r.Strategy, r.MeanPct, r.MaxPct, r.Missing)
	}
	fmt.Fprintln(out)
}

func printTimings(out io.Writer, points []*workload.TimingPoint, bySample bool) {
	header := "NG"
	if bySample {
		header = "SP%"
	}
	fmt.Fprintf(out, "%8s %12s", header, "exact")
	for _, s := range rewrite.Strategies {
		fmt.Fprintf(out, " %18s", s)
	}
	fmt.Fprintln(out)
	for _, pt := range points {
		if bySample {
			fmt.Fprintf(out, "%8.0f", pt.SamplePct)
		} else {
			fmt.Fprintf(out, "%8d", pt.NumGroups)
		}
		fmt.Fprintf(out, " %12s", pt.Exact.Round(time.Microsecond))
		for _, rt := range pt.Rewrites {
			fmt.Fprintf(out, " %18s", rt.Elapsed.Round(time.Microsecond))
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out)
}

func meanFor(rows []workload.AccuracyRow, s core.Strategy) float64 {
	for _, r := range rows {
		if r.Strategy == s {
			return r.MeanPct
		}
	}
	return -1
}

// withDefaults mirrors workload's unexported defaulting for display.
func withDefaults(p workload.Params) workload.Params {
	if p.TableSize == 0 {
		p.TableSize = workload.DefaultParams.TableSize
	}
	return p
}
