// Command colbench measures the columnar engine against the row engine
// on identical scan-filter-aggregate and scan-filter-project queries
// over a TPC-D-style lineitem table, and records the results as JSON.
//
// Every timed query is first checked for columnar eligibility via the
// engine's execution counters: if a query silently falls back to the
// row path the run exits nonzero, so a benchmark artifact can never
// report a "speedup" of the row engine over itself.
//
// Usage:
//
//	colbench [flags]
//
//	-rows N    lineitem rows to generate (default 1000000)
//	-iters N   timed iterations per query; the median is reported (default 5)
//	-out FILE  JSON output path (default BENCH_columnar.json)
//	-seed N    generator seed (default 1)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/tpcd"
)

// result is one query's measurement, append-written to -out.
type result struct {
	Name         string  `json:"name"`
	Rows         int     `json:"rows"`
	RowNS        int64   `json:"row_ns"`
	VectorizedNS int64   `json:"vectorized_ns"`
	Speedup      float64 `json:"speedup"`
}

var benchQueries = []struct{ name, sql string }{
	{
		"scan_filter_aggregate",
		"select l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), " +
			"avg(l_extendedprice), count(*) from lineitem " +
			"where l_shipdate >= '1994-01-01' and l_quantity < 500 " +
			"group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus",
	},
	{
		"scan_filter_project",
		"select l_id, l_quantity, l_extendedprice from lineitem " +
			"where l_extendedprice > 1400.0 and l_quantity between 100 and 900 " +
			"order by l_id limit 100",
	},
}

// median times fn iters times and returns the median duration.
func median(iters int, fn func() error) (time.Duration, error) {
	times := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

func run() error {
	rows := flag.Int("rows", 1_000_000, "lineitem rows")
	iters := flag.Int("iters", 5, "timed iterations per query (median reported)")
	out := flag.String("out", "BENCH_columnar.json", "JSON output path")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "generating %d lineitem rows...\n", *rows)
	rel, err := tpcd.Generate(tpcd.Params{TableSize: *rows, Seed: *seed})
	if err != nil {
		return err
	}
	cat := engine.NewCatalog()
	cat.Register(rel)
	rel.Batch() // pay batch construction once, outside the timings

	results := make([]result, 0, len(benchQueries))
	for _, q := range benchQueries {
		// Eligibility check: the vectorized counter must advance.
		engine.SetVectorized(true)
		v0, _ := engine.ExecCounts()
		if _, err := engine.ExecuteSQL(cat, q.sql); err != nil {
			return fmt.Errorf("%s: %w", q.name, err)
		}
		if v1, _ := engine.ExecCounts(); v1 == v0 {
			return fmt.Errorf("%s: query fell back to the row engine — columnar eligibility regressed", q.name)
		}

		vecNS, err := median(*iters, func() error {
			_, err := engine.ExecuteSQL(cat, q.sql)
			return err
		})
		if err != nil {
			return err
		}

		engine.SetVectorized(false)
		rowNS, err := median(*iters, func() error {
			_, err := engine.ExecuteSQL(cat, q.sql)
			return err
		})
		engine.SetVectorized(true)
		if err != nil {
			return err
		}

		r := result{
			Name:         q.name,
			Rows:         *rows,
			RowNS:        rowNS.Nanoseconds(),
			VectorizedNS: vecNS.Nanoseconds(),
			Speedup:      float64(rowNS) / float64(vecNS),
		}
		results = append(results, r)
		fmt.Printf("%-24s row %12v  vectorized %12v  speedup %.2fx\n", q.name, rowNS, vecNS, r.Speedup)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "colbench:", err)
		os.Exit(1)
	}
}
