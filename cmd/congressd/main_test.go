package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadgenSelf exercises the whole binary path end to end: build a
// warehouse, start an in-process server, drive it with concurrent
// clients, and write the BENCH_server.json summary.
func TestLoadgenSelf(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_server.json")
	var sb strings.Builder
	err := runLoadgen([]string{
		"-self", "-rows", "5000", "-groups", "50", "-clients", "4",
		"-duration", "500ms", "-out", out,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("BENCH_server.json is not valid JSON: %v\n%s", err, b)
	}
	if rep.Requests == 0 {
		t.Error("loadgen made no requests")
	}
	if rep.Errors != 0 {
		t.Errorf("loadgen saw %d errors: %v", rep.Errors, rep.ByCode)
	}
	if rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Errorf("nonsensical latency summary: %+v", rep.LatencyMS)
	}
	if !strings.Contains(sb.String(), "loadgen:") {
		t.Errorf("missing human summary in output: %q", sb.String())
	}
}

func TestSplitCSV(t *testing.T) {
	got := splitCSV(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
