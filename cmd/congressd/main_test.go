package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadgenSelf exercises the whole binary path end to end: build a
// warehouse, start an in-process server, drive it with concurrent
// clients, and write the BENCH_server.json summary.
func TestLoadgenSelf(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_server.json")
	var sb strings.Builder
	err := runLoadgen([]string{
		"-self", "-rows", "5000", "-groups", "50", "-clients", "4",
		"-duration", "500ms", "-out", out,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("BENCH_server.json is not valid JSON: %v\n%s", err, b)
	}
	if rep.Requests == 0 {
		t.Error("loadgen made no requests")
	}
	if rep.Errors != 0 {
		t.Errorf("loadgen saw %d errors: %v", rep.Errors, rep.ByCode)
	}
	if rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Errorf("nonsensical latency summary: %+v", rep.LatencyMS)
	}
	if !strings.Contains(sb.String(), "loadgen:") {
		t.Errorf("missing human summary in output: %q", sb.String())
	}
}

// TestLoadgenSelfSharded drives an in-process sharded server (direct
// scatter-gather estimates replacing the approximate-SQL mix) and
// checks the BENCH_shard.json accuracy report: both estimators must see
// every group and stay within sane relative error of exact SQL.
func TestLoadgenSelfSharded(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_server.json")
	shardOut := filepath.Join(dir, "BENCH_shard.json")
	var sb strings.Builder
	err := runLoadgen([]string{
		"-self", "-shards", "4", "-rows", "8000", "-groups", "27",
		"-clients", "4", "-duration", "500ms",
		"-out", out, "-shard-out", shardOut,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Errorf("sharded loadgen: %d requests, %d errors: %v", rep.Requests, rep.Errors, rep.ByCode)
	}
	if rep.ByKind["approx"] != 0 {
		t.Errorf("approximate SQL issued in sharded mode: %v", rep.ByKind)
	}
	if rep.ByKind["scatter"] == 0 {
		t.Errorf("no scatter estimates issued: %v", rep.ByKind)
	}

	var srep shardBenchReport
	b, err = os.ReadFile(shardOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &srep); err != nil {
		t.Fatalf("BENCH_shard.json is not valid JSON: %v\n%s", err, b)
	}
	if srep.Shards != 4 || srep.Groups == 0 {
		t.Fatalf("report header %+v", srep)
	}
	for _, name := range []string{"sum", "count", "avg"} {
		acc, ok := srep.Aggregates[name]
		if !ok {
			t.Fatalf("missing %s in %v", name, srep.Aggregates)
		}
		if acc.Groups != srep.Groups {
			t.Errorf("%s: %d groups, want %d", name, acc.Groups, srep.Groups)
		}
		// Loose sanity rails, not statistical assertions: at 7% space a
		// handful of coarse groups lands well within 50% relative error.
		if acc.Sharded.MaxRelErr > 0.5 || acc.Unsharded.MaxRelErr > 0.5 {
			t.Errorf("%s: implausible relative error: %+v", name, acc)
		}
	}
}

func TestSplitCSV(t *testing.T) {
	got := splitCSV(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
