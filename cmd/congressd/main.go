// Command congressd serves a congressional-samples warehouse over
// HTTP/JSON, and doubles as its own load generator.
//
// Serve mode (default) generates or loads a lineitem table, builds a
// synopsis, and serves the /v1 API until SIGINT/SIGTERM, then drains
// in-flight requests gracefully:
//
//	congressd serve -addr :8642 -rows 200000 -groups 1000 -strategy congress
//
// With -data-dir the warehouse is durable: state is recovered from the
// newest snapshot plus WAL replay on startup, every insert and DDL is
// write-ahead logged (fsync policy via -fsync), and a background
// snapshotter compacts the log:
//
//	congressd serve -addr :8642 -data-dir /var/lib/congressd -fsync interval
//
// With -shards K the warehouse is partitioned by hash of the routing
// key across K in-process shard warehouses and queries are answered by
// scatter-gather estimation. In-process shards share one process and
// hold no data directories of their own, so -shards cannot be combined
// with -data-dir:
//
//	congressd serve -addr :8642 -shards 4 -rows 200000 -groups 1000
//
// Distributed sharding runs each shard as its own congressd process —
// each with its own durable -data-dir if desired — and fronts them with
// a coordinator. A shard process carves out its partition of the
// generated table with -shard-index/-shard-total (all processes must
// agree on -seed, -rows and the grouping so they partition one
// logical relation); the coordinator routes inserts by the finest
// grouping key and scatter-gathers estimates over HTTP via
// /v1/estimate/partials:
//
//	congressd serve -addr :8701 -shard-index 0 -shard-total 2 -data-dir /var/lib/shard0
//	congressd serve -addr :8702 -shard-index 1 -shard-total 2 -data-dir /var/lib/shard1
//	congressd serve -addr :8642 -coordinator \
//	    -shard-endpoints http://localhost:8701,http://localhost:8702
//
// With -follow the server is a read-only replication follower: it
// bootstraps from the leader's newest shipped snapshot (or its own disk
// after a restart), tails the leader's WAL, rejects writes with a 503
// pointing at the leader, and reports lag on /healthz, /metrics, and
// /v1/repl/status. A durable leader (-data-dir without -follow) serves
// the /v1/repl shipping endpoints automatically:
//
//	congressd serve -addr :8643 -data-dir /var/lib/congressd-replica \
//	    -follow http://leader:8642
//
// Loadgen mode drives a server with concurrent clients for a fixed
// duration and reports p50/p95/p99 latency and error rates, writing a
// machine-readable summary to BENCH_server.json:
//
//	congressd loadgen -self -clients 8 -duration 10s
//	congressd loadgen -url http://localhost:8642 -clients 16 -duration 30s
//
// With -self -shards K loadgen drives a sharded in-process server
// (rotating direct estimates replace the approximate-SQL mix, which
// sharded mode does not serve) and afterwards benchmarks scatter-gather
// accuracy against an unsharded build of the same data and exact SQL
// ground truth, writing BENCH_shard.json:
//
//	congressd loadgen -self -shards 4 -clients 8 -duration 10s
//
// With -dist-shards K loadgen benchmarks a full distributed deployment
// spun up in-process — K shard HTTP servers plus a coordinator —
// against the in-process sharded estimator over the same data, scoring
// accuracy against exact ground truth and comparing fan-out latency,
// writing BENCH_distshard.json:
//
//	congressd loadgen -dist-shards 4 -rows 50000 -groups 200
//
// With -endpoints loadgen runs the replication read-scaling bench
// instead: a baseline phase reading from the leader alone, then a
// fan-out phase with the same mix round-robined across the endpoints,
// sampling follower staleness throughout and writing BENCH_repl.json:
//
//	congressd loadgen -url http://leader:8642 \
//	    -endpoints http://leader:8642,http://f1:8643,http://f2:8644
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	congress "github.com/approxdb/congress"
	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/repl"
	"github.com/approxdb/congress/internal/server"
	"github.com/approxdb/congress/internal/shard"
	"github.com/approxdb/congress/internal/tpcd"
	"github.com/approxdb/congress/internal/workload"
	"github.com/approxdb/congress/pkg/client"
)

func main() {
	args := os.Args[1:]
	mode := "serve"
	if len(args) > 0 && (args[0] == "serve" || args[0] == "loadgen") {
		mode, args = args[0], args[1:]
	}
	var err error
	switch mode {
	case "serve":
		err = runServe(args, os.Stdout)
	case "loadgen":
		err = runLoadgen(args, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "congressd:", err)
		os.Exit(1)
	}
}

// warehouseFlags are the demo-warehouse knobs shared by serve mode and
// loadgen -self.
type warehouseFlags struct {
	rows         *int
	groups       *int
	skew         *float64
	spacePct     *float64
	strategy     *string
	rewrite      *string
	seed         *int64
	workers      *int
	loadCSV      *string
	table        *string
	groupCols    *string
	cacheEntries *int
	cacheBytes   *int64
	shardIndex   *int
	shardTotal   *int
}

func addWarehouseFlags(fs *flag.FlagSet) *warehouseFlags {
	return &warehouseFlags{
		rows:         fs.Int("rows", 200_000, "generated table size"),
		groups:       fs.Int("groups", 1000, "number of groups"),
		skew:         fs.Float64("skew", 0.86, "group-size Zipf z"),
		spacePct:     fs.Float64("space-pct", 7, "synopsis size as % of table"),
		strategy:     fs.String("strategy", "congress", "house|senate|basic|congress"),
		rewrite:      fs.String("rewrite", "integrated", "integrated|nested|normalized|keynormalized"),
		seed:         fs.Int64("seed", 1, "RNG seed"),
		workers:      fs.Int("workers", congress.DefaultBuildWorkers(), "synopsis build workers"),
		loadCSV:      fs.String("load", "", "load the base table from a typed CSV instead of generating"),
		table:        fs.String("table", "lineitem", "base table name when loading from CSV"),
		groupCols:    fs.String("group-cols", "", "comma-separated grouping columns (default: TPC-D grouping attributes)"),
		cacheEntries: fs.Int("cache-entries", 0, "result-cache entry bound (0 = default 4096, negative disables caching)"),
		cacheBytes:   fs.Int64("cache-bytes", 0, "result-cache byte bound (0 = default 64 MiB, negative = unbounded)"),
		shardIndex:   fs.Int("shard-index", -1, "serve only this shard's partition of the table (0-based; requires -shard-total; all shard processes must agree on -seed/-rows/grouping)"),
		shardTotal:   fs.Int("shard-total", 0, "total shard count the partition is carved from (with -shard-index)"),
	}
}

// buildWarehouse materializes the demo warehouse described by the flags.
func buildWarehouse(wf *warehouseFlags, log *slog.Logger) (*congress.Warehouse, error) {
	w := congress.Open()
	w.ConfigureCache(*wf.cacheEntries, *wf.cacheBytes)
	if err := populateWarehouse(w, wf, log); err != nil {
		return nil, err
	}
	return w, nil
}

// loadRelation loads the base table from CSV or generates the TPC-D
// lineitem table, per the flags.
func loadRelation(wf *warehouseFlags, log *slog.Logger) (*engine.Relation, error) {
	var rel *engine.Relation
	start := time.Now()
	if *wf.loadCSV != "" {
		f, err := os.Open(*wf.loadCSV)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if rel, err = engine.ReadCSV(*wf.table, f); err != nil {
			return nil, err
		}
	} else {
		var err error
		rel, err = tpcd.Generate(tpcd.Params{
			TableSize: *wf.rows, NumGroups: *wf.groups, GroupSkew: *wf.skew, Seed: *wf.seed,
		})
		if err != nil {
			return nil, err
		}
	}
	if *wf.shardIndex >= 0 {
		var err error
		if rel, err = shardPartition(rel, wf); err != nil {
			return nil, err
		}
	}
	log.Info("table ready", slog.String("table", rel.Name),
		slog.Int("rows", rel.NumRows()), slog.Duration("took", time.Since(start)))
	return rel, nil
}

// shardPartition filters a loaded relation down to one shard's slice:
// the rows whose finest grouping key routes to -shard-index under a
// -shard-total-way hash router — exactly the partition a coordinator
// with the same membership size sends this process. Every shard process
// loading the same relation deterministically carves a disjoint slice,
// so together they hold it exactly once.
func shardPartition(rel *engine.Relation, wf *warehouseFlags) (*engine.Relation, error) {
	if *wf.shardTotal <= *wf.shardIndex {
		return nil, fmt.Errorf("serve: -shard-index %d needs -shard-total > it, got %d", *wf.shardIndex, *wf.shardTotal)
	}
	grouping := tpcd.GroupingAttrs
	if *wf.groupCols != "" {
		grouping = splitCSV(*wf.groupCols)
	}
	g, err := core.NewGrouping(rel.Schema, grouping)
	if err != nil {
		return nil, err
	}
	router, err := shard.NewRouter(*wf.shardTotal)
	if err != nil {
		return nil, err
	}
	var part []engine.Row
	for _, row := range rel.Rows() {
		if router.Route(g.Key(row)) == *wf.shardIndex {
			part = append(part, row)
		}
	}
	sliced := engine.NewRelation(rel.Name, rel.Schema)
	if err := sliced.InsertAll(part); err != nil {
		return nil, err
	}
	return sliced, nil
}

// synopsisSpecFor resolves the strategy/rewrite/grouping flags into the
// synopsis spec for a loaded relation.
func synopsisSpecFor(wf *warehouseFlags, rel *engine.Relation) (congress.SynopsisSpec, error) {
	strategy, err := congress.ParseStrategy(*wf.strategy)
	if err != nil {
		return congress.SynopsisSpec{}, err
	}
	rw, err := congress.ParseRewriteStrategy(*wf.rewrite)
	if err != nil {
		return congress.SynopsisSpec{}, err
	}
	grouping := tpcd.GroupingAttrs
	if *wf.groupCols != "" {
		grouping = splitCSV(*wf.groupCols)
	}
	return congress.SynopsisSpec{
		Table:        rel.Name,
		GroupBy:      grouping,
		Space:        int(float64(rel.NumRows()) * *wf.spacePct / 100),
		Strategy:     strategy,
		Rewrite:      rw,
		BuildWorkers: *wf.workers,
		Seed:         *wf.seed,
	}, nil
}

// populateWarehouse loads or generates the base table and builds its
// synopsis inside an already-open warehouse (fresh or durable).
func populateWarehouse(w *congress.Warehouse, wf *warehouseFlags, log *slog.Logger) error {
	rel, err := loadRelation(wf, log)
	if err != nil {
		return err
	}
	spec, err := synopsisSpecFor(wf, rel)
	if err != nil {
		return err
	}
	if _, err := w.AttachRelation(rel); err != nil {
		return err
	}
	start := time.Now()
	if err := w.BuildSynopsis(spec); err != nil {
		return err
	}
	log.Info("synopsis ready", slog.String("strategy", spec.Strategy.String()),
		slog.Int("space", spec.Space), slog.Duration("took", time.Since(start)))
	return nil
}

// buildShardedWarehouse materializes the demo warehouse partitioned
// across K shards, routed by the synopsis grouping key so every stratum
// lives whole on one shard.
func buildShardedWarehouse(wf *warehouseFlags, shards int, log *slog.Logger) (*congress.ShardedWarehouse, error) {
	rel, err := loadRelation(wf, log)
	if err != nil {
		return nil, err
	}
	spec, err := synopsisSpecFor(wf, rel)
	if err != nil {
		return nil, err
	}
	sw, err := congress.OpenSharded(shards)
	if err != nil {
		return nil, err
	}
	sw.ConfigureCache(*wf.cacheEntries, *wf.cacheBytes)
	if _, err := sw.AttachRelation(rel, spec.GroupBy); err != nil {
		return nil, err
	}
	start := time.Now()
	if err := sw.BuildSynopsis(spec); err != nil {
		return nil, err
	}
	log.Info("sharded synopsis ready", slog.String("strategy", spec.Strategy.String()),
		slog.Int("shards", shards), slog.Int("space", spec.Space),
		slog.Duration("took", time.Since(start)))
	return sw, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %v", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// ----- serve mode -----

func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("congressd serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8642", "listen address")
	shards := fs.Int("shards", 0, "partition across K in-process shard warehouses with scatter-gather estimation (0 = unsharded; incompatible with -data-dir)")
	coordinator := fs.Bool("coordinator", false, "serve as a distributed coordinator over shard congressd processes (needs -shard-endpoints or -shard-config)")
	shardEndpoints := fs.String("shard-endpoints", "", "comma-separated shard base URLs in ordinal order (with -coordinator)")
	shardConfig := fs.String("shard-config", "", `membership JSON file {"shards":["http://...",...]} (with -coordinator; alternative to -shard-endpoints)`)
	shardWait := fs.Duration("shard-wait", 30*time.Second, "how long the coordinator waits for every shard to answer health probes before serving")
	shardLegTimeout := fs.Duration("shard-leg-timeout", 10*time.Second, "per-shard fan-out attempt timeout on the coordinator")
	shardRetries := fs.Int("shard-retries", 2, "extra attempts per transiently failing fan-out leg before the query fails shard_unavailable (negative = none)")
	wf := addWarehouseFlags(fs)
	maxConcurrent := fs.Int("max-concurrent", 0, "max requests executing at once (0 = 4×GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, "admission queue depth before shedding with 429 (0 = 4×max-concurrent)")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 60*time.Second, "upper clamp on client-requested timeout_ms")
	maxQueueWait := fs.Duration("max-queue-wait", 0, "cap on admission-queue wait before 504; execution deadline starts after the wait (0 = max-timeout)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
	logLevel := fs.String("log-level", "info", "debug|info|warn|error")
	dataDir := fs.String("data-dir", "", "durable data directory: snapshot + WAL crash recovery (empty = in-memory only)")
	follow := fs.String("follow", "", "replicate from this leader base URL (read-only follower mode; requires -data-dir, incompatible with -shards)")
	fsyncFlag := fs.String("fsync", "always", "WAL durability under -data-dir: always|interval|none")
	fsyncInterval := fs.Duration("fsync-interval", 50*time.Millisecond, "fsync period under -fsync=interval")
	snapInterval := fs.Duration("snapshot-interval", 5*time.Minute, "background snapshot period (negative disables the timer)")
	snapInserts := fs.Int64("snapshot-inserts", 100_000, "background snapshot after this many inserts (negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := newLogger(*logLevel)
	if err != nil {
		return err
	}

	var (
		w        *congress.Warehouse
		sw       *congress.ShardedWarehouse
		co       *congress.Coordinator
		leader   *repl.Leader
		follower *repl.Follower
	)
	if *coordinator {
		switch {
		case *shards > 0:
			return errors.New("serve: -coordinator fronts shard processes; it cannot also hold in-process -shards")
		case *dataDir != "":
			return errors.New("serve: the coordinator holds no data; -data-dir belongs on the shard processes")
		case *follow != "":
			return errors.New("serve: -coordinator cannot be combined with -follow")
		case *wf.shardIndex >= 0:
			return errors.New("serve: -coordinator and -shard-index are different roles; run them as separate processes")
		}
		var endpoints []string
		switch {
		case *shardEndpoints != "" && *shardConfig != "":
			return errors.New("serve: use one of -shard-endpoints and -shard-config, not both")
		case *shardEndpoints != "":
			endpoints = splitCSV(*shardEndpoints)
		case *shardConfig != "":
			mem, err := shard.LoadMembership(*shardConfig)
			if err != nil {
				return err
			}
			endpoints = mem.Endpoints
		default:
			return errors.New("serve: -coordinator needs -shard-endpoints or -shard-config")
		}
		co, err = congress.NewCoordinator(endpoints, congress.CoordinatorOptions{
			LegTimeout: *shardLegTimeout,
			Retries:    *shardRetries,
		})
		if err != nil {
			return err
		}
		waitCtx, cancel := context.WithTimeout(context.Background(), *shardWait)
		err = co.WaitHealthy(waitCtx, 250*time.Millisecond)
		cancel()
		if err != nil {
			return fmt.Errorf("serve: shards not healthy: %w", err)
		}
		discCtx, cancel := context.WithTimeout(context.Background(), *shardWait)
		err = co.Discover(discCtx)
		cancel()
		if err != nil {
			return fmt.Errorf("serve: shard discovery: %w", err)
		}
		log.Info("coordinator ready", slog.Int("shards", co.NumShards()),
			slog.String("endpoints", strings.Join(co.Endpoints(), ",")))
	} else if *follow != "" {
		if *dataDir == "" {
			return errors.New("serve: -follow needs -data-dir for the shipped snapshot and WAL")
		}
		if *shards > 0 {
			return errors.New("serve: -follow cannot be combined with -shards")
		}
		if w, follower, err = startFollower(*follow, *dataDir, log); err != nil {
			return err
		}
		w.ConfigureCache(*wf.cacheEntries, *wf.cacheBytes)
		defer follower.Close()
	} else if *shards > 0 {
		if *dataDir != "" {
			return errors.New("serve: -shards runs every shard inside this process and cannot be combined with -data-dir; for durable shards run one congressd per shard behind a -coordinator")
		}
		if sw, err = buildShardedWarehouse(wf, *shards, log); err != nil {
			return err
		}
	} else if *dataDir != "" {
		mode, err := congress.ParseFsyncMode(*fsyncFlag)
		if err != nil {
			return err
		}
		var rs congress.RecoveryStats
		w, rs, err = congress.OpenDir(*dataDir, congress.PersistOptions{
			Fsync:            mode,
			FsyncInterval:    *fsyncInterval,
			SnapshotInterval: *snapInterval,
			SnapshotEvery:    *snapInserts,
		})
		if err != nil {
			return err
		}
		log.Info("data directory recovered",
			slog.String("dir", *dataDir),
			slog.Bool("snapshot_loaded", rs.SnapshotLoaded),
			slog.Int("skipped_snapshots", rs.SkippedSnapshots),
			slog.Int("replayed_records", rs.ReplayedRecords),
			slog.Int64("truncated_bytes", rs.TruncatedBytes),
			slog.Duration("took", rs.Elapsed))
		w.ConfigureCache(*wf.cacheEntries, *wf.cacheBytes)
		if len(w.Synopses()) == 0 {
			if err := populateWarehouse(w, wf, log); err != nil {
				return err
			}
			// The attached base table is only durable once snapshotted;
			// force one now so a crash cannot strand the logged
			// build-synopsis record without its table.
			if err := w.TriggerSnapshot(); err != nil {
				return err
			}
		} else {
			log.Info("serving recovered warehouse", slog.Int("synopses", len(w.Synopses())))
		}
		leader = repl.NewLeader(w.PersistManager(), repl.LeaderOptions{Logger: log})
	} else {
		if w, err = buildWarehouse(wf, log); err != nil {
			return err
		}
	}
	srv := server.New(server.Options{
		Warehouse:      w,
		Sharded:        sw,
		Coordinator:    co,
		ReplLeader:     leader,
		Follower:       follower,
		Logger:         log,
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxQueueWait:   *maxQueueWait,
		RetryAfter:     *retryAfter,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "congressd listening on %s\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	var fatalErr error
	if follower != nil {
		// A terminal replication error (divergence, pruned history,
		// corrupt local state) cannot heal in-process: exit non-zero so a
		// supervisor restarts us and the bootstrap path re-syncs.
		select {
		case <-ctx.Done():
		case ferr := <-follower.Fatal():
			log.Error("replication failed; shutting down", slog.String("err", ferr.Error()))
			fatalErr = fmt.Errorf("replication: %w", ferr)
		}
	} else {
		<-ctx.Done()
	}
	stop()

	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	err = srv.Shutdown(drainCtx)
	if fatalErr != nil && err == nil {
		err = fatalErr
	}
	// After the drain no more mutations arrive: flush the final snapshot
	// and close the WAL so the next start replays nothing. The coordinator
	// holds no warehouse of its own, so there is nothing to close there.
	var closer interface{ Close() error }
	switch {
	case sw != nil:
		closer = sw
	case w != nil:
		closer = w
	}
	if closer != nil {
		if cerr := closer.Close(); cerr != nil {
			log.Error("closing warehouse", slog.String("err", cerr.Error()))
			if err == nil {
				err = cerr
			}
		}
	}
	return err
}

// startFollower boots a read-only replica: a fresh in-memory warehouse
// restored from local replica state when present, otherwise from a
// snapshot shipped by the leader. If the first bootstrap fails the local
// state is presumed unusable (corrupt, diverged, or already pruned on
// the leader), so it is wiped and bootstrap retried once from scratch.
func startFollower(leaderURL, dir string, log *slog.Logger) (*congress.Warehouse, *repl.Follower, error) {
	boot := func() (*congress.Warehouse, *repl.Follower, error) {
		w := congress.Open()
		f, err := repl.NewFollower(repl.FollowerOptions{
			Leader: leaderURL,
			Dir:    dir,
			Target: w,
			Logger: log,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := f.Start(); err != nil {
			return nil, nil, err
		}
		return w, f, nil
	}
	w, f, err := boot()
	if err == nil {
		return w, f, nil
	}
	log.Warn("follower bootstrap failed; wiping local replica state and retrying",
		slog.String("dir", dir), slog.String("err", err.Error()))
	if werr := wipeReplicaState(dir); werr != nil {
		return nil, nil, fmt.Errorf("serve: bootstrap failed (%v) and wipe failed: %w", err, werr)
	}
	return boot()
}

// wipeReplicaState removes shipped snapshots and WAL segments from a
// follower's data directory so bootstrap can restart from the leader.
func wipeReplicaState(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snap-") || strings.HasPrefix(name, "wal-") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ----- loadgen mode -----

// benchReport is the BENCH_server.json schema.
type benchReport struct {
	URL           string           `json:"url"`
	Clients       int              `json:"clients"`
	DurationSec   float64          `json:"duration_sec"`
	Requests      int64            `json:"requests"`
	Errors        int64            `json:"errors"`
	Shed          int64            `json:"shed"`
	ErrorRate     float64          `json:"error_rate"`
	ThroughputRPS float64          `json:"throughput_rps"`
	LatencyMS     latencySummary   `json:"latency_ms"`
	ByKind        map[string]int64 `json:"requests_by_kind"`
	ByCode        map[string]int64 `json:"errors_by_code,omitempty"`
	CacheHits     int64            `json:"cache_hits"`
	CacheMisses   int64            `json:"cache_misses"`
	CacheHitRate  float64          `json:"cache_hit_rate"`
	Warehouse     map[string]any   `json:"warehouse,omitempty"`
}

type latencySummary struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func runLoadgen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("congressd loadgen", flag.ContinueOnError)
	url := fs.String("url", "", "target server base URL (empty with -self runs an in-process server)")
	self := fs.Bool("self", false, "spin up an in-process server over a generated warehouse")
	clients := fs.Int("clients", 8, "concurrent client goroutines")
	duration := fs.Duration("duration", 10*time.Second, "load duration")
	insertPct := fs.Int("insert-pct", 10, "percent of requests that are inserts")
	estimatePct := fs.Int("estimate-pct", 20, "percent of requests that are direct estimates")
	noCache := fs.Bool("no-cache", false, "send no_cache on every query (measure the uncached path)")
	timeoutMS := fs.Int64("timeout-ms", 0, "per-request timeout_ms to send (0 = server default)")
	outPath := fs.String("out", "BENCH_server.json", "summary JSON path (empty to skip)")
	shards := fs.Int("shards", 0, "with -self: run the in-process server sharded across K warehouses (direct estimates replace the approximate-SQL mix)")
	shardOut := fs.String("shard-out", "BENCH_shard.json", "with -self -shards: scatter-gather accuracy report path (empty to skip)")
	endpoints := fs.String("endpoints", "", "comma-separated base URLs (leader + followers) to fan reads across: runs the replication read-scaling bench instead of the standard loadgen (-url must point at the leader)")
	replOut := fs.String("repl-out", "BENCH_repl.json", "with -endpoints: replication bench report path (empty to skip)")
	distShards := fs.Int("dist-shards", 0, "run the distributed-vs-in-process sharding bench over K shard HTTP servers instead of the standard loadgen")
	distIters := fs.Int("dist-iters", 50, "with -dist-shards: estimate iterations per latency summary")
	distOut := fs.String("dist-out", "BENCH_distshard.json", "with -dist-shards: distributed sharding report path (empty to skip)")
	hybrid := fs.Bool("hybrid", false, "run the hybrid exact+sample coverage bench instead of the standard loadgen")
	hybridOut := fs.String("hybrid-out", "BENCH_hybrid.json", "with -hybrid: hybrid coverage report path (empty to skip)")
	seed := fs.Int64("loadgen-seed", 42, "workload RNG seed")
	wf := addWarehouseFlags(fs)
	logLevel := fs.String("log-level", "warn", "debug|info|warn|error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := newLogger(*logLevel)
	if err != nil {
		return err
	}

	if *distShards > 0 {
		return runDistBench(out, wf, *distShards, *distIters, *distOut, log)
	}

	if *hybrid {
		return runHybridBench(out, wf, *hybridOut, log)
	}

	if *endpoints != "" {
		if *url == "" {
			return errors.New("loadgen: -endpoints needs -url pointing at the leader")
		}
		return runReplBench(out, replBenchConfig{
			leader:    *url,
			endpoints: splitCSV(*endpoints),
			clients:   *clients,
			duration:  *duration,
			insertPct: *insertPct,
			noCache:   *noCache,
			timeoutMS: *timeoutMS,
			seed:      *seed,
			outPath:   *replOut,
		})
	}

	base := *url
	var srv *server.Server
	if base == "" {
		if !*self {
			return errors.New("loadgen: need -url or -self")
		}
		opts := server.Options{Logger: log}
		if *shards > 0 {
			sw, err := buildShardedWarehouse(wf, *shards, log)
			if err != nil {
				return err
			}
			opts.Sharded = sw
		} else {
			w, err := buildWarehouse(wf, log)
			if err != nil {
				return err
			}
			opts.Warehouse = w
		}
		srv = server.New(opts)
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		base = "http://" + bound
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}

	c := client.New(base)
	if err := c.Health(context.Background()); err != nil {
		return fmt.Errorf("loadgen: target %s not healthy: %w", base, err)
	}

	type sample struct {
		d     time.Duration
		kind  string
		cache string
		err   error
	}
	var (
		mu      sync.Mutex
		samples []sample
	)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < *clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(ci)))
			timed := make([]sample, 0, 1024)
			for ctx.Err() == nil {
				t0 := time.Now()
				kind, cache, err := oneRequest(ctx, c, rng, *insertPct, *estimatePct, *noCache, *timeoutMS, *shards > 0)
				d := time.Since(t0)
				if ctx.Err() != nil && err != nil {
					break // don't count a request cut off by the run deadline
				}
				timed = append(timed, sample{d: d, kind: kind, cache: cache, err: err})
			}
			mu.Lock()
			samples = append(samples, timed...)
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := benchReport{
		URL:         base,
		Clients:     *clients,
		DurationSec: elapsed.Seconds(),
		ByKind:      map[string]int64{},
		ByCode:      map[string]int64{},
	}
	if *url == "" {
		rep.Warehouse = map[string]any{
			"rows": *wf.rows, "groups": *wf.groups, "skew": *wf.skew,
			"space_pct": *wf.spacePct, "strategy": *wf.strategy,
		}
		if *shards > 0 {
			rep.Warehouse["shards"] = *shards
		}
	}
	lats := make([]float64, 0, len(samples))
	var sum, max float64
	for _, s := range samples {
		rep.Requests++
		rep.ByKind[s.kind]++
		switch s.cache {
		case "hit":
			rep.CacheHits++
		case "miss":
			rep.CacheMisses++
		}
		ms := float64(s.d) / float64(time.Millisecond)
		if s.err != nil {
			rep.Errors++
			code := "transport"
			var ae *client.APIError
			if errors.As(s.err, &ae) {
				code = ae.Code
				if client.IsOverloaded(s.err) {
					rep.Shed++
				}
			}
			rep.ByCode[code]++
			continue
		}
		lats = append(lats, ms)
		sum += ms
		if ms > max {
			max = ms
		}
	}
	sort.Float64s(lats)
	if n := len(lats); n > 0 {
		rep.LatencyMS = latencySummary{
			P50:  lats[n/2],
			P95:  lats[min(n-1, n*95/100)],
			P99:  lats[min(n-1, n*99/100)],
			Mean: sum / float64(n),
			Max:  max,
		}
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	if looked := rep.CacheHits + rep.CacheMisses; looked > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(looked)
	}
	rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()

	fmt.Fprintf(out, "loadgen: %d clients, %.1fs: %d requests (%.0f req/s), %d errors (%.2f%%), %d shed\n",
		rep.Clients, rep.DurationSec, rep.Requests, rep.ThroughputRPS, rep.Errors, 100*rep.ErrorRate, rep.Shed)
	fmt.Fprintf(out, "latency ms: p50=%.2f p95=%.2f p99=%.2f mean=%.2f max=%.2f\n",
		rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Mean, rep.LatencyMS.Max)
	fmt.Fprintf(out, "cache: %d hits, %d misses (%.1f%% hit rate)\n",
		rep.CacheHits, rep.CacheMisses, 100*rep.CacheHitRate)
	if *outPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}

	if *shards > 0 && *shardOut != "" {
		if *wf.loadCSV != "" {
			log.Warn("skipping shard accuracy bench: needs a generated table with known ground truth")
			return nil
		}
		srep, err := shardAccuracyBench(wf, *shards, log)
		if err != nil {
			return err
		}
		for agg, acc := range srep.Aggregates {
			fmt.Fprintf(out, "shard accuracy %s over %d groups: sharded rel-err mean=%.4f max=%.4f coverage=%.2f; unsharded mean=%.4f max=%.4f coverage=%.2f\n",
				agg, acc.Groups,
				acc.Sharded.MeanRelErr, acc.Sharded.MaxRelErr, acc.Sharded.Coverage,
				acc.Unsharded.MeanRelErr, acc.Unsharded.MaxRelErr, acc.Unsharded.Coverage)
		}
		b, err := json.MarshalIndent(srep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*shardOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *shardOut)
	}
	return nil
}

// ----- sharded accuracy bench -----

// shardBenchReport is the BENCH_shard.json schema: scatter-gather
// estimation accuracy at K shards versus an unsharded synopsis over the
// same generated data, both judged against exact SQL ground truth.
type shardBenchReport struct {
	Shards     int                         `json:"shards"`
	Rows       int                         `json:"rows"`
	Groups     int                         `json:"groups"`
	SpacePct   float64                     `json:"space_pct"`
	Confidence float64                     `json:"confidence"`
	GroupBy    []string                    `json:"group_by"`
	Aggregates map[string]shardAggAccuracy `json:"aggregates"`
}

// shardAggAccuracy compares one aggregate's sharded and unsharded
// estimates over the same group set.
type shardAggAccuracy struct {
	Groups    int             `json:"groups"`
	Sharded   accuracySummary `json:"sharded"`
	Unsharded accuracySummary `json:"unsharded"`
}

// accuracySummary reports relative error against exact ground truth and
// the fraction of groups whose confidence bound covered the truth.
type accuracySummary struct {
	MeanRelErr float64 `json:"mean_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
	Coverage   float64 `json:"bound_coverage"`
}

// shardAccuracyBench builds pristine sharded and unsharded warehouses
// over one generated relation (independent of the load-test server, so
// inserts during the run don't skew the comparison) and scores both
// estimators' sum/count/avg answers against exact SQL.
func shardAccuracyBench(wf *warehouseFlags, shards int, log *slog.Logger) (*shardBenchReport, error) {
	rel, err := loadRelation(wf, log)
	if err != nil {
		return nil, err
	}
	spec, err := synopsisSpecFor(wf, rel)
	if err != nil {
		return nil, err
	}
	const conf = 0.95
	groupBy := spec.GroupBy[:1]
	aggCol := "l_quantity"

	exactW := congress.Open()
	if _, err := exactW.AttachRelation(rel); err != nil {
		return nil, err
	}
	res, err := exactW.Query(fmt.Sprintf(
		"select %s, sum(%s), count(*), avg(%s) from %s group by %s",
		groupBy[0], aggCol, aggCol, rel.Name, groupBy[0]))
	if err != nil {
		return nil, err
	}
	truth := make(map[string][3]float64, len(res.Rows)) // group → sum, count, avg
	for _, r := range res.Rows {
		s, _ := r[1].AsFloat()
		c, _ := r[2].AsFloat()
		a, _ := r[3].AsFloat()
		truth[r[0].String()] = [3]float64{s, c, a}
	}

	unW := congress.Open()
	if _, err := unW.AttachRelation(rel); err != nil {
		return nil, err
	}
	if err := unW.BuildSynopsis(spec); err != nil {
		return nil, err
	}
	sw, err := congress.OpenSharded(shards)
	if err != nil {
		return nil, err
	}
	if _, err := sw.AttachRelation(rel, spec.GroupBy); err != nil {
		return nil, err
	}
	if err := sw.BuildSynopsis(spec); err != nil {
		return nil, err
	}

	rep := &shardBenchReport{
		Shards: shards, Rows: rel.NumRows(), Groups: len(truth),
		SpacePct: *wf.spacePct, Confidence: conf, GroupBy: groupBy,
		Aggregates: make(map[string]shardAggAccuracy, 3),
	}
	aggs := []struct {
		name string
		agg  congress.Aggregate
	}{{"sum", congress.Sum}, {"count", congress.Count}, {"avg", congress.Avg}}
	for ai, a := range aggs {
		shardedEsts, err := sw.Estimate(rel.Name, groupBy, a.agg, aggCol, conf)
		if err != nil {
			return nil, err
		}
		unEsts, err := unW.Estimate(rel.Name, groupBy, a.agg, aggCol, conf)
		if err != nil {
			return nil, err
		}
		acc := shardAggAccuracy{Groups: len(truth)}
		if acc.Sharded, err = scoreEstimates(shardedEsts, truth, ai); err != nil {
			return nil, fmt.Errorf("sharded %s: %w", a.name, err)
		}
		if acc.Unsharded, err = scoreEstimates(unEsts, truth, ai); err != nil {
			return nil, fmt.Errorf("unsharded %s: %w", a.name, err)
		}
		rep.Aggregates[a.name] = acc
	}
	return rep, nil
}

// scoreEstimates folds one estimator's groups into relative-error and
// bound-coverage summaries against the exact answers.
func scoreEstimates(ests []congress.GroupEstimate, truth map[string][3]float64, ai int) (accuracySummary, error) {
	var acc accuracySummary
	if len(ests) == 0 {
		return acc, errors.New("no groups estimated")
	}
	covered := 0
	for _, e := range ests {
		tr, ok := truth[e.Key]
		if !ok {
			return acc, fmt.Errorf("estimated group %q not in ground truth", e.Key)
		}
		denom := math.Abs(tr[ai])
		if denom == 0 {
			denom = 1
		}
		rel := math.Abs(e.Value-tr[ai]) / denom
		acc.MeanRelErr += rel
		if rel > acc.MaxRelErr {
			acc.MaxRelErr = rel
		}
		if math.Abs(e.Value-tr[ai]) <= e.Bound {
			covered++
		}
	}
	acc.MeanRelErr /= float64(len(ests))
	acc.Coverage = float64(covered) / float64(len(ests))
	return acc, nil
}

// scatterMix is the estimate rotation that replaces the
// approximate-SQL slice of the workload in sharded mode, which only
// serves direct scatter-gather estimates; entries vary the grouping and
// aggregate so the fan-out path sees some diversity.
var scatterMix = []client.EstimateRequest{
	{Table: "lineitem", GroupBy: []string{"l_returnflag"}, Agg: "sum", Column: "l_quantity"},
	{Table: "lineitem", GroupBy: []string{"l_linestatus"}, Agg: "count", Column: "l_quantity"},
	{Table: "lineitem", GroupBy: []string{"l_returnflag", "l_linestatus"}, Agg: "avg", Column: "l_extendedprice"},
}

// oneRequest issues a single randomized request from the workload mix
// and reports its kind plus the server's cache disposition (empty for
// inserts and failures).
func oneRequest(ctx context.Context, c *client.Client, rng *rand.Rand, insertPct, estimatePct int, noCache bool, timeoutMS int64, sharded bool) (kind, cache string, err error) {
	roll := rng.Intn(100)
	switch {
	case roll < insertPct:
		row := []any{
			rng.Int63n(1 << 40), rng.Intn(3), rng.Intn(2),
			fmt.Sprintf("1994-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)),
			float64(1 + rng.Intn(50)), 100 * float64(1+rng.Intn(500)),
		}
		_, err := c.Insert(ctx, client.InsertRequest{Table: "lineitem", Rows: [][]any{row}})
		return "insert", "", err
	case roll < insertPct+estimatePct:
		resp, err := c.Query(ctx, client.QueryRequest{
			Estimate: &client.EstimateRequest{
				Table:   "lineitem",
				GroupBy: []string{"l_returnflag", "l_linestatus"},
				Agg:     "sum",
				Column:  "l_quantity",
			},
			NoCache:   noCache,
			TimeoutMS: timeoutMS,
		})
		if err != nil {
			return "estimate", "", err
		}
		return "estimate", resp.Cache, nil
	default:
		if sharded {
			est := scatterMix[rng.Intn(len(scatterMix))]
			resp, err := c.Query(ctx, client.QueryRequest{Estimate: &est, NoCache: noCache, TimeoutMS: timeoutMS})
			if err != nil {
				return "scatter", "", err
			}
			return "scatter", resp.Cache, nil
		}
		resp, err := c.Query(ctx, client.QueryRequest{SQL: workload.Qg2, NoCache: noCache, TimeoutMS: timeoutMS})
		if err != nil {
			return "approx", "", err
		}
		return "approx", resp.Cache, nil
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
