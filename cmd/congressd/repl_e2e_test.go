package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/approxdb/congress/pkg/client"
)

// startServeProc launches the binary in serve mode with the given extra
// flags and returns the process, its bound address, and captured stderr.
func startServeProc(t *testing.T, bin string, extra ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-log-level", "warn"}, extra...)
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "congressd listening on "); ok {
				addrCh <- rest
				return
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("congressd exited before listening:\n%s", stderr.String())
		}
		return cmd, addr, &stderr
	case <-time.After(120 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("congressd did not start listening:\n%s", stderr.String())
	}
	panic("unreachable")
}

func killProc(cmd *exec.Cmd) {
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()
	}
}

// waitCaughtUp polls a follower until it holds the leader's full row
// count AND reports zero lag on /v1/repl/status. Both matter: the
// status lag is computed against the leader position echoed on the
// follower's last poll, which can trail writes that landed since, so
// the row count is the ground truth and the status check then verifies
// the lag accounting agrees.
func waitCaughtUp(t *testing.T, c *client.Client, wantRows int64, what string) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for {
		rows := exactCount(t, c)
		st, err := c.ReplStatus(ctx)
		if rows == wantRows && err == nil && st.Role == "follower" && st.CaughtUp && st.LagRecords == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never caught up: rows=%d want=%d status=%+v err=%v", what, rows, wantRows, st, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func estimateGroups(t *testing.T, c *client.Client) []client.GroupEstimate {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := c.Query(ctx, client.QueryRequest{
		Estimate: &client.EstimateRequest{
			Table:   "lineitem",
			GroupBy: []string{"l_returnflag", "l_linestatus"},
			Agg:     "sum",
			Column:  "l_quantity",
		},
		NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Groups) == 0 {
		t.Fatal("estimate returned no groups")
	}
	return resp.Groups
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestReplicationEndToEnd is the replication drill: a real durable
// leader plus two real follower processes, ingest under load, SIGKILL
// and restart one follower mid-stream, then verify both followers catch
// up, answer estimates identical to the leader's, and expose lag
// metrics on /metrics alongside the leader's per-follower view.
func TestReplicationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and kills real congressd processes; skipped in -short")
	}
	bin := buildCongressd(t)
	leaderDir := filepath.Join(t.TempDir(), "leader")

	leaderCmd, leaderAddr, leaderErr := startServeProc(t, bin,
		"-data-dir", leaderDir, "-rows", "3000", "-groups", "30", "-fsync", "none")
	defer killProc(leaderCmd)
	leaderURL := "http://" + leaderAddr
	lc := client.New(leaderURL)
	ctx := context.Background()
	if err := lc.Health(ctx); err != nil {
		t.Fatalf("leader unhealthy: %v\n%s", err, leaderErr.String())
	}

	f1Dir := filepath.Join(t.TempDir(), "f1")
	f2Dir := filepath.Join(t.TempDir(), "f2")
	f1Cmd, f1Addr, _ := startServeProc(t, bin, "-data-dir", f1Dir, "-follow", leaderURL)
	defer killProc(f1Cmd)
	f2Cmd, f2Addr, f2Err := startServeProc(t, bin, "-data-dir", f2Dir, "-follow", leaderURL)
	defer killProc(f2Cmd)
	f1URL, f2URL := "http://"+f1Addr, "http://"+f2Addr

	// Ingest under load while the drill runs.
	rng := rand.New(rand.NewSource(7))
	stop := make(chan struct{})
	acked := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				acked <- n
				return
			default:
			}
			row := []any{
				rng.Int63n(1 << 40), rng.Intn(3), rng.Intn(2),
				fmt.Sprintf("1994-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)),
				float64(1 + rng.Intn(50)), 100 * float64(1+rng.Intn(500)),
			}
			if _, err := lc.Insert(ctx, client.InsertRequest{Table: "lineitem", Rows: [][]any{row}}); err != nil {
				acked <- n
				return
			}
			n++
		}
	}()

	// SIGKILL follower 1 mid-stream and restart it on the same directory:
	// it must resume from its own disk and re-tail.
	time.Sleep(500 * time.Millisecond)
	if err := f1Cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	f1Cmd.Wait()
	time.Sleep(300 * time.Millisecond)
	f1Cmd, f1Addr, _ = startServeProc(t, bin, "-data-dir", f1Dir, "-follow", leaderURL)
	defer killProc(f1Cmd)
	f1URL = "http://" + f1Addr

	time.Sleep(300 * time.Millisecond)
	close(stop)
	ackedN := <-acked
	if ackedN == 0 {
		t.Fatal("no insert was acknowledged during the drill")
	}

	want := exactCount(t, lc)
	f1c, f2c := client.New(f1URL), client.New(f2URL)
	waitCaughtUp(t, f1c, want, "restarted follower 1")
	waitCaughtUp(t, f2c, want, "follower 2")

	// With zero lag both followers answer estimates identical to the
	// leader's.
	lg := estimateGroups(t, lc)
	for name, fc := range map[string]*client.Client{"follower 1": f1c, "follower 2": f2c} {
		fg := estimateGroups(t, fc)
		if len(fg) != len(lg) {
			t.Fatalf("%s: %d groups, leader %d", name, len(fg), len(lg))
		}
		for i := range lg {
			if math.Abs(lg[i].Value-fg[i].Value) > 1e-9 || math.Abs(lg[i].Bound-fg[i].Bound) > 1e-9 {
				t.Fatalf("%s group %v: value %v bound %v, leader %v/%v",
					name, lg[i].Group, fg[i].Value, fg[i].Bound, lg[i].Value, lg[i].Bound)
			}
		}
	}

	// Lag metrics on both sides: followers report their own lag, the
	// leader reports per-follower lag.
	for _, base := range []string{f1URL, f2URL} {
		m := fetchMetrics(t, base)
		for _, want := range []string{"repl_follower_lag_records", `repl_role{role="follower"} 1`} {
			if !strings.Contains(m, want) {
				t.Errorf("follower metrics at %s missing %q", base, want)
			}
		}
	}
	lm := fetchMetrics(t, leaderURL)
	for _, want := range []string{"repl_follower_lag_records{follower=", `repl_role{role="leader"} 1`, "persist_wal_record_seq"} {
		if !strings.Contains(lm, want) {
			t.Errorf("leader metrics missing %q", want)
		}
	}

	// Writes to a follower bounce with the leader hint.
	body, _ := json.Marshal(client.InsertRequest{Table: "lineitem", Rows: [][]any{{int64(1), 1, 0, "1994-06-15", 1.0, 1.0}}})
	resp, err := http.Post(f2URL+"/v1/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Leader") != leaderURL {
		t.Fatalf("follower insert: status %d leader %q, want 503 pointing at %s",
			resp.StatusCode, resp.Header.Get("Leader"), leaderURL)
	}

	// The read-scaling bench runs against the live topology and writes
	// its report.
	benchPath := filepath.Join(t.TempDir(), "BENCH_repl.json")
	lgCmd := exec.Command(bin, "loadgen",
		"-url", leaderURL,
		"-endpoints", strings.Join([]string{leaderURL, f1URL, f2URL}, ","),
		"-clients", "4", "-duration", "2s", "-insert-pct", "10", "-no-cache",
		"-repl-out", benchPath, "-log-level", "warn")
	if out, err := lgCmd.CombinedOutput(); err != nil {
		t.Fatalf("loadgen -endpoints: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Baseline struct {
			Reads int64 `json:"reads"`
		} `json:"baseline"`
		FanOut struct {
			Reads       int64                      `json:"reads"`
			PerEndpoint map[string]json.RawMessage `json:"per_endpoint"`
		} `json:"fanout"`
		ReadScaling float64 `json:"read_scaling"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parsing %s: %v", benchPath, err)
	}
	if rep.Baseline.Reads == 0 || rep.FanOut.Reads == 0 || rep.ReadScaling <= 0 {
		t.Fatalf("degenerate bench report: %+v", rep)
	}
	if len(rep.FanOut.PerEndpoint) < 2 {
		t.Fatalf("fan-out phase used %d endpoints, want >= 2", len(rep.FanOut.PerEndpoint))
	}

	// Graceful shutdowns all around.
	for _, cmd := range []*exec.Cmd{f1Cmd, f2Cmd} {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("follower graceful shutdown: %v\n%s", err, f2Err.String())
		}
	}
	if err := leaderCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := leaderCmd.Wait(); err != nil {
		t.Fatalf("leader graceful shutdown: %v\n%s", err, leaderErr.String())
	}
}
