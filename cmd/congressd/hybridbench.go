package main

// The `loadgen -hybrid` bench: hybrid exact+sample estimation accuracy
// as a function of datacube coverage. It partitions one generated
// relation across K in-process warehouses (routing by the synopsis
// grouping key, like ShardedWarehouse), then for each coverage fraction
// j/K gathers partials with the hybrid path enabled on j warehouses and
// forced to pure-sample (NoHybrid) on the rest, merges, and finalizes.
// Coverage 0 is the pure-sample baseline; coverage 1 must come back
// with exactly zero-width intervals. The bench fails (nonzero exit) if
// any group's hybrid half-width exceeds its pure-sample half-width, so
// CI pins the "hybrid is never worse" contract alongside the numbers it
// publishes in BENCH_hybrid.json.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"

	"encoding/json"

	congress "github.com/approxdb/congress"
	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/estimate"
	"github.com/approxdb/congress/internal/shard"
)

// hybridBenchReport is the BENCH_hybrid.json schema: interval width and
// accuracy per coverage fraction, judged against exact SQL ground truth
// over the same generated data.
type hybridBenchReport struct {
	Shards     int                  `json:"shards"`
	Rows       int                  `json:"rows"`
	Groups     int                  `json:"groups"`
	SpacePct   float64              `json:"space_pct"`
	Confidence float64              `json:"confidence"`
	GroupBy    []string             `json:"group_by"`
	AggColumn  string               `json:"agg_column"`
	Coverage   []hybridCoveragePoint `json:"coverage"`
}

// hybridCoveragePoint is one coverage fraction: j of the K warehouses
// answered from their exact datacubes, the rest from their samples.
type hybridCoveragePoint struct {
	CoveredShards int                         `json:"covered_shards"`
	Fraction      float64                     `json:"fraction"`
	Aggregates    map[string]hybridAggSummary `json:"aggregates"`
}

// hybridAggSummary reports one aggregate's interval widths at a
// coverage point, plus accuracy against exact ground truth.
type hybridAggSummary struct {
	MeanHalfWidth float64 `json:"mean_half_width"`
	MaxHalfWidth  float64 `json:"max_half_width"`
	// WidthVsSample is the mean per-group ratio of this coverage
	// point's half-width to the pure-sample half-width, over groups
	// whose baseline width is positive (1.0 at coverage 0, 0.0 at full
	// coverage).
	WidthVsSample   float64 `json:"width_vs_sample"`
	ZeroWidthGroups int     `json:"zero_width_groups"`
	MeanRelErr      float64 `json:"mean_rel_err"`
	MaxRelErr       float64 `json:"max_rel_err"`
	BoundCoverage   float64 `json:"bound_coverage"`
}

// runHybridBench drives the coverage sweep and writes outPath.
func runHybridBench(out io.Writer, wf *warehouseFlags, outPath string, log *slog.Logger) error {
	if *wf.loadCSV != "" {
		return fmt.Errorf("loadgen: -hybrid needs a generated table with known ground truth")
	}
	rep, err := hybridAccuracyBench(wf, log)
	if err != nil {
		return err
	}
	for _, cp := range rep.Coverage {
		for _, agg := range []string{"sum", "count", "avg"} {
			s := cp.Aggregates[agg]
			fmt.Fprintf(out, "hybrid coverage %.2f %s: half-width mean=%.3f max=%.3f (%.0f%% of pure-sample), zero-width %d/%d, rel-err mean=%.4f\n",
				cp.Fraction, agg, s.MeanHalfWidth, s.MaxHalfWidth, 100*s.WidthVsSample,
				s.ZeroWidthGroups, rep.Groups, s.MeanRelErr)
		}
	}
	if outPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", outPath)
	}
	return nil
}

// hybridAccuracyBench builds the K-way partitioned warehouses and runs
// the coverage sweep, enforcing the width contract as it goes.
func hybridAccuracyBench(wf *warehouseFlags, log *slog.Logger) (*hybridBenchReport, error) {
	const shards = 4
	rel, err := loadRelation(wf, log)
	if err != nil {
		return nil, err
	}
	spec, err := synopsisSpecFor(wf, rel)
	if err != nil {
		return nil, err
	}
	const conf = 0.95
	groupBy := spec.GroupBy[:1]
	aggCol := "l_quantity"

	// Exact ground truth over the whole relation.
	exactW := congress.Open()
	if _, err := exactW.AttachRelation(rel); err != nil {
		return nil, err
	}
	res, err := exactW.Query(fmt.Sprintf(
		"select %s, sum(%s), count(*), avg(%s) from %s group by %s",
		groupBy[0], aggCol, aggCol, rel.Name, groupBy[0]))
	if err != nil {
		return nil, err
	}
	truth := make(map[string][3]float64, len(res.Rows)) // group → sum, count, avg
	for _, r := range res.Rows {
		s, _ := r[1].AsFloat()
		c, _ := r[2].AsFloat()
		a, _ := r[3].AsFloat()
		truth[r[0].String()] = [3]float64{s, c, a}
	}

	// Partition rows across K warehouses by the synopsis grouping key —
	// the same routing ShardedWarehouse uses — so each warehouse's
	// strata partition the stratum set.
	g, err := core.NewGrouping(rel.Schema, spec.GroupBy)
	if err != nil {
		return nil, err
	}
	router, err := shard.NewRouter(shards)
	if err != nil {
		return nil, err
	}
	parts := make([][]engine.Row, shards)
	for _, row := range rel.Rows() {
		i := router.Route(g.Key(row))
		parts[i] = append(parts[i], row)
	}
	ws := make([]*congress.Warehouse, shards)
	for i := range ws {
		prel := engine.NewRelation(rel.Name, rel.Schema)
		if err := prel.InsertAll(parts[i]); err != nil {
			return nil, err
		}
		ws[i] = congress.Open()
		if _, err := ws[i].AttachRelation(prel); err != nil {
			return nil, err
		}
		ss := spec
		ss.Space = spec.Space * len(parts[i]) / rel.NumRows()
		if ss.Space < 1 {
			ss.Space = 1
		}
		ss.Seed = spec.Seed + int64(i)*0x9E37
		if ss.Seed == 0 {
			ss.Seed = 1
		}
		if err := ws[i].BuildSynopsis(ss); err != nil {
			return nil, fmt.Errorf("partition %d: %w", i, err)
		}
	}

	ctx := context.Background()
	aggs := []struct {
		name string
		agg  congress.Aggregate
	}{{"sum", congress.Sum}, {"count", congress.Count}, {"avg", congress.Avg}}

	rep := &hybridBenchReport{
		Shards: shards, Rows: rel.NumRows(), Groups: len(truth),
		SpacePct: *wf.spacePct, Confidence: conf,
		GroupBy: groupBy, AggColumn: aggCol,
	}
	// baseline[agg][group] is the pure-sample half-width (coverage 0).
	baseline := make(map[string]map[string]float64, len(aggs))
	for covered := 0; covered <= shards; covered++ {
		lists := make([][]congress.GroupPartial, shards)
		for i := range ws {
			lists[i], err = ws[i].EstimatePartialsOpts(ctx, rel.Name, groupBy, aggCol,
				congress.PartialsOptions{NoHybrid: i >= covered})
			if err != nil {
				return nil, fmt.Errorf("coverage %d partition %d: %w", covered, i, err)
			}
		}
		merged := estimate.MergePartials(lists...)
		cp := hybridCoveragePoint{
			CoveredShards: covered,
			Fraction:      float64(covered) / float64(shards),
			Aggregates:    make(map[string]hybridAggSummary, len(aggs)),
		}
		for ai, a := range aggs {
			ests, err := estimate.Finalize(merged, a.agg, conf)
			if err != nil {
				return nil, err
			}
			acc, err := scoreEstimates(ests, truth, ai)
			if err != nil {
				return nil, fmt.Errorf("coverage %d %s: %w", covered, a.name, err)
			}
			s := hybridAggSummary{
				MeanRelErr: acc.MeanRelErr, MaxRelErr: acc.MaxRelErr, BoundCoverage: acc.Coverage,
			}
			ratioSum, ratioN := 0.0, 0
			for _, e := range ests {
				s.MeanHalfWidth += e.Bound
				if e.Bound > s.MaxHalfWidth {
					s.MaxHalfWidth = e.Bound
				}
				if e.Bound == 0 {
					s.ZeroWidthGroups++
				}
				base, haveBase := baseline[a.name][e.Key]
				switch {
				case covered == 0:
					// Becomes the baseline below.
				case !haveBase:
					return nil, fmt.Errorf("coverage %d %s: group %q absent from pure-sample baseline", covered, a.name, e.Key)
				case e.Bound > base+1e-9*math.Max(1, base):
					return nil, fmt.Errorf("hybrid wider than pure-sample: coverage %d/%d %s group %q half-width %v > %v",
						covered, shards, a.name, e.Key, e.Bound, base)
				default:
					if base > 0 {
						ratioSum += e.Bound / base
						ratioN++
					}
				}
				if covered == shards && e.Bound != 0 {
					return nil, fmt.Errorf("full coverage %s group %q half-width %v, want exactly 0", a.name, e.Key, e.Bound)
				}
			}
			if n := len(ests); n > 0 {
				s.MeanHalfWidth /= float64(n)
			}
			if covered == 0 {
				baseline[a.name] = make(map[string]float64, len(ests))
				for _, e := range ests {
					baseline[a.name][e.Key] = e.Bound
				}
				s.WidthVsSample = 1
			} else if ratioN > 0 {
				s.WidthVsSample = ratioSum / float64(ratioN)
			}
			cp.Aggregates[a.name] = s
		}
		rep.Coverage = append(rep.Coverage, cp)
	}
	// The point of the hybrid path: with any coverage at all, covered
	// popular groupings must come back strictly narrower, not merely
	// no-wider.
	for _, a := range aggs {
		last := rep.Coverage[shards].Aggregates[a.name]
		base := rep.Coverage[0].Aggregates[a.name]
		if base.MeanHalfWidth > 0 && !(last.MeanHalfWidth < base.MeanHalfWidth) {
			return nil, fmt.Errorf("%s: full-coverage mean half-width %v not narrower than pure-sample %v",
				a.name, last.MeanHalfWidth, base.MeanHalfWidth)
		}
	}
	return rep, nil
}
