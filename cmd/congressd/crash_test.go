package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/approxdb/congress/pkg/client"
)

// buildCongressd compiles the real binary once per test run.
func buildCongressd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "congressd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building congressd: %v\n%s", err, out)
	}
	return bin
}

// startCongressd launches a durable server and returns the process and
// its bound address (parsed from the "listening on" line).
func startCongressd(t *testing.T, bin, dataDir string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(bin, "serve",
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-rows", "3000", "-groups", "30",
		"-fsync", "none",
		"-log-level", "warn",
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "congressd listening on "); ok {
				addrCh <- rest
				return
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("congressd exited before listening:\n%s", stderr.String())
		}
		return cmd, addr, &stderr
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("congressd did not start listening:\n%s", stderr.String())
	}
	panic("unreachable")
}

func exactCount(t *testing.T, c *client.Client) int64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := c.Exact(ctx, client.ExactRequest{SQL: `select count(*) from lineitem`})
	if err != nil {
		t.Fatal(err)
	}
	n, ok := resp.Rows[0][0].(float64)
	if !ok {
		// count renders as a JSON number; int64 when decoded into any
		// would still arrive as float64, but guard other shapes.
		t.Fatalf("count came back as %T: %v", resp.Rows[0][0], resp.Rows[0][0])
	}
	return int64(n)
}

func allocation(t *testing.T, c *client.Client) []client.AllocationRow {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	infos, err := c.Synopses(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("%d synopses, want 1", len(infos))
	}
	return infos[0].Allocation
}

// TestCrashRecoveryEndToEnd is the full durability drill: boot a real
// congressd with a data directory, ingest over HTTP, SIGKILL it
// mid-ingest, corrupt the WAL tail for good measure, restart on the
// same directory, and verify the recovered server answers with the
// pre-crash synopsis state plus every acknowledged insert.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and kills a real congressd; skipped in -short")
	}
	bin := buildCongressd(t)
	dataDir := filepath.Join(t.TempDir(), "data")

	cmd, addr, stderr := startCongressd(t, bin, dataDir)
	c := client.New("http://" + addr)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("first boot unhealthy: %v\n%s", err, stderr.String())
	}
	baseCount := exactCount(t, c)
	if baseCount == 0 {
		t.Fatal("first boot has no data")
	}
	allocBefore := allocation(t, c)

	// Ingest sequentially until the kill lands: every acknowledged
	// insert reached the WAL (one write per record even at -fsync=none),
	// so all of them must survive the SIGKILL.
	rng := rand.New(rand.NewSource(99))
	acked := make(chan int, 1)
	go func() {
		n := 0
		for {
			row := []any{
				rng.Int63n(1 << 40), rng.Intn(3), rng.Intn(2),
				fmt.Sprintf("1994-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)),
				float64(1 + rng.Intn(50)), 100 * float64(1+rng.Intn(500)),
			}
			if _, err := c.Insert(ctx, client.InsertRequest{Table: "lineitem", Rows: [][]any{row}}); err != nil {
				acked <- n
				return
			}
			n++
		}
	}()
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	ackedN := <-acked
	if ackedN == 0 {
		t.Fatalf("no insert was acknowledged before the kill\n%s", stderr.String())
	}

	// Make the tail torn on top of the crash: append a partial frame to
	// the newest WAL segment, as an append cut off mid-write would leave.
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	var newestWAL string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && e.Name() > newestWAL {
			newestWAL = e.Name()
		}
	}
	if newestWAL == "" {
		t.Fatalf("no WAL segment in %s after kill", dataDir)
	}
	f, err := os.OpenFile(filepath.Join(dataDir, newestWAL), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart on the same directory: recovery must truncate the torn
	// tail, replay the log, and serve.
	cmd2, addr2, stderr2 := startCongressd(t, bin, dataDir)
	defer func() {
		cmd2.Process.Signal(syscall.SIGKILL)
		cmd2.Wait()
	}()
	c2 := client.New("http://" + addr2)
	if err := c2.Health(ctx); err != nil {
		t.Fatalf("recovered boot unhealthy: %v\n%s", err, stderr2.String())
	}

	// Every acknowledged insert survived; at most the single in-flight
	// request at kill time may additionally have landed.
	got := exactCount(t, c2)
	lo, hi := baseCount+int64(ackedN), baseCount+int64(ackedN)+1
	if got < lo || got > hi {
		t.Fatalf("recovered %d rows, want between %d and %d (base %d + %d acked)",
			got, lo, hi, baseCount, ackedN)
	}

	// The synopsis came back with its pre-crash materialized state: the
	// ingested rows are pending maintainer feed on both sides, so the
	// allocation tables match exactly.
	allocAfter := allocation(t, c2)
	if !reflect.DeepEqual(allocBefore, allocAfter) {
		t.Fatalf("allocation table changed across crash recovery:\nbefore %+v\nafter  %+v",
			allocBefore, allocAfter)
	}

	// Approximate answering still works on the recovered synopsis.
	qctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	resp, err := c2.Query(qctx, client.QueryRequest{
		Estimate: &client.EstimateRequest{
			Table:   "lineitem",
			GroupBy: []string{"l_returnflag", "l_linestatus"},
			Agg:     "sum",
			Column:  "l_quantity",
		},
	})
	if err != nil {
		t.Fatalf("estimate on recovered server: %v", err)
	}
	if len(resp.Groups) == 0 {
		t.Fatal("estimate on recovered server returned no groups")
	}

	// A manual snapshot compacts, and a graceful shutdown closes clean.
	if _, err := c2.Snapshot(qctx); err != nil {
		t.Fatalf("snapshot on recovered server: %v", err)
	}
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("graceful shutdown after recovery: %v\n%s", err, stderr2.String())
	}
}

// TestSnapshotEndpointWithoutDataDir covers the 409 contract.
func TestSnapshotEndpointWithoutDataDir(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a real congressd; skipped in -short")
	}
	bin := buildCongressd(t)
	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0",
		"-rows", "2000", "-groups", "20", "-log-level", "warn")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()
	}()
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "congressd listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatal("congressd never listened")
	}
	c := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = c.Snapshot(ctx)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != "not_persistent" {
		t.Fatalf("snapshot without -data-dir: err=%v, want code not_persistent", err)
	}
}
