package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log/slog"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	congress "github.com/approxdb/congress"
	"github.com/approxdb/congress/pkg/client"
)

// referenceWarehouse builds a single unsharded warehouse through the
// exact flag pipeline the serve processes use, so its estimates are the
// ground truth a distributed deployment over the same flags must
// reproduce.
func referenceWarehouse(t *testing.T, args []string) *congress.Warehouse {
	t.Helper()
	fs := flag.NewFlagSet("reference", flag.ContinueOnError)
	wf := addWarehouseFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	w := congress.Open()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := populateWarehouse(w, wf, quiet); err != nil {
		t.Fatal(err)
	}
	return w
}

// e2eRelDiff is |a-b| scaled by the larger magnitude, floored at 1.
func e2eRelDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > m {
		m = a
	}
	if b > m {
		m = b
	}
	return d / m
}

// checkDistEstimates queries the coordinator for every grouping ×
// aggregate combination and requires the answers — values, bounds, and
// per-group sample counts — to match the single-warehouse reference to
// floating-point noise.
func checkDistEstimates(t *testing.T, c *client.Client, ref *congress.Warehouse, what string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	groupings := [][]string{
		{"l_returnflag"},
		{"l_returnflag", "l_linestatus"},
	}
	for _, grouping := range groupings {
		for agg, a := range map[string]congress.Aggregate{
			"sum": congress.Sum, "count": congress.Count, "avg": congress.Avg,
		} {
			want, err := ref.Estimate("lineitem", grouping, a, "l_quantity", 0.95)
			if err != nil {
				t.Fatalf("%s: reference %s over %v: %v", what, agg, grouping, err)
			}
			resp, err := c.Query(ctx, client.QueryRequest{
				Estimate: &client.EstimateRequest{
					Table: "lineitem", GroupBy: grouping,
					Agg: agg, Column: "l_quantity", Confidence: 0.95,
				},
				NoCache: true,
			})
			if err != nil {
				t.Fatalf("%s: distributed %s over %v: %v", what, agg, grouping, err)
			}
			got := make(map[string]client.GroupEstimate, len(resp.Groups))
			for _, g := range resp.Groups {
				got[strings.Join(g.Group, congress.EstimateKeySep)] = g
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %s over %v: %d groups distributed vs %d reference",
					what, agg, grouping, len(got), len(want))
			}
			for _, w := range want {
				g, ok := got[w.Key]
				if !ok {
					t.Fatalf("%s: %s over %v: group %q missing from distributed answer",
						what, agg, grouping, w.Key)
				}
				if e2eRelDiff(g.Value, w.Value) > 1e-9 {
					t.Fatalf("%s: %s over %v group %q: value %v vs reference %v",
						what, agg, grouping, w.Key, g.Value, w.Value)
				}
				if e2eRelDiff(g.Bound, w.Bound) > 1e-9 {
					t.Fatalf("%s: %s over %v group %q: bound %v vs reference %v",
						what, agg, grouping, w.Key, g.Bound, w.Bound)
				}
				if g.SampleN != w.SampleN {
					t.Fatalf("%s: %s over %v group %q: sample_n %d vs reference %d",
						what, agg, grouping, w.Key, g.SampleN, w.SampleN)
				}
			}
		}
	}
}

// TestDistShardClusterEndToEnd is the distributed sharding drill with
// real processes: four shard congressd instances each serving a durable
// partition of the same generated table, fronted by a coordinator
// congressd. The coordinator's scatter-gather answers must match a
// single-warehouse reference exactly; SIGKILLing one shard must surface
// a typed shard_unavailable error (never a silently merged partial
// answer); restarting the shard over the same data directory must
// restore exact answers.
func TestDistShardClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e test")
	}
	bin := buildCongressd(t)
	const shards = 4
	warehouseArgs := []string{"-rows", "3000", "-groups", "30", "-space-pct", "200", "-seed", "1"}

	procs := make([]*exec.Cmd, shards)
	urls := make([]string, shards)
	shardArgs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		dir := t.TempDir()
		shardArgs[i] = append([]string{
			"-shard-index", strconv.Itoa(i), "-shard-total", strconv.Itoa(shards),
			"-data-dir", dir, "-fsync", "none",
		}, warehouseArgs...)
		cmd, addr, _ := startServeProc(t, bin, shardArgs[i]...)
		procs[i] = cmd
		urls[i] = "http://" + addr
		t.Cleanup(func() { killProc(cmd) })
	}
	coord, coordAddr, _ := startServeProc(t, bin,
		"-coordinator", "-shard-endpoints", strings.Join(urls, ","),
		"-shard-retries", "1")
	t.Cleanup(func() { killProc(coord) })
	coordBase := "http://" + coordAddr
	c := client.New(coordBase)

	ref := referenceWarehouse(t, warehouseArgs)
	checkDistEstimates(t, c, ref, "initial cluster")

	// The shards each hold a strict partition: together they must serve
	// exactly the reference row count, and none of them all of it.
	var total int64
	for _, u := range urls {
		n := exactCount(t, client.New(u))
		if n <= 0 || n >= 3000 {
			t.Fatalf("shard row count %d not a strict partition of 3000", n)
		}
		total += n
	}
	if total != 3000 {
		t.Fatalf("shards hold %d rows together, want 3000", total)
	}

	// Kill one shard mid-deployment: queries must fail with the typed
	// shard_unavailable error naming the dead ordinal, not degrade into
	// a partial merge.
	killProc(procs[2])
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	_, err := c.Query(ctx, client.QueryRequest{
		Estimate: &client.EstimateRequest{
			Table: "lineitem", GroupBy: []string{"l_returnflag"},
			Agg: "sum", Column: "l_quantity", Confidence: 0.95,
		},
		NoCache: true,
	})
	cancel()
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("query with a dead shard: got %v, want APIError", err)
	}
	if ae.Code != "shard_unavailable" || ae.Status != 503 {
		t.Fatalf("query with a dead shard: code=%q status=%d, want shard_unavailable/503", ae.Code, ae.Status)
	}
	if !strings.Contains(ae.Message, "shard 2") {
		t.Fatalf("error does not name the dead shard: %q", ae.Message)
	}
	if m := fetchMetrics(t, coordBase); !strings.Contains(m, "congress_distshard_fanout_errors_total") {
		t.Fatalf("coordinator metrics missing distshard fan-out series:\n%s", m)
	}

	// Restart the shard over its surviving data directory at the same
	// address; once it recovers, the coordinator (whose membership still
	// holds that endpoint) must serve exact answers again.
	restartArgs := append([]string{"-addr", strings.TrimPrefix(urls[2], "http://")}, shardArgs[2]...)
	cmd2, _, _ := startServeProc(t, bin, restartArgs...)
	t.Cleanup(func() { killProc(cmd2) })
	sc := client.New(urls[2])
	deadline := time.Now().Add(60 * time.Second)
	for {
		hctx, hcancel := context.WithTimeout(context.Background(), time.Second)
		err := sc.Health(hctx)
		hcancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted shard never became healthy: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if n := exactCount(t, sc); n <= 0 || n >= 3000 {
		t.Fatalf("restarted shard recovered %d rows, want its strict partition", n)
	}
	checkDistEstimates(t, c, ref, "after shard restart")
}
