package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"sort"
	"time"

	congress "github.com/approxdb/congress"
	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/server"
	"github.com/approxdb/congress/internal/shard"
)

// distBenchReport is the BENCH_distshard.json schema: the distributed
// coordinator (one HTTP congressd per shard) versus the in-process
// sharded warehouse over the same generated data and partitioning.
// MaxRelDiff is the largest relative difference between the two
// estimators across every group, aggregate, and bound — the distributed
// path is supposed to reproduce the in-process answers exactly, so this
// should sit at floating-point noise.
type distBenchReport struct {
	Shards        int                        `json:"shards"`
	Rows          int                        `json:"rows"`
	Groups        int                        `json:"groups"`
	SpacePct      float64                    `json:"space_pct"`
	Confidence    float64                    `json:"confidence"`
	GroupBy       []string                   `json:"group_by"`
	EstimateIters int                        `json:"estimate_iters"`
	MaxRelDiff    float64                    `json:"max_rel_diff_vs_in_process"`
	Aggregates    map[string]distAggAccuracy `json:"aggregates"`
	LatencyMS     distLatency                `json:"latency_ms"`
}

// distAggAccuracy compares one aggregate's distributed and in-process
// estimates against exact SQL ground truth.
type distAggAccuracy struct {
	Groups      int             `json:"groups"`
	Distributed accuracySummary `json:"distributed"`
	InProcess   accuracySummary `json:"in_process"`
}

// distLatency holds the per-estimate latency of each execution path:
// the distributed one pays one HTTP round-trip per shard plus the
// merge, the in-process one only the merge.
type distLatency struct {
	Distributed latencySummary `json:"distributed"`
	InProcess   latencySummary `json:"in_process"`
}

// runDistBench builds the same generated relation twice — once behind
// an in-process ShardedWarehouse and once partitioned across K real
// congressd HTTP servers behind a Coordinator — and scores accuracy
// (against exact SQL) and estimate latency for both paths.
func runDistBench(out io.Writer, wf *warehouseFlags, shards, iters int, outPath string, log *slog.Logger) error {
	if *wf.loadCSV != "" {
		return errors.New("loadgen: -dist-shards needs a generated table with known ground truth")
	}
	rel, err := loadRelation(wf, log)
	if err != nil {
		return err
	}
	spec, err := synopsisSpecFor(wf, rel)
	if err != nil {
		return err
	}
	const conf = 0.95
	groupBy := spec.GroupBy[:1]
	aggCol := "l_quantity"

	exactW := congress.Open()
	if _, err := exactW.AttachRelation(rel); err != nil {
		return err
	}
	res, err := exactW.Query(fmt.Sprintf(
		"select %s, sum(%s), count(*), avg(%s) from %s group by %s",
		groupBy[0], aggCol, aggCol, rel.Name, groupBy[0]))
	if err != nil {
		return err
	}
	truth := make(map[string][3]float64, len(res.Rows)) // group → sum, count, avg
	for _, r := range res.Rows {
		s, _ := r[1].AsFloat()
		c, _ := r[2].AsFloat()
		a, _ := r[3].AsFloat()
		truth[r[0].String()] = [3]float64{s, c, a}
	}

	sw, err := congress.OpenSharded(shards)
	if err != nil {
		return err
	}
	if _, err := sw.AttachRelation(rel, spec.GroupBy); err != nil {
		return err
	}
	if err := sw.BuildSynopsis(spec); err != nil {
		return err
	}

	co, srvs, err := startDistCluster(rel, spec, shards, log)
	defer func() {
		for _, s := range srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			s.Shutdown(ctx)
			cancel()
		}
	}()
	if err != nil {
		return err
	}
	ctx := context.Background()

	rep := &distBenchReport{
		Shards: shards, Rows: rel.NumRows(), Groups: len(truth),
		SpacePct: *wf.spacePct, Confidence: conf, GroupBy: groupBy,
		EstimateIters: iters,
		Aggregates:    make(map[string]distAggAccuracy, 3),
	}
	aggs := []struct {
		name string
		agg  congress.Aggregate
	}{{"sum", congress.Sum}, {"count", congress.Count}, {"avg", congress.Avg}}
	for ai, a := range aggs {
		distEsts, err := co.EstimateCtx(ctx, rel.Name, groupBy, a.agg, aggCol, conf)
		if err != nil {
			return fmt.Errorf("distributed %s: %w", a.name, err)
		}
		inEsts, err := sw.Estimate(rel.Name, groupBy, a.agg, aggCol, conf)
		if err != nil {
			return fmt.Errorf("in-process %s: %w", a.name, err)
		}
		if d, err := maxEstimateDiff(distEsts, inEsts); err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		} else if d > rep.MaxRelDiff {
			rep.MaxRelDiff = d
		}
		acc := distAggAccuracy{Groups: len(truth)}
		if acc.Distributed, err = scoreEstimates(distEsts, truth, ai); err != nil {
			return fmt.Errorf("distributed %s: %w", a.name, err)
		}
		if acc.InProcess, err = scoreEstimates(inEsts, truth, ai); err != nil {
			return fmt.Errorf("in-process %s: %w", a.name, err)
		}
		rep.Aggregates[a.name] = acc
	}

	if rep.LatencyMS.Distributed, err = timeEstimates(iters, func() error {
		_, err := co.EstimateCtx(ctx, rel.Name, groupBy, congress.Sum, aggCol, conf)
		return err
	}); err != nil {
		return err
	}
	if rep.LatencyMS.InProcess, err = timeEstimates(iters, func() error {
		_, err := sw.Estimate(rel.Name, groupBy, congress.Sum, aggCol, conf)
		return err
	}); err != nil {
		return err
	}

	fmt.Fprintf(out, "distshard bench: %d shards over %d rows, max rel diff vs in-process %.3g\n",
		shards, rep.Rows, rep.MaxRelDiff)
	for agg, acc := range rep.Aggregates {
		fmt.Fprintf(out, "distshard accuracy %s over %d groups: distributed rel-err mean=%.4f max=%.4f coverage=%.2f; in-process mean=%.4f max=%.4f coverage=%.2f\n",
			agg, acc.Groups,
			acc.Distributed.MeanRelErr, acc.Distributed.MaxRelErr, acc.Distributed.Coverage,
			acc.InProcess.MeanRelErr, acc.InProcess.MaxRelErr, acc.InProcess.Coverage)
	}
	fmt.Fprintf(out, "distshard latency ms (%d iters): distributed p50=%.2f p95=%.2f mean=%.2f; in-process p50=%.2f p95=%.2f mean=%.2f\n",
		iters,
		rep.LatencyMS.Distributed.P50, rep.LatencyMS.Distributed.P95, rep.LatencyMS.Distributed.Mean,
		rep.LatencyMS.InProcess.P50, rep.LatencyMS.InProcess.P95, rep.LatencyMS.InProcess.Mean)
	if outPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", outPath)
	}
	return nil
}

// startDistCluster partitions rel by its finest grouping key across K
// shard warehouses — the same routing the Coordinator and the
// in-process ShardedWarehouse use, so every stratum lives whole on one
// shard — serves each behind its own HTTP server, and returns a
// discovered Coordinator over them. Servers already started are
// returned even on error so the caller can shut them down.
func startDistCluster(rel *engine.Relation, spec congress.SynopsisSpec, shards int, log *slog.Logger) (*congress.Coordinator, []*server.Server, error) {
	g, err := core.NewGrouping(rel.Schema, spec.GroupBy)
	if err != nil {
		return nil, nil, err
	}
	router, err := shard.NewRouter(shards)
	if err != nil {
		return nil, nil, err
	}
	parts := make([][]engine.Row, shards)
	for _, row := range rel.Rows() {
		i := router.Route(g.Key(row))
		parts[i] = append(parts[i], row)
	}
	var srvs []*server.Server
	endpoints := make([]string, shards)
	for i := 0; i < shards; i++ {
		prel := engine.NewRelation(rel.Name, rel.Schema)
		if err := prel.InsertAll(parts[i]); err != nil {
			return nil, srvs, err
		}
		pw := congress.Open()
		if _, err := pw.AttachRelation(prel); err != nil {
			return nil, srvs, err
		}
		if err := pw.BuildSynopsis(spec); err != nil {
			return nil, srvs, fmt.Errorf("shard %d synopsis: %w", i, err)
		}
		s := server.New(server.Options{Warehouse: pw, Logger: log})
		bound, err := s.Start("127.0.0.1:0")
		if err != nil {
			return nil, srvs, err
		}
		srvs = append(srvs, s)
		endpoints[i] = "http://" + bound
	}
	co, err := congress.NewCoordinator(endpoints, congress.CoordinatorOptions{
		LegTimeout: 10 * time.Second,
	})
	if err != nil {
		return nil, srvs, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := co.WaitHealthy(ctx, 50*time.Millisecond); err != nil {
		return nil, srvs, err
	}
	if err := co.Discover(ctx); err != nil {
		return nil, srvs, err
	}
	return co, srvs, nil
}

// maxEstimateDiff returns the largest relative difference in value or
// bound between two estimator answers over the same groups.
func maxEstimateDiff(a, b []congress.GroupEstimate) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("group count differs: %d vs %d", len(a), len(b))
	}
	byKey := make(map[string]congress.GroupEstimate, len(b))
	for _, e := range b {
		byKey[e.Key] = e
	}
	var worst float64
	for _, e := range a {
		o, ok := byKey[e.Key]
		if !ok {
			return 0, fmt.Errorf("group %q missing from in-process answer", e.Key)
		}
		for _, d := range []float64{relDiff(e.Value, o.Value), relDiff(e.Bound, o.Bound)} {
			if d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// relDiff is |a-b| scaled by the larger magnitude (floored at 1 so
// near-zero pairs don't explode).
func relDiff(a, b float64) float64 {
	denom := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / denom
}

// timeEstimates runs fn iters times and summarizes wall-clock latency.
func timeEstimates(iters int, fn func() error) (latencySummary, error) {
	lats := make([]float64, 0, iters)
	var sum, max float64
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return latencySummary{}, err
		}
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		lats = append(lats, ms)
		sum += ms
		if ms > max {
			max = ms
		}
	}
	sort.Float64s(lats)
	n := len(lats)
	if n == 0 {
		return latencySummary{}, errors.New("no estimate iterations ran")
	}
	return latencySummary{
		P50:  lats[n/2],
		P95:  lats[min(n-1, n*95/100)],
		P99:  lats[min(n-1, n*99/100)],
		Mean: sum / float64(n),
		Max:  max,
	}, nil
}
