package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/approxdb/congress/internal/workload"
	"github.com/approxdb/congress/pkg/client"
)

// Replication read-scaling bench (loadgen -endpoints). Two phases with
// the same request mix: a baseline with every read aimed at the leader
// alone, then a fan-out with reads round-robined across the endpoint
// list (leader + followers). Writes always go to the leader — followers
// reject them — so the WAL keeps moving and follower staleness is
// observable; a sampler polls every endpoint's /v1/repl/status throughout.

type replBenchConfig struct {
	leader    string
	endpoints []string
	clients   int
	duration  time.Duration
	insertPct int
	noCache   bool
	timeoutMS int64
	seed      int64
	outPath   string
}

// replBenchReport is the BENCH_repl.json schema.
type replBenchReport struct {
	Leader    string   `json:"leader"`
	Endpoints []string `json:"endpoints"`
	Clients   int      `json:"clients"`
	InsertPct int      `json:"insert_pct"`
	NoCache   bool     `json:"no_cache"`
	// HostCores is the bench host's CPU count. When every endpoint is a
	// process on this same host, read scaling is capped by the cores the
	// endpoints can actually claim — on a 1-core host fan-out cannot
	// beat the baseline no matter how many followers join.
	HostCores int `json:"host_cores"`
	// Baseline reads hit only the leader; FanOut reads round-robin
	// across Endpoints. ReadScaling is fan-out read throughput over
	// baseline read throughput.
	Baseline    replPhaseReport               `json:"baseline"`
	FanOut      replPhaseReport               `json:"fanout"`
	ReadScaling float64                       `json:"read_scaling"`
	Staleness   map[string]replStalenessStats `json:"staleness,omitempty"`
}

// replPhaseReport summarizes one phase of the bench.
type replPhaseReport struct {
	Label       string                       `json:"label"`
	Endpoints   []string                     `json:"endpoints"`
	DurationSec float64                      `json:"duration_sec"`
	Reads       int64                        `json:"reads"`
	Writes      int64                        `json:"writes"`
	Errors      int64                        `json:"errors"`
	ReadRPS     float64                      `json:"read_rps"`
	LatencyMS   latencySummary               `json:"read_latency_ms"`
	PerEndpoint map[string]replEndpointStats `json:"per_endpoint"`
}

// replEndpointStats is one endpoint's share of a phase's reads.
type replEndpointStats struct {
	Reads     int64          `json:"reads"`
	Errors    int64          `json:"errors"`
	LatencyMS latencySummary `json:"latency_ms"`
}

// replStalenessStats summarizes the /v1/repl/status lag samples taken
// from one follower across both phases.
type replStalenessStats struct {
	Samples          int     `json:"samples"`
	CaughtUpFraction float64 `json:"caught_up_fraction"`
	MeanLagRecords   float64 `json:"mean_lag_records"`
	MaxLagRecords    int64   `json:"max_lag_records"`
	MaxLagSeconds    float64 `json:"max_lag_seconds"`
}

func runReplBench(out io.Writer, cfg replBenchConfig) error {
	leaderC := client.New(cfg.leader, client.WithRetry(4, 2*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := leaderC.Health(ctx); err != nil {
		return fmt.Errorf("loadgen: leader %s not healthy: %w", cfg.leader, err)
	}
	for _, ep := range cfg.endpoints {
		if err := client.New(ep).Health(ctx); err != nil {
			return fmt.Errorf("loadgen: endpoint %s not healthy: %w", ep, err)
		}
	}

	stale := newStalenessSampler(cfg.endpoints)
	base, err := runReplPhase(cfg, "baseline", []string{cfg.leader}, leaderC, stale)
	if err != nil {
		return err
	}
	fan, err := runReplPhase(cfg, "fanout", cfg.endpoints, leaderC, stale)
	if err != nil {
		return err
	}

	rep := replBenchReport{
		Leader:    cfg.leader,
		Endpoints: cfg.endpoints,
		Clients:   cfg.clients,
		InsertPct: cfg.insertPct,
		NoCache:   cfg.noCache,
		HostCores: runtime.NumCPU(),
		Baseline:  base,
		FanOut:    fan,
		Staleness: stale.summarize(),
	}
	if base.ReadRPS > 0 {
		rep.ReadScaling = fan.ReadRPS / base.ReadRPS
	}

	fmt.Fprintf(out, "repl bench: baseline %.0f read/s on leader alone; fan-out %.0f read/s across %d endpoints (%.2fx)\n",
		base.ReadRPS, fan.ReadRPS, len(cfg.endpoints), rep.ReadScaling)
	for _, ep := range cfg.endpoints {
		if st, ok := rep.Staleness[ep]; ok {
			fmt.Fprintf(out, "staleness %s: caught up %.0f%% of %d samples, lag mean=%.1f max=%d records (max %.2fs behind)\n",
				ep, 100*st.CaughtUpFraction, st.Samples, st.MeanLagRecords, st.MaxLagRecords, st.MaxLagSeconds)
		}
	}
	if cfg.outPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", cfg.outPath)
	}
	return nil
}

// runReplPhase drives cfg.clients goroutines for cfg.duration: writes to
// the leader, reads failing over round-robin across readFrom.
func runReplPhase(cfg replBenchConfig, label string, readFrom []string, leaderC *client.Client, stale *stalenessSampler) (replPhaseReport, error) {
	me, err := client.NewMulti(readFrom, client.WithRetry(4, 2*time.Second))
	if err != nil {
		return replPhaseReport{}, err
	}

	type sample struct {
		d        time.Duration
		endpoint string
		write    bool
		err      error
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	var sampWG sync.WaitGroup
	sampWG.Add(1)
	go func() {
		defer sampWG.Done()
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				stale.sample()
			}
		}
	}()

	var (
		mu      sync.Mutex
		samples []sample
	)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(ci)))
			timed := make([]sample, 0, 1024)
			for ctx.Err() == nil {
				t0 := time.Now()
				var s sample
				if rng.Intn(100) < cfg.insertPct {
					s.write, s.endpoint = true, cfg.leader
					row := []any{
						rng.Int63n(1 << 40), rng.Intn(3), rng.Intn(2),
						fmt.Sprintf("1994-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)),
						float64(1 + rng.Intn(50)), 100 * float64(1+rng.Intn(500)),
					}
					_, s.err = leaderC.Insert(ctx, client.InsertRequest{Table: "lineitem", Rows: [][]any{row}})
				} else {
					_, s.endpoint, s.err = me.Query(ctx, replReadRequest(rng, cfg))
				}
				s.d = time.Since(t0)
				if ctx.Err() != nil && s.err != nil {
					break // cut off by the phase deadline
				}
				timed = append(timed, s)
			}
			mu.Lock()
			samples = append(samples, timed...)
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	cancel()
	sampWG.Wait()

	rep := replPhaseReport{
		Label:       label,
		Endpoints:   readFrom,
		DurationSec: elapsed.Seconds(),
		PerEndpoint: make(map[string]replEndpointStats, len(readFrom)),
	}
	perLats := make(map[string][]float64, len(readFrom))
	var allLats []float64
	for _, s := range samples {
		if s.write {
			rep.Writes++
			if s.err != nil {
				rep.Errors++
			}
			continue
		}
		rep.Reads++
		es := rep.PerEndpoint[s.endpoint]
		es.Reads++
		if s.err != nil {
			rep.Errors++
			es.Errors++
			rep.PerEndpoint[s.endpoint] = es
			continue
		}
		rep.PerEndpoint[s.endpoint] = es
		ms := float64(s.d) / float64(time.Millisecond)
		allLats = append(allLats, ms)
		perLats[s.endpoint] = append(perLats[s.endpoint], ms)
	}
	// A failed read that never reached any endpoint lands under "".
	rep.LatencyMS = summarizeLatency(allLats)
	for ep, es := range rep.PerEndpoint {
		es.LatencyMS = summarizeLatency(perLats[ep])
		rep.PerEndpoint[ep] = es
	}
	rep.ReadRPS = float64(rep.Reads) / elapsed.Seconds()
	return rep, nil
}

// replReadRequest alternates the direct-estimate and approximate-SQL
// read kinds, matching the standard loadgen mix minus inserts.
func replReadRequest(rng *rand.Rand, cfg replBenchConfig) client.QueryRequest {
	if rng.Intn(2) == 0 {
		return client.QueryRequest{
			Estimate: &client.EstimateRequest{
				Table:   "lineitem",
				GroupBy: []string{"l_returnflag", "l_linestatus"},
				Agg:     "sum",
				Column:  "l_quantity",
			},
			NoCache:   cfg.noCache,
			TimeoutMS: cfg.timeoutMS,
		}
	}
	return client.QueryRequest{SQL: workload.Qg2, NoCache: cfg.noCache, TimeoutMS: cfg.timeoutMS}
}

func summarizeLatency(lats []float64) latencySummary {
	n := len(lats)
	if n == 0 {
		return latencySummary{}
	}
	sort.Float64s(lats)
	var sum float64
	for _, v := range lats {
		sum += v
	}
	return latencySummary{
		P50:  lats[n/2],
		P95:  lats[min(n-1, n*95/100)],
		P99:  lats[min(n-1, n*99/100)],
		Mean: sum / float64(n),
		Max:  lats[n-1],
	}
}

// stalenessSampler polls every endpoint's /v1/repl/status and accumulates
// follower lag statistics across both bench phases.
type stalenessSampler struct {
	clients map[string]*client.Client

	mu    sync.Mutex
	accum map[string]*staleAccum
}

type staleAccum struct {
	samples   int
	caughtUp  int
	sumLag    float64
	maxLagRec int64
	maxLagSec float64
}

func newStalenessSampler(endpoints []string) *stalenessSampler {
	s := &stalenessSampler{
		clients: make(map[string]*client.Client, len(endpoints)),
		accum:   make(map[string]*staleAccum, len(endpoints)),
	}
	for _, ep := range endpoints {
		s.clients[ep] = client.New(ep)
	}
	return s
}

func (s *stalenessSampler) sample() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for ep, c := range s.clients {
		st, err := c.ReplStatus(ctx)
		if err != nil || st.Role != "follower" {
			continue // leaders and standalone servers have no lag to report
		}
		s.mu.Lock()
		a := s.accum[ep]
		if a == nil {
			a = &staleAccum{}
			s.accum[ep] = a
		}
		a.samples++
		if st.CaughtUp {
			a.caughtUp++
		}
		a.sumLag += float64(st.LagRecords)
		if st.LagRecords > a.maxLagRec {
			a.maxLagRec = st.LagRecords
		}
		if st.LagSeconds > a.maxLagSec {
			a.maxLagSec = st.LagSeconds
		}
		s.mu.Unlock()
	}
}

func (s *stalenessSampler) summarize() map[string]replStalenessStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]replStalenessStats, len(s.accum))
	for ep, a := range s.accum {
		st := replStalenessStats{
			Samples:       a.samples,
			MaxLagRecords: a.maxLagRec,
			MaxLagSeconds: a.maxLagSec,
		}
		if a.samples > 0 {
			st.CaughtUpFraction = float64(a.caughtUp) / float64(a.samples)
			st.MeanLagRecords = a.sumLag / float64(a.samples)
		}
		out[ep] = st
	}
	return out
}
