package main

import (
	"os"
	"strings"
	"testing"

	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/rewrite"
	"github.com/approxdb/congress/internal/tpcd"
)

func TestRunEndToEnd(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-rows", "5000", "-groups", "27", "-skew", "1.2",
		"-space-pct", "5", "-strategy", "congress", "-rewrite", "integrated",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"exact answer", "approximate answer", "errors:", "speedup:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
}

func TestRunWorkersAndMetrics(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-rows", "5000", "-groups", "27", "-skew", "1.2",
		"-workers", "4", "-metrics",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{
		"speedup:",
		"congress_rows_scanned_total",
		"congress_build_total 1",
		"congress_answer_total",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
}

func TestRunExplain(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-rows", "3000", "-groups", "8", "-explain", "-rewrite", "keynormalized"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "csk_lineitem") {
		t.Errorf("explain output:\n%s", out.String())
	}
}

func TestRunAllStrategyAndRewriteNames(t *testing.T) {
	for _, s := range []string{"house", "senate", "basic", "congress"} {
		if _, err := parseStrategy(s); err != nil {
			t.Errorf("parseStrategy(%q): %v", s, err)
		}
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
	for _, s := range []string{"integrated", "nested", "normalized", "keynormalized", "nested-integrated", "key-normalized"} {
		if _, err := parseRewrite(s); err != nil {
			t.Errorf("parseRewrite(%q): %v", s, err)
		}
	}
	if _, err := parseRewrite("bogus"); err == nil {
		t.Error("bogus rewrite accepted")
	}
}

func TestRunCSVLoadAndSave(t *testing.T) {
	dir := t.TempDir()
	in := dir + "/data.csv"
	csvData := "g,h,v\nVARCHAR,VARCHAR,FLOAT\n"
	for i := 0; i < 400; i++ {
		csvData += "a,x,1.5\n"
	}
	for i := 0; i < 40; i++ {
		csvData += "b,y,9.5\n"
	}
	if err := os.WriteFile(in, []byte(csvData), 0o644); err != nil {
		t.Fatal(err)
	}
	outCSV := dir + "/sample.csv"
	var out strings.Builder
	err := run([]string{
		"-load", in, "-table", "mydata", "-group-cols", "g,h",
		"-space-pct", "20", "-save-sample", outCSV,
		"-query", "select g, sum(v) from mydata group by g order by g",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loaded mydata: 440 rows") {
		t.Errorf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "sample written to") {
		t.Errorf("sample not saved:\n%s", out.String())
	}
	data, err := os.ReadFile(outCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "sf") {
		t.Errorf("saved sample lacks sf column:\n%s", string(data[:200]))
	}
	// Missing file errors.
	if err := run([]string{"-load", dir + "/nope.csv"}, &out); err == nil {
		t.Error("missing CSV accepted")
	}
}

func TestRunShowAllocation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rows", "3000", "-groups", "8", "-show-allocation"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "scale-down f") || !strings.Contains(s, "population") {
		t.Errorf("allocation output:\n%s", s)
	}
}

func TestREPL(t *testing.T) {
	// Build a tiny synopsis directly and drive the REPL loop.
	rel := tpcd.MustGenerate(tpcd.Params{TableSize: 3000, NumGroups: 8, Seed: 2})
	cat := engine.NewCatalog()
	cat.Register(rel)
	a := aqua.New(cat)
	if _, err := a.CreateSynopsis(aqua.Config{
		Table: "lineitem", GroupCols: tpcd.GroupingAttrs, Space: 300, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(`
-- a comment
select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag
exact select count(*) from lineitem
explain select sum(l_quantity) from lineitem
not valid sql
quit
`)
	var out strings.Builder
	if err := runREPL(a, rewrite.Integrated, in, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"approximate", "3000", "cs_lineitem", "error:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("repl output missing %q:\n%s", frag, s)
		}
	}
	// EOF without quit terminates cleanly.
	var out2 strings.Builder
	if err := runREPL(a, rewrite.Integrated, strings.NewReader("select count(*) from lineitem\n"), &out2); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-strategy", "bogus"}, &out); err == nil {
		t.Error("bogus strategy flag accepted")
	}
	if err := run([]string{"-rewrite", "bogus"}, &out); err == nil {
		t.Error("bogus rewrite flag accepted")
	}
	if err := run([]string{"-notaflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-rows", "2000", "-groups", "8", "-query", "not sql"}, &out); err == nil {
		t.Error("bad query accepted")
	}
}
