// Command congress is a demonstration driver for the congressional
// samples library: it generates a skewed TPC-D-style lineitem table,
// precomputes a synopsis under a chosen allocation strategy, then
// answers a query both exactly and approximately, reporting per-group
// errors and speedup.
//
// Usage:
//
//	congress [flags]
//
//	-rows N        table size (default 200000)
//	-groups N      number of groups (default 1000)
//	-skew Z        group-size Zipf parameter (default 0.86)
//	-space-pct P   synopsis size as %% of table (default 7)
//	-strategy S    house|senate|basic|congress (default congress)
//	-rewrite S     integrated|nested|normalized|keynormalized
//	-query SQL     query to run (default the paper's Q_g2)
//	-explain       print the rewritten SQL instead of executing
//	-seed N        RNG seed (default 1)
//	-workers N     worker goroutines for synopsis construction (default GOMAXPROCS)
//	-metrics       print the telemetry counters before exiting
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/metrics"
	"github.com/approxdb/congress/internal/rewrite"
	"github.com/approxdb/congress/internal/tpcd"
	"github.com/approxdb/congress/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "congress:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("congress", flag.ContinueOnError)
	rows := fs.Int("rows", 200_000, "table size")
	groups := fs.Int("groups", 1000, "number of groups")
	skew := fs.Float64("skew", 0.86, "group-size Zipf z")
	spacePct := fs.Float64("space-pct", 7, "synopsis size as % of table")
	strategyName := fs.String("strategy", "congress", "house|senate|basic|congress")
	rewriteName := fs.String("rewrite", "integrated", "integrated|nested|normalized|keynormalized")
	query := fs.String("query", workload.Qg2, "query to run")
	explain := fs.Bool("explain", false, "print the rewritten SQL instead of executing")
	seed := fs.Int64("seed", 1, "RNG seed")
	loadCSV := fs.String("load", "", "load the base table from a typed CSV instead of generating (see engine.WriteCSV format)")
	table := fs.String("table", "lineitem", "base table name when loading from CSV")
	groupCols := fs.String("group-cols", "", "comma-separated grouping columns (default: the TPC-D grouping attributes)")
	saveSample := fs.String("save-sample", "", "write the integrated sample relation to this CSV file")
	repl := fs.Bool("repl", false, "read queries from stdin; prefix a query with 'exact ' to bypass the synopsis")
	showAlloc := fs.Bool("show-allocation", false, "print the Figure 5-style space allocation table for the synopsis")
	workers := fs.Int("workers", core.DefaultWorkers(), "worker goroutines for synopsis construction (1 = serial)")
	showMetrics := fs.Bool("metrics", false, "print the telemetry counters before exiting")
	if err := fs.Parse(args); err != nil {
		return err
	}

	strategy, err := parseStrategy(*strategyName)
	if err != nil {
		return err
	}
	rw, err := parseRewrite(*rewriteName)
	if err != nil {
		return err
	}

	var rel *engine.Relation
	start := time.Now()
	if *loadCSV != "" {
		f, err := os.Open(*loadCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err = engine.ReadCSV(*table, f)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %s: %d rows from %s in %v\n",
			*table, rel.NumRows(), *loadCSV, time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Fprintf(out, "generating lineitem: %d rows, %d groups, z=%.2f ...\n", *rows, *groups, *skew)
		var err error
		rel, err = tpcd.Generate(tpcd.Params{
			TableSize: *rows, NumGroups: *groups, GroupSkew: *skew, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  done in %v\n", time.Since(start).Round(time.Millisecond))
	}

	grouping := tpcd.GroupingAttrs
	if *groupCols != "" {
		grouping = strings.Split(*groupCols, ",")
		for i := range grouping {
			grouping[i] = strings.TrimSpace(grouping[i])
		}
	}

	cat := engine.NewCatalog()
	cat.Register(rel)
	a := aqua.New(cat)
	space := int(float64(rel.NumRows()) * *spacePct / 100)
	fmt.Fprintf(out, "building %s synopsis of %d tuples (%.1f%%) ...\n", strategy, space, *spacePct)
	start = time.Now()
	syn, err := a.CreateSynopsis(aqua.Config{
		Table:        rel.Name,
		GroupCols:    grouping,
		Strategy:     strategy,
		Space:        space,
		Rewrite:      rw,
		Seed:         *seed,
		BuildWorkers: *workers,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  done in %v\n\n", time.Since(start).Round(time.Millisecond))
	if *showMetrics {
		defer func() { fmt.Fprintf(out, "\n%s", a.Telemetry().Snapshot()) }()
	}

	if *saveSample != "" {
		sampleRel, ok := cat.Lookup(syn.Tables(rewrite.Integrated).Sample)
		if !ok {
			return fmt.Errorf("internal: sample relation missing")
		}
		f, err := os.Create(*saveSample)
		if err != nil {
			return err
		}
		if err := sampleRel.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "sample written to %s (%d tuples)\n", *saveSample, sampleRel.NumRows())
	}

	if *showAlloc {
		rows := syn.AllocationTable()
		fmt.Fprintf(out, "%-40s %10s %10s %10s %8s\n", "group", "population", "pre-scale", "target", "actual")
		limit := len(rows)
		if limit > 50 {
			limit = 50
		}
		for _, r := range rows[:limit] {
			fmt.Fprintf(out, "%-40s %10d %10.2f %10.2f %8d\n",
				strings.Join(r.Group, ","), r.Population, r.PreScale, r.Target, r.Actual)
		}
		if limit < len(rows) {
			fmt.Fprintf(out, "... (%d more groups)\n", len(rows)-limit)
		}
		fmt.Fprintf(out, "scale-down f = %.4f\n", syn.Allocation().ScaleDown)
		return nil
	}

	if *explain {
		sqlText, err := a.RewriteOnly(*query, rw)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, sqlText)
		return nil
	}

	if *repl {
		return runREPL(a, rw, os.Stdin, out)
	}

	start = time.Now()
	exact, err := a.Exact(*query)
	if err != nil {
		return err
	}
	exactTime := time.Since(start)

	start = time.Now()
	approx, err := a.AnswerWith(*query, rw)
	if err != nil {
		return err
	}
	approxTime := time.Since(start)

	fmt.Fprintf(out, "exact answer (%v):\n%s\n", exactTime.Round(time.Millisecond), exact)
	fmt.Fprintf(out, "approximate answer via %s rewriting (%v):\n%s\n", rw, approxTime.Round(time.Millisecond), approx)

	// Error metrics when the query is a plain group-by with a trailing
	// aggregate column.
	nGroup := len(exact.Columns) - 1
	if nGroup >= 0 && len(exact.Rows) > 0 {
		if ge, err := metrics.CompareAnswers(exact, approx, nGroup, nGroup); err == nil {
			fmt.Fprintf(out, "errors: mean %.2f%%  max %.2f%%  missing groups %d\n",
				ge.L1(), ge.LInf(), ge.MissingGroups)
		}
	}
	if approxTime > 0 {
		fmt.Fprintf(out, "speedup: %.1fx\n", float64(exactTime)/float64(approxTime))
	}
	return nil
}

// runREPL answers queries from in line by line. A leading "exact "
// bypasses the synopsis; "explain " prints the rewrite; "quit" exits.
func runREPL(a *aqua.Aqua, rw rewrite.Strategy, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, "congress> enter SQL (prefix 'exact ' or 'explain '; 'quit' to exit)")
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for {
		fmt.Fprint(out, "congress> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "--"):
			continue
		case line == "quit" || line == "exit":
			return nil
		case strings.HasPrefix(strings.ToLower(line), "exact "):
			res, err := a.Exact(line[len("exact "):])
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, res)
		case strings.HasPrefix(strings.ToLower(line), "explain "):
			sqlText, err := a.RewriteOnly(line[len("explain "):], rw)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, sqlText)
		default:
			start := time.Now()
			res, err := a.AnswerWith(line, rw)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, res)
			fmt.Fprintf(out, "(%v, approximate)\n", time.Since(start).Round(time.Millisecond))
		}
	}
}

func parseStrategy(s string) (core.Strategy, error) {
	switch strings.ToLower(s) {
	case "house":
		return core.House, nil
	case "senate":
		return core.Senate, nil
	case "basic", "basiccongress":
		return core.BasicCongress, nil
	case "congress":
		return core.Congress, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func parseRewrite(s string) (rewrite.Strategy, error) {
	switch strings.ToLower(s) {
	case "integrated":
		return rewrite.Integrated, nil
	case "nested", "nestedintegrated", "nested-integrated":
		return rewrite.NestedIntegrated, nil
	case "normalized":
		return rewrite.Normalized, nil
	case "keynormalized", "key-normalized":
		return rewrite.KeyNormalized, nil
	default:
		return 0, fmt.Errorf("unknown rewrite strategy %q", s)
	}
}
