package congress

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/approxdb/congress/internal/tpcd"
)

// relDiff returns |a-b| / max(|a|,|b|,1).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return d / m
}

// TestShardedDifferentialTPCD is the acceptance differential: with a
// fully enumerated synopsis (space ≥ table size, so every stratum is
// exact on both sides), a sharded warehouse at K ∈ {2, 4, 8} must
// return identical SUM/COUNT/AVG estimates to a single warehouse over
// the same TPC-D data, for every grouping granularity — and identical
// (zero) bounds, since variance addition over exact partials stays
// exact.
func TestShardedDifferentialTPCD(t *testing.T) {
	rel, err := tpcd.Generate(tpcd.Params{TableSize: 20_000, NumGroups: 27, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	single := Open()
	single.AttachRelation(rel)
	spec := SynopsisSpec{
		Table:   rel.Name,
		GroupBy: tpcd.GroupingAttrs,
		Space:   2 * 20_000, // ≥ every shard's row count → full enumeration
		Seed:    7,
	}
	if err := single.BuildSynopsis(spec); err != nil {
		t.Fatal(err)
	}
	groupings := [][]string{
		{"l_returnflag"},
		{"l_returnflag", "l_linestatus"},
		tpcd.GroupingAttrs,
	}
	for _, k := range []int{2, 4, 8} {
		sw, err := OpenSharded(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sw.AttachRelation(rel, tpcd.GroupingAttrs); err != nil {
			t.Fatal(err)
		}
		if err := sw.BuildSynopsis(spec); err != nil {
			t.Fatal(err)
		}
		for _, grouping := range groupings {
			for _, agg := range []Aggregate{Sum, Count, Avg} {
				want, err := single.Estimate(rel.Name, grouping, agg, "l_quantity", 0.95)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sw.Estimate(rel.Name, grouping, agg, "l_quantity", 0.95)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("k=%d %v %v: %d groups, want %d", k, grouping, agg, len(got), len(want))
				}
				byKey := make(map[string]struct {
					v, b float64
					n    int
				}, len(want))
				for _, e := range want {
					byKey[e.Key] = struct {
						v, b float64
						n    int
					}{e.Value, e.Bound, e.SampleN}
				}
				for _, e := range got {
					w, ok := byKey[e.Key]
					if !ok {
						t.Fatalf("k=%d %v %v: sharded group %q missing from single", k, grouping, agg, e.Key)
					}
					if relDiff(e.Value, w.v) > 1e-9 {
						t.Errorf("k=%d %v %v %q: value %v != %v", k, grouping, agg, e.Key, e.Value, w.v)
					}
					if relDiff(e.Bound, w.b) > 1e-9 {
						t.Errorf("k=%d %v %v %q: bound %v != %v", k, grouping, agg, e.Key, e.Bound, w.b)
					}
					if e.SampleN != w.n {
						t.Errorf("k=%d %v %v %q: SampleN %d != %d", k, grouping, agg, e.Key, e.SampleN, w.n)
					}
				}
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedEstimateWithinBounds: under real (non-exhaustive) sampling
// the sharded answers cannot be bit-identical to an independent
// unsharded build, but the merged half-widths must still do their job:
// estimates stay within the 95% bound of the exact answer for the vast
// majority of groups.
func TestShardedEstimateWithinBounds(t *testing.T) {
	rel, err := tpcd.Generate(tpcd.Params{TableSize: 50_000, NumGroups: 27, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	exactW := Open()
	exactW.AttachRelation(rel)

	sw, err := OpenSharded(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.AttachRelation(rel, tpcd.GroupingAttrs); err != nil {
		t.Fatal(err)
	}
	if err := sw.BuildSynopsis(SynopsisSpec{
		Table: rel.Name, GroupBy: tpcd.GroupingAttrs, Space: 6000, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	exact, err := exactW.Query(
		"select l_returnflag, sum(l_quantity), count(*), avg(l_quantity) from lineitem group by l_returnflag")
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[string][3]float64) // key → sum, count, avg
	for _, r := range exact.Rows {
		s, _ := r[1].AsFloat()
		c, _ := r[2].AsFloat()
		a, _ := r[3].AsFloat()
		truth[r[0].String()] = [3]float64{s, c, a}
	}
	checked, covered := 0, 0
	for ai, agg := range []Aggregate{Sum, Count, Avg} {
		ests, err := sw.Estimate(rel.Name, []string{"l_returnflag"}, agg, "l_quantity", 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if len(ests) != len(truth) {
			t.Fatalf("%v: %d groups, want %d", agg, len(ests), len(truth))
		}
		for _, e := range ests {
			tr, ok := truth[e.Key]
			if !ok {
				t.Fatalf("%v: unexpected group %q", agg, e.Key)
			}
			checked++
			if math.Abs(e.Value-tr[ai]) <= e.Bound {
				covered++
			}
		}
	}
	// 9 group×aggregate cells at 95% nominal; allow one miss.
	if covered < checked-1 {
		t.Errorf("only %d/%d estimates within their 95%% bounds", covered, checked)
	}
}

// TestShardedInsertRoutingLocality: every row lands on the shard its
// routing key maps to, whole groups stay together, and the router
// telemetry counts each shard's arrivals.
func TestShardedInsertRoutingLocality(t *testing.T) {
	sw, err := OpenSharded(4)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sw.CreateTable("sales", []string{"region"},
		Col("region", String), Col("amount", Float))
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"east", "west", "north", "south", "tiny"}
	perRegion := 40
	for i := 0; i < perRegion; i++ {
		for _, r := range regions {
			if err := tbl.Insert(Str(r), F(float64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tbl.NumRows() != perRegion*len(regions) {
		t.Fatalf("total rows %d", tbl.NumRows())
	}
	var telTotal int64
	for i := 0; i < sw.NumShards(); i++ {
		telTotal += sw.ShardTelemetry().Inserts(i)
	}
	if telTotal != int64(perRegion*len(regions)) {
		t.Errorf("telemetry counted %d inserts, want %d", telTotal, perRegion*len(regions))
	}
	// Each region must live wholly on the shard the router names: its
	// home shard holds all perRegion rows, every other shard holds none.
	for _, r := range regions {
		home := tbl.RouteOf(Row{Str(r), F(0)})
		for i := 0; i < sw.NumShards(); i++ {
			res, err := sw.Shard(i).Query(
				fmt.Sprintf("select count(*) from sales where region = '%s'", r))
			if err != nil {
				t.Fatal(err)
			}
			c, _ := res.Rows[0][0].AsFloat()
			want := 0
			if i == home {
				want = perRegion
			}
			if int(c) != want {
				t.Errorf("region %q: %d rows on shard %d, want %d (home %d)", r, int(c), i, want, home)
			}
		}
	}
}

// TestShardedInsertMaintainsSynopsis: inserts after a build feed the
// home shard's maintainer; a sharded refresh surfaces them.
func TestShardedInsertMaintainsSynopsis(t *testing.T) {
	sw, err := OpenSharded(2)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sw.CreateTable("sales", []string{"region"},
		Col("region", String), Col("amount", Float))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		region := fmt.Sprintf("r%d", i%5)
		if err := tbl.Insert(Str(region), F(float64(10+i%7))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region"}, Space: 1000, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// A brand-new group arrives post-build.
	for i := 0; i < 50; i++ {
		if err := tbl.Insert(Str("fresh"), F(42)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.RefreshSynopsis("sales"); err != nil {
		t.Fatal(err)
	}
	ests, err := sw.Estimate("sales", []string{"region"}, Count, "amount", 0.90)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ests {
		if e.Key == "fresh" {
			found = true
			if math.Abs(e.Value-50) > e.Bound+1e-9 {
				t.Errorf("fresh group count %v ± %v, want 50 within bound", e.Value, e.Bound)
			}
		}
	}
	if !found {
		t.Error("post-build group missing from sharded estimate after refresh")
	}
}

// TestShardedEmptyShards: more shards than groups leaves some shards
// with no rows; the build skips them and estimation must tolerate the
// missing synopses while still erroring for a never-built table.
func TestShardedEmptyShards(t *testing.T) {
	sw, err := OpenSharded(8)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sw.CreateTable("sales", []string{"region"},
		Col("region", String), Col("amount", Float))
	if err != nil {
		t.Fatal(err)
	}
	// Two groups → at most two non-empty shards out of eight.
	for i := 0; i < 300; i++ {
		r := "east"
		if i%3 == 0 {
			r = "west"
		}
		if err := tbl.Insert(Str(r), F(float64(i%10))); err != nil {
			t.Fatal(err)
		}
	}
	// Estimating before any build must classify as ErrNoSynopsis.
	if _, err := sw.Estimate("sales", []string{"region"}, Sum, "amount", 0.90); !errors.Is(err, ErrNoSynopsis) {
		t.Fatalf("pre-build estimate error = %v, want ErrNoSynopsis", err)
	}
	if err := sw.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region"}, Space: 600, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	ests, err := sw.Estimate("sales", []string{"region"}, Count, "amount", 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 2 {
		t.Fatalf("%d groups, want 2", len(ests))
	}
	for _, e := range ests {
		want := 200.0
		if e.Key == "west" {
			want = 100
		}
		if math.Abs(e.Value-want) > 1e-9 {
			t.Errorf("group %q count %v, want %v (space ≥ rows → exact)", e.Key, e.Value, want)
		}
	}
	info := sw.Synopses()
	if len(info) != 1 {
		t.Fatalf("synopses: %v", info)
	}
	if info[0].Shards < 1 || info[0].Shards > 2 {
		t.Errorf("synopsis spans %d shards, want 1-2 (two groups)", info[0].Shards)
	}
}

// TestShardedSampleUnion: the whole-synopsis read returns the weighted
// union — populations add across shards and the per-group cap holds.
func TestShardedSampleUnion(t *testing.T) {
	sw, err := OpenSharded(4)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sw.CreateTable("sales", []string{"region"},
		Col("region", String), Col("amount", Float))
	if err != nil {
		t.Fatal(err)
	}
	perRegion := map[string]int{"a": 400, "b": 250, "c": 120, "d": 60, "e": 30}
	total := 0
	for r, n := range perRegion {
		total += n
		for i := 0; i < n; i++ {
			if err := tbl.Insert(Str(r), F(float64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sw.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region"}, Space: 2 * total, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	st, err := sw.Sample("sales", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if int(st.Population()) != total {
		t.Errorf("union population %d, want %d", st.Population(), total)
	}
	// Stratum keys are internal composite group keys; identify each
	// group by the region value carried in its tuples.
	seen := make(map[string]bool)
	for _, key := range st.Keys() {
		s, _ := st.Get(key)
		if len(s.Items) == 0 {
			t.Fatalf("stratum %q has no items", key)
		}
		r := s.Items[0][0].S
		n := perRegion[r]
		if n == 0 {
			t.Fatalf("unexpected region %q in union", r)
		}
		seen[r] = true
		if int(s.Population) != n || len(s.Items) != n {
			t.Errorf("group %q: pop %d items %d, want %d (fully enumerated)", r, s.Population, len(s.Items), n)
		}
	}
	if len(seen) != len(perRegion) {
		t.Errorf("union has %d groups, want %d", len(seen), len(perRegion))
	}
	capped, err := sw.Sample("sales", 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range capped.Keys() {
		s, _ := capped.Get(key)
		if len(s.Items) > 50 {
			t.Errorf("stratum %q: %d items exceeds cap 50", key, len(s.Items))
		}
	}
}

// TestShardedConcurrentOps drives inserts, estimates and refreshes
// concurrently; meaningful under -race.
func TestShardedConcurrentOps(t *testing.T) {
	sw, err := OpenSharded(4)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sw.CreateTable("sales", []string{"region"},
		Col("region", String), Col("amount", Float))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := tbl.Insert(Str(fmt.Sprintf("r%d", i%8)), F(float64(i%13))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region"}, Space: 500, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := tbl.Insert(Str(fmt.Sprintf("r%d", i%8)), F(float64(g))); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := sw.EstimateCtx(context.Background(), "sales",
					[]string{"region"}, Sum, "amount", 0.90); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := sw.RefreshSynopsis("sales"); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestShardedValidation covers the error surface: bad shard counts,
// short rows, unknown tables, reserved-separator values.
func TestShardedValidation(t *testing.T) {
	if _, err := OpenSharded(0); err == nil {
		t.Error("0 shards accepted")
	}
	sw, err := OpenSharded(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Table("nope"); !errors.Is(err, ErrUnknownTable) {
		t.Errorf("unknown table error = %v", err)
	}
	if _, err := sw.CreateTable("t", []string{"missing"}, Col("a", String)); !errors.Is(err, ErrBadQuery) {
		t.Errorf("bad routing column error = %v", err)
	}
	if _, err := sw.CreateTable("t", nil, Col("a", String)); !errors.Is(err, ErrBadQuery) {
		t.Errorf("empty routing key error = %v", err)
	}
	tbl, err := sw.CreateTable("t", []string{"b"}, Col("a", String), Col("b", String))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Str("only-a")); !errors.Is(err, ErrBadQuery) {
		t.Errorf("short row error = %v", err)
	}
	if err := sw.BuildSynopsis(SynopsisSpec{Table: "t", GroupBy: []string{"b"}, Space: 10}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("empty-table build error = %v", err)
	}
}

// TestSplitProportional: budgets divide by largest remainder, sum
// exactly, and zero-weight shards get zero.
func TestSplitProportional(t *testing.T) {
	cases := []struct {
		budget  int
		weights []int
		want    []int
	}{
		{10, []int{1, 1, 1}, []int{4, 3, 3}},
		{100, []int{3, 1, 0}, []int{75, 25, 0}},
		{7, []int{5, 5}, []int{4, 3}},
		{0, []int{2, 3}, []int{0, 0}},
	}
	for _, c := range cases {
		total := 0
		for _, w := range c.weights {
			total += w
		}
		got := splitProportional(c.budget, c.weights, total)
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Errorf("split(%d, %v) = %v, want %v", c.budget, c.weights, got, c.want)
				break
			}
		}
		if sum != c.budget {
			t.Errorf("split(%d, %v) sums to %d", c.budget, c.weights, sum)
		}
	}
}
