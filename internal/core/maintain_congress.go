package core

import (
	"math/rand"

	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// CongressMaintainer incrementally maintains a Congress sample via the
// Eq. 8 per-tuple selection probabilities, as described at the end of
// Section 6: each inserted tuple τ is selected with probability
//
//	p(τ) = min(1, max over T ⊆ G of Y / (m_T · n_{g(τ,T)}))
//
// using the current group counts. Because m_T and n_g only grow, the
// selection probability of any group only decreases over time; when the
// probability for a group's tuples has dropped from p to q, each sampled
// tuple of that group survives a subsampling coin flip with probability
// q/p. The paper applies this decay eagerly per insert; we apply it
// lazily (the stored probability is decayed at snapshot time and
// periodically), which yields the same distribution since the coin flips
// compose multiplicatively.
type CongressMaintainer struct {
	g   *Grouping
	y   float64
	rng *rand.Rand

	cube  *datacube.Cube
	items []congItem
	seen  int64

	// rebalanceEvery bounds memory: a full lazy-decay pass runs after
	// this many inserts. 0 disables periodic rebalancing.
	rebalanceEvery int64
}

type congItem struct {
	row engine.Row
	id  datacube.GroupID
	p   float64 // probability this tuple is (still) in the sample
}

// NewCongressMaintainer creates a maintainer with pre-scaling space
// parameter y (Section 6 fixes Y; the realized sample size fluctuates
// with the data distribution and can be subsampled to a hard budget with
// SubsampleTo).
func NewCongressMaintainer(g *Grouping, y int, rng *rand.Rand) (*CongressMaintainer, error) {
	if y <= 0 {
		return nil, errBudget
	}
	cube, err := datacube.New(g.Attrs)
	if err != nil {
		return nil, err
	}
	return &CongressMaintainer{
		g:              g,
		y:              float64(y),
		rng:            rng,
		cube:           cube,
		rebalanceEvery: 4 * int64(y),
	}, nil
}

// prob computes the current Eq. 8 selection probability for a tuple in
// the given finest group.
func (m *CongressMaintainer) prob(id datacube.GroupID) float64 {
	best := 0.0
	for mask := uint32(0); int(mask) < m.cube.NumGroupings(); mask++ {
		mT := float64(m.cube.NumGroups(mask))
		ng := float64(m.cube.CountFor(mask, id))
		if mT == 0 || ng == 0 {
			continue
		}
		if p := m.y / (mT * ng); p > best {
			best = p
		}
	}
	if best > 1 {
		return 1
	}
	return best
}

// Insert implements Maintainer.
func (m *CongressMaintainer) Insert(row engine.Row) {
	id := m.g.ID(row)
	if err := m.cube.Add(id); err != nil {
		// Arity is fixed by the grouping; this cannot happen.
		panic(err)
	}
	m.seen++
	p := m.prob(id)
	if sample.Bernoulli(p, m.rng) {
		m.items = append(m.items, congItem{row: row, id: id, p: p})
	}
	if m.rebalanceEvery > 0 && m.seen%m.rebalanceEvery == 0 {
		m.Rebalance()
	}
}

// Rebalance applies the lazy probability decay: every sampled tuple
// whose current Eq. 8 probability q has fallen below its stored
// probability p is kept with probability q/p. After the pass each kept
// tuple's stored probability equals its current probability, restoring
// the Eq. 8 invariant exactly.
func (m *CongressMaintainer) Rebalance() {
	kept := m.items[:0]
	for _, it := range m.items {
		q := m.prob(it.id)
		if q < it.p {
			if !sample.Bernoulli(q/it.p, m.rng) {
				continue
			}
			it.p = q
		}
		kept = append(kept, it)
	}
	m.items = kept
}

// SubsampleTo uniformly subsamples the current sample down to at most x
// tuples (the final step of the paper's one-pass construction: "running
// the algorithm with Y = X ... and then subsampling the sample to
// achieve the desired size X"). Uniform subsampling preserves each
// stratum's uniform-sample property.
func (m *CongressMaintainer) SubsampleTo(x int) {
	m.Rebalance()
	if len(m.items) <= x {
		return
	}
	idx := sample.SampleWithoutReplacement(len(m.items), x, m.rng)
	out := make([]congItem, 0, x)
	for _, i := range idx {
		out = append(out, m.items[i])
	}
	m.items = out
}

// SampledCount implements Maintainer.
func (m *CongressMaintainer) SampledCount() int { return len(m.items) }

// SeenCount implements Maintainer.
func (m *CongressMaintainer) SeenCount() int64 { return m.seen }

// Cube exposes the incrementally maintained group-count cube.
func (m *CongressMaintainer) Cube() *datacube.Cube { return m.cube }

// Snapshot implements Maintainer.
func (m *CongressMaintainer) Snapshot() (*sample.Stratified[engine.Row], error) {
	m.Rebalance()
	st := sample.NewStratified[engine.Row]()
	m.cube.FinestGroups(func(key string, pop int64) {
		st.Put(&sample.Stratum[engine.Row]{Key: key, Population: pop})
	})
	for _, it := range m.items {
		s, ok := st.Get(it.id.Key())
		if ok {
			s.Items = append(s.Items, it.row)
		}
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}
