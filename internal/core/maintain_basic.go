package core

import (
	"fmt"
	"math/rand"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// BasicCongressMaintainer incrementally maintains a Basic Congress
// sample per the Section 6 algorithm: a single reservoir sample of size
// Y over the entire relation, plus per-group "delta" uniform samples
// holding the extra tuples that small groups need beyond their share of
// the reservoir. Theorem 6.1 proves this maintains a valid basic
// congressional sample; TestBasicCongressMaintainerUniformity checks the
// delta-uniformity invariant empirically.
type BasicCongressMaintainer struct {
	g   *Grouping
	y   int
	rng *rand.Rand

	res   *sample.Reservoir[engine.Row]
	x     map[string]int          // tuples per group currently in the reservoir
	delta map[string][]engine.Row // per-group spill-over uniform samples
	pops  map[string]int64        // n_g for every group
	seen  int64
}

// NewBasicCongressMaintainer creates a maintainer with reservoir size y
// (the pre-scaling allocation; see the discussion after Theorem 6.1 on
// the fluctuating total size).
func NewBasicCongressMaintainer(g *Grouping, y int, rng *rand.Rand) (*BasicCongressMaintainer, error) {
	res, err := sample.NewReservoir[engine.Row](y, rng)
	if err != nil {
		return nil, err
	}
	return &BasicCongressMaintainer{
		g:     g,
		y:     y,
		rng:   rng,
		res:   res,
		x:     make(map[string]int),
		delta: make(map[string][]engine.Row),
		pops:  make(map[string]int64),
	}, nil
}

// target is the Senate-side per-group requirement Y/m.
func (m *BasicCongressMaintainer) target() float64 {
	if len(m.pops) == 0 {
		return float64(m.y)
	}
	return float64(m.y) / float64(len(m.pops))
}

// Insert implements Maintainer, following the four cases of the paper's
// algorithm.
func (m *BasicCongressMaintainer) Insert(row engine.Row) {
	key := m.g.Key(row)
	isNew := m.pops[key] == 0
	m.pops[key]++
	m.seen++
	if isNew {
		// Step 4 (new group): m grew, so every group's delta target
		// shrank. Evictions happen lazily as groups are touched; we trim
		// the groups we touch below.
		_ = isNew
	}
	target := m.target()

	evicted, hadEviction, accepted := m.res.Offer(row)
	switch {
	case !accepted:
		// Step 1 — common case — except the step-4 small-group rule:
		// while a group is smaller than its target, every tuple that
		// misses the reservoir goes to the delta sample, keeping the
		// group fully represented.
		if float64(m.pops[key]) <= target {
			m.delta[key] = append(m.delta[key], row)
		}
	case !hadEviction:
		// Reservoir still filling: the tuple joined the reservoir.
		m.x[key]++
	default:
		evKey := m.g.Key(evicted)
		if evKey == key {
			// Step 2: same group swapped with itself — nothing changes.
			break
		}
		// Step 3: group key gained a reservoir tuple; its delta shrinks.
		m.x[key]++
		if d := m.delta[key]; len(d) > 0 {
			m.evictDelta(key)
		}
		// Group evKey lost a reservoir tuple; if it is now below target,
		// the evicted tuple (a uniform pick from the group's reservoir
		// tuples) moves to the delta sample.
		m.x[evKey]--
		if float64(m.x[evKey]) < target {
			m.delta[evKey] = append(m.delta[evKey], evicted)
		}
	}
	m.trimDelta(key, target)
}

// evictDelta removes one uniformly random tuple from a delta sample.
func (m *BasicCongressMaintainer) evictDelta(key string) {
	d := m.delta[key]
	i := m.rng.Intn(len(d))
	last := len(d) - 1
	d[i] = d[last]
	m.delta[key] = d[:last]
	if len(m.delta[key]) == 0 {
		delete(m.delta, key)
	}
}

// trimDelta enforces |Δ_g| ≤ max(0, ⌈target⌉ − x_g) by uniformly random
// eviction — the lazy eviction of step 4 (random eviction preserves the
// uniform-sample property per Theorem 6.1).
func (m *BasicCongressMaintainer) trimDelta(key string, target float64) {
	limit := int(target+0.9999) - m.x[key]
	if limit < 0 {
		limit = 0
	}
	for len(m.delta[key]) > limit {
		m.evictDelta(key)
	}
}

// Compact applies the lazy delta trimming to every group at once,
// bounding total size; useful before Snapshot on long-running streams.
func (m *BasicCongressMaintainer) Compact() {
	target := m.target()
	for key := range m.delta {
		m.trimDelta(key, target)
	}
}

// SampledCount implements Maintainer.
func (m *BasicCongressMaintainer) SampledCount() int {
	n := m.res.Len()
	for _, d := range m.delta {
		n += len(d)
	}
	return n
}

// SeenCount implements Maintainer.
func (m *BasicCongressMaintainer) SeenCount() int64 { return m.seen }

// Snapshot implements Maintainer: each stratum holds the group's
// reservoir tuples plus its delta sample.
func (m *BasicCongressMaintainer) Snapshot() (*sample.Stratified[engine.Row], error) {
	m.Compact()
	st := sample.NewStratified[engine.Row]()
	for key, pop := range m.pops {
		st.Put(&sample.Stratum[engine.Row]{Key: key, Population: pop})
	}
	for _, row := range m.res.Items() {
		key := m.g.Key(row)
		s, ok := st.Get(key)
		if !ok {
			return nil, fmt.Errorf("core: basic congress maintainer holds a reservoir row for group %q with no population entry", key)
		}
		s.Items = append(s.Items, row)
	}
	for key, d := range m.delta {
		s, ok := st.Get(key)
		if !ok {
			return nil, fmt.Errorf("core: basic congress maintainer holds a delta sample for group %q with no population entry", key)
		}
		s.Items = append(s.Items, d...)
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}
