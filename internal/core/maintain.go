package core

import (
	"fmt"
	"math/rand"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// Maintainer is an incrementally maintained biased sample: tuples
// inserted into the warehouse are offered to the maintainer, which keeps
// its sample valid without ever re-reading the base relation
// (Section 6). Snapshot materializes the current stratified sample.
type Maintainer interface {
	// Insert offers one newly inserted tuple.
	Insert(row engine.Row)
	// Snapshot returns the current sample as strata keyed by finest
	// group, with populations for scale-factor computation.
	Snapshot() (*sample.Stratified[engine.Row], error)
	// SampledCount returns the current number of sampled tuples.
	SampledCount() int
	// SeenCount returns the number of tuples inserted so far.
	SeenCount() int64
}

// HouseMaintainer maintains a House sample: a single reservoir of
// capacity X over the whole insert stream, plus per-group population
// counts so Snapshot can report per-stratum scale factors.
type HouseMaintainer struct {
	g    *Grouping
	res  *sample.Reservoir[engine.Row]
	pops map[string]int64
	seen int64
}

// NewHouseMaintainer creates a House maintainer with capacity x.
func NewHouseMaintainer(g *Grouping, x int, rng *rand.Rand) (*HouseMaintainer, error) {
	res, err := sample.NewReservoir[engine.Row](x, rng)
	if err != nil {
		return nil, err
	}
	return &HouseMaintainer{g: g, res: res, pops: make(map[string]int64)}, nil
}

// Insert implements Maintainer.
func (m *HouseMaintainer) Insert(row engine.Row) {
	m.pops[m.g.Key(row)]++
	m.seen++
	m.res.Offer(row)
}

// SampledCount implements Maintainer.
func (m *HouseMaintainer) SampledCount() int { return m.res.Len() }

// SeenCount implements Maintainer.
func (m *HouseMaintainer) SeenCount() int64 { return m.seen }

// Snapshot implements Maintainer.
func (m *HouseMaintainer) Snapshot() (*sample.Stratified[engine.Row], error) {
	st := sample.NewStratified[engine.Row]()
	for key, pop := range m.pops {
		st.Put(&sample.Stratum[engine.Row]{Key: key, Population: pop})
	}
	for _, row := range m.res.Items() {
		key := m.g.Key(row)
		s, ok := st.Get(key)
		if !ok {
			// Every sampled row's group must have a population entry; a
			// miss means the maintainer state is internally inconsistent
			// (e.g. a restore fed rows the population map never saw).
			return nil, fmt.Errorf("core: house maintainer holds a sampled row for group %q with no population entry", key)
		}
		s.Items = append(s.Items, row)
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// SenateMaintainer maintains a Senate sample: one reservoir per
// non-empty finest group, each targeting X/m tuples where m is the
// current number of groups. When a new group appears, existing
// reservoirs are lazily shrunk toward the reduced target so the total
// stays within X, exactly as Section 6 prescribes.
type SenateMaintainer struct {
	g      *Grouping
	x      int
	rng    *rand.Rand
	groups map[string]*sample.Reservoir[engine.Row]
	pops   map[string]int64
	seen   int64
}

// NewSenateMaintainer creates a Senate maintainer with budget x.
func NewSenateMaintainer(g *Grouping, x int, rng *rand.Rand) (*SenateMaintainer, error) {
	if x <= 0 {
		return nil, errBudget
	}
	return &SenateMaintainer{
		g:      g,
		x:      x,
		rng:    rng,
		groups: make(map[string]*sample.Reservoir[engine.Row]),
		pops:   make(map[string]int64),
	}, nil
}

// target returns the per-group capacity X/m (at least 1).
func (m *SenateMaintainer) target() int {
	if len(m.groups) == 0 {
		return m.x
	}
	t := m.x / len(m.groups)
	if t < 1 {
		t = 1
	}
	return t
}

// Insert implements Maintainer.
func (m *SenateMaintainer) Insert(row engine.Row) {
	key := m.g.Key(row)
	m.pops[key]++
	m.seen++
	res, ok := m.groups[key]
	if !ok {
		res = sample.MustReservoir[engine.Row](m.target(), m.rng)
		m.groups[key] = res
		// A new group shrinks everyone's target; evict lazily now so
		// the total returns under budget.
		m.shrinkAll()
	}
	res.Offer(row)
	// The shared target may have shrunk since this reservoir last saw a
	// tuple; trim it opportunistically.
	if t := m.target(); res.Len() > t {
		mustShrink(res, t, m.rng)
	}
}

func (m *SenateMaintainer) shrinkAll() {
	t := m.target()
	for _, res := range m.groups {
		if res.Len() > t || res.Cap() > t {
			mustShrink(res, t, m.rng)
		}
	}
}

// mustShrink applies a reservoir shrink whose target the caller has
// already floored at 1 (SenateMaintainer.target documents that floor: a
// group never drops below one slot even when m > X). A capacity
// underflow here is therefore a maintainer bug, not a data condition.
func mustShrink(res *sample.Reservoir[engine.Row], t int, rng *rand.Rand) {
	if _, err := res.Shrink(t, rng); err != nil {
		panic(fmt.Sprintf("core: senate shrink to floored target %d: %v", t, err))
	}
}

// SampledCount implements Maintainer.
func (m *SenateMaintainer) SampledCount() int {
	n := 0
	for _, res := range m.groups {
		n += res.Len()
	}
	return n
}

// SeenCount implements Maintainer.
func (m *SenateMaintainer) SeenCount() int64 { return m.seen }

// Snapshot implements Maintainer.
func (m *SenateMaintainer) Snapshot() (*sample.Stratified[engine.Row], error) {
	st := sample.NewStratified[engine.Row]()
	for key, res := range m.groups {
		st.Put(&sample.Stratum[engine.Row]{
			Key:        key,
			Population: m.pops[key],
			Items:      append([]engine.Row(nil), res.Items()...),
		})
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}
