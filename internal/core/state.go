package core

import (
	"fmt"
	"math/rand"

	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// Maintainer state kinds, one per maintenance algorithm.
const (
	KindHouse         = "house"
	KindSenate        = "senate"
	KindBasicCongress = "basic-congress"
	KindCongress      = "congress"
	KindCongressDelta = "congress-delta"
)

// MaintainerState is the serializable state of any Maintainer, used by
// durable warehouse snapshots. One struct covers all five maintainer
// kinds; Kind selects which fields are meaningful. All containers are
// deep-copied on export so the state stays consistent while the live
// maintainer keeps mutating (rows themselves are immutable by
// convention and are shared).
//
// RNG state is intentionally not part of the state: a restored
// maintainer reseeds its randomness, which preserves every
// distributional invariant (each reachable state is
// distribution-equivalent under any RNG continuation) without
// persisting generator internals.
type MaintainerState struct {
	Kind  string
	Attrs []string // grouping attributes, in mask-bit order

	// Reservoir is the single stream-wide reservoir of House, Basic
	// Congress, and Congress-delta maintainers.
	Reservoir *sample.ReservoirState[engine.Row]
	// Groups holds Senate's per-group reservoirs.
	Groups map[string]*sample.ReservoirState[engine.Row]
	// Pops is the per-group population map (house, senate, basic).
	Pops map[string]int64
	// Seen is the number of tuples inserted so far.
	Seen int64
	// Budget is the maintainer's space parameter: X for House/Senate,
	// the pre-scaling Y for the Congress family.
	Budget int
	// X counts reservoir tuples per group (basic, congress-delta).
	X map[string]int
	// Delta holds the per-group spill-over samples (basic,
	// congress-delta).
	Delta map[string][]engine.Row
	// Cube is the group-count data cube (congress, congress-delta).
	Cube *datacube.CubeState
	// Items are the Eq. 8 sampled tuples with their stored selection
	// probabilities (congress).
	Items []CongItemState
	// RebalanceEvery is the congress lazy-decay period.
	RebalanceEvery int64
}

// CongItemState is one sampled tuple of a CongressMaintainer.
type CongItemState struct {
	Row engine.Row
	ID  datacube.GroupID
	P   float64
}

// StatefulMaintainer is a Maintainer whose complete state can be
// exported for durable snapshots. All maintainers in this package
// implement it.
type StatefulMaintainer interface {
	Maintainer
	ExportState() *MaintainerState
}

func copyPops(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyX(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyDelta(m map[string][]engine.Row) map[string][]engine.Row {
	out := make(map[string][]engine.Row, len(m))
	for k, v := range m {
		out[k] = append([]engine.Row(nil), v...)
	}
	return out
}

// ExportState implements StatefulMaintainer.
func (m *HouseMaintainer) ExportState() *MaintainerState {
	return &MaintainerState{
		Kind:      KindHouse,
		Attrs:     append([]string(nil), m.g.Attrs...),
		Reservoir: m.res.State(),
		Pops:      copyPops(m.pops),
		Seen:      m.seen,
		Budget:    m.res.Cap(),
	}
}

// ExportState implements StatefulMaintainer.
func (m *SenateMaintainer) ExportState() *MaintainerState {
	groups := make(map[string]*sample.ReservoirState[engine.Row], len(m.groups))
	for k, res := range m.groups {
		groups[k] = res.State()
	}
	return &MaintainerState{
		Kind:   KindSenate,
		Attrs:  append([]string(nil), m.g.Attrs...),
		Groups: groups,
		Pops:   copyPops(m.pops),
		Seen:   m.seen,
		Budget: m.x,
	}
}

// ExportState implements StatefulMaintainer.
func (m *BasicCongressMaintainer) ExportState() *MaintainerState {
	return &MaintainerState{
		Kind:      KindBasicCongress,
		Attrs:     append([]string(nil), m.g.Attrs...),
		Reservoir: m.res.State(),
		Pops:      copyPops(m.pops),
		Seen:      m.seen,
		Budget:    m.y,
		X:         copyX(m.x),
		Delta:     copyDelta(m.delta),
	}
}

// ExportState implements StatefulMaintainer.
func (m *CongressMaintainer) ExportState() *MaintainerState {
	items := make([]CongItemState, len(m.items))
	for i, it := range m.items {
		items[i] = CongItemState{
			Row: it.row,
			ID:  append(datacube.GroupID(nil), it.id...),
			P:   it.p,
		}
	}
	return &MaintainerState{
		Kind:           KindCongress,
		Attrs:          append([]string(nil), m.g.Attrs...),
		Seen:           m.seen,
		Budget:         int(m.y),
		Cube:           m.cube.State(),
		Items:          items,
		RebalanceEvery: m.rebalanceEvery,
	}
}

// ExportState implements StatefulMaintainer.
func (m *CongressDeltaMaintainer) ExportState() *MaintainerState {
	return &MaintainerState{
		Kind:      KindCongressDelta,
		Attrs:     append([]string(nil), m.g.Attrs...),
		Reservoir: m.res.State(),
		Seen:      m.seen,
		Budget:    m.y,
		X:         copyX(m.x),
		Delta:     copyDelta(m.delta),
		Cube:      m.cube.State(),
	}
}

// RestoreMaintainer rebuilds a maintainer from exported state, resolving
// the grouping attributes against the base relation's schema and drawing
// future randomness from rng. The restored maintainer is
// distribution-equivalent to the exported one (RNG state is reseeded;
// see MaintainerState).
func RestoreMaintainer(st *MaintainerState, schema *engine.Schema, rng *rand.Rand) (StatefulMaintainer, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil maintainer state")
	}
	g, err := NewGrouping(schema, st.Attrs)
	if err != nil {
		return nil, fmt.Errorf("core: restoring %s maintainer: %w", st.Kind, err)
	}
	switch st.Kind {
	case KindHouse:
		res, err := sample.RestoreReservoir(st.Reservoir, rng)
		if err != nil {
			return nil, fmt.Errorf("core: restoring house maintainer: %w", err)
		}
		return &HouseMaintainer{g: g, res: res, pops: copyPops(st.Pops), seen: st.Seen}, nil
	case KindSenate:
		m := &SenateMaintainer{
			g:      g,
			x:      st.Budget,
			rng:    rng,
			groups: make(map[string]*sample.Reservoir[engine.Row], len(st.Groups)),
			pops:   copyPops(st.Pops),
			seen:   st.Seen,
		}
		if m.x <= 0 {
			return nil, fmt.Errorf("core: restoring senate maintainer: budget %d", m.x)
		}
		for k, rs := range st.Groups {
			res, err := sample.RestoreReservoir(rs, rng)
			if err != nil {
				return nil, fmt.Errorf("core: restoring senate group %q: %w", k, err)
			}
			m.groups[k] = res
		}
		return m, nil
	case KindBasicCongress:
		res, err := sample.RestoreReservoir(st.Reservoir, rng)
		if err != nil {
			return nil, fmt.Errorf("core: restoring basic congress maintainer: %w", err)
		}
		return &BasicCongressMaintainer{
			g:     g,
			y:     st.Budget,
			rng:   rng,
			res:   res,
			x:     copyX(st.X),
			delta: copyDelta(st.Delta),
			pops:  copyPops(st.Pops),
			seen:  st.Seen,
		}, nil
	case KindCongress:
		cube, err := datacube.RestoreCube(st.Cube)
		if err != nil {
			return nil, fmt.Errorf("core: restoring congress maintainer: %w", err)
		}
		m := &CongressMaintainer{
			g:              g,
			y:              float64(st.Budget),
			rng:            rng,
			cube:           cube,
			seen:           st.Seen,
			rebalanceEvery: st.RebalanceEvery,
		}
		if m.y <= 0 {
			return nil, fmt.Errorf("core: restoring congress maintainer: budget %d", st.Budget)
		}
		m.items = make([]congItem, len(st.Items))
		for i, it := range st.Items {
			if it.P <= 0 || it.P > 1 {
				return nil, fmt.Errorf("core: restoring congress maintainer: item %d has probability %v outside (0,1]", i, it.P)
			}
			m.items[i] = congItem{row: it.Row, id: it.ID, p: it.P}
		}
		return m, nil
	case KindCongressDelta:
		res, err := sample.RestoreReservoir(st.Reservoir, rng)
		if err != nil {
			return nil, fmt.Errorf("core: restoring congress-delta maintainer: %w", err)
		}
		cube, err := datacube.RestoreCube(st.Cube)
		if err != nil {
			return nil, fmt.Errorf("core: restoring congress-delta maintainer: %w", err)
		}
		return &CongressDeltaMaintainer{
			g:     g,
			y:     st.Budget,
			rng:   rng,
			res:   res,
			cube:  cube,
			x:     copyX(st.X),
			delta: copyDelta(st.Delta),
			seen:  st.Seen,
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown maintainer kind %q", st.Kind)
	}
}
