package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// stratumFingerprint renders a stratified sample into a comparable form:
// per-stratum populations plus the exact multiset of sampled tuples.
func stratumFingerprint(t *testing.T, st interface {
	Each(func(*sampleStratum))
}) string {
	t.Helper()
	out := ""
	st.Each(func(s *sampleStratum) {
		out += fmt.Sprintf("%q pop=%d:", s.Key, s.Population)
		for _, row := range s.Items {
			out += fmt.Sprintf(" %d", row[2].I)
		}
		out += "\n"
	})
	return out
}

func TestBuildCubeParallelMatchesSequential(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{
		{"a1", "b1"}: 3000, {"a1", "b2"}: 700, {"a2", "b1"}: 90, {"a2", "b3"}: 11,
	})
	seq, err := BuildCube(rel, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		par, err := BuildCubeParallel(rel, g, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Total() != seq.Total() {
			t.Fatalf("workers=%d: total %d vs %d", workers, par.Total(), seq.Total())
		}
		for mask := uint32(0); int(mask) < seq.NumGroupings(); mask++ {
			seq.GroupsUnder(mask, func(key string, n int64) {
				if got := par.Count(mask, key); got != n {
					t.Errorf("workers=%d mask=%b group %q: count %d vs %d", workers, mask, key, got, n)
				}
			})
			if par.NumGroups(mask) != seq.NumGroups(mask) {
				t.Errorf("workers=%d mask=%b: %d groups vs %d", workers, mask, par.NumGroups(mask), seq.NumGroups(mask))
			}
		}
	}
}

func TestCubeMergeRejectsMismatchedAttrs(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{{"a1", "b1"}: 5})
	cube, err := BuildCube(rel, g)
	if err != nil {
		t.Fatal(err)
	}
	g1 := MustGrouping(rel.Schema, []string{"a"})
	other, err := BuildCube(rel, g1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Merge(other); err == nil {
		t.Error("merge of mismatched cubes accepted")
	}
}

// TestMaterializeParallelDeterministic is the reproducibility guarantee:
// a fixed (seed, workers) pair must produce the identical sample.
func TestMaterializeParallelDeterministic(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{
		{"a1", "b1"}: 5000, {"a1", "b2"}: 1200, {"a2", "b1"}: 300, {"a2", "b2"}: 40, {"a3", "b3"}: 7,
	})
	cube, err := BuildCube(rel, g)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Allocate(Congress, cube, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		first, err := MaterializeParallel(rel, g, cube, alloc, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		second, err := MaterializeParallel(rel, g, cube, alloc, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := stratumFingerprint(t, first), stratumFingerprint(t, second); a != b {
			t.Errorf("workers=%d: two runs with the same seed diverge:\n%s\nvs\n%s", workers, a, b)
		}
	}
}

// TestMaterializeParallelSerialEquivalence: with workers <= 1 the
// parallel entry point must reproduce the sequential Materialize bit for
// bit (same reservoir walk from the same seeded RNG).
func TestMaterializeParallelSerialEquivalence(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{
		{"a1", "b1"}: 900, {"a2", "b2"}: 90, {"a3", "b3"}: 9,
	})
	cube, err := BuildCube(rel, g)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Allocate(Congress, cube, 120)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Materialize(rel, g, cube, alloc, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	par, err := MaterializeParallel(rel, g, cube, alloc, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := stratumFingerprint(t, serial), stratumFingerprint(t, par); a != b {
		t.Errorf("workers=1 diverges from sequential Materialize:\n%s\nvs\n%s", a, b)
	}
}

// TestMaterializeParallelSizesAndMembership: every stratum must hit the
// integer target exactly (min(target, population)), contain only tuples
// of its own group, and never contain a duplicate base tuple.
func TestMaterializeParallelSizesAndMembership(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{
		{"a1", "b1"}: 4000, {"a1", "b2"}: 800, {"a2", "b1"}: 150, {"a2", "b2"}: 12, {"a3", "b1"}: 3,
	})
	cube, err := BuildCube(rel, g)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Allocate(Congress, cube, 500)
	if err != nil {
		t.Fatal(err)
	}
	populations := make(map[string]int64)
	cube.FinestGroups(func(key string, n int64) { populations[key] = n })
	targets := alloc.IntegerTargets(populations)

	for _, workers := range []int{2, 5, 8} {
		st, err := MaterializeParallel(rel, g, cube, alloc, 9, workers)
		if err != nil {
			t.Fatal(err)
		}
		st.Each(func(s *sampleStratum) {
			want := targets[s.Key]
			if int64(want) > s.Population {
				want = int(s.Population)
			}
			if len(s.Items) != want {
				t.Errorf("workers=%d stratum %q: %d items, want %d", workers, s.Key, len(s.Items), want)
			}
			seen := make(map[int64]bool, len(s.Items))
			for _, row := range s.Items {
				if g.Key(row) != s.Key {
					t.Errorf("workers=%d stratum %q holds foreign tuple of group %q", workers, s.Key, g.Key(row))
				}
				if seen[row[2].I] {
					t.Errorf("workers=%d stratum %q holds duplicate tuple %d", workers, s.Key, row[2].I)
				}
				seen[row[2].I] = true
			}
		})
	}
}

// TestMaterializeParallelUniformWithinGroup repeats the S1 uniformity
// check for the merged parallel sample: across many draws, every tuple
// of a group must be included approximately equally often, i.e. the
// weighted reservoir union does not bias toward any shard.
func TestMaterializeParallelUniformWithinGroup(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{{"a1", "b1"}: 40})
	cube, err := BuildCube(rel, g)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Allocate(Senate, cube, 10)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int64]int)
	const trials = 4000
	for i := 0; i < trials; i++ {
		st, err := MaterializeParallel(rel, g, cube, alloc, int64(i+1), 4)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := st.Get(rowKey("a1", "b1"))
		if len(s.Items) != 10 {
			t.Fatalf("trial %d: %d items, want 10", i, len(s.Items))
		}
		for _, row := range s.Items {
			counts[row[2].I]++
		}
	}
	want := float64(trials) * 10 / 40
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("tuple %d included %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestBuildParallel(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{
		{"a1", "b1"}: 1000, {"a2", "b2"}: 100, {"a3", "b3"}: 10,
	})
	st, alloc, err := BuildParallel(rel, g, Congress, 200, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 || alloc == nil {
		t.Fatalf("empty parallel build: size=%d", st.Size())
	}
	if st.Population() != 1110 {
		t.Fatalf("population %d", st.Population())
	}
}
