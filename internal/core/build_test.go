package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// sampleStratum abbreviates the instantiated stratum type in tests.
type sampleStratum = sample.Stratum[engine.Row]

// rowKey computes the finest-group key a Grouping over string columns
// would produce for the given attribute values.
func rowKey(parts ...string) string {
	id := make(datacube.GroupID, len(parts))
	for i, p := range parts {
		id[i] = engine.NewString(p).GroupKey()
	}
	return id.Key()
}

// buildRelation creates a two-grouping-column relation with the given
// per-group sizes; values column v carries the tuple ordinal.
func buildRelation(t testing.TB, groups map[[2]string]int) (*engine.Relation, *Grouping) {
	t.Helper()
	rel := engine.NewRelation("r", engine.MustSchema(
		engine.Column{Name: "a", Kind: engine.KindString},
		engine.Column{Name: "b", Kind: engine.KindString},
		engine.Column{Name: "v", Kind: engine.KindInt},
	))
	i := int64(0)
	for g, n := range groups {
		for j := 0; j < n; j++ {
			if err := rel.Insert(engine.Row{engine.NewString(g[0]), engine.NewString(g[1]), engine.NewInt(i)}); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	return rel, MustGrouping(rel.Schema, []string{"a", "b"})
}

func TestNewGroupingValidation(t *testing.T) {
	schema := engine.MustSchema(engine.Column{Name: "x", Kind: engine.KindInt})
	if _, err := NewGrouping(schema, nil); err == nil {
		t.Error("empty grouping accepted")
	}
	if _, err := NewGrouping(schema, []string{"nope"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGrouping did not panic")
		}
	}()
	MustGrouping(schema, []string{"nope"})
}

func TestGroupingKeyAndID(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{{"x", "y"}: 1})
	row := rel.Rows()[0]
	id := g.ID(row)
	if len(id) != 2 {
		t.Fatalf("id len %d", len(id))
	}
	if g.Key(row) != id.Key() {
		t.Error("Key and ID.Key disagree")
	}
	// Single-column fast path.
	g1 := MustGrouping(rel.Schema, []string{"a"})
	if g1.Key(row) != g1.ID(row).Key() {
		t.Error("single-column Key fast path diverges")
	}
}

func TestBuildCubeCounts(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{
		{"a1", "b1"}: 30, {"a1", "b2"}: 20, {"a2", "b1"}: 50,
	})
	cube, err := BuildCube(rel, g)
	if err != nil {
		t.Fatal(err)
	}
	if cube.Total() != 100 {
		t.Fatalf("total %d", cube.Total())
	}
	if cube.NumGroups(cube.FinestMask()) != 3 {
		t.Fatalf("finest groups %d", cube.NumGroups(cube.FinestMask()))
	}
	// Grouping on a (bit 0): a1=50, a2=50.
	if cube.NumGroups(0b01) != 2 {
		t.Fatalf("groups under a: %d", cube.NumGroups(0b01))
	}
}

func TestBuildSenateEqualSizes(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{
		{"a1", "b1"}: 1000, {"a1", "b2"}: 500, {"a2", "b1"}: 100, {"a2", "b2"}: 60,
	})
	rng := rand.New(rand.NewSource(1))
	st, alloc, err := Build(rel, g, Senate, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.ScaleDown != 1 {
		t.Errorf("senate scale-down %v", alloc.ScaleDown)
	}
	if st.Size() != 80 {
		t.Fatalf("sample size %d, want 80", st.Size())
	}
	st.Each(func(s *sampleStratum) {
		if len(s.Items) != 20 {
			t.Errorf("stratum %q size %d, want 20", s.Key, len(s.Items))
		}
	})
}

func TestBuildHouseProportional(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{
		{"a1", "b1"}: 900, {"a2", "b2"}: 100,
	})
	rng := rand.New(rand.NewSource(2))
	st, _, err := Build(rel, g, House, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	big, _ := st.Get(rowKey("a1", "b1"))
	small, _ := st.Get(rowKey("a2", "b2"))
	if len(big.Items) != 90 || len(small.Items) != 10 {
		t.Errorf("house sizes %d/%d, want 90/10", len(big.Items), len(small.Items))
	}
}

func TestBuildCongressSmallGroupGuarantee(t *testing.T) {
	// With a very skewed relation, Congress must still give the small
	// groups materially more than House does.
	groups := map[[2]string]int{}
	for i := 0; i < 8; i++ {
		groups[[2]string{"a0", "b" + strconv.Itoa(i)}] = 10000
	}
	groups[[2]string{"a1", "btiny"}] = 50
	rel, g := buildRelation(t, groups)
	rng := rand.New(rand.NewSource(3))

	houseSt, _, err := Build(rel, g, House, 800, rng)
	if err != nil {
		t.Fatal(err)
	}
	congSt, _, err := Build(rel, g, Congress, 800, rng)
	if err != nil {
		t.Fatal(err)
	}
	hTiny, _ := houseSt.Get(rowKey("a1", "btiny"))
	cTiny, _ := congSt.Get(rowKey("a1", "btiny"))
	if len(cTiny.Items) < 5*max(1, len(hTiny.Items)) {
		t.Errorf("congress gave tiny group %d tuples vs house %d; expected a big boost",
			len(cTiny.Items), len(hTiny.Items))
	}
}

func TestBuildSampleTuplesComeFromOwnGroup(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{
		{"a1", "b1"}: 200, {"a2", "b2"}: 200,
	})
	rng := rand.New(rand.NewSource(4))
	st, _, err := Build(rel, g, Congress, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	st.Each(func(s *sampleStratum) {
		for _, row := range s.Items {
			if g.Key(row) != s.Key {
				t.Fatalf("stratum %q contains foreign tuple of group %q", s.Key, g.Key(row))
			}
		}
	})
}

// TestMaterializeUniformWithinGroup draws many samples and checks each
// tuple of a group is included approximately equally often (the S1
// requirement of uniform sampling within each group).
func TestMaterializeUniformWithinGroup(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{{"a1", "b1"}: 40})
	rng := rand.New(rand.NewSource(5))
	counts := make(map[int64]int)
	const trials = 4000
	for i := 0; i < trials; i++ {
		st, _, err := Build(rel, g, Senate, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := st.Get(rowKey("a1", "b1"))
		for _, row := range s.Items {
			counts[row[2].I]++
		}
	}
	want := float64(trials) * 10 / 40
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("tuple %d included %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	rel := engine.NewRelation("empty", engine.MustSchema(
		engine.Column{Name: "a", Kind: engine.KindString},
	))
	g := MustGrouping(rel.Schema, []string{"a"})
	rng := rand.New(rand.NewSource(6))
	if _, _, err := Build(rel, g, Congress, 10, rng); err == nil {
		t.Error("building over empty relation succeeded")
	}
}
