package core

import (
	"math"
	"testing"

	"github.com/approxdb/congress/internal/datacube"
)

func TestAllocateForGroupingsReproducesBuiltins(t *testing.T) {
	cube := figure5Cube(t)
	finest := cube.FinestMask()

	// All masks == Congress.
	all := make([]uint32, cube.NumGroupings())
	for i := range all {
		all[i] = uint32(i)
	}
	targeted, err := AllocateForGroupings(cube, 100, all)
	if err != nil {
		t.Fatal(err)
	}
	congress, _ := Allocate(Congress, cube, 100)
	for k, v := range congress.Targets {
		if math.Abs(targeted.Targets[k]-v) > 1e-9 {
			t.Errorf("all-masks %q = %v, congress %v", k, targeted.Targets[k], v)
		}
	}

	// {empty, finest} == Basic Congress.
	targeted, err = AllocateForGroupings(cube, 100, []uint32{0, finest})
	if err != nil {
		t.Fatal(err)
	}
	basic, _ := Allocate(BasicCongress, cube, 100)
	for k, v := range basic.Targets {
		if math.Abs(targeted.Targets[k]-v) > 1e-9 {
			t.Errorf("basic-masks %q = %v, basic %v", k, targeted.Targets[k], v)
		}
	}

	// {empty} == House; {finest} == Senate.
	targeted, _ = AllocateForGroupings(cube, 100, []uint32{0})
	house, _ := Allocate(House, cube, 100)
	for k, v := range house.Targets {
		if math.Abs(targeted.Targets[k]-v) > 1e-9 {
			t.Errorf("house-mask %q = %v, house %v", k, targeted.Targets[k], v)
		}
	}
	targeted, _ = AllocateForGroupings(cube, 100, []uint32{finest})
	senate, _ := Allocate(Senate, cube, 100)
	for k, v := range senate.Targets {
		if math.Abs(targeted.Targets[k]-v) > 1e-9 {
			t.Errorf("senate-mask %q = %v, senate %v", k, targeted.Targets[k], v)
		}
	}
}

func TestAllocateForGroupingsSingleGroupingIsS1(t *testing.T) {
	// Targeting only grouping {A} gives exactly the s_{g,A} column of
	// Figure 5: 20, 20, 10, 50.
	cube := figure5Cube(t)
	a, err := AllocateForGroupings(cube, 100, []uint32{0b01})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		key("a1", "b1"): 20, key("a1", "b2"): 20,
		key("a1", "b3"): 10, key("a2", "b3"): 50,
	}
	for k, w := range want {
		if math.Abs(a.Targets[k]-w) > 1e-9 {
			t.Errorf("target %q = %v, want %v", k, a.Targets[k], w)
		}
	}
	if a.ScaleDown != 1 {
		t.Errorf("single grouping should need no scale-down: %v", a.ScaleDown)
	}
}

func TestAllocateForGroupingsValidation(t *testing.T) {
	cube := figure5Cube(t)
	if _, err := AllocateForGroupings(cube, 0, []uint32{0}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := AllocateForGroupings(cube, 10, nil); err == nil {
		t.Error("empty mask list accepted")
	}
	if _, err := AllocateForGroupings(cube, 10, []uint32{99}); err == nil {
		t.Error("out-of-range mask accepted")
	}
	empty := datacube.MustNew([]string{"A"})
	if _, err := AllocateForGroupings(empty, 10, []uint32{0}); err == nil {
		t.Error("empty cube accepted")
	}
}

func TestMaskFor(t *testing.T) {
	cube := datacube.MustNew([]string{"x", "y", "z"})
	m, err := MaskFor(cube, []string{"x", "z"})
	if err != nil || m != 0b101 {
		t.Errorf("mask %b err %v", m, err)
	}
	m, err = MaskFor(cube, nil)
	if err != nil || m != 0 {
		t.Errorf("empty mask %b err %v", m, err)
	}
	if _, err := MaskFor(cube, []string{"ghost"}); err == nil {
		t.Error("unknown attribute accepted")
	}
}
