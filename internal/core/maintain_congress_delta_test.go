package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

func TestCongressDeltaMaintainerBasics(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(21))
	m, err := NewCongressDeltaMaintainer(g, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5000; i++ {
		m.Insert(streamRow("a"+strconv.FormatInt(i%4, 10), "b"+strconv.FormatInt(i%2, 10), i))
	}
	if m.SeenCount() != 5000 {
		t.Fatalf("seen %d", m.SeenCount())
	}
	st, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Population() != 5000 {
		t.Fatalf("population %d", st.Population())
	}
	// i%2 is determined by i%4, so the stream yields 4 distinct
	// (a, b) combinations.
	if st.NumStrata() != 4 {
		t.Fatalf("strata %d", st.NumStrata())
	}
	if m.Cube().Total() != 5000 {
		t.Fatalf("cube total %d", m.Cube().Total())
	}
}

func TestCongressDeltaMaintainerValidation(t *testing.T) {
	g := streamGrouping(t)
	if _, err := NewCongressDeltaMaintainer(g, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero Y accepted")
	}
}

func TestCongressDeltaSmallGroupBoost(t *testing.T) {
	// A tiny group must be held close to its Congress target, far above
	// its House share.
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(22))
	m, _ := NewCongressDeltaMaintainer(g, 120, rng)
	for i := int64(0); i < 20000; i++ {
		m.Insert(streamRow("big", "x", i))
	}
	for i := int64(0); i < 60; i++ {
		m.Insert(streamRow("small", "x", i))
	}
	st, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	small, ok := st.Get(rowKey("small", "x"))
	if !ok {
		t.Fatal("small group missing")
	}
	// Congress target for the small group: max over T. With 2 groups,
	// Senate-side requirement is Y/2 = 60 = the whole group.
	if len(small.Items) < 50 {
		t.Errorf("small group holds %d, want near its full 60", len(small.Items))
	}
}

// TestCongressDeltaMatchesEq8Expectation compares the two Congress
// maintenance algorithms of Section 6: over many runs of the same
// stream, their mean per-stratum sizes must both converge to the
// pre-scaling Congress targets.
func TestCongressDeltaMatchesEq8Expectation(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(23))
	groups := []struct {
		a, b string
		n    int
	}{
		{"a1", "b1", 3000}, {"a1", "b2", 3000}, {"a1", "b3", 1500}, {"a2", "b3", 2500},
	}
	const (
		Y      = 100
		trials = 40
	)
	sizes := map[string]float64{}
	for trial := 0; trial < trials; trial++ {
		m, err := NewCongressDeltaMaintainer(g, Y, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Interleave bursts round-robin, as in the Eq. 8 test.
		remaining := map[int]int{}
		for i, gr := range groups {
			remaining[i] = gr.n
		}
		v := int64(0)
		for done := false; !done; {
			done = true
			for i, gr := range groups {
				if remaining[i] == 0 {
					continue
				}
				burst := 25
				if remaining[i] < burst {
					burst = remaining[i]
				}
				for j := 0; j < burst; j++ {
					m.Insert(streamRow(gr.a, gr.b, v))
					v++
				}
				remaining[i] -= burst
				done = false
			}
		}
		st, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		st.Each(func(s *sampleStratum) {
			sizes[s.Key] += float64(len(s.Items))
		})
	}
	want := map[string]float64{
		rowKey("a1", "b1"): 100.0 / 3,
		rowKey("a1", "b2"): 100.0 / 3,
		rowKey("a1", "b3"): 25,
		rowKey("a2", "b3"): 50,
	}
	for k, w := range want {
		got := sizes[k] / trials
		if math.Abs(got-w) > 0.2*w+4 {
			t.Errorf("stratum %q mean size %.2f, want ~%.2f", k, got, w)
		}
	}
}

func TestCongressDeltaImplementsMaintainer(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(24))
	var m Maintainer
	cm, err := NewCongressDeltaMaintainer(g, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	m = cm
	for i := int64(0); i < 500; i++ {
		m.Insert(streamRow("g"+strconv.FormatInt(i%3, 10), "h", i))
	}
	st, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}
