package core

import (
	"math/rand"
	"sort"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// UnionStratified merges per-shard stratified samples of one logical
// table into a single stratified view, the whole-synopsis read path of a
// sharded warehouse. Populations add. For each group the merged items
// are drawn with the same weighted reservoir-union the parallel builder
// uses (MaterializeParallel): per-shard draw counts follow sequential
// proportional-to-remaining selection over the shards' group
// populations — the multivariate hypergeometric law — and each shard
// contributes that many distinct tuples chosen uniformly from its
// sample.
//
// perGroupCap bounds the merged items per group (0 = no bound, plain
// concatenation). Under hash routing every group lives on one shard and
// the union below the cap is exact concatenation; when a group does
// span shards and the cap forces a subsample, a shard whose sample is
// exhausted before its population-weighted demand is met is dropped
// from the remaining draw (its tuples are all taken), which slightly
// favors shards with higher sampling rates — acceptable for the
// diagnostic read this serves, and impossible when rates are equal.
//
// Deterministic for a fixed (inputs, seed): groups merge in sorted key
// order and shards contribute in slice order.
func UnionStratified(parts []*sample.Stratified[engine.Row], perGroupCap int, seed int64) (*sample.Stratified[engine.Row], error) {
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(workerSeed(seed, -3)))

	keySet := make(map[string]bool)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, k := range p.Keys() {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := sample.NewStratified[engine.Row]()
	for _, key := range keys {
		var (
			items      [][]engine.Row
			pops       []int64
			population int64
			avail      int
		)
		for _, p := range parts {
			if p == nil {
				continue
			}
			s, ok := p.Get(key)
			if !ok {
				continue
			}
			population += s.Population
			if len(s.Items) == 0 {
				continue
			}
			items = append(items, s.Items)
			pops = append(pops, s.Population)
			avail += len(s.Items)
		}
		merged := &sample.Stratum[engine.Row]{Key: key, Population: population}
		switch {
		case avail == 0:
			// nothing sampled anywhere; keep the population-only stratum
		case perGroupCap <= 0 || avail <= perGroupCap:
			flat := make([]engine.Row, 0, avail)
			for _, it := range items {
				flat = append(flat, it...)
			}
			merged.Items = flat
		default:
			merged.Items = drawUnion(items, pops, perGroupCap, rng)
		}
		out.Put(merged)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// drawUnion draws target tuples across the per-shard samples with
// per-shard counts proportional-to-remaining over the shard group
// populations, clamped to each shard's sample availability.
func drawUnion(items [][]engine.Row, pops []int64, target int, rng *rand.Rand) []engine.Row {
	remaining := append([]int64(nil), pops...)
	counts := make([]int, len(items))
	var left int64
	for i := range remaining {
		if remaining[i] < 1 {
			remaining[i] = 1 // a sampled shard stratum has population >= 1
		}
		left += remaining[i]
	}
	for d := 0; d < target && left > 0; d++ {
		pick := rng.Int63n(left)
		for i := range remaining {
			if pick < remaining[i] {
				counts[i]++
				remaining[i]--
				left--
				if counts[i] == len(items[i]) {
					// Shard sample exhausted: take it wholly out of the
					// remaining pool.
					left -= remaining[i]
					remaining[i] = 0
				}
				break
			}
			pick -= remaining[i]
		}
	}
	out := make([]engine.Row, 0, target)
	for i, it := range items {
		if counts[i] == 0 {
			continue
		}
		for _, idx := range sample.SampleWithoutReplacement(len(it), counts[i], rng) {
			out = append(out, it[idx])
		}
	}
	return out
}
