package core

import (
	"math/rand"

	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// CongressDeltaMaintainer is the paper's primary Congress maintenance
// algorithm: "a natural generalization to multiple groupings of the
// above algorithm for maintaining Basic Congress" (Section 6). Like
// BasicCongressMaintainer it keeps one reservoir of size Y over the
// whole relation plus per-finest-group delta samples; the difference is
// each group's requirement, which is the full Congress pre-scaling
// target
//
//	target(g) = max over T ⊆ G of (Y/m_T) · n_g/n_{g,T}
//
// instead of Basic Congress's max(house, Y/m). The incrementally
// maintained data cube supplies m_T and n_{g,T}; the per-insert
// bookkeeping is O(2^|G|), the cost the paper concedes for Congress
// maintenance.
type CongressDeltaMaintainer struct {
	g   *Grouping
	y   int
	rng *rand.Rand

	res   *sample.Reservoir[engine.Row]
	cube  *datacube.Cube
	x     map[string]int          // reservoir tuples per finest group
	delta map[string][]engine.Row // spill-over uniform samples
	seen  int64
}

// NewCongressDeltaMaintainer creates a maintainer with pre-scaling space
// parameter y.
func NewCongressDeltaMaintainer(g *Grouping, y int, rng *rand.Rand) (*CongressDeltaMaintainer, error) {
	res, err := sample.NewReservoir[engine.Row](y, rng)
	if err != nil {
		return nil, err
	}
	cube, err := datacube.New(g.Attrs)
	if err != nil {
		return nil, err
	}
	return &CongressDeltaMaintainer{
		g:     g,
		y:     y,
		rng:   rng,
		res:   res,
		cube:  cube,
		x:     make(map[string]int),
		delta: make(map[string][]engine.Row),
	}, nil
}

// target computes the Congress pre-scaling requirement for the finest
// group identified by id.
func (m *CongressDeltaMaintainer) target(id datacube.GroupID) float64 {
	Y := float64(m.y)
	ng := float64(m.cube.CountFor(m.cube.FinestMask(), id))
	best := 0.0
	for mask := uint32(0); int(mask) < m.cube.NumGroupings(); mask++ {
		mT := float64(m.cube.NumGroups(mask))
		nh := float64(m.cube.CountFor(mask, id))
		if mT == 0 || nh == 0 {
			continue
		}
		if s := Y / mT * ng / nh; s > best {
			best = s
		}
	}
	return best
}

// Insert implements Maintainer, mirroring the Basic Congress cases with
// per-group Congress targets.
func (m *CongressDeltaMaintainer) Insert(row engine.Row) {
	id := m.g.ID(row)
	if err := m.cube.Add(id); err != nil {
		panic(err) // arity fixed by the grouping
	}
	key := id.Key()
	m.seen++
	target := m.target(id)

	evicted, hadEviction, accepted := m.res.Offer(row)
	switch {
	case !accepted:
		// Small-group direct add: while the group holds fewer tuples
		// than its target, every one of them stays reachable.
		if float64(m.cube.CountFor(m.cube.FinestMask(), id)) <= target {
			m.delta[key] = append(m.delta[key], row)
		}
	case !hadEviction:
		m.x[key]++
	default:
		evKey := m.g.Key(evicted)
		if evKey == key {
			break
		}
		m.x[key]++
		if len(m.delta[key]) > 0 {
			m.evictDelta(key)
		}
		m.x[evKey]--
		evID, ok := m.cube.ID(evKey)
		if ok && float64(m.x[evKey]) < m.target(evID) {
			m.delta[evKey] = append(m.delta[evKey], evicted)
		}
	}
	m.trimDelta(key, target)
}

func (m *CongressDeltaMaintainer) evictDelta(key string) {
	d := m.delta[key]
	i := m.rng.Intn(len(d))
	last := len(d) - 1
	d[i] = d[last]
	m.delta[key] = d[:last]
	if len(m.delta[key]) == 0 {
		delete(m.delta, key)
	}
}

func (m *CongressDeltaMaintainer) trimDelta(key string, target float64) {
	limit := int(target+0.9999) - m.x[key]
	if limit < 0 {
		limit = 0
	}
	for len(m.delta[key]) > limit {
		m.evictDelta(key)
	}
}

// Compact trims every delta sample to its current target.
func (m *CongressDeltaMaintainer) Compact() {
	for key := range m.delta {
		if id, ok := m.cube.ID(key); ok {
			m.trimDelta(key, m.target(id))
		}
	}
}

// SampledCount implements Maintainer.
func (m *CongressDeltaMaintainer) SampledCount() int {
	n := m.res.Len()
	for _, d := range m.delta {
		n += len(d)
	}
	return n
}

// SeenCount implements Maintainer.
func (m *CongressDeltaMaintainer) SeenCount() int64 { return m.seen }

// Cube exposes the incrementally maintained group-count cube.
func (m *CongressDeltaMaintainer) Cube() *datacube.Cube { return m.cube }

// Snapshot implements Maintainer.
func (m *CongressDeltaMaintainer) Snapshot() (*sample.Stratified[engine.Row], error) {
	m.Compact()
	st := sample.NewStratified[engine.Row]()
	m.cube.FinestGroups(func(key string, pop int64) {
		st.Put(&sample.Stratum[engine.Row]{Key: key, Population: pop})
	})
	for _, row := range m.res.Items() {
		if s, ok := st.Get(m.g.Key(row)); ok {
			s.Items = append(s.Items, row)
		}
	}
	for key, d := range m.delta {
		if s, ok := st.Get(key); ok {
			s.Items = append(s.Items, d...)
		}
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}
