package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// Grouping binds a relation schema to its grouping attributes G,
// providing GroupID extraction for rows.
type Grouping struct {
	Attrs []string // grouping attribute names, in mask-bit order
	cols  []int    // column ordinals in the schema
}

// NewGrouping resolves the grouping attribute names against the schema.
func NewGrouping(schema *engine.Schema, attrs []string) (*Grouping, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("core: grouping needs at least one attribute")
	}
	g := &Grouping{Attrs: append([]string(nil), attrs...), cols: make([]int, len(attrs))}
	for i, a := range attrs {
		idx := schema.Index(a)
		if idx < 0 {
			return nil, fmt.Errorf("core: grouping attribute %q not in schema of columns %v", a, schema.Names())
		}
		g.cols[i] = idx
	}
	return g, nil
}

// MustGrouping is NewGrouping but panics on error.
func MustGrouping(schema *engine.Schema, attrs []string) *Grouping {
	g, err := NewGrouping(schema, attrs)
	if err != nil {
		panic(err)
	}
	return g
}

// Columns returns the schema ordinals of the grouping attributes, in
// attribute (mask-bit) order.
func (g *Grouping) Columns() []int {
	return append([]int(nil), g.cols...)
}

// ID extracts the finest GroupID of a row.
func (g *Grouping) ID(row engine.Row) datacube.GroupID {
	id := make(datacube.GroupID, len(g.cols))
	for i, c := range g.cols {
		id[i] = row[c].GroupKey()
	}
	return id
}

// Key extracts the finest composite group key of a row without
// allocating the intermediate GroupID.
func (g *Grouping) Key(row engine.Row) string {
	if len(g.cols) == 1 {
		return row[g.cols[0]].GroupKey()
	}
	return g.ID(row).Key()
}

// BuildCube scans the relation once and returns the full data cube of
// group counts (the precomputation assumed by the "constructing using a
// data cube" paragraph of Section 6).
func BuildCube(rel *engine.Relation, g *Grouping) (*datacube.Cube, error) {
	cube, err := datacube.New(g.Attrs)
	if err != nil {
		return nil, err
	}
	for _, row := range rel.Rows() {
		if err := cube.Add(g.ID(row)); err != nil {
			return nil, err
		}
	}
	return cube, nil
}

// Build constructs a stratified biased sample of the relation under the
// given strategy and budget: one pass to build the cube, one pass of
// independent per-group reservoir sampling at the allocated sizes. The
// returned Stratified holds each finest group's sampled tuples and
// population, from which scale factors follow.
func Build(rel *engine.Relation, g *Grouping, strategy Strategy, x int, rng *rand.Rand) (*sample.Stratified[engine.Row], *Allocation, error) {
	cube, err := BuildCube(rel, g)
	if err != nil {
		return nil, nil, err
	}
	return BuildWithCube(rel, g, cube, strategy, x, rng)
}

// BuildWithCube is Build for callers that already maintain the cube.
func BuildWithCube(rel *engine.Relation, g *Grouping, cube *datacube.Cube, strategy Strategy, x int, rng *rand.Rand) (*sample.Stratified[engine.Row], *Allocation, error) {
	return BuildWithVectors(rel, g, cube, strategy, x, rng)
}

// BuildWithVectors is BuildWithCube with additional Section 8 weight
// vectors folded into the allocation (e.g. a NeymanVector for
// variance-aware sampling).
func BuildWithVectors(rel *engine.Relation, g *Grouping, cube *datacube.Cube, strategy Strategy, x int, rng *rand.Rand, extra ...WeightVector) (*sample.Stratified[engine.Row], *Allocation, error) {
	alloc, err := AllocateWithVectors(strategy, cube, x, extra...)
	if err != nil {
		return nil, nil, err
	}
	st, err := Materialize(rel, g, cube, alloc, rng)
	if err != nil {
		return nil, nil, err
	}
	return st, alloc, nil
}

// GroupStdDevs scans the relation once and returns each finest group's
// sample standard deviation of the named numeric column — the input to
// the Section 8 variance criterion (NeymanVector). Non-numeric and NULL
// values are skipped; single-tuple groups report zero.
func GroupStdDevs(rel *engine.Relation, g *Grouping, column string) (map[string]float64, error) {
	ci := rel.Schema.Index(column)
	if ci < 0 {
		return nil, fmt.Errorf("core: unknown column %q", column)
	}
	type acc struct {
		n        int64
		mean, m2 float64
	}
	accs := make(map[string]*acc)
	for _, row := range rel.Rows() {
		v, ok := row[ci].AsFloat()
		if !ok {
			continue
		}
		key := g.Key(row)
		a := accs[key]
		if a == nil {
			a = &acc{}
			accs[key] = a
		}
		a.n++
		d := v - a.mean
		a.mean += d / float64(a.n)
		a.m2 += d * (v - a.mean)
	}
	out := make(map[string]float64, len(accs))
	for key, a := range accs {
		if a.n < 2 {
			out[key] = 0
			continue
		}
		out[key] = math.Sqrt(a.m2 / float64(a.n-1))
	}
	return out, nil
}

// Materialize draws the sample prescribed by an allocation: a uniform
// random sample of the allocated size within each finest group, taken in
// a single pass with one reservoir per group.
func Materialize(rel *engine.Relation, g *Grouping, cube *datacube.Cube, alloc *Allocation, rng *rand.Rand) (*sample.Stratified[engine.Row], error) {
	populations := make(map[string]int64)
	cube.FinestGroups(func(key string, n int64) { populations[key] = n })
	targets := alloc.IntegerTargets(populations)

	reservoirs := make(map[string]*sample.Reservoir[engine.Row], len(targets))
	for key, size := range targets {
		if size <= 0 {
			continue
		}
		r, err := sample.NewReservoir[engine.Row](size, rng)
		if err != nil {
			return nil, err
		}
		reservoirs[key] = r
	}

	for _, row := range rel.Rows() {
		key := g.Key(row)
		if r, ok := reservoirs[key]; ok {
			r.Offer(row)
		}
	}

	st := sample.NewStratified[engine.Row]()
	for key, pop := range populations {
		stratum := &sample.Stratum[engine.Row]{Key: key, Population: pop}
		if r, ok := reservoirs[key]; ok {
			stratum.Items = append([]engine.Row(nil), r.Items()...)
		}
		st.Put(stratum)
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}
