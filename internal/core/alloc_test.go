package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/approxdb/congress/internal/datacube"
)

// figure5Cube reproduces the paper's Figure 5 example: grouping
// attributes A, B with groups (a1,b1)=3000, (a1,b2)=3000, (a1,b3)=1500,
// (a2,b3)=2500.
func figure5Cube(t testing.TB) *datacube.Cube {
	t.Helper()
	cube := datacube.MustNew([]string{"A", "B"})
	add := func(a, b string, n int) {
		id := datacube.GroupID{a, b}
		for i := 0; i < n; i++ {
			if err := cube.Add(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("a1", "b1", 3000)
	add("a1", "b2", 3000)
	add("a1", "b3", 1500)
	add("a2", "b3", 2500)
	return cube
}

func key(parts ...string) string {
	return datacube.GroupID(parts).Key()
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.3f (±%.3f)", name, got, want, tol)
	}
}

func TestFigure5House(t *testing.T) {
	cube := figure5Cube(t)
	a, err := Allocate(House, cube, 100)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "house (a1,b1)", a.Targets[key("a1", "b1")], 30, 1e-9)
	approx(t, "house (a1,b2)", a.Targets[key("a1", "b2")], 30, 1e-9)
	approx(t, "house (a1,b3)", a.Targets[key("a1", "b3")], 15, 1e-9)
	approx(t, "house (a2,b3)", a.Targets[key("a2", "b3")], 25, 1e-9)
	approx(t, "house scale-down", a.ScaleDown, 1, 1e-9)
}

func TestFigure5Senate(t *testing.T) {
	cube := figure5Cube(t)
	a, err := Allocate(Senate, cube, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range [][2]string{{"a1", "b1"}, {"a1", "b2"}, {"a1", "b3"}, {"a2", "b3"}} {
		approx(t, "senate "+g[0]+g[1], a.Targets[key(g[0], g[1])], 25, 1e-9)
	}
}

func TestFigure5BasicCongress(t *testing.T) {
	cube := figure5Cube(t)
	a, err := Allocate(BasicCongress, cube, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: before scaling 30, 30, 25, 25; after scaling 27.3, 27.3,
	// 22.7, 22.7.
	approx(t, "pre (a1,b1)", a.PreScale[key("a1", "b1")], 30, 1e-9)
	approx(t, "pre (a1,b3)", a.PreScale[key("a1", "b3")], 25, 1e-9)
	approx(t, "post (a1,b1)", a.Targets[key("a1", "b1")], 27.3, 0.05)
	approx(t, "post (a1,b2)", a.Targets[key("a1", "b2")], 27.3, 0.05)
	approx(t, "post (a1,b3)", a.Targets[key("a1", "b3")], 22.7, 0.05)
	approx(t, "post (a2,b3)", a.Targets[key("a2", "b3")], 22.7, 0.05)
	approx(t, "total", a.Total(), 100, 1e-6)
}

func TestFigure5Congress(t *testing.T) {
	cube := figure5Cube(t)
	a, err := Allocate(Congress, cube, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's last two columns: before scaling 33.3, 33.3, 25, 50;
	// after scaling 23.5, 23.5, 17.7, 35.3.
	approx(t, "pre (a1,b1)", a.PreScale[key("a1", "b1")], 100.0/3, 0.05)
	approx(t, "pre (a1,b2)", a.PreScale[key("a1", "b2")], 100.0/3, 0.05)
	approx(t, "pre (a1,b3)", a.PreScale[key("a1", "b3")], 25, 1e-9)
	approx(t, "pre (a2,b3)", a.PreScale[key("a2", "b3")], 50, 1e-9)
	approx(t, "post (a1,b1)", a.Targets[key("a1", "b1")], 23.5, 0.05)
	approx(t, "post (a1,b2)", a.Targets[key("a1", "b2")], 23.5, 0.05)
	// Exact value is 25·(100/141.67) = 17.647; the paper's table rounds
	// its entries so they visibly sum to 100 and prints 17.7.
	approx(t, "post (a1,b3)", a.Targets[key("a1", "b3")], 17.65, 0.05)
	approx(t, "post (a2,b3)", a.Targets[key("a2", "b3")], 35.3, 0.05)
	approx(t, "total", a.Total(), 100, 1e-6)
}

func TestFigure5GroupingVectors(t *testing.T) {
	// The intermediate s_{g,A} and s_{g,B} columns of Figure 5.
	cube := figure5Cube(t)
	// Attribute A is bit 0, B is bit 1.
	vA := GroupingVector(cube, 100, 0b01)
	approx(t, "s_{(a1,b1),A}", vA.Targets[key("a1", "b1")], 20, 1e-9)
	approx(t, "s_{(a1,b3),A}", vA.Targets[key("a1", "b3")], 10, 1e-9)
	approx(t, "s_{(a2,b3),A}", vA.Targets[key("a2", "b3")], 50, 1e-9)
	vB := GroupingVector(cube, 100, 0b10)
	approx(t, "s_{(a1,b1),B}", vB.Targets[key("a1", "b1")], 100.0/3, 1e-9)
	approx(t, "s_{(a1,b3),B}", vB.Targets[key("a1", "b3")], 12.5, 1e-9)
	approx(t, "s_{(a2,b3),B}", vB.Targets[key("a2", "b3")], 125.0/6, 1e-9)
}

func TestAllocateValidation(t *testing.T) {
	cube := figure5Cube(t)
	if _, err := Allocate(Congress, cube, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Allocate(Strategy(99), cube, 10); err == nil {
		t.Error("unknown strategy accepted")
	}
	empty := datacube.MustNew([]string{"A"})
	if _, err := Allocate(House, empty, 10); err == nil {
		t.Error("empty cube accepted")
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		House: "House", Senate: "Senate", BasicCongress: "BasicCongress", Congress: "Congress",
	} {
		if s.String() != want {
			t.Errorf("%d String = %q", s, s.String())
		}
	}
	if Strategy(42).String() == "" {
		t.Error("unknown strategy renders empty")
	}
}

// TestScaleDownUniform verifies f = 1 when tuples are uniform across the
// full cross-product (the paper's best case for the scale-down factor).
func TestScaleDownUniform(t *testing.T) {
	cube := datacube.MustNew([]string{"A", "B"})
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			id := datacube.GroupID{"a" + strconv.Itoa(a), "b" + strconv.Itoa(b)}
			for i := 0; i < 100; i++ {
				cube.Add(id)
			}
		}
	}
	alloc, err := Allocate(Congress, cube, 60)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "uniform scale-down", alloc.ScaleDown, 1, 1e-9)
	for k, v := range alloc.Targets {
		approx(t, "uniform target "+k, v, 10, 1e-9)
	}
}

// TestAllStrategiesCoincideOnUniformData verifies the Section 7.2.1
// observation: "when all the groups are of the same size (i.e., z=0),
// all the techniques result in the same allocation, which is a uniform
// sample of the data."
func TestAllStrategiesCoincideOnUniformData(t *testing.T) {
	cube := datacube.MustNew([]string{"A", "B"})
	for a := 0; a < 3; a++ {
		for b := 0; b < 4; b++ {
			id := datacube.GroupID{"a" + strconv.Itoa(a), "b" + strconv.Itoa(b)}
			for i := 0; i < 50; i++ {
				cube.Add(id)
			}
		}
	}
	base, err := Allocate(House, cube, 120)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Senate, BasicCongress, Congress} {
		alloc, err := Allocate(strat, cube, 120)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range base.Targets {
			if math.Abs(alloc.Targets[k]-v) > 1e-9 {
				t.Errorf("%v target %q = %v, house %v — must coincide at z=0", strat, k, alloc.Targets[k], v)
			}
		}
	}
}

// TestScaleDownBounds checks 2^-|G| <= f <= 1 on random cubes (the
// paper's analysis of the scale-down factor).
func TestScaleDownBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cube := datacube.MustNew([]string{"A", "B", "C"})
		n := 50 + rng.Intn(500)
		for i := 0; i < n; i++ {
			cube.Add(datacube.GroupID{
				"a" + strconv.Itoa(rng.Intn(4)),
				"b" + strconv.Itoa(rng.Intn(3)),
				"c" + strconv.Itoa(rng.Intn(2)),
			})
		}
		alloc, err := Allocate(Congress, cube, 1+rng.Intn(n))
		if err != nil {
			return false
		}
		const eps = 1e-9
		return alloc.ScaleDown <= 1+eps && alloc.ScaleDown >= 1.0/8-eps &&
			math.Abs(alloc.Total()-alloc.X) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCongressWithinFactorF asserts the Eq. 5/6 guarantee: every group's
// final allocation is exactly f times its best per-grouping optimal, and
// hence within factor f of *every* grouping's optimal for that group.
func TestCongressWithinFactorF(t *testing.T) {
	cube := figure5Cube(t)
	alloc, err := Allocate(Congress, cube, 100)
	if err != nil {
		t.Fatal(err)
	}
	for mask := uint32(0); int(mask) < cube.NumGroupings(); mask++ {
		v := GroupingVector(cube, 100, mask)
		for k, s := range v.Targets {
			if alloc.Targets[k] < alloc.ScaleDown*s-1e-9 {
				t.Errorf("group %q mask %b: target %.3f below f*s = %.3f",
					k, mask, alloc.Targets[k], alloc.ScaleDown*s)
			}
		}
	}
}

// TestPathologicalScaleDown builds the Eq. 7 adversarial distribution
// (scaled down) and checks f approaches 2^-|G|.
func TestPathologicalScaleDown(t *testing.T) {
	// n = 2 attributes, domain {1..m}, |(v1,v2)| = (2m)^{2n·α} with α
	// the number of attributes equal to 1. Use m = 4, n = 2: counts are
	// 1, 8^4=4096, or 8^8 — too big to Add per tuple; instead use a
	// miniature variant exercising the same shape: counts
	// heavily concentrated on attribute-value-1 combinations.
	cube := datacube.MustNew([]string{"A", "B"})
	m := 4
	addN := func(a, b string, n int) {
		id := datacube.GroupID{a, b}
		for i := 0; i < n; i++ {
			cube.Add(id)
		}
	}
	for a := 1; a <= m; a++ {
		for b := 1; b <= m; b++ {
			alpha := 0
			if a == 1 {
				alpha++
			}
			if b == 1 {
				alpha++
			}
			// (2m)^ (2*alpha) with 2m=8: 1, 64, 4096 — scaled by /1 to
			// keep the test fast but preserving the dominance structure.
			n := 1
			for i := 0; i < alpha; i++ {
				n *= 64
			}
			addN("a"+strconv.Itoa(a), "b"+strconv.Itoa(b), n)
		}
	}
	alloc, err := Allocate(Congress, cube, 100)
	if err != nil {
		t.Fatal(err)
	}
	// For |G| = 2 the bound is f -> 1/4; with m = 4 the paper's formula
	// gives f < (1 + 8^-2)(2 - 1/4)^-2 ≈ 0.327.
	if alloc.ScaleDown > 0.35 {
		t.Errorf("pathological scale-down f = %.3f, want near 1/4", alloc.ScaleDown)
	}
	if alloc.ScaleDown < 0.25-1e-9 {
		t.Errorf("scale-down %.3f below theoretical floor 1/4", alloc.ScaleDown)
	}
}

func TestPreferenceVector(t *testing.T) {
	cube := figure5Cube(t)
	// Prefer group a2 (under grouping A, mask 0b01) three times as much
	// as a1.
	v := PreferenceVector(cube, 100, 0b01, map[string]float64{"a1": 0.25, "a2": 0.75})
	// a1 gets 25 split over its 7500 tuples proportionally; (a1,b1)
	// holds 3000/7500 of that = 10; a2's only subgroup gets all 75.
	approx(t, "pref (a1,b1)", v.Targets[key("a1", "b1")], 10, 1e-9)
	approx(t, "pref (a2,b3)", v.Targets[key("a2", "b3")], 75, 1e-9)
}

func TestNeymanVector(t *testing.T) {
	cube := figure5Cube(t)
	sd := map[string]float64{
		key("a1", "b1"): 1,
		key("a1", "b2"): 1,
		key("a1", "b3"): 10, // high-variance group should win space
		key("a2", "b3"): 1,
	}
	v := NeymanVector(cube, 100, sd)
	// Weights n_g*sigma: 3000, 3000, 15000, 2500 — total 23500.
	approx(t, "neyman (a1,b3)", v.Targets[key("a1", "b3")], 100*15000.0/23500, 1e-9)
	var sum float64
	for _, x := range v.Targets {
		sum += x
	}
	approx(t, "neyman total", sum, 100, 1e-9)

	// All-zero variances degrade gracefully.
	v0 := NeymanVector(cube, 100, map[string]float64{})
	for k, x := range v0.Targets {
		if x != 0 {
			t.Errorf("zero-variance target %q = %v", k, x)
		}
	}
}

func TestCombineVectorsEmpty(t *testing.T) {
	a := CombineVectors(100)
	if a.ScaleDown != 1 || len(a.Targets) != 0 {
		t.Errorf("empty combine: %+v", a)
	}
}

func TestIntegerTargetsSumAndCaps(t *testing.T) {
	cube := figure5Cube(t)
	pops := map[string]int64{}
	cube.FinestGroups(func(k string, n int64) { pops[k] = n })

	alloc, _ := Allocate(Congress, cube, 100)
	ints := alloc.IntegerTargets(pops)
	sum := 0
	for k, v := range ints {
		sum += v
		if int64(v) > pops[k] {
			t.Errorf("group %q allocated %d beyond population %d", k, v, pops[k])
		}
	}
	if sum != 100 {
		t.Errorf("integer targets sum to %d, want 100", sum)
	}
}

func TestIntegerTargetsCapping(t *testing.T) {
	// A tiny group cannot absorb its Senate share; overflow must be
	// redistributed.
	cube := datacube.MustNew([]string{"A"})
	for i := 0; i < 5; i++ {
		cube.Add(datacube.GroupID{"small"})
	}
	for i := 0; i < 1000; i++ {
		cube.Add(datacube.GroupID{"big"})
	}
	alloc, err := Allocate(Senate, cube, 100)
	if err != nil {
		t.Fatal(err)
	}
	ints := alloc.IntegerTargets(map[string]int64{key("small"): 5, key("big"): 1000})
	if ints[key("small")] != 5 {
		t.Errorf("small group got %d, want all 5", ints[key("small")])
	}
	if ints[key("big")] != 95 {
		t.Errorf("big group got %d, want 95 (redistributed)", ints[key("big")])
	}
}

func TestIntegerTargetsBudgetCoversRelation(t *testing.T) {
	cube := datacube.MustNew([]string{"A"})
	for i := 0; i < 10; i++ {
		cube.Add(datacube.GroupID{"g"})
	}
	alloc, _ := Allocate(House, cube, 50)
	ints := alloc.IntegerTargets(map[string]int64{key("g"): 10})
	if ints[key("g")] != 10 {
		t.Errorf("over-budget allocation %d, want full population 10", ints[key("g")])
	}
}

// Property: growing the budget never shrinks any group's allocation
// (all four strategies are monotone in X).
func TestAllocationMonotoneInBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cube := datacube.MustNew([]string{"A", "B"})
		for i := 0; i < 100+rng.Intn(400); i++ {
			cube.Add(datacube.GroupID{
				"a" + strconv.Itoa(rng.Intn(3)),
				"b" + strconv.Itoa(rng.Intn(3)),
			})
		}
		x1 := 1 + rng.Intn(100)
		x2 := x1 + 1 + rng.Intn(100)
		for _, strat := range Strategies {
			small, err := Allocate(strat, cube, x1)
			if err != nil {
				return false
			}
			big, err := Allocate(strat, cube, x2)
			if err != nil {
				return false
			}
			for k, v := range small.Targets {
				if big.Targets[k] < v-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Congress dominates Senate and House floors up to the scale
// factor — every group's Congress target is at least f times both its
// House and Senate targets.
func TestCongressDominatesFloorsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cube := datacube.MustNew([]string{"A", "B"})
		for i := 0; i < 100+rng.Intn(300); i++ {
			cube.Add(datacube.GroupID{
				"a" + strconv.Itoa(rng.Intn(4)),
				"b" + strconv.Itoa(rng.Intn(2)),
			})
		}
		x := 10 + rng.Intn(90)
		congress, err := Allocate(Congress, cube, x)
		if err != nil {
			return false
		}
		house, _ := Allocate(House, cube, x)
		senate, _ := Allocate(Senate, cube, x)
		for k, v := range congress.Targets {
			if v < congress.ScaleDown*house.Targets[k]-1e-9 {
				return false
			}
			if v < congress.ScaleDown*senate.Targets[k]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: integer targets always sum to min(X, total population) and
// never exceed per-group populations.
func TestIntegerTargetsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cube := datacube.MustNew([]string{"A", "B"})
		total := 0
		pops := map[string]int64{}
		for a := 0; a < 1+rng.Intn(4); a++ {
			for b := 0; b < 1+rng.Intn(4); b++ {
				n := 1 + rng.Intn(50)
				id := datacube.GroupID{"a" + strconv.Itoa(a), "b" + strconv.Itoa(b)}
				for i := 0; i < n; i++ {
					cube.Add(id)
				}
				pops[id.Key()] = int64(n)
				total += n
			}
		}
		x := 1 + rng.Intn(total+20)
		strat := Strategies[rng.Intn(len(Strategies))]
		alloc, err := Allocate(strat, cube, x)
		if err != nil {
			return false
		}
		ints := alloc.IntegerTargets(pops)
		sum := 0
		for k, v := range ints {
			if v < 0 || int64(v) > pops[k] {
				return false
			}
			sum += v
		}
		want := x
		if total < x {
			want = total
		}
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
