package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"github.com/approxdb/congress/internal/engine"
)

// streamRow builds a 3-column row (a, b, v) for maintainer streams.
func streamRow(a, b string, v int64) engine.Row {
	return engine.Row{engine.NewString(a), engine.NewString(b), engine.NewInt(v)}
}

func streamGrouping(t testing.TB) *Grouping {
	t.Helper()
	schema := engine.MustSchema(
		engine.Column{Name: "a", Kind: engine.KindString},
		engine.Column{Name: "b", Kind: engine.KindString},
		engine.Column{Name: "v", Kind: engine.KindInt},
	)
	return MustGrouping(schema, []string{"a", "b"})
}

func TestHouseMaintainerBasics(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(1))
	m, err := NewHouseMaintainer(g, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		m.Insert(streamRow("a"+strconv.FormatInt(i%3, 10), "b", i))
	}
	if m.SampledCount() != 50 {
		t.Fatalf("sampled %d, want 50", m.SampledCount())
	}
	if m.SeenCount() != 1000 {
		t.Fatalf("seen %d", m.SeenCount())
	}
	st, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 50 || st.Population() != 1000 {
		t.Fatalf("snapshot size=%d pop=%d", st.Size(), st.Population())
	}
	if st.NumStrata() != 3 {
		t.Fatalf("strata %d, want 3", st.NumStrata())
	}
}

func TestHouseMaintainerValidation(t *testing.T) {
	g := streamGrouping(t)
	if _, err := NewHouseMaintainer(g, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestSenateMaintainerEqualizes(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(2))
	m, err := NewSenateMaintainer(g, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Highly skewed stream: one huge group, three small ones.
	for i := int64(0); i < 20000; i++ {
		m.Insert(streamRow("big", "x", i))
	}
	for i := int64(0); i < 100; i++ {
		m.Insert(streamRow("s1", "x", i))
		m.Insert(streamRow("s2", "x", i))
		m.Insert(streamRow("s3", "x", i))
	}
	if m.SampledCount() > 100 {
		t.Fatalf("sample size %d exceeds budget", m.SampledCount())
	}
	st, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st.Each(func(s *sampleStratum) {
		if len(s.Items) != 25 {
			t.Errorf("stratum %q has %d tuples, want 25 (= X/m)", s.Key, len(s.Items))
		}
	})
}

func TestSenateMaintainerShrinksOnNewGroups(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(3))
	m, _ := NewSenateMaintainer(g, 60, rng)
	// First a single group fills the budget.
	for i := int64(0); i < 500; i++ {
		m.Insert(streamRow("g0", "x", i))
	}
	if m.SampledCount() != 60 {
		t.Fatalf("single group should hold full budget, got %d", m.SampledCount())
	}
	// Then five more groups arrive.
	for gi := 1; gi <= 5; gi++ {
		for i := int64(0); i < 500; i++ {
			m.Insert(streamRow("g"+strconv.Itoa(gi), "x", i))
		}
	}
	if m.SampledCount() > 60 {
		t.Fatalf("budget exceeded after growth: %d", m.SampledCount())
	}
	st, _ := m.Snapshot()
	st.Each(func(s *sampleStratum) {
		if len(s.Items) != 10 {
			t.Errorf("stratum %q has %d tuples, want 10", s.Key, len(s.Items))
		}
	})
}

func TestSenateMaintainerValidation(t *testing.T) {
	g := streamGrouping(t)
	if _, err := NewSenateMaintainer(g, -1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestBasicCongressMaintainerSmallGroupFullyHeld(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(4))
	m, err := NewBasicCongressMaintainer(g, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Large group of 10000 and a small group of 20 (< Y/m = 50): the
	// small group must be completely represented (reservoir + delta).
	for i := int64(0); i < 10000; i++ {
		m.Insert(streamRow("big", "x", i))
	}
	for i := int64(0); i < 20; i++ {
		m.Insert(streamRow("small", "x", i))
	}
	st, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	small, ok := st.Get(rowKey("small", "x"))
	if !ok {
		t.Fatal("small group missing from snapshot")
	}
	if len(small.Items) != 20 {
		t.Errorf("small group holds %d of 20 tuples; Basic Congress must keep all of a below-target group", len(small.Items))
	}
	big, _ := st.Get(rowKey("big", "x"))
	if len(big.Items) < 40 {
		t.Errorf("big group under-sampled: %d", len(big.Items))
	}
}

func TestBasicCongressMaintainerBudgetDiscipline(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(5))
	m, _ := NewBasicCongressMaintainer(g, 200, rng)
	for gi := 0; gi < 10; gi++ {
		for i := int64(0); i < 1000; i++ {
			m.Insert(streamRow("g"+strconv.Itoa(gi), "x", i))
		}
	}
	m.Compact()
	// Y + per-group deltas: with all groups equal and large, deltas
	// should be nearly empty; allow the documented Basic Congress
	// inflation bound X' < 2Y.
	if m.SampledCount() > 400 {
		t.Fatalf("sample size %d exceeds 2Y bound", m.SampledCount())
	}
	st, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Every group's holding must be at least its reservoir share and at
	// least close to Y/m for small-share groups.
	st.Each(func(s *sampleStratum) {
		if len(s.Items) < 10 {
			t.Errorf("stratum %q has only %d tuples", s.Key, len(s.Items))
		}
	})
}

// TestBasicCongressMaintainerUniformity checks the Theorem 6.1 claim:
// within a group, every tuple is equally likely to be in the final
// sample (reservoir + delta).
func TestBasicCongressMaintainerUniformity(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(6))
	const (
		trials  = 1500
		bigN    = 400
		smallN  = 30
		baseCap = 40
	)
	counts := make(map[int64]int)
	for trial := 0; trial < trials; trial++ {
		m, _ := NewBasicCongressMaintainer(g, baseCap, rng)
		// Interleave two groups so evictions cross groups regularly.
		bi, si := int64(0), int64(0)
		for i := 0; i < bigN+smallN; i++ {
			if i%((bigN+smallN)/smallN) == 0 && si < smallN {
				m.Insert(streamRow("small", "x", si))
				si++
			} else if bi < bigN {
				m.Insert(streamRow("big", "x", bi))
				bi++
			}
		}
		st, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		big, _ := st.Get(rowKey("big", "x"))
		for _, row := range big.Items {
			counts[row[2].I]++
		}
	}
	// Each of the bigN tuples should appear equally often.
	var mean float64
	for i := int64(0); i < bigN; i++ {
		mean += float64(counts[i])
	}
	mean /= bigN
	for i := int64(0); i < bigN; i++ {
		if math.Abs(float64(counts[i])-mean) > 6*math.Sqrt(mean) {
			t.Errorf("tuple %d included %d times, mean %.1f — delta sample not uniform", i, counts[i], mean)
		}
	}
}

func TestCongressMaintainerExpectation(t *testing.T) {
	// The Eq. 8 maintainer's expected stratum size equals the
	// pre-scaling Congress target max_T s_{g,T}(Y). Stream a fixed
	// distribution many times and compare.
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(7))
	dist := map[[2]string]int{
		{"a1", "b1"}: 3000, {"a1", "b2"}: 3000, {"a1", "b3"}: 1500, {"a2", "b3"}: 2500,
	}
	const Y = 100
	const trials = 60
	sizes := make(map[string]float64)
	for trial := 0; trial < trials; trial++ {
		m, err := NewCongressMaintainer(g, Y, rng)
		if err != nil {
			t.Fatal(err)
		}
		v := int64(0)
		// Round-robin interleave to exercise probability decay.
		remaining := map[[2]string]int{}
		for k, n := range dist {
			remaining[k] = n
		}
		for done := false; !done; {
			done = true
			for _, k := range [][2]string{{"a1", "b1"}, {"a1", "b2"}, {"a1", "b3"}, {"a2", "b3"}} {
				if remaining[k] > 0 {
					// Insert a burst to keep the test fast.
					burst := 25
					if remaining[k] < burst {
						burst = remaining[k]
					}
					for j := 0; j < burst; j++ {
						m.Insert(streamRow(k[0], k[1], v))
						v++
					}
					remaining[k] -= burst
					done = false
				}
			}
		}
		st, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		st.Each(func(s *sampleStratum) {
			sizes[s.Key] += float64(len(s.Items))
		})
	}
	// Figure 5 pre-scaling Congress targets with X=100: 33.3, 33.3, 25, 50.
	want := map[string]float64{
		rowKey("a1", "b1"): 100.0 / 3,
		rowKey("a1", "b2"): 100.0 / 3,
		rowKey("a1", "b3"): 25,
		rowKey("a2", "b3"): 50,
	}
	for k, w := range want {
		got := sizes[k] / trials
		// Standard error of the mean over trials is about sqrt(w)/sqrt(trials);
		// allow a generous 15% + 3 tuples.
		if math.Abs(got-w) > 0.15*w+3 {
			t.Errorf("stratum %q mean size %.2f, want ~%.2f", k, got, w)
		}
	}
}

func TestCongressMaintainerSubsampleTo(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(8))
	m, _ := NewCongressMaintainer(g, 200, rng)
	for i := int64(0); i < 5000; i++ {
		m.Insert(streamRow("a"+strconv.FormatInt(i%5, 10), "b"+strconv.FormatInt(i%2, 10), i))
	}
	m.SubsampleTo(100)
	if m.SampledCount() > 100 {
		t.Fatalf("subsample left %d tuples", m.SampledCount())
	}
	st, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != m.SampledCount() {
		t.Fatalf("snapshot size %d != sampled %d", st.Size(), m.SampledCount())
	}
	// No-op when already below target.
	before := m.SampledCount()
	m.SubsampleTo(10000)
	if m.SampledCount() != before {
		t.Error("over-large subsample changed the sample")
	}
}

func TestCongressMaintainerValidation(t *testing.T) {
	g := streamGrouping(t)
	if _, err := NewCongressMaintainer(g, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero Y accepted")
	}
}

func TestMaintainerInterfaceCompliance(t *testing.T) {
	g := streamGrouping(t)
	rng := rand.New(rand.NewSource(9))
	hm, _ := NewHouseMaintainer(g, 10, rng)
	sm, _ := NewSenateMaintainer(g, 10, rng)
	bm, _ := NewBasicCongressMaintainer(g, 10, rng)
	cm, _ := NewCongressMaintainer(g, 10, rng)
	for _, m := range []Maintainer{hm, sm, bm, cm} {
		for i := int64(0); i < 100; i++ {
			m.Insert(streamRow("a"+strconv.FormatInt(i%2, 10), "b", i))
		}
		if m.SeenCount() != 100 {
			t.Errorf("%T seen %d", m, m.SeenCount())
		}
		st, err := m.Snapshot()
		if err != nil {
			t.Errorf("%T snapshot: %v", m, err)
			continue
		}
		if st.Population() != 100 {
			t.Errorf("%T population %d", m, st.Population())
		}
		if err := st.Validate(); err != nil {
			t.Errorf("%T snapshot invalid: %v", m, err)
		}
	}
}

// TestMaintainerMatchesBatchBuild compares a maintainer-grown Senate
// sample with a batch-built one: per-stratum sizes must agree.
func TestMaintainerMatchesBatchBuild(t *testing.T) {
	rel, g := buildRelation(t, map[[2]string]int{
		{"a1", "b1"}: 800, {"a1", "b2"}: 150, {"a2", "b1"}: 50,
	})
	rng := rand.New(rand.NewSource(10))
	batch, _, err := Build(rel, g, Senate, 90, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewSenateMaintainer(g, 90, rng)
	for _, row := range rel.Rows() {
		m.Insert(row)
	}
	inc, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	batch.Each(func(s *sampleStratum) {
		is, ok := inc.Get(s.Key)
		if !ok {
			t.Errorf("stratum %q missing from incremental sample", s.Key)
			return
		}
		if len(is.Items) != len(s.Items) {
			t.Errorf("stratum %q: incremental %d vs batch %d", s.Key, len(is.Items), len(s.Items))
		}
	})
}
