// Package core implements the paper's primary contribution: the House,
// Senate, Basic Congress, and Congress sample-space allocation
// strategies (Section 4), the weight-vector generalization of Section 8,
// one-pass construction (Section 6), and incremental maintenance of
// every sample kind without access to the base relation.
//
// Terminology follows the paper. G is the full set of grouping
// attributes; the finest partitioning groups tuples on all of G and each
// such group becomes one stratum of the final biased sample. For a
// grouping T ⊆ G, m_T is the number of non-empty groups under T and n_h
// the population of group h under T.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/approxdb/congress/internal/datacube"
)

// errBudget rejects non-positive sample budgets.
var errBudget = errors.New("core: sample budget must be positive")

// Strategy selects one of the paper's allocation schemes.
type Strategy int

// The four allocation strategies of Section 4.
const (
	// House is a uniform random sample of the relation: space
	// proportional to group population (Section 4.3).
	House Strategy = iota
	// Senate divides space equally among the finest groups
	// (Section 4.4).
	Senate
	// BasicCongress takes the per-group max of House and Senate, scaled
	// back to the budget (Section 4.5).
	BasicCongress
	// Congress takes the per-group max of the S1-optimal allocations
	// over every T ⊆ G, scaled back to the budget (Section 4.6,
	// Eq. 5); the paper's recommended technique.
	Congress
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case House:
		return "House"
	case Senate:
		return "Senate"
	case BasicCongress:
		return "BasicCongress"
	case Congress:
		return "Congress"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all four schemes in presentation order, for
// experiment sweeps.
var Strategies = []Strategy{House, Senate, BasicCongress, Congress}

// WeightVector is one column of the Figure 19 allocation framework: a
// desired (pre-scaling) space assignment for each finest group. Vectors
// normally sum to the budget X; CombineVectors takes the row-wise max
// over vectors and rescales to X.
type WeightVector struct {
	Name    string
	Targets map[string]float64 // finest-group key -> desired space
}

// Allocation is the outcome of a strategy: fractional per-finest-group
// targets that sum to X, plus the scale-down factor f of Eq. 6.
type Allocation struct {
	X         float64
	Targets   map[string]float64 // finest-group key -> allocated space
	PreScale  map[string]float64 // row-wise max before scaling
	ScaleDown float64            // f = X / Σ max
}

// Allocate computes the allocation for one of the built-in strategies
// over the group counts in cube with budget X (in tuples).
func Allocate(strategy Strategy, cube *datacube.Cube, x int) (*Allocation, error) {
	return AllocateWithVectors(strategy, cube, x)
}

// AllocateWithVectors is Allocate extended with additional weight
// vectors combined into the row-wise max — the Figure 19 framework of
// Section 8. Passing a NeymanVector, for example, yields a
// variance-aware congressional sample.
func AllocateWithVectors(strategy Strategy, cube *datacube.Cube, x int, extra ...WeightVector) (*Allocation, error) {
	if x <= 0 {
		return nil, errBudget
	}
	if cube.Total() == 0 {
		return nil, errors.New("core: cannot allocate over an empty relation")
	}
	X := float64(x)
	vecs, err := StrategyVectors(strategy, cube, X)
	if err != nil {
		return nil, err
	}
	vecs = append(vecs, extra...)
	return CombineVectors(X, vecs...), nil
}

// StrategyVectors returns the weight vectors a built-in strategy
// contributes to the Figure 19 combination table.
func StrategyVectors(strategy Strategy, cube *datacube.Cube, X float64) ([]WeightVector, error) {
	switch strategy {
	case House:
		return []WeightVector{HouseVector(cube, X)}, nil
	case Senate:
		return []WeightVector{SenateVector(cube, X)}, nil
	case BasicCongress:
		return []WeightVector{HouseVector(cube, X), SenateVector(cube, X)}, nil
	case Congress:
		return GroupingVectors(cube, X), nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", strategy)
	}
}

// HouseVector is the uniform-sample column: space X·n_g/|R| per finest
// group (equivalently, s_{g,∅} in Figure 5).
func HouseVector(cube *datacube.Cube, X float64) WeightVector {
	v := WeightVector{Name: "house", Targets: make(map[string]float64)}
	total := float64(cube.Total())
	cube.FinestGroups(func(key string, n int64) {
		v.Targets[key] = X * float64(n) / total
	})
	return v
}

// SenateVector is the equal-space column: X/m_G per finest group
// (s_{g,G} in Figure 5).
func SenateVector(cube *datacube.Cube, X float64) WeightVector {
	v := WeightVector{Name: "senate", Targets: make(map[string]float64)}
	m := float64(cube.NumGroups(cube.FinestMask()))
	cube.FinestGroups(func(key string, n int64) {
		v.Targets[key] = X / m
	})
	return v
}

// GroupingVector is the S1-optimal column for one grouping T (selected
// by mask): each group h under T receives X/m_T, divided among its
// finest subgroups g in proportion to n_g/n_h (Eq. 4).
func GroupingVector(cube *datacube.Cube, X float64, mask uint32) WeightVector {
	v := WeightVector{
		Name:    fmt.Sprintf("grouping-%b", mask),
		Targets: make(map[string]float64),
	}
	mT := float64(cube.NumGroups(mask))
	cube.FinestIDs(func(id datacube.GroupID, key string, n int64) {
		nh := float64(cube.CountFor(mask, id))
		v.Targets[key] = X / mT * float64(n) / nh
	})
	return v
}

// GroupingVectors returns the S1 columns for every T ⊆ G — the full
// Congress table of Figure 5.
func GroupingVectors(cube *datacube.Cube, X float64) []WeightVector {
	vecs := make([]WeightVector, 0, cube.NumGroupings())
	for mask := uint32(0); int(mask) < cube.NumGroupings(); mask++ {
		vecs = append(vecs, GroupingVector(cube, X, mask))
	}
	return vecs
}

// AllocateForGroupings specializes Congress to a known query mix: only
// the listed groupings (masks over the cube's attributes) compete for
// space, per the paper's observation that congressional samples "can be
// specialized to specific subsets of group-by queries". Passing all
// 2^|G| masks reproduces Congress; passing {0, finest} reproduces Basic
// Congress; a single mask reproduces S1 for that grouping.
func AllocateForGroupings(cube *datacube.Cube, x int, masks []uint32) (*Allocation, error) {
	if x <= 0 {
		return nil, errBudget
	}
	if cube.Total() == 0 {
		return nil, errors.New("core: cannot allocate over an empty relation")
	}
	if len(masks) == 0 {
		return nil, errors.New("core: at least one grouping mask required")
	}
	X := float64(x)
	vecs := make([]WeightVector, 0, len(masks))
	for _, m := range masks {
		if int(m) >= cube.NumGroupings() {
			return nil, fmt.Errorf("core: grouping mask %b out of range for %d attributes", m, cube.NumAttrs())
		}
		vecs = append(vecs, GroupingVector(cube, X, m))
	}
	return CombineVectors(X, vecs...), nil
}

// MaskFor converts a list of grouping attribute names (a subset of the
// cube's attributes) into the bit mask AllocateForGroupings expects.
func MaskFor(cube *datacube.Cube, attrs []string) (uint32, error) {
	var mask uint32
	for _, a := range attrs {
		found := false
		for i, ca := range cube.Attrs() {
			if ca == a {
				mask |= 1 << uint(i)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("core: attribute %q not in grouping %v", a, cube.Attrs())
		}
	}
	return mask, nil
}

// PreferenceVector implements the Section 4.7 workload adaptation: given
// relative preferences r_h for groups h under grouping T (selected by
// mask), each finest subgroup g of h receives X·r_h·n_g/n_h. Groups
// absent from prefs get preference 0.
func PreferenceVector(cube *datacube.Cube, X float64, mask uint32, prefs map[string]float64) WeightVector {
	v := WeightVector{
		Name:    fmt.Sprintf("preference-%b", mask),
		Targets: make(map[string]float64),
	}
	cube.FinestIDs(func(id datacube.GroupID, key string, n int64) {
		h := id.Project(mask)
		r := prefs[h]
		nh := float64(cube.CountFor(mask, id))
		v.Targets[key] = X * r * float64(n) / nh
	})
	return v
}

// NeymanVector implements the Section 8 variance criterion via Neyman
// allocation: space proportional to n_g·σ_g, where stddevs maps each
// finest group to the standard deviation of the aggregate column within
// the group. Groups absent from stddevs are treated as zero-variance
// (they still receive space from the other vectors they are combined
// with).
func NeymanVector(cube *datacube.Cube, X float64, stddevs map[string]float64) WeightVector {
	v := WeightVector{Name: "neyman", Targets: make(map[string]float64)}
	var norm float64
	cube.FinestGroups(func(key string, n int64) {
		norm += float64(n) * stddevs[key]
	})
	cube.FinestGroups(func(key string, n int64) {
		if norm <= 0 {
			v.Targets[key] = 0
			return
		}
		v.Targets[key] = X * float64(n) * stddevs[key] / norm
	})
	return v
}

// CombineVectors applies the Figure 19 procedure: row-wise max over the
// weight vectors, then a uniform scale-down so the total equals X
// (Eq. 5/6). At least one vector must assign positive space somewhere.
func CombineVectors(X float64, vecs ...WeightVector) *Allocation {
	pre := make(map[string]float64)
	for _, v := range vecs {
		for key, t := range v.Targets {
			if t > pre[key] {
				pre[key] = t
			}
		}
	}
	var sum float64
	for _, t := range pre {
		sum += t
	}
	a := &Allocation{
		X:        X,
		Targets:  make(map[string]float64, len(pre)),
		PreScale: pre,
	}
	if sum <= 0 {
		a.ScaleDown = 1
		return a
	}
	a.ScaleDown = X / sum
	for key, t := range pre {
		a.Targets[key] = t * a.ScaleDown
	}
	return a
}

// Total returns the sum of the (fractional) targets; by construction it
// equals X up to rounding error.
func (a *Allocation) Total() float64 {
	var s float64
	for _, t := range a.Targets {
		s += t
	}
	return s
}

// IntegerTargets converts fractional targets into integer sample sizes
// that sum exactly to min(X, Σ caps). Largest-remainder rounding
// preserves the allocation's proportions; each group's size is capped at
// its population (footnote 12: a group cannot contribute more tuples
// than it has), with the overflow redistributed to uncapped groups in
// proportion to their targets.
func (a *Allocation) IntegerTargets(populations map[string]int64) map[string]int {
	keys := make([]string, 0, len(a.Targets))
	for k := range a.Targets {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	budget := int(math.Round(a.X))
	out := make(map[string]int, len(keys))
	capped := make(map[string]bool, len(keys))
	remaining := budget

	// Iteratively cap over-full groups and redistribute. Terminates in
	// at most len(keys) rounds because each round caps >= 1 new group.
	targets := make(map[string]float64, len(keys))
	var totalCap int64
	for _, k := range keys {
		targets[k] = a.Targets[k]
		totalCap += populations[k]
	}
	if int64(budget) >= totalCap {
		// Degenerate: the budget covers the whole relation.
		for _, k := range keys {
			out[k] = int(populations[k])
		}
		return out
	}
	for {
		var over float64
		var freeSum float64
		anyCapped := false
		for _, k := range keys {
			if capped[k] {
				continue
			}
			limit := float64(populations[k])
			if targets[k] > limit {
				over += targets[k] - limit
				targets[k] = limit
				capped[k] = true
				anyCapped = true
			} else {
				freeSum += targets[k]
			}
		}
		if !anyCapped || over <= 0 || freeSum <= 0 {
			break
		}
		scale := (freeSum + over) / freeSum
		for _, k := range keys {
			if !capped[k] {
				targets[k] *= scale
			}
		}
	}

	// Largest-remainder rounding to hit the budget exactly.
	type frac struct {
		key string
		f   float64
	}
	fracs := make([]frac, 0, len(keys))
	assigned := 0
	for _, k := range keys {
		w := int(targets[k])
		if int64(w) > populations[k] {
			w = int(populations[k])
		}
		out[k] = w
		assigned += w
		fracs = append(fracs, frac{key: k, f: targets[k] - float64(w)})
	}
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].f != fracs[j].f {
			return fracs[i].f > fracs[j].f
		}
		return fracs[i].key < fracs[j].key
	})
	short := remaining - assigned
	for i := 0; short > 0 && i < len(fracs)*2; i++ {
		k := fracs[i%len(fracs)].key
		if int64(out[k]) < populations[k] {
			out[k]++
			short--
		}
	}
	return out
}
