package core

import (
	"testing"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// mkStratum builds a stratum with rows whose single column encodes
// (tag, i) so tuples are traceable back to their source shard.
func mkStratum(key string, population int64, tag, n int) *sample.Stratum[engine.Row] {
	s := &sample.Stratum[engine.Row]{Key: key, Population: population}
	for i := 0; i < n; i++ {
		s.Items = append(s.Items, engine.Row{engine.NewInt(int64(tag*1_000_000 + i))})
	}
	return s
}

func rowTag(r engine.Row) int { return int(r[0].I) / 1_000_000 }

func TestUnionStratifiedConcatBelowCap(t *testing.T) {
	a := sample.NewStratified[engine.Row]()
	a.Put(mkStratum("g1", 100, 1, 10))
	a.Put(mkStratum("g3", 50, 1, 5))
	b := sample.NewStratified[engine.Row]()
	b.Put(mkStratum("g1", 200, 2, 20))
	b.Put(mkStratum("g2", 40, 2, 4))

	u, err := UnionStratified([]*sample.Stratified[engine.Row]{a, b}, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{"g1", "g2", "g3"}
	gotKeys := u.Keys()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("keys = %v, want %v", gotKeys, wantKeys)
	}
	for i, k := range wantKeys {
		if gotKeys[i] != k {
			t.Fatalf("keys = %v, want %v", gotKeys, wantKeys)
		}
	}
	g1, _ := u.Get("g1")
	if g1.Population != 300 {
		t.Errorf("g1 population = %d, want 300", g1.Population)
	}
	if len(g1.Items) != 30 {
		t.Errorf("g1 items = %d, want 30 (no cap → concat)", len(g1.Items))
	}
	// Concat preserves shard order: all shard-1 tuples precede shard-2's.
	for i, r := range g1.Items {
		want := 1
		if i >= 10 {
			want = 2
		}
		if rowTag(r) != want {
			t.Fatalf("g1 item %d from shard %d, want %d", i, rowTag(r), want)
		}
	}
	g2, _ := u.Get("g2")
	if g2.Population != 40 || len(g2.Items) != 4 {
		t.Errorf("g2 = pop %d / %d items, want 40 / 4", g2.Population, len(g2.Items))
	}
}

func TestUnionStratifiedCapProportional(t *testing.T) {
	// Shard populations 9000 vs 1000 with equal sampling rates: a 100-item
	// draw should land near 90/10.
	a := sample.NewStratified[engine.Row]()
	a.Put(mkStratum("g", 9000, 1, 900))
	b := sample.NewStratified[engine.Row]()
	b.Put(mkStratum("g", 1000, 2, 100))

	u, err := UnionStratified([]*sample.Stratified[engine.Row]{a, b}, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := u.Get("g")
	if g.Population != 10000 {
		t.Errorf("population = %d, want 10000", g.Population)
	}
	if len(g.Items) != 100 {
		t.Fatalf("items = %d, want cap 100", len(g.Items))
	}
	var fromA int
	seen := make(map[int64]bool)
	for _, r := range g.Items {
		if rowTag(r) == 1 {
			fromA++
		}
		if seen[r[0].I] {
			t.Fatalf("duplicate tuple %d in draw", r[0].I)
		}
		seen[r[0].I] = true
	}
	// Hypergeometric(10000, 9000, 100): mean 90, sd ≈ 3; 75..99 is ±5 sd.
	if fromA < 75 || fromA > 99 {
		t.Errorf("draw took %d/100 from the 90%%-population shard", fromA)
	}
}

func TestUnionStratifiedAvailabilityClamp(t *testing.T) {
	// Shard A dominates by population but has only 3 sampled tuples; the
	// draw must clamp to availability and fill from B.
	a := sample.NewStratified[engine.Row]()
	a.Put(mkStratum("g", 100000, 1, 3))
	b := sample.NewStratified[engine.Row]()
	b.Put(mkStratum("g", 100, 2, 50))

	u, err := UnionStratified([]*sample.Stratified[engine.Row]{a, b}, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := u.Get("g")
	if len(g.Items) != 40 {
		t.Fatalf("items = %d, want 40", len(g.Items))
	}
	var fromA int
	for _, r := range g.Items {
		if rowTag(r) == 1 {
			fromA++
		}
	}
	if fromA != 3 {
		t.Errorf("exhausted shard contributed %d tuples, want all 3", fromA)
	}
}

func TestUnionStratifiedDeterministic(t *testing.T) {
	build := func() []*sample.Stratified[engine.Row] {
		a := sample.NewStratified[engine.Row]()
		a.Put(mkStratum("g", 500, 1, 60))
		b := sample.NewStratified[engine.Row]()
		b.Put(mkStratum("g", 500, 2, 60))
		return []*sample.Stratified[engine.Row]{a, b}
	}
	u1, err := UnionStratified(build(), 30, 123)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := UnionStratified(build(), 30, 123)
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := u1.Get("g")
	g2, _ := u2.Get("g")
	if len(g1.Items) != len(g2.Items) {
		t.Fatalf("draw sizes differ: %d vs %d", len(g1.Items), len(g2.Items))
	}
	for i := range g1.Items {
		if g1.Items[i][0].I != g2.Items[i][0].I {
			t.Fatalf("item %d differs across identical runs", i)
		}
	}
}

func TestUnionStratifiedNilAndEmptyParts(t *testing.T) {
	a := sample.NewStratified[engine.Row]()
	a.Put(mkStratum("g", 10, 1, 2))
	u, err := UnionStratified([]*sample.Stratified[engine.Row]{nil, a, sample.NewStratified[engine.Row]()}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := u.Get("g")
	if !ok || len(g.Items) != 2 || g.Population != 10 {
		t.Fatalf("union over nil/empty parts lost data: %+v", g)
	}
}
