package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// DefaultWorkers returns the worker count used when a caller asks for
// parallel construction without choosing one: GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// workerSeed derives a per-worker RNG seed from the base seed. The
// mixing constants are from SplitMix64; the point is only that distinct
// (seed, worker) pairs map to well-spread, deterministic seeds.
func workerSeed(seed int64, worker int) int64 {
	z := uint64(seed) + uint64(worker+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// shardBounds splits n items into at most workers contiguous chunks,
// returning the half-open [start, end) bounds of each non-empty chunk.
func shardBounds(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	out := make([][2]int, 0, workers)
	for w := 0; w < workers; w++ {
		start := n * w / workers
		end := n * (w + 1) / workers
		if start < end {
			out = append(out, [2]int{start, end})
		}
	}
	return out
}

// BuildCubeParallel is BuildCube with the relation scan sharded across
// the given number of workers: each worker builds a partial cube over a
// contiguous chunk of the relation and the partials are merged. Counts
// are additive, so the result is identical to the sequential BuildCube.
// workers <= 1 falls back to the sequential scan.
func BuildCubeParallel(rel *engine.Relation, g *Grouping, workers int) (*datacube.Cube, error) {
	if workers <= 1 {
		return BuildCube(rel, g)
	}
	rows := rel.Rows()
	shards := shardBounds(len(rows), workers)
	if len(shards) <= 1 {
		return BuildCube(rel, g)
	}

	partials := make([]*datacube.Cube, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for w, bounds := range shards {
		wg.Add(1)
		go func(w int, start, end int) {
			defer wg.Done()
			cube, err := datacube.New(g.Attrs)
			if err != nil {
				errs[w] = err
				return
			}
			for _, row := range rows[start:end] {
				if err := cube.Add(g.ID(row)); err != nil {
					errs[w] = err
					return
				}
			}
			partials[w] = cube
		}(w, bounds[0], bounds[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	cube := partials[0]
	for _, p := range partials[1:] {
		if err := cube.Merge(p); err != nil {
			return nil, err
		}
	}
	return cube, nil
}

// workerStratum is one worker's view of one finest group: a uniform
// reservoir sample of the group tuples inside the worker's shard, plus
// how many such tuples the shard contained.
type workerStratum struct {
	items []engine.Row
	seen  int64
}

// MaterializeParallel is Materialize with the base-relation scan sharded
// across workers. Each worker runs independent per-group reservoirs over
// its contiguous chunk (at the full per-group target capacity, so every
// worker sample is a valid uniform sample of its chunk's group members),
// and the per-worker reservoirs are merged with a weighted reservoir
// union: the number of tuples taken from each worker follows the
// multivariate hypergeometric law on the workers' group populations,
// which makes the merged sample a uniform without-replacement sample of
// the whole group — the same distribution the sequential scan produces.
//
// The result is deterministic for a fixed (seed, workers) pair: worker
// RNGs are derived from the seed and the worker ordinal, shards are
// contiguous row ranges, and the merge iterates groups in sorted key
// order. Different worker counts produce different (but equally valid)
// samples. workers <= 1 reproduces the sequential Materialize exactly.
func MaterializeParallel(rel *engine.Relation, g *Grouping, cube *datacube.Cube, alloc *Allocation, seed int64, workers int) (*sample.Stratified[engine.Row], error) {
	if seed == 0 {
		seed = 1
	}
	if workers <= 1 {
		return Materialize(rel, g, cube, alloc, rand.New(rand.NewSource(seed)))
	}
	rows := rel.Rows()
	shards := shardBounds(len(rows), workers)
	if len(shards) <= 1 {
		return Materialize(rel, g, cube, alloc, rand.New(rand.NewSource(seed)))
	}

	populations := make(map[string]int64)
	cube.FinestGroups(func(key string, n int64) { populations[key] = n })
	targets := alloc.IntegerTargets(populations)

	// Per-worker scan: one reservoir per targeted group, capacity equal
	// to the full group target so the shard sample never under-covers
	// the merge's demand (the merge draws at most min(target, seen_w)
	// tuples from worker w).
	perWorker := make([]map[string]*workerStratum, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for w, bounds := range shards {
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(seed, w)))
			reservoirs := make(map[string]*sample.Reservoir[engine.Row])
			for _, row := range rows[start:end] {
				key := g.Key(row)
				size, ok := targets[key]
				if !ok || size <= 0 {
					continue
				}
				r := reservoirs[key]
				if r == nil {
					var err error
					r, err = sample.NewReservoir[engine.Row](size, rng)
					if err != nil {
						errs[w] = err
						return
					}
					reservoirs[key] = r
				}
				r.Offer(row)
			}
			out := make(map[string]*workerStratum, len(reservoirs))
			for key, r := range reservoirs {
				out[key] = &workerStratum{items: r.Items(), seen: r.Seen()}
			}
			perWorker[w] = out
		}(w, bounds[0], bounds[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	mergeRng := rand.New(rand.NewSource(workerSeed(seed, -2)))
	st := sample.NewStratified[engine.Row]()
	keys := make([]string, 0, len(populations))
	for key := range populations {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		stratum := &sample.Stratum[engine.Row]{Key: key, Population: populations[key]}
		if size := targets[key]; size > 0 {
			items, err := mergeWorkerStrata(key, perWorker, size, mergeRng)
			if err != nil {
				return nil, err
			}
			stratum.Items = items
		}
		st.Put(stratum)
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// mergeWorkerStrata draws a uniform sample of up to target tuples for
// one group from the per-worker reservoir samples. The per-worker draw
// counts follow the multivariate hypergeometric distribution over the
// workers' group populations (sampled by sequential
// proportional-to-remaining selection), and each worker contributes that
// many distinct tuples chosen uniformly from its reservoir.
func mergeWorkerStrata(key string, perWorker []map[string]*workerStratum, target int, rng *rand.Rand) ([]engine.Row, error) {
	var parts []*workerStratum
	var total int64
	for _, m := range perWorker {
		if ws, ok := m[key]; ok {
			parts = append(parts, ws)
			total += ws.seen
		}
	}
	if len(parts) == 0 {
		return nil, nil
	}
	draw := int64(target)
	if draw > total {
		draw = total
	}

	remaining := make([]int64, len(parts))
	for i, ws := range parts {
		remaining[i] = ws.seen
	}
	counts := make([]int64, len(parts))
	left := total
	for d := int64(0); d < draw; d++ {
		pick := rng.Int63n(left)
		for i := range remaining {
			if pick < remaining[i] {
				counts[i]++
				remaining[i]--
				break
			}
			pick -= remaining[i]
		}
		left--
	}

	out := make([]engine.Row, 0, draw)
	for i, ws := range parts {
		k := int(counts[i])
		if k == 0 {
			continue
		}
		if k > len(ws.items) {
			// Cannot happen: the reservoir holds min(target, seen)
			// items and the hypergeometric draw allots at most that.
			return nil, fmt.Errorf("core: merge of group %q demands %d tuples from a worker sample of %d", key, k, len(ws.items))
		}
		for _, idx := range sample.SampleWithoutReplacement(len(ws.items), k, rng) {
			out = append(out, ws.items[idx])
		}
	}
	return out, nil
}

// BuildParallel is Build with both passes parallelized: the data-cube
// pre-scan and the reservoir materialization are each sharded across the
// given number of workers. Deterministic for a fixed (seed, workers).
func BuildParallel(rel *engine.Relation, g *Grouping, strategy Strategy, x int, seed int64, workers int) (*sample.Stratified[engine.Row], *Allocation, error) {
	cube, err := BuildCubeParallel(rel, g, workers)
	if err != nil {
		return nil, nil, err
	}
	alloc, err := Allocate(strategy, cube, x)
	if err != nil {
		return nil, nil, err
	}
	st, err := MaterializeParallel(rel, g, cube, alloc, seed, workers)
	if err != nil {
		return nil, nil, err
	}
	return st, alloc, nil
}
