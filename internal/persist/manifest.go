package persist

import (
	"fmt"
)

// Replication read hooks. The Manager already owns the generation
// sequence that makes snapshot+segment shipping safe (the snapshot of
// generation S covers exactly the records in segments < S); these
// methods expose that sequence read-only so a replication service can
// describe the directory (Manifest), bound live reads at the durable
// watermark (SegmentStatus), and let followers walk closed segments to
// their intact end.

// SegmentInfo describes one WAL segment for replication: its intact
// byte length (always a frame boundary) and record count. For the
// current segment both track the durable watermark, not the raw file
// size.
type SegmentInfo struct {
	Gen     uint64 `json:"gen"`
	Size    int64  `json:"size"`
	Records int64  `json:"records"`
}

// Manifest is the replication view of a data directory: every snapshot
// generation on disk, every shippable WAL segment, and the live
// segment's durable offset. A follower bootstraps from the newest
// snapshot S and tails segments >= S in ascending generation order.
type Manifest struct {
	Snapshots      []uint64      `json:"snapshots"`
	Segments       []SegmentInfo `json:"segments"`
	CurrentGen     uint64        `json:"current_gen"`
	CurrentOffset  int64         `json:"current_offset"`
	CurrentRecords int64         `json:"current_records"`
}

// ListSegments returns the sorted generations of the WAL segments in a
// directory; followers use it to resume from their own shipped files.
func ListSegments(dir string) ([]uint64, error) { return listGens(dir, "wal-") }

// ListSnapshots returns the sorted generations of the snapshots in a
// directory.
func ListSnapshots(dir string) ([]uint64, error) { return listGens(dir, "snap-") }

// TotalRecords sums the record counts of every segment at or above gen;
// followers use it against their own applied counts for exact lag.
func (mf *Manifest) TotalRecords(fromGen uint64) int64 {
	var n int64
	for _, s := range mf.Segments {
		if s.Gen >= fromGen {
			n += s.Records
		}
	}
	return n
}

// Manifest assembles the current replication manifest. The listing and
// any closed-segment scans happen outside the mutation mutex, so a
// rotation racing the call yields a slightly stale but still consistent
// view (the next call observes the new generation).
func (m *Manager) Manifest() (*Manifest, error) {
	m.mu.Lock()
	curGen, wal := m.gen, m.wal
	m.mu.Unlock()
	curOff := wal.Watermark()
	curRecords := int64(wal.Seq())

	snaps, err := listGens(m.dir, "snap-")
	if err != nil {
		return nil, err
	}
	wals, err := listGens(m.dir, "wal-")
	if err != nil {
		return nil, err
	}
	mf := &Manifest{
		Snapshots:      snaps,
		CurrentGen:     curGen,
		CurrentOffset:  curOff,
		CurrentRecords: curRecords,
	}
	for _, gen := range wals {
		switch {
		case gen == curGen:
			mf.Segments = append(mf.Segments, SegmentInfo{Gen: gen, Size: curOff, Records: curRecords})
		case gen > curGen:
			// A rotation raced the listing; report the view as of curGen.
		default:
			si, err := m.closedSegment(gen)
			if err != nil {
				continue // pruned between the listing and the scan
			}
			mf.Segments = append(mf.Segments, si)
		}
	}
	return mf, nil
}

// closedSegment returns the cached shape of a rotated segment, scanning
// it once for segments that predate this Manager (a previous process's
// leftovers, bounded by the retention policy).
func (m *Manager) closedSegment(gen uint64) (SegmentInfo, error) {
	m.mu.Lock()
	si, ok := m.closedSegs[gen]
	m.mu.Unlock()
	if ok {
		return si, nil
	}
	records, size, err := ScanWAL(WALPath(m.dir, gen))
	if err != nil {
		return SegmentInfo{}, err
	}
	si = SegmentInfo{Gen: gen, Size: size, Records: records}
	m.mu.Lock()
	m.closedSegs[gen] = si
	m.mu.Unlock()
	return si, nil
}

// SegmentStatus reports how far a replication read of segment gen may
// safely go: the durable watermark for the live segment, the intact
// length for a closed one. current reports whether gen is still being
// appended to, and currentGen is the manager's generation at the time of
// the call (a follower that has consumed a closed segment to its
// watermark advances to the next generation).
func (m *Manager) SegmentStatus(gen uint64) (watermark int64, current bool, currentGen uint64, err error) {
	m.mu.Lock()
	curGen, wal := m.gen, m.wal
	m.mu.Unlock()
	if gen == curGen {
		return wal.Watermark(), true, curGen, nil
	}
	if gen > curGen {
		return 0, false, curGen, fmt.Errorf("persist: segment %x is beyond the current generation %x", gen, curGen)
	}
	si, err := m.closedSegment(gen)
	if err != nil {
		return 0, false, curGen, err
	}
	return si.Size, false, curGen, nil
}
