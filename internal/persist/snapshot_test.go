package persist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/approxdb/congress/internal/engine"
)

func testState(marker string) *State {
	return &State{Tables: []TableState{{
		Name: "t",
		Cols: []engine.Column{{Name: "x", Kind: engine.KindString}},
		Rows: []engine.Row{{engine.NewString(marker)}},
	}}}
}

func stateMarker(st *State) string {
	if st == nil || len(st.Tables) == 0 || len(st.Tables[0].Rows) == 0 {
		return ""
	}
	return st.Tables[0].Rows[0][0].S
}

func TestSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 7, testState("alpha")); err != nil {
		t.Fatal(err)
	}
	st, err := ReadSnapshot(SnapPath(dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	if stateMarker(st) != "alpha" {
		t.Fatalf("roundtrip lost state: %+v", st)
	}
	// No temp file remains.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestLoadNewestSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 3, testState("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, 5, testState("new")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot's payload: a bit flip fails the CRC.
	path := SnapPath(dir, 5)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, gen, skipped, err := LoadNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 || skipped != 1 || stateMarker(st) != "old" {
		t.Fatalf("gen=%d skipped=%d marker=%q, want the older valid snapshot", gen, skipped, stateMarker(st))
	}
}

func TestLoadNewestTruncatedSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 1, testState("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, 2, testState("cut")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that left a half-written file under a snap name
	// (only possible if rename ordering is subverted; recovery must
	// still cope).
	path := SnapPath(dir, 2)
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	st, gen, skipped, err := LoadNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || skipped != 1 || stateMarker(st) != "ok" {
		t.Fatalf("gen=%d skipped=%d marker=%q", gen, skipped, stateMarker(st))
	}
}

func TestLoadNewestEmptyDir(t *testing.T) {
	st, gen, skipped, err := LoadNewestSnapshot(t.TempDir())
	if err != nil || st != nil || gen != 0 || skipped != 0 {
		t.Fatalf("empty dir: st=%v gen=%d skipped=%d err=%v", st, gen, skipped, err)
	}
}

func TestSaveStateSupersedesExistingFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 9, testState("old")); err != nil {
		t.Fatal(err)
	}
	if err := SaveState(dir, testState("saved")); err != nil {
		t.Fatal(err)
	}
	st, gen, _, err := LoadNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gen <= 9 || stateMarker(st) != "saved" {
		t.Fatalf("gen=%d marker=%q, want a newer generation carrying the save", gen, stateMarker(st))
	}
}

func TestParseGen(t *testing.T) {
	if gen, ok := parseGen("snap-000000000000000a", "snap-"); !ok || gen != 10 {
		t.Fatalf("gen=%d ok=%v", gen, ok)
	}
	for _, bad := range []string{"snap-xyz", "wal-0001", "snapshot", ".snap-0001.tmp"} {
		if _, ok := parseGen(bad, "snap-"); ok {
			t.Errorf("%q parsed as a snapshot", bad)
		}
	}
}

func TestManagerLogRotatePruneRecover(t *testing.T) {
	dir := t.TempDir()
	// The "warehouse": a mutable row list the export closure snapshots.
	var rows []engine.Row
	export := func() (*State, error) {
		st := &State{Tables: []TableState{{
			Name: "t",
			Cols: []engine.Column{{Name: "x", Kind: engine.KindInt}},
			Rows: append([]engine.Row(nil), rows...),
		}}}
		return st, nil
	}
	m, err := Start(dir, Options{Mode: SyncNone, SnapshotInterval: -1, SnapshotEvery: -1}, export)
	if err != nil {
		t.Fatal(err)
	}
	logInsert := func(i int64) {
		t.Helper()
		rec := &Record{Kind: RecInsert, Table: "t", Row: engine.Row{engine.NewInt(i)}}
		if err := m.Log(rec, func() error {
			rows = append(rows, rec.Row)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 10; i++ {
		logInsert(i)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := int64(10); i < 15; i++ {
		logInsert(i)
	}
	st := m.Stats()
	if st.InsertsSinceSnap != 5 {
		t.Fatalf("inserts since snapshot %d, want 5", st.InsertsSinceSnap)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Snapshot == nil {
		t.Fatal("no snapshot recovered")
	}
	// Close wrote a final snapshot, so the full state is in it and the
	// newest WAL segment is empty.
	if got := len(info.Snapshot.Tables[0].Rows); got != 15 {
		t.Fatalf("snapshot carries %d rows, want 15", got)
	}
	if len(info.Records) != 0 {
		t.Fatalf("replaying %d records after a clean close, want 0", len(info.Records))
	}
	if info.TruncatedBytes != 0 || info.SkippedSegments != 0 {
		t.Fatalf("clean dir reported truncation: %+v", info)
	}

	// Pruning retained at most KeepSnapshots (default 2) snapshots and no
	// WAL older than the oldest kept snapshot.
	snaps, _ := listGens(dir, "snap-")
	if len(snaps) > 2 {
		t.Fatalf("%d snapshots retained, want <= 2", len(snaps))
	}
	wals, _ := listGens(dir, "wal-")
	for _, g := range wals {
		if g < snaps[0] {
			t.Fatalf("wal generation %d predates oldest snapshot %d", g, snaps[0])
		}
	}
}

func TestRecoverReplaysWALSuffixAfterKill(t *testing.T) {
	dir := t.TempDir()
	var rows []engine.Row
	export := func() (*State, error) {
		return &State{Tables: []TableState{{
			Name: "t",
			Cols: []engine.Column{{Name: "x", Kind: engine.KindInt}},
			Rows: append([]engine.Row(nil), rows...),
		}}}, nil
	}
	m, err := Start(dir, Options{Mode: SyncNone, SnapshotInterval: -1, SnapshotEvery: -1}, export)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		rec := &Record{Kind: RecInsert, Table: "t", Row: engine.Row{engine.NewInt(i)}}
		if err := m.Log(rec, func() error { rows = append(rows, rec.Row); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate a crash. The Start snapshot is empty and all 8
	// inserts live in the WAL.
	info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Snapshot == nil || len(info.Snapshot.Tables[0].Rows) != 0 {
		t.Fatalf("want the empty start snapshot, got %+v", info.Snapshot)
	}
	if len(info.Records) != 8 {
		t.Fatalf("replaying %d records, want 8", len(info.Records))
	}
	for i, rec := range info.Records {
		if rec.Kind != RecInsert || rec.Row[0].I != int64(i) {
			t.Fatalf("record %d out of order: %+v", i, rec)
		}
	}
	m.Close() // release the file handle; test already asserted pre-close state
}

func TestRecoverStopsAtTornEarlierSegment(t *testing.T) {
	dir := t.TempDir()
	// Segment 1: two intact records then a torn tail. Segment 2: intact.
	// Replay must stop at the tear — records in segment 2 were logged
	// after the lost ones.
	mkSeg := func(gen uint64, vals []int64) string {
		t.Helper()
		w, err := CreateWAL(WALPath(dir, gen), SyncNone, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			payload, _ := EncodeRecord(&Record{Kind: RecInsert, Table: "t", Row: engine.Row{engine.NewInt(v)}})
			if _, err := w.Append(payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return WALPath(dir, gen)
	}
	seg1 := mkSeg(1, []int64{1, 2, 3})
	mkSeg(2, []int64{4, 5})
	fi, _ := os.Stat(seg1)
	if err := os.Truncate(seg1, fi.Size()-2); err != nil {
		t.Fatal(err)
	}

	info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Records) != 2 {
		t.Fatalf("replayed %d records, want 2 (stop at the tear)", len(info.Records))
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("no truncation reported")
	}
	if info.SkippedSegments != 1 {
		t.Fatalf("skipped %d segments, want 1", info.SkippedSegments)
	}
}

func TestRecoverMissingDir(t *testing.T) {
	info, err := Recover(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Snapshot != nil || len(info.Records) != 0 || info.MaxGen != 0 {
		t.Fatalf("missing dir recovered non-empty: %+v", info)
	}
}
