package persist

import (
	"errors"
	"os"
	"testing"

	"github.com/approxdb/congress/internal/engine"
)

// startTestManager starts a Manager over dir with background triggers
// disabled, so generations only advance when the test asks.
func startTestManager(t *testing.T, dir string) *Manager {
	t.Helper()
	m, err := Start(dir, Options{
		Mode:             SyncAlways,
		SnapshotInterval: -1,
		SnapshotEvery:    -1,
	}, func() (*State, error) { return &State{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func logInserts(t *testing.T, m *Manager, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := &Record{Kind: RecInsert, Table: "t", Row: engine.Row{engine.NewInt(int64(i))}}
		if err := m.Log(rec, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
}

func TestManifestReflectsRotation(t *testing.T) {
	dir := t.TempDir()
	m := startTestManager(t, dir)
	defer m.Close()
	gen := m.Stats().Generation

	logInserts(t, m, 5)
	mf, err := m.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if mf.CurrentGen != gen || mf.CurrentRecords != 5 {
		t.Fatalf("manifest gen=%d records=%d, want gen=%d records=5", mf.CurrentGen, mf.CurrentRecords, gen)
	}
	if mf.CurrentOffset <= SegmentHeaderSize {
		t.Fatalf("current offset %d not past the header", mf.CurrentOffset)
	}
	if len(mf.Snapshots) == 0 || mf.Snapshots[len(mf.Snapshots)-1] != gen {
		t.Fatalf("snapshots %v missing start snapshot %d", mf.Snapshots, gen)
	}

	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	logInserts(t, m, 3)
	mf, err = m.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if mf.CurrentGen != gen+1 || mf.CurrentRecords != 3 {
		t.Fatalf("post-rotation gen=%d records=%d, want gen=%d records=3", mf.CurrentGen, mf.CurrentRecords, gen+1)
	}
	var closed *SegmentInfo
	for i := range mf.Segments {
		if mf.Segments[i].Gen == gen {
			closed = &mf.Segments[i]
		}
	}
	if closed == nil || closed.Records != 5 {
		t.Fatalf("closed segment %d missing or wrong record count: %+v", gen, mf.Segments)
	}
	if got := mf.TotalRecords(gen); got != 8 {
		t.Fatalf("TotalRecords(%d) = %d, want 8", gen, got)
	}
	if got := mf.TotalRecords(gen + 1); got != 3 {
		t.Fatalf("TotalRecords(%d) = %d, want 3", gen+1, got)
	}
}

func TestSegmentStatusLiveClosedFuturePruned(t *testing.T) {
	dir := t.TempDir()
	m := startTestManager(t, dir)
	defer m.Close()
	gen := m.Stats().Generation

	logInserts(t, m, 4)
	wm, current, curGen, err := m.SegmentStatus(gen)
	if err != nil || !current || curGen != gen {
		t.Fatalf("live status: wm=%d current=%v curGen=%d err=%v", wm, current, curGen, err)
	}
	if wm <= SegmentHeaderSize {
		t.Fatalf("live watermark %d not past the header", wm)
	}

	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	closedWM, current, curGen, err := m.SegmentStatus(gen)
	if err != nil || current || curGen != gen+1 {
		t.Fatalf("closed status: current=%v curGen=%d err=%v", current, curGen, err)
	}
	if closedWM != wm {
		t.Fatalf("closed watermark %d != final live watermark %d", closedWM, wm)
	}

	if _, _, _, err := m.SegmentStatus(gen + 10); err == nil {
		t.Fatal("future generation accepted")
	}
	// A generation below current with no file on disk reads as pruned.
	if _, _, _, err := m.SegmentStatus(0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("pruned segment error = %v, want os.ErrNotExist", err)
	}
}

func TestScanWALExcludesTornTail(t *testing.T) {
	path, offsets := writeTestWAL(t, 10)
	records, size, err := ScanWAL(path)
	if err != nil || records != 10 || size != offsets[10] {
		t.Fatalf("clean scan: records=%d size=%d err=%v, want 10/%d", records, size, err, offsets[10])
	}
	// Tear the last frame: the scan reports the intact prefix without
	// touching the file.
	if err := os.Truncate(path, offsets[9]+3); err != nil {
		t.Fatal(err)
	}
	records, size, err = ScanWAL(path)
	if err != nil || records != 9 || size != offsets[9] {
		t.Fatalf("torn scan: records=%d size=%d err=%v, want 9/%d", records, size, err, offsets[9])
	}
	if fi, _ := os.Stat(path); fi.Size() != offsets[9]+3 {
		t.Fatalf("ScanWAL mutated the file to %d bytes", fi.Size())
	}
}

func TestCreateSegmentFile(t *testing.T) {
	path := t.TempDir() + "/wal-0001"
	f, err := CreateSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	n, truncated, err := ReadWAL(path, func([]byte) error { return nil })
	if err != nil || n != 0 || truncated != 0 {
		t.Fatalf("fresh segment reads n=%d truncated=%d err=%v", n, truncated, err)
	}
	if _, err := CreateSegmentFile(path); err == nil {
		t.Fatal("CreateSegmentFile overwrote an existing segment")
	}
}
