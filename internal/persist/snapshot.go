package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/engine"
)

// Snapshot file layout:
//
//	8  bytes  magic "CGRSNP01"
//	4  bytes  format version (little endian)
//	8  bytes  payload length
//	N  bytes  gob-encoded State
//	4  bytes  CRC32C of the payload
//
// The file is written to a dot-prefixed temp name, fsynced, and
// atomically renamed into place, so a crash mid-write can never leave a
// half-written file under a snap-* name.

const (
	snapMagic   = "CGRSNP01"
	snapVersion = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// State is the complete persisted warehouse: base relations and every
// synopsis's exported state. Sample relations (cs_*, csn_*, csk_*) are
// not stored — they are re-materialized from the synopsis states on
// restore.
type State struct {
	Tables   []TableState
	Synopses []*aqua.SynopsisState
}

// TableState is one base relation.
type TableState struct {
	Name string
	Cols []engine.Column
	Rows []engine.Row
}

// SnapPath returns the snapshot filename for a generation.
func SnapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x", gen))
}

// WALPath returns the WAL segment filename for a generation.
func WALPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x", gen))
}

// parseGen extracts the generation from a "snap-<hex>" or "wal-<hex>"
// basename.
func parseGen(base, prefix string) (uint64, bool) {
	if !strings.HasPrefix(base, prefix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimPrefix(base, prefix), 16, 64)
	return gen, err == nil
}

// listGens returns the sorted generations of files with the given
// prefix ("snap-" or "wal-") in dir.
func listGens(dir, prefix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if gen, ok := parseGen(e.Name(), prefix); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// WriteSnapshot writes the state as snapshot generation gen, returning
// the file size. The write is atomic: a temp file is fully written and
// fsynced before being renamed to the final name, and the directory is
// fsynced after the rename.
func WriteSnapshot(dir string, gen uint64, st *State) (int64, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return 0, fmt.Errorf("persist: encoding snapshot: %w", err)
	}

	header := make([]byte, 0, 20)
	header = append(header, snapMagic...)
	header = binary.LittleEndian.AppendUint32(header, snapVersion)
	header = binary.LittleEndian.AppendUint64(header, uint64(payload.Len()))
	trailer := binary.LittleEndian.AppendUint32(nil, crc32.Checksum(payload.Bytes(), castagnoli))

	final := SnapPath(dir, gen)
	tmp := filepath.Join(dir, "."+filepath.Base(final)+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	cleanup := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	for _, chunk := range [][]byte{header, payload.Bytes(), trailer} {
		if _, err := f.Write(chunk); err != nil {
			return cleanup(fmt.Errorf("persist: writing snapshot: %w", err))
		}
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("persist: syncing snapshot: %w", err))
	}
	size := int64(len(header) + payload.Len() + len(trailer))
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(dir)
	return size, nil
}

// syncDir fsyncs a directory so a rename is durable; errors are ignored
// (some filesystems refuse directory fsync) — the rename itself already
// ordered the data writes.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// ReadSnapshot reads and verifies one snapshot file.
func ReadSnapshot(path string) (*State, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapMagic)+12+4 {
		return nil, fmt.Errorf("persist: snapshot %s too short (%d bytes)", path, len(raw))
	}
	if string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("persist: snapshot %s has bad magic", path)
	}
	raw = raw[len(snapMagic):]
	version := binary.LittleEndian.Uint32(raw)
	if version != snapVersion {
		return nil, fmt.Errorf("persist: snapshot %s has unsupported version %d", path, version)
	}
	n := binary.LittleEndian.Uint64(raw[4:])
	raw = raw[12:]
	if uint64(len(raw)) != n+4 {
		return nil, fmt.Errorf("persist: snapshot %s payload length %d disagrees with file size", path, n)
	}
	payload, trailer := raw[:n], raw[n:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("persist: snapshot %s fails checksum", path)
	}
	st := &State{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("persist: decoding snapshot %s: %w", path, err)
	}
	return st, nil
}

// SaveState writes a one-shot snapshot of st into dir (creating it if
// needed) at a generation above every existing file, so a later
// Recover loads it and replays nothing. It is the standalone
// Warehouse.Save path — no WAL, no manager.
func SaveState(dir string, st *State) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	max, err := maxGeneration(dir)
	if err != nil {
		return err
	}
	_, err = WriteSnapshot(dir, max+1, st)
	return err
}

// LoadNewestSnapshot finds the newest readable, checksum-valid snapshot
// in dir. It returns (nil, 0, 0, nil) when no snapshot exists; corrupt
// or unreadable snapshots are skipped (counted in skipped) and an older
// valid one is used instead.
func LoadNewestSnapshot(dir string) (st *State, gen uint64, skipped int, err error) {
	gens, err := listGens(dir, "snap-")
	if err != nil {
		return nil, 0, 0, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		st, rerr := ReadSnapshot(SnapPath(dir, gens[i]))
		if rerr == nil {
			return st, gens[i], skipped, nil
		}
		skipped++
	}
	return nil, 0, skipped, nil
}
