// Package persist makes the warehouse durable: versioned, checksummed
// binary snapshots of the full warehouse state plus an append-only,
// CRC-framed write-ahead log of inserts and DDL. A Manager ties the two
// together — apply-then-log mutations under one mutex (so a snapshot is
// always an exact cut of the logged history), group-commit fsync
// batching, background snapshotting, and WAL compaction by generation.
//
// On-disk layout inside a data directory:
//
//	snap-<gen>   snapshot files (magic, version, gob payload, CRC32C)
//	wal-<gen>    WAL segments (magic, then CRC32C-framed records)
//
// Snapshots and WAL segments share one generation sequence with the
// invariant: the snapshot of generation S captures every record in WAL
// segments of generation < S. Recovery therefore loads the newest valid
// snapshot S and replays segments >= S in ascending order; a torn tail
// in the final segment is truncated at the first bad checksum.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/engine"
)

// RecordKind discriminates WAL records.
type RecordKind uint8

// WAL record kinds.
const (
	// RecInsert is one row inserted into a base table.
	RecInsert RecordKind = 1
	// RecCreateTable registers a new empty table.
	RecCreateTable RecordKind = 2
	// RecBuildSynopsis builds a synopsis from the table contents at
	// replay position.
	RecBuildSynopsis RecordKind = 3
	// RecUpdateScaleFactor overrides one group's scale factor.
	RecUpdateScaleFactor RecordKind = 4
	// RecRefreshSynopsis re-materializes a synopsis from its maintainer.
	RecRefreshSynopsis RecordKind = 5
	// RecAttachRelation registers a bulk-loaded relation: schema plus
	// every row. Replayed ahead of any synopsis build over the table, so
	// live followers see attachments immediately instead of waiting for
	// the next snapshot rotation.
	RecAttachRelation RecordKind = 6
	// RecBuildJoinSynopsis materializes a star join and builds a synopsis
	// over it from the joined tables' contents at replay position (the
	// join is deterministic: fact-order iteration with unique-FK dimension
	// lookups, and the build seed rides in the config).
	RecBuildJoinSynopsis RecordKind = 7
)

// Record is one logged warehouse mutation. Kind selects which fields
// are meaningful.
type Record struct {
	Kind  RecordKind
	Table string

	// Row is the inserted tuple (RecInsert).
	Row engine.Row
	// Cols is the new table's schema (RecCreateTable,
	// RecAttachRelation).
	Cols []engine.Column
	// Rows is the attached relation's full contents (RecAttachRelation).
	Rows []engine.Row
	// Synopsis is the build configuration (RecBuildSynopsis,
	// RecBuildJoinSynopsis).
	Synopsis *aqua.Config
	// Join is the star-join shape (RecBuildJoinSynopsis).
	Join *aqua.JoinSpec
	// Rewrite, GroupKey, SF parameterize RecUpdateScaleFactor.
	Rewrite  int
	GroupKey string
	SF       float64
}

// Inserts dominate the log, so they use a compact hand-rolled binary
// encoding; the rare DDL records are gob-encoded (self-describing, at
// ~100 bytes of type overhead each). The first payload byte is the
// record kind either way.

// EncodeRecord serializes a record into a WAL payload.
func EncodeRecord(rec *Record) ([]byte, error) {
	if rec.Kind == RecInsert {
		return encodeInsert(rec)
	}
	var buf bytes.Buffer
	buf.WriteByte(byte(rec.Kind))
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("persist: encoding %d record: %w", rec.Kind, err)
	}
	return buf.Bytes(), nil
}

// DecodeRecord deserializes a WAL payload.
func DecodeRecord(payload []byte) (*Record, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("persist: empty record")
	}
	if RecordKind(payload[0]) == RecInsert {
		return decodeInsert(payload)
	}
	rec := &Record{}
	if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(rec); err != nil {
		return nil, fmt.Errorf("persist: decoding record: %w", err)
	}
	if rec.Kind != RecordKind(payload[0]) {
		return nil, fmt.Errorf("persist: record kind byte %d disagrees with body kind %d", payload[0], rec.Kind)
	}
	switch rec.Kind {
	case RecCreateTable, RecBuildSynopsis, RecUpdateScaleFactor, RecRefreshSynopsis,
		RecAttachRelation, RecBuildJoinSynopsis:
		return rec, nil
	default:
		return nil, fmt.Errorf("persist: unknown record kind %d", rec.Kind)
	}
}

func encodeInsert(rec *Record) ([]byte, error) {
	buf := make([]byte, 1, 64)
	buf[0] = byte(RecInsert)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Table)))
	buf = append(buf, rec.Table...)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Row)))
	for _, v := range rec.Row {
		buf = append(buf, byte(v.K))
		switch v.K {
		case engine.KindNull:
		case engine.KindBool, engine.KindInt, engine.KindDate:
			buf = binary.AppendVarint(buf, v.I)
		case engine.KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case engine.KindString:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		default:
			return nil, fmt.Errorf("persist: cannot encode value kind %v", v.K)
		}
	}
	return buf, nil
}

func decodeInsert(payload []byte) (*Record, error) {
	p := payload[1:]
	table, p, err := decodeString(p)
	if err != nil {
		return nil, fmt.Errorf("persist: insert record table: %w", err)
	}
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > uint64(len(p)) {
		return nil, fmt.Errorf("persist: insert record arity header corrupt")
	}
	p = p[sz:]
	row := make(engine.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(p) == 0 {
			return nil, fmt.Errorf("persist: insert record truncated at value %d", i)
		}
		k := engine.Kind(p[0])
		p = p[1:]
		var v engine.Value
		v.K = k
		switch k {
		case engine.KindNull:
		case engine.KindBool, engine.KindInt, engine.KindDate:
			iv, sz := binary.Varint(p)
			if sz <= 0 {
				return nil, fmt.Errorf("persist: insert record int value %d corrupt", i)
			}
			v.I = iv
			p = p[sz:]
		case engine.KindFloat:
			if len(p) < 8 {
				return nil, fmt.Errorf("persist: insert record float value %d truncated", i)
			}
			v.F = math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
		case engine.KindString:
			var s string
			s, p, err = decodeString(p)
			if err != nil {
				return nil, fmt.Errorf("persist: insert record string value %d: %w", i, err)
			}
			v.S = s
		default:
			return nil, fmt.Errorf("persist: insert record value %d has unknown kind %d", i, k)
		}
		row = append(row, v)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("persist: insert record has %d trailing bytes", len(p))
	}
	return &Record{Kind: RecInsert, Table: table, Row: row}, nil
}

func decodeString(p []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > uint64(len(p)-sz) {
		return "", nil, fmt.Errorf("length header corrupt")
	}
	return string(p[sz : sz+int(n)]), p[sz+int(n):], nil
}
