package persist

import (
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/approxdb/congress/internal/metrics"
)

// Options configures a Manager.
type Options struct {
	// Mode is the WAL fsync policy (default SyncAlways).
	Mode SyncMode
	// SyncInterval is the fsync period for SyncInterval (default 50ms).
	SyncInterval time.Duration
	// SnapshotInterval triggers a background snapshot this often
	// (default 5m; negative disables the timer).
	SnapshotInterval time.Duration
	// SnapshotEvery triggers a background snapshot after this many
	// logged inserts (default 100000; negative disables).
	SnapshotEvery int64
	// KeepSnapshots is how many snapshot generations to retain
	// (default 2; the WAL segments an old retained snapshot still needs
	// are retained with it).
	KeepSnapshots int
	// Telemetry receives persist_* counters (nil is allowed).
	Telemetry *metrics.Telemetry
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	if o.SnapshotInterval == 0 {
		o.SnapshotInterval = 5 * time.Minute
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 100000
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o
}

// Manager owns a data directory: it logs mutations to the current WAL
// segment, writes snapshots that compact the log, and prunes files no
// retained snapshot needs.
//
// The manager mutex serializes every logged mutation against snapshot
// cuts: a mutation is applied and its record appended to the segment
// under the same critical section that a snapshot uses to export state
// and rotate segments. The invariant that makes recovery exact: the
// snapshot of generation S contains every mutation logged to segments
// of generation < S and none from segment S.
type Manager struct {
	dir  string
	opts Options
	tel  *metrics.Telemetry

	// export captures the warehouse state; called under mu, so it must
	// deep-copy anything that keeps mutating (the aqua/core export
	// paths do).
	export func() (*State, error)

	mu               sync.Mutex
	wal              *WAL
	gen              uint64
	insertsSinceSnap int64
	// closedSegs caches the record count and intact length of rotated
	// segments for Manifest/SegmentStatus; entries for segments that
	// predate this Manager are filled lazily by scanning.
	closedSegs map[uint64]SegmentInfo

	snapMu sync.Mutex // serializes whole snapshots, not the cut

	snapCh chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// Start opens (creating if needed) a data directory for logging, writes
// a fresh snapshot of the current exported state, and launches the
// background snapshotter. The caller is responsible for having already
// recovered dir's prior contents into the warehouse (see Recover);
// Start's initial snapshot then supersedes them.
func Start(dir string, opts Options, export func() (*State, error)) (*Manager, error) {
	if export == nil {
		return nil, fmt.Errorf("persist: Start needs an export function")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	maxGen, err := maxGeneration(dir)
	if err != nil {
		return nil, err
	}
	gen := maxGen + 1
	wal, err := CreateWAL(WALPath(dir, gen), opts.Mode, opts.SyncInterval, opts.Telemetry)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		dir:        dir,
		opts:       opts,
		tel:        opts.Telemetry,
		export:     export,
		wal:        wal,
		gen:        gen,
		closedSegs: make(map[uint64]SegmentInfo),
		snapCh:     make(chan struct{}, 1),
		stop:       make(chan struct{}),
	}
	// The initial snapshot carries the recovered (or fresh) state and
	// makes every older snapshot and segment prunable. The manager is
	// not published yet, so nothing can log concurrently with this
	// export; callers enabling persistence on a live warehouse must
	// still barrier their own mutations (see Warehouse.EnablePersistence).
	start := time.Now()
	st, err := export()
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("persist: exporting state: %w", err)
	}
	if err := m.writeSnapshot(gen, st, start); err != nil {
		wal.Close()
		return nil, err
	}
	m.wg.Add(1)
	go m.snapshotLoop()
	return m, nil
}

// maxGeneration returns the highest generation among all snap-* and
// wal-* files in dir (0 if none).
func maxGeneration(dir string) (uint64, error) {
	var max uint64
	for _, prefix := range []string{"snap-", "wal-"} {
		gens, err := listGens(dir, prefix)
		if err != nil {
			return 0, err
		}
		if len(gens) > 0 && gens[len(gens)-1] > max {
			max = gens[len(gens)-1]
		}
	}
	return max, nil
}

// Dir returns the managed data directory.
func (m *Manager) Dir() string { return m.dir }

// Log applies a mutation and appends its record, atomically with
// respect to snapshot cuts: either the snapshot contains the applied
// mutation, or the record lands in a segment the snapshot does not
// cover — never both, never neither. The append reaches the OS before
// Log returns; under SyncAlways, Log additionally blocks until the
// record is fsynced (batched with concurrent committers).
//
// apply runs under the manager mutex and must not call back into the
// manager. If apply fails nothing is logged; if the append fails the
// mutation stays applied in memory and the error reports the durability
// gap.
func (m *Manager) Log(rec *Record, apply func() error) error {
	payload, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("persist: manager is closed")
	}
	if err := apply(); err != nil {
		m.mu.Unlock()
		return err
	}
	seq, werr := m.wal.Append(payload)
	wal := m.wal
	var snapDue bool
	if rec.Kind == RecInsert {
		m.insertsSinceSnap++
		snapDue = m.opts.SnapshotEvery > 0 && m.insertsSinceSnap >= m.opts.SnapshotEvery
	}
	m.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("persist: mutation applied but not logged: %w", werr)
	}
	if snapDue {
		m.RequestSnapshot()
	}
	// Wait for group commit outside the mutex so concurrent committers
	// batch into one fsync and snapshots never stall behind disk flushes.
	return wal.WaitDurable(seq)
}

// RequestSnapshot nudges the background snapshotter asynchronously;
// bursts coalesce into one snapshot. Use Snapshot for a synchronous
// write.
func (m *Manager) RequestSnapshot() {
	select {
	case m.snapCh <- struct{}{}:
	default:
	}
}

// Snapshot writes a snapshot of the current state now, rotating the WAL
// so the new snapshot compacts everything logged before it. Concurrent
// calls are serialized; mutations are only blocked for the in-memory
// state export and segment swap, not the disk write.
func (m *Manager) Snapshot() error {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("persist: manager is closed")
	}
	err := m.rotateAndSnapshotLocked()
	return err
}

// rotateAndSnapshotLocked is the shared snapshot path. It is entered
// holding m.mu (which it releases) and m.snapMu. The state export and
// the segment swap happen under the same m.mu critical section: a
// mutation logged before the cut is in the export and only in segments
// the new snapshot covers; one logged after lands in the new segment,
// which the snapshot does not cover. Exporting after releasing m.mu
// would let a racing Log land in both the export and the new snapshot's
// own segment, duplicating it on replay.
func (m *Manager) rotateAndSnapshotLocked() error {
	start := time.Now()
	newGen := m.gen + 1
	newWAL, err := CreateWAL(WALPath(m.dir, newGen), m.opts.Mode, m.opts.SyncInterval, m.tel)
	if err != nil {
		m.mu.Unlock()
		return fmt.Errorf("persist: rotating WAL: %w", err)
	}
	st, err := m.export()
	if err != nil {
		m.mu.Unlock()
		newWAL.Close()
		os.Remove(WALPath(m.dir, newGen))
		return fmt.Errorf("persist: exporting state: %w", err)
	}
	oldWAL := m.wal
	// Record the rotated segment's final shape while appends are still
	// excluded: nothing can land in oldWAL once m.wal is swapped.
	m.closedSegs[m.gen] = SegmentInfo{Gen: m.gen, Size: oldWAL.Size(), Records: int64(oldWAL.Seq())}
	m.wal = newWAL
	m.gen = newGen
	m.insertsSinceSnap = 0
	m.mu.Unlock()

	if err := oldWAL.Close(); err != nil {
		return fmt.Errorf("persist: closing rotated WAL: %w", err)
	}
	return m.writeSnapshot(newGen, st, start)
}

// writeSnapshot writes a pre-captured state as snapshot generation gen,
// then prunes. The disk write happens outside every lock but snapMu;
// the caller captured st under m.mu so the cut is exact.
func (m *Manager) writeSnapshot(gen uint64, st *State, start time.Time) error {
	size, err := WriteSnapshot(m.dir, gen, st)
	if err != nil {
		return err
	}
	m.tel.ObserveSnapshot(size, time.Since(start))
	m.prune()
	return nil
}

// prune deletes snapshots beyond the retention bound and WAL segments
// older than the oldest retained snapshot.
func (m *Manager) prune() {
	snaps, err := listGens(m.dir, "snap-")
	if err != nil || len(snaps) == 0 {
		return
	}
	keepFrom := 0
	if len(snaps) > m.opts.KeepSnapshots {
		keepFrom = len(snaps) - m.opts.KeepSnapshots
	}
	for _, gen := range snaps[:keepFrom] {
		os.Remove(SnapPath(m.dir, gen))
	}
	oldestKept := snaps[keepFrom]
	wals, err := listGens(m.dir, "wal-")
	if err != nil {
		return
	}
	for _, gen := range wals {
		if gen < oldestKept {
			os.Remove(WALPath(m.dir, gen))
			m.mu.Lock()
			delete(m.closedSegs, gen)
			m.mu.Unlock()
		}
	}
}

// snapshotLoop runs background snapshots on the insert-count trigger
// and the wall-clock timer.
func (m *Manager) snapshotLoop() {
	defer m.wg.Done()
	var tick <-chan time.Time
	if m.opts.SnapshotInterval > 0 {
		t := time.NewTicker(m.opts.SnapshotInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-m.stop:
			return
		case <-m.snapCh:
		case <-tick:
			m.mu.Lock()
			dirty := m.insertsSinceSnap > 0
			m.mu.Unlock()
			if !dirty {
				continue
			}
		}
		if err := m.Snapshot(); err != nil {
			// Background snapshot failures are not fatal: the WAL still
			// holds every mutation. The next trigger retries.
			continue
		}
	}
}

// Close drains the manager: stops the background snapshotter, writes a
// final snapshot, and closes the WAL. Closing is idempotent and safe
// against concurrent callers; the first caller wins and later ones
// return nil without re-closing. Log rejects from the moment Close
// begins, so no acknowledged mutation can land after the final
// snapshot's cut.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	close(m.stop)
	m.wg.Wait()

	// Final snapshot so the next open replays nothing. Snapshot() would
	// refuse now that closed is set, so enter the rotate path directly;
	// an in-flight Snapshot serializes with us on snapMu.
	m.snapMu.Lock()
	m.mu.Lock()
	snapErr := m.rotateAndSnapshotLocked()
	m.snapMu.Unlock()

	m.mu.Lock()
	wal := m.wal
	m.mu.Unlock()
	if err := wal.Close(); err != nil {
		return err
	}
	return snapErr
}

// Stats is a point-in-time view of the manager for diagnostics.
type Stats struct {
	Dir              string
	Generation       uint64
	InsertsSinceSnap int64
	Mode             SyncMode
	// DurableOffset is the current segment's replication watermark in
	// bytes (the length followers may safely ship).
	DurableOffset int64
	// RecordSeq is the number of records appended to the current
	// segment.
	RecordSeq int64
}

// Stats reports the manager's current generation and backlog.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	wal := m.wal
	s := Stats{
		Dir:              m.dir,
		Generation:       m.gen,
		InsertsSinceSnap: m.insertsSinceSnap,
		Mode:             m.opts.Mode,
	}
	m.mu.Unlock()
	s.DurableOffset = wal.Watermark()
	s.RecordSeq = int64(wal.Seq())
	return s
}
