package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/approxdb/congress/internal/engine"
)

func walRoundtrip(t *testing.T, mode SyncMode) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal-0001")
	w, err := CreateWAL(path, mode, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		payload := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, payload)
		seq, err := w.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	n, truncated, err := ReadWAL(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if truncated != 0 {
		t.Fatalf("clean log reported %d truncated bytes", truncated)
	}
	if n != len(want) {
		t.Fatalf("read %d records, wrote %d", n, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestWALRoundtripAllModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncInterval, SyncNone} {
		t.Run(mode.String(), func(t *testing.T) { walRoundtrip(t, mode) })
	}
}

func TestWALConcurrentAppendGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0001")
	w, err := CreateWAL(path, SyncAlways, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.WaitDurable(seq); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n, truncated, err := ReadWAL(path, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter || truncated != 0 {
		t.Fatalf("read %d records (%d truncated bytes), want %d clean", n, truncated, writers*perWriter)
	}
}

// writeTestWAL writes records and returns the path plus each record's
// framed byte range, so tests can corrupt precise offsets.
func writeTestWAL(t *testing.T, n int) (string, []int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal-0001")
	w, err := CreateWAL(path, SyncNone, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int64{int64(len(walMagic))}
	off := int64(len(walMagic))
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("record-%03d-payload", i))
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
		off += 8 + int64(len(payload))
		offsets = append(offsets, off)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, offsets
}

func TestWALTornTailTruncated(t *testing.T) {
	path, offsets := writeTestWAL(t, 10)
	// Cut the file mid-way through the last frame: a crash mid-append.
	tear := offsets[9] + 3
	if err := os.Truncate(path, tear); err != nil {
		t.Fatal(err)
	}
	n, truncated, err := ReadWAL(path, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("recovered %d records, want 9", n)
	}
	if truncated != 3 {
		t.Fatalf("truncated %d bytes, want 3", truncated)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != offsets[9] {
		t.Fatalf("file size %d after truncation, want %d", fi.Size(), offsets[9])
	}
	// A second read sees a clean log.
	n, truncated, err = ReadWAL(path, func([]byte) error { return nil })
	if err != nil || n != 9 || truncated != 0 {
		t.Fatalf("re-read: n=%d truncated=%d err=%v, want 9 clean records", n, truncated, err)
	}
}

func TestWALBitFlipTruncatesFromFlip(t *testing.T) {
	path, offsets := writeTestWAL(t, 10)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit inside record 6: its checksum fails, and
	// everything from that frame on is discarded.
	raw[offsets[6]+8+2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	n, truncated, err := ReadWAL(path, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("recovered %d records, want 6 (up to the flipped frame)", n)
	}
	if want := int64(len(raw)) - offsets[6]; truncated != want {
		t.Fatalf("truncated %d bytes, want %d", truncated, want)
	}
}

func TestWALBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0001")
	if err := os.WriteFile(path, []byte("NOTAWAL!extra"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadWAL(path, func([]byte) error { return nil }); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0001")
	w, err := CreateWAL(path, SyncAlways, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("late")); err == nil {
		t.Fatal("append to closed WAL succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestEncodeDecodeInsertRecord(t *testing.T) {
	rec := &Record{
		Kind:  RecInsert,
		Table: "sales",
		Row: engine.Row{
			engine.NewString("east"),
			engine.NewInt(-42),
			engine.NewFloat(3.25),
			engine.NewBool(true),
			engine.Null,
		},
	}
	payload, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != RecInsert || got.Table != "sales" || len(got.Row) != len(rec.Row) {
		t.Fatalf("decoded %+v", got)
	}
	for i, v := range rec.Row {
		if got.Row[i] != v {
			t.Errorf("value %d: got %+v want %+v", i, got.Row[i], v)
		}
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(RecInsert)},
		{byte(RecInsert), 0xff, 0xff},
		{byte(RecCreateTable), 'g', 'a', 'r', 'b', 'a', 'g', 'e'},
		{99, 1, 2, 3},
	}
	for i, payload := range cases {
		if _, err := DecodeRecord(payload); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestEncodeDecodeDDLRecords(t *testing.T) {
	recs := []*Record{
		{Kind: RecCreateTable, Table: "t", Cols: []engine.Column{{Name: "x", Kind: engine.KindInt}}},
		{Kind: RecRefreshSynopsis, Table: "t"},
		{Kind: RecUpdateScaleFactor, Table: "t", Rewrite: 2, GroupKey: "east", SF: 1.5},
	}
	for _, rec := range recs {
		payload, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("%d: %v", rec.Kind, err)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("%d: %v", rec.Kind, err)
		}
		if got.Kind != rec.Kind || got.Table != rec.Table || got.GroupKey != rec.GroupKey || got.SF != rec.SF {
			t.Fatalf("kind %d roundtrip: got %+v want %+v", rec.Kind, got, rec)
		}
	}
}
