package persist

import (
	"sync"
	"testing"
	"time"

	"github.com/approxdb/congress/internal/engine"
)

// TestSnapshotCutExactUnderConcurrentLogs is the regression test for
// the snapshot-cut race: the state export must happen in the same
// critical section that rotates the WAL segment. If it does not, a Log
// racing the cut can land in both snapshot S and segment S, and
// recovery (which replays segments >= S on top of snapshot S) applies
// it twice. Writers hammer Log while snapshots are cut concurrently;
// after a simulated crash, the snapshot plus the replayed WAL suffix
// must contain every acknowledged insert exactly once.
func TestSnapshotCutExactUnderConcurrentLogs(t *testing.T) {
	dir := t.TempDir()
	var rows []engine.Row // only touched under m.mu (apply and export)
	export := func() (*State, error) {
		return &State{Tables: []TableState{{
			Name: "t",
			Cols: []engine.Column{{Name: "x", Kind: engine.KindInt}},
			Rows: append([]engine.Row(nil), rows...),
		}}}, nil
	}
	m, err := Start(dir, Options{Mode: SyncNone, SnapshotInterval: -1, SnapshotEvery: -1}, export)
	if err != nil {
		t.Fatal(err)
	}

	// Writers log continuously for the whole snapshot phase (a fixed
	// count would drain before the first cut finishes its disk write),
	// so every cut races in-flight Logs. Writer w logs values
	// w<<32 | 0,1,2,...; acked[w] counts its acknowledged inserts. The
	// tiny sleep bounds the state size so the repeated full-state
	// snapshots stay fast; the cut window still sees many in-flight
	// Logs per rotation.
	const writers = 4
	acked := make([]int64, writers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := int64(wtr)<<32 | i
				rec := &Record{Kind: RecInsert, Table: "t", Row: engine.Row{engine.NewInt(v)}}
				if err := m.Log(rec, func() error {
					rows = append(rows, rec.Row)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				acked[wtr] = i + 1
				time.Sleep(50 * time.Microsecond)
			}
		}(wtr)
	}
	for i := 0; i < 8; i++ {
		if err := m.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Simulated crash: no Close. Recovery sees the newest mid-stream
	// snapshot plus the WAL segments logged at and after its cut.
	info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Snapshot == nil {
		t.Fatal("no snapshot recovered")
	}
	counts := make(map[int64]int)
	for _, row := range info.Snapshot.Tables[0].Rows {
		counts[row[0].I]++
	}
	for _, rec := range info.Records {
		if rec.Kind != RecInsert {
			t.Fatalf("unexpected replay record kind %d", rec.Kind)
		}
		counts[rec.Row[0].I]++
	}
	total := 0
	for wtr := 0; wtr < writers; wtr++ {
		total += int(acked[wtr])
		for i := int64(0); i < acked[wtr]; i++ {
			v := int64(wtr)<<32 | i
			switch counts[v] {
			case 1:
			case 0:
				t.Fatalf("writer %d insert %d lost: in neither snapshot %d nor replayed WAL",
					wtr, i, info.SnapshotGen)
			default:
				t.Fatalf("writer %d insert %d recovered %d times: snapshot %d also covers its own segment",
					wtr, i, counts[v], info.SnapshotGen)
			}
		}
	}
	if len(counts) != total {
		t.Fatalf("recovered %d distinct inserts, want %d acknowledged", len(counts), total)
	}
	m.Close()
}

// TestManagerCloseConcurrent verifies Close is idempotent under
// concurrent callers (the losing callers must not re-close m.stop) and
// that Log rejects once a Close has begun.
func TestManagerCloseConcurrent(t *testing.T) {
	dir := t.TempDir()
	m, err := Start(dir, Options{Mode: SyncNone, SnapshotInterval: -1, SnapshotEvery: -1},
		func() (*State, error) { return &State{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	rec := &Record{Kind: RecInsert, Table: "t", Row: engine.Row{engine.NewInt(1)}}
	if err := m.Log(rec, func() error { return nil }); err == nil {
		t.Fatal("Log after Close succeeded")
	}
}

// TestWALSyncAfterClose verifies Sync on a closed WAL reports success
// (Close already fsynced everything) instead of fsyncing a closed file
// descriptor.
func TestWALSyncAfterClose(t *testing.T) {
	path := t.TempDir() + "/wal-test"
	w, err := CreateWAL(path, SyncNone, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync after Close: %v", err)
	}
}
