package persist

import (
	"fmt"
	"os"
)

// RecoveryInfo is the outcome of scanning a data directory.
type RecoveryInfo struct {
	// Snapshot is the newest valid snapshot's state, nil if none.
	Snapshot *State
	// SnapshotGen is the generation of that snapshot (0 if none).
	SnapshotGen uint64
	// SkippedSnapshots counts corrupt or unreadable snapshots that were
	// passed over for an older valid one.
	SkippedSnapshots int
	// Records is the WAL suffix to replay, in log order.
	Records []*Record
	// TruncatedBytes is how many torn-tail bytes were cut from the final
	// replayed segment.
	TruncatedBytes int64
	// SkippedSegments counts WAL segments ignored because an earlier
	// segment ended in corruption (records past a tear are unordered
	// with respect to the lost ones, so replay must stop).
	SkippedSegments int
	// MaxGen is the highest generation seen in the directory; the next
	// Manager starts above it.
	MaxGen uint64
}

// Recover scans a data directory: it loads the newest valid snapshot,
// then decodes every WAL segment of generation >= the snapshot's,
// truncating a torn tail at the first bad frame. A missing or empty
// directory recovers to an empty RecoveryInfo. Recover does not apply
// anything — the caller replays Records through its normal mutation
// paths.
func Recover(dir string) (*RecoveryInfo, error) {
	info := &RecoveryInfo{}
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return info, nil
	} else if err != nil {
		return nil, err
	}

	st, snapGen, skipped, err := LoadNewestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	info.Snapshot = st
	info.SnapshotGen = snapGen
	info.SkippedSnapshots = skipped

	maxGen, err := maxGeneration(dir)
	if err != nil {
		return nil, err
	}
	info.MaxGen = maxGen

	wals, err := listGens(dir, "wal-")
	if err != nil {
		return nil, err
	}
	torn := false
	for _, gen := range wals {
		if gen < snapGen {
			continue // compacted into the snapshot
		}
		if torn {
			info.SkippedSegments++
			continue
		}
		_, truncated, err := ReadWAL(WALPath(dir, gen), func(payload []byte) error {
			rec, derr := DecodeRecord(payload)
			if derr != nil {
				// A frame that passes its checksum but fails to decode
				// is corruption beyond a torn tail; surface it.
				return derr
			}
			info.Records = append(info.Records, rec)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("persist: recovering %s: %w", WALPath(dir, gen), err)
		}
		if truncated > 0 {
			info.TruncatedBytes += truncated
			// Records past a tear were logged after records that are now
			// lost; replaying later segments would reorder history.
			torn = true
		}
	}
	return info, nil
}
