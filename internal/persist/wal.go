package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"github.com/approxdb/congress/internal/metrics"
)

// WAL segment layout: an 8-byte magic "CGRWAL01" followed by records
// framed as
//
//	4 bytes  payload length (little endian)
//	4 bytes  CRC32C of the payload
//	N bytes  payload
//
// Appends issue one write(2) per record, so after a process crash the
// OS page cache holds every acknowledged record; fsync policy only
// changes exposure to machine crashes. Recovery truncates the segment
// at the first frame whose header is short or whose checksum fails —
// the torn tail of an append cut off mid-write.

const (
	walMagic = "CGRWAL01"
	// maxRecordBytes bounds one record; a longer length header is
	// treated as corruption rather than an allocation request.
	maxRecordBytes = 1 << 30
)

// SegmentHeaderSize is the byte length of the magic header every WAL
// segment starts with; it is the smallest valid replication offset.
const SegmentHeaderSize = int64(len(walMagic))

// CreateSegmentFile creates an empty WAL segment file at path (which
// must not exist) containing just the magic header, open for appends.
// Replication followers use it to persist shipped segments without a
// WAL's sync machinery — the caller owns framing and fsync policy.
func CreateSegmentFile(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return f, nil
}

// SyncMode selects the WAL durability policy.
type SyncMode int

// Durability policies for the -fsync flag.
const (
	// SyncAlways fsyncs before acknowledging every append, batching
	// concurrent appenders into one fsync (group commit).
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs on a timer (default 50ms); a machine crash
	// can lose up to one interval of acknowledged appends.
	SyncInterval
	// SyncNone never fsyncs outside Close; acknowledged appends survive
	// process crashes (they reached the OS) but not machine crashes.
	SyncNone
)

// ParseSyncMode resolves a -fsync flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("persist: unknown fsync mode %q (want always, interval, or none)", s)
	}
}

// String returns the flag spelling of the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// WAL is one append-only log segment.
type WAL struct {
	mode     SyncMode
	interval time.Duration
	tel      *metrics.Telemetry

	mu        sync.Mutex
	f         *os.File
	scratch   []byte
	seq       uint64 // appends written so far
	syncedSeq uint64 // appends known durable
	size      int64  // bytes written so far (magic header included)
	syncedLen int64  // bytes known durable; always a frame boundary
	err       error  // first write/sync error; sticky
	closed    bool   // no further appends; Close has begun
	closeDone bool   // Close's final fsync finished (watermarks final)

	syncReq *sync.Cond // signals the syncer that seq advanced
	syncAck *sync.Cond // broadcast when syncedSeq advances

	wg sync.WaitGroup
}

// CreateWAL creates a new segment at path (which must not exist) and
// starts the background syncer its mode needs. interval applies to
// SyncInterval (0 means 50ms).
func CreateWAL(path string, mode SyncMode, interval time.Duration, tel *metrics.Telemetry) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	w := &WAL{mode: mode, interval: interval, tel: tel, f: f,
		size: int64(len(walMagic)), syncedLen: int64(len(walMagic))}
	w.syncReq = sync.NewCond(&w.mu)
	w.syncAck = sync.NewCond(&w.mu)
	switch mode {
	case SyncAlways:
		w.wg.Add(1)
		go w.groupCommitLoop()
	case SyncInterval:
		w.wg.Add(1)
		go w.intervalLoop()
	}
	return w, nil
}

// Append frames and writes one record, returning its sequence number
// for WaitDurable. The write reaches the OS before Append returns;
// durability depends on the sync mode.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("persist: record of %d bytes exceeds limit", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("persist: append to closed WAL")
	}
	if w.err != nil {
		return 0, w.err
	}
	w.scratch = w.scratch[:0]
	w.scratch = binary.LittleEndian.AppendUint32(w.scratch, uint32(len(payload)))
	w.scratch = binary.LittleEndian.AppendUint32(w.scratch, crc32.Checksum(payload, castagnoli))
	w.scratch = append(w.scratch, payload...)
	if _, err := w.f.Write(w.scratch); err != nil {
		w.err = fmt.Errorf("persist: WAL append: %w", err)
		w.syncAck.Broadcast()
		return 0, w.err
	}
	w.seq++
	w.size += int64(len(w.scratch))
	w.tel.WALAppend(int64(len(w.scratch)))
	if w.mode == SyncAlways {
		w.syncReq.Signal()
	}
	return w.seq, nil
}

// Seq returns the number of records appended to this segment so far.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Size returns the segment's byte length including the magic header —
// always a frame boundary, because Append writes whole frames under the
// mutex before advancing it.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Watermark returns the replication-safe byte offset of this segment:
// the durable (fsynced) length under SyncAlways and SyncInterval, or the
// appended length under SyncNone (which never fsyncs, so "acknowledged"
// is the only watermark there is — shipped records then share the mode's
// machine-crash loss window with the leader's own acknowledgements).
// The watermark is always a frame boundary.
func (w *WAL) Watermark() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.mode == SyncNone {
		return w.size
	}
	return w.syncedLen
}

// WaitDurable blocks until the record with the given sequence number is
// durable under the WAL's sync mode. For SyncInterval and SyncNone it
// returns immediately — the caller accepted the mode's loss window.
//
// A concurrent Close (a snapshot rotation retiring this segment) is not
// a failure: Close's final fsync makes every append durable, so waiters
// block until that fsync lands (closeDone) rather than bailing the
// moment closing begins.
func (w *WAL) WaitDurable(seq uint64) error {
	if w.mode != SyncAlways {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncedSeq < seq && w.err == nil && !w.closeDone {
		w.syncAck.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.syncedSeq < seq {
		return fmt.Errorf("persist: WAL closed before record %d became durable", seq)
	}
	return nil
}

// groupCommitLoop batches fsyncs for SyncAlways: every wakeup makes all
// appends so far durable with one fsync, however many appenders are
// waiting.
func (w *WAL) groupCommitLoop() {
	defer w.wg.Done()
	w.mu.Lock()
	for {
		for w.seq == w.syncedSeq && !w.closed && w.err == nil {
			w.syncReq.Wait()
		}
		if w.closed || w.err != nil {
			w.mu.Unlock()
			return
		}
		target := w.seq
		targetLen := w.size
		w.mu.Unlock()
		err := w.f.Sync()
		w.tel.Fsync()
		w.mu.Lock()
		if err != nil && w.err == nil {
			w.err = fmt.Errorf("persist: WAL fsync: %w", err)
		}
		if err == nil {
			if w.syncedSeq < target {
				w.syncedSeq = target
			}
			if w.syncedLen < targetLen {
				w.syncedLen = targetLen
			}
		}
		w.syncAck.Broadcast()
	}
}

// intervalLoop fsyncs on a timer for SyncInterval.
func (w *WAL) intervalLoop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for range ticker.C {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return
		}
		dirty := w.seq > w.syncedSeq
		target := w.seq
		targetLen := w.size
		w.mu.Unlock()
		if !dirty {
			continue
		}
		if err := w.f.Sync(); err != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = fmt.Errorf("persist: WAL fsync: %w", err)
			}
			w.mu.Unlock()
			return
		}
		w.tel.Fsync()
		w.mu.Lock()
		if w.syncedSeq < target {
			w.syncedSeq = target
		}
		if w.syncedLen < targetLen {
			w.syncedLen = targetLen
		}
		w.mu.Unlock()
	}
}

// Sync makes everything appended so far durable now, regardless of
// mode. On a closed WAL it returns nil: Close already fsynced every
// append as part of closing the segment.
func (w *WAL) Sync() error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	target := w.seq
	targetLen := w.size
	f := w.f
	w.mu.Unlock()
	if err := f.Sync(); err != nil {
		return err
	}
	w.tel.Fsync()
	w.mu.Lock()
	if w.syncedSeq < target {
		w.syncedSeq = target
	}
	if w.syncedLen < targetLen {
		w.syncedLen = targetLen
	}
	w.syncAck.Broadcast()
	w.mu.Unlock()
	return nil
}

// Close flushes, fsyncs, and closes the segment. Safe to call once.
// The final fsync makes every append durable before committers waiting
// in WaitDurable are released, so a record that raced a snapshot
// rotation is still acknowledged correctly.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.err
	w.syncReq.Broadcast()
	w.mu.Unlock()
	w.wg.Wait()
	serr := w.f.Sync()
	w.mu.Lock()
	if serr != nil && err == nil {
		err = serr
	} else if serr == nil {
		w.tel.Fsync()
		w.syncedLen = w.size
		w.syncedSeq = w.seq
	}
	w.closeDone = true
	w.syncAck.Broadcast()
	w.mu.Unlock()
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// ScanWAL walks a segment's frames without decoding or mutating it,
// returning the number of intact records and the byte offset of the last
// intact frame boundary (the segment's replication-safe length). Unlike
// ReadWAL it never truncates: a torn tail is simply excluded from the
// reported size. Replication uses it to describe closed segments.
func ScanWAL(path string) (records int64, size int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(raw) < len(walMagic) || string(raw[:len(walMagic)]) != walMagic {
		return 0, 0, fmt.Errorf("persist: %s is not a WAL segment", path)
	}
	off := len(walMagic)
	for {
		if len(raw)-off < 8 {
			break
		}
		n := binary.LittleEndian.Uint32(raw[off:])
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if n > maxRecordBytes || int(n) > len(raw)-off-8 {
			break
		}
		if crc32.Checksum(raw[off+8:off+8+int(n)], castagnoli) != crc {
			break
		}
		records++
		off += 8 + int(n)
	}
	return records, int64(off), nil
}

// ReadWAL scans a segment, calling fn for each intact record payload in
// order. On encountering a torn tail — a truncated frame or a checksum
// mismatch — it truncates the file at the last intact frame boundary
// and reports how many bytes were cut; this is the normal outcome of a
// crash mid-append, not an error. fn's payload slice is only valid for
// the duration of the call.
func ReadWAL(path string, fn func(payload []byte) error) (records int, truncated int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(raw) < len(walMagic) || string(raw[:len(walMagic)]) != walMagic {
		return 0, 0, fmt.Errorf("persist: %s is not a WAL segment", path)
	}
	off := len(walMagic)
	for {
		if off == len(raw) {
			return records, 0, nil // clean end
		}
		if len(raw)-off < 8 {
			break // torn frame header
		}
		n := binary.LittleEndian.Uint32(raw[off:])
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if n > maxRecordBytes || int(n) > len(raw)-off-8 {
			break // torn or corrupt payload
		}
		payload := raw[off+8 : off+8+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			break // bit flip or torn write inside the frame
		}
		if err := fn(payload); err != nil {
			return records, 0, err
		}
		records++
		off += 8 + int(n)
	}
	cut := int64(len(raw) - off)
	if terr := os.Truncate(path, int64(off)); terr != nil {
		return records, cut, fmt.Errorf("persist: truncating torn WAL tail of %s: %w", path, terr)
	}
	return records, cut, nil
}
