package sqlparse

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, sum(b) FROM t WHERE x >= 1.5e2 -- comment\nAND y <> 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"select", "a", ",", "sum", "(", "b", ")", "from", "t", "where", "x", ">=", "1.5e2", "and", "y", "<>", "it's", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i, w := range want {
		if texts[i] != w {
			t.Errorf("token %d = %q, want %q", i, texts[i], w)
		}
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("select 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Lex("select a # b"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParsePaperQueryQ1(t *testing.T) {
	// Figure 2(a): the simplified TPC-D Query 1.
	stmt, err := Parse(`select l_returnflag, l_linestatus, sum(l_quantity)
		from lineitem
		where l_shipdate <= '1998-09-01'
		group by l_returnflag, l_linestatus;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Select) != 3 {
		t.Fatalf("select list has %d items", len(stmt.Select))
	}
	if stmt.From[0].Name != "lineitem" {
		t.Errorf("from = %q", stmt.From[0].Name)
	}
	if len(stmt.GroupBy) != 2 {
		t.Errorf("group by has %d keys", len(stmt.GroupBy))
	}
	if !ContainsAggregate(stmt.Select[2].Expr) {
		t.Error("sum not detected as aggregate")
	}
	if ContainsAggregate(stmt.Select[0].Expr) {
		t.Error("plain column detected as aggregate")
	}
}

func TestParseNestedIntegratedRewrite(t *testing.T) {
	// Figure 11(b): nested group-by subquery in FROM.
	stmt, err := Parse(`select A, B, sum(SQ*SF)
		from (select A, B, SF, sum(Q) as SQ from SampRel group by A, B, SF)
		group by A, B`)
	if err != nil {
		t.Fatal(err)
	}
	sub := stmt.From[0].Subquery
	if sub == nil {
		t.Fatal("expected derived table")
	}
	if len(sub.GroupBy) != 3 {
		t.Errorf("inner group by has %d keys", len(sub.GroupBy))
	}
	if sub.Select[3].Alias != "SQ" {
		t.Errorf("inner alias = %q", sub.Select[3].Alias)
	}
}

func TestParseNormalizedRewriteCommaJoin(t *testing.T) {
	// Figure 9 shape: sample/aux join via comma list with qualified refs.
	stmt, err := Parse(`select s.A, s.B, sum(s.Q * a.SF)
		from SampRel s, AuxRel a
		where s.A = a.A and s.B = a.B
		group by s.A, s.B`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.From) != 2 {
		t.Fatalf("from list has %d refs", len(stmt.From))
	}
	if stmt.From[0].Alias != "s" || stmt.From[1].Alias != "a" {
		t.Errorf("aliases %q %q", stmt.From[0].Alias, stmt.From[1].Alias)
	}
	cr, ok := stmt.Select[0].Expr.(*ColumnRef)
	if !ok || cr.Table != "s" || cr.Name != "A" {
		t.Errorf("qualified column parse: %#v", stmt.Select[0].Expr)
	}
}

func TestParseExplicitJoin(t *testing.T) {
	stmt, err := Parse(`select x from t1 join t2 on t1.id = t2.id where t1.v > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Joins) != 1 {
		t.Fatalf("joins = %d", len(stmt.Joins))
	}
	if stmt.Joins[0].Right.Name != "t2" {
		t.Errorf("join right = %q", stmt.Joins[0].Right.Name)
	}
}

func TestParseBetweenInIsNull(t *testing.T) {
	stmt, err := Parse(`select * from t where a between 1 and 10 and b in (1,2,3) and c is not null and d not in ('x') and e not between 0 and 1`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.Where.String()
	for _, frag := range []string{"BETWEEN 1 AND 10", "IN (1, 2, 3)", "IS NOT NULL", "NOT IN ('x')", "NOT BETWEEN 0 AND 1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("where %q missing %q", s, frag)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := MustParse("select 1+2*3, (1+2)*3, -4-5, 2*3+4 from t")
	want := []string{"(1 + (2 * 3))", "((1 + 2) * 3)", "(-4 - 5)", "((2 * 3) + 4)"}
	for i, w := range want {
		if got := stmt.Select[i].Expr.String(); got != w {
			t.Errorf("expr %d = %s, want %s", i, got, w)
		}
	}
}

func TestParseLogicPrecedence(t *testing.T) {
	stmt := MustParse("select * from t where a = 1 or b = 2 and c = 3")
	// AND binds tighter than OR.
	be, ok := stmt.Where.(*BinaryExpr)
	if !ok || be.Op != "or" {
		t.Fatalf("top op = %v", stmt.Where)
	}
	if inner, ok := be.Right.(*BinaryExpr); !ok || inner.Op != "and" {
		t.Fatalf("right = %v", be.Right)
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := MustParse("select count(*), count(distinct a), avg(b), min(c), max(d), sum(e*f)/sum(f) from t")
	c0 := stmt.Select[0].Expr.(*FuncCall)
	if !c0.Star || c0.Name != "count" {
		t.Errorf("count(*) parse: %+v", c0)
	}
	c1 := stmt.Select[1].Expr.(*FuncCall)
	if !c1.Distinct {
		t.Error("DISTINCT not captured")
	}
	if !ContainsAggregate(stmt.Select[5].Expr) {
		t.Error("sum ratio not seen as aggregate")
	}
}

func TestParseOrderLimitOffset(t *testing.T) {
	stmt := MustParse("select a from t order by a desc, b limit 10 offset 5")
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order by parse: %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 || stmt.Offset != 5 {
		t.Errorf("limit=%d offset=%d", stmt.Limit, stmt.Offset)
	}
}

func TestParseCase(t *testing.T) {
	stmt := MustParse("select case when a > 0 then 'pos' else 'neg' end, case a when 1 then 'one' end from t")
	c := stmt.Select[0].Expr.(*CaseExpr)
	if c.Operand != nil || len(c.Whens) != 1 || c.Else == nil {
		t.Errorf("searched case parse: %+v", c)
	}
	c2 := stmt.Select[1].Expr.(*CaseExpr)
	if c2.Operand == nil || c2.Else != nil {
		t.Errorf("simple case parse: %+v", c2)
	}
}

func TestParseDateLiteral(t *testing.T) {
	stmt := MustParse("select * from t where d <= date '1998-09-01'")
	if !strings.Contains(stmt.Where.String(), "DATE '1998-09-01'") {
		t.Errorf("date literal lost: %s", stmt.Where)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"update t set a = 1",
		"select",
		"select a from",
		"select a from t where",
		"select a from t group",
		"select a from t group by",
		"select a b c from t",
		"select (a from t",
		"select a from t limit x",
		"select case end from t",
		"select f( from t",
		"select a from t join u",
		"select a from t extra garbage",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on garbage did not panic")
		}
	}()
	MustParse("not sql")
}

func TestStringRoundTrip(t *testing.T) {
	// Rendering a parsed statement and re-parsing it must yield the
	// same rendering (fixed point).
	queries := []string{
		"select l_returnflag, sum(l_quantity) from lineitem where l_shipdate <= '1998-09-01' group by l_returnflag",
		"select a, b, sum(sq*sf) from (select a, b, sf, sum(q) as sq from samprel group by a, b, sf) group by a, b",
		"select s.a, sum(s.q*x.sf) from samprel s, auxrel x where s.gid = x.gid group by s.a",
		"select count(*) from t having count(*) > 5 order by count(*) desc limit 3",
		"select distinct a from t where b between 1 and 2 or c in (1,2) and d is null",
		"select case when a=1 then 2 else 3 end from t",
	}
	for _, q := range queries {
		s1 := MustParse(q).String()
		s2 := MustParse(s1).String()
		if s1 != s2 {
			t.Errorf("round trip diverged:\n  first:  %s\n  second: %s", s1, s2)
		}
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	e := MustParse("select case a when 1 then f(b+c) end from t where x between g(1) and 2 and y in (3, 4) and z is null").Where
	count := 0
	Walk(e, func(Expr) bool { count++; return true })
	if count < 12 {
		t.Errorf("walk visited only %d nodes", count)
	}
	// Early termination.
	count = 0
	Walk(e, func(Expr) bool { count++; return false })
	if count != 1 {
		t.Errorf("walk with stop visited %d", count)
	}
}
