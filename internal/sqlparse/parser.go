package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement (an optional trailing semicolon
// is allowed).
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokOp && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected trailing input %q", p.peek())
	}
	return stmt, nil
}

// MustParse is Parse but panics on error; for statically known queries
// in tests and the experiment harness.
func MustParse(input string) *SelectStmt {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []Token
	pos  int
	src  string
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peek2() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: byte %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.Kind == TokOp && t.Text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %q", op, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.acceptKeyword("distinct") {
		stmt.Distinct = true
	} else {
		p.acceptKeyword("all")
	}

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if !p.acceptOp(",") {
			break
		}
	}

	// FROM
	if p.acceptKeyword("from") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, ref)
			if !p.acceptOp(",") {
				break
			}
		}
		for {
			if p.acceptKeyword("inner") {
				if err := p.expectKeyword("join"); err != nil {
					return nil, err
				}
			} else if !p.acceptKeyword("join") {
				break
			}
			right, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("on"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Joins = append(stmt.Joins, JoinClause{Right: right, On: on})
		}
	}

	// WHERE
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}

	// GROUP BY
	if p.peek().Kind == TokKeyword && p.peek().Text == "group" {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	// HAVING
	if p.acceptKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}

	// ORDER BY
	if p.peek().Kind == TokKeyword && p.peek().Text == "order" {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	// LIMIT / OFFSET
	if p.acceptKeyword("limit") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.Text)
		}
		p.next()
		stmt.Limit = n
	}
	if p.acceptKeyword("offset") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errf("expected number after OFFSET")
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad OFFSET %q", t.Text)
		}
		p.next()
		stmt.Offset = n
	}

	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peek().Kind == TokOp && p.peek().Text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		t := p.peek()
		if t.Kind != TokIdent && t.Kind != TokKeyword {
			return SelectItem{}, p.errf("expected alias after AS")
		}
		p.next()
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		// bare alias
		p.next()
		item.Alias = t.Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	var ref TableRef
	if p.acceptOp("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return ref, err
		}
		if err := p.expectOp(")"); err != nil {
			return ref, err
		}
		ref.Subquery = sub
	} else {
		t := p.peek()
		if t.Kind != TokIdent {
			return ref, p.errf("expected table name, found %q", t)
		}
		p.next()
		ref.Name = t.Text
	}
	if p.acceptKeyword("as") {
		t := p.peek()
		if t.Kind != TokIdent {
			return ref, p.errf("expected alias after AS")
		}
		p.next()
		ref.Alias = t.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		p.next()
		ref.Alias = t.Text
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//
//	expr      := orExpr
//	orExpr    := andExpr (OR andExpr)*
//	andExpr   := notExpr (AND notExpr)*
//	notExpr   := NOT notExpr | predicate
//	predicate := addExpr [comparison | BETWEEN | IN | IS NULL | LIKE]
//	addExpr   := mulExpr ((+|-) mulExpr)*
//	mulExpr   := unary ((*|/|%) unary)*
//	unary     := - unary | primary
//	primary   := literal | funcCall | columnRef | ( expr ) | CASE ...
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", Expr: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Optional NOT before BETWEEN/IN/LIKE.
	negate := false
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "not" {
		if nt := p.peek2(); nt.Kind == TokKeyword && (nt.Text == "between" || nt.Text == "in" || nt.Text == "like") {
			p.next()
			negate = true
		}
	}
	switch t := p.peek(); {
	case t.Kind == TokOp && isComparison(t.Text):
		p.next()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		op := t.Text
		if op == "!=" {
			op = "<>"
		}
		return &BinaryExpr{Op: op, Left: left, Right: right}, nil
	case t.Kind == TokKeyword && t.Text == "between":
		p.next()
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Lo: lo, Hi: hi, Not: negate}, nil
	case t.Kind == TokKeyword && t.Text == "in":
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, List: list, Not: negate}, nil
	case t.Kind == TokKeyword && t.Text == "like":
		p.next()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{Op: "like", Left: left, Right: right}
		if negate {
			e = &UnaryExpr{Op: "not", Expr: e}
		}
		return e, nil
	case t.Kind == TokKeyword && t.Text == "is":
		p.next()
		not := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Not: not}, nil
	}
	return left, nil
}

func isComparison(op string) bool {
	switch op {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-" || t.Text == "||") {
			p.next()
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.Kind == TokOp && t.Text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation into numeric literals for cleaner trees.
		if lit, ok := e.(*Literal); ok {
			switch lit.Kind {
			case LitInt:
				return IntLit(-lit.I), nil
			case LitFloat:
				return FloatLit(-lit.F), nil
			}
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	if t := p.peek(); t.Kind == TokOp && t.Text == "+" {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return FloatLit(f), nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			// Overflowing integers fall back to float.
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return FloatLit(f), nil
		}
		return IntLit(i), nil
	case t.Kind == TokString:
		p.next()
		return StringLit(t.Text), nil
	case t.Kind == TokKeyword && t.Text == "null":
		p.next()
		return &Literal{Kind: LitNull}, nil
	case t.Kind == TokKeyword && t.Text == "true":
		p.next()
		return &Literal{Kind: LitBool, B: true}, nil
	case t.Kind == TokKeyword && t.Text == "false":
		p.next()
		return &Literal{Kind: LitBool, B: false}, nil
	case t.Kind == TokKeyword && t.Text == "date":
		p.next()
		st := p.peek()
		if st.Kind != TokString {
			return nil, p.errf("expected string after DATE")
		}
		p.next()
		return &Literal{Kind: LitDate, S: st.Text}, nil
	case t.Kind == TokKeyword && t.Text == "case":
		return p.parseCase()
	case t.Kind == TokOp && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.next()
		// Function call?
		if p.peek().Kind == TokOp && p.peek().Text == "(" {
			return p.parseFuncCall(strings.ToLower(t.Text))
		}
		// Qualified column?
		if p.acceptOp(".") {
			ct := p.peek()
			if ct.Kind != TokIdent && ct.Kind != TokKeyword {
				return nil, p.errf("expected column name after %q.", t.Text)
			}
			p.next()
			return &ColumnRef{Table: t.Text, Name: ct.Text}, nil
		}
		return &ColumnRef{Name: t.Text}, nil
	}
	return nil, p.errf("unexpected token %q", t)
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	call := &FuncCall{Name: name}
	if p.acceptOp("*") {
		call.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.acceptOp(")") {
		return call, nil
	}
	if p.acceptKeyword("distinct") {
		call.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("case"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if t := p.peek(); !(t.Kind == TokKeyword && (t.Text == "when" || t.Text == "end")) {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return c, nil
}
