package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is any SQL expression node. Every node can render itself back to
// SQL text (used by the rewriters to emit rewritten queries and by
// tests for round-tripping).
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef names a column, optionally qualified by a table name or
// alias (e.g. SampRel.A).
type ColumnRef struct {
	Table string // optional
	Name  string
}

func (c *ColumnRef) exprNode() {}
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// LiteralKind tags literal values.
type LiteralKind uint8

// Literal kinds.
const (
	LitNull LiteralKind = iota
	LitInt
	LitFloat
	LitString
	LitBool
	LitDate // DATE 'yyyy-mm-dd'
)

// Literal is a constant.
type Literal struct {
	Kind LiteralKind
	I    int64
	F    float64
	S    string
	B    bool
}

func (l *Literal) exprNode() {}
func (l *Literal) String() string {
	switch l.Kind {
	case LitNull:
		return "NULL"
	case LitInt:
		return strconv.FormatInt(l.I, 10)
	case LitFloat:
		return strconv.FormatFloat(l.F, 'g', -1, 64)
	case LitBool:
		if l.B {
			return "TRUE"
		}
		return "FALSE"
	case LitDate:
		return "DATE '" + l.S + "'"
	default:
		return "'" + strings.ReplaceAll(l.S, "'", "''") + "'"
	}
}

// IntLit builds an integer literal.
func IntLit(i int64) *Literal { return &Literal{Kind: LitInt, I: i} }

// FloatLit builds a float literal.
func FloatLit(f float64) *Literal { return &Literal{Kind: LitFloat, F: f} }

// StringLit builds a string literal.
func StringLit(s string) *Literal { return &Literal{Kind: LitString, S: s} }

// BinaryExpr applies an infix operator: arithmetic (+ - * / %),
// comparison (= <> < <= > >=), logic (AND OR), or LIKE.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

func (b *BinaryExpr) exprNode() {}
func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + strings.ToUpper(b.Op) + " " + b.Right.String() + ")"
}

// UnaryExpr applies a prefix operator: - or NOT.
type UnaryExpr struct {
	Op   string
	Expr Expr
}

func (u *UnaryExpr) exprNode() {}
func (u *UnaryExpr) String() string {
	op := strings.ToUpper(u.Op)
	if op == "NOT" {
		return "(NOT " + u.Expr.String() + ")"
	}
	return "(" + op + u.Expr.String() + ")"
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	Expr, Lo, Hi Expr
	Not          bool
}

func (b *BetweenExpr) exprNode() {}
func (b *BetweenExpr) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return "(" + b.Expr.String() + " " + not + "BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

// InExpr is x [NOT] IN (e1, e2, ...).
type InExpr struct {
	Expr Expr
	List []Expr
	Not  bool
}

func (in *InExpr) exprNode() {}
func (in *InExpr) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	not := ""
	if in.Not {
		not = "NOT "
	}
	return "(" + in.Expr.String() + " " + not + "IN (" + strings.Join(parts, ", ") + "))"
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

func (e *IsNullExpr) exprNode() {}
func (e *IsNullExpr) String() string {
	if e.Not {
		return "(" + e.Expr.String() + " IS NOT NULL)"
	}
	return "(" + e.Expr.String() + " IS NULL)"
}

// FuncCall is a function application. Aggregates (SUM, COUNT, AVG, MIN,
// MAX, plus the Aqua error functions SUM_ERROR, COUNT_ERROR, AVG_ERROR)
// and scalar functions share this node; the executor distinguishes them.
type FuncCall struct {
	Name     string // lower-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (f *FuncCall) exprNode() {}
func (f *FuncCall) String() string {
	if f.Star {
		return strings.ToUpper(f.Name) + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return strings.ToUpper(f.Name) + "(" + d + strings.Join(parts, ", ") + ")"
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr // nil if absent
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	Cond, Result Expr
}

func (c *CaseExpr) exprNode() {}
func (c *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" " + c.Operand.String())
	}
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Result.String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// SelectItem is one entry in the select list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional
	Star  bool   // SELECT *
}

func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// TableRef is one entry in the FROM clause: a named table or a
// parenthesized subquery, with an optional alias.
type TableRef struct {
	Name     string      // table name, empty if Subquery != nil
	Subquery *SelectStmt // derived table
	Alias    string
}

func (t TableRef) String() string {
	var base string
	if t.Subquery != nil {
		base = "(" + t.Subquery.String() + ")"
	} else {
		base = t.Name
	}
	if t.Alias != "" {
		return base + " " + t.Alias
	}
	return base
}

// JoinClause is an explicit [INNER] JOIN ... ON ... appended to the
// first table ref.
type JoinClause struct {
	Right TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// SelectStmt is a full SELECT query.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem
	From     []TableRef // comma-joined
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 = no limit
	Offset   int64 // 0 = none
}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.String())
		}
		for _, j := range s.Joins {
			sb.WriteString(" JOIN " + j.Right.String() + " ON " + j.On.String())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.String())
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT " + strconv.FormatInt(s.Limit, 10))
	}
	if s.Offset > 0 {
		sb.WriteString(" OFFSET " + strconv.FormatInt(s.Offset, 10))
	}
	return sb.String()
}

// AggregateFuncs lists the aggregate function names the executor
// understands, including Aqua's error-bound pseudo-aggregates.
var AggregateFuncs = map[string]bool{
	"sum": true, "count": true, "avg": true, "min": true, "max": true,
	"sum_error": true, "count_error": true, "avg_error": true,
	"variance": true, "stddev": true,
}

// ContainsAggregate reports whether the expression tree contains an
// aggregate function call.
func ContainsAggregate(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if f, ok := n.(*FuncCall); ok && AggregateFuncs[f.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// Walk performs a pre-order traversal of the expression tree, calling fn
// at each node. If fn returns false the node's children are skipped.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *BinaryExpr:
		Walk(n.Left, fn)
		Walk(n.Right, fn)
	case *UnaryExpr:
		Walk(n.Expr, fn)
	case *BetweenExpr:
		Walk(n.Expr, fn)
		Walk(n.Lo, fn)
		Walk(n.Hi, fn)
	case *InExpr:
		Walk(n.Expr, fn)
		for _, item := range n.List {
			Walk(item, fn)
		}
	case *IsNullExpr:
		Walk(n.Expr, fn)
	case *FuncCall:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *CaseExpr:
		Walk(n.Operand, fn)
		for _, w := range n.Whens {
			Walk(w.Cond, fn)
			Walk(w.Result, fn)
		}
		Walk(n.Else, fn)
	}
}
