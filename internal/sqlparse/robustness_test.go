package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser random token soup and mutated
// valid queries; it must return errors, never panic, and anything it
// accepts must render and re-parse to a fixed point.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vocab := []string{
		"select", "from", "where", "group", "by", "order", "having",
		"sum", "count", "avg", "min", "max", "between", "and", "or",
		"not", "in", "is", "null", "case", "when", "then", "else", "end",
		"(", ")", ",", "*", "+", "-", "/", "=", "<", ">", "<=", ">=", "<>",
		"t", "a", "b", "c", "1", "2.5", "'x'", "date", "limit", "offset",
		"distinct", "as", "join", "on", ".", ";",
	}
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(25)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = vocab[rng.Intn(len(vocab))]
		}
		q := strings.Join(parts, " ")
		stmt, err := Parse(q)
		if err != nil {
			continue
		}
		// Accepted input must round-trip.
		s1 := stmt.String()
		stmt2, err := Parse(s1)
		if err != nil {
			t.Fatalf("accepted %q but re-parse of %q failed: %v", q, s1, err)
		}
		if s2 := stmt2.String(); s1 != s2 {
			t.Fatalf("round trip diverged:\n  in:  %s\n  out: %s", s1, s2)
		}
	}
}

// TestParserMutationRobustness mutates a known-good query by deleting,
// duplicating, and swapping tokens; no mutation may panic the parser.
func TestParserMutationRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := "select l_returnflag , l_linestatus , sum ( l_quantity ) from lineitem where l_shipdate <= '1998-09-01' and l_id between 1 and 100 group by l_returnflag , l_linestatus order by 1 desc limit 10"
	toks := strings.Fields(base)
	for trial := 0; trial < 2000; trial++ {
		mutated := append([]string(nil), toks...)
		switch rng.Intn(3) {
		case 0: // delete
			i := rng.Intn(len(mutated))
			mutated = append(mutated[:i], mutated[i+1:]...)
		case 1: // duplicate
			i := rng.Intn(len(mutated))
			mutated = append(mutated[:i+1], mutated[i:]...)
		default: // swap
			i, j := rng.Intn(len(mutated)), rng.Intn(len(mutated))
			mutated[i], mutated[j] = mutated[j], mutated[i]
		}
		// Parse must not panic; errors are fine.
		_, _ = Parse(strings.Join(mutated, " "))
	}
}

// TestLexerNeverPanics drives the lexer over random byte strings.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(128))
		}
		_, _ = Lex(string(b))
	}
}
