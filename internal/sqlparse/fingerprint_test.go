package sqlparse

import (
	"strings"
	"testing"
)

func TestFingerprintNormalizesCaseAndWhitespace(t *testing.T) {
	variants := []string{
		"SELECT l_returnflag, SUM(l_quantity) FROM lineitem GROUP BY l_returnflag",
		"select L_RETURNFLAG,   sum(L_QUANTITY)\n\tfrom LINEITEM group by L_RETURNFLAG",
		"Select l_ReturnFlag , Sum( l_Quantity ) From LineItem Group By l_ReturnFlag ;",
	}
	var want string
	for i, sql := range variants {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		fp := Fingerprint(stmt)
		if i == 0 {
			want = fp
			continue
		}
		if fp != want {
			t.Errorf("variant %d fingerprint %q != %q", i, fp, want)
		}
	}
}

func TestFingerprintDistinguishesStringLiteralCase(t *testing.T) {
	a := MustParse("SELECT count(*) FROM t WHERE region = 'US' GROUP BY state")
	b := MustParse("SELECT count(*) FROM t WHERE region = 'us' GROUP BY state")
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("string literal case must be significant")
	}
}

func TestFingerprintDistinguishesLiterals(t *testing.T) {
	a := MustParse("SELECT sum(x) FROM t WHERE y > 1 GROUP BY z")
	b := MustParse("SELECT sum(x) FROM t WHERE y > 2 GROUP BY z")
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("numeric literals must be significant")
	}
}

func TestFingerprintQuoteEscaping(t *testing.T) {
	stmt := MustParse("SELECT count(*) FROM t WHERE name = 'O''Brien' GROUP BY city")
	fp := Fingerprint(stmt)
	// The fingerprint must itself be stable when derived again.
	if fp2 := Fingerprint(stmt); fp2 != fp {
		t.Fatalf("fingerprint not stable: %q vs %q", fp, fp2)
	}
}

func TestParseCacheSharesStatement(t *testing.T) {
	pc := NewParseCache(16)
	s1, fp1, err := pc.Parse("SELECT sum(x) FROM t GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	s2, fp2, err := pc.Parse("SELECT sum(x) FROM t GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("identical text should share one parsed statement")
	}
	if fp1 != fp2 || fp1 == "" {
		t.Errorf("fingerprints differ: %q vs %q", fp1, fp2)
	}
	if pc.Len() != 1 {
		t.Errorf("Len = %d, want 1", pc.Len())
	}
	// A whitespace variant is a separate cache entry (the key is the raw
	// text) but must still fingerprint identically, so the plan and
	// result caches converge on one entry.
	_, fp3, err := pc.Parse("SELECT sum(x)  FROM t\nGROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	if fp3 != fp1 {
		t.Errorf("whitespace variant fingerprint %q != %q", fp3, fp1)
	}
	if pc.Len() != 2 {
		t.Errorf("Len = %d, want 2", pc.Len())
	}
}

func TestParseCacheDistinguishesLiteralWhitespace(t *testing.T) {
	// Regression: keying the cache by whitespace-collapsed text made
	// queries differing only in whitespace INSIDE a string literal
	// collide, so the second silently got the first's statement — and,
	// through the plan and result caches, the wrong answer.
	pc := NewParseCache(16)
	a, fpa, err := pc.Parse("SELECT count(*) FROM t WHERE c = 'a  b' GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	b, fpb, err := pc.Parse("SELECT count(*) FROM t WHERE c = 'a b' GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("literal-whitespace variants must not share one parsed statement")
	}
	if fpa == fpb {
		t.Errorf("literal-whitespace variants must fingerprint differently, both %q", fpa)
	}
	if got := a.String(); !strings.Contains(got, "'a  b'") {
		t.Errorf("first statement lost its literal: %s", got)
	}
	if got := b.String(); !strings.Contains(got, "'a b'") {
		t.Errorf("second statement lost its literal: %s", got)
	}
}

func TestParseCacheCachesErrors(t *testing.T) {
	pc := NewParseCache(16)
	_, _, err1 := pc.Parse("SELECT FROM WHERE")
	_, _, err2 := pc.Parse("SELECT FROM WHERE")
	if err1 == nil || err2 == nil {
		t.Fatal("expected parse errors")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("cached error mismatch: %v vs %v", err1, err2)
	}
}

func TestParseCacheNil(t *testing.T) {
	var pc *ParseCache
	stmt, fp, err := pc.Parse("SELECT sum(x) FROM t GROUP BY z")
	if err != nil || stmt == nil || fp == "" {
		t.Fatalf("nil ParseCache.Parse = %v, %q, %v", stmt, fp, err)
	}
	if pc.Len() != 0 {
		t.Error("nil cache must report empty")
	}
}

func TestParseCacheBound(t *testing.T) {
	pc := NewParseCache(4)
	queries := []string{
		"SELECT sum(a) FROM t GROUP BY a",
		"SELECT sum(b) FROM t GROUP BY b",
		"SELECT sum(c) FROM t GROUP BY c",
		"SELECT sum(d) FROM t GROUP BY d",
		"SELECT sum(e) FROM t GROUP BY e",
	}
	for _, q := range queries {
		if _, _, err := pc.Parse(q); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Len() > 4 {
		t.Errorf("Len = %d exceeds bound 4", pc.Len())
	}
}
