// Package sqlparse provides the lexer, AST, and recursive-descent parser
// for the SQL dialect used throughout the reproduction: the subset of
// SQL-92 needed to express the paper's TPC-D-derived queries (Table 2)
// and all four rewritten-query shapes of Section 5, including nested
// group-by subqueries in FROM and multi-table comma joins.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp    // operators and punctuation
	TokParam // ? positional parameter
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are lower-cased; identifiers keep original case
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "asc": true, "desc": true, "limit": true,
	"as": true, "and": true, "or": true, "not": true, "between": true,
	"in": true, "is": true, "null": true, "distinct": true, "all": true,
	"join": true, "inner": true, "on": true, "true": true, "false": true,
	"case": true, "when": true, "then": true, "else": true, "end": true,
	"like": true, "date": true, "offset": true,
}

// Lex splits input into tokens. It returns an error with byte position
// on any character it cannot tokenize.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			lower := strings.ToLower(word)
			if keywords[lower] {
				toks = append(toks, Token{Kind: TokKeyword, Text: lower, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			seenDot := false
			seenExp := false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i+1 < n && (isDigit(input[i+1]) || ((input[i+1] == '+' || input[i+1] == '-') && i+2 < n && isDigit(input[i+2]))) {
					seenExp = true
					i++
					if input[i] == '+' || input[i] == '-' {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlparse: unterminated string literal at byte %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '?':
			toks = append(toks, Token{Kind: TokParam, Text: "?", Pos: i})
			i++
		default:
			start := i
			op, ok := lexOp(input[i:])
			if !ok {
				return nil, fmt.Errorf("sqlparse: unexpected character %q at byte %d", rune(c), i)
			}
			i += len(op)
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: start})
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

// lexOp matches the longest operator prefix.
func lexOp(s string) (string, bool) {
	twoChar := []string{"<=", ">=", "<>", "!=", "||"}
	for _, op := range twoChar {
		if strings.HasPrefix(s, op) {
			return op, true
		}
	}
	switch s[0] {
	case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', '.', ';':
		return s[:1], true
	}
	return "", false
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80 && unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
