package sqlparse

import (
	"strings"
	"sync"
)

// Fingerprint renders a parsed statement into a stable, normalized form
// suitable as a cache key: semantically identical queries that differ
// only in keyword/identifier case or whitespace produce the same
// fingerprint. String literals keep their case — 'US' and 'us' are
// different values.
func Fingerprint(stmt *SelectStmt) string {
	// stmt.String() is already canonical for spacing, keyword case and
	// literal rendering; re-lex it to also normalize identifier case.
	canon := stmt.String()
	toks, err := Lex(canon)
	if err != nil {
		// String() output should always lex; fall back to the canonical
		// rendering so the fingerprint is still deterministic.
		return canon
	}
	var b strings.Builder
	b.Grow(len(canon))
	for i, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		switch tok.Kind {
		case TokIdent:
			b.WriteString(strings.ToLower(tok.Text))
		case TokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(tok.Text, "'", "''"))
			b.WriteByte('\'')
		default:
			b.WriteString(tok.Text)
		}
	}
	return b.String()
}

// parsed is a memoized Parse result: the statement, its fingerprint, and
// the parse error if any (errors are cached too — re-parsing a bad query
// on every request would make malformed traffic the expensive case).
type parsed struct {
	stmt *SelectStmt
	fp   string
	err  error
}

// ParseCache memoizes Parse results keyed by the raw query text.
// Normalizing the key before parsing is unsound — collapsing whitespace,
// say, would also rewrite the inside of string literals, so queries
// differing only within a literal would collide on one entry and the
// second would silently get the first's statement. Whitespace variants
// therefore cost one parse each; the post-parse Fingerprint still maps
// them to the same plan- and result-cache entries. Cached statements are
// shared between callers and must be treated as immutable; every
// consumer in this repo already copies before rewriting. The zero value
// is unusable; use NewParseCache. A nil *ParseCache falls back to plain
// Parse.
type ParseCache struct {
	max int

	mu    sync.Mutex
	items map[string]parsed
}

// NewParseCache returns a parse cache bounded to max entries (<= 0
// disables caching and returns nil).
func NewParseCache(max int) *ParseCache {
	if max <= 0 {
		return nil
	}
	return &ParseCache{max: max, items: make(map[string]parsed, 64)}
}

// Parse parses input, memoizing both the statement and its fingerprint.
// The returned statement is shared: callers must not modify it.
func (pc *ParseCache) Parse(input string) (*SelectStmt, string, error) {
	if pc == nil {
		stmt, err := Parse(input)
		if err != nil {
			return nil, "", err
		}
		return stmt, Fingerprint(stmt), nil
	}
	key := input
	pc.mu.Lock()
	p, ok := pc.items[key]
	pc.mu.Unlock()
	if ok {
		return p.stmt, p.fp, p.err
	}
	stmt, err := Parse(input)
	p = parsed{stmt: stmt, err: err}
	if err == nil {
		p.fp = Fingerprint(stmt)
	}
	pc.mu.Lock()
	if len(pc.items) >= pc.max {
		// Cheap bound: reset rather than track recency. The working set
		// of distinct query texts is tiny compared to the bound, so a
		// full reset is rare and refills in a handful of parses.
		pc.items = make(map[string]parsed, 64)
	}
	pc.items[key] = p
	pc.mu.Unlock()
	return p.stmt, p.fp, p.err
}

// Len reports the number of memoized parse results.
func (pc *ParseCache) Len() int {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.items)
}
