// Package shard holds the scatter-gather machinery under sharded
// warehouses: a deterministic hash router that places every finest
// group's tuples on one shard, a parallel fan-out helper with context
// propagation and deterministic result ordering, and per-shard
// coordinator telemetry (insert counters and fan-out latency
// histograms).
//
// Hash routing by the finest grouping key gives each stratum a single
// home shard, so per-shard congressional synopses partition the stratum
// set — the precondition under which merging estimation partials by
// sum-of-sums and sum-of-variances reproduces the single-warehouse
// estimator exactly. The estimator merge itself is partition-agnostic
// (internal/estimate.MergePartials); routing only decides locality and
// balance.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxdb/congress/internal/metrics"
)

// Router deterministically assigns group keys to shards by FNV-1a hash.
type Router struct {
	shards int
}

// NewRouter returns a router over the given shard count.
func NewRouter(shards int) (*Router, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d, need at least 1", shards)
	}
	return &Router{shards: shards}, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.shards }

// Route maps a finest group key to its home shard. The mapping is pure:
// the same key routes identically across processes and restarts. FNV-1a
// alone leaves structure in the low bits for the short, mostly-numeric
// keys rendered group values produce (measurably skewed occupancy at 8+
// shards), so the digest is passed through a 64-bit avalanche finalizer
// before the modulus.
func (r *Router) Route(key string) int {
	h := fnv.New64a()
	io.WriteString(h, key)
	return int(mix64(h.Sum64()) % uint64(r.shards))
}

// mix64 is the Murmur3 fmix64 avalanche: every input bit affects every
// output bit, which is what the modulus needs.
func mix64(z uint64) uint64 {
	z ^= z >> 33
	z *= 0xff51afd7ed558ccd
	z ^= z >> 33
	z *= 0xc4ceb9fe1a85ec53
	z ^= z >> 33
	return z
}

// Fanout runs fn(ctx, i) for shards 0..n-1 concurrently and returns the
// results indexed by shard ordinal — the merge input order is
// deterministic regardless of which leg finishes first. The derived
// context is canceled as soon as any leg fails, so the remaining legs
// stop promptly. The reported error prefers the first (lowest-ordinal)
// failure that is neither context.Canceled nor context.DeadlineExceeded:
// those are secondary symptoms — a leg canceled because a sibling
// failed, or cut off because the parent deadline fired while a sibling's
// real failure was propagating — and must not mask the root cause. When
// every failed leg reports only cancellation or deadline expiry, the
// lowest-ordinal one is returned as-is.
func Fanout[T any](ctx context.Context, n int, fn func(ctx context.Context, shard int) (T, error)) ([]T, error) {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := fn(fctx, i)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			out[i] = v
		}(i)
	}
	wg.Wait()
	var first, fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			first = err
			break
		}
	}
	if first == nil {
		first = fallback
	}
	if first != nil {
		return nil, first
	}
	return out, nil
}

// Telemetry tracks the coordinator's per-shard counters, rendered on
// /metrics under a configurable prefix (congress_shard for in-process
// sharding, congress_distshard for the multi-process coordinator):
//
//	<prefix>_count                       configured shard count
//	<prefix>_inserts_total{shard}        rows routed to each shard
//	<prefix>_fanout_errors_total{shard}  failed fan-out legs per shard
//	<prefix>_fanout_retries_total{shard} transient-failure retries per shard
//	<prefix>_fanout_seconds{shard,...}   per-shard fan-out leg latency
//	                                     histogram + quantiles
type Telemetry struct {
	inserts []atomic.Int64
	errors  []atomic.Int64
	retries []atomic.Int64
	fanout  []*metrics.Histogram
}

// NewTelemetry returns zeroed telemetry for n shards.
func NewTelemetry(n int) *Telemetry {
	t := &Telemetry{
		inserts: make([]atomic.Int64, n),
		errors:  make([]atomic.Int64, n),
		retries: make([]atomic.Int64, n),
		fanout:  make([]*metrics.Histogram, n),
	}
	for i := range t.fanout {
		t.fanout[i] = metrics.NewHistogram()
	}
	return t
}

// Shards returns the tracked shard count; nil telemetry reads as 0.
func (t *Telemetry) Shards() int {
	if t == nil {
		return 0
	}
	return len(t.fanout)
}

// AddInserts records n rows routed to a shard.
func (t *Telemetry) AddInserts(shard int, n int64) {
	if t != nil && shard >= 0 && shard < len(t.inserts) {
		t.inserts[shard].Add(n)
	}
}

// ObserveFanout records one completed fan-out leg against a shard.
func (t *Telemetry) ObserveFanout(shard int, d time.Duration) {
	if t != nil && shard >= 0 && shard < len(t.fanout) {
		t.fanout[shard].Observe(d)
	}
}

// FanoutError records one failed fan-out leg against a shard.
func (t *Telemetry) FanoutError(shard int) {
	if t != nil && shard >= 0 && shard < len(t.errors) {
		t.errors[shard].Add(1)
	}
}

// AddRetry records one transient-failure retry against a shard.
func (t *Telemetry) AddRetry(shard int) {
	if t != nil && shard >= 0 && shard < len(t.retries) {
		t.retries[shard].Add(1)
	}
}

// Inserts reads one shard's routed-row counter.
func (t *Telemetry) Inserts(shard int) int64 {
	if t == nil || shard < 0 || shard >= len(t.inserts) {
		return 0
	}
	return t.inserts[shard].Load()
}

// Render writes the congress_shard_* exposition block; deterministic
// for a fixed state (shards ascend, histogram rendering is sorted).
func (t *Telemetry) Render(sb *strings.Builder) {
	t.RenderAs(sb, "congress_shard")
}

// RenderAs writes the exposition block under the given metric prefix.
// Zero-count fan-out histograms render as explicit zero series rather
// than being skipped, so per-shard latency series are present from the
// first scrape and never appear/disappear between scrapes.
func (t *Telemetry) RenderAs(sb *strings.Builder, prefix string) {
	if t == nil {
		return
	}
	fmt.Fprintf(sb, "%s_count %d\n", prefix, len(t.fanout))
	for i := range t.inserts {
		fmt.Fprintf(sb, "%s_inserts_total{shard=%q} %d\n", prefix, strconv.Itoa(i), t.inserts[i].Load())
	}
	for i := range t.errors {
		fmt.Fprintf(sb, "%s_fanout_errors_total{shard=%q} %d\n", prefix, strconv.Itoa(i), t.errors[i].Load())
	}
	for i := range t.retries {
		fmt.Fprintf(sb, "%s_fanout_retries_total{shard=%q} %d\n", prefix, strconv.Itoa(i), t.retries[i].Load())
	}
	for i, h := range t.fanout {
		h.Snapshot().Render(sb, prefix+"_fanout_seconds", "shard", strconv.Itoa(i))
	}
}
