package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Membership is the static shard topology of a distributed deployment:
// an ordered list of shard endpoints whose index IS the shard ordinal
// the Router maps keys to. Order therefore matters — every coordinator
// must load the same list in the same order, or the same group key
// routes to different processes. Today membership comes from a flag or
// a JSON config file; dynamic membership/rebalancing is a ROADMAP item.
type Membership struct {
	// Endpoints holds one base URL per shard, index == shard ordinal.
	Endpoints []string
}

// membershipFile is the on-disk JSON shape: {"shards": ["http://...", ...]}.
type membershipFile struct {
	Shards []string `json:"shards"`
}

// NewMembership validates an endpoint list: non-empty, no blank or
// duplicate entries (a duplicate would double-count one process's
// partials in every merge).
func NewMembership(endpoints []string) (*Membership, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("shard: membership needs at least one endpoint")
	}
	seen := make(map[string]int, len(endpoints))
	cleaned := make([]string, 0, len(endpoints))
	for i, e := range endpoints {
		e = strings.TrimRight(strings.TrimSpace(e), "/")
		if e == "" {
			return nil, fmt.Errorf("shard: membership endpoint %d is empty", i)
		}
		if j, dup := seen[e]; dup {
			return nil, fmt.Errorf("shard: endpoint %q appears as both shard %d and shard %d", e, j, i)
		}
		seen[e] = i
		cleaned = append(cleaned, e)
	}
	return &Membership{Endpoints: cleaned}, nil
}

// LoadMembership reads a JSON membership file ({"shards": [...]}).
func LoadMembership(path string) (*Membership, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: read membership: %w", err)
	}
	var f membershipFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("shard: parse membership %s: %w", path, err)
	}
	m, err := NewMembership(f.Shards)
	if err != nil {
		return nil, fmt.Errorf("shard: %s: %w", path, err)
	}
	return m, nil
}

// WaitHealthy polls every endpoint with probe until all report healthy
// or ctx expires. Probes run in parallel; an endpoint that has passed
// once is not probed again. On timeout the error names every endpoint
// still failing, with its last probe error.
func (m *Membership) WaitHealthy(ctx context.Context, interval time.Duration, probe func(ctx context.Context, endpoint string) error) error {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	pending := make(map[int]error, len(m.Endpoints))
	for i := range m.Endpoints {
		pending[i] = fmt.Errorf("not yet probed")
	}
	for {
		type result struct {
			i   int
			err error
		}
		results := make(chan result, len(pending))
		for i := range pending {
			go func(i int) {
				results <- result{i, probe(ctx, m.Endpoints[i])}
			}(i)
		}
		for range len(pending) {
			r := <-results
			if r.err == nil {
				delete(pending, r.i)
			} else {
				pending[r.i] = r.err
			}
		}
		if len(pending) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			var sb strings.Builder
			for i, err := range pending {
				if sb.Len() > 0 {
					sb.WriteString("; ")
				}
				fmt.Fprintf(&sb, "shard %d (%s): %v", i, m.Endpoints[i], err)
			}
			return fmt.Errorf("shard: %d/%d shards unhealthy after wait: %s", len(pending), len(m.Endpoints), sb.String())
		case <-time.After(interval):
		}
	}
}
