package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewRouter(-3); err == nil {
		t.Error("negative shards accepted")
	}
	r, err := NewRouter(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Route("anything"); got != 0 {
		t.Errorf("single-shard route = %d", got)
	}
}

func TestRouterDeterministicAndInRange(t *testing.T) {
	r, _ := NewRouter(5)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("group-%d", i)
		a, b := r.Route(key), r.Route(key)
		if a != b {
			t.Fatalf("key %q routed to %d then %d", key, a, b)
		}
		if a < 0 || a >= 5 {
			t.Fatalf("key %q routed out of range: %d", key, a)
		}
	}
}

// TestRouterBalanceChiSquare checks that FNV-1a routing spreads group
// keys evenly: a chi-square goodness-of-fit statistic over the shard
// occupancy counts must stay below the 99.9% critical value, for every
// shard count the differential tests exercise.
func TestRouterBalanceChiSquare(t *testing.T) {
	// chi-square 0.999 quantiles for k-1 degrees of freedom.
	critical := map[int]float64{2: 10.83, 4: 16.27, 8: 24.32, 16: 39.25}
	const keys = 100_000
	for _, k := range []int{2, 4, 8, 16} {
		r, _ := NewRouter(k)
		counts := make([]int, k)
		for i := 0; i < keys; i++ {
			counts[r.Route(fmt.Sprintf("g\x1f%d\x1f%d", i, i%977))]++
		}
		expected := float64(keys) / float64(k)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		if chi2 > critical[k] {
			t.Errorf("k=%d: chi2 = %.2f exceeds 99.9%% critical %.2f (counts %v)", k, chi2, critical[k], counts)
		}
	}
}

func TestFanoutOrdersResultsByShard(t *testing.T) {
	out, err := Fanout(context.Background(), 8, func(ctx context.Context, shard int) (int, error) {
		// Finish in reverse order to prove ordering is by ordinal, not
		// completion.
		time.Sleep(time.Duration(8-shard) * time.Millisecond)
		return shard * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("out[%d] = %d, want %d (full: %v)", i, v, i*10, out)
		}
	}
}

func TestFanoutPropagatesFirstRealError(t *testing.T) {
	boom := errors.New("shard 3 exploded")
	var canceled atomic.Int32
	_, err := Fanout(context.Background(), 6, func(ctx context.Context, shard int) (int, error) {
		if shard == 3 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
			canceled.Add(1)
			return 0, ctx.Err()
		case <-time.After(2 * time.Second):
			return shard, nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the shard-3 failure (cancellation must not mask it)", err)
	}
	if canceled.Load() == 0 {
		t.Error("sibling legs were not canceled after the failure")
	}
}

func TestFanoutParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Fanout(ctx, 4, func(ctx context.Context, shard int) (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTelemetryRender(t *testing.T) {
	tel := NewTelemetry(2)
	tel.AddInserts(0, 7)
	tel.AddInserts(1, 3)
	tel.ObserveFanout(1, 5*time.Millisecond)
	tel.FanoutError(0)
	var sb strings.Builder
	tel.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"congress_shard_count 2\n",
		`congress_shard_inserts_total{shard="0"} 7`,
		`congress_shard_inserts_total{shard="1"} 3`,
		`congress_shard_fanout_errors_total{shard="0"} 1`,
		`congress_shard_fanout_seconds_count{shard="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Unobserved histograms render as explicit zero series — scrape
	// targets must see every per-shard series from the first scrape.
	if !strings.Contains(out, `congress_shard_fanout_seconds_count{shard="0"} 0`) {
		t.Errorf("unobserved shard-0 histogram must render an explicit zero series:\n%s", out)
	}
	if !strings.Contains(out, `congress_shard_fanout_retries_total{shard="0"} 0`) {
		t.Errorf("retry counters must render even at zero:\n%s", out)
	}
	// Out-of-range and nil receivers must be inert.
	tel.AddInserts(9, 1)
	tel.ObserveFanout(-1, time.Second)
	var nilTel *Telemetry
	nilTel.AddInserts(0, 1)
	nilTel.Render(&sb)
	if nilTel.Shards() != 0 || nilTel.Inserts(0) != 0 {
		t.Error("nil telemetry must read as zero")
	}
}

// TestFanoutDeadlineDoesNotMaskRealError is the regression test for the
// root-cause-masking fix: when the parent deadline fires while a
// higher-ordinal leg's real failure is still propagating, the
// lower-ordinal leg's context.DeadlineExceeded must not win error
// selection. Against the pre-fix loop — which broke on the first
// non-Canceled error — this test fails with err = DeadlineExceeded.
func TestFanoutDeadlineDoesNotMaskRealError(t *testing.T) {
	boom := errors.New("shard 1 exploded")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	leg0done := make(chan struct{})
	_, err := Fanout(ctx, 2, func(ctx context.Context, shard int) (int, error) {
		if shard == 0 {
			// Returns DeadlineExceeded the moment the parent deadline
			// fires, then releases leg 1.
			<-ctx.Done()
			defer close(leg0done)
			return 0, ctx.Err()
		}
		// Leg 1 reports the real failure strictly after leg 0 has already
		// recorded its deadline error, so ordinal selection alone would
		// pick leg 0.
		<-leg0done
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the shard-1 failure (deadline expiry must not mask it)", err)
	}
}

// TestFanoutAllDeadline: when deadline expiry is the only failure, it is
// still returned — the exclusion applies only while a real error exists.
func TestFanoutAllDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := Fanout(ctx, 3, func(ctx context.Context, shard int) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestTelemetryRenderConcurrent hammers every counter from concurrent
// observers while Render runs — the race detector polices the atomics —
// then verifies that once writers quiesce, repeated renders are
// byte-identical (determinism) and reflect the exact totals written.
func TestTelemetryRenderConcurrent(t *testing.T) {
	tel := NewTelemetry(4)
	const (
		writers = 8
		perW    = 500
	)
	var wg, scraperWG sync.WaitGroup
	stop := make(chan struct{})
	scraperWG.Add(1)
	go func() { // concurrent scraper
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			tel.RenderAs(&sb, "congress_distshard")
			if !strings.Contains(sb.String(), "congress_distshard_count 4\n") {
				t.Error("mid-flight render lost the shard count")
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				s := (w + i) % 4
				tel.AddInserts(s, 2)
				tel.ObserveFanout(s, time.Duration(i)*time.Microsecond)
				tel.FanoutError(s)
				tel.AddRetry(s)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraperWG.Wait()

	var a, b strings.Builder
	tel.RenderAs(&a, "congress_distshard")
	tel.RenderAs(&b, "congress_distshard")
	if a.String() != b.String() {
		t.Error("renders of a quiesced state differ")
	}
	out := a.String()
	var inserts int64
	for s := 0; s < 4; s++ {
		inserts += tel.Inserts(s)
	}
	errs := int64(writers * perW)
	retries := int64(writers * perW)
	obs := int64(writers * perW)
	if inserts != int64(writers*perW*2) {
		t.Errorf("inserts total %d, want %d", inserts, writers*perW*2)
	}
	var seenErr, seenRetry, seenObs int64
	for s := 0; s < 4; s++ {
		seenErr += expositionValue(t, out, fmt.Sprintf(`congress_distshard_fanout_errors_total{shard="%d"}`, s))
		seenRetry += expositionValue(t, out, fmt.Sprintf(`congress_distshard_fanout_retries_total{shard="%d"}`, s))
		seenObs += expositionValue(t, out, fmt.Sprintf(`congress_distshard_fanout_seconds_count{shard="%d"}`, s))
	}
	if seenErr != errs || seenRetry != retries || seenObs != obs {
		t.Errorf("rendered totals errors=%d retries=%d observations=%d, want %d each", seenErr, seenRetry, seenObs, errs)
	}
}

// expositionValue extracts the integer value of the series whose
// rendered line starts with prefix.
func expositionValue(t *testing.T, exposition, prefix string) int64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			var v int64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, prefix+" "), "%d", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not rendered:\n%s", prefix, exposition)
	return 0
}
