package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewRouter(-3); err == nil {
		t.Error("negative shards accepted")
	}
	r, err := NewRouter(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Route("anything"); got != 0 {
		t.Errorf("single-shard route = %d", got)
	}
}

func TestRouterDeterministicAndInRange(t *testing.T) {
	r, _ := NewRouter(5)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("group-%d", i)
		a, b := r.Route(key), r.Route(key)
		if a != b {
			t.Fatalf("key %q routed to %d then %d", key, a, b)
		}
		if a < 0 || a >= 5 {
			t.Fatalf("key %q routed out of range: %d", key, a)
		}
	}
}

// TestRouterBalanceChiSquare checks that FNV-1a routing spreads group
// keys evenly: a chi-square goodness-of-fit statistic over the shard
// occupancy counts must stay below the 99.9% critical value, for every
// shard count the differential tests exercise.
func TestRouterBalanceChiSquare(t *testing.T) {
	// chi-square 0.999 quantiles for k-1 degrees of freedom.
	critical := map[int]float64{2: 10.83, 4: 16.27, 8: 24.32, 16: 39.25}
	const keys = 100_000
	for _, k := range []int{2, 4, 8, 16} {
		r, _ := NewRouter(k)
		counts := make([]int, k)
		for i := 0; i < keys; i++ {
			counts[r.Route(fmt.Sprintf("g\x1f%d\x1f%d", i, i%977))]++
		}
		expected := float64(keys) / float64(k)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		if chi2 > critical[k] {
			t.Errorf("k=%d: chi2 = %.2f exceeds 99.9%% critical %.2f (counts %v)", k, chi2, critical[k], counts)
		}
	}
}

func TestFanoutOrdersResultsByShard(t *testing.T) {
	out, err := Fanout(context.Background(), 8, func(ctx context.Context, shard int) (int, error) {
		// Finish in reverse order to prove ordering is by ordinal, not
		// completion.
		time.Sleep(time.Duration(8-shard) * time.Millisecond)
		return shard * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("out[%d] = %d, want %d (full: %v)", i, v, i*10, out)
		}
	}
}

func TestFanoutPropagatesFirstRealError(t *testing.T) {
	boom := errors.New("shard 3 exploded")
	var canceled atomic.Int32
	_, err := Fanout(context.Background(), 6, func(ctx context.Context, shard int) (int, error) {
		if shard == 3 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
			canceled.Add(1)
			return 0, ctx.Err()
		case <-time.After(2 * time.Second):
			return shard, nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the shard-3 failure (cancellation must not mask it)", err)
	}
	if canceled.Load() == 0 {
		t.Error("sibling legs were not canceled after the failure")
	}
}

func TestFanoutParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Fanout(ctx, 4, func(ctx context.Context, shard int) (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTelemetryRender(t *testing.T) {
	tel := NewTelemetry(2)
	tel.AddInserts(0, 7)
	tel.AddInserts(1, 3)
	tel.ObserveFanout(1, 5*time.Millisecond)
	tel.FanoutError(0)
	var sb strings.Builder
	tel.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"congress_shard_count 2\n",
		`congress_shard_inserts_total{shard="0"} 7`,
		`congress_shard_inserts_total{shard="1"} 3`,
		`congress_shard_fanout_errors_total{shard="0"} 1`,
		`congress_shard_fanout_seconds_count{shard="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `congress_shard_fanout_seconds_count{shard="0"}`) {
		t.Error("unobserved shard-0 histogram should not render")
	}
	// Out-of-range and nil receivers must be inert.
	tel.AddInserts(9, 1)
	tel.ObserveFanout(-1, time.Second)
	var nilTel *Telemetry
	nilTel.AddInserts(0, 1)
	nilTel.Render(&sb)
	if nilTel.Shards() != 0 || nilTel.Inserts(0) != 0 {
		t.Error("nil telemetry must read as zero")
	}
}
