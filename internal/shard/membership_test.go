package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMembershipValidation(t *testing.T) {
	if _, err := NewMembership(nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewMembership([]string{"http://a:1", "  "}); err == nil {
		t.Error("blank endpoint accepted")
	}
	if _, err := NewMembership([]string{"http://a:1", "http://a:1/"}); err == nil {
		t.Error("duplicate endpoint accepted (would double-count partials)")
	}
	m, err := NewMembership([]string{" http://a:1/ ", "http://b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Endpoints[0] != "http://a:1" || m.Endpoints[1] != "http://b:2" {
		t.Errorf("endpoints not normalized: %v", m.Endpoints)
	}
}

func TestLoadMembership(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shards.json")
	if err := os.WriteFile(path, []byte(`{"shards":["http://s0:8640","http://s1:8641"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMembership(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Endpoints) != 2 || m.Endpoints[1] != "http://s1:8641" {
		t.Errorf("loaded %v", m.Endpoints)
	}
	if _, err := LoadMembership(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"shards":[]}`), 0o644)
	if _, err := LoadMembership(bad); err == nil {
		t.Error("empty shard list accepted")
	}
}

func TestMembershipWaitHealthy(t *testing.T) {
	m, _ := NewMembership([]string{"http://s0", "http://s1"})
	// s1 becomes healthy only on its third probe.
	var s1probes atomic.Int32
	probe := func(ctx context.Context, endpoint string) error {
		if endpoint == "http://s1" && s1probes.Add(1) < 3 {
			return errors.New("still booting")
		}
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.WaitHealthy(ctx, time.Millisecond, probe); err != nil {
		t.Fatalf("WaitHealthy: %v", err)
	}
	if n := s1probes.Load(); n != 3 {
		t.Errorf("s1 probed %d times, want 3 (healthy endpoints must not be re-probed)", n)
	}

	// Timeout path: the error names the still-failing endpoint.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	err := m.WaitHealthy(ctx2, 5*time.Millisecond, func(ctx context.Context, endpoint string) error {
		if endpoint == "http://s0" {
			return errors.New("disk on fire")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "http://s0") || !strings.Contains(err.Error(), "disk on fire") {
		t.Errorf("timeout error must name the failing endpoint and cause, got: %v", err)
	}
}
