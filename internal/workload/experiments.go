package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/metrics"
	"github.com/approxdb/congress/internal/rewrite"
	"github.com/approxdb/congress/internal/sqlparse"
)

// AccuracyRow is one bar of Figures 14-16: a strategy's error on one
// query class.
type AccuracyRow struct {
	Strategy core.Strategy
	MeanPct  float64 // L1 error (the figures' primary metric)
	MaxPct   float64 // L∞ error (the paper reports relative order matches)
	Missing  int     // groups absent from the approximate answer
}

// queryError runs the query exactly and approximately on one testbed
// strategy and returns the group-error metrics. groupCols is the number
// of leading grouping columns; aggCol indexes the compared aggregate.
func (tb *Testbed) queryError(strat core.Strategy, query string, groupCols, aggCol int) (*metrics.GroupErrors, error) {
	a := tb.ByStrategy[strat]
	if a == nil {
		return nil, fmt.Errorf("workload: testbed has no synopsis for %v", strat)
	}
	exact, err := a.Exact(query)
	if err != nil {
		return nil, err
	}
	approx, err := a.Answer(query)
	if err != nil {
		return nil, err
	}
	return metrics.CompareAnswers(exact, approx, groupCols, aggCol)
}

// GroupByAccuracy measures each strategy's error on a group-by query
// (Figures 15 and 16; error is the mean percentage error over groups).
func (tb *Testbed) GroupByAccuracy(query string, groupCols, aggCol int) ([]AccuracyRow, error) {
	var out []AccuracyRow
	for _, strat := range core.Strategies {
		if _, ok := tb.ByStrategy[strat]; !ok {
			continue
		}
		ge, err := tb.queryError(strat, query, groupCols, aggCol)
		if err != nil {
			return nil, err
		}
		out = append(out, AccuracyRow{
			Strategy: strat,
			MeanPct:  finiteOr(ge.L1(), 100),
			MaxPct:   finiteOr(ge.LInf(), 100),
			Missing:  ge.MissingGroups,
		})
	}
	return out, nil
}

// Qg0Accuracy measures each strategy's mean error over the Q_g0 query
// set (Figure 14; error is the mean percentage error over queries).
func (tb *Testbed) Qg0Accuracy() ([]AccuracyRow, error) {
	rng := rand.New(rand.NewSource(tb.Params.Seed + 1000))
	queries := Qg0Set(tb.Params, rng)
	var out []AccuracyRow
	for _, strat := range core.Strategies {
		a, ok := tb.ByStrategy[strat]
		if !ok {
			continue
		}
		var sum, worst float64
		for _, q := range queries {
			exact, err := a.Exact(q)
			if err != nil {
				return nil, err
			}
			approx, err := a.Answer(q)
			if err != nil {
				return nil, err
			}
			ev, _ := exact.Rows[0][0].AsFloat()
			av, ok := approx.Rows[0][0].AsFloat()
			if !ok {
				av = 0 // empty sample selection estimates zero
			}
			e := finiteOr(metrics.RelativeErrorPct(ev, av), 100)
			sum += e
			if e > worst {
				worst = e
			}
		}
		out = append(out, AccuracyRow{
			Strategy: strat,
			MeanPct:  sum / float64(len(queries)),
			MaxPct:   worst,
		})
	}
	return out, nil
}

func finiteOr(v, fallback float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fallback
	}
	return v
}

// Experiment1 regenerates Figures 14, 15, and 16: strategy accuracy on
// Q_g0, Q_g3, and Q_g2 at the given parameters (the paper fixes SP=7%
// and discusses z=1.5).
func Experiment1(p Params) (qg0, qg3, qg2 []AccuracyRow, err error) {
	tb, err := NewTestbed(p, core.Strategies)
	if err != nil {
		return nil, nil, nil, err
	}
	if qg0, err = tb.Qg0Accuracy(); err != nil {
		return nil, nil, nil, err
	}
	if qg3, err = tb.GroupByAccuracy(Qg3, 3, 3); err != nil {
		return nil, nil, nil, err
	}
	if qg2, err = tb.GroupByAccuracy(Qg2, 2, 2); err != nil {
		return nil, nil, nil, err
	}
	return qg0, qg3, qg2, nil
}

// SizeSweepPoint is one x-position of Figure 17.
type SizeSweepPoint struct {
	SamplePct float64
	Rows      []AccuracyRow
}

// Experiment2 regenerates Figure 17: Q_g2 accuracy as the sample size
// grows, at fixed skew (the paper fixes z = 0.86).
func Experiment2(p Params, samplePcts []float64) ([]SizeSweepPoint, error) {
	p = p.withDefaults()
	var out []SizeSweepPoint
	for _, sp := range samplePcts {
		pp := p
		pp.SamplePct = sp
		tb, err := NewTestbed(pp, core.Strategies)
		if err != nil {
			return nil, err
		}
		rows, err := tb.GroupByAccuracy(Qg2, 2, 2)
		if err != nil {
			return nil, err
		}
		out = append(out, SizeSweepPoint{SamplePct: sp, Rows: rows})
	}
	return out, nil
}

// RewriteTiming is one cell of Table 3 / one curve point of Figure 18.
type RewriteTiming struct {
	Strategy rewrite.Strategy
	Elapsed  time.Duration
}

// TimingPoint is one parameter setting's timing results, including the
// exact (full-table) query time the paper reports as the baseline.
type TimingPoint struct {
	SamplePct float64
	NumGroups int
	Exact     time.Duration
	Rewrites  []RewriteTiming
}

// timeQuery executes the statement five times and reports the mean of
// the last four runs, as Section 7.3 does to mitigate startup effects.
func timeQuery(cat *engine.Catalog, stmt *sqlparse.SelectStmt) (time.Duration, error) {
	var total time.Duration
	for run := 0; run < 5; run++ {
		start := time.Now()
		if _, err := engine.Execute(cat, stmt); err != nil {
			return 0, err
		}
		if run > 0 {
			total += time.Since(start)
		}
	}
	return total / 4, nil
}

// RewritePerformance measures each rewrite strategy's Q_g2 execution
// time on one testbed (one Congress synopsis), plus the exact time.
func (tb *Testbed) RewritePerformance() (*TimingPoint, error) {
	a, ok := tb.ByStrategy[core.Congress]
	if !ok {
		return nil, fmt.Errorf("workload: rewrite experiments need a Congress synopsis")
	}
	point := &TimingPoint{SamplePct: tb.Params.SamplePct, NumGroups: tb.Params.NumGroups}

	exactStmt := sqlparse.MustParse(Qg2)
	var err error
	if point.Exact, err = timeQuery(a.Catalog(), exactStmt); err != nil {
		return nil, err
	}
	// Pre-parse each rewritten query so the timing loop measures pure
	// execution, as the paper's Oracle runs did.
	for _, strat := range rewrite.Strategies {
		sqlText, err := a.RewriteOnly(Qg2, strat)
		if err != nil {
			return nil, err
		}
		stmt, err := sqlparse.Parse(sqlText)
		if err != nil {
			return nil, err
		}
		d, err := timeQuery(a.Catalog(), stmt)
		if err != nil {
			return nil, err
		}
		point.Rewrites = append(point.Rewrites, RewriteTiming{Strategy: strat, Elapsed: d})
	}
	return point, nil
}

// Experiment3 regenerates Table 3: rewrite strategy times across sample
// percentages at NG=1000.
func Experiment3(p Params, samplePcts []float64) ([]*TimingPoint, error) {
	p = p.withDefaults()
	var out []*TimingPoint
	for _, sp := range samplePcts {
		pp := p
		pp.SamplePct = sp
		tb, err := NewTestbed(pp, []core.Strategy{core.Congress})
		if err != nil {
			return nil, err
		}
		point, err := tb.RewritePerformance()
		if err != nil {
			return nil, err
		}
		out = append(out, point)
	}
	return out, nil
}

// Experiment4 regenerates Figure 18: rewrite strategy times across
// group counts at SP=7%.
func Experiment4(p Params, groupCounts []int) ([]*TimingPoint, error) {
	p = p.withDefaults()
	var out []*TimingPoint
	for _, ng := range groupCounts {
		pp := p
		pp.NumGroups = ng
		tb, err := NewTestbed(pp, []core.Strategy{core.Congress})
		if err != nil {
			return nil, err
		}
		point, err := tb.RewritePerformance()
		if err != nil {
			return nil, err
		}
		out = append(out, point)
	}
	return out, nil
}
