package workload

import (
	"github.com/approxdb/congress/internal/core"
)

// SkewSweepPoint is one x-position of the skew-sensitivity sweep: each
// strategy's Q_g3 error at one group-size Zipf parameter.
type SkewSweepPoint struct {
	Skew float64
	Rows []AccuracyRow
}

// ExperimentZ sweeps the group-size skew z across the Table 1 range,
// measuring Q_g3 (finest grouping) accuracy per strategy. The paper's
// Section 7.2.1 observation anchors the left end — at z=0 all four
// strategies produce the same (uniform) allocation and hence the same
// error — and the divergence grows with skew, with House degrading
// fastest.
func ExperimentZ(p Params, skews []float64) ([]SkewSweepPoint, error) {
	p = p.withDefaults()
	var out []SkewSweepPoint
	for _, z := range skews {
		pp := p
		pp.Skew = z
		if z == 0 {
			// Zero is the zero-value sentinel in Params; an epsilon
			// skew is numerically indistinguishable from uniform.
			pp.Skew = 1e-9
		}
		tb, err := NewTestbed(pp, core.Strategies)
		if err != nil {
			return nil, err
		}
		rows, err := tb.GroupByAccuracy(Qg3, 3, 3)
		if err != nil {
			return nil, err
		}
		out = append(out, SkewSweepPoint{Skew: z, Rows: rows})
	}
	return out, nil
}
