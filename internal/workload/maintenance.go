package workload

import (
	"fmt"

	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/metrics"
	"github.com/approxdb/congress/internal/tpcd"
)

// MaintenanceRow is one phase of the drift experiment: the Q_g2 error
// of a stale (never-maintained) synopsis versus incrementally maintained
// ones, after a batch of inserts shifted the data distribution.
type MaintenanceRow struct {
	Phase        int
	InsertedRows int
	StaleErr     float64 // synopsis built once, never updated
	Eq8Err       float64 // Congress maintained via Eq. 8 decay
	DeltaErr     float64 // Congress maintained via reservoir+delta
}

// MaintenanceExperiment quantifies the Section 6 claim that maintenance
// "ensures that queries continue to be answered well even as the new
// data changes the database significantly": it builds one synopsis,
// then streams several insert batches with a *different* group-size
// skew (drift), comparing a never-refreshed synopsis against the two
// maintained Congress variants at each phase.
func MaintenanceExperiment(p Params, phases int) ([]MaintenanceRow, error) {
	p = p.withDefaults()
	if phases < 1 {
		return nil, fmt.Errorf("workload: need at least one phase")
	}

	base, err := tpcd.Generate(tpcd.Params{
		TableSize: p.TableSize,
		NumGroups: p.NumGroups,
		GroupSkew: p.Skew,
		Seed:      p.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Three independent middleware instances sharing one base relation.
	newAqua := func(delta bool) (*aqua.Aqua, *aqua.Synopsis, error) {
		cat := engine.NewCatalog()
		cat.Register(base)
		a := aqua.New(cat)
		s, err := a.CreateSynopsis(aqua.Config{
			Table:            "lineitem",
			GroupCols:        tpcd.GroupingAttrs,
			Strategy:         core.Congress,
			Space:            p.SampleSize(),
			DeltaMaintenance: delta,
			Seed:             p.Seed + 7,
		})
		return a, s, err
	}
	staleAqua, _, err := newAqua(false)
	if err != nil {
		return nil, err
	}
	eq8Aqua, eq8Syn, err := newAqua(false)
	if err != nil {
		return nil, err
	}
	deltaAqua, deltaSyn, err := newAqua(true)
	if err != nil {
		return nil, err
	}

	// Drift stream: new data arrives with inverted skew assignment (a
	// different seed reshuffles which groups are large).
	batch := p.TableSize / 2
	rows := make([]MaintenanceRow, 0, phases)
	for phase := 1; phase <= phases; phase++ {
		drift, err := tpcd.Generate(tpcd.Params{
			TableSize: batch,
			NumGroups: p.NumGroups,
			GroupSkew: 1.5,
			Seed:      p.Seed + int64(phase)*101,
		})
		if err != nil {
			return nil, err
		}
		for _, row := range drift.Rows() {
			base.Insert(row)
			eq8Syn.Insert(row)
			deltaSyn.Insert(row)
			// The stale synopsis sees nothing.
		}
		if err := eq8Aqua.Refresh("lineitem"); err != nil {
			return nil, err
		}
		if err := deltaAqua.Refresh("lineitem"); err != nil {
			return nil, err
		}

		row := MaintenanceRow{Phase: phase, InsertedRows: phase * batch}
		if row.StaleErr, err = qg2Error(staleAqua); err != nil {
			return nil, err
		}
		if row.Eq8Err, err = qg2Error(eq8Aqua); err != nil {
			return nil, err
		}
		if row.DeltaErr, err = qg2Error(deltaAqua); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func qg2Error(a *aqua.Aqua) (float64, error) {
	exact, err := a.Exact(Qg2)
	if err != nil {
		return 0, err
	}
	approx, err := a.Answer(Qg2)
	if err != nil {
		return 0, err
	}
	ge, err := metrics.CompareAnswers(exact, approx, 2, 2)
	if err != nil {
		return 0, err
	}
	return finiteOr(ge.L1(), 100), nil
}
