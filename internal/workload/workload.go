// Package workload defines the Section 7 experimental testbed: the
// Table 1 parameter space, the Table 2 query classes (Q_g0, Q_g2,
// Q_g3), and runners that regenerate every accuracy figure (14-17) and
// performance table/figure (Table 3, Figure 18) of the paper.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/tpcd"
)

// Params is the experiment parameter space of Table 1.
type Params struct {
	// TableSize is T (paper: 100K-6M, default 1M).
	TableSize int
	// SamplePct is SP, the sample size as a percentage of T
	// (paper: 1-75, default 7).
	SamplePct float64
	// NumGroups is NG (paper: 10-200K, default 1000).
	NumGroups int
	// Skew is the group-size Zipf z (paper: 0-1.5, default 0.86).
	Skew float64
	// Qg0Queries is the number of random-range no-group-by queries in
	// the Q_g0 set (paper: 20).
	Qg0Queries int
	// Seed drives data generation and sampling.
	Seed int64
}

// DefaultParams mirrors the default column of Table 1.
var DefaultParams = Params{
	TableSize:  1_000_000,
	SamplePct:  7,
	NumGroups:  1000,
	Skew:       0.86,
	Qg0Queries: 20,
	Seed:       1,
}

// withDefaults fills zero fields from DefaultParams.
func (p Params) withDefaults() Params {
	d := DefaultParams
	if p.TableSize != 0 {
		d.TableSize = p.TableSize
	}
	if p.SamplePct != 0 {
		d.SamplePct = p.SamplePct
	}
	if p.NumGroups != 0 {
		d.NumGroups = p.NumGroups
	}
	if p.Skew != 0 {
		d.Skew = p.Skew
	}
	if p.Qg0Queries != 0 {
		d.Qg0Queries = p.Qg0Queries
	}
	if p.Seed != 0 {
		d.Seed = p.Seed
	}
	return d
}

// SampleSize converts SP to a tuple budget.
func (p Params) SampleSize() int {
	n := int(float64(p.TableSize) * p.SamplePct / 100)
	if n < 1 {
		n = 1
	}
	return n
}

// The Table 2 query texts.
const (
	// Qg2 groups on two attributes (derived from TPC-D Query 3).
	Qg2 = `select l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice)
from lineitem
group by l_returnflag, l_linestatus`
	// Qg3 groups at the finest granularity.
	Qg3 = `select l_returnflag, l_linestatus, l_shipdate, sum(l_quantity)
from lineitem
group by l_returnflag, l_linestatus, l_shipdate`
)

// Qg0 builds one no-group-by range query: SELECT sum(l_quantity) FROM
// lineitem WHERE s <= l_id AND l_id <= s+c.
func Qg0(s, c int64) string {
	return fmt.Sprintf("select sum(l_quantity) from lineitem where %d <= l_id and l_id <= %d", s, s+c)
}

// Qg0Set draws the paper's query set: n queries with s uniform in
// [0, 0.95·T] and range width c = selectivity·T (the paper fixes c at
// 70K on a 1M table, i.e. 7%%).
func Qg0Set(p Params, rng *rand.Rand) []string {
	c := int64(float64(p.TableSize) * 0.07)
	if c < 1 {
		c = 1
	}
	out := make([]string, p.Qg0Queries)
	for i := range out {
		s := int64(rng.Float64() * 0.95 * float64(p.TableSize))
		out[i] = Qg0(s, c)
	}
	return out
}

// Testbed bundles a generated lineitem relation with one Aqua instance
// (and synopsis) per allocation strategy, all sharing the same base
// data. Building the data dominates setup cost, so the testbed is built
// once per experiment and reused across strategies.
type Testbed struct {
	Params Params
	Rel    *engine.Relation
	// ByStrategy maps each allocation strategy to an Aqua middleware
	// whose catalog holds the shared base relation plus that strategy's
	// synopsis relations.
	ByStrategy map[core.Strategy]*aqua.Aqua
}

// NewTestbed generates the data and builds one synopsis per strategy.
func NewTestbed(p Params, strategies []core.Strategy) (*Testbed, error) {
	p = p.withDefaults()
	rel, err := tpcd.Generate(tpcd.Params{
		TableSize: p.TableSize,
		NumGroups: p.NumGroups,
		GroupSkew: p.Skew,
		Seed:      p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tb := &Testbed{Params: p, Rel: rel, ByStrategy: make(map[core.Strategy]*aqua.Aqua)}
	for _, strat := range strategies {
		cat := engine.NewCatalog()
		cat.Register(rel)
		a := aqua.New(cat)
		if _, err := a.CreateSynopsis(aqua.Config{
			Table:     "lineitem",
			GroupCols: tpcd.GroupingAttrs,
			Strategy:  strat,
			Space:     p.SampleSize(),
			Seed:      p.Seed + int64(strat) + 17,
		}); err != nil {
			return nil, fmt.Errorf("workload: synopsis for %v: %w", strat, err)
		}
		tb.ByStrategy[strat] = a
	}
	return tb, nil
}
