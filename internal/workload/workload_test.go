package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
)

// smallParams keeps experiment tests fast while preserving the paper's
// shapes: heavy skew so House suffers on small groups.
var smallParams = Params{
	TableSize:  30000,
	SamplePct:  7,
	NumGroups:  27,
	Skew:       1.5,
	Qg0Queries: 10,
	Seed:       7,
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.TableSize != 1_000_000 || p.SamplePct != 7 || p.NumGroups != 1000 || p.Qg0Queries != 20 {
		t.Errorf("defaults %+v", p)
	}
	if got := (Params{TableSize: 1000, SamplePct: 10}).SampleSize(); got != 100 {
		t.Errorf("sample size %d", got)
	}
	if got := (Params{TableSize: 10, SamplePct: 0.5}).SampleSize(); got != 1 {
		t.Errorf("tiny sample size %d, want clamp to 1", got)
	}
}

func TestQg0Set(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	qs := Qg0Set(smallParams, rng)
	if len(qs) != 10 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, q := range qs {
		if !strings.Contains(q, "l_id") || !strings.Contains(q, "sum(l_quantity)") {
			t.Errorf("bad Qg0 %q", q)
		}
	}
}

func TestNewTestbed(t *testing.T) {
	tb, err := NewTestbed(smallParams, core.Strategies)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.ByStrategy) != 4 {
		t.Fatalf("strategies %d", len(tb.ByStrategy))
	}
	if tb.Rel.NumRows() != smallParams.TableSize {
		t.Fatalf("rows %d", tb.Rel.NumRows())
	}
}

// TestExperiment1Shapes checks the headline claims of Section 7.2.1 on
// a scaled-down testbed: Senate loses to House on Q_g0; House loses to
// Senate on Q_g3; Congress is competitive everywhere (within a factor
// of the best, never the worst by a wide margin).
func TestExperiment1Shapes(t *testing.T) {
	qg0, qg3, qg2, err := Experiment1(smallParams)
	if err != nil {
		t.Fatal(err)
	}
	get := func(rows []AccuracyRow, s core.Strategy) AccuracyRow {
		for _, r := range rows {
			if r.Strategy == s {
				return r
			}
		}
		t.Fatalf("strategy %v missing", s)
		return AccuracyRow{}
	}

	// Figure 14: Senate worst on Q_g0.
	if h, s := get(qg0, core.House).MeanPct, get(qg0, core.Senate).MeanPct; s <= h {
		t.Errorf("Qg0: senate %.2f%% should exceed house %.2f%%", s, h)
	}
	// Figure 15: House worst on Q_g3, Senate best.
	if h, s := get(qg3, core.House).MeanPct, get(qg3, core.Senate).MeanPct; h <= s {
		t.Errorf("Qg3: house %.2f%% should exceed senate %.2f%%", h, s)
	}
	// Congress within 2.5x of the best everywhere (the paper's
	// "consistently best or close to best").
	for name, rows := range map[string][]AccuracyRow{"qg0": qg0, "qg3": qg3, "qg2": qg2} {
		best := rows[0].MeanPct
		for _, r := range rows {
			if r.MeanPct < best {
				best = r.MeanPct
			}
		}
		c := get(rows, core.Congress).MeanPct
		if c > best*2.5+1 {
			t.Errorf("%s: congress %.2f%% vs best %.2f%% — not competitive", name, c, best)
		}
	}
	// No strategy may drop groups on the group-by queries (user
	// requirement 1).
	for _, r := range append(append([]AccuracyRow{}, qg3...), qg2...) {
		if r.Strategy != core.House && r.Missing != 0 {
			t.Errorf("%v missing %d groups", r.Strategy, r.Missing)
		}
	}
}

// TestExperiment2ErrorsShrink checks Figure 17's shape: Congress error
// drops (weakly) as the sample grows.
func TestExperiment2ErrorsShrink(t *testing.T) {
	points, err := Experiment2(smallParams, []float64{2, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %d", len(points))
	}
	congress := func(p SizeSweepPoint) float64 {
		for _, r := range p.Rows {
			if r.Strategy == core.Congress {
				return r.MeanPct
			}
		}
		t.Fatal("congress row missing")
		return 0
	}
	lo, hi := congress(points[0]), congress(points[1])
	if hi >= lo {
		t.Errorf("congress error did not drop with sample size: 2%%->%.2f%%, 20%%->%.2f%%", lo, hi)
	}
}

// TestExperimentZShape checks the skew sweep's anchors: at z=0 the four
// strategies' errors are within noise of each other (identical
// allocations), and at z=1.5 House is far worse than Senate.
func TestExperimentZShape(t *testing.T) {
	p := smallParams
	p.TableSize = 20000
	points, err := ExperimentZ(p, []float64{0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	get := func(rows []AccuracyRow, s core.Strategy) float64 {
		for _, r := range rows {
			if r.Strategy == s {
				return r.MeanPct
			}
		}
		t.Fatal("missing strategy")
		return 0
	}
	flat := points[0].Rows
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range flat {
		lo = math.Min(lo, r.MeanPct)
		hi = math.Max(hi, r.MeanPct)
	}
	if hi > 2*lo+5 {
		t.Errorf("z=0 errors should be close: spread %.2f%%..%.2f%%", lo, hi)
	}
	// At this small scale (27 large-ish groups) the gap is moderate;
	// require a clear ordering rather than the paper-scale blowout.
	skewed := points[1].Rows
	if get(skewed, core.House) < 1.3*get(skewed, core.Senate) {
		t.Errorf("z=1.5: house %.2f%% should clearly exceed senate %.2f%%",
			get(skewed, core.House), get(skewed, core.Senate))
	}
}

// TestMaintenanceExperiment checks the drift experiment's headline: the
// stale synopsis degrades while the maintained ones stay materially
// better.
func TestMaintenanceExperiment(t *testing.T) {
	p := smallParams
	p.TableSize = 12000
	rows, err := MaintenanceExperiment(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.InsertedRows != 12000 {
		t.Errorf("inserted %d", last.InsertedRows)
	}
	if last.StaleErr <= last.Eq8Err || last.StaleErr <= last.DeltaErr {
		t.Errorf("maintenance did not help: stale %.2f%%, eq8 %.2f%%, delta %.2f%%",
			last.StaleErr, last.Eq8Err, last.DeltaErr)
	}
	if _, err := MaintenanceExperiment(p, 0); err == nil {
		t.Error("zero phases accepted")
	}
}

// TestExperiment3And4Timings checks Table 3 / Figure 18 mechanics: all
// four strategies produce positive timings and all are faster than the
// exact query at small sample fractions. The comparison only holds
// engine-for-engine: the exact query is a single-table aggregate that
// the vectorized path accelerates, while the Normalized rewrites join
// sample and aux relations on the row path, so the paper's claim is
// checked with both on the row engine.
func TestExperiment3And4Timings(t *testing.T) {
	prev := engine.SetVectorized(false)
	defer engine.SetVectorized(prev)
	points, err := Experiment3(smallParams, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Exact <= 0 {
		t.Fatal("exact timing missing")
	}
	if len(p.Rewrites) != 4 {
		t.Fatalf("rewrites %d", len(p.Rewrites))
	}
	for _, rt := range p.Rewrites {
		if rt.Elapsed <= 0 {
			t.Errorf("%v elapsed %v", rt.Strategy, rt.Elapsed)
		}
		if rt.Elapsed > p.Exact {
			t.Errorf("%v slower than exact: %v vs %v", rt.Strategy, rt.Elapsed, p.Exact)
		}
	}

	points4, err := Experiment4(smallParams, []int{8, 27})
	if err != nil {
		t.Fatal(err)
	}
	if len(points4) != 2 || points4[0].NumGroups != 8 {
		t.Fatalf("experiment 4 points %+v", points4)
	}
}
