package repl

import "testing"

// A rotation with no post-rotation records must still converge to
// CaughtUp: the follower rotates onto the empty live segment and
// observes offset == watermark, seq == 0 there.
func TestFollowerCaughtUpAfterEmptyRotation(t *testing.T) {
	h := newHarness(t, 2)
	ft := &fakeTarget{}
	f := startTestFollower(t, h, ft, t.TempDir())
	for i := 0; i < 3; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "pre-rotation tail", func() bool { return ft.count() == 3 && f.Status().CaughtUp })

	if err := h.manager().Snapshot(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "caught up on empty post-rotation segment", func() bool {
		st := f.Status()
		return st.CaughtUp && st.LagRecords == 0
	})
}

// A snapshot cascade (every WAL-logged DDL requests one) can retire a
// generation before a live follower steps through it. The follower must
// not die: it re-bootstraps in place from the leader's newest snapshot
// and keeps tailing.
func TestFollowerRebootstrapAfterPrunedGeneration(t *testing.T) {
	h := newHarness(t, 1) // aggressive retention: only the newest snapshot survives
	ft := &fakeTarget{}
	f := startTestFollower(t, h, ft, t.TempDir())
	for i := 0; i < 4; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "pre-cascade tail", func() bool { return ft.count() == 4 && f.Status().CaughtUp })

	// Two back-to-back rotations while the leader is unreachable: with
	// KeepSnapshots=1 the first new generation's (empty) segment is
	// pruned as soon as the second snapshot lands, so by the time the
	// follower can poll again the WAL chain has a hole it cannot walk.
	h.setDown(true)
	for i := 0; i < 2; i++ {
		if err := h.manager().Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	h.setDown(false)
	waitFor(t, "re-converge after pruned generation", func() bool {
		st := f.Status()
		return st.CaughtUp && st.LagRecords == 0 && st.Gen == h.manager().Stats().Generation
	})
	select {
	case err := <-f.Fatal():
		t.Fatalf("follower died instead of re-bootstrapping: %v", err)
	default:
	}

	// The re-seeded follower still tails new writes exactly.
	h.insert(int64(100))
	waitFor(t, "tail after re-bootstrap", func() bool {
		return f.Status().CaughtUp && sameValues(ft.values(), h.values())
	})
	if got := f.Status().Rebootstraps; got < 1 {
		t.Fatalf("rebootstraps = %d, want >= 1", got)
	}
}
