package repl

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxdb/congress/internal/persist"
)

// Target is the warehouse surface a follower replays into. Both methods
// must route through the same paths recovery uses, so replayed records
// feed synopsis maintainers and bump epochs exactly like local
// mutations (congress.Warehouse implements it via RestoreSnapshot /
// ApplyRecord).
type Target interface {
	RestoreSnapshot(st *persist.State) error
	ApplyRecord(rec *persist.Record) error
}

// FollowerOptions configures a follower.
type FollowerOptions struct {
	// Leader is the leader's base URL, e.g. "http://10.0.0.1:8642".
	Leader string
	// Dir is the follower's local data directory. Shipped snapshots and
	// segments are persisted here, so a restart resumes from local disk.
	Dir string
	// Target receives the replayed state and records.
	Target Target
	// ID identifies this follower to the leader (metrics labels).
	// Default "<hostname>-<pid>".
	ID string
	// WaitMS is the long-poll window per WAL request. Default 2000.
	WaitMS int
	// MinBackoff/MaxBackoff bound the reconnect backoff (exponential
	// with jitter). Defaults 100ms / 5s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// BootstrapTimeout bounds how long Start retries a transiently
	// unreachable leader before giving up. Default 30s.
	BootstrapTimeout time.Duration
	// KeepSnapshots is how many local snapshot generations to retain
	// when compacting at rotation. Default 2.
	KeepSnapshots int
	// HTTPClient defaults to a client without a global timeout
	// (per-request contexts bound each call).
	HTTPClient *http.Client
	// Logger defaults to slog.Default().
	Logger *slog.Logger
}

func (o *FollowerOptions) withDefaults() error {
	if o.Leader == "" || o.Dir == "" || o.Target == nil {
		return fmt.Errorf("repl: FollowerOptions needs Leader, Dir, and Target")
	}
	if _, err := url.Parse(o.Leader); err != nil {
		return fmt.Errorf("repl: malformed leader URL: %w", err)
	}
	o.Leader = strings.TrimRight(o.Leader, "/")
	if o.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "follower"
		}
		o.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.WaitMS <= 0 {
		o.WaitMS = 2000
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.BootstrapTimeout <= 0 {
		o.BootstrapTimeout = 30 * time.Second
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return nil
}

// terminalError marks failures a reconnect cannot heal: divergence, or
// a record the target refuses to apply. The follower surfaces them on
// Fatal() and stops; a process restart (which may wipe the local
// directory and re-bootstrap) is the recovery path. Pruned leader
// history is NOT terminal: the follower re-bootstraps in place from the
// leader's newest snapshot (see rebootstrap), and only turns terminal
// when the leader has no snapshot to offer either.
type terminalError struct{ err error }

func (e terminalError) Error() string { return e.err.Error() }
func (e terminalError) Unwrap() error { return e.err }

func terminal(format string, args ...any) error {
	return terminalError{fmt.Errorf(format, args...)}
}

// IsTerminal reports whether a follower error means its local state can
// no longer converge with the leader by retrying.
func IsTerminal(err error) bool {
	_, ok := err.(terminalError)
	return ok
}

// Follower tails a leader: bootstrap (local disk first, else a shipped
// snapshot), then repeat — fetch a chunk of durable WAL bytes, verify
// every frame's checksum, append the verified bytes to the local
// segment file, apply each record to the target. The local directory
// always satisfies the persist invariant, so a restart recovers from it
// exactly like the leader recovers from its own.
type Follower struct {
	opts FollowerOptions
	hc   *http.Client
	log  *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	fatal  chan error
	once   sync.Once
	done   chan struct{}

	mu            sync.Mutex
	gen           uint64 // segment currently being shipped
	offset        int64  // verified local bytes of that segment (incl. header)
	segRecords    int64  // records applied from that segment
	leaderGen     uint64 // leader's current generation, from headers
	leaderSeq     int64  // leader's current-segment record count
	lagAtManifest int64  // manifest-derived lag when behind a generation
	appliedAtMf   int64  // recordsApplied at the manifest fetch
	haveManifest  bool
	caughtUp      bool
	lastCaughtUp  time.Time
	lastErr       string
	localFile     *os.File // current segment, open for append (lazy)

	reconnects       atomic.Int64
	segmentsShipped  atomic.Int64
	bytesShipped     atomic.Int64
	recordsApplied   atomic.Int64
	chunksRejected   atomic.Int64
	snapshotsFetched atomic.Int64
	rebootstraps     atomic.Int64
}

// NewFollower validates the options; Start performs the bootstrap.
func NewFollower(opts FollowerOptions) (*Follower, error) {
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Follower{
		opts:   opts,
		hc:     opts.HTTPClient,
		log:    opts.Logger,
		ctx:    ctx,
		cancel: cancel,
		fatal:  make(chan error, 1),
		done:   make(chan struct{}),
	}, nil
}

// Fatal delivers the error that stopped the follower for good (at most
// one). Transient failures never appear here — they are retried.
func (f *Follower) Fatal() <-chan error { return f.fatal }

func (f *Follower) fail(err error) {
	f.once.Do(func() {
		f.mu.Lock()
		f.lastErr = err.Error()
		f.mu.Unlock()
		f.log.Error("replication stopped", slog.String("err", err.Error()))
		f.fatal <- err
	})
}

// Start bootstraps the target — from the local directory when it holds
// a valid snapshot, otherwise from a snapshot shipped by the leader —
// and launches the tail loop. It returns only after the target reflects
// a consistent cut of the leader's history.
func (f *Follower) Start() error {
	if err := os.MkdirAll(f.opts.Dir, 0o755); err != nil {
		return err
	}
	resumed, err := f.bootstrapLocal()
	if err != nil {
		return err
	}
	if !resumed {
		if err := f.bootstrapRemote(); err != nil {
			return err
		}
	}
	go f.run()
	return nil
}

// Close stops the tail loop and releases the local segment file. The
// target keeps serving its last replayed state.
func (f *Follower) Close() {
	f.cancel()
	<-f.done
	f.mu.Lock()
	if f.localFile != nil {
		f.localFile.Close()
		f.localFile = nil
	}
	f.mu.Unlock()
}

// bootstrapLocal resumes from the follower's own directory: newest
// valid local snapshot plus replay of the local segments it does not
// cover. Reports false when the directory holds no usable snapshot.
func (f *Follower) bootstrapLocal() (bool, error) {
	st, snapGen, _, err := persist.LoadNewestSnapshot(f.opts.Dir)
	if err != nil || st == nil {
		return false, err
	}
	if err := f.opts.Target.RestoreSnapshot(st); err != nil {
		return false, fmt.Errorf("repl: restoring local snapshot %016x: %w", snapGen, err)
	}
	segs, err := persist.ListSegments(f.opts.Dir)
	if err != nil {
		return false, err
	}
	gen, offset, segRecords := snapGen, persist.SegmentHeaderSize, int64(0)
	for _, g := range segs {
		if g < snapGen {
			continue
		}
		path := persist.WALPath(f.opts.Dir, g)
		records, truncated, err := persist.ReadWAL(path, func(payload []byte) error {
			rec, derr := persist.DecodeRecord(payload)
			if derr != nil {
				return derr
			}
			return f.opts.Target.ApplyRecord(rec)
		})
		if err != nil {
			return false, fmt.Errorf("repl: replaying local segment %016x: %w", g, err)
		}
		if truncated > 0 {
			f.log.Warn("truncated torn local segment tail",
				slog.String("segment", fmt.Sprintf("%016x", g)), slog.Int64("bytes", truncated))
		}
		info, err := os.Stat(path)
		if err != nil {
			return false, err
		}
		gen, offset, segRecords = g, info.Size(), int64(records)
		f.recordsApplied.Add(int64(records))
	}
	f.mu.Lock()
	f.gen, f.offset, f.segRecords = gen, offset, segRecords
	f.lastCaughtUp = time.Now()
	f.mu.Unlock()
	f.log.Info("resumed from local disk",
		slog.String("segment", fmt.Sprintf("%016x", gen)), slog.Int64("offset", offset))
	return true, nil
}

// bootstrapRemote fetches the leader's newest snapshot, persists it
// locally, and restores it into the target. Transient fetch failures
// retry with backoff until BootstrapTimeout.
func (f *Follower) bootstrapRemote() error {
	deadline := time.Now().Add(f.opts.BootstrapTimeout)
	backoff := f.opts.MinBackoff
	for {
		err := f.tryBootstrapRemote()
		if err == nil {
			return nil
		}
		if IsTerminal(err) || time.Now().After(deadline) {
			return err
		}
		f.log.Warn("bootstrap attempt failed, retrying", slog.String("err", err.Error()))
		select {
		case <-f.ctx.Done():
			return f.ctx.Err()
		case <-time.After(jittered(backoff)):
		}
		backoff = nextBackoff(backoff, f.opts.MaxBackoff)
	}
}

func (f *Follower) tryBootstrapRemote() error {
	mf, err := f.fetchManifest()
	if err != nil {
		return err
	}
	if len(mf.Snapshots) == 0 {
		return fmt.Errorf("repl: leader has no snapshot to bootstrap from")
	}
	snapGen := mf.Snapshots[len(mf.Snapshots)-1]
	st, err := f.fetchSnapshot(snapGen)
	if err != nil {
		return err
	}
	if err := f.opts.Target.RestoreSnapshot(st); err != nil {
		return terminal("repl: restoring shipped snapshot %016x: %w", snapGen, err)
	}
	f.snapshotsFetched.Add(1)
	f.mu.Lock()
	f.gen, f.offset, f.segRecords = snapGen, persist.SegmentHeaderSize, 0
	f.lastCaughtUp = time.Now()
	f.mu.Unlock()
	f.log.Info("bootstrapped from leader snapshot",
		slog.String("snapshot", fmt.Sprintf("%016x", snapGen)), slog.String("leader", f.opts.Leader))
	return nil
}

// rebootstrap re-seeds the target from the leader's newest snapshot
// after the leader pruned a generation this follower still needed.
// Rapid snapshot cascades (every WAL-logged DDL — AttachRelation,
// BuildJoinSynopsis — requests one) can retire an empty intermediate
// segment before an otherwise caught-up follower steps through it. A
// snapshot at generation S reflects every record in segments < S, and
// the follower only lands here at a generation at or below the pruned
// one, so restoring a newer snapshot is a consistent jump forward —
// the process-restart recovery path, performed in place. Terminal only
// when the leader has no snapshot newer than the follower's position.
func (f *Follower) rebootstrap(oldGen uint64) error {
	f.mu.Lock()
	if f.localFile != nil {
		f.localFile.Close()
		f.localFile = nil
	}
	f.caughtUp = false
	f.haveManifest = false
	f.mu.Unlock()

	mf, err := f.fetchManifest()
	if err != nil {
		return err
	}
	var snapGen uint64
	for _, s := range mf.Snapshots {
		if s > oldGen && s > snapGen {
			snapGen = s
		}
	}
	if snapGen == 0 {
		return terminal("repl: leader pruned history past %016x and offers no newer snapshot to re-bootstrap from", oldGen)
	}
	st, err := f.fetchSnapshot(snapGen)
	if err != nil {
		return err
	}
	if err := f.opts.Target.RestoreSnapshot(st); err != nil {
		return terminal("repl: restoring shipped snapshot %016x: %w", snapGen, err)
	}
	f.snapshotsFetched.Add(1)
	f.rebootstraps.Add(1)
	f.mu.Lock()
	f.gen, f.offset, f.segRecords = snapGen, persist.SegmentHeaderSize, 0
	f.mu.Unlock()
	f.noteManifest(mf, snapGen)
	f.compact(mf, snapGen)
	f.log.Warn("re-bootstrapped from leader snapshot after pruned generation",
		slog.String("pruned_after", fmt.Sprintf("%016x", oldGen)),
		slog.String("snapshot", fmt.Sprintf("%016x", snapGen)))
	return nil
}

// run is the tail loop: poll, classify failures, back off on transient
// ones, die on terminal ones.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.opts.MinBackoff
	for {
		select {
		case <-f.ctx.Done():
			return
		default:
		}
		err := f.poll()
		if err == nil {
			backoff = f.opts.MinBackoff
			continue
		}
		if f.ctx.Err() != nil {
			return
		}
		if IsTerminal(err) {
			f.fail(err)
			return
		}
		f.reconnects.Add(1)
		f.mu.Lock()
		f.lastErr = err.Error()
		f.mu.Unlock()
		f.log.Warn("replication poll failed, backing off",
			slog.String("err", err.Error()), slog.Duration("backoff", backoff))
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(jittered(backoff)):
		}
		backoff = nextBackoff(backoff, f.opts.MaxBackoff)
	}
}

// poll performs one WAL request/verify/persist/apply cycle.
func (f *Follower) poll() error {
	f.mu.Lock()
	gen, offset, segRecords := f.gen, f.offset, f.segRecords
	f.mu.Unlock()

	reqURL := fmt.Sprintf("%s/v1/repl/wal/%016x?from=%d&wait_ms=%d&applied=%d&id=%s",
		f.opts.Leader, gen, offset, f.opts.WaitMS, segRecords, url.QueryEscape(f.opts.ID))
	ctx, cancel := context.WithTimeout(f.ctx, time.Duration(f.opts.WaitMS)*time.Millisecond+15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, reqURL, nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return fmt.Errorf("repl: wal request: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		// The leader pruned this segment. Everything it held (and more)
		// is covered by a newer leader snapshot; jump to it.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return f.rebootstrap(gen)
	case http.StatusConflict:
		return terminal("repl: diverged from leader at segment %016x offset %d (leader lost history this follower holds)", gen, offset)
	case http.StatusBadRequest:
		return terminal("repl: leader rejected wal request for segment %016x offset %d", gen, offset)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("repl: leader returned %s for segment %016x", resp.Status, gen)
	}

	curGen, err := strconv.ParseUint(resp.Header.Get(HeaderCurrentGen), 16, 64)
	if err != nil {
		return fmt.Errorf("repl: malformed %s header", HeaderCurrentGen)
	}
	watermark, err := strconv.ParseInt(resp.Header.Get(HeaderWatermark), 10, 64)
	if err != nil {
		return fmt.Errorf("repl: malformed %s header", HeaderWatermark)
	}
	leaderSeq, _ := strconv.ParseInt(resp.Header.Get(HeaderCurrentSeq), 10, 64)

	body, err := io.ReadAll(io.LimitReader(resp.Body, maxChunkBody))
	if err != nil {
		return fmt.Errorf("repl: reading chunk: %w", err)
	}

	if len(body) > 0 {
		payloads, verr := verifyFrames(body)
		if verr != nil {
			// A corrupt chunk (bit flip in transit or on the leader's
			// disk) is dropped whole before anything touches the local
			// WAL, then re-requested from the last verified offset.
			f.chunksRejected.Add(1)
			return fmt.Errorf("repl: rejected chunk for segment %016x at %d: %w", gen, offset, verr)
		}
		if err := f.persistChunk(gen, offset, body); err != nil {
			return err
		}
		for _, payload := range payloads {
			rec, derr := persist.DecodeRecord(payload)
			if derr != nil {
				return terminal("repl: decoding verified record in segment %016x: %w", gen, derr)
			}
			if aerr := f.opts.Target.ApplyRecord(rec); aerr != nil {
				return terminal("repl: applying record in segment %016x: %w", gen, aerr)
			}
		}
		f.bytesShipped.Add(int64(len(body)))
		f.recordsApplied.Add(int64(len(payloads)))
		offset += int64(len(body))
		segRecords += int64(len(payloads))
	}

	f.mu.Lock()
	f.offset, f.segRecords = offset, segRecords
	f.leaderGen, f.leaderSeq = curGen, leaderSeq
	f.lastErr = ""
	if gen == curGen {
		f.haveManifest = false
		f.caughtUp = offset >= watermark && segRecords >= leaderSeq
		if f.caughtUp {
			f.lastCaughtUp = time.Now()
		}
	} else {
		f.caughtUp = false
	}
	f.mu.Unlock()

	if curGen > gen && offset >= watermark {
		return f.rotate(gen)
	}
	if curGen > gen && !f.manifestFresh() {
		// Mid-segment behind a generation: refresh the manifest-derived
		// lag estimate (exact lag needs per-segment record counts).
		if mf, merr := f.fetchManifest(); merr == nil {
			f.noteManifest(mf, gen)
		}
	}
	return nil
}

// maxChunkBody bounds one chunk read; far above any leader MaxChunk yet
// small enough that a misbehaving peer cannot exhaust memory.
const maxChunkBody = 64 << 20

var followCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// verifyFrames checks that buf is a whole number of intact WAL frames
// and returns their payloads (aliasing buf). Any framing or checksum
// violation rejects the entire chunk.
func verifyFrames(buf []byte) ([][]byte, error) {
	var payloads [][]byte
	off := 0
	for off < len(buf) {
		if len(buf)-off < 8 {
			return nil, fmt.Errorf("truncated frame header at %d", off)
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		crc := binary.LittleEndian.Uint32(buf[off+4:])
		if n > len(buf)-off-8 {
			return nil, fmt.Errorf("frame at %d overruns chunk", off)
		}
		payload := buf[off+8 : off+8+n]
		if crc32.Checksum(payload, followCastagnoli) != crc {
			return nil, fmt.Errorf("frame at %d fails checksum", off)
		}
		payloads = append(payloads, payload)
		off += 8 + n
	}
	return payloads, nil
}

// persistChunk appends verified bytes to the local copy of segment gen,
// creating the file (with header) on first write, and fsyncs so the
// local directory never trails what the target has applied by more than
// one chunk.
func (f *Follower) persistChunk(gen uint64, offset int64, chunk []byte) error {
	f.mu.Lock()
	file := f.localFile
	f.mu.Unlock()
	if file == nil {
		path := persist.WALPath(f.opts.Dir, gen)
		var err error
		if offset == persist.SegmentHeaderSize {
			if _, serr := os.Stat(path); os.IsNotExist(serr) {
				file, err = persist.CreateSegmentFile(path)
			} else {
				file, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			}
		} else {
			file, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		}
		if err != nil {
			return fmt.Errorf("repl: opening local segment %016x: %w", gen, err)
		}
		f.mu.Lock()
		f.localFile = file
		f.mu.Unlock()
	}
	if _, err := file.Write(chunk); err != nil {
		return terminal("repl: writing local segment %016x: %w", gen, err)
	}
	if err := file.Sync(); err != nil {
		return terminal("repl: syncing local segment %016x: %w", gen, err)
	}
	return nil
}

// rotate advances to the next segment once the previous one is fully
// shipped. Generations are contiguous (every rotation and restart
// allocates max+1), so a gap means the leader pruned the intervening
// segment — the follower re-bootstraps from a newer snapshot rather
// than walking it. Rotation is also the compaction point:
// the leader wrote a snapshot at the new generation, and fetching it
// lets the follower prune its own old segments (best-effort — the
// snapshot may not be finished yet, in which case the next rotation
// compacts).
func (f *Follower) rotate(oldGen uint64) error {
	mf, err := f.fetchManifest()
	if err != nil {
		return err
	}
	next := uint64(0)
	for _, s := range mf.Segments {
		if s.Gen > oldGen && (next == 0 || s.Gen < next) {
			next = s.Gen
		}
	}
	if next == 0 {
		if mf.CurrentGen > oldGen {
			next = mf.CurrentGen
		} else {
			return fmt.Errorf("repl: leader signaled rotation past %016x but the manifest shows no newer segment", oldGen)
		}
	}
	if next != oldGen+1 {
		// The segment between oldGen and next was pruned (it carried no
		// records the newest snapshot doesn't cover); jump to a snapshot
		// instead of walking the retired generation.
		return f.rebootstrap(oldGen)
	}
	f.mu.Lock()
	if f.localFile != nil {
		f.localFile.Close()
		f.localFile = nil
	}
	f.gen, f.offset, f.segRecords = next, persist.SegmentHeaderSize, 0
	f.mu.Unlock()
	f.segmentsShipped.Add(1)
	f.noteManifest(mf, next)
	f.compact(mf, next)
	return nil
}

// compact persists the leader's snapshot at the new generation locally
// (if it exists yet) and prunes local files it supersedes, keeping the
// local directory's recovery invariant intact: segments are only
// removed once a newer local snapshot covers them.
func (f *Follower) compact(mf *persist.Manifest, gen uint64) {
	has := false
	for _, s := range mf.Snapshots {
		if s == gen {
			has = true
			break
		}
	}
	if !has {
		return
	}
	if _, err := os.Stat(persist.SnapPath(f.opts.Dir, gen)); err == nil {
		return // already have it (an earlier compact raced)
	}
	if _, err := f.fetchSnapshot(gen); err != nil {
		f.log.Warn("compaction snapshot fetch failed; keeping local segments",
			slog.String("snapshot", fmt.Sprintf("%016x", gen)), slog.String("err", err.Error()))
		return
	}
	f.snapshotsFetched.Add(1)
	snaps, err := persist.ListSnapshots(f.opts.Dir)
	if err != nil {
		return
	}
	keepFrom := 0
	if len(snaps) > f.opts.KeepSnapshots {
		keepFrom = len(snaps) - f.opts.KeepSnapshots
	}
	for _, g := range snaps[:keepFrom] {
		os.Remove(persist.SnapPath(f.opts.Dir, g))
	}
	oldestKept := snaps[keepFrom]
	segs, err := persist.ListSegments(f.opts.Dir)
	if err != nil {
		return
	}
	for _, g := range segs {
		if g < oldestKept {
			os.Remove(persist.WALPath(f.opts.Dir, g))
		}
	}
}

// fetchManifest GETs the leader's manifest.
func (f *Follower) fetchManifest() (*persist.Manifest, error) {
	ctx, cancel := context.WithTimeout(f.ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.opts.Leader+"/v1/repl/manifest", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("repl: manifest request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("repl: manifest request returned %s", resp.Status)
	}
	mf := &persist.Manifest{}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(mf); err != nil {
		return nil, fmt.Errorf("repl: decoding manifest: %w", err)
	}
	return mf, nil
}

// fetchSnapshot downloads, verifies, and locally persists one snapshot,
// returning the decoded state. The write is atomic (temp + rename) and
// the file is only trusted after persist.ReadSnapshot re-checksums it.
func (f *Follower) fetchSnapshot(gen uint64) (*persist.State, error) {
	ctx, cancel := context.WithTimeout(f.ctx, 5*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/repl/snapshot/%016x", f.opts.Leader, gen), nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("repl: snapshot request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("repl: snapshot %016x not on leader", gen)
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("repl: snapshot request returned %s", resp.Status)
	}
	final := persist.SnapPath(f.opts.Dir, gen)
	tmp := final + ".shipping"
	out, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := io.Copy(out, resp.Body); err != nil {
		out.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("repl: downloading snapshot %016x: %w", gen, err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(tmp)
		return nil, err
	}
	out.Close()
	st, err := persist.ReadSnapshot(tmp)
	if err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("repl: shipped snapshot %016x corrupt: %w", gen, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	return st, nil
}

// noteManifest records a manifest-derived lag baseline for the interval
// where the follower is a generation behind (exact header-based lag
// needs the leader's current segment only).
func (f *Follower) noteManifest(mf *persist.Manifest, gen uint64) {
	f.mu.Lock()
	f.lagAtManifest = mf.TotalRecords(gen) - f.segRecords
	f.appliedAtMf = f.recordsApplied.Load()
	f.haveManifest = true
	f.leaderGen = mf.CurrentGen
	f.leaderSeq = mf.CurrentRecords
	f.mu.Unlock()
}

func (f *Follower) manifestFresh() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.haveManifest
}

// lagLocked computes the current lag estimate. Caller holds f.mu.
func (f *Follower) lagLocked() int64 {
	var lag int64
	if f.gen == f.leaderGen {
		lag = f.leaderSeq - f.segRecords
	} else if f.haveManifest {
		lag = f.lagAtManifest - (f.recordsApplied.Load() - f.appliedAtMf)
	} else {
		lag = f.leaderSeq // at least the leader's whole current segment
	}
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Status is the follower's /v1/repl/status payload.
type Status struct {
	Role            string  `json:"role"`
	Leader          string  `json:"leader"`
	ID              string  `json:"id"`
	Gen             uint64  `json:"gen"`
	Offset          int64   `json:"offset"`
	SegmentRecords  int64   `json:"segment_records"`
	LeaderGen       uint64  `json:"leader_gen"`
	LagRecords      int64   `json:"lag_records"`
	LagSeconds      float64 `json:"lag_seconds"`
	CaughtUp        bool    `json:"caught_up"`
	Reconnects      int64   `json:"reconnects"`
	SegmentsShipped int64   `json:"segments_shipped"`
	BytesShipped    int64   `json:"bytes_shipped"`
	RecordsApplied  int64   `json:"records_applied"`
	ChunksRejected  int64   `json:"chunks_rejected"`
	// Rebootstraps counts in-place snapshot re-seeds after the leader
	// pruned a generation the follower still needed.
	Rebootstraps int64  `json:"rebootstraps"`
	LastError    string `json:"last_error,omitempty"`
}

// Status reports the follower's replication state.
func (f *Follower) Status() Status {
	f.mu.Lock()
	st := Status{
		Role:           "follower",
		Leader:         f.opts.Leader,
		ID:             f.opts.ID,
		Gen:            f.gen,
		Offset:         f.offset,
		SegmentRecords: f.segRecords,
		LeaderGen:      f.leaderGen,
		LagRecords:     f.lagLocked(),
		CaughtUp:       f.caughtUp,
		LastError:      f.lastErr,
	}
	if !f.caughtUp && !f.lastCaughtUp.IsZero() {
		st.LagSeconds = time.Since(f.lastCaughtUp).Seconds()
	}
	f.mu.Unlock()
	st.Reconnects = f.reconnects.Load()
	st.SegmentsShipped = f.segmentsShipped.Load()
	st.BytesShipped = f.bytesShipped.Load()
	st.RecordsApplied = f.recordsApplied.Load()
	st.ChunksRejected = f.chunksRejected.Load()
	st.Rebootstraps = f.rebootstraps.Load()
	return st
}

// Leader returns the leader base URL (for write-redirect hints).
func (f *Follower) Leader() string { return f.opts.Leader }

// RenderMetrics appends the follower's repl_* exposition lines.
func (f *Follower) RenderMetrics(sb *strings.Builder) {
	st := f.Status()
	fmt.Fprintf(sb, "repl_role{role=%q} 1\n", "follower")
	fmt.Fprintf(sb, "repl_follower_lag_records %d\n", st.LagRecords)
	fmt.Fprintf(sb, "repl_follower_lag_seconds %.3f\n", st.LagSeconds)
	fmt.Fprintf(sb, "repl_segments_shipped_total %d\n", st.SegmentsShipped)
	fmt.Fprintf(sb, "repl_reconnects_total %d\n", st.Reconnects)
	fmt.Fprintf(sb, "repl_bytes_shipped_total %d\n", st.BytesShipped)
	fmt.Fprintf(sb, "repl_records_applied_total %d\n", st.RecordsApplied)
	fmt.Fprintf(sb, "repl_chunks_rejected_total %d\n", st.ChunksRejected)
	fmt.Fprintf(sb, "repl_rebootstraps_total %d\n", st.Rebootstraps)
}

// jittered adds up to 50% random jitter so a fleet of followers does
// not reconnect in lockstep.
func jittered(d time.Duration) time.Duration {
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

func nextBackoff(cur, max time.Duration) time.Duration {
	cur *= 2
	if cur > max {
		cur = max
	}
	return cur
}
