// Package repl replicates a congressd data directory over HTTP: a
// Leader serves the persist layer's snapshots and WAL segments to
// followers, and a Follower tails a leader — bootstrap from the newest
// shipped snapshot, persist shipped segments locally, apply each record
// through the warehouse's normal mutation paths.
//
// The protocol leans entirely on the persist generation-sequence
// invariant: the snapshot of generation S contains every mutation in
// segments < S and none from segment S. A follower bootstrapped from
// snapshot S that replays segments S, S+1, ... each to their durable
// watermark therefore reconstructs exactly the leader's logged history,
// with no coordination beyond byte offsets.
package repl

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxdb/congress/internal/persist"
)

// LeaderOptions configures the leader-side replication service.
type LeaderOptions struct {
	// MaxChunk caps one WAL response body. A single record larger than
	// the cap is still shipped whole — responses always end on a frame
	// boundary. Default 1 MiB.
	MaxChunk int64
	// PollInterval is how often a long-polling WAL request re-checks the
	// durable watermark. Default 20ms.
	PollInterval time.Duration
	// MaxWait caps the wait_ms a follower may request. Default 30s.
	MaxWait time.Duration
	// Logger defaults to slog.Default().
	Logger *slog.Logger
}

func (o *LeaderOptions) withDefaults() {
	if o.MaxChunk <= 0 {
		o.MaxChunk = 1 << 20
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 20 * time.Millisecond
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 30 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
}

// Response headers on WAL chunk responses. Every 200 carries all three,
// including empty long-poll timeouts, so followers track leader
// progress (and compute lag) even when no new bytes ship.
const (
	// HeaderCurrentGen is the leader's current WAL generation (hex).
	HeaderCurrentGen = "X-Repl-Current-Gen"
	// HeaderWatermark is the requested segment's durable watermark in
	// bytes (decimal).
	HeaderWatermark = "X-Repl-Watermark"
	// HeaderCurrentSeq is the record count of the leader's current
	// segment (decimal).
	HeaderCurrentSeq = "X-Repl-Current-Seq"
)

// followerView is the leader's last observation of one follower,
// keyed by the follower-supplied id (or remote host).
type followerView struct {
	Gen        uint64    `json:"gen"`
	Applied    int64     `json:"applied"`
	LagRecords int64     `json:"lag_records"`
	LastSeen   time.Time `json:"last_seen"`
}

// Leader serves a Manager's directory to followers. It is read-only
// with respect to the directory: all file writes stay in persist.
type Leader struct {
	mgr  *persist.Manager
	opts LeaderOptions
	log  *slog.Logger

	bytesShipped     atomic.Int64
	chunksShipped    atomic.Int64
	segmentsShipped  atomic.Int64
	snapshotsShipped atomic.Int64

	mu        sync.Mutex
	followers map[string]followerView
}

// NewLeader wraps a persist manager with the replication service.
func NewLeader(mgr *persist.Manager, opts LeaderOptions) *Leader {
	opts.withDefaults()
	return &Leader{mgr: mgr, opts: opts, log: opts.Logger, followers: make(map[string]followerView)}
}

// HandleManifest serves GET /v1/repl/manifest.
func (l *Leader) HandleManifest(w http.ResponseWriter, r *http.Request) {
	mf, err := l.mgr.Manifest()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(mf)
}

// HandleSnapshot serves GET /v1/repl/snapshot/{gen}: the raw snapshot
// file (already self-checksummed — the follower verifies with
// persist.ReadSnapshot before restoring).
func (l *Leader) HandleSnapshot(w http.ResponseWriter, r *http.Request) {
	gen, ok := parseGenParam(w, r)
	if !ok {
		return
	}
	f, err := os.Open(persist.SnapPath(l.mgr.Dir(), gen))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			httpError(w, http.StatusNotFound, "snapshot_gone", fmt.Sprintf("snapshot %016x does not exist (pruned or never written)", gen))
		} else {
			httpError(w, http.StatusInternalServerError, "internal", err.Error())
		}
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(st.Size(), 10))
	if _, err := io.Copy(w, f); err == nil {
		l.snapshotsShipped.Add(1)
	}
}

// HandleWAL serves GET /v1/repl/wal/{gen}?from=offset&wait_ms=N. The
// response body is zero or more whole WAL frames starting at byte
// offset from; when the watermark is already at from on the live
// segment, the handler long-polls up to wait_ms for new durable bytes.
// An empty 200 means "no new bytes yet" (or, when the headers show a
// newer current generation and from has reached the watermark, "this
// segment is complete — rotate").
//
// Error statuses are part of the protocol: 404 means the segment was
// pruned (the follower's history no longer exists here — re-bootstrap),
// 409 means the follower is ahead of this leader's history (divergence,
// e.g. the leader lost acknowledged-but-unsynced records in a machine
// crash) — both are terminal for the follower.
func (l *Leader) HandleWAL(w http.ResponseWriter, r *http.Request) {
	gen, ok := parseGenParam(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil || from < persist.SegmentHeaderSize {
		httpError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("from must be an offset >= %d (the segment header)", persist.SegmentHeaderSize))
		return
	}
	wait := time.Duration(0)
	if ms, err := strconv.ParseInt(q.Get("wait_ms"), 10, 64); err == nil && ms > 0 {
		wait = time.Duration(ms) * time.Millisecond
		if wait > l.opts.MaxWait {
			wait = l.opts.MaxWait
		}
	}
	deadline := time.Now().Add(wait)

	var watermark, leaderSeq int64
	var current bool
	var curGen uint64
	for {
		var serr error
		watermark, current, curGen, serr = l.mgr.SegmentStatus(gen)
		if serr != nil {
			if errors.Is(serr, os.ErrNotExist) {
				httpError(w, http.StatusNotFound, "segment_gone",
					fmt.Sprintf("segment %016x does not exist (pruned); re-bootstrap from a snapshot", gen))
			} else {
				httpError(w, http.StatusConflict, "diverged", serr.Error())
			}
			return
		}
		if from > watermark {
			httpError(w, http.StatusConflict, "diverged",
				fmt.Sprintf("offset %d is beyond segment %016x's watermark %d; the follower holds history this leader does not", from, gen, watermark))
			return
		}
		if from < watermark || !current || time.Now().After(deadline) {
			break
		}
		// Live segment, caught up, time left: long-poll for new bytes.
		select {
		case <-r.Context().Done():
			return
		case <-time.After(l.opts.PollInterval):
		}
	}
	leaderSeq = l.mgr.Stats().RecordSeq

	var chunk []byte
	if from < watermark {
		chunk, err = l.readFrames(gen, from, watermark)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
	}
	l.observeFollower(r, gen, curGen, leaderSeq)
	w.Header().Set(HeaderCurrentGen, fmt.Sprintf("%016x", curGen))
	w.Header().Set(HeaderWatermark, strconv.FormatInt(watermark, 10))
	w.Header().Set(HeaderCurrentSeq, strconv.FormatInt(leaderSeq, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(chunk)))
	if _, err := w.Write(chunk); err != nil {
		return
	}
	if len(chunk) > 0 {
		l.bytesShipped.Add(int64(len(chunk)))
		l.chunksShipped.Add(1)
		if !current && from+int64(len(chunk)) >= watermark {
			l.segmentsShipped.Add(1)
		}
	}
}

// readFrames reads WAL bytes [from, watermark) capped near MaxChunk but
// always ending on a frame boundary. Frames below the watermark are
// complete by construction (the watermark only advances past whole
// appended frames), so the length headers inside the range are
// trustworthy; a record larger than MaxChunk is shipped whole rather
// than deadlocking the follower on a chunk that can never contain it.
func (l *Leader) readFrames(gen uint64, from, watermark int64) ([]byte, error) {
	f, err := os.Open(persist.WALPath(l.mgr.Dir(), gen))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n := watermark - from
	if n > l.opts.MaxChunk {
		n = l.opts.MaxChunk
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, from, n), buf); err != nil {
		return nil, fmt.Errorf("repl: reading segment %016x at %d: %w", gen, from, err)
	}
	end := lastFrameBoundary(buf)
	if end > 0 {
		return buf[:end], nil
	}
	// First frame is longer than the chunk: ship exactly that frame.
	if len(buf) < 8 {
		return nil, fmt.Errorf("repl: segment %016x frame header truncated below watermark", gen)
	}
	frameLen := int64(8 + binary.LittleEndian.Uint32(buf))
	if from+frameLen > watermark {
		return nil, fmt.Errorf("repl: segment %016x frame at %d crosses the watermark", gen, from)
	}
	buf = make([]byte, frameLen)
	if _, err := io.ReadFull(io.NewSectionReader(f, from, frameLen), buf); err != nil {
		return nil, fmt.Errorf("repl: reading oversized frame in segment %016x at %d: %w", gen, from, err)
	}
	return buf, nil
}

// lastFrameBoundary walks whole frames from the start of buf and
// returns the offset just past the last complete one (0 if none fits).
func lastFrameBoundary(buf []byte) int64 {
	off := 0
	for off+8 <= len(buf) {
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		if off+8+n > len(buf) {
			break
		}
		off += 8 + n
	}
	return int64(off)
}

// observeFollower records one follower's reported progress and its lag
// against the leader's own history, for /metrics and status.
func (l *Leader) observeFollower(r *http.Request, gen, curGen uint64, leaderSeq int64) {
	id := r.URL.Query().Get("id")
	if id == "" {
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			id = host
		} else {
			id = r.RemoteAddr
		}
	}
	applied, _ := strconv.ParseInt(r.URL.Query().Get("applied"), 10, 64)
	lag := int64(0)
	if gen == curGen {
		lag = leaderSeq - applied
	} else if mf, err := l.mgr.Manifest(); err == nil {
		lag = mf.TotalRecords(gen) - applied
	}
	if lag < 0 {
		lag = 0
	}
	l.mu.Lock()
	l.followers[id] = followerView{Gen: gen, Applied: applied, LagRecords: lag, LastSeen: time.Now()}
	// Drop followers that have not polled for a while so metrics do not
	// accumulate departed replicas forever.
	for k, v := range l.followers {
		if time.Since(v.LastSeen) > 5*time.Minute {
			delete(l.followers, k)
		}
	}
	l.mu.Unlock()
}

// LeaderStatus is the leader's /v1/repl/status payload.
type LeaderStatus struct {
	Role             string                  `json:"role"`
	Gen              uint64                  `json:"gen"`
	Watermark        int64                   `json:"watermark"`
	RecordSeq        int64                   `json:"record_seq"`
	BytesShipped     int64                   `json:"bytes_shipped"`
	ChunksShipped    int64                   `json:"chunks_shipped"`
	SegmentsShipped  int64                   `json:"segments_shipped"`
	SnapshotsShipped int64                   `json:"snapshots_shipped"`
	Followers        map[string]followerView `json:"followers,omitempty"`
}

// Status reports the leader's replication state.
func (l *Leader) Status() LeaderStatus {
	st := l.mgr.Stats()
	l.mu.Lock()
	followers := make(map[string]followerView, len(l.followers))
	for k, v := range l.followers {
		followers[k] = v
	}
	l.mu.Unlock()
	return LeaderStatus{
		Role:             "leader",
		Gen:              st.Generation,
		Watermark:        st.DurableOffset,
		RecordSeq:        st.RecordSeq,
		BytesShipped:     l.bytesShipped.Load(),
		ChunksShipped:    l.chunksShipped.Load(),
		SegmentsShipped:  l.segmentsShipped.Load(),
		SnapshotsShipped: l.snapshotsShipped.Load(),
		Followers:        followers,
	}
}

// RenderMetrics appends the leader's repl_* exposition lines.
func (l *Leader) RenderMetrics(sb *strings.Builder) {
	fmt.Fprintf(sb, "repl_role{role=%q} 1\n", "leader")
	fmt.Fprintf(sb, "repl_bytes_shipped_total %d\n", l.bytesShipped.Load())
	fmt.Fprintf(sb, "repl_chunks_shipped_total %d\n", l.chunksShipped.Load())
	fmt.Fprintf(sb, "repl_segments_shipped_total %d\n", l.segmentsShipped.Load())
	fmt.Fprintf(sb, "repl_snapshots_shipped_total %d\n", l.snapshotsShipped.Load())
	l.mu.Lock()
	ids := make([]string, 0, len(l.followers))
	for id := range l.followers {
		ids = append(ids, id)
	}
	views := make(map[string]followerView, len(l.followers))
	for k, v := range l.followers {
		views[k] = v
	}
	l.mu.Unlock()
	sortStrings(ids)
	for _, id := range ids {
		fmt.Fprintf(sb, "repl_follower_lag_records{follower=%q} %d\n", id, views[id].LagRecords)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// parseGenParam extracts the {gen} path value (hex), writing a 400 on
// malformed input.
func parseGenParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	gen, err := strconv.ParseUint(r.PathValue("gen"), 16, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", "malformed generation (want hex)")
		return 0, false
	}
	return gen, true
}

// httpError writes the service's JSON error shape (matching
// client.ErrorBody without importing it).
func httpError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}
