package repl

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/persist"
)

// fakeTarget is a minimal replication Target: it records the int values
// of applied inserts and of rows carried by restored snapshots.
type fakeTarget struct {
	mu       sync.Mutex
	restores int
	rows     []int64
}

func (ft *fakeTarget) RestoreSnapshot(st *persist.State) error {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.restores++
	ft.rows = nil
	for _, tbl := range st.Tables {
		for _, r := range tbl.Rows {
			ft.rows = append(ft.rows, r[0].I)
		}
	}
	return nil
}

func (ft *fakeTarget) ApplyRecord(rec *persist.Record) error {
	if rec.Kind != persist.RecInsert {
		return nil
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.rows = append(ft.rows, rec.Row[0].I)
	return nil
}

func (ft *fakeTarget) values() []int64 {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return append([]int64(nil), ft.rows...)
}

func (ft *fakeTarget) count() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.rows)
}

// replHarness is a leader stand-in: a persist.Manager whose exported
// state is a single int-column table, served through a real Leader
// behind an httptest server. The handler can be swapped (leader
// restart) and WAL responses mutated once (fault injection).
type replHarness struct {
	t   *testing.T
	dir string
	srv *httptest.Server

	mu     sync.Mutex
	rows   []engine.Row
	mgr    *persist.Manager
	ld     *Leader
	mux    *http.ServeMux
	inject func([]byte) []byte
	down   bool
}

func newHarness(t *testing.T, keepSnapshots int) *replHarness {
	h := &replHarness{t: t, dir: t.TempDir()}
	h.startManager(keepSnapshots)
	h.srv = httptest.NewServer(http.HandlerFunc(h.serve))
	t.Cleanup(func() {
		h.srv.Close()
		h.manager().Close()
	})
	return h
}

func (h *replHarness) export() (*persist.State, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rows := make([]engine.Row, len(h.rows))
	copy(rows, h.rows)
	return &persist.State{Tables: []persist.TableState{{
		Name: "t",
		Cols: []engine.Column{{Name: "x", Kind: engine.KindInt}},
		Rows: rows,
	}}}, nil
}

func (h *replHarness) startManager(keepSnapshots int) {
	mgr, err := persist.Start(h.dir, persist.Options{
		Mode:             persist.SyncAlways,
		SnapshotInterval: -1,
		SnapshotEvery:    -1,
		KeepSnapshots:    keepSnapshots,
	}, h.export)
	if err != nil {
		h.t.Fatal(err)
	}
	ld := NewLeader(mgr, LeaderOptions{
		MaxChunk:     64, // a few records per chunk, so tails take several polls
		PollInterval: 2 * time.Millisecond,
		Logger:       quietLogger(),
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/repl/manifest", ld.HandleManifest)
	mux.HandleFunc("GET /v1/repl/snapshot/{gen}", ld.HandleSnapshot)
	mux.HandleFunc("GET /v1/repl/wal/{gen}", ld.HandleWAL)
	h.mu.Lock()
	h.mgr, h.ld, h.mux = mgr, ld, mux
	h.mu.Unlock()
}

func (h *replHarness) manager() *persist.Manager {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mgr
}

// restartManager emulates a leader process restart over the same data
// directory: clean close (final snapshot), then a fresh manager at a
// higher generation, served at the same URL.
func (h *replHarness) restartManager(keepSnapshots int) {
	if err := h.manager().Close(); err != nil {
		h.t.Fatal(err)
	}
	h.startManager(keepSnapshots)
}

func (h *replHarness) insert(v int64) {
	rec := &persist.Record{Kind: persist.RecInsert, Table: "t", Row: engine.Row{engine.NewInt(v)}}
	err := h.manager().Log(rec, func() error {
		h.mu.Lock()
		h.rows = append(h.rows, rec.Row)
		h.mu.Unlock()
		return nil
	})
	if err != nil {
		h.t.Fatal(err)
	}
}

func (h *replHarness) values() []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int64, len(h.rows))
	for i, r := range h.rows {
		out[i] = r[0].I
	}
	return out
}

// injectWALOnce arms a one-shot mutation of the next non-empty WAL
// chunk body.
func (h *replHarness) injectWALOnce(fn func([]byte) []byte) {
	h.mu.Lock()
	h.inject = fn
	h.mu.Unlock()
}

// setDown makes the server answer 503 (leader unreachable, transient
// for followers) until cleared.
func (h *replHarness) setDown(down bool) {
	h.mu.Lock()
	h.down = down
	h.mu.Unlock()
}

func (h *replHarness) serve(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	mux, inject, down := h.mux, h.inject, h.down
	h.mu.Unlock()
	if down {
		http.Error(w, "leader restarting", http.StatusServiceUnavailable)
		return
	}
	if inject != nil && strings.HasPrefix(r.URL.Path, "/v1/repl/wal/") {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if rec.Code == http.StatusOK && len(body) > 0 {
			body = inject(body)
			h.mu.Lock()
			h.inject = nil
			h.mu.Unlock()
		}
		for k, vs := range rec.Header() {
			if k == "Content-Length" {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(rec.Code)
		w.Write(body)
		return
	}
	mux.ServeHTTP(w, r)
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func startTestFollower(t *testing.T, h *replHarness, ft *fakeTarget, dir string) *Follower {
	t.Helper()
	f, err := NewFollower(FollowerOptions{
		Leader:           h.srv.URL,
		Dir:              dir,
		Target:           ft,
		ID:               "test-follower",
		WaitMS:           50,
		MinBackoff:       5 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		BootstrapTimeout: 5 * time.Second,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func sameValues(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFollowerBootstrapAndTail(t *testing.T) {
	h := newHarness(t, 2)
	for i := 0; i < 5; i++ {
		h.insert(int64(i))
	}
	ft := &fakeTarget{}
	f := startTestFollower(t, h, ft, t.TempDir())

	waitFor(t, "initial tail", func() bool { return ft.count() == 5 && f.Status().CaughtUp })
	for i := 5; i < 12; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "live tail", func() bool { return ft.count() == 12 && f.Status().CaughtUp })
	if !sameValues(ft.values(), h.values()) {
		t.Fatalf("follower rows %v != leader rows %v", ft.values(), h.values())
	}
	st := f.Status()
	if st.LagRecords != 0 || st.RecordsApplied != 12 {
		t.Fatalf("caught-up status: %+v", st)
	}

	// The leader observes this follower's progress by id; its view trails
	// by one poll (applied is reported before a chunk lands), so wait for
	// the next long-poll to carry the final count.
	h.mu.Lock()
	ld := h.ld
	h.mu.Unlock()
	waitFor(t, "leader observing zero lag", func() bool {
		fv, ok := ld.Status().Followers["test-follower"]
		return ok && fv.LagRecords == 0
	})
	var sb strings.Builder
	ld.RenderMetrics(&sb)
	if !strings.Contains(sb.String(), `repl_follower_lag_records{follower="test-follower"} 0`) {
		t.Fatalf("leader metrics missing follower lag:\n%s", sb.String())
	}
}

func TestFollowerRotationAndLocalSegments(t *testing.T) {
	h := newHarness(t, 2)
	ft := &fakeTarget{}
	fdir := t.TempDir()
	f := startTestFollower(t, h, ft, fdir)
	startGen := f.Status().Gen

	for i := 0; i < 4; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "pre-rotation tail", func() bool { return ft.count() == 4 && f.Status().CaughtUp })

	if err := h.manager().Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 6; i++ {
		h.insert(int64(100 + i))
	}
	waitFor(t, "post-rotation tail", func() bool {
		st := f.Status()
		return ft.count() == 6 && st.Gen == startGen+1 && st.CaughtUp
	})
	if !sameValues(ft.values(), h.values()) {
		t.Fatalf("follower rows %v != leader rows %v", ft.values(), h.values())
	}
	if f.Status().SegmentsShipped < 1 {
		t.Fatal("rotation did not count a shipped segment")
	}
	if _, err := os.Stat(persist.WALPath(fdir, startGen+1)); err != nil {
		t.Fatalf("follower has no local copy of the new segment: %v", err)
	}
}

func TestFollowerRejectsBitFlippedChunk(t *testing.T) {
	h := newHarness(t, 2)
	ft := &fakeTarget{}
	fdir := t.TempDir()
	f := startTestFollower(t, h, ft, fdir)
	waitFor(t, "bootstrap", func() bool { return f.Status().CaughtUp })

	// Flip one bit in the next shipped chunk: the whole chunk must be
	// rejected before anything reaches the local WAL, then re-fetched.
	h.injectWALOnce(func(body []byte) []byte {
		out := append([]byte(nil), body...)
		out[len(out)-1] ^= 0x01
		return out
	})
	for i := 0; i < 5; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "recovery after bit flip", func() bool { return ft.count() == 5 && f.Status().CaughtUp })
	if got := f.Status().ChunksRejected; got < 1 {
		t.Fatalf("chunks rejected = %d, want >= 1", got)
	}
	if !sameValues(ft.values(), h.values()) {
		t.Fatalf("follower rows %v != leader rows %v", ft.values(), h.values())
	}

	// The local segment replays clean: the corrupt chunk never touched it.
	gen := f.Status().Gen
	f.Close()
	n, truncated, err := persist.ReadWAL(persist.WALPath(fdir, gen), func([]byte) error { return nil })
	if err != nil || n != 5 || truncated != 0 {
		t.Fatalf("local segment: n=%d truncated=%d err=%v, want 5 clean records", n, truncated, err)
	}
}

func TestFollowerRejectsTornChunk(t *testing.T) {
	h := newHarness(t, 2)
	ft := &fakeTarget{}
	f := startTestFollower(t, h, ft, t.TempDir())
	waitFor(t, "bootstrap", func() bool { return f.Status().CaughtUp })

	// Ship a chunk cut mid-frame (a torn transfer): rejected whole.
	h.injectWALOnce(func(body []byte) []byte { return body[:len(body)-3] })
	for i := 0; i < 5; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "recovery after torn chunk", func() bool { return ft.count() == 5 && f.Status().CaughtUp })
	if got := f.Status().ChunksRejected; got < 1 {
		t.Fatalf("chunks rejected = %d, want >= 1", got)
	}
	if !sameValues(ft.values(), h.values()) {
		t.Fatalf("follower rows %v != leader rows %v", ft.values(), h.values())
	}
}

func TestFollowerRestartResumesFromLocalDisk(t *testing.T) {
	h := newHarness(t, 2)
	ft := &fakeTarget{}
	fdir := t.TempDir()
	f := startTestFollower(t, h, ft, fdir)
	for i := 0; i < 6; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "first follower tail", func() bool { return ft.count() == 6 && f.Status().CaughtUp })
	f.Close()

	ft2 := &fakeTarget{}
	f2 := startTestFollower(t, h, ft2, fdir)
	// Start returned, so bootstrap is complete — from local disk alone.
	if got := ft2.count(); got != 6 {
		t.Fatalf("restarted follower replayed %d records from disk, want 6", got)
	}
	if got := f2.snapshotsFetched.Load(); got != 0 {
		t.Fatalf("restart fetched %d snapshots from the leader, want 0 (local resume)", got)
	}
	for i := 6; i < 9; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "resumed tail", func() bool { return ft2.count() == 9 && f2.Status().CaughtUp })
	if !sameValues(ft2.values(), h.values()) {
		t.Fatalf("follower rows %v != leader rows %v", ft2.values(), h.values())
	}
}

func TestFollowerSurvivesLeaderRestart(t *testing.T) {
	h := newHarness(t, 3)
	ft := &fakeTarget{}
	f := startTestFollower(t, h, ft, t.TempDir())
	startGen := f.Status().Gen

	for i := 0; i < 3; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "pre-restart tail", func() bool { return ft.count() == 3 && f.Status().CaughtUp })

	// Restart jumps two generations (close writes a final snapshot at
	// G+1, the fresh manager starts at G+2) but stays contiguous, so the
	// follower walks through both rotations.
	h.restartManager(3)
	for i := 3; i < 5; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "post-restart tail", func() bool {
		st := f.Status()
		return ft.count() == 5 && st.Gen == startGen+2 && st.CaughtUp
	})
	if !sameValues(ft.values(), h.values()) {
		t.Fatalf("follower rows %v != leader rows %v", ft.values(), h.values())
	}
	select {
	case err := <-f.Fatal():
		t.Fatalf("follower died on a contiguous restart: %v", err)
	default:
	}
}

func TestFollowerRebootstrapsOnPrunedHistory(t *testing.T) {
	h := newHarness(t, 2)
	ft := &fakeTarget{}
	f := startTestFollower(t, h, ft, t.TempDir())
	for i := 0; i < 3; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "pre-restart tail", func() bool { return ft.count() == 3 && f.Status().CaughtUp })

	// Hold the follower off (503s are transient, so it backs off without
	// advancing), restart the leader, and prune every segment below the
	// new generation. Whatever segment the follower resumes on is gone;
	// it re-seeds from the leader's newest snapshot and keeps tailing.
	h.setDown(true)
	h.restartManager(2)
	newGen := h.manager().Stats().Generation
	for g := uint64(1); g < newGen; g++ {
		os.Remove(persist.WALPath(h.dir, g))
	}
	h.setDown(false)
	waitFor(t, "re-converge after pruned history", func() bool {
		st := f.Status()
		return st.CaughtUp && st.Rebootstraps >= 1 && sameValues(ft.values(), h.values())
	})
	select {
	case err := <-f.Fatal():
		t.Fatalf("follower died instead of re-bootstrapping: %v", err)
	default:
	}
}

func TestFollowerDiesWithoutSnapshotToRebootstrapFrom(t *testing.T) {
	h := newHarness(t, 2)
	ft := &fakeTarget{}
	f := startTestFollower(t, h, ft, t.TempDir())
	for i := 0; i < 3; i++ {
		h.insert(int64(i))
	}
	waitFor(t, "pre-restart tail", func() bool { return ft.count() == 3 && f.Status().CaughtUp })

	// Prune the follower's segment AND every snapshot that could heal
	// it: with no newer snapshot on offer the gap really is fatal.
	h.setDown(true)
	h.restartManager(2)
	newGen := h.manager().Stats().Generation
	for g := uint64(1); g < newGen; g++ {
		os.Remove(persist.WALPath(h.dir, g))
	}
	snaps, err := persist.ListSnapshots(h.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range snaps {
		os.Remove(persist.SnapPath(h.dir, g))
	}
	h.setDown(false)
	select {
	case err := <-f.Fatal():
		if !IsTerminal(err) {
			t.Fatalf("fatal error not terminal: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never reported the unhealable gap as fatal")
	}
}
