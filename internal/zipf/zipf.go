// Package zipf provides Zipf-distributed generators used to skew group
// sizes and aggregate-column values, mirroring the data modifications
// described in Section 7.1.1 of the congressional-samples paper.
//
// A Zipf distribution over ranks 1..n with parameter z assigns rank i a
// probability proportional to 1/i^z. z = 0 is the uniform distribution;
// z = 0.86 yields the classic 90-10 rule; z = 1.5 is heavily skewed.
package zipf

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Distribution is a finite Zipf distribution over ranks 0..N-1 (rank 0
// being the most probable). It supports O(log n) sampling via inverse
// transform on the precomputed CDF, and exposes the exact cell
// probabilities so callers can compute deterministic expected counts.
type Distribution struct {
	z     float64
	probs []float64 // probs[i] = P(rank i)
	cdf   []float64 // cdf[i] = P(rank <= i)
}

// New returns a Zipf distribution over n ranks with skew parameter z.
// z must be >= 0 and n >= 1.
func New(n int, z float64) (*Distribution, error) {
	if n < 1 {
		return nil, errors.New("zipf: need at least one rank")
	}
	if z < 0 {
		return nil, errors.New("zipf: negative skew parameter")
	}
	d := &Distribution{
		z:     z,
		probs: make([]float64, n),
		cdf:   make([]float64, n),
	}
	var norm float64
	for i := 0; i < n; i++ {
		p := 1.0 / math.Pow(float64(i+1), z)
		d.probs[i] = p
		norm += p
	}
	var acc float64
	for i := 0; i < n; i++ {
		d.probs[i] /= norm
		acc += d.probs[i]
		d.cdf[i] = acc
	}
	d.cdf[n-1] = 1.0 // guard against floating-point shortfall
	return d, nil
}

// MustNew is New but panics on invalid parameters. Intended for use with
// compile-time-constant arguments in tests and generators.
func MustNew(n int, z float64) *Distribution {
	d, err := New(n, z)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of ranks.
func (d *Distribution) N() int { return len(d.probs) }

// Z returns the skew parameter.
func (d *Distribution) Z() float64 { return d.z }

// Prob returns the probability of rank i.
func (d *Distribution) Prob(i int) float64 { return d.probs[i] }

// Next draws a rank in [0, N) using rng.
func (d *Distribution) Next(rng *rand.Rand) int {
	u := rng.Float64()
	// First rank is by far the most likely under high skew; test it
	// before binary searching.
	if u < d.cdf[0] {
		return 0
	}
	return sort.SearchFloat64s(d.cdf, u)
}

// Counts deterministically apportions total items across the N ranks in
// proportion to the Zipf probabilities, using largest-remainder rounding
// so the counts sum exactly to total. Rank 0 receives the most items.
// Every rank receives at least one item when total >= N, so that all
// groups are non-empty as the paper's generator requires.
func (d *Distribution) Counts(total int) []int {
	n := len(d.probs)
	counts := make([]int, n)
	if total <= 0 {
		return counts
	}
	if total >= n {
		// Reserve one item per rank, apportion the rest.
		for i := range counts {
			counts[i] = 1
		}
		total -= n
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i, p := range d.probs {
		exact := p * float64(total)
		whole := int(exact)
		counts[i] += whole
		assigned += whole
		rems[i] = rem{idx: i, frac: exact - float64(whole)}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; i < total-assigned; i++ {
		counts[rems[i%n].idx]++
	}
	return counts
}
