package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1.0); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := New(-3, 1.0); err == nil {
		t.Error("expected error for negative n")
	}
	if _, err := New(10, -0.1); err == nil {
		t.Error("expected error for negative z")
	}
	if _, err := New(1, 0); err != nil {
		t.Errorf("n=1,z=0 should be valid: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0, 1) did not panic")
		}
	}()
	MustNew(0, 1)
}

func TestProbabilitiesSumToOne(t *testing.T) {
	for _, z := range []float64{0, 0.5, 0.86, 1.0, 1.5} {
		d := MustNew(1000, z)
		var sum float64
		for i := 0; i < d.N(); i++ {
			sum += d.Prob(i)
		}
		if math.Abs(sum-1.0) > 1e-9 {
			t.Errorf("z=%v: probabilities sum to %v, want 1", z, sum)
		}
	}
}

func TestZeroSkewIsUniform(t *testing.T) {
	d := MustNew(50, 0)
	want := 1.0 / 50.0
	for i := 0; i < 50; i++ {
		if math.Abs(d.Prob(i)-want) > 1e-12 {
			t.Fatalf("rank %d has prob %v, want uniform %v", i, d.Prob(i), want)
		}
	}
}

func TestProbabilitiesMonotoneNonIncreasing(t *testing.T) {
	d := MustNew(200, 1.5)
	for i := 1; i < d.N(); i++ {
		if d.Prob(i) > d.Prob(i-1) {
			t.Fatalf("prob increased from rank %d to %d", i-1, i)
		}
	}
}

func TestSkew086Gives9010(t *testing.T) {
	// z = 0.86 is chosen by the paper because it yields roughly a 90-10
	// distribution: the top 10% of ranks carry ~90% of the mass for
	// large n. Verify the top decile carries well over half the mass
	// and far more than uniform would.
	d := MustNew(1000, 0.86)
	var top float64
	for i := 0; i < 100; i++ {
		top += d.Prob(i)
	}
	if top < 0.5 {
		t.Errorf("top decile carries %v of mass, expected heavy skew", top)
	}
}

func TestCountsSumExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		total := rng.Intn(100000)
		z := rng.Float64() * 2
		counts := MustNew(n, z).Counts(total)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountsAllNonEmptyWhenTotalCovers(t *testing.T) {
	counts := MustNew(100, 1.5).Counts(100)
	for i, c := range counts {
		if c < 1 {
			t.Fatalf("rank %d got %d items; every group must be non-empty", i, c)
		}
	}
}

func TestCountsMonotone(t *testing.T) {
	counts := MustNew(64, 1.0).Counts(100000)
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1]+1 {
			// Largest-remainder rounding can flip adjacent ranks by at
			// most one item.
			t.Fatalf("counts not (nearly) monotone at %d: %d then %d", i, counts[i-1], counts[i])
		}
	}
}

func TestCountsZeroAndNegativeTotal(t *testing.T) {
	d := MustNew(10, 1.0)
	for _, total := range []int{0, -5} {
		for i, c := range d.Counts(total) {
			if c != 0 {
				t.Fatalf("total=%d rank=%d got %d, want 0", total, i, c)
			}
		}
	}
}

func TestNextMatchesDistribution(t *testing.T) {
	d := MustNew(20, 1.2)
	rng := rand.New(rand.NewSource(42))
	const draws = 200000
	hist := make([]int, d.N())
	for i := 0; i < draws; i++ {
		r := d.Next(rng)
		if r < 0 || r >= d.N() {
			t.Fatalf("rank %d out of range", r)
		}
		hist[r]++
	}
	// Chi-squared-ish sanity: each empirical frequency within 10% of
	// expectation (plus slack for tiny cells).
	for i, h := range hist {
		want := d.Prob(i) * draws
		if want < 50 {
			continue
		}
		if math.Abs(float64(h)-want) > 0.1*want+3*math.Sqrt(want) {
			t.Errorf("rank %d: got %d draws, want ~%.0f", i, h, want)
		}
	}
}

func TestNextCoversAllRanksEventually(t *testing.T) {
	d := MustNew(5, 0)
	rng := rand.New(rand.NewSource(7))
	seen := make(map[int]bool)
	for i := 0; i < 10000 && len(seen) < 5; i++ {
		seen[d.Next(rng)] = true
	}
	if len(seen) != 5 {
		t.Errorf("uniform draws over 5 ranks only hit %d ranks", len(seen))
	}
}

func BenchmarkNext(b *testing.B) {
	d := MustNew(100000, 0.86)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Next(rng)
	}
}
