package sample

import (
	"math"
	"testing"
)

func TestStratumRateAndScaleFactor(t *testing.T) {
	s := &Stratum[int]{Key: "g", Population: 200, Items: []int{1, 2, 3, 4}}
	if got := s.Rate(); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("rate=%v, want 0.02", got)
	}
	if got := s.ScaleFactor(); math.Abs(got-50) > 1e-12 {
		t.Errorf("scale factor=%v, want 50", got)
	}
}

func TestStratumEmptyAndDegenerate(t *testing.T) {
	empty := &Stratum[int]{Key: "e", Population: 100}
	if empty.ScaleFactor() != 0 {
		t.Errorf("empty stratum scale factor = %v, want 0", empty.ScaleFactor())
	}
	zeroPop := &Stratum[int]{Key: "z", Population: 0, Items: nil}
	if zeroPop.Rate() != 1 {
		t.Errorf("zero-population rate = %v, want 1", zeroPop.Rate())
	}
	over := &Stratum[int]{Key: "o", Population: 2, Items: []int{1, 2, 3}}
	if over.Rate() != 1 {
		t.Errorf("over-full stratum rate = %v, want clamp to 1", over.Rate())
	}
}

func TestStratifiedAccounting(t *testing.T) {
	st := NewStratified[int]()
	st.Put(&Stratum[int]{Key: "b", Population: 10, Items: []int{1, 2}})
	st.Put(&Stratum[int]{Key: "a", Population: 30, Items: []int{3}})
	st.Put(&Stratum[int]{Key: "c", Population: 5, Items: nil})

	if st.NumStrata() != 3 {
		t.Fatalf("strata=%d, want 3", st.NumStrata())
	}
	if st.Size() != 3 {
		t.Fatalf("size=%d, want 3", st.Size())
	}
	if st.Population() != 45 {
		t.Fatalf("population=%d, want 45", st.Population())
	}
	keys := st.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys=%v, want sorted a,b,c", keys)
	}
	var visited []string
	st.Each(func(s *Stratum[int]) { visited = append(visited, s.Key) })
	if len(visited) != 3 || visited[0] != "a" {
		t.Fatalf("Each visited %v", visited)
	}
	if _, ok := st.Get("b"); !ok {
		t.Error("Get(b) missed")
	}
	if _, ok := st.Get("zzz"); ok {
		t.Error("Get(zzz) found phantom stratum")
	}
}

func TestStratifiedValidate(t *testing.T) {
	st := NewStratified[int]()
	st.Put(&Stratum[int]{Key: "ok", Population: 10, Items: []int{1}})
	if err := st.Validate(); err != nil {
		t.Fatalf("valid sample rejected: %v", err)
	}
	st.Put(&Stratum[int]{Key: "bad", Population: 1, Items: []int{1, 2}})
	if err := st.Validate(); err == nil {
		t.Error("over-sampled stratum accepted")
	}
	st2 := NewStratified[int]()
	st2.Put(&Stratum[int]{Key: "neg", Population: -1})
	if err := st2.Validate(); err == nil {
		t.Error("negative population accepted")
	}
}

func TestStratifiedReplace(t *testing.T) {
	st := NewStratified[int]()
	st.Put(&Stratum[int]{Key: "g", Population: 10, Items: []int{1}})
	st.Put(&Stratum[int]{Key: "g", Population: 20, Items: []int{1, 2}})
	if st.NumStrata() != 1 {
		t.Fatalf("replace created duplicate stratum")
	}
	s, _ := st.Get("g")
	if s.Population != 20 || len(s.Items) != 2 {
		t.Fatalf("replace kept stale stratum: %+v", s)
	}
}
