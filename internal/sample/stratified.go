package sample

import (
	"fmt"
	"sort"
)

// Stratum is one stratum of a stratified sample: the sampled items from
// one finest-partitioning group, together with the group's population so
// the sampling rate — and hence the scale factor 1/rate used by the
// Section 5 rewrites — is known.
type Stratum[T any] struct {
	Key        string // canonical group key (see core.GroupKey)
	Population int64  // number of tuples of the base relation in this group (n_g)
	Items      []T    // the sampled tuples
}

// Rate returns the stratum's sampling rate |Items|/Population, clamped
// to 1 for tiny groups that are fully sampled.
func (s *Stratum[T]) Rate() float64 {
	if s.Population <= 0 {
		return 1
	}
	r := float64(len(s.Items)) / float64(s.Population)
	if r > 1 {
		return 1
	}
	return r
}

// ScaleFactor returns the expansion factor 1/Rate applied to each
// sampled tuple when estimating aggregates. A stratum with no sampled
// items has scale factor 0 (it contributes nothing, and the group will
// be missing from approximate answers — the failure mode congressional
// samples exist to prevent).
func (s *Stratum[T]) ScaleFactor() float64 {
	if len(s.Items) == 0 {
		return 0
	}
	return float64(s.Population) / float64(len(s.Items))
}

// Stratified is a biased sample organized as named strata. It is the
// materialized form every allocation strategy in the paper produces:
// House degenerates to rates equal across strata, Senate to sizes equal
// across strata, Congress to the Eq. 5 allocation.
type Stratified[T any] struct {
	strata map[string]*Stratum[T]
}

// NewStratified returns an empty stratified sample.
func NewStratified[T any]() *Stratified[T] {
	return &Stratified[T]{strata: make(map[string]*Stratum[T])}
}

// Put inserts or replaces a stratum.
func (st *Stratified[T]) Put(s *Stratum[T]) { st.strata[s.Key] = s }

// Get returns the stratum for key, if present.
func (st *Stratified[T]) Get(key string) (*Stratum[T], bool) {
	s, ok := st.strata[key]
	return s, ok
}

// NumStrata returns the number of strata.
func (st *Stratified[T]) NumStrata() int { return len(st.strata) }

// Size returns the total number of sampled items across strata.
func (st *Stratified[T]) Size() int {
	n := 0
	for _, s := range st.strata {
		n += len(s.Items)
	}
	return n
}

// Population returns the total base population across strata.
func (st *Stratified[T]) Population() int64 {
	var n int64
	for _, s := range st.strata {
		n += s.Population
	}
	return n
}

// Keys returns the stratum keys in sorted order, for deterministic
// iteration.
func (st *Stratified[T]) Keys() []string {
	out := make([]string, 0, len(st.strata))
	for k := range st.strata {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Each calls fn for every stratum in sorted key order.
func (st *Stratified[T]) Each(fn func(*Stratum[T])) {
	for _, k := range st.Keys() {
		fn(st.strata[k])
	}
}

// Validate checks internal consistency: no stratum samples more items
// than its population and no negative populations.
func (st *Stratified[T]) Validate() error {
	for k, s := range st.strata {
		if s.Population < 0 {
			return fmt.Errorf("sample: stratum %q has negative population %d", k, s.Population)
		}
		if int64(len(s.Items)) > s.Population {
			return fmt.Errorf("sample: stratum %q samples %d of %d tuples", k, len(s.Items), s.Population)
		}
	}
	return nil
}
