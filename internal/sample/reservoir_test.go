package sample

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewReservoirValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewReservoir[int](0, rng); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewReservoir[int](-2, rng); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewReservoir[int](5, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestReservoirHoldsWholeShortStream(t *testing.T) {
	r := MustReservoir[int](10, rand.New(rand.NewSource(2)))
	for i := 0; i < 7; i++ {
		if _, evicted, accepted := r.Offer(i); evicted || !accepted {
			t.Fatalf("offer %d: evicted=%v accepted=%v", i, evicted, accepted)
		}
	}
	if r.Len() != 7 || r.Seen() != 7 {
		t.Fatalf("len=%d seen=%d, want 7,7", r.Len(), r.Seen())
	}
	if r.Rate() != 1 {
		t.Errorf("rate=%v, want 1 for fully-held stream", r.Rate())
	}
}

func TestReservoirNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(50)
		r := MustReservoir[int](capacity, rng)
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			r.Offer(i)
		}
		want := capacity
		if n < capacity {
			want = n
		}
		return r.Len() == want && r.Seen() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Every stream item should appear in the final sample with
	// probability k/n. Run many trials and check per-item inclusion
	// frequency.
	const (
		k      = 10
		n      = 100
		trials = 20000
	)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := MustReservoir[int](k, rng)
		for i := 0; i < n; i++ {
			r.Offer(i)
		}
		for _, v := range r.Items() {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("item %d included %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestReservoirEvictionReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := MustReservoir[int](3, rng)
	inSample := map[int]bool{}
	for i := 0; i < 1000; i++ {
		evicted, hadEviction, accepted := r.Offer(i)
		if accepted {
			inSample[i] = true
		}
		if hadEviction {
			if !inSample[evicted] {
				t.Fatalf("evicted %d which was not in sample", evicted)
			}
			delete(inSample, evicted)
		}
	}
	if len(inSample) != 3 {
		t.Fatalf("bookkeeping says %d items in sample, want 3", len(inSample))
	}
	for _, v := range r.Items() {
		if !inSample[v] {
			t.Fatalf("reservoir item %d not tracked", v)
		}
	}
}

func TestReservoirShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := MustReservoir[int](20, rng)
	for i := 0; i < 100; i++ {
		r.Offer(i)
	}
	evicted, err := r.Shrink(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 8 {
		t.Fatalf("after shrink len=%d, want 8", r.Len())
	}
	if len(evicted) != 12 {
		t.Fatalf("shrink evicted %d, want 12", len(evicted))
	}
	if r.Cap() != 8 {
		t.Fatalf("cap=%d, want 8", r.Cap())
	}
	// Shrink below 1 is a capacity underflow, surfaced as an error that
	// leaves the reservoir untouched (it used to clamp silently to 1).
	if _, err := r.Shrink(0, rng); !errors.Is(err, ErrCapacityUnderflow) {
		t.Fatalf("Shrink(0) err=%v, want ErrCapacityUnderflow", err)
	}
	if _, err := r.Shrink(-3, rng); !errors.Is(err, ErrCapacityUnderflow) {
		t.Fatalf("Shrink(-3) err=%v, want ErrCapacityUnderflow", err)
	}
	if r.Cap() != 8 || r.Len() != 8 {
		t.Fatalf("failed shrink mutated reservoir: cap=%d len=%d, want 8,8", r.Cap(), r.Len())
	}
}

// TestReservoirRegrowAdmissionRate is the regression test for the
// post-regrow bias: after Shrink grows the capacity mid-stream, arrivals
// used to be admitted with probability 1 while the reservoir refilled,
// so the sample was no longer uniform over the stream. Offers must be
// accepted with Algorithm R's probability capacity/seen instead.
func TestReservoirRegrowAdmissionRate(t *testing.T) {
	const (
		k1     = 50
		k2     = 100
		warm   = 5000 // stream length before the regrow
		post   = 5000 // stream length after the regrow
		trials = 40
	)
	rng := rand.New(rand.NewSource(12))
	var accepted, expected, variance float64
	earlyOverrep := 0
	for trial := 0; trial < trials; trial++ {
		r := MustReservoir[int](k1, rng)
		for i := 0; i < warm; i++ {
			r.Offer(i)
		}
		if _, err := r.Shrink(k2, rng); err != nil {
			t.Fatal(err)
		}
		if r.Cap() != k2 || r.Len() != k1 {
			t.Fatalf("after regrow cap=%d len=%d, want %d,%d", r.Cap(), r.Len(), k2, k1)
		}
		for i := warm; i < warm+post; i++ {
			if _, _, ok := r.Offer(i); ok {
				accepted++
			}
			p := float64(k2) / float64(i+1)
			expected += p
			variance += p * (1 - p)
		}
		// With the old bug the first k2-k1 post-regrow arrivals all
		// entered with probability 1.
		for _, v := range r.Items() {
			if v >= warm && v < warm+(k2-k1) {
				earlyOverrep++
			}
		}
	}
	// accepted ~ sum of independent Bernoullis; allow 6 sigma.
	if diff := math.Abs(accepted - expected); diff > 6*math.Sqrt(variance) {
		t.Errorf("post-regrow acceptances=%v, want ~%v (Δ=%v > 6σ=%v)",
			accepted, expected, diff, 6*math.Sqrt(variance))
	}
	// Uniform inclusion predicts ~k2/(warm+post) per early-post-regrow
	// item; the bug put essentially all k2-k1 of them in every trial.
	buggy := float64(trials * (k2 - k1))
	if float64(earlyOverrep) > buggy/4 {
		t.Errorf("first %d post-regrow items appeared %d times across %d trials (bug-level overrepresentation)",
			k2-k1, earlyOverrep, trials)
	}
}

// TestReservoirRegrowChiSquare checks that post-regrow arrivals' final
// inclusion frequencies decay like Algorithm R predicts rather than
// spiking at the regrow point: a chi-square test of inclusion counts per
// stream decile against the (survival-adjusted) expected profile.
func TestReservoirRegrowChiSquare(t *testing.T) {
	const (
		k1     = 20
		k2     = 40
		warm   = 1000
		post   = 2000
		trials = 3000
		bins   = 10
	)
	rng := rand.New(rand.NewSource(13))
	counts := make([]float64, bins)
	expect := make([]float64, bins)
	// Expected inclusion probability of post-regrow item t in the final
	// sample: admitted at k2/t, then survives each later replacement
	// Π (1 - accept_u/k2-ish). Estimate the profile empirically from an
	// explicit per-item simulation of the intended distribution: item t
	// is in the final sample with probability k2/(warm+post) once the
	// reservoir is back in steady state; earlier deciles decay toward
	// it. Rather than deriving the closed form, simulate the intended
	// process directly (admit with k2/t, uniform eviction) and compare
	// the two implementations' profiles — the production Offer path must
	// match the straightforward reference implementation.
	refCounts := make([]float64, bins)
	binOf := func(item int) int {
		b := (item - warm) * bins / post
		if b < 0 || b >= bins {
			return -1
		}
		return b
	}
	for trial := 0; trial < trials; trial++ {
		r := MustReservoir[int](k1, rng)
		for i := 0; i < warm; i++ {
			r.Offer(i)
		}
		if _, err := r.Shrink(k2, rng); err != nil {
			t.Fatal(err)
		}
		for i := warm; i < warm+post; i++ {
			r.Offer(i)
		}
		for _, v := range r.Items() {
			if b := binOf(v); b >= 0 {
				counts[b]++
			}
		}
		// Reference: direct per-item Bernoulli admission + uniform
		// eviction, no skip-count optimization.
		ref := make([]int, 0, k2)
		for i := 0; i < warm+post; i++ {
			switch {
			case i < k1 && len(ref) < k1:
				ref = append(ref, i)
			case i < warm:
				if rng.Float64()*float64(i+1) < float64(k1) {
					ref[rng.Intn(len(ref))] = i
				}
			case len(ref) < k2:
				if rng.Float64()*float64(i+1) < float64(k2) {
					ref = append(ref, i)
				}
			default:
				if rng.Float64()*float64(i+1) < float64(k2) {
					ref[rng.Intn(len(ref))] = i
				}
			}
		}
		for _, v := range ref {
			if b := binOf(v); b >= 0 {
				refCounts[b]++
			}
		}
	}
	var chi2 float64
	for b := 0; b < bins; b++ {
		expect[b] = refCounts[b]
		if expect[b] < 5 {
			t.Fatalf("reference bin %d too small (%v) for chi-square", b, expect[b])
		}
		d := counts[b] - expect[b]
		chi2 += d * d / expect[b]
	}
	// 9 degrees of freedom; the 0.001 critical value is 27.9. Both
	// profiles are noisy (each is one sampled draw), so the statistic is
	// inflated roughly 2x; use a generous 60 with a fixed seed.
	if chi2 > 60 {
		t.Errorf("chi-square %.1f over %d bins: production profile %v diverges from reference %v",
			chi2, bins, counts, expect)
	}
}

func TestReservoirRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := MustReservoir[int](25, rng)
	for i := 0; i < 1000; i++ {
		r.Offer(i)
	}
	if got, want := r.Rate(), 0.025; math.Abs(got-want) > 1e-12 {
		t.Errorf("rate=%v, want %v", got, want)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx := SampleWithoutReplacement(100, 30, rng)
	if len(idx) != 30 {
		t.Fatalf("got %d indices, want 30", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	// Over-ask returns the whole population.
	all := SampleWithoutReplacement(10, 50, rng)
	if len(all) != 10 {
		t.Fatalf("over-ask returned %d, want 10", len(all))
	}
	if got := SampleWithoutReplacement(10, 0, rng); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
	if got := SampleWithoutReplacement(10, -1, rng); got != nil {
		t.Fatalf("n<0 returned %v, want nil", got)
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const trials = 30000
	counts := make([]int, 20)
	for i := 0; i < trials; i++ {
		for _, j := range SampleWithoutReplacement(20, 5, rng) {
			counts[j]++
		}
	}
	want := float64(trials) * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("index %d chosen %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if !Bernoulli(1.0, rng) || !Bernoulli(2.0, rng) {
			t.Fatal("p>=1 must always accept")
		}
		if Bernoulli(0, rng) || Bernoulli(-1, rng) {
			t.Fatal("p<=0 must always reject")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if Bernoulli(0.3, rng) {
			hits++
		}
	}
	if math.Abs(float64(hits)/trials-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) hit rate %v", float64(hits)/trials)
	}
}

func TestBinomialApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	if BinomialApprox(0, 0.5, rng) != 0 || BinomialApprox(10, 0, rng) != 0 {
		t.Error("degenerate binomial should be 0")
	}
	if BinomialApprox(10, 1, rng) != 10 {
		t.Error("p=1 should return n")
	}
	var sum float64
	const trials = 5000
	for i := 0; i < trials; i++ {
		c := BinomialApprox(1000, 0.2, rng)
		if c < 0 || c > 1000 {
			t.Fatalf("count %d out of range", c)
		}
		sum += float64(c)
	}
	if mean := sum / trials; math.Abs(mean-200) > 5 {
		t.Errorf("binomial mean %v, want ~200", mean)
	}
}

func BenchmarkReservoirOffer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := MustReservoir[int](1000, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Offer(i)
	}
}
