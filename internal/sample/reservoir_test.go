package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewReservoirValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewReservoir[int](0, rng); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewReservoir[int](-2, rng); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewReservoir[int](5, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestReservoirHoldsWholeShortStream(t *testing.T) {
	r := MustReservoir[int](10, rand.New(rand.NewSource(2)))
	for i := 0; i < 7; i++ {
		if _, evicted, accepted := r.Offer(i); evicted || !accepted {
			t.Fatalf("offer %d: evicted=%v accepted=%v", i, evicted, accepted)
		}
	}
	if r.Len() != 7 || r.Seen() != 7 {
		t.Fatalf("len=%d seen=%d, want 7,7", r.Len(), r.Seen())
	}
	if r.Rate() != 1 {
		t.Errorf("rate=%v, want 1 for fully-held stream", r.Rate())
	}
}

func TestReservoirNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(50)
		r := MustReservoir[int](capacity, rng)
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			r.Offer(i)
		}
		want := capacity
		if n < capacity {
			want = n
		}
		return r.Len() == want && r.Seen() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Every stream item should appear in the final sample with
	// probability k/n. Run many trials and check per-item inclusion
	// frequency.
	const (
		k      = 10
		n      = 100
		trials = 20000
	)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := MustReservoir[int](k, rng)
		for i := 0; i < n; i++ {
			r.Offer(i)
		}
		for _, v := range r.Items() {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("item %d included %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestReservoirEvictionReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := MustReservoir[int](3, rng)
	inSample := map[int]bool{}
	for i := 0; i < 1000; i++ {
		evicted, hadEviction, accepted := r.Offer(i)
		if accepted {
			inSample[i] = true
		}
		if hadEviction {
			if !inSample[evicted] {
				t.Fatalf("evicted %d which was not in sample", evicted)
			}
			delete(inSample, evicted)
		}
	}
	if len(inSample) != 3 {
		t.Fatalf("bookkeeping says %d items in sample, want 3", len(inSample))
	}
	for _, v := range r.Items() {
		if !inSample[v] {
			t.Fatalf("reservoir item %d not tracked", v)
		}
	}
}

func TestReservoirShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := MustReservoir[int](20, rng)
	for i := 0; i < 100; i++ {
		r.Offer(i)
	}
	evicted := r.Shrink(8, rng)
	if r.Len() != 8 {
		t.Fatalf("after shrink len=%d, want 8", r.Len())
	}
	if len(evicted) != 12 {
		t.Fatalf("shrink evicted %d, want 12", len(evicted))
	}
	if r.Cap() != 8 {
		t.Fatalf("cap=%d, want 8", r.Cap())
	}
	// Shrink below 1 clamps to 1.
	r.Shrink(0, rng)
	if r.Cap() != 1 || r.Len() != 1 {
		t.Fatalf("cap=%d len=%d, want 1,1", r.Cap(), r.Len())
	}
}

func TestReservoirRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := MustReservoir[int](25, rng)
	for i := 0; i < 1000; i++ {
		r.Offer(i)
	}
	if got, want := r.Rate(), 0.025; math.Abs(got-want) > 1e-12 {
		t.Errorf("rate=%v, want %v", got, want)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx := SampleWithoutReplacement(100, 30, rng)
	if len(idx) != 30 {
		t.Fatalf("got %d indices, want 30", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	// Over-ask returns the whole population.
	all := SampleWithoutReplacement(10, 50, rng)
	if len(all) != 10 {
		t.Fatalf("over-ask returned %d, want 10", len(all))
	}
	if got := SampleWithoutReplacement(10, 0, rng); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
	if got := SampleWithoutReplacement(10, -1, rng); got != nil {
		t.Fatalf("n<0 returned %v, want nil", got)
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const trials = 30000
	counts := make([]int, 20)
	for i := 0; i < trials; i++ {
		for _, j := range SampleWithoutReplacement(20, 5, rng) {
			counts[j]++
		}
	}
	want := float64(trials) * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("index %d chosen %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if !Bernoulli(1.0, rng) || !Bernoulli(2.0, rng) {
			t.Fatal("p>=1 must always accept")
		}
		if Bernoulli(0, rng) || Bernoulli(-1, rng) {
			t.Fatal("p<=0 must always reject")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if Bernoulli(0.3, rng) {
			hits++
		}
	}
	if math.Abs(float64(hits)/trials-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) hit rate %v", float64(hits)/trials)
	}
}

func TestBinomialApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	if BinomialApprox(0, 0.5, rng) != 0 || BinomialApprox(10, 0, rng) != 0 {
		t.Error("degenerate binomial should be 0")
	}
	if BinomialApprox(10, 1, rng) != 10 {
		t.Error("p=1 should return n")
	}
	var sum float64
	const trials = 5000
	for i := 0; i < trials; i++ {
		c := BinomialApprox(1000, 0.2, rng)
		if c < 0 || c > 1000 {
			t.Fatalf("count %d out of range", c)
		}
		sum += float64(c)
	}
	if mean := sum / trials; math.Abs(mean-200) > 5 {
		t.Errorf("binomial mean %v, want ~200", mean)
	}
}

func BenchmarkReservoirOffer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := MustReservoir[int](1000, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Offer(i)
	}
}
