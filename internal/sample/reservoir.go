// Package sample provides the raw sampling machinery the congressional
// allocator builds on: classic reservoir sampling (Vitter's Algorithm R
// with the skip-count optimization the paper cites from [Vit85]),
// Bernoulli per-tuple sampling, and a stratified-sample container that
// records per-stratum sampling rates for scale-factor computation.
package sample

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Reservoir maintains a uniform random sample of fixed capacity over a
// stream of items using reservoir sampling. Offer is O(1) amortized:
// after the reservoir fills, a skip counter predetermines how many
// stream items to pass over before the next replacement, exactly as the
// paper describes in Section 6 ("predetermining how many insertions to
// skip over before the next is added to the sample").
type Reservoir[T any] struct {
	capacity int
	seen     int64 // stream length observed so far
	skip     int64 // items to skip before next replacement (-1 = recompute)
	items    []T
	rng      *rand.Rand
}

// NewReservoir creates a reservoir holding at most capacity items,
// drawing randomness from rng. Capacity must be positive.
func NewReservoir[T any](capacity int, rng *rand.Rand) (*Reservoir[T], error) {
	if capacity <= 0 {
		return nil, errors.New("sample: reservoir capacity must be positive")
	}
	if rng == nil {
		return nil, errors.New("sample: nil rng")
	}
	return &Reservoir[T]{capacity: capacity, skip: -1, items: make([]T, 0, capacity), rng: rng}, nil
}

// MustReservoir is NewReservoir but panics on error.
func MustReservoir[T any](capacity int, rng *rand.Rand) *Reservoir[T] {
	r, err := NewReservoir[T](capacity, rng)
	if err != nil {
		panic(err)
	}
	return r
}

// Offer presents the next stream item to the reservoir. It returns
// (evicted, hadEviction, accepted): accepted is true when the item
// entered the sample; hadEviction is true when an existing sampled item
// was displaced to make room, in which case evicted is that item. The
// eviction information drives the Basic Congress delta-sample
// maintenance of Section 6.
func (r *Reservoir[T]) Offer(item T) (evicted T, hadEviction, accepted bool) {
	r.seen++
	if len(r.items) < r.capacity {
		// Free space exists either because the stream is still shorter
		// than the capacity (classic fill phase: admit unconditionally)
		// or because Shrink regrew the capacity mid-stream. After a
		// regrow the stream is long, so unconditional admission would
		// give post-regrow arrivals inclusion probability 1; admit with
		// Algorithm R's probability capacity/seen instead — no eviction
		// needed while refilling. The refilled sample is approximately,
		// not exactly, uniform: pre-regrow survivors retain the lower
		// inclusion probability they had under the old capacity while
		// post-regrow arrivals enter at capacity/seen, and the gap only
		// washes out as the stream grows. Exact uniformity across a
		// capacity increase is impossible without revisiting discarded
		// items; downstream estimators treat the sample as uniform, so
		// a regrow introduces a small residual bias (far smaller than
		// the probability-1 admission this replaces).
		if r.seen > int64(r.capacity) &&
			r.rng.Float64()*float64(r.seen) >= float64(r.capacity) {
			return evicted, false, false
		}
		r.items = append(r.items, item)
		return evicted, false, true
	}
	if r.skip < 0 {
		r.computeSkip()
	}
	if r.skip > 0 {
		r.skip--
		return evicted, false, false
	}
	// Replace a uniformly random victim.
	victim := r.rng.Intn(r.capacity)
	evicted = r.items[victim]
	r.items[victim] = item
	r.skip = -1
	return evicted, true, true
}

// computeSkip draws the gap until the next accepted item. With t items
// seen and capacity k, item t+1 is accepted with probability k/(t+1);
// we draw successive Bernoulli trials folded into a single geometric-ish
// walk. This is Vitter's Algorithm X skip computation.
func (r *Reservoir[T]) computeSkip() {
	k := float64(r.capacity)
	// Offer increments seen before calling computeSkip, so the current
	// item is item number r.seen and must be accepted with probability
	// k/r.seen; start the walk one step back.
	t := float64(r.seen - 1)
	var skip int64
	for {
		t++
		if r.rng.Float64() < k/t {
			break
		}
		skip++
	}
	r.skip = skip
}

// Items returns the current sample contents. The returned slice aliases
// internal storage; callers must copy before mutating.
func (r *Reservoir[T]) Items() []T { return r.items }

// Len returns the number of items currently in the sample.
func (r *Reservoir[T]) Len() int { return len(r.items) }

// Cap returns the reservoir capacity.
func (r *Reservoir[T]) Cap() int { return r.capacity }

// Seen returns how many stream items have been offered.
func (r *Reservoir[T]) Seen() int64 { return r.seen }

// Rate returns the effective sampling rate len/seen (1 if the stream is
// shorter than the capacity). The inverse of this is the scale factor
// used when estimating aggregates from the sample.
func (r *Reservoir[T]) Rate() float64 {
	if r.seen == 0 {
		return 1
	}
	rate := float64(len(r.items)) / float64(r.seen)
	if rate > 1 {
		return 1
	}
	return rate
}

// ErrCapacityUnderflow is returned by Shrink when the requested capacity
// is below 1. A reservoir cannot hold fewer than one item, and silently
// clamping used to mask real sizing bugs (e.g. a Senate X/m target
// underflowing to 0 when the group count m exceeds the budget X).
var ErrCapacityUnderflow = errors.New("sample: reservoir capacity below 1")

// Shrink changes the reservoir capacity to newCap, evicting uniformly
// random victims if the sample currently exceeds it. Shrinking preserves
// the uniform-sample property: the paper's Theorem 6.1 proof notes the
// property "is preserved under random eviction without insertion".
// The evicted items are returned. Growing (newCap above the current
// capacity) only raises the cap; it cannot retroactively add items —
// Offer refills the freed space at probability capacity/seen, which
// keeps the sample approximately (not exactly) uniform; see Offer for
// the residual bias.
// newCap < 1 returns ErrCapacityUnderflow and leaves the reservoir
// unchanged.
func (r *Reservoir[T]) Shrink(newCap int, rng *rand.Rand) ([]T, error) {
	if newCap < 1 {
		return nil, fmt.Errorf("%w: requested %d", ErrCapacityUnderflow, newCap)
	}
	if newCap != r.capacity {
		// Any pending skip count was drawn for the old capacity;
		// recompute on the next Offer.
		r.skip = -1
	}
	r.capacity = newCap
	var out []T
	for len(r.items) > newCap {
		victim := rng.Intn(len(r.items))
		out = append(out, r.items[victim])
		last := len(r.items) - 1
		r.items[victim] = r.items[last]
		r.items = r.items[:last]
	}
	return out, nil
}

// ReservoirState is the serializable state of a Reservoir for durable
// snapshots. RNG state is intentionally excluded: restoring reseeds the
// stream of randomness, which preserves the uniform-sample distribution
// (every state the reservoir can reach is distribution-equivalent under
// any RNG continuation) without persisting generator internals.
type ReservoirState[T any] struct {
	Capacity int
	Seen     int64
	Items    []T
}

// State exports the reservoir's serializable state. The items slice is
// copied; the items themselves are shared.
func (r *Reservoir[T]) State() *ReservoirState[T] {
	return &ReservoirState[T]{
		Capacity: r.capacity,
		Seen:     r.seen,
		Items:    append([]T(nil), r.items...),
	}
}

// RestoreReservoir rebuilds a reservoir from exported state, drawing
// future randomness from rng. The pending skip count is not part of the
// state; it is recomputed on the next Offer.
func RestoreReservoir[T any](st *ReservoirState[T], rng *rand.Rand) (*Reservoir[T], error) {
	if st == nil {
		return nil, errors.New("sample: nil reservoir state")
	}
	r, err := NewReservoir[T](st.Capacity, rng)
	if err != nil {
		return nil, err
	}
	if len(st.Items) > st.Capacity {
		return nil, fmt.Errorf("sample: reservoir state holds %d items over capacity %d", len(st.Items), st.Capacity)
	}
	if st.Seen < int64(len(st.Items)) {
		return nil, fmt.Errorf("sample: reservoir state saw %d items but holds %d", st.Seen, len(st.Items))
	}
	r.seen = st.Seen
	r.items = append(r.items, st.Items...)
	return r, nil
}

// SampleWithoutReplacement draws n distinct indices from [0, population)
// uniformly at random. If n >= population, all indices are returned.
// It runs in O(n) expected time using Floyd's algorithm.
func SampleWithoutReplacement(population, n int, rng *rand.Rand) []int {
	if n >= population {
		out := make([]int, population)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if n <= 0 {
		return nil
	}
	chosen := make(map[int]struct{}, n)
	out := make([]int, 0, n)
	for j := population - n; j < population; j++ {
		t := rng.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Bernoulli decides membership with probability p for each call; it is
// the per-tuple selection primitive behind the Eq. 8 variant of
// congressional sampling.
func Bernoulli(p float64, rng *rand.Rand) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return rng.Float64() < p
}

// BinomialApprox draws an approximately binomial(n, p) count. For small
// n it runs exact Bernoulli trials; for large n it uses a normal
// approximation clamped to [0, n]. Used only by simulation helpers, not
// by the samplers themselves.
func BinomialApprox(n int, p float64, rng *rand.Rand) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		c := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				c++
			}
		}
		return c
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	c := int(math.Round(rng.NormFloat64()*sd + mean))
	if c < 0 {
		c = 0
	}
	if c > n {
		c = n
	}
	return c
}
