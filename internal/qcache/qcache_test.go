package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoHitMiss(t *testing.T) {
	var hits, misses atomic.Int64
	c := New(8, 0, Events{Hit: func() { hits.Add(1) }, Miss: func() { misses.Add(1) }})
	ctx := context.Background()

	calls := 0
	load := func() (any, int64, error) { calls++; return "v", 1, nil }

	v, hit, err := c.Do(ctx, "k", load)
	if err != nil || hit || v != "v" {
		t.Fatalf("first Do = %v, %v, %v; want v, false, nil", v, hit, err)
	}
	v, hit, err = c.Do(ctx, "k", load)
	if err != nil || !hit || v != "v" {
		t.Fatalf("second Do = %v, %v, %v; want v, true, nil", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("loader ran %d times, want 1", calls)
	}
	if hits.Load() != 1 || misses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits.Load(), misses.Load())
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(8, 0, Events{})
	ctx := context.Background()
	boom := errors.New("boom")

	calls := 0
	_, hit, err := c.Do(ctx, "k", func() (any, int64, error) { calls++; return nil, 0, boom })
	if !errors.Is(err, boom) || hit {
		t.Fatalf("Do = hit=%v err=%v; want miss with boom", hit, err)
	}
	v, hit, err := c.Do(ctx, "k", func() (any, int64, error) { calls++; return 7, 1, nil })
	if err != nil || hit || v != 7 {
		t.Fatalf("retry Do = %v, %v, %v; want 7, false, nil", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("loader ran %d times, want 2", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestEntryEviction(t *testing.T) {
	var evicted atomic.Int64
	c := New(2, 0, Events{Evict: func() { evicted.Add(1) }})
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	c.Put("c", 3, 1) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should still be cached")
	}
	if evicted.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", evicted.Load())
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(2, 0, Events{})
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	c.Get("a")           // a is now MRU
	c.Put("c", 3, 1)     // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should survive after touch")
	}
}

func TestByteBound(t *testing.T) {
	c := New(100, 10, Events{})
	c.Put("a", 1, 6)
	c.Put("b", 2, 6) // 12 bytes > 10: evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by byte bound")
	}
	if c.Bytes() != 6 {
		t.Fatalf("Bytes = %d, want 6", c.Bytes())
	}
	// A single oversized entry is kept (Len > 1 guard) so the cache
	// still functions when one result exceeds the whole budget.
	c.Put("huge", 3, 50)
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("oversized entry should be retained while alone")
	}
}

func TestSingleflightSharesOneLoad(t *testing.T) {
	c := New(8, 0, Events{})
	ctx := context.Background()

	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	const workers = 16
	var wg sync.WaitGroup
	results := make([]any, workers)
	hitCount := atomic.Int64{}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do(ctx, "k", func() (any, int64, error) {
				calls.Add(1)
				once.Do(func() { close(started) })
				<-release
				return "shared", 1, nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			if hit {
				hitCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	<-started
	time.Sleep(20 * time.Millisecond) // let followers queue on the flight
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times, want 1", calls.Load())
	}
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("worker %d got %v", i, v)
		}
	}
	if hitCount.Load() != workers-1 {
		t.Fatalf("hits = %d, want %d", hitCount.Load(), workers-1)
	}
}

func TestFailedLeaderRetriesAreSingleflighted(t *testing.T) {
	// Regression: when a flight leader failed, every waiter used to re-run
	// fn concurrently with no new flight registered, so a burst of
	// identical queries behind one failed leader stampeded the loader.
	// Now the first waiter to loop back becomes the new leader and the
	// rest share its flight, so fn runs exactly twice: the failing leader
	// and one successful retry.
	c := New(8, 0, Events{})
	ctx := context.Background()

	var calls atomic.Int64
	fail := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	boom := errors.New("boom")
	load := func() (any, int64, error) {
		if calls.Add(1) == 1 {
			once.Do(func() { close(started) })
			<-fail
			return nil, 0, boom
		}
		return "ok", 1, nil
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", load)
		leaderDone <- err
	}()
	<-started

	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	results := make([]any, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = c.Do(ctx, "k", load)
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let waiters queue on the leader's flight
	close(fail)
	wg.Wait()

	if err := <-leaderDone; !errors.Is(err, boom) {
		t.Fatalf("leader err = %v, want boom", err)
	}
	for i := range errs {
		if errs[i] != nil {
			t.Errorf("waiter %d: %v", i, errs[i])
		}
		if results[i] != "ok" {
			t.Errorf("waiter %d got %v, want ok", i, results[i])
		}
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("loader ran %d times, want 2 (failed leader + one single-flighted retry)", n)
	}
}

func TestFollowerCtxCancel(t *testing.T) {
	c := New(8, 0, Events{})
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), "k", func() (any, int64, error) {
		close(started)
		<-release
		return 1, 1, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func() (any, int64, error) { return 2, 1, nil })
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower did not observe cancellation")
	}
	close(release)
}

func TestNilCache(t *testing.T) {
	var c *Cache
	v, hit, err := c.Do(context.Background(), "k", func() (any, int64, error) { return 42, 1, nil })
	if err != nil || hit || v != 42 {
		t.Fatalf("nil Do = %v, %v, %v; want 42, false, nil", v, hit, err)
	}
	c.Put("k", 1, 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache should not store")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache should report empty")
	}
	c.Purge()
}

func TestPurge(t *testing.T) {
	c := New(8, 0, Events{})
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 10)
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after Purge: Len=%d Bytes=%d, want 0/0", c.Len(), c.Bytes())
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(32, 0, Events{})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%40)
				v, _, err := c.Do(ctx, key, func() (any, int64, error) { return key, 8, nil })
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				if v != key {
					t.Errorf("Do(%s) = %v", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
