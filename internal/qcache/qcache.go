// Package qcache is the bounded result cache backing the warehouse's
// hot query path: a mutex-guarded LRU with entry- and byte-capacity
// limits, plus a singleflight layer so concurrent identical misses
// execute the underlying scan once and share its result.
//
// The cache itself is oblivious to invalidation: callers embed a
// version (the synopsis epoch) in the key, so entries for superseded
// versions become unreachable the instant the epoch advances and age
// out of the LRU naturally. That makes serving a stale entry
// structurally impossible rather than a matter of eviction timing.
package qcache

import (
	"container/list"
	"context"
)
import "sync"

// Events carries optional counters notified on cache lifecycle points.
// Any nil field is skipped. Callbacks must be safe for concurrent use
// and fast (they run on the query path, some under the cache lock).
type Events struct {
	// Hit fires when Do returns a cached (or singleflight-shared) value.
	Hit func()
	// Miss fires when Do has to execute the loader.
	Miss func()
	// Evict fires once per entry removed to enforce a capacity bound.
	Evict func()
}

// entry is one cached value with its accounted cost in bytes.
type entry struct {
	key  string
	val  any
	cost int64
}

// flight is one in-progress load shared by concurrent identical misses.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a bounded LRU with singleflight loading. A nil *Cache is a
// valid no-op cache: Do executes the loader directly and never stores.
type Cache struct {
	maxEntries int
	maxBytes   int64
	ev         Events

	mu      sync.Mutex
	bytes   int64
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*flight
}

// New creates a cache holding at most maxEntries entries and maxBytes
// accounted bytes. maxEntries <= 0 returns nil (caching disabled);
// maxBytes <= 0 means no byte bound.
func New(maxEntries int, maxBytes int64, ev Events) *Cache {
	if maxEntries <= 0 {
		return nil
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ev:         ev,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		flights:    make(map[string]*flight),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key with the given byte cost, evicting from the
// LRU tail as needed to respect both capacity bounds.
func (c *Cache) Put(key string, val any, cost int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.putLocked(key, val, cost)
	c.mu.Unlock()
}

func (c *Cache) putLocked(key string, val any, cost int64) {
	if cost < 0 {
		cost = 0
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, cost: cost})
		c.bytes += cost
	}
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1) {
		c.evictOldestLocked()
	}
}

func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.cost
	if c.ev.Evict != nil {
		c.ev.Evict()
	}
}

// Do returns the value for key, loading it with fn on a miss. Concurrent
// calls for the same missing key share one fn execution (a singleflight):
// the first caller runs fn, the rest block until it finishes and share
// the result. hit reports whether the value came from the cache or a
// shared flight rather than this caller's own fn execution.
//
// fn's error is returned to the leader and every waiter, and nothing is
// cached. Waiters whose flight leader failed do not inherit its error
// (it may be specific to the leader — its deadline, say): they loop back
// to the miss path, where the first one to re-acquire the lock registers
// a fresh flight and the rest wait on it — so even a burst behind a
// failing leader retries one fn at a time instead of stampeding. A
// waiter whose own ctx expires stops waiting and returns ctx's error.
func (c *Cache) Do(ctx context.Context, key string, fn func() (val any, cost int64, err error)) (val any, hit bool, err error) {
	if c == nil {
		v, _, err := fn()
		return v, false, err
	}
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			v := el.Value.(*entry).val
			c.mu.Unlock()
			if c.ev.Hit != nil {
				c.ev.Hit()
			}
			return v, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				if c.ev.Hit != nil {
					c.ev.Hit()
				}
				return f.val, true, nil
			}
			// The leader failed; retry from the top so the retry is
			// itself single-flighted (one of the waiters becomes the new
			// leader, the rest share its flight).
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()
		if c.ev.Miss != nil {
			c.ev.Miss()
		}
		f.val, _, f.err = func() (any, int64, error) {
			v, cost, err := fn()
			c.mu.Lock()
			delete(c.flights, key)
			if err == nil {
				c.putLocked(key, v, cost)
			}
			c.mu.Unlock()
			return v, cost, err
		}()
		close(f.done)
		return f.val, false, f.err
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the accounted byte total of cached entries.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Purge drops every cached entry (in-progress flights are unaffected;
// they will repopulate on completion).
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.bytes = 0
	c.mu.Unlock()
}
