// Package tpcd generates the evaluation data of Section 7.1.1: a
// TPC-D-style lineitem table whose group sizes and aggregate values
// follow Zipf distributions with configurable skew, replacing the
// benchmark's original nearly-uniform distributions exactly as the
// paper's authors did.
//
// The schema matches the paper's reduced lineitem:
//
//	l_id            INTEGER  primary key (1, 2, ...)
//	l_returnflag    INTEGER  grouping
//	l_linestatus    INTEGER  grouping
//	l_shipdate      DATE     grouping
//	l_quantity      FLOAT    aggregation
//	l_extendedprice FLOAT    aggregation
//
// For NG requested groups, each of the three grouping columns receives
// NG^(1/3) distinct randomly chosen values and the groups are the full
// cross product, per Section 7.1.1.
package tpcd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/zipf"
)

// GroupingAttrs are the grouping (dimensional) attributes of lineitem.
var GroupingAttrs = []string{"l_returnflag", "l_linestatus", "l_shipdate"}

// AggAttrs are the aggregation (measured) attributes.
var AggAttrs = []string{"l_quantity", "l_extendedprice"}

// Params configures the generator, mirroring Table 1 of the paper.
type Params struct {
	// TableSize is T: number of tuples. Paper range 100K-6M, default 1M.
	TableSize int
	// NumGroups is NG: requested group count. Rounded to the nearest
	// perfect cube so the three grouping columns split it evenly.
	// Paper range 10-200K, default 1000.
	NumGroups int
	// GroupSkew is the Zipf z for group sizes (0-1.5, default 0.86).
	GroupSkew float64
	// AggSkew is the Zipf z for aggregate values (paper fixes 0.86).
	AggSkew float64
	// AggDomain is the number of distinct aggregate values (default 1000).
	AggDomain int
	// Seed makes generation deterministic.
	Seed int64
}

// Defaults are the paper's default parameter values (Table 1).
var Defaults = Params{
	TableSize: 1_000_000,
	NumGroups: 1000,
	GroupSkew: 0.86,
	AggSkew:   0.86,
	AggDomain: 1000,
	Seed:      1,
}

// withDefaults fills zero fields from Defaults.
func (p Params) withDefaults() Params {
	d := Defaults
	if p.TableSize != 0 {
		d.TableSize = p.TableSize
	}
	if p.NumGroups != 0 {
		d.NumGroups = p.NumGroups
	}
	if p.GroupSkew != 0 {
		d.GroupSkew = p.GroupSkew
	}
	d.GroupSkew = math.Max(0, d.GroupSkew)
	if p.AggSkew != 0 {
		d.AggSkew = p.AggSkew
	}
	if p.AggDomain > 0 {
		d.AggDomain = p.AggDomain
	}
	if p.Seed != 0 {
		d.Seed = p.Seed
	}
	return d
}

// PerColumnValues returns the distinct-value count per grouping column
// for a requested group count: round(NG^(1/3)), at least 1.
func PerColumnValues(numGroups int) int {
	c := int(math.Round(math.Cbrt(float64(numGroups))))
	if c < 1 {
		c = 1
	}
	return c
}

// Schema returns the lineitem schema.
func Schema() *engine.Schema {
	return engine.MustSchema(
		engine.Column{Name: "l_id", Kind: engine.KindInt},
		engine.Column{Name: "l_returnflag", Kind: engine.KindInt},
		engine.Column{Name: "l_linestatus", Kind: engine.KindInt},
		engine.Column{Name: "l_shipdate", Kind: engine.KindDate},
		engine.Column{Name: "l_quantity", Kind: engine.KindFloat},
		engine.Column{Name: "l_extendedprice", Kind: engine.KindFloat},
	)
}

// Generate builds the lineitem relation. Group sizes follow
// Zipf(GroupSkew) over the cross-product groups (every group non-empty
// when TableSize >= NumGroups); aggregate values follow Zipf(AggSkew)
// over AggDomain distinct values. Tuples are shuffled before l_id
// assignment so an l_id range predicate (the Q_g0 workload) selects
// uniformly across groups.
func Generate(p Params) (*engine.Relation, error) {
	p = p.withDefaults()
	if p.TableSize < 1 {
		return nil, fmt.Errorf("tpcd: table size %d too small", p.TableSize)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	c := PerColumnValues(p.NumGroups)
	ng := c * c * c
	if p.TableSize < ng {
		return nil, fmt.Errorf("tpcd: table size %d cannot populate %d groups", p.TableSize, ng)
	}

	// Distinct values per grouping column: random but reproducible.
	flags := distinctInts(rng, c, 1000)
	statuses := distinctInts(rng, c, 1000)
	dates := distinctDates(rng, c)

	// Zipf group sizes, assigned to randomly permuted groups so size is
	// uncorrelated with attribute values.
	groupDist, err := zipf.New(ng, p.GroupSkew)
	if err != nil {
		return nil, err
	}
	counts := groupDist.Counts(p.TableSize)
	perm := rng.Perm(ng)

	aggDist, err := zipf.New(p.AggDomain, p.AggSkew)
	if err != nil {
		return nil, err
	}

	rows := make([]engine.Row, 0, p.TableSize)
	for gi := 0; gi < ng; gi++ {
		g := perm[gi]
		fi := g / (c * c)
		si := (g / c) % c
		di := g % c
		n := counts[gi]
		for i := 0; i < n; i++ {
			qty := float64(aggDist.Next(rng) + 1)
			price := float64(aggDist.Next(rng)+1) * 1.5
			rows = append(rows, engine.Row{
				engine.Null, // l_id assigned after shuffle
				engine.NewInt(int64(flags[fi])),
				engine.NewInt(int64(statuses[si])),
				dates[di],
				engine.NewFloat(qty),
				engine.NewFloat(price),
			})
		}
	}

	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	for i := range rows {
		rows[i][0] = engine.NewInt(int64(i + 1))
	}

	rel := engine.NewRelation("lineitem", Schema())
	if err := rel.InsertAll(rows); err != nil {
		return nil, err
	}
	return rel, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(p Params) *engine.Relation {
	rel, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return rel
}

// distinctInts draws n distinct ints from [0, domain), enlarging the
// domain if needed.
func distinctInts(rng *rand.Rand, n, domain int) []int {
	if domain < n {
		domain = n
	}
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		v := rng.Intn(domain)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// distinctDates draws n distinct dates from the TPC-D shipping window
// (1992-01-01 .. 1998-12-31).
func distinctDates(rng *rand.Rand, n int) []engine.Value {
	start := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC).Unix() / 86400
	end := time.Date(1998, 12, 31, 0, 0, 0, 0, time.UTC).Unix() / 86400
	span := int(end - start + 1)
	if span < n {
		span = n
	}
	seen := make(map[int]bool, n)
	out := make([]engine.Value, 0, n)
	for len(out) < n {
		d := rng.Intn(span)
		if !seen[d] {
			seen[d] = true
			out = append(out, engine.NewDate(start+int64(d)))
		}
	}
	return out
}
