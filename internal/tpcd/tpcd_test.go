package tpcd

import (
	"math"
	"testing"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
)

func TestPerColumnValues(t *testing.T) {
	cases := map[int]int{1: 1, 8: 2, 27: 3, 1000: 10, 10: 2, 100: 5, 200000: 58}
	for ng, want := range cases {
		if got := PerColumnValues(ng); got != want {
			t.Errorf("PerColumnValues(%d) = %d, want %d", ng, got, want)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	rel, err := Generate(Params{TableSize: 10000, NumGroups: 27, GroupSkew: 1.0, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 10000 {
		t.Fatalf("rows %d", rel.NumRows())
	}
	if rel.Schema.Len() != 6 {
		t.Fatalf("schema %v", rel.Schema.Names())
	}

	// Every group must be non-empty and group count must equal 27.
	g := core.MustGrouping(rel.Schema, GroupingAttrs)
	cube, err := core.BuildCube(rel, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := cube.NumGroups(cube.FinestMask()); got != 27 {
		t.Fatalf("finest groups %d, want 27", got)
	}
	// Per-column distinct counts are 3 each.
	for mask, want := range map[uint32]int{0b001: 3, 0b010: 3, 0b100: 3} {
		if got := cube.NumGroups(mask); got != want {
			t.Errorf("mask %b groups %d, want %d", mask, got, want)
		}
	}
}

func TestGenerateIDsSequentialAndShuffled(t *testing.T) {
	rel := MustGenerate(Params{TableSize: 5000, NumGroups: 8, GroupSkew: 1.5, Seed: 7})
	rows := rel.Rows()
	seen := make([]bool, len(rows)+1)
	for i, row := range rows {
		id := row[0].I
		if id < 1 || id > int64(len(rows)) || seen[id] {
			t.Fatalf("bad l_id %d at row %d", id, i)
		}
		seen[id] = true
	}
	// Shuffle check: consecutive ids should not all share a group.
	g := core.MustGrouping(rel.Schema, GroupingAttrs)
	sameGroupRuns := 0
	for i := 1; i < 1000; i++ {
		if g.Key(rows[i]) == g.Key(rows[i-1]) {
			sameGroupRuns++
		}
	}
	if sameGroupRuns > 900 {
		t.Errorf("rows appear sorted by group (%d/999 adjacent same-group)", sameGroupRuns)
	}
}

func TestGenerateSkewControlsGroupSizes(t *testing.T) {
	sizes := func(z float64) (min, max int64) {
		rel := MustGenerate(Params{TableSize: 50000, NumGroups: 64, GroupSkew: z, Seed: 3})
		g := core.MustGrouping(rel.Schema, GroupingAttrs)
		cube, _ := core.BuildCube(rel, g)
		min, max = int64(1<<62), int64(0)
		cube.FinestGroups(func(_ string, n int64) {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		})
		return
	}
	uMin, uMax := sizes(0.0001) // effectively uniform (z=0 is remapped by withDefaults)
	if float64(uMax)/float64(uMin) > 1.5 {
		t.Errorf("near-uniform skew produced ratio %d/%d", uMax, uMin)
	}
	sMin, sMax := sizes(1.5)
	if float64(sMax)/float64(sMin) < 50 {
		t.Errorf("z=1.5 produced weak skew ratio %d/%d", sMax, sMin)
	}
	if sMin < 1 {
		t.Error("skewed generation left an empty group")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Params{TableSize: 2000, NumGroups: 8, Seed: 11})
	b := MustGenerate(Params{TableSize: 2000, NumGroups: 8, Seed: 11})
	ra, rb := a.Rows(), b.Rows()
	for i := range ra {
		for j := range ra[i] {
			if !ra[i][j].Equal(rb[i][j]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, ra[i][j], rb[i][j])
			}
		}
	}
}

func TestGenerateAggSkew(t *testing.T) {
	rel := MustGenerate(Params{TableSize: 20000, NumGroups: 8, AggSkew: 0.86, Seed: 5})
	// The most common quantity value should dominate under z=0.86.
	counts := map[float64]int{}
	for _, row := range rel.Rows() {
		counts[row[4].F]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if frac := float64(maxCount) / 20000; frac < 0.05 {
		t.Errorf("top aggregate value holds %.3f of rows; expected Zipf concentration", frac)
	}
	// Values must be positive.
	for _, row := range rel.Rows()[:100] {
		if row[4].F <= 0 || row[5].F <= 0 {
			t.Fatalf("non-positive aggregate value %v/%v", row[4], row[5])
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Params{TableSize: 10, NumGroups: 1000}); err == nil {
		t.Error("table smaller than group count accepted")
	}
	if _, err := Generate(Params{TableSize: -5}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestGenerateDatesInWindow(t *testing.T) {
	rel := MustGenerate(Params{TableSize: 1000, NumGroups: 27, Seed: 9})
	lo := engine.MustParseDate("1992-01-01")
	hi := engine.MustParseDate("1998-12-31")
	for _, row := range rel.Rows() {
		d := row[3]
		if d.K != engine.KindDate || d.Compare(lo) < 0 || d.Compare(hi) > 0 {
			t.Fatalf("date %v outside TPC-D window", d)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := Params{}.withDefaults()
	if p.TableSize != 1_000_000 || p.NumGroups != 1000 || math.Abs(p.GroupSkew-0.86) > 1e-12 {
		t.Errorf("defaults %+v", p)
	}
}
