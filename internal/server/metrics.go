package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxdb/congress/internal/metrics"
)

// serverMetrics aggregates the server-side counters and latency
// histograms exposed on /metrics next to the warehouse's congress_*
// telemetry. Metric names (all deterministic, sorted rendering):
//
//	server_in_flight                      requests currently executing
//	server_admission_queue_depth          requests waiting for a worker slot
//	server_requests_shed_total            requests rejected with 429
//	server_panics_recovered_total         handler panics turned into 500s
//	server_requests_total{route,code}     completed requests by route and status
//	server_request_seconds{route,...}     per-route latency histogram + quantiles
//	server_request_seconds_all{...}       all-routes latency histogram + quantiles
type serverMetrics struct {
	inFlight atomic.Int64
	shed     atomic.Int64
	panics   atomic.Int64

	all     *metrics.Histogram
	byRoute map[string]*metrics.Histogram // fixed key set, created up front

	mu       sync.Mutex
	requests map[string]int64 // "route\x00code" -> count
}

// metricRoutes is the fixed label set; creating every histogram up front
// keeps Observe lock-free.
var metricRoutes = []string{"exact", "healthz", "insert", "metrics", "query", "repl", "repl_status", "snapshot", "synopses"}

func newServerMetrics() *serverMetrics {
	m := &serverMetrics{
		all:      metrics.NewHistogram(),
		byRoute:  make(map[string]*metrics.Histogram, len(metricRoutes)),
		requests: make(map[string]int64),
	}
	for _, r := range metricRoutes {
		m.byRoute[r] = metrics.NewHistogram()
	}
	return m
}

// observe records one completed request.
func (m *serverMetrics) observe(route string, code int, d time.Duration) {
	m.all.Observe(d)
	if h, ok := m.byRoute[route]; ok {
		h.Observe(d)
	}
	m.mu.Lock()
	m.requests[route+"\x00"+fmt.Sprint(code)]++
	m.mu.Unlock()
}

// render writes the server_* exposition block, with every multi-valued
// family sorted by label so output is deterministic for a fixed state.
func (m *serverMetrics) render(sb *strings.Builder, queueDepth int64) {
	fmt.Fprintf(sb, "server_in_flight %d\n", m.inFlight.Load())
	fmt.Fprintf(sb, "server_admission_queue_depth %d\n", queueDepth)
	fmt.Fprintf(sb, "server_requests_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(sb, "server_panics_recovered_total %d\n", m.panics.Load())

	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		route, code, _ := strings.Cut(k, "\x00")
		lines = append(lines, fmt.Sprintf("server_requests_total{code=%q,route=%q} %d\n", code, route, m.requests[k]))
	}
	m.mu.Unlock()
	for _, l := range lines {
		sb.WriteString(l)
	}

	m.all.Snapshot().Render(sb, "server_request_seconds_all")
	for _, r := range metricRoutes {
		if snap := m.byRoute[r].Snapshot(); snap.Count > 0 {
			snap.Render(sb, "server_request_seconds", "route", r)
		}
	}
}
