package server

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/approxdb/congress/internal/workload"
	"github.com/approxdb/congress/pkg/client"
)

// TestQueueWaitNotChargedToDeadline saturates the single worker slot so
// a second request queues for most of its timeout window, then does work
// whose duration fits the full window but not the remainder. The request
// must succeed: the engine deadline starts when the worker slot is
// acquired, not when the request arrives. Before the admission fix one
// window covered both wait and work (queueWait + workDelay > timeout
// here), so this request 504'd spuriously. The timeout still bounds the
// wait itself — that behavior is pinned by TestQueuedRequestHonorsDeadline.
func TestQueueWaitNotChargedToDeadline(t *testing.T) {
	const (
		timeout   = 600 * time.Millisecond // queued request's budget
		queueWait = 400 * time.Millisecond // < timeout: the wait survives
		workDelay = 250 * time.Millisecond // wait+work > timeout: old code 504s
	)
	w := testWarehouse(t, 2000, 20)
	srv, c := testServer(t, Options{Warehouse: w, MaxConcurrent: 1, QueueDepth: 4})

	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	var calls atomic.Int32
	srv.onExecute = func() {
		if calls.Add(1) == 1 { // the slot holder
			entered <- struct{}{}
			<-release
			return
		}
		// The queued request: burn engine-deadline time after admission.
		time.Sleep(workDelay)
	}

	holdDone := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), client.QueryRequest{SQL: workload.Qg2})
		holdDone <- err
	}()
	<-entered

	queuedDone := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), client.QueryRequest{
			SQL: workload.Qg2, TimeoutMS: timeout.Milliseconds(),
		})
		queuedDone <- err
	}()
	waitFor(t, func() bool { return srv.adm.depth() == 1 })

	time.Sleep(queueWait)
	close(release)

	if err := <-queuedDone; err != nil {
		t.Errorf("queued request failed; queue wait is being charged to the engine deadline: %v", err)
	}
	if err := <-holdDone; err != nil {
		t.Errorf("slot-holding request failed: %v", err)
	}
}

// TestCacheHeaderAndNoCache exercises the /v1/query cache surface: the
// X-Congress-Cache header (mirrored in the body's cache field) must read
// miss, then hit, and a no_cache request must bypass without disturbing
// the stored entry.
func TestCacheHeaderAndNoCache(t *testing.T) {
	w := testWarehouse(t, 2000, 20)
	_, c := testServer(t, Options{Warehouse: w})
	ctx := context.Background()

	query := func(noCache bool) string {
		t.Helper()
		res, err := c.Query(ctx, client.QueryRequest{SQL: workload.Qg2, NoCache: noCache})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cache
	}
	if got := query(false); got != "miss" {
		t.Errorf("first query cache = %q, want miss", got)
	}
	if got := query(false); got != "hit" {
		t.Errorf("second query cache = %q, want hit", got)
	}
	if got := query(true); got != "bypass" {
		t.Errorf("no_cache query cache = %q, want bypass", got)
	}
	if got := query(false); got != "hit" {
		t.Errorf("query after bypass cache = %q, want hit (bypass must not evict)", got)
	}

	// The estimate path is cached under its own keys.
	est := func() string {
		t.Helper()
		res, err := c.Query(ctx, client.QueryRequest{Estimate: &client.EstimateRequest{
			Table: "lineitem", GroupBy: []string{"l_returnflag"},
			Agg: "sum", Column: "l_quantity", Confidence: 0.95,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cache
	}
	if got := est(); got != "miss" {
		t.Errorf("first estimate cache = %q, want miss", got)
	}
	if got := est(); got != "hit" {
		t.Errorf("second estimate cache = %q, want hit", got)
	}

	// An insert invalidates; the next query is answered fresh.
	if _, err := c.Insert(ctx, client.InsertRequest{
		Table: "lineitem",
		Rows:  [][]any{{int64(8_000_000), 0, 0, "1995-01-01", 3.0, 42.0}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := query(false); got == "hit" {
		t.Error("query after insert still hit; stale answer served")
	}
}

// TestCacheDisabledServerBypasses covers a warehouse whose cache was
// disabled: every answer must report bypass.
func TestCacheDisabledServerBypasses(t *testing.T) {
	w := testWarehouse(t, 2000, 20)
	w.ConfigureCache(-1, 0)
	_, c := testServer(t, Options{Warehouse: w})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		res, err := c.Query(ctx, client.QueryRequest{SQL: workload.Qg2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache != "bypass" {
			t.Errorf("call %d with cache disabled: cache = %q, want bypass", i, res.Cache)
		}
	}
}
