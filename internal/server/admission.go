package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// errSaturated is returned by acquire when both the worker semaphore and
// the backpressure queue are full; the handler maps it to 429 with a
// Retry-After hint.
var errSaturated = errors.New("server: overloaded, admission queue full")

// admission is the server's load-shedding gate: at most maxConcurrent
// requests execute at once, at most queueDepth more wait for a slot, and
// everything beyond that is shed immediately so the server stays
// responsive instead of accumulating unbounded work.
type admission struct {
	sem   chan struct{} // worker slots (capacity = maxConcurrent)
	queue chan struct{} // waiting slots (capacity = queueDepth)

	queued atomic.Int64 // current waiters, for the metrics gauge
}

func newAdmission(maxConcurrent, queueDepth int) *admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		sem:   make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, queueDepth),
	}
}

// acquire claims a worker slot, waiting in the bounded queue if all
// slots are busy. It returns a release function on success; errSaturated
// when the queue is full; or the context's error if the caller's
// deadline fires while queued.
func (ad *admission) acquire(ctx context.Context) (release func(), err error) {
	release = func() { <-ad.sem }
	// Fast path: a free worker slot.
	select {
	case ad.sem <- struct{}{}:
		return release, nil
	default:
	}
	// Slow path: claim a queue slot or shed.
	select {
	case ad.queue <- struct{}{}:
	default:
		return nil, errSaturated
	}
	ad.queued.Add(1)
	defer func() {
		ad.queued.Add(-1)
		<-ad.queue
	}()
	select {
	case ad.sem <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// depth reports the current number of queued waiters.
func (ad *admission) depth() int64 { return ad.queued.Load() }
