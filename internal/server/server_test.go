package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	congress "github.com/approxdb/congress"
	"github.com/approxdb/congress/internal/tpcd"
	"github.com/approxdb/congress/internal/workload"
	"github.com/approxdb/congress/pkg/client"
)

// testWarehouse builds a small lineitem warehouse with a congressional
// synopsis.
func testWarehouse(t testing.TB, rows, groups int) *congress.Warehouse {
	t.Helper()
	rel, err := tpcd.Generate(tpcd.Params{TableSize: rows, NumGroups: groups, GroupSkew: 0.86, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := congress.Open()
	w.AttachRelation(rel)
	if err := w.BuildSynopsis(congress.SynopsisSpec{
		Table:   "lineitem",
		GroupBy: tpcd.GroupingAttrs,
		Space:   rows / 10,
		Seed:    1,
	}); err != nil {
		t.Fatal(err)
	}
	return w
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testServer wires a Server onto an httptest listener and returns a
// client for it.
func testServer(t testing.TB, opts Options) (*Server, *client.Client) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	srv := New(opts)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, client.New(hs.URL)
}

func TestEndToEndConcurrent(t *testing.T) {
	w := testWarehouse(t, 5000, 50)
	_, c := testServer(t, Options{Warehouse: w})
	ctx := context.Background()

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				var err error
				switch rng.Intn(5) {
				case 0: // approximate SQL
					_, err = c.Query(ctx, client.QueryRequest{SQL: workload.Qg2})
				case 1: // direct estimate with bounds
					var res *client.QueryResponse
					res, err = c.Query(ctx, client.QueryRequest{Estimate: &client.EstimateRequest{
						Table: "lineitem", GroupBy: []string{"l_returnflag"},
						Agg: "sum", Column: "l_quantity", Confidence: 0.95,
					}})
					if err == nil && len(res.Groups) == 0 {
						err = errors.New("estimate returned no groups")
					}
				case 2: // exact
					_, err = c.Exact(ctx, client.ExactRequest{SQL: workload.Qg2})
				case 3: // insert feeding the maintainer, sometimes refreshing
					_, err = c.Insert(ctx, client.InsertRequest{
						Table: "lineitem",
						Rows: [][]any{{
							int64(1_000_000 + g*iters + i), rng.Intn(3), rng.Intn(2),
							"1994-06-15", 7.0, 1200.0,
						}},
						Refresh: i%10 == 0,
					})
				case 4: // listings and probes
					_, err = c.Synopses(ctx, i%2 == 0)
					if err == nil {
						err = c.Health(ctx)
					}
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", g, i, err)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The mixed run must be visible in the telemetry.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"congress_answer_total", "server_requests_total", "server_request_seconds_all_count"} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	w := testWarehouse(t, 2000, 20)
	srv := New(Options{Warehouse: w, Logger: quietLogger()})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.onExecute = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := client.New("http://" + addr)

	// Put one request in flight and hold it there.
	reqDone := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), client.QueryRequest{SQL: workload.Qg2})
		reqDone <- err
	}()
	<-entered

	// Shutdown must block on the in-flight request, not drop it.
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) while a request was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// New connections are refused while draining.
	if err := c.Health(context.Background()); err == nil {
		t.Error("health check succeeded during shutdown; listener should be closed")
	}

	close(release)
	if err := <-reqDone; err != nil {
		t.Errorf("in-flight request was dropped during graceful shutdown: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	w := testWarehouse(t, 2000, 20)
	srv, c := testServer(t, Options{Warehouse: w, MaxConcurrent: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})

	release := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()
	entered := make(chan struct{}, 16)
	srv.onExecute = func() {
		entered <- struct{}{}
		<-release // reads on a closed channel pass straight through
	}

	ctx := context.Background()
	done := make(chan error, 2)
	// Request 1 occupies the only worker slot.
	go func() {
		_, err := c.Query(ctx, client.QueryRequest{SQL: workload.Qg2})
		done <- err
	}()
	<-entered
	// Request 2 occupies the only queue slot.
	go func() {
		_, err := c.Query(ctx, client.QueryRequest{SQL: workload.Qg2})
		done <- err
	}()
	waitFor(t, func() bool { return srv.adm.depth() == 1 })

	// Request 3 must be shed immediately with 429 + Retry-After.
	_, err := c.Query(ctx, client.QueryRequest{SQL: workload.Qg2})
	if !client.IsOverloaded(err) {
		t.Fatalf("want 429 overloaded, got %v", err)
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		if ae.Code != "overloaded" {
			t.Errorf("want code overloaded, got %q", ae.Code)
		}
		if ae.RetryAfter != 3*time.Second {
			t.Errorf("want Retry-After 3s, got %v", ae.RetryAfter)
		}
	}

	// Releasing the gate lets the held requests finish normally.
	close(release)
	released = true
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("held request %d failed: %v", i, err)
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "server_requests_shed_total 1") {
		t.Errorf("metrics should report 1 shed request:\n%s", grepLines(m, "shed"))
	}
}

func TestQueuedRequestHonorsDeadline(t *testing.T) {
	w := testWarehouse(t, 2000, 20)
	srv, c := testServer(t, Options{Warehouse: w, MaxConcurrent: 1, QueueDepth: 4})

	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.onExecute = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}

	done := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), client.QueryRequest{SQL: workload.Qg2})
		done <- err
	}()
	<-entered

	// A queued request whose deadline fires must come back 504, promptly.
	start := time.Now()
	_, err := c.Query(context.Background(), client.QueryRequest{SQL: workload.Qg2, TimeoutMS: 50})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout || ae.Code != "deadline_exceeded" {
		t.Fatalf("want 504 deadline_exceeded, got %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("queued request took %v to time out; want prompt", el)
	}
	close(release)
	<-done
}

func TestMaxQueueWaitBoundsQueueTime(t *testing.T) {
	// The execution deadline starts when the worker slot is acquired, so
	// timeout_ms alone no longer bounds queue time; MaxQueueWait must.
	// A queued request with a generous timeout behind a stuck worker has
	// to 504 after the queue-wait cap, not after its full timeout.
	w := testWarehouse(t, 2000, 20)
	srv, c := testServer(t, Options{Warehouse: w, MaxConcurrent: 1, QueueDepth: 4,
		MaxQueueWait: 50 * time.Millisecond})

	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.onExecute = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}

	done := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), client.QueryRequest{SQL: workload.Qg2})
		done <- err
	}()
	<-entered

	start := time.Now()
	_, err := c.Query(context.Background(), client.QueryRequest{SQL: workload.Qg2, TimeoutMS: 30_000})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout || ae.Code != "deadline_exceeded" {
		t.Fatalf("want 504 deadline_exceeded, got %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("queued request took %v to time out; want ~MaxQueueWait", el)
	}
	close(release)
	<-done
}

func TestDeadlineCancelsScan(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 150k-row table")
	}
	w := testWarehouse(t, 150_000, 500)
	_, c := testServer(t, Options{Warehouse: w})

	// An exact aggregation over 150k rows with a 1ms budget must fail
	// with deadline_exceeded, and must do so promptly — the scan loops
	// poll ctx, so the request cannot run to completion first.
	start := time.Now()
	_, err := c.Exact(context.Background(), client.ExactRequest{SQL: workload.Qg3, TimeoutMS: 1})
	elapsed := time.Since(start)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout || ae.Code != "deadline_exceeded" {
		t.Fatalf("want 504 deadline_exceeded, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("1ms-deadline request took %v; cancellation is not reaching the scan loops", elapsed)
	}
}

// TestMalformedSQLNever500s feeds token soup and malformed bodies
// through the real HTTP stack: every response must be a clean 4xx —
// never a 5xx, never a dropped connection.
func TestMalformedSQLNever500s(t *testing.T) {
	w := testWarehouse(t, 2000, 20)
	srv := New(Options{Warehouse: w, Logger: quietLogger()})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	vocab := []string{
		"select", "from", "where", "group", "by", "order", "having", "sum", "count",
		"avg", "(", ")", ",", "*", "lineitem", "l_quantity", "nosuchtable", "nosuchcol",
		"'str", "''", "1e999", "0x", ";", "--", "/*", "<>", "<=", "and", "or", "not",
		"join", "on", "limit", "offset", "null", ".", "..",
	}
	rng := rand.New(rand.NewSource(7))
	post := func(path, body string) int {
		resp, err := http.Post(hs.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("POST %s: transport error: %v", path, err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		sql, _ := json.Marshal(sb.String())
		for _, path := range []string{"/v1/query", "/v1/exact"} {
			if code := post(path, fmt.Sprintf(`{"sql": %s}`, sql)); code >= 500 {
				t.Fatalf("%s returned %d for sql %s", path, code, sql)
			}
		}
	}

	// Malformed bodies (not even JSON) and wrong shapes.
	for _, body := range []string{"", "{", `"just a string"`, `{"sql": 42}`, `{"estimate": []}`, strings.Repeat("[", 1000)} {
		for _, path := range []string{"/v1/query", "/v1/exact", "/v1/insert"} {
			if code := post(path, body); code >= 500 || code < 400 {
				t.Errorf("%s with body %.20q: got %d, want 4xx", path, body, code)
			}
		}
	}

	// And the server is still healthy afterwards.
	if err := client.New(hs.URL).Health(context.Background()); err != nil {
		t.Fatalf("server unhealthy after fuzzing: %v", err)
	}
}

func TestErrorMapping(t *testing.T) {
	w := testWarehouse(t, 2000, 20)
	// A second table with no synopsis, to hit the no_synopsis path.
	if _, err := w.CreateTable("plain", congress.Col("x", congress.Int)); err != nil {
		t.Fatal(err)
	}
	_, c := testServer(t, Options{Warehouse: w})
	ctx := context.Background()

	cases := []struct {
		name   string
		do     func() error
		status int
		code   string
	}{
		{"approx on synopsis-less table", func() error {
			_, err := c.Query(ctx, client.QueryRequest{SQL: "select sum(x) from plain"})
			return err
		}, http.StatusNotFound, "no_synopsis"},
		{"exact on unknown table", func() error {
			_, err := c.Exact(ctx, client.ExactRequest{SQL: "select sum(x) from nosuch"})
			return err
		}, http.StatusNotFound, "unknown_table"},
		{"insert into unknown table", func() error {
			_, err := c.Insert(ctx, client.InsertRequest{Table: "nosuch", Rows: [][]any{{1}}})
			return err
		}, http.StatusNotFound, "unknown_table"},
		{"estimate on unknown table", func() error {
			_, err := c.Query(ctx, client.QueryRequest{Estimate: &client.EstimateRequest{
				Table: "nosuch", Agg: "sum", Column: "x"}})
			return err
		}, http.StatusNotFound, "no_synopsis"},
		{"bad rewrite name", func() error {
			_, err := c.Query(ctx, client.QueryRequest{SQL: workload.Qg2, Rewrite: "bogus"})
			return err
		}, http.StatusBadRequest, "bad_query"},
		{"bad aggregate name", func() error {
			_, err := c.Query(ctx, client.QueryRequest{Estimate: &client.EstimateRequest{
				Table: "lineitem", Agg: "median", Column: "l_quantity"}})
			return err
		}, http.StatusBadRequest, "bad_query"},
		{"sql and estimate together", func() error {
			_, err := c.Query(ctx, client.QueryRequest{SQL: workload.Qg2,
				Estimate: &client.EstimateRequest{Table: "lineitem", Agg: "sum", Column: "l_quantity"}})
			return err
		}, http.StatusBadRequest, "bad_query"},
		{"arity mismatch insert", func() error {
			_, err := c.Insert(ctx, client.InsertRequest{Table: "lineitem", Rows: [][]any{{1, 2}}})
			return err
		}, http.StatusBadRequest, "bad_request"},
		{"type mismatch insert", func() error {
			_, err := c.Insert(ctx, client.InsertRequest{Table: "plain", Rows: [][]any{{"notanint"}}})
			return err
		}, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.do()
			var ae *client.APIError
			if !errors.As(err, &ae) {
				t.Fatalf("want *client.APIError, got %v", err)
			}
			if ae.Status != tc.status || ae.Code != tc.code {
				t.Errorf("got %d/%s, want %d/%s (%s)", ae.Status, ae.Code, tc.status, tc.code, ae.Message)
			}
		})
	}
}

func TestSynopsesDeterministic(t *testing.T) {
	w := testWarehouse(t, 2000, 20)
	srv, _ := testServer(t, Options{Warehouse: w})
	get := func() string {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/synopses?allocation=1", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/synopses: %d", rec.Code)
		}
		return rec.Body.String()
	}
	first := get()
	for i := 0; i < 5; i++ {
		if got := get(); got != first {
			t.Fatalf("synopsis listing not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	var resp client.SynopsesResponse
	if err := json.Unmarshal([]byte(first), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Synopses) != 1 || resp.Synopses[0].Table != "lineitem" {
		t.Fatalf("unexpected listing: %+v", resp.Synopses)
	}
	if len(resp.Synopses[0].Allocation) == 0 {
		t.Error("allocation=1 should include the allocation table")
	}
}

func TestInsertThenRefreshVisible(t *testing.T) {
	w := testWarehouse(t, 2000, 20)
	_, c := testServer(t, Options{Warehouse: w})
	ctx := context.Background()

	rows := make([][]any, 50)
	for i := range rows {
		rows[i] = []any{int64(9_000_000 + i), 0, 0, "1995-01-01", 3.0, 42.0}
	}
	res, err := c.Insert(ctx, client.InsertRequest{Table: "lineitem", Rows: rows, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 50 || !res.Refreshed {
		t.Fatalf("unexpected insert response: %+v", res)
	}
	after, err := c.Synopses(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].PendingInserts != 0 {
		t.Errorf("refresh should drain pending inserts, got %d", after[0].PendingInserts)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
