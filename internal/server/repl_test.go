package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	congress "github.com/approxdb/congress"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/repl"
	"github.com/approxdb/congress/internal/tpcd"
	"github.com/approxdb/congress/pkg/client"
)

// durableWarehouse builds a small persistent warehouse whose newest
// snapshot (forced here) carries the table and synopsis, so a follower
// can bootstrap from it.
func durableWarehouse(t *testing.T, rows, groups int) *congress.Warehouse {
	t.Helper()
	w, _, err := congress.OpenDir(t.TempDir(), congress.PersistOptions{
		SnapshotInterval: -1,
		SnapshotEvery:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	rel, err := tpcd.Generate(tpcd.Params{TableSize: rows, NumGroups: groups, GroupSkew: 0.86, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w.AttachRelation(rel)
	if err := w.BuildSynopsis(congress.SynopsisSpec{
		Table:   "lineitem",
		GroupBy: tpcd.GroupingAttrs,
		Space:   rows / 10,
		Seed:    1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.TriggerSnapshot(); err != nil {
		t.Fatal(err)
	}
	return w
}

// attachTestRelation builds an in-memory relation row by row and
// attaches it to w — a WAL-logged mutation when w is persistent.
func attachTestRelation(t *testing.T, w *congress.Warehouse, name string, cols []engine.Column, fill func(add func(...congress.Value))) {
	t.Helper()
	schema, err := engine.NewSchema(cols...)
	if err != nil {
		t.Fatal(err)
	}
	rel := engine.NewRelation(name, schema)
	fill(func(vals ...congress.Value) {
		if err := rel.Insert(engine.Row(vals)); err != nil {
			t.Fatal(err)
		}
	})
	if _, err := w.AttachRelation(rel); err != nil {
		t.Fatal(err)
	}
}

func estimateReq() client.QueryRequest {
	return client.QueryRequest{
		Estimate: &client.EstimateRequest{
			Table:   "lineitem",
			GroupBy: []string{"l_returnflag", "l_linestatus"},
			Agg:     "sum",
			Column:  "l_quantity",
		},
		NoCache: true,
	}
}

func TestReplStatusStandalone(t *testing.T) {
	w := testWarehouse(t, 2000, 20)
	_, c := testServer(t, Options{Warehouse: w})
	st, err := c.ReplStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "standalone" {
		t.Fatalf("role = %q, want standalone", st.Role)
	}
}

func TestReplLeaderFollowerEndToEnd(t *testing.T) {
	ctx := context.Background()
	w := durableWarehouse(t, 3000, 30)
	leader := repl.NewLeader(w.PersistManager(), repl.LeaderOptions{Logger: quietLogger()})
	_, lc := testServer(t, Options{Warehouse: w, ReplLeader: leader})

	fw := congress.Open()
	f, err := repl.NewFollower(repl.FollowerOptions{
		Leader:     lc.BaseURL(),
		Dir:        t.TempDir(),
		Target:     fw,
		WaitMS:     50,
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	_, fc := testServer(t, Options{Warehouse: fw, Follower: f})

	// Roles on /v1/repl/status.
	if st, err := lc.ReplStatus(ctx); err != nil || st.Role != "leader" {
		t.Fatalf("leader status %+v err=%v", st, err)
	}
	if st, err := fc.ReplStatus(ctx); err != nil || st.Role != "follower" {
		t.Fatalf("follower status %+v err=%v", st, err)
	}

	// Writes through the leader replicate; the follower reports caught up.
	if _, err := lc.Insert(ctx, client.InsertRequest{
		Table: "lineitem",
		Rows:  [][]any{{int64(9_000_001), 1, 0, "1994-06-15", 7.0, 1200.0}},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := fc.ReplStatus(ctx)
		if err == nil && st.CaughtUp && st.LagRecords == 0 && st.RecordsApplied >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v err=%v", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// With zero lag the follower's estimates match the leader's exactly.
	lresp, err := lc.Query(ctx, estimateReq())
	if err != nil {
		t.Fatal(err)
	}
	fresp, err := fc.Query(ctx, estimateReq())
	if err != nil {
		t.Fatal(err)
	}
	if len(lresp.Groups) == 0 || len(lresp.Groups) != len(fresp.Groups) {
		t.Fatalf("group counts differ: leader %d follower %d", len(lresp.Groups), len(fresp.Groups))
	}
	for i := range lresp.Groups {
		if math.Abs(lresp.Groups[i].Value-fresp.Groups[i].Value) > 1e-9 {
			t.Fatalf("group %v: leader %v follower %v", lresp.Groups[i].Group, lresp.Groups[i].Value, fresp.Groups[i].Value)
		}
	}

	// Writes to the follower are rejected with 503 and a Leader hint.
	body, _ := json.Marshal(client.InsertRequest{
		Table: "lineitem",
		Rows:  [][]any{{int64(9_000_002), 1, 0, "1994-06-15", 7.0, 1200.0}},
	})
	resp, err := http.Post(fc.BaseURL()+"/v1/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower insert returned %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Leader"); got != lc.BaseURL() {
		t.Fatalf("Leader header %q, want %q", got, lc.BaseURL())
	}
	if _, err := fc.Insert(ctx, client.InsertRequest{Table: "lineitem", Rows: [][]any{{int64(1), 1, 0, "1994-06-15", 1.0, 1.0}}}); err == nil {
		t.Fatal("client insert on follower succeeded")
	} else {
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Code != "read_only_follower" {
			t.Fatalf("unexpected error: %v", err)
		}
	}

	// Both sides expose repl_* and persist_* metrics.
	for _, tc := range []struct {
		c    *client.Client
		want []string
	}{
		{lc, []string{`repl_role{role="leader"} 1`, "repl_follower_lag_records{", "persist_generation", "persist_wal_record_seq"}},
		{fc, []string{`repl_role{role="follower"} 1`, "repl_follower_lag_records 0", "repl_segments_shipped_total", "repl_reconnects_total"}},
	} {
		resp, err := http.Get(tc.c.BaseURL() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, want := range tc.want {
			if !strings.Contains(string(raw), want) {
				t.Errorf("metrics from %s missing %q", tc.c.BaseURL(), want)
			}
		}
	}

	// Post-bootstrap DDL must ship through the WAL with no stale window:
	// AttachRelation and BuildJoinSynopsis are logged records, so a live
	// follower sees the new tables and the join synopsis without waiting
	// for (or re-fetching) a snapshot.
	attachTestRelation(t, w, "regions",
		[]engine.Column{congress.Col("r_id", congress.Int), congress.Col("zone", congress.String)},
		func(add func(...congress.Value)) {
			add(congress.I(1), congress.Str("north"))
			add(congress.I(2), congress.Str("south"))
		})
	attachTestRelation(t, w, "events",
		[]engine.Column{congress.Col("e_id", congress.Int), congress.Col("r", congress.Int), congress.Col("v", congress.Float)},
		func(add func(...congress.Value)) {
			rng := congress.NewRand(3)
			for i := 0; i < 4000; i++ {
				r := int64(1)
				if rng.Intn(10) == 0 {
					r = 2
				}
				add(congress.I(int64(i)), congress.I(r), congress.F(rng.Float64()*10))
			}
		})
	if err := w.BuildJoinSynopsis(
		congress.JoinSpec{Name: "events_wide", Fact: "events",
			Dims: []congress.DimJoin{{Table: "regions", FactKey: "r", DimKey: "r_id"}}},
		congress.SynopsisSpec{GroupBy: []string{"zone"}, Space: 400, Seed: 6},
	); err != nil {
		t.Fatal(err)
	}
	// CaughtUp alone can be a stale pre-DDL reading, so also require the
	// shipped DDL to be visible: the attached table queryable and the
	// join synopsis answering. The leader is quiescent, so once both hold
	// with zero lag the two warehouses are identical.
	ddlVisible := func() bool {
		res, err := fw.Query(`select count(*) from events`)
		if err != nil {
			return false
		}
		if n, _ := res.Rows[0][0].AsFloat(); n != 4000 {
			return false
		}
		_, err = fw.Approx(`select zone, count(*) from events_wide group by zone`)
		return err == nil
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		st, err := fc.ReplStatus(ctx)
		if err == nil && st.CaughtUp && st.LagRecords == 0 && ddlVisible() {
			break
		}
		if time.Now().After(deadline) {
			raw, _ := http.Get(fc.BaseURL() + "/v1/repl/status")
			var buf bytes.Buffer
			io.Copy(&buf, raw.Body)
			raw.Body.Close()
			t.Fatalf("follower never caught up after attach+join records: %+v err=%v raw=%s", st, err, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if res, err := fw.Query(`select count(*) from events`); err != nil {
		t.Fatalf("follower missing attached relation: %v", err)
	} else if n, _ := res.Rows[0][0].AsFloat(); n != 4000 {
		t.Fatalf("follower events count %v, want 4000", n)
	}
	lJoin, err := w.Approx(`select zone, count(*) from events_wide group by zone order by zone`)
	if err != nil {
		t.Fatal(err)
	}
	fJoin, err := fw.Approx(`select zone, count(*) from events_wide group by zone order by zone`)
	if err != nil {
		t.Fatalf("follower missing join synopsis: %v", err)
	}
	if len(lJoin.Rows) != 2 || len(fJoin.Rows) != len(lJoin.Rows) {
		t.Fatalf("join zones: leader %d follower %d, want 2", len(lJoin.Rows), len(fJoin.Rows))
	}
	for i := range lJoin.Rows {
		lv, _ := lJoin.Rows[i][1].AsFloat()
		fv, _ := fJoin.Rows[i][1].AsFloat()
		// The replayed build is deterministic (same seed, same shipped
		// rows), so the follower's join-synopsis estimates match exactly.
		if math.Abs(lv-fv) > 1e-9 {
			t.Fatalf("zone %v: leader %v follower %v", lJoin.Rows[i][0], lv, fv)
		}
	}

	// /healthz reports the role and follower lag fields.
	resp, err = http.Get(fc.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["role"] != "follower" {
		t.Fatalf("healthz role %v, want follower", hz["role"])
	}
	if _, ok := hz["lag_records"]; !ok {
		t.Fatalf("healthz missing lag_records: %v", hz)
	}
}
