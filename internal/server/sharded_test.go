package server

import (
	"context"
	"strings"
	"testing"

	congress "github.com/approxdb/congress"
	"github.com/approxdb/congress/internal/tpcd"
	"github.com/approxdb/congress/pkg/client"
)

// testShardedWarehouse builds a K-shard lineitem warehouse with a
// congressional synopsis partitioned across the shards.
func testShardedWarehouse(t testing.TB, shards, rows, groups int) *congress.ShardedWarehouse {
	t.Helper()
	rel, err := tpcd.Generate(tpcd.Params{TableSize: rows, NumGroups: groups, GroupSkew: 0.86, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := congress.OpenSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.AttachRelation(rel, tpcd.GroupingAttrs); err != nil {
		t.Fatal(err)
	}
	if err := sw.BuildSynopsis(congress.SynopsisSpec{
		Table:   "lineitem",
		GroupBy: tpcd.GroupingAttrs,
		Space:   rows / 10,
		Seed:    1,
	}); err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestShardedServerEstimateFlow(t *testing.T) {
	sw := testShardedWarehouse(t, 4, 5000, 27)
	_, c := testServer(t, Options{Sharded: sw})
	ctx := context.Background()

	// Default mode: every shard's exact datacube covers the request, so
	// the merged answer is hybrid-exact — zero-width bounds, no sampled
	// rows behind any group.
	res, err := c.Query(ctx, client.QueryRequest{Estimate: &client.EstimateRequest{
		Table: "lineitem", GroupBy: []string{"l_returnflag"},
		Agg: "avg", Column: "l_quantity", Confidence: 0.95,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("sharded estimate returned no groups")
	}
	for _, g := range res.Groups {
		if len(g.Group) != 1 {
			t.Errorf("group key %v, want one rendered value", g.Group)
		}
		if g.Bound != 0 || g.SampleN != 0 {
			t.Errorf("hybrid group %v: bound %v sample_n %d, want exact (0, 0)", g.Group, g.Bound, g.SampleN)
		}
	}
	// Sharded estimates always bypass the result cache.
	if res.Cache != "bypass" {
		t.Errorf("cache status %q, want bypass", res.Cache)
	}

	// no_hybrid forces the pure-sample estimator on every shard.
	res, err = c.Query(ctx, client.QueryRequest{
		NoHybrid: true,
		Estimate: &client.EstimateRequest{
			Table: "lineitem", GroupBy: []string{"l_returnflag"},
			Agg: "avg", Column: "l_quantity", Confidence: 0.95,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("pure-sample sharded estimate returned no groups")
	}
	for _, g := range res.Groups {
		if !(g.Bound >= 0) || g.SampleN <= 0 {
			t.Errorf("pure-sample group %v: bound %v sample_n %d", g.Group, g.Bound, g.SampleN)
		}
	}
}

func TestShardedServerRejectsSQLPaths(t *testing.T) {
	sw := testShardedWarehouse(t, 2, 1000, 27)
	_, c := testServer(t, Options{Sharded: sw})
	ctx := context.Background()

	if _, err := c.Query(ctx, client.QueryRequest{SQL: "select count(*) from lineitem"}); err == nil {
		t.Error("approximate SQL accepted in sharded mode")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.Code != "bad_query" {
		t.Errorf("approx SQL error = %v, want bad_query", err)
	}
	if _, err := c.Exact(ctx, client.ExactRequest{SQL: "select count(*) from lineitem"}); err == nil {
		t.Error("/v1/exact accepted in sharded mode")
	}
	if _, err := c.Snapshot(ctx); err == nil {
		t.Error("/v1/snapshot accepted in sharded mode")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.Code != "not_persistent" {
		t.Errorf("snapshot error = %v, want not_persistent", err)
	}
}

func TestShardedServerInsertRefreshSynopsesMetrics(t *testing.T) {
	sw := testShardedWarehouse(t, 4, 2000, 27)
	_, c := testServer(t, Options{Sharded: sw})
	ctx := context.Background()

	ins, err := c.Insert(ctx, client.InsertRequest{
		Table: "lineitem",
		Rows: [][]any{
			{int64(9_000_001), 0, 0, "1994-06-15", 7.0, 1200.0},
			{int64(9_000_002), 1, 1, "1994-07-15", 9.0, 1800.0},
		},
		Refresh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ins.Inserted != 2 || !ins.Refreshed {
		t.Fatalf("insert response %+v", ins)
	}

	infos, err := c.Synopses(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("synopses: %+v", infos)
	}
	si := infos[0]
	if si.Table != "lineitem" || si.Shards < 1 || si.Shards > 4 {
		t.Errorf("synopsis info %+v", si)
	}
	if si.SampleSize == 0 || len(si.Allocation) == 0 {
		t.Errorf("merged synopsis listing empty: %+v", si)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"congress_shard_count 4",
		"congress_shard_inserts_total",
		"congress_estimate_total",
		"server_requests_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestServerRequiresExactlyOneBackend(t *testing.T) {
	for _, opts := range []Options{{}, {Warehouse: congress.Open(), Sharded: mustSharded(t)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", opts)
				}
			}()
			New(opts)
		}()
	}
}

func mustSharded(t *testing.T) *congress.ShardedWarehouse {
	t.Helper()
	sw, err := congress.OpenSharded(2)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}
