// Package server is congressd's HTTP/JSON query service over an Aqua
// warehouse: approximate answers from precomputed congressional
// synopses served over the network with per-request deadlines, admission
// control with bounded queueing and load shedding, structured request
// logging, panic recovery, operational metrics, and graceful shutdown.
//
// Endpoints:
//
//	POST /v1/query     approximate answer (SQL rewrite or direct estimate)
//	POST /v1/exact     exact answer against the base tables
//	POST /v1/insert    feed rows to a table and its synopsis maintainer
//	POST /v1/estimate/partials  mergeable per-group partials (the
//	                   distributed scatter-gather leg)
//	POST /v1/snapshot  write a durable snapshot now (persistent servers)
//	GET  /v1/synopses  list registered synopses (+allocation tables)
//	GET  /v1/repl/...  replication: status always; manifest/snapshot/wal
//	                   shipping when the server is a leader
//	GET  /metrics      congress_* telemetry + server_* histograms
//	GET  /healthz      liveness probe (+ replication role and lag)
//
// A server wired with Options.Follower serves reads only: /v1/insert
// and /v1/snapshot answer 503 with a Leader header pointing writers at
// the leader.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	congress "github.com/approxdb/congress"
	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/estimate"
	"github.com/approxdb/congress/internal/repl"
	"github.com/approxdb/congress/pkg/client"
)

// Options configures a Server. The zero value of every field has a
// sensible default.
type Options struct {
	// Warehouse is the warehouse to serve. Exactly one of Warehouse and
	// Sharded must be set.
	Warehouse *congress.Warehouse
	// Sharded serves a sharded warehouse instead: estimates scatter-
	// gather across in-process shards. The SQL paths (/v1/exact and
	// sql-form /v1/query) are not available in sharded mode, and
	// /v1/snapshot reports not_persistent (the in-process shards hold no
	// data directories of their own).
	Sharded *congress.ShardedWarehouse
	// Coordinator serves a distributed deployment: each shard is its own
	// congressd process and estimates scatter-gather over HTTP via
	// /v1/estimate/partials. Like sharded mode, the SQL paths are
	// unavailable; snapshots belong to the individual shard processes.
	// Exactly one of Warehouse, Sharded and Coordinator must be set.
	Coordinator *congress.Coordinator
	// Logger receives structured request and lifecycle logs; defaults to
	// slog.Default().
	Logger *slog.Logger
	// MaxConcurrent bounds requests executing simultaneously (the worker
	// semaphore). Default 4×GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a worker slot; beyond it
	// requests are shed with 429. Default 4×MaxConcurrent.
	QueueDepth int
	// DefaultTimeout applies when a request carries no timeout_ms.
	// Default 10s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts. Default 60s.
	MaxTimeout time.Duration
	// MaxQueueWait caps how long a request may wait in the admission
	// queue for a worker slot; the wait window is the smaller of the
	// request's timeout and this cap. The execution deadline (timeout_ms)
	// starts only once the slot is acquired, so a request's end-to-end
	// time can reach min(timeout, MaxQueueWait) + timeout. Tighten this
	// to bound total latency for clients that treat timeout_ms as an
	// end-to-end budget. Default MaxTimeout (the wait window is then just
	// the request timeout).
	MaxQueueWait time.Duration
	// RetryAfter is the backoff hint attached to 429 responses. Default 1s.
	RetryAfter time.Duration
	// ReplLeader, when set, mounts the replication shipping API
	// (/v1/repl/manifest, /v1/repl/snapshot/{gen}, /v1/repl/wal/{gen})
	// so followers can tail this server's data directory.
	ReplLeader *repl.Leader
	// Follower, when set, marks this server a read-only replication
	// follower: writes answer 503 with a Leader hint, and /healthz,
	// /metrics, and /v1/repl/status report replication lag. Requires
	// Warehouse (followers replay into a single warehouse).
	Follower *repl.Follower
}

func (o *Options) withDefaults() {
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 4 * o.MaxConcurrent
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 10 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 60 * time.Second
	}
	if o.MaxQueueWait <= 0 {
		o.MaxQueueWait = o.MaxTimeout
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
}

// Server serves one warehouse over HTTP. Create with New, start with
// Start (or mount Handler on your own listener), stop with Shutdown.
type Server struct {
	w    *congress.Warehouse        // nil in sharded/coordinator modes
	sw   *congress.ShardedWarehouse // nil except in in-process sharded mode
	co   *congress.Coordinator      // nil except in distributed mode
	opts Options
	log  *slog.Logger
	adm  *admission
	met  *serverMetrics
	mux  *http.ServeMux
	http *http.Server

	reqID atomic.Int64

	// onExecute, when set, runs inside query-path handlers after
	// admission but before execution. Tests use it to hold worker slots
	// open deterministically.
	onExecute func()
}

// New builds a Server over the warehouse. It panics unless exactly one
// of opts.Warehouse, opts.Sharded and opts.Coordinator is set (a
// programming error, not a runtime condition).
func New(opts Options) *Server {
	backends := 0
	for _, set := range []bool{opts.Warehouse != nil, opts.Sharded != nil, opts.Coordinator != nil} {
		if set {
			backends++
		}
	}
	if backends != 1 {
		panic("server: exactly one of Options.Warehouse, Options.Sharded and Options.Coordinator is required")
	}
	if opts.Follower != nil && opts.Warehouse == nil {
		panic("server: Options.Follower requires Options.Warehouse")
	}
	if opts.Follower != nil && opts.ReplLeader != nil {
		panic("server: a server cannot be both replication leader and follower")
	}
	opts.withDefaults()
	s := &Server{
		w:    opts.Warehouse,
		sw:   opts.Sharded,
		co:   opts.Coordinator,
		opts: opts,
		log:  opts.Logger,
		adm:  newAdmission(opts.MaxConcurrent, opts.QueueDepth),
		met:  newServerMetrics(),
		mux:  http.NewServeMux(),
	}
	s.mux.Handle("POST /v1/query", s.instrument("query", s.handleQuery))
	s.mux.Handle("POST /v1/exact", s.instrument("exact", s.handleExact))
	s.mux.Handle("POST /v1/insert", s.instrument("insert", s.handleInsert))
	s.mux.Handle("POST /v1/estimate/partials", s.instrument("partials", s.handlePartials))
	s.mux.Handle("POST /v1/snapshot", s.instrument("snapshot", s.handleSnapshot))
	s.mux.Handle("GET /v1/synopses", s.instrument("synopses", s.handleSynopses))
	s.mux.Handle("GET /v1/repl/status", s.instrument("repl_status", s.handleReplStatus))
	if opts.ReplLeader != nil {
		s.mux.Handle("GET /v1/repl/manifest", s.instrument("repl", opts.ReplLeader.HandleManifest))
		s.mux.Handle("GET /v1/repl/snapshot/{gen}", s.instrument("repl", opts.ReplLeader.HandleSnapshot))
		s.mux.Handle("GET /v1/repl/wal/{gen}", s.instrument("repl", opts.ReplLeader.HandleWAL))
	}
	s.mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.http = &http.Server{Handler: s.mux}
	return s
}

// Handler returns the fully wired HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. ":8642", "127.0.0.1:0") and serves in a
// background goroutine, returning the bound address. Serve errors other
// than http.ErrServerClosed are logged.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.log.Error("serve failed", slog.String("err", err.Error()))
		}
	}()
	s.log.Info("congressd listening", slog.String("addr", ln.Addr().String()),
		slog.Int("max_concurrent", s.opts.MaxConcurrent), slog.Int("queue_depth", s.opts.QueueDepth))
	return ln.Addr().String(), nil
}

// Shutdown gracefully stops the server: it stops accepting new
// connections, waits (up to ctx's deadline) for in-flight requests to
// drain, then flushes a final metrics snapshot to the structured log.
func (s *Server) Shutdown(ctx context.Context) error {
	s.log.Info("congressd shutting down, draining in-flight requests")
	err := s.http.Shutdown(ctx)
	m := s.warehouseMetrics()
	lat := s.met.all.Snapshot()
	s.log.Info("final metrics",
		slog.Int64("answers_served", m.Answer.Count),
		slog.Int64("estimates_served", m.Estimate.Count),
		slog.Int64("maintainer_inserts", m.MaintainerInserts),
		slog.Int64("requests_total", lat.Count),
		slog.Int64("requests_shed", s.met.shed.Load()),
		slog.Int64("panics_recovered", s.met.panics.Load()),
		slog.Duration("latency_p50", lat.Quantile(0.5)),
		slog.Duration("latency_p95", lat.Quantile(0.95)),
		slog.Duration("latency_p99", lat.Quantile(0.99)),
	)
	return err
}

// effectiveTimeout resolves a request's deadline: its timeout_ms
// (clamped to MaxTimeout) or DefaultTimeout.
func (s *Server) effectiveTimeout(timeoutMS int64) time.Duration {
	d := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.opts.MaxTimeout {
			d = s.opts.MaxTimeout
		}
	}
	return d
}

// requestCtx derives the execution context for one request: the client
// disconnect is inherited from r, and the deadline is effectiveTimeout.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.effectiveTimeout(timeoutMS))
}

// statusWriter captures the status code and byte count for logging and
// metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// instrument wraps a handler with panic recovery, in-flight accounting,
// latency observation, and one structured log line per request.
func (s *Server) instrument(route string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-Id", fmt.Sprint(id))
		start := time.Now()
		s.met.inFlight.Add(1)
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				s.log.Error("panic recovered",
					slog.Int64("request_id", id),
					slog.String("route", route),
					slog.Any("panic", p),
					slog.String("stack", string(debug.Stack())),
				)
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal", "internal server error")
				}
			}
			dur := time.Since(start)
			s.met.inFlight.Add(-1)
			s.met.observe(route, sw.status, dur)
			lvl := slog.LevelInfo
			if sw.status >= 500 {
				lvl = slog.LevelError
			}
			s.log.LogAttrs(r.Context(), lvl, "request",
				slog.Int64("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int("bytes", sw.bytes),
				slog.String("remote", r.RemoteAddr),
				slog.Duration("duration", dur),
			)
		}()
		h(sw, r)
	})
}

// admit runs the admission gate, writing the 429/timeout response itself
// when the request cannot proceed. Callers must invoke release() (when
// ok) after finishing their work.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) (release func(), ok bool) {
	release, err := s.adm.acquire(ctx)
	if err == nil {
		return release, true
	}
	if errors.Is(err, errSaturated) {
		s.met.shed.Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(int(s.opts.RetryAfter.Seconds())))
		writeError(w, http.StatusTooManyRequests, "overloaded", "server overloaded, retry later")
		return nil, false
	}
	s.writeMappedError(w, err, http.StatusServiceUnavailable, "internal")
	return nil, false
}

// admitWithDeadline runs the admission gate under its own wait window —
// min(the request's timeout, MaxQueueWait) — and only then starts the
// engine deadline, so time spent queued behind busy workers is not
// double-counted against the request's timeout: a queued request with a
// generous timeout used to 504 spuriously under burst because one window
// covered both the wait and the work. The flip side is that end-to-end
// time can exceed the client's timeout_ms by the queue wait; clients
// needing a hard wall-clock bound should set a transport timeout, and
// operators can tighten MaxQueueWait (see Options). The returned context
// carries a fresh full deadline; its cancel also releases the worker
// slot. ok=false means the response was written.
func (s *Server) admitWithDeadline(w http.ResponseWriter, r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc, bool) {
	wait := s.effectiveTimeout(timeoutMS)
	if wait > s.opts.MaxQueueWait {
		wait = s.opts.MaxQueueWait
	}
	waitCtx, waitCancel := context.WithTimeout(r.Context(), wait)
	release, ok := s.admit(waitCtx, w)
	waitCancel()
	if !ok {
		return nil, nil, false
	}
	ctx, cancel := s.requestCtx(r, timeoutMS)
	return ctx, func() {
		cancel()
		release()
	}, true
}

// ----- backend dispatch -----
//
// The server fronts a single warehouse, an in-process sharded one, or a
// distributed coordinator. The direct-estimation, partials, insert,
// synopsis and metrics paths work against all three through these
// helpers; the SQL paths are single-warehouse only (neither sharded
// backend holds merged base relations to execute against).

// tableHandle is the insert surface every backend's table handle shares.
type tableHandle interface {
	Columns() []engine.Column
	Insert(vals ...congress.Value) error
}

// batchTableHandle is the optional bulk-insert surface: the coordinator
// implements it to route a whole request's rows with one HTTP insert
// per shard instead of one per row.
type batchTableHandle interface {
	InsertBatch(ctx context.Context, rows []congress.Row) (int, error)
}

func (s *Server) lookupTable(name string) (tableHandle, error) {
	switch {
	case s.co != nil:
		return s.co.Table(name)
	case s.sw != nil:
		return s.sw.Table(name)
	default:
		return s.w.Table(name)
	}
}

func (s *Server) estimateQuery(ctx context.Context, e *client.EstimateRequest, agg estimate.Aggregate, opts congress.ApproxOptions) ([]estimate.GroupEstimate, congress.CacheStatus, error) {
	switch {
	case s.co != nil:
		return s.co.EstimateQueryOpts(ctx, e.Table, e.GroupBy, agg, e.Column, e.Confidence, opts)
	case s.sw != nil:
		return s.sw.EstimateQueryOpts(ctx, e.Table, e.GroupBy, agg, e.Column, e.Confidence, opts)
	default:
		return s.w.EstimateQueryOpts(ctx, e.Table, e.GroupBy, agg, e.Column, e.Confidence, opts)
	}
}

func (s *Server) estimatePartials(ctx context.Context, table string, groupBy []string, aggCol string, opts congress.PartialsOptions) ([]estimate.GroupPartial, error) {
	switch {
	case s.co != nil:
		return s.co.EstimatePartialsOpts(ctx, table, groupBy, aggCol, opts)
	case s.sw != nil:
		return s.sw.EstimatePartialsOpts(ctx, table, groupBy, aggCol, opts)
	default:
		return s.w.EstimatePartialsOpts(ctx, table, groupBy, aggCol, opts)
	}
}

func (s *Server) refreshSynopsis(table string) error {
	switch {
	case s.co != nil:
		return s.co.RefreshSynopsis(table)
	case s.sw != nil:
		return s.sw.RefreshSynopsis(table)
	default:
		return s.w.RefreshSynopsis(table)
	}
}

func (s *Server) synopses() []congress.SynopsisInfo {
	switch {
	case s.co != nil:
		return s.co.Synopses()
	case s.sw != nil:
		return s.sw.Synopses()
	default:
		return s.w.Synopses()
	}
}

func (s *Server) allocationTable(table string) ([]congress.AllocationRow, error) {
	switch {
	case s.co != nil:
		return s.co.AllocationTable(table)
	case s.sw != nil:
		return s.sw.AllocationTable(table)
	default:
		return s.w.AllocationTable(table)
	}
}

func (s *Server) warehouseMetrics() congress.MetricsSnapshot {
	switch {
	case s.co != nil:
		// The coordinator holds no warehouse of its own; engine telemetry
		// lives on the shard processes. Its own snapshot carries only the
		// coordinator-level counters (hybrid residual composition).
		return s.co.Metrics()
	case s.sw != nil:
		return s.sw.Metrics()
	default:
		return s.w.Metrics()
	}
}

// ----- handlers -----

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req client.QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if (req.SQL == "") == (req.Estimate == nil) {
		writeError(w, http.StatusBadRequest, "bad_query", "exactly one of sql or estimate must be set")
		return
	}
	ctx, cancel, ok := s.admitWithDeadline(w, r, req.TimeoutMS)
	if !ok {
		return
	}
	defer cancel()
	if s.onExecute != nil {
		s.onExecute()
	}

	start := time.Now()
	resp := client.QueryResponse{}
	status := congress.CacheBypass
	if req.Estimate != nil {
		e := req.Estimate
		agg, err := parseAggregate(e.Agg)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_query", err.Error())
			return
		}
		var ests []estimate.GroupEstimate
		ests, status, err = s.estimateQuery(ctx, e, agg,
			congress.ApproxOptions{NoCache: req.NoCache, NoHybrid: req.NoHybrid})
		if err != nil {
			s.writeMappedError(w, err, http.StatusBadRequest, "bad_query")
			return
		}
		resp.Groups = make([]client.GroupEstimate, len(ests))
		for i, g := range ests {
			resp.Groups[i] = client.GroupEstimate{
				Group:   congress.SplitEstimateKey(g.Key),
				Value:   g.Value,
				Bound:   g.Bound,
				SampleN: g.SampleN,
			}
		}
	} else {
		if s.w == nil {
			writeError(w, http.StatusBadRequest, "bad_query",
				"sharded mode answers estimate requests only; SQL queries need a single warehouse")
			return
		}
		opts := congress.ApproxOptions{NoCache: req.NoCache}
		var err error
		if req.Rewrite != "" {
			if opts.Rewrite, err = congress.ParseRewriteStrategy(req.Rewrite); err != nil {
				s.writeMappedError(w, err, http.StatusBadRequest, "bad_query")
				return
			}
			opts.UseRewrite = true
		}
		var res *congress.Result
		res, status, err = s.w.ApproxQuery(ctx, req.SQL, opts)
		if err != nil {
			s.writeMappedError(w, err, http.StatusBadRequest, "bad_query")
			return
		}
		resp.Columns, resp.Rows = resultToWire(res)
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	resp.Cache = status.String()
	w.Header().Set(client.CacheHeader, status.String())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExact(w http.ResponseWriter, r *http.Request) {
	var req client.ExactRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "sql is required")
		return
	}
	if s.w == nil {
		writeError(w, http.StatusBadRequest, "bad_query",
			"sharded mode has no merged base tables; /v1/exact needs a single warehouse")
		return
	}
	ctx, cancel, ok := s.admitWithDeadline(w, r, req.TimeoutMS)
	if !ok {
		return
	}
	defer cancel()
	if s.onExecute != nil {
		s.onExecute()
	}

	start := time.Now()
	res, err := s.w.QueryCtx(ctx, req.SQL)
	if err != nil {
		s.writeMappedError(w, err, http.StatusBadRequest, "bad_query")
		return
	}
	var resp client.QueryResponse
	resp.Columns, resp.Rows = resultToWire(res)
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

// rejectOnFollower answers writes with 503 + a Leader hint on follower
// servers. 503 (not 4xx) because the request is valid — this replica
// just cannot take it; clients fail over or follow the hint.
func (s *Server) rejectOnFollower(w http.ResponseWriter) bool {
	if s.opts.Follower == nil {
		return false
	}
	w.Header().Set("Leader", s.opts.Follower.Leader())
	writeError(w, http.StatusServiceUnavailable, "read_only_follower",
		"this congressd is a replication follower; send writes to the leader (see the Leader header)")
	return true
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	var req client.InsertRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// Empty rows with refresh=true is a pure refresh request — the form a
	// coordinator fans out to re-materialize every shard's sample.
	if req.Table == "" || (len(req.Rows) == 0 && !req.Refresh) {
		writeError(w, http.StatusBadRequest, "bad_request", "table and rows are required")
		return
	}
	ctx, cancel, ok := s.admitWithDeadline(w, r, 0)
	if !ok {
		return
	}
	defer cancel()

	tbl, err := s.lookupTable(req.Table)
	if err != nil {
		s.writeMappedError(w, err, http.StatusBadRequest, "bad_request")
		return
	}
	cols := tbl.Columns()
	inserted := 0
	if bt, isBatch := tbl.(batchTableHandle); isBatch {
		rows := make([]congress.Row, len(req.Rows))
		for ri, raw := range req.Rows {
			if len(raw) != len(cols) {
				writeError(w, http.StatusBadRequest, "bad_request",
					fmt.Sprintf("row %d has %d values, table %q has %d columns (0 rows inserted before failure)",
						ri, len(raw), req.Table, len(cols)))
				return
			}
			row := make(congress.Row, len(raw))
			for i, rv := range raw {
				v, err := jsonToValue(rv, cols[i])
				if err != nil {
					writeError(w, http.StatusBadRequest, "bad_request",
						fmt.Sprintf("row %d column %q: %v (0 rows inserted before failure)", ri, cols[i].Name, err))
					return
				}
				row[i] = v
			}
			rows[ri] = row
		}
		n, err := bt.InsertBatch(ctx, rows)
		if err != nil {
			s.writeMappedError(w, err, http.StatusBadRequest, "bad_request")
			return
		}
		inserted = n
	} else {
		for _, raw := range req.Rows {
			if len(raw) != len(cols) {
				writeError(w, http.StatusBadRequest, "bad_request",
					fmt.Sprintf("row %d has %d values, table %q has %d columns (%d rows inserted before failure)",
						inserted, len(raw), req.Table, len(cols), inserted))
				return
			}
			row := make([]congress.Value, len(raw))
			for i, rv := range raw {
				v, err := jsonToValue(rv, cols[i])
				if err != nil {
					writeError(w, http.StatusBadRequest, "bad_request",
						fmt.Sprintf("row %d column %q: %v (%d rows inserted before failure)", inserted, cols[i].Name, err, inserted))
					return
				}
				row[i] = v
			}
			if err := tbl.Insert(row...); err != nil {
				writeError(w, http.StatusBadRequest, "bad_request", err.Error())
				return
			}
			inserted++
		}
	}
	resp := client.InsertResponse{Inserted: inserted}
	if req.Refresh {
		if err := s.refreshSynopsis(req.Table); err != nil {
			s.writeMappedError(w, err, http.StatusInternalServerError, "internal")
			return
		}
		resp.Refreshed = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePartials serves the distributed scatter-gather leg: one
// estimation scan returning the mergeable per-group sufficient
// statistics, no confidence interval (the coordinator takes it once
// after merging). Served in every mode — a coordinator can itself be a
// leg of a higher-tier coordinator — and on followers too (read-only).
func (s *Server) handlePartials(w http.ResponseWriter, r *http.Request) {
	var req client.PartialsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Table == "" || req.Column == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "table and column are required")
		return
	}
	ctx, cancel, ok := s.admitWithDeadline(w, r, req.TimeoutMS)
	if !ok {
		return
	}
	defer cancel()
	if s.onExecute != nil {
		s.onExecute()
	}

	start := time.Now()
	parts, err := s.estimatePartials(ctx, req.Table, req.GroupBy, req.Column,
		congress.PartialsOptions{NoHybrid: req.NoHybrid})
	if err != nil {
		s.writeMappedError(w, err, http.StatusBadRequest, "bad_query")
		return
	}
	writeJSON(w, http.StatusOK, client.PartialsResponse{
		Partials:  parts,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	_, cancel, ok := s.admitWithDeadline(w, r, 0)
	if !ok {
		return
	}
	defer cancel()

	if s.co != nil {
		writeError(w, http.StatusConflict, "not_persistent",
			"the coordinator holds no data of its own; snapshot each shard congressd (they own the data directories)")
		return
	}
	if s.sw != nil {
		writeError(w, http.StatusConflict, "not_persistent",
			"in-process sharded warehouses hold no data directory; snapshots need a single warehouse with -data-dir")
		return
	}
	if _, enabled := s.w.PersistStats(); !enabled {
		writeError(w, http.StatusConflict, "not_persistent",
			"server runs without a data directory; start congressd with -data-dir to enable snapshots")
		return
	}
	if err := s.w.TriggerSnapshot(); err != nil {
		s.writeMappedError(w, err, http.StatusInternalServerError, "internal")
		return
	}
	ps, _ := s.w.PersistStats()
	writeJSON(w, http.StatusOK, client.SnapshotResponse{
		Dir:        ps.Dir,
		Generation: ps.Generation,
		Fsync:      ps.Fsync.String(),
	})
}

func (s *Server) handleSynopses(w http.ResponseWriter, r *http.Request) {
	withAlloc := r.URL.Query().Get("allocation") != ""
	infos := s.synopses()
	resp := client.SynopsesResponse{Synopses: make([]client.SynopsisInfo, 0, len(infos))}
	for _, si := range infos {
		ci := client.SynopsisInfo{
			Table:          si.Table,
			GroupBy:        si.GroupBy,
			Strategy:       si.Strategy,
			Space:          si.Space,
			SampleSize:     si.SampleSize,
			Strata:         si.Strata,
			PendingInserts: si.PendingInserts,
			Shards:         si.Shards,
		}
		// Ship the table schema so a distributed coordinator can discover
		// it and verify every shard agrees before serving.
		if tbl, err := s.lookupTable(si.Table); err == nil {
			cols := tbl.Columns()
			ci.Columns = make([]client.ColumnSpec, len(cols))
			for i, c := range cols {
				ci.Columns[i] = client.ColumnSpec{Name: c.Name, Kind: c.Kind.String()}
			}
		}
		if withAlloc {
			rows, err := s.allocationTable(si.Table)
			if err == nil {
				ci.Allocation = make([]client.AllocationRow, len(rows))
				for i, ar := range rows {
					ci.Allocation[i] = client.AllocationRow{
						Group:      ar.Group,
						Population: ar.Population,
						PreScale:   ar.PreScale,
						Target:     ar.Target,
						Actual:     ar.Actual,
					}
				}
			}
		}
		resp.Synopses = append(resp.Synopses, ci)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	if s.co == nil {
		sb.WriteString(s.warehouseMetrics().String())
	}
	if s.sw != nil {
		s.sw.ShardTelemetry().Render(&sb)
	}
	if s.co != nil {
		s.co.ShardTelemetry().RenderAs(&sb, "congress_distshard")
	}
	if s.w != nil {
		if ps, ok := s.w.PersistStats(); ok {
			fmt.Fprintf(&sb, "persist_generation %d\n", ps.Generation)
			fmt.Fprintf(&sb, "persist_wal_durable_offset %d\n", ps.DurableWALOffset)
			fmt.Fprintf(&sb, "persist_wal_record_seq %d\n", ps.RecordSeq)
		}
	}
	if s.opts.ReplLeader != nil {
		s.opts.ReplLeader.RenderMetrics(&sb)
	}
	if s.opts.Follower != nil {
		s.opts.Follower.RenderMetrics(&sb)
	}
	s.met.render(&sb, s.adm.depth())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(sb.String()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"status": "ok", "role": s.replRole()}
	if f := s.opts.Follower; f != nil {
		st := f.Status()
		resp["lag_records"] = st.LagRecords
		resp["lag_seconds"] = st.LagSeconds
		resp["caught_up"] = st.CaughtUp
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) replRole() string {
	switch {
	case s.opts.Follower != nil:
		return "follower"
	case s.opts.ReplLeader != nil:
		return "leader"
	case s.co != nil:
		return "coordinator"
	default:
		return "standalone"
	}
}

// handleReplStatus reports the server's replication role and progress;
// standalone servers answer too, so probes can discover topology
// uniformly.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.opts.Follower != nil:
		writeJSON(w, http.StatusOK, s.opts.Follower.Status())
	case s.opts.ReplLeader != nil:
		writeJSON(w, http.StatusOK, s.opts.ReplLeader.Status())
	default:
		writeJSON(w, http.StatusOK, map[string]string{"role": "standalone"})
	}
}

// ----- helpers -----

// decodeBody parses the JSON request body, writing a 400 on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: "+err.Error())
		return false
	}
	return true
}

// statusCanceledClient is the nginx-convention status for "client closed
// request"; nothing standard fits a caller that went away.
const statusCanceledClient = 499

// writeMappedError classifies err via the typed sentinels and writes the
// matching status; unrecognized errors fall back to the given status and
// code (400/bad_query on the query paths — executing a user-supplied
// query, remaining failures are the query's fault; 500 only for true
// internal failures and recovered panics).
func (s *Server) writeMappedError(w http.ResponseWriter, err error, fallback int, fallbackCode string) {
	status, code := fallback, fallbackCode
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		status, code = statusCanceledClient, "canceled"
	case errors.Is(err, aqua.ErrNoSynopsis):
		status, code = http.StatusNotFound, "no_synopsis"
	case errors.Is(err, engine.ErrUnknownTable):
		status, code = http.StatusNotFound, "unknown_table"
	case errors.Is(err, aqua.ErrBadQuery):
		status, code = http.StatusBadRequest, "bad_query"
	case errors.Is(err, congress.ErrShardUnavailable):
		status, code = http.StatusServiceUnavailable, "shard_unavailable"
	}
	writeError(w, status, code, err.Error())
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, client.ErrorBody{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(body)
}

// parseAggregate resolves the estimate aggregate name.
func parseAggregate(s string) (estimate.Aggregate, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sum":
		return estimate.Sum, nil
	case "count":
		return estimate.Count, nil
	case "avg":
		return estimate.Avg, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q (want sum|count|avg)", s)
	}
}

// resultToWire converts an engine result to JSON-native columns/rows.
func resultToWire(res *congress.Result) ([]string, [][]any) {
	rows := make([][]any, len(res.Rows))
	for i, r := range res.Rows {
		out := make([]any, len(r))
		for j, v := range r {
			out[j] = valueToJSON(v)
		}
		rows[i] = out
	}
	return res.Columns, rows
}

func valueToJSON(v engine.Value) any {
	switch v.K {
	case engine.KindNull:
		return nil
	case engine.KindBool:
		return v.I != 0
	case engine.KindInt:
		return v.I
	case engine.KindFloat:
		return v.F
	default: // strings and dates render as display text
		return v.String()
	}
}

// jsonToValue converts one JSON-decoded value to the column's kind.
func jsonToValue(raw any, col engine.Column) (engine.Value, error) {
	if raw == nil {
		return engine.Null, nil
	}
	switch col.Kind {
	case engine.KindInt:
		f, ok := raw.(float64)
		if !ok || f != float64(int64(f)) {
			return engine.Null, fmt.Errorf("want integer, got %v", raw)
		}
		return engine.NewInt(int64(f)), nil
	case engine.KindFloat:
		f, ok := raw.(float64)
		if !ok {
			return engine.Null, fmt.Errorf("want number, got %v", raw)
		}
		return engine.NewFloat(f), nil
	case engine.KindString:
		s, ok := raw.(string)
		if !ok {
			return engine.Null, fmt.Errorf("want string, got %v", raw)
		}
		return engine.NewString(s), nil
	case engine.KindBool:
		b, ok := raw.(bool)
		if !ok {
			return engine.Null, fmt.Errorf("want boolean, got %v", raw)
		}
		return engine.NewBool(b), nil
	case engine.KindDate:
		s, ok := raw.(string)
		if !ok {
			return engine.Null, fmt.Errorf("want %q date string, got %v", "yyyy-mm-dd", raw)
		}
		return engine.ParseDate(s)
	default:
		return engine.Null, fmt.Errorf("unsupported column kind %v", col.Kind)
	}
}
