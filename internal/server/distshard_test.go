package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	congress "github.com/approxdb/congress"
	"github.com/approxdb/congress/internal/tpcd"
	"github.com/approxdb/congress/pkg/client"
)

// distCluster is a full distributed deployment inside one test: K shard
// congressd servers (each fronting one partition of a tpcd relation)
// plus a coordinator server wired over their HTTP endpoints, alongside
// a single-warehouse reference over the same data for differentials.
type distCluster struct {
	co        *congress.Coordinator
	c         *client.Client // talks to the coordinator server
	single    *congress.Warehouse
	sw        *congress.ShardedWarehouse // the shard backing stores
	shardSrvs []*httptest.Server
}

// newDistCluster partitions rows of lineitem across K shard servers by
// the finest grouping key and builds a fully enumerated synopsis
// (space ≥ every shard's row count) so estimates are sampling-noise
// free on both sides of the differential.
func newDistCluster(t *testing.T, shards, rows int) *distCluster {
	t.Helper()
	rel, err := tpcd.Generate(tpcd.Params{TableSize: rows, NumGroups: 27, GroupSkew: 0.86, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	spec := congress.SynopsisSpec{
		Table:   rel.Name,
		GroupBy: tpcd.GroupingAttrs,
		Space:   2 * rows, // ≥ every shard's row count → full enumeration
		Seed:    7,
	}
	single := congress.Open()
	single.AttachRelation(rel)
	if err := single.BuildSynopsis(spec); err != nil {
		t.Fatal(err)
	}
	sw, err := congress.OpenSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.AttachRelation(rel, tpcd.GroupingAttrs); err != nil {
		t.Fatal(err)
	}
	if err := sw.BuildSynopsis(spec); err != nil {
		t.Fatal(err)
	}
	cl := &distCluster{single: single, sw: sw}
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		srv := New(Options{Warehouse: sw.Shard(i), Logger: quietLogger()})
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		cl.shardSrvs = append(cl.shardSrvs, hs)
		urls[i] = hs.URL
	}
	co, err := congress.NewCoordinator(urls, congress.CoordinatorOptions{
		LegTimeout: 5 * time.Second,
		Retries:    1,
		MaxBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := co.WaitHealthy(ctx, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := co.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	cl.co = co
	_, cl.c = testServer(t, Options{Coordinator: co})
	return cl
}

func relDiffT(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return d / m
}

// TestDistShardDifferential is the distributed acceptance differential:
// a 4-shard deployment of real HTTP servers must reproduce the
// single-warehouse SUM/COUNT/AVG estimates — values, bounds and sample
// counts — to 1e-9 at every grouping granularity, because partials
// travel losslessly over the wire and the confidence interval is taken
// exactly once after the merge.
func TestDistShardDifferential(t *testing.T) {
	cl := newDistCluster(t, 4, 6000)
	ctx := context.Background()
	groupings := [][]string{
		{"l_returnflag"},
		{"l_returnflag", "l_linestatus"},
		tpcd.GroupingAttrs,
	}
	for _, grouping := range groupings {
		for _, agg := range []string{"sum", "count", "avg"} {
			want, err := cl.single.Estimate("lineitem", grouping, mustAgg(t, agg), "l_quantity", 0.95)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cl.c.Query(ctx, client.QueryRequest{Estimate: &client.EstimateRequest{
				Table: "lineitem", GroupBy: grouping,
				Agg: agg, Column: "l_quantity", Confidence: 0.95,
			}})
			if err != nil {
				t.Fatalf("%v %s: %v", grouping, agg, err)
			}
			if len(res.Groups) != len(want) {
				t.Fatalf("%v %s: %d groups, want %d", grouping, agg, len(res.Groups), len(want))
			}
			byKey := make(map[string]congress.GroupEstimate, len(want))
			for _, e := range want {
				byKey[e.Key] = e
			}
			for _, g := range res.Groups {
				key := strings.Join(g.Group, congress.EstimateKeySep)
				w, ok := byKey[key]
				if !ok {
					t.Fatalf("%v %s: distributed group %q missing from single", grouping, agg, key)
				}
				if relDiffT(g.Value, w.Value) > 1e-9 {
					t.Errorf("%v %s %q: value %v != %v", grouping, agg, key, g.Value, w.Value)
				}
				if relDiffT(g.Bound, w.Bound) > 1e-9 {
					t.Errorf("%v %s %q: bound %v != %v", grouping, agg, key, g.Bound, w.Bound)
				}
				if g.SampleN != w.SampleN {
					t.Errorf("%v %s %q: SampleN %d != %d", grouping, agg, key, g.SampleN, w.SampleN)
				}
			}
		}
	}
}

func mustAgg(t *testing.T, s string) congress.Aggregate {
	t.Helper()
	agg, err := parseAggregate(s)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// TestDistShardInsertRouting: an insert through the coordinator lands
// on exactly one shard (chosen by the finest grouping key), the batch
// path routes a whole request in one leg per shard, and the refresh
// fans out so the rows become visible to a subsequent estimate.
func TestDistShardInsertRouting(t *testing.T) {
	cl := newDistCluster(t, 4, 2000)
	ctx := context.Background()

	before := make([]int, cl.sw.NumShards())
	for i := 0; i < cl.sw.NumShards(); i++ {
		tbl, err := cl.sw.Shard(i).Table("lineitem")
		if err != nil {
			t.Fatal(err)
		}
		before[i] = tbl.NumRows()
	}
	ins, err := cl.c.Insert(ctx, client.InsertRequest{
		Table: "lineitem",
		Rows: [][]any{
			{int64(9_000_001), 0, 0, "1994-06-15", 7.0, 1200.0},
			{int64(9_000_002), 1, 1, "1994-07-15", 9.0, 1800.0},
			{int64(9_000_003), 0, 0, "1994-06-15", 3.0, 400.0},
		},
		Refresh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ins.Inserted != 3 || !ins.Refreshed {
		t.Fatalf("insert response %+v", ins)
	}
	total := 0
	for i := 0; i < cl.sw.NumShards(); i++ {
		tbl, err := cl.sw.Shard(i).Table("lineitem")
		if err != nil {
			t.Fatal(err)
		}
		total += tbl.NumRows() - before[i]
	}
	if total != 3 {
		t.Errorf("shards gained %d rows, want 3", total)
	}
	// Identical routing keys must land on the same shard as in-process
	// routing would choose.
	ct, err := cl.co.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.sw.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	row := congress.Row{congress.I(9_000_001), congress.I(0), congress.I(0),
		congress.D("1994-06-15"), congress.F(7), congress.F(1200)}
	if ct.RouteOf(row) != st.RouteOf(row) {
		t.Errorf("coordinator routes row to shard %d, in-process to %d", ct.RouteOf(row), st.RouteOf(row))
	}

	metrics, err := cl.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"congress_distshard_count 4",
		"congress_distshard_inserts_total",
		"congress_distshard_fanout_seconds",
		"server_requests_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDistShardKilledShard: killing one shard mid-deployment must fail
// coordinator queries with the typed shard_unavailable error — never a
// silently merged partial answer missing that shard's groups.
func TestDistShardKilledShard(t *testing.T) {
	cl := newDistCluster(t, 4, 2000)
	ctx := context.Background()

	cl.shardSrvs[2].Close() // SIGKILL stand-in: connections now refuse

	_, err := cl.c.Query(ctx, client.QueryRequest{Estimate: &client.EstimateRequest{
		Table: "lineitem", GroupBy: []string{"l_returnflag"},
		Agg: "sum", Column: "l_quantity", Confidence: 0.95,
	}})
	if err == nil {
		t.Fatal("query with a dead shard succeeded — partial answer was silently merged")
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != "shard_unavailable" || ae.Status != 503 {
		t.Fatalf("err = %v, want 503 shard_unavailable", err)
	}
	if !strings.Contains(ae.Message, "shard 2") {
		t.Errorf("error %q does not name the dead shard", ae.Message)
	}

	// Direct (non-HTTP) classification: errors.Is must see the sentinel.
	_, cerr := cl.co.EstimateCtx(ctx, "lineitem", []string{"l_returnflag"}, congress.Sum, "l_quantity", 0.95)
	if !errors.Is(cerr, congress.ErrShardUnavailable) {
		t.Errorf("EstimateCtx error %v, want ErrShardUnavailable", cerr)
	}

	// The retry counter must have moved: the dead leg was retried before
	// being declared unavailable.
	metrics, merr := cl.c.Metrics(ctx)
	if merr != nil {
		t.Fatal(merr)
	}
	if !strings.Contains(metrics, `congress_distshard_fanout_retries_total{shard="2"} `) {
		t.Error("/metrics missing the shard 2 retry series")
	}
	if strings.Contains(metrics, `congress_distshard_fanout_retries_total{shard="2"} 0`) {
		t.Error("dead shard leg was never retried")
	}
}

// TestDistShardCoordinatorModeSurface: the coordinator serves the same
// API surface as sharded mode — SQL paths answer 400, snapshots 409,
// healthz reports the coordinator role, synopses merge across shard
// processes — and /v1/estimate/partials works on the coordinator
// itself, so deployments can tier coordinators.
func TestDistShardCoordinatorModeSurface(t *testing.T) {
	cl := newDistCluster(t, 2, 1500)
	ctx := context.Background()

	if _, err := cl.c.Query(ctx, client.QueryRequest{SQL: "select count(*) from lineitem"}); err == nil {
		t.Error("SQL query accepted in coordinator mode")
	}
	if _, err := cl.c.Exact(ctx, client.ExactRequest{SQL: "select count(*) from lineitem"}); err == nil {
		t.Error("/v1/exact accepted in coordinator mode")
	}
	if _, err := cl.c.Snapshot(ctx); err == nil {
		t.Error("/v1/snapshot accepted in coordinator mode")
	} else if ae, ok := err.(*client.APIError); !ok || ae.Code != "not_persistent" {
		t.Errorf("snapshot error = %v, want not_persistent", err)
	}

	infos, err := cl.c.Synopses(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Table != "lineitem" || infos[0].Shards < 1 {
		t.Fatalf("synopses: %+v", infos)
	}
	if len(infos[0].Columns) != 6 {
		t.Errorf("coordinator synopses ship %d columns, want 6", len(infos[0].Columns))
	}

	// Tiering: the coordinator's own partials must merge to the same
	// state a shard-level merge produces.
	parts, err := cl.c.Partials(ctx, client.PartialsRequest{
		Table: "lineitem", GroupBy: []string{"l_returnflag"}, Column: "l_quantity",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts.Partials) == 0 {
		t.Fatal("coordinator partials empty")
	}
	wantParts, err := cl.single.EstimatePartialsCtx(ctx, "lineitem", []string{"l_returnflag"}, "l_quantity")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts.Partials) != len(wantParts) {
		t.Errorf("coordinator partials: %d groups, want %d", len(parts.Partials), len(wantParts))
	}

	var hz map[string]any
	hres, err := http.Get(cl.c.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if err := json.NewDecoder(hres.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["role"] != "coordinator" {
		t.Errorf("healthz role %v, want coordinator", hz["role"])
	}
}

// TestDistShardDiscoverRejectsSchemaMismatch: shards disagreeing on a
// table's schema must fail discovery, not silently merge partials from
// different stratifications.
func TestDistShardDiscoverRejectsSchemaMismatch(t *testing.T) {
	mk := func(group []string) *httptest.Server {
		w := congress.Open()
		rel, err := tpcd.Generate(tpcd.Params{TableSize: 500, NumGroups: 9, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		w.AttachRelation(rel)
		if err := w.BuildSynopsis(congress.SynopsisSpec{
			Table: "lineitem", GroupBy: group, Space: 100, Seed: 3,
		}); err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(New(Options{Warehouse: w, Logger: quietLogger()}).Handler())
		t.Cleanup(hs.Close)
		return hs
	}
	a := mk([]string{"l_returnflag"})
	b := mk([]string{"l_returnflag", "l_linestatus"})
	co, err := congress.NewCoordinator([]string{a.URL, b.URL}, congress.CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := co.Discover(ctx); err == nil {
		t.Fatal("Discover accepted shards with mismatched groupings")
	} else if !strings.Contains(err.Error(), "disagree") {
		t.Errorf("Discover error %v, want schema disagreement", err)
	}
}
