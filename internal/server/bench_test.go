package server

import (
	"context"
	"testing"

	"github.com/approxdb/congress/internal/workload"
	"github.com/approxdb/congress/pkg/client"
)

// BenchmarkServerQuery measures one approximate group-by answer through
// the full network stack — JSON encode, HTTP round trip, admission,
// rewrite, execution, JSON decode — the served counterpart of the
// library-level BenchmarkEstimateDirect.
func BenchmarkServerQuery(b *testing.B) {
	w := testWarehouse(b, 50_000, 200)
	_, c := testServer(b, Options{Warehouse: w})
	ctx := context.Background()
	req := client.QueryRequest{SQL: workload.Qg2}
	if _, err := c.Query(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerEstimate is the network-served direct-estimation path
// with confidence bounds.
func BenchmarkServerEstimate(b *testing.B) {
	w := testWarehouse(b, 50_000, 200)
	_, c := testServer(b, Options{Warehouse: w})
	ctx := context.Background()
	req := client.QueryRequest{Estimate: &client.EstimateRequest{
		Table:   "lineitem",
		GroupBy: []string{"l_returnflag", "l_linestatus"},
		Agg:     "sum",
		Column:  "l_quantity",
	}}
	if _, err := c.Query(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
