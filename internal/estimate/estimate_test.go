package estimate

import (
	"math"
	"testing"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// twoStratumSample builds a stratified sample with two strata:
//
//	g1: population 100, sampled {10, 20} (rate 2%)
//	g2: population 50, sampled {5}      (rate 2%)
func twoStratumSample() *sample.Stratified[engine.Row] {
	st := sample.NewStratified[engine.Row]()
	row := func(g string, v float64) engine.Row {
		return engine.Row{engine.NewString(g), engine.NewFloat(v)}
	}
	st.Put(&sample.Stratum[engine.Row]{
		Key: "g1", Population: 100,
		Items: []engine.Row{row("g1", 10), row("g1", 20)},
	})
	st.Put(&sample.Stratum[engine.Row]{
		Key: "g2", Population: 50,
		Items: []engine.Row{row("g2", 5)},
	})
	return st
}

func valueCol(row engine.Row) (float64, bool) { return row[1].F, true }
func groupCol(row engine.Row) string          { return row[0].S }

func TestRunSumPerGroup(t *testing.T) {
	ests, err := Run(twoStratumSample(), Query{
		GroupKey: groupCol,
		Value:    valueCol,
		Agg:      Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]GroupEstimate{}
	for _, e := range ests {
		byKey[e.Key] = e
	}
	// g1: SF 50, scaled sum (10+20)*50 = 1500. g2: SF 50, 5*50 = 250.
	if g := byKey["g1"]; math.Abs(g.Value-1500) > 1e-9 || g.SampleN != 2 {
		t.Errorf("g1 = %+v", g)
	}
	if g := byKey["g2"]; math.Abs(g.Value-250) > 1e-9 {
		t.Errorf("g2 = %+v", g)
	}
	if byKey["g1"].Bound <= 0 {
		t.Error("multi-tuple stratum should have a positive bound")
	}
}

func TestRunCountAndAvg(t *testing.T) {
	ests, err := Run(twoStratumSample(), Query{GroupKey: groupCol, Value: valueCol, Agg: Count})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		switch e.Key {
		case "g1":
			if math.Abs(e.Value-100) > 1e-9 {
				t.Errorf("g1 count %v", e.Value)
			}
		case "g2":
			if math.Abs(e.Value-50) > 1e-9 {
				t.Errorf("g2 count %v", e.Value)
			}
		}
	}
	ests, err = Run(twoStratumSample(), Query{GroupKey: groupCol, Value: valueCol, Agg: Avg})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		if e.Key == "g1" && math.Abs(e.Value-15) > 1e-9 {
			t.Errorf("g1 avg %v", e.Value)
		}
	}
}

func TestRunNoGroupBy(t *testing.T) {
	ests, err := Run(twoStratumSample(), Query{Value: valueCol, Agg: Sum})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || ests[0].Key != "" {
		t.Fatalf("ests %+v", ests)
	}
	if math.Abs(ests[0].Value-1750) > 1e-9 {
		t.Errorf("total sum %v, want 1750", ests[0].Value)
	}
}

func TestRunPredicate(t *testing.T) {
	ests, err := Run(twoStratumSample(), Query{
		GroupKey: groupCol,
		Value: func(row engine.Row) (float64, bool) {
			v := row[1].F
			return v, v >= 10 // excludes g2's only tuple
		},
		Agg: Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || ests[0].Key != "g1" {
		t.Fatalf("predicate should drop g2 entirely: %+v", ests)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(twoStratumSample(), Query{Agg: Sum}); err == nil {
		t.Error("nil Value accepted")
	}
	if _, err := Run(twoStratumSample(), Query{Value: valueCol, Confidence: 1.5}); err == nil {
		t.Error("confidence > 1 accepted")
	}
	if _, err := Run(twoStratumSample(), Query{Value: valueCol, Agg: Aggregate(9)}); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

func TestRunEmptyStratumSkipped(t *testing.T) {
	st := twoStratumSample()
	st.Put(&sample.Stratum[engine.Row]{Key: "empty", Population: 1000})
	ests, err := Run(st, Query{GroupKey: groupCol, Value: valueCol, Agg: Sum})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		if e.Key == "empty" {
			t.Error("empty stratum produced an estimate")
		}
	}
}

func TestAggregateString(t *testing.T) {
	if Sum.String() != "SUM" || Count.String() != "COUNT" || Avg.String() != "AVG" {
		t.Error("aggregate names wrong")
	}
	if Aggregate(7).String() == "" {
		t.Error("unknown aggregate renders empty")
	}
}

func TestZScore(t *testing.T) {
	cases := []struct{ conf, want float64 }{
		{0.90, 1.6449},
		{0.95, 1.9600},
		{0.99, 2.5758},
		{0.50, 0.6745},
	}
	for _, c := range cases {
		if got := ZScore(c.conf); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("ZScore(%v) = %v, want %v", c.conf, got, c.want)
		}
	}
	if !math.IsNaN(normInv(0)) || !math.IsNaN(normInv(1)) {
		t.Error("normInv must reject 0 and 1")
	}
	// Symmetry.
	if math.Abs(normInv(0.01)+normInv(0.99)) > 1e-6 {
		t.Error("normInv not symmetric")
	}
	// Tail branch sanity.
	if normInv(0.001) > -3 || normInv(0.999) < 3 {
		t.Error("tail quantiles too small")
	}
}

func TestHoeffdingAvg(t *testing.T) {
	b := HoeffdingAvg(100, 0, 10, 0.90)
	if b <= 0 || math.IsInf(b, 1) {
		t.Fatalf("bound %v", b)
	}
	// Quadrupling n halves the bound.
	b4 := HoeffdingAvg(400, 0, 10, 0.90)
	if math.Abs(b4-b/2) > 1e-9 {
		t.Errorf("Hoeffding scaling: n=100 %v, n=400 %v", b, b4)
	}
	if !math.IsInf(HoeffdingAvg(0, 0, 10, 0.9), 1) {
		t.Error("n=0 should be infinite")
	}
	if !math.IsInf(HoeffdingAvg(10, 5, 5, 0.9), 1) {
		t.Error("empty range should be infinite")
	}
	if !math.IsInf(HoeffdingAvg(10, 0, 1, 1.0), 1) {
		t.Error("conf=1 should be infinite")
	}
}

func TestChebyshevAvg(t *testing.T) {
	b := ChebyshevAvg(100, 25, 0.90)
	want := math.Sqrt(25 / (100 * 0.1))
	if math.Abs(b-want) > 1e-12 {
		t.Errorf("Chebyshev %v, want %v", b, want)
	}
	if !math.IsInf(ChebyshevAvg(0, 25, 0.9), 1) {
		t.Error("n=0 should be infinite")
	}
}

// TestBoundCoverage runs a Monte-Carlo coverage check: the 90% CLT bound
// from Run should contain the true sum in roughly >= 85% of trials.
func TestBoundCoverage(t *testing.T) {
	// Population: one group of 2000 values 0..1999; sample 200 without
	// replacement each trial.
	popSum := float64(2000 * 1999 / 2)
	covered, trials := 0, 300
	rngSeed := int64(1)
	for trial := 0; trial < trials; trial++ {
		rngSeed++
		st := sample.NewStratified[engine.Row]()
		items := make([]engine.Row, 0, 200)
		perm := randPerm(2000, rngSeed)
		for _, v := range perm[:200] {
			items = append(items, engine.Row{engine.NewString("g"), engine.NewFloat(float64(v))})
		}
		st.Put(&sample.Stratum[engine.Row]{Key: "g", Population: 2000, Items: items})
		ests, err := Run(st, Query{Value: valueCol, Agg: Sum})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ests[0].Value-popSum) <= ests[0].Bound {
			covered++
		}
	}
	if rate := float64(covered) / float64(trials); rate < 0.85 {
		t.Errorf("90%% bound covered only %.0f%% of trials", rate*100)
	}
}

// randPerm is a tiny deterministic permutation helper (xorshift-based
// Fisher-Yates) so the coverage test does not fight the global RNG.
func randPerm(n int, seed int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	s := uint64(seed)*2685821657736338717 + 1
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}
