package estimate

import (
	"encoding/json"
	"fmt"
	"math"
)

// GroupPartial is the wire format of distributed scatter-gather: shard
// processes serve their partials as JSON and the coordinator merges
// them. encoding/json rejects non-finite float64 values, but an empty
// partial legitimately holds Lo = +Inf, Hi = −Inf (the min/max merge
// identity), so every float field travels as a wireFloat: finite values
// encode as ordinary JSON numbers, non-finite ones as the strings
// "+Inf", "-Inf" and "NaN". The codec round-trips bit-exactly — the
// coordinator's merged state must be indistinguishable from an
// in-process merge.

// wireFloat is a float64 whose JSON encoding survives non-finite values.
type wireFloat float64

// MarshalJSON encodes finite values as numbers and ±Inf/NaN as strings.
func (f wireFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts both encodings produced by MarshalJSON.
func (f *wireFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = wireFloat(math.Inf(1))
		case "-Inf":
			*f = wireFloat(math.Inf(-1))
		case "NaN":
			*f = wireFloat(math.NaN())
		default:
			return fmt.Errorf("estimate: bad non-finite float literal %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = wireFloat(v)
	return nil
}

// wirePartial mirrors GroupPartial field for field with wire-safe
// floats and stable JSON names. Keep in sync with GroupPartial.
type wirePartial struct {
	Key           string    `json:"key"`
	N             int       `json:"n"`
	ScaledSum     wireFloat `json:"scaled_sum"`
	ScaledCount   wireFloat `json:"scaled_count"`
	SumVar        wireFloat `json:"sum_var"`
	CountVar      wireFloat `json:"count_var"`
	HTSumVar      wireFloat `json:"ht_sum_var"`
	HTSumCountCov wireFloat `json:"ht_sum_count_cov"`
	Lo            wireFloat `json:"lo"`
	Hi            wireFloat `json:"hi"`
	SparseN       int       `json:"sparse_n,omitempty"`
	SparseCount   wireFloat `json:"sparse_count"`
	ZeroN         int       `json:"zero_n,omitempty"`
	ZeroScaled    wireFloat `json:"zero_scaled"`
	// Hybrid exact mass; absent in partials from pre-hybrid shards and
	// decodes as zero there, which merges as "no exact coverage".
	ExactSum   wireFloat `json:"exact_sum,omitempty"`
	ExactCount wireFloat `json:"exact_count,omitempty"`
}

// MarshalJSON encodes the partial with non-finite-safe floats.
func (p GroupPartial) MarshalJSON() ([]byte, error) {
	return json.Marshal(wirePartial{
		Key:           p.Key,
		N:             p.N,
		ScaledSum:     wireFloat(p.ScaledSum),
		ScaledCount:   wireFloat(p.ScaledCount),
		SumVar:        wireFloat(p.SumVar),
		CountVar:      wireFloat(p.CountVar),
		HTSumVar:      wireFloat(p.HTSumVar),
		HTSumCountCov: wireFloat(p.HTSumCountCov),
		Lo:            wireFloat(p.Lo),
		Hi:            wireFloat(p.Hi),
		SparseN:       p.SparseN,
		SparseCount:   wireFloat(p.SparseCount),
		ZeroN:         p.ZeroN,
		ZeroScaled:    wireFloat(p.ZeroScaled),
		ExactSum:      wireFloat(p.ExactSum),
		ExactCount:    wireFloat(p.ExactCount),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON. Absent fields decode as
// their zero value except Lo/Hi, which default to the empty-partial
// identity (+Inf, −Inf) so a truncated record cannot silently shrink a
// merged range.
func (p *GroupPartial) UnmarshalJSON(b []byte) error {
	w := wirePartial{Lo: wireFloat(math.Inf(1)), Hi: wireFloat(math.Inf(-1))}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*p = GroupPartial{
		Key:           w.Key,
		N:             w.N,
		ScaledSum:     float64(w.ScaledSum),
		ScaledCount:   float64(w.ScaledCount),
		SumVar:        float64(w.SumVar),
		CountVar:      float64(w.CountVar),
		HTSumVar:      float64(w.HTSumVar),
		HTSumCountCov: float64(w.HTSumCountCov),
		Lo:            float64(w.Lo),
		Hi:            float64(w.Hi),
		SparseN:       w.SparseN,
		SparseCount:   float64(w.SparseCount),
		ZeroN:         w.ZeroN,
		ZeroScaled:    float64(w.ZeroScaled),
		ExactSum:      float64(w.ExactSum),
		ExactCount:    float64(w.ExactCount),
	}
	return nil
}
