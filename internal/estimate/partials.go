package estimate

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// gatherChunk is the batch size of the columnar scan path: the
// aggregate column is gathered this many rows at a time, with one
// cancellation poll per chunk (matches engine's vectorized chunk size).
const gatherChunk = 4096

// GroupPartial is the mergeable per-group state of one estimation scan.
// Every field is either additive (sums, variances, counts) or combines
// by min/max (Lo/Hi), so partials computed over disjoint sets of strata
// — per-shard synopses, or any other partition — merge into exactly the
// state a single scan over the union would have produced: sums of sums,
// sums of variances. The confidence interval is taken once, after the
// merge, by Finalize.
//
// Partials are confidence- and aggregate-independent: one scan serves
// SUM, COUNT and AVG at any confidence level.
type GroupPartial struct {
	// Key is the output group key (see Query.GroupKey).
	Key string
	// N counts sampled rows that passed the predicate.
	N int
	// ScaledSum is Σ sf·v over passing rows (the expansion SUM estimate).
	ScaledSum float64
	// ScaledCount is Σ sf over passing rows (the expansion COUNT
	// estimate).
	ScaledCount float64
	// SumVar accumulates the per-stratum SRSWOR variance contributions
	// sf²·n·(1−1/sf)·s² used for the SUM bound.
	SumVar float64
	// CountVar is the Horvitz-Thompson count variance Σ sf·(sf−1),
	// defined even for single-row strata.
	CountVar float64
	// HTSumVar is Σ sf·(sf−1)·v², the HT variance of the scaled sum
	// under per-row inclusion probability 1/sf ((1−π)/π² = sf·(sf−1)).
	HTSumVar float64
	// HTSumCountCov is Σ sf·(sf−1)·v, the HT covariance between the
	// scaled sum and the scaled count (the same rows drive both), needed
	// by the ratio-estimator AVG bound.
	HTSumCountCov float64
	// Lo and Hi are the observed passing-value range, the input to the
	// distribution-free Hoeffding fallbacks. An empty partial holds
	// (+Inf, −Inf) so min/max merging is the identity.
	Lo, Hi float64
	// SparseN counts rows in sparse strata: strata contributing a single
	// passing row at sf > 1, whose sample variance is undefined. The
	// Hoeffding fallback is sized from this count — not from the group's
	// total N, which let one sparse stratum hide behind a populous
	// sibling with a vanishing half-width.
	SparseN int
	// SparseCount is Σ sf over sparse-strata rows: the slice of the
	// group's scaled count the fallback must cover.
	SparseCount float64
	// ZeroN counts sampled rows in zero-contribution strata: strata
	// whose rows all failed the predicate. Without this record the
	// stratum would simply vanish, which a scatter-gather merge misreads
	// as "no information" — a group present on shard A and predicate-
	// empty on shard B must still merge to a defined bound.
	ZeroN int
	// ZeroScaled is the total population of zero-contribution strata at
	// sf > 1 (a fully enumerated sf == 1 stratum with no passing rows
	// contributes exactly zero, with certainty).
	ZeroScaled float64
	// ExactSum and ExactCount carry the hybrid estimator's exact portion:
	// the group's SUM and non-null COUNT over base rows answered from a
	// datacube measure prefix rather than the sample. Exact mass is a
	// known constant, so it shifts the point estimate without adding
	// variance — a group answered entirely exactly finalizes with a
	// zero half-width. Both are additive across shards like every other
	// field; a warehouse that answered from its cube contributes only
	// exact mass, one that scanned its sample contributes only sampled
	// mass, and the merge composes covered + residual portions.
	ExactSum   float64
	ExactCount float64
}

// emptyPartial returns a zero-information partial for key.
func emptyPartial(key string) GroupPartial {
	return GroupPartial{Key: key, Lo: math.Inf(1), Hi: math.Inf(-1)}
}

// accumulate folds other into p (both must carry the same Key).
func (p *GroupPartial) accumulate(other *GroupPartial) {
	p.N += other.N
	p.ScaledSum += other.ScaledSum
	p.ScaledCount += other.ScaledCount
	p.SumVar += other.SumVar
	p.CountVar += other.CountVar
	p.HTSumVar += other.HTSumVar
	p.HTSumCountCov += other.HTSumCountCov
	if other.Lo < p.Lo {
		p.Lo = other.Lo
	}
	if other.Hi > p.Hi {
		p.Hi = other.Hi
	}
	p.SparseN += other.SparseN
	p.SparseCount += other.SparseCount
	p.ZeroN += other.ZeroN
	p.ZeroScaled += other.ZeroScaled
	p.ExactSum += other.ExactSum
	p.ExactCount += other.ExactCount
}

// Partials scans the stratified sample and returns per-group partials in
// first-appearance order (strata are visited in sorted key order).
func Partials(st *sample.Stratified[engine.Row], q Query) ([]GroupPartial, error) {
	return PartialsCtx(context.Background(), st, q)
}

// PartialsCtx is the scan half of RunCtx: it reduces every stratum into
// its output group's GroupPartial and performs no statistics that depend
// on the aggregate or confidence level. q.Agg and q.Confidence are
// ignored. Cancellation is observed every pollEvery sampled rows.
func PartialsCtx(ctx context.Context, st *sample.Stratified[engine.Row], q Query) ([]GroupPartial, error) {
	if q.Value == nil && q.ValueIndex == nil {
		return nil, errors.New("estimate: Query.Value is required")
	}
	cells := make(map[string]*GroupPartial)
	var order []string
	cell := func(key string) *GroupPartial {
		c := cells[key]
		if c == nil {
			p := emptyPartial(key)
			c = &p
			cells[key] = c
			order = append(order, key)
		}
		return c
	}

	scanned := 0 // rows visited across strata, for cancellation polling
	// Reused gather scratch for the columnar (ValueIndex) path; nil and
	// never allocated when every scan goes through q.Value.
	var (
		gvals []float64
		goks  []bool
	)
	for _, sk := range st.Keys() {
		s, ok := st.Get(sk)
		if !ok || len(s.Items) == 0 {
			continue
		}
		sf := s.ScaleFactor()
		if sf < 1 {
			sf = 1
		}
		// Every tuple of a stratum carries the same grouping-column
		// values (a stratum is a finest group and the output grouping is
		// a subset of the synopsis grouping), so the key can be read off
		// the first tuple whether or not it passes the predicate.
		var key string
		if q.GroupKey != nil {
			key = q.GroupKey(s.Items[0])
		}
		var (
			n          int64
			mean, m2   float64
			passedSum  float64
			passedCnt  float64
			countVarTr float64
			htSumVarTr float64
			htCovTr    float64
		)
		sLo, sHi := math.Inf(1), math.Inf(-1)
		// accumulate folds one passing value into the stratum state. Both
		// scan paths below feed values through this single body in row
		// order, so the float operation sequence — and therefore every
		// estimate bit — is identical whichever path runs.
		accumulate := func(v float64) {
			n++
			d := v - mean
			mean += d / float64(n)
			m2 += d * (v - mean)
			passedSum += v * sf
			passedCnt += sf
			countVarTr += sf * (sf - 1)
			htSumVarTr += sf * (sf - 1) * v * v
			htCovTr += sf * (sf - 1) * v
			if v < sLo {
				sLo = v
			}
			if v > sHi {
				sHi = v
			}
		}
		if q.ValueIndex != nil {
			// Columnar path: gather the aggregate column chunk by chunk
			// with one cancellation poll per chunk instead of a closure
			// call and poll check per row.
			ci := *q.ValueIndex
			items := s.Items
			for lo := 0; lo < len(items); lo += gatherChunk {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				hi := lo + gatherChunk
				if hi > len(items) {
					hi = len(items)
				}
				gvals, goks = engine.AppendColumnFloats(items[lo:hi], ci, gvals[:0], goks[:0])
				for i, v := range gvals {
					if goks[i] {
						accumulate(v)
					}
				}
			}
		} else {
			for _, row := range s.Items {
				if scanned&(pollEvery-1) == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				scanned++
				v, ok := q.Value(row)
				if !ok {
					continue
				}
				accumulate(v)
			}
		}
		if n == 0 {
			// Zero-contribution stratum: every sampled row failed the
			// predicate. The group's partial records it explicitly so a
			// merge (and Finalize) can widen the bound for the unsampled
			// population instead of treating absence as certainty.
			c := cell(key)
			c.ZeroN += len(s.Items)
			if sf > 1 {
				c.ZeroScaled += float64(s.Population)
			}
			continue
		}
		c := cell(key)
		c.N += int(n)
		c.ScaledSum += passedSum
		c.ScaledCount += passedCnt
		c.CountVar += countVarTr
		c.HTSumVar += htSumVarTr
		c.HTSumCountCov += htCovTr
		if sLo < c.Lo {
			c.Lo = sLo
		}
		if sHi > c.Hi {
			c.Hi = sHi
		}
		if n >= 2 {
			s2 := m2 / float64(n-1)
			c.SumVar += sf * sf * float64(n) * (1 - 1/sf) * s2
		} else if sf > 1 {
			// A single sampled row at sf > 1 has no defined sample
			// variance — the s2 term above would divide by n-1 = 0.
			// Record the stratum's own row count and scaled mass so the
			// fallback half-width is sized from the sparse strata alone.
			// sf == 1 with one row really is the whole stratum, so a
			// zero contribution is correct there.
			c.SparseN++
			c.SparseCount += passedCnt
		}
	}

	out := make([]GroupPartial, 0, len(order))
	for _, key := range order {
		out = append(out, *cells[key])
	}
	return out, nil
}

// MergePartials combines per-shard (or otherwise partitioned) partials
// group by group: sums add, variances add, ranges widen. Groups present
// in some inputs and absent from others merge as if absent inputs
// contributed the empty partial. The output is sorted by group key, so
// the merge is deterministic regardless of shard completion order.
func MergePartials(parts ...[]GroupPartial) []GroupPartial {
	merged := make(map[string]*GroupPartial)
	for _, list := range parts {
		for i := range list {
			p := &list[i]
			m := merged[p.Key]
			if m == nil {
				cp := *p
				merged[p.Key] = &cp
				continue
			}
			m.accumulate(p)
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]GroupPartial, 0, len(keys))
	for _, k := range keys {
		out = append(out, *merged[k])
	}
	return out
}

// Finalize turns merged partials into estimates with confidence bounds,
// taking the interval exactly once — per-shard half-widths are never
// added directly; their variances are, which is the statistically sound
// combination. Input order is preserved. Groups with no passing rows
// (pure zero-contribution records) are dropped, matching SQL group-by
// semantics; their information still mattered during the merge, where
// they widened the bounds of groups that do appear.
//
// Bounds per aggregate, at confidence conf with critical value z:
//
//   - SUM: z·sqrt(SumVar), plus Hoeffding fallbacks for the sparse
//     strata (sized by SparseN, weighted by SparseCount) and the
//     zero-contribution strata (sized by ZeroN, weighted by ZeroScaled).
//   - COUNT: z·sqrt(CountVar) plus the zero-stratum fallback over the
//     indicator range [0,1].
//   - AVG: the ratio-estimator (delta-method) variance
//     (HTSumVar − 2R·HTSumCountCov + R²·CountVar)/ScaledCount², which
//     accounts for the variance of the estimated denominator and its
//     covariance with the numerator — algebraically Σ sf(sf−1)(v−R)²,
//     guaranteed non-negative — plus the sparse fallback weighted by the
//     sparse strata's share of the scaled count, plus the zero-stratum
//     fallback weighted by the zero strata's unsampled mass relative to
//     the observed scaled count: a group that is predicate-empty on one
//     shard must report a wider AVG than one that is not.
//
// Hybrid (exact + sample) partials: ExactSum/ExactCount mass is a known
// constant, so it adds to the point estimate and contributes zero
// variance. For SUM and COUNT the half-width is unchanged (it covers
// only the sampled portion); for AVG the denominator grows to
// ScaledCount + ExactCount, which strictly shrinks both the delta-method
// term and the fallback weights — hybrid bounds are never wider than
// pure-sample bounds on the same partials, and a group answered entirely
// exactly (N == 0, ExactCount > 0) finalizes with half-width exactly 0.
func Finalize(partials []GroupPartial, agg Aggregate, confidence float64) ([]GroupEstimate, error) {
	conf := confidence
	if conf == 0 {
		conf = 0.90
	}
	if conf <= 0 || conf >= 1 {
		return nil, fmt.Errorf("estimate: confidence %v out of (0,1)", conf)
	}
	z := ZScore(conf)

	out := make([]GroupEstimate, 0, len(partials))
	for i := range partials {
		c := &partials[i]
		if c.N == 0 && c.ExactCount == 0 {
			continue
		}
		ge := GroupEstimate{Key: c.Key, SampleN: c.N}
		switch agg {
		case Sum:
			ge.Value = c.ExactSum + c.ScaledSum
			ge.Bound = z * math.Sqrt(c.SumVar)
			if c.SparseN > 0 {
				ge.Bound += fallbackHalfWidth(c.SparseN, c.Lo, c.Hi, conf) * c.SparseCount
			}
			if c.ZeroScaled > 0 {
				ge.Bound += fallbackHalfWidth(c.ZeroN, c.Lo, c.Hi, conf) * c.ZeroScaled
			}
		case Count:
			// The Horvitz-Thompson count variance sf·(sf−1) per row is
			// defined even for single-row strata; no sparse fallback
			// needed. Zero-contribution strata still widen the bound:
			// their pass indicator is bounded in [0,1].
			ge.Value = c.ExactCount + c.ScaledCount
			ge.Bound = z * math.Sqrt(c.CountVar)
			if c.ZeroScaled > 0 {
				ge.Bound += fallbackHalfWidth(c.ZeroN, 0, 1, conf) * c.ZeroScaled
			}
		case Avg:
			// The hybrid denominator is the exact non-null count plus the
			// estimated one; with no exact mass this is the pure-sample
			// ratio estimator unchanged.
			total := c.ScaledCount + c.ExactCount
			if total == 0 {
				continue
			}
			r := (c.ExactSum + c.ScaledSum) / total
			ge.Value = r
			// The delta-method variance of (E + Ŝ)/(C_e + Ĉ) keeps only the
			// random terms (Ŝ, Ĉ): Var(Ŝ) − 2R·Cov(Ŝ,Ĉ) + R²·Var(Ĉ), all
			// divided by total². The quadratic in R is Σ sf(sf−1)(v−R)² for
			// any R, so it stays non-negative with the hybrid ratio too.
			varR := c.HTSumVar - 2*r*c.HTSumCountCov + r*r*c.CountVar
			if varR < 0 {
				varR = 0 // floating-point residue; the form is a sum of squares
			}
			ge.Bound = z * math.Sqrt(varR) / total
			if c.SparseN > 0 {
				ge.Bound += fallbackHalfWidth(c.SparseN, c.Lo, c.Hi, conf) * (c.SparseCount / total)
			}
			if c.ZeroScaled > 0 {
				// Zero-contribution strata hold ZeroScaled population rows
				// whose passing values — if any exist — were never observed.
				// Shifting the ratio by that unseen mass moves the AVG by at
				// most halfWidth·(ZeroScaled/total); without this term a
				// predicate-empty shard reported the same AVG half-width as
				// a fully observed group.
				ge.Bound += fallbackHalfWidth(c.ZeroN, c.Lo, c.Hi, conf) * (c.ZeroScaled / total)
			}
		default:
			return nil, fmt.Errorf("estimate: unknown aggregate %v", agg)
		}
		// Bounds must serialize as valid JSON through /v1/query; clamp
		// any residual non-finite half-width to "no information".
		if math.IsNaN(ge.Bound) || math.IsInf(ge.Bound, 0) {
			ge.Bound = math.MaxFloat64
		}
		out = append(out, ge)
	}
	return out, nil
}
