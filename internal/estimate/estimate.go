// Package estimate turns stratified biased samples into approximate
// query answers with probabilistic error bounds, using the standard
// stratified-expansion estimators of Section 5.1 (after [Coc77]) and the
// Hoeffding/Chebyshev bound machinery Aqua reports answers with
// (Section 2).
//
// This is the direct, in-process estimation path; the SQL path through
// the Section 5 rewriters produces the same numbers by executing
// rewritten queries on the engine.
package estimate

import (
	"context"
	"fmt"
	"math"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// pollEvery is how many sampled rows the estimation loop processes
// between context cancellation checks (mirrors engine.pollEvery).
const pollEvery = 1024

// Aggregate selects the aggregate operator to estimate.
type Aggregate int

// Supported aggregates.
const (
	Sum Aggregate = iota
	Count
	Avg
)

// String names the aggregate.
func (a Aggregate) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// Query describes one estimation pass over a stratified sample.
type Query struct {
	// GroupKey maps a sampled tuple to its output group. Because any
	// group under a grouping T ⊆ G is a union of finest groups, every
	// stratum maps entirely to one output group. nil means no group-by:
	// all tuples fall into the single group "".
	GroupKey func(engine.Row) string
	// Value extracts the aggregated expression from a tuple; ok=false
	// excludes the tuple (predicate failure or NULL). For Count, Value
	// acts purely as the predicate (the value itself is ignored).
	Value func(engine.Row) (v float64, ok bool)
	// ValueIndex, when non-nil, declares that Value is exactly
	// "row[*ValueIndex].AsFloat()" — a bare column read with no
	// predicate. The scan then gathers the column in batches
	// (engine.AppendColumnFloats) instead of calling Value per row,
	// which amortizes closure dispatch and cancellation polling. The
	// accumulation math and its order are identical, so estimates are
	// bit-for-bit the same either way. Value may be nil when ValueIndex
	// is set; if both are set they must agree.
	ValueIndex *int
	// Agg is the aggregate operator.
	Agg Aggregate
	// Confidence is the two-sided confidence level for Bound; 0 means
	// the Aqua default of 0.90.
	Confidence float64
}

// GroupEstimate is one output group's approximate answer.
type GroupEstimate struct {
	Key     string  // output group key
	Value   float64 // the estimate
	Bound   float64 // half-width of the CLT confidence interval
	SampleN int     // sampled tuples that contributed
}

// Run executes the estimation. Output order follows sorted stratum keys
// grouped by output key first appearance.
func Run(st *sample.Stratified[engine.Row], q Query) ([]GroupEstimate, error) {
	return RunCtx(context.Background(), st, q)
}

// RunCtx executes the estimation under a context: a deadline or
// cancellation is observed inside the per-row scan loop (checked every
// pollEvery sampled rows), so a query against a large sample stops
// promptly when its caller gives up.
//
// RunCtx is exactly PartialsCtx followed by Finalize — the same two
// halves a scatter-gather coordinator runs on opposite sides of a
// MergePartials, so a single-warehouse estimate and a sharded one over
// the same strata are numerically identical.
func RunCtx(ctx context.Context, st *sample.Stratified[engine.Row], q Query) ([]GroupEstimate, error) {
	partials, err := PartialsCtx(ctx, st, q)
	if err != nil {
		return nil, err
	}
	return Finalize(partials, q.Agg, q.Confidence)
}

// fallbackHalfWidth is the defined half-width substituted for groups
// whose CLT variance term is unavailable: a Hoeffding bound for the mean
// over the observed value range. A group fed by a single row has a
// degenerate (zero-width) range, so the range is floored at
// max(|hi|, 1) — "the value could plausibly be off by its own
// magnitude" — which keeps the bound positive and finite instead of the
// 0 (false certainty) or +Inf (HoeffdingAvg's degenerate answer) the
// raw formulas produce.
func fallbackHalfWidth(n int, lo, hi, conf float64) float64 {
	if n <= 0 {
		n = 1
	}
	width := hi - lo
	if !(width > 0) || math.IsInf(width, 0) {
		width = math.Abs(hi)
		if !(width >= 1) || math.IsInf(width, 0) {
			width = 1
		}
	}
	delta := 1 - conf
	return width * math.Sqrt(math.Log(2/delta)/(2*float64(n)))
}

// HoeffdingAvg returns the Hoeffding half-width for an estimated mean of
// n uniform samples of a quantity bounded in [lo, hi], at the given
// confidence: (hi−lo)·sqrt(ln(2/δ)/(2n)).
func HoeffdingAvg(n int, lo, hi, conf float64) float64 {
	if n <= 0 || hi <= lo {
		return math.Inf(1)
	}
	delta := 1 - conf
	if delta <= 0 {
		return math.Inf(1)
	}
	return (hi - lo) * math.Sqrt(math.Log(2/delta)/(2*float64(n)))
}

// ChebyshevAvg returns the Chebyshev half-width for an estimated mean
// with per-sample variance s2 over n samples: sqrt(s2/(n·δ)).
func ChebyshevAvg(n int, s2, conf float64) float64 {
	if n <= 0 || s2 < 0 {
		return math.Inf(1)
	}
	delta := 1 - conf
	if delta <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(s2 / (float64(n) * delta))
}

// ZScore returns the two-sided normal critical value for the given
// confidence level (e.g. 0.90 → 1.645, 0.95 → 1.960), computed with
// Acklam's inverse-normal-CDF approximation (|relative error| < 1.15e-9).
func ZScore(conf float64) float64 {
	p := 0.5 + conf/2 // upper quantile
	return normInv(p)
}

// normInv approximates the standard normal quantile function.
func normInv(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	// Coefficients for Acklam's rational approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
