package estimate

import (
	"math"
	"math/rand"
	"testing"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// TestStratifiedEstimatorUnbiased verifies the Section 5.1 claim that
// the expansion estimator over a union of different-rate uniform
// samples is unbiased: averaging SUM estimates over many independent
// stratified samples converges to the true population sum.
func TestStratifiedEstimatorUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(123))

	// Two strata with very different sizes, value distributions, and
	// sampling rates — the mixed-rate situation of query Q2 in the
	// paper's Section 5.1 example.
	popA := make([]float64, 5000)
	popB := make([]float64, 300)
	var trueSum float64
	for i := range popA {
		popA[i] = rng.Float64() * 10
		trueSum += popA[i]
	}
	for i := range popB {
		popB[i] = 100 + rng.Float64()*500
		trueSum += popB[i]
	}

	const trials = 400
	var sumOfEstimates float64
	var sumSqDev float64
	for trial := 0; trial < trials; trial++ {
		st := sample.NewStratified[engine.Row]()
		// 1% of A, 10% of B.
		st.Put(stratumFrom("A", popA, 50, rng))
		st.Put(stratumFrom("B", popB, 30, rng))
		ests, err := Run(st, Query{Value: valueCol, Agg: Sum})
		if err != nil {
			t.Fatal(err)
		}
		est := ests[0].Value
		sumOfEstimates += est
		d := est - trueSum
		sumSqDev += d * d
	}
	meanEst := sumOfEstimates / trials
	empiricalSD := math.Sqrt(sumSqDev / trials)
	// The mean of the estimates should be within ~4 standard errors of
	// the truth.
	if math.Abs(meanEst-trueSum) > 4*empiricalSD/math.Sqrt(trials) {
		t.Errorf("estimator biased: mean estimate %.1f vs true %.1f (empirical sd %.1f)",
			meanEst, trueSum, empiricalSD)
	}
}

// stratumFrom draws a uniform without-replacement sample of size n from
// the population and wraps it as a stratum.
func stratumFrom(key string, pop []float64, n int, rng *rand.Rand) *sample.Stratum[engine.Row] {
	idx := sample.SampleWithoutReplacement(len(pop), n, rng)
	items := make([]engine.Row, 0, n)
	for _, i := range idx {
		items = append(items, engine.Row{engine.NewString(key), engine.NewFloat(pop[i])})
	}
	return &sample.Stratum[engine.Row]{Key: key, Population: int64(len(pop)), Items: items}
}

// TestSubsamplingVsStratifiedBound reproduces the Section 5.1 note that
// estimating from all strata at their own rates beats subsampling every
// stratum down to the lowest common rate: the mixed-rate estimator's
// empirical error must be smaller.
func TestSubsamplingVsStratifiedBound(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	pop := make([]float64, 4000)
	var trueSum float64
	for i := range pop {
		pop[i] = rng.Float64() * 100
		trueSum += pop[i]
	}

	const trials = 300
	var mixedErr, subErr float64
	for trial := 0; trial < trials; trial++ {
		// Mixed: one stratum sampled at 5%.
		stFull := sample.NewStratified[engine.Row]()
		stFull.Put(stratumFrom("g", pop, 200, rng))
		full, err := Run(stFull, Query{Value: valueCol, Agg: Sum})
		if err != nil {
			t.Fatal(err)
		}
		mixedErr += math.Abs(full[0].Value - trueSum)

		// Subsampled down to 1% (what a lowest-common-rate scheme
		// would keep).
		stSub := sample.NewStratified[engine.Row]()
		stSub.Put(stratumFrom("g", pop, 40, rng))
		sub, err := Run(stSub, Query{Value: valueCol, Agg: Sum})
		if err != nil {
			t.Fatal(err)
		}
		subErr += math.Abs(sub[0].Value - trueSum)
	}
	if mixedErr >= subErr {
		t.Errorf("5%% sample mean |err| %.1f should beat 1%% sample %.1f",
			mixedErr/trials, subErr/trials)
	}
}
