package estimate

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// sparseSample builds a stratified sample with one well-populated
// stratum and one stratum holding a single sampled row standing in for a
// large population (sf >> 1) — the shape that used to produce a 0
// ("perfectly certain") bound because the sample variance needs n >= 2.
func sparseSample() *sample.Stratified[engine.Row] {
	st := sample.NewStratified[engine.Row]()
	big := &sample.Stratum[engine.Row]{Key: "big", Population: 100}
	for i := 0; i < 50; i++ {
		big.Items = append(big.Items, engine.Row{engine.NewString("big"), engine.NewFloat(float64(10 + i%5))})
	}
	st.Put(big)
	st.Put(&sample.Stratum[engine.Row]{
		Key:        "tiny",
		Population: 1000, // sf = 1000: one row represents a thousand
		Items:      []engine.Row{{engine.NewString("tiny"), engine.NewFloat(42)}},
	})
	return st
}

func sparseQuery(agg Aggregate) Query {
	return Query{
		GroupKey: func(r engine.Row) string { return r[0].S },
		Value:    func(r engine.Row) (float64, bool) { return r[1].AsFloat() },
		Agg:      agg,
	}
}

func findGroup(t *testing.T, ests []GroupEstimate, key string) GroupEstimate {
	t.Helper()
	for _, e := range ests {
		if e.Key == key {
			return e
		}
	}
	t.Fatalf("group %q missing from %v", key, ests)
	return GroupEstimate{}
}

func TestOneRowStratumBoundDefined(t *testing.T) {
	for _, agg := range []Aggregate{Sum, Avg} {
		ests, err := Run(sparseSample(), sparseQuery(agg))
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		tiny := findGroup(t, ests, "tiny")
		if tiny.SampleN != 1 {
			t.Fatalf("%v: SampleN = %d, want 1", agg, tiny.SampleN)
		}
		if math.IsNaN(tiny.Bound) || math.IsInf(tiny.Bound, 0) {
			t.Errorf("%v: bound is not finite: %v", agg, tiny.Bound)
		}
		if tiny.Bound <= 0 {
			t.Errorf("%v: bound = %v; a 1-row stratum at sf=1000 must not claim certainty", agg, tiny.Bound)
		}
	}
}

func TestOneRowStratumCountBound(t *testing.T) {
	ests, err := Run(sparseSample(), sparseQuery(Count))
	if err != nil {
		t.Fatal(err)
	}
	tiny := findGroup(t, ests, "tiny")
	if tiny.Value != 1000 {
		t.Errorf("count = %v, want 1000", tiny.Value)
	}
	// HT count variance sf·(sf−1) is defined for n=1; must be positive
	// and finite.
	if !(tiny.Bound > 0) || math.IsInf(tiny.Bound, 0) {
		t.Errorf("count bound = %v, want finite positive", tiny.Bound)
	}
}

func TestFullyEnumeratedSingletonStaysExact(t *testing.T) {
	// One row at sf == 1 is the entire stratum: zero uncertainty is the
	// truth, the fallback must not fire.
	st := sample.NewStratified[engine.Row]()
	st.Put(&sample.Stratum[engine.Row]{
		Key:        "solo",
		Population: 1,
		Items:      []engine.Row{{engine.NewString("solo"), engine.NewFloat(7)}},
	})
	ests, err := Run(st, sparseQuery(Sum))
	if err != nil {
		t.Fatal(err)
	}
	solo := findGroup(t, ests, "solo")
	if solo.Value != 7 || solo.Bound != 0 {
		t.Errorf("got value=%v bound=%v, want 7 with exact (0) bound", solo.Value, solo.Bound)
	}
}

func TestSparseBoundsSerializeAsJSON(t *testing.T) {
	for _, agg := range []Aggregate{Sum, Count, Avg} {
		ests, err := Run(sparseSample(), sparseQuery(agg))
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		if _, err := json.Marshal(ests); err != nil {
			t.Errorf("%v: estimates do not serialize: %v", agg, err)
		}
	}
}
