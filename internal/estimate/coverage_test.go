package estimate

import (
	"math"
	"math/rand"
	"testing"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// TestAvgBoundCoverageRatioEstimator is the empirical check behind the
// AVG bound fix. The group is fed by two skewed strata: an expensive
// stratum (values ≈ 1000) that is heavily undersampled (sf = 1000) and
// where only ~30% of rows pass the predicate, plus a cheap stratum
// (values ≈ 10) that is fully enumerated (sf = 1). The estimated
// denominator — the scaled passing count — then swings with how many
// sampled expensive rows happen to pass, dragging the group ratio up
// and down, while the within-stratum variances stay tiny. The pre-fix
// bound divided only the numerator's SRSWOR variance by the scaled
// count, so it collapses toward zero here; the ratio-estimator
// (delta-method) variance keeps the denominator variance and the
// numerator-denominator covariance, whose residual form (v − R)²
// measures each stratum's distance from the group ratio. The new bound
// must cover the true AVG at ≥ the nominal 90% rate; the old formula
// must demonstrably under-cover.
func TestAvgBoundCoverageRatioEstimator(t *testing.T) {
	const (
		expPop  = 50_000 // expensive-stratum population
		expDraw = 50     // sampled rows → sf = 1000
		enumN   = 5_000  // cheap stratum, fully enumerated
		trials  = 400
		conf    = 0.90
	)
	// Row layout: [stratum tag int, row id int]. Expensive rows (tag 0)
	// pass when id%10 < 3; cheap rows (tag 1) always pass.
	value := func(tag, i int) float64 {
		if tag == 0 {
			return 1000 + float64(i%5)
		}
		return 10 + float64(i%3)
	}
	passes := func(tag, i int) bool { return tag != 0 || i%10 < 3 }

	var trueSum, trueCnt float64
	for i := 0; i < expPop; i++ {
		if passes(0, i) {
			trueSum += value(0, i)
			trueCnt++
		}
	}
	enumItems := make([]engine.Row, enumN)
	for i := range enumItems {
		trueSum += value(1, i)
		trueCnt++
		enumItems[i] = engine.Row{engine.NewInt(1), engine.NewInt(int64(i))}
	}
	trueAvg := trueSum / trueCnt

	q := Query{
		Value: func(row engine.Row) (float64, bool) {
			tag, i := int(row[0].I), int(row[1].I)
			return value(tag, i), passes(tag, i)
		},
	}
	z := ZScore(conf)
	rng := rand.New(rand.NewSource(20260808))
	coveredNew, coveredOld := 0, 0
	for trial := 0; trial < trials; trial++ {
		idx := sample.SampleWithoutReplacement(expPop, expDraw, rng)
		items := make([]engine.Row, len(idx))
		for j, i := range idx {
			items[j] = engine.Row{engine.NewInt(0), engine.NewInt(int64(i))}
		}
		st := sample.NewStratified[engine.Row]()
		st.Put(&sample.Stratum[engine.Row]{Key: "exp", Population: expPop, Items: items})
		st.Put(&sample.Stratum[engine.Row]{Key: "enum", Population: enumN, Items: enumItems})

		parts, err := Partials(st, q)
		if err != nil {
			t.Fatal(err)
		}
		ests, err := Finalize(parts, Avg, conf)
		if err != nil {
			t.Fatal(err)
		}
		if len(ests) != 1 {
			t.Fatalf("trial %d: %d groups", trial, len(ests))
		}
		est := ests[0]
		if math.Abs(est.Value-trueAvg) <= est.Bound {
			coveredNew++
		}
		// The pre-fix bound, reconstructed from the same partials:
		// z·sqrt(SumVar)/ScaledCount — numerator variance only.
		p := parts[0]
		oldBound := z * math.Sqrt(p.SumVar) / p.ScaledCount
		if math.Abs(est.Value-trueAvg) <= oldBound {
			coveredOld++
		}
	}
	newRate := float64(coveredNew) / trials
	oldRate := float64(coveredOld) / trials
	t.Logf("AVG coverage at %.0f%% nominal: ratio-estimator %.3f, pre-fix %.3f", conf*100, newRate, oldRate)
	if newRate < 0.88 {
		t.Errorf("ratio-estimator AVG bound covers %.3f < 0.88 (nominal %.2f)", newRate, conf)
	}
	if oldRate > 0.75 {
		t.Errorf("pre-fix AVG bound covers %.3f — expected clear under-coverage (the bug this guards)", oldRate)
	}
}

// TestAvgZeroStratumBoundCoverage is the empirical check behind the AVG
// zero-stratum fix, exercising the predicate-empty-shard layout that
// distributed scatter-gather produces: stratum A (one shard) is fully
// enumerated with values spanning [0, 100]; stratum B (another shard) is
// a large population sampled at only k = 5 rows, where just 10% of rows
// pass the predicate — with high values, so B's passers drag the true
// group AVG upward. In ~59% of trials the whole B sample misses the
// passers and the group's partial records B only as a zero-contribution
// stratum. The pre-fix Avg branch added no widening for that record —
// and with A enumerated (sf = 1) every variance term is exactly zero, so
// the reported half-width was 0 around an estimate that is provably
// biased low. The fixed bound widens by the Hoeffding fallback scaled by
// ZeroScaled/ScaledCount and must restore nominal-ish coverage.
func TestAvgZeroStratumBoundCoverage(t *testing.T) {
	const (
		enumN  = 2000   // stratum A: fully enumerated, always passes
		bPop   = 20_000 // stratum B population
		bDraw  = 5      // sampled rows → sf = 4000
		trials = 400
		conf   = 0.90
	)
	// Stratum B: rows with id%10 == 0 pass, values in [90, 100] — inside
	// A's observed range, as the Hoeffding fallback requires.
	bPasses := func(i int) bool { return i%10 == 0 }
	bVal := func(i int) float64 { return 90 + float64(i%11) }

	var trueSum, trueCnt float64
	enumItems := make([]engine.Row, enumN)
	for i := range enumItems {
		v := float64(i % 101) // spans [0, 100]
		trueSum += v
		trueCnt++
		enumItems[i] = engine.Row{engine.NewInt(0), engine.NewInt(int64(i))}
	}
	for i := 0; i < bPop; i++ {
		if bPasses(i) {
			trueSum += bVal(i)
			trueCnt++
		}
	}
	trueAvg := trueSum / trueCnt

	q := Query{
		Value: func(row engine.Row) (float64, bool) {
			tag, i := int(row[0].I), int(row[1].I)
			if tag == 0 {
				return float64(i % 101), true
			}
			return bVal(i), bPasses(i)
		},
	}
	z := ZScore(conf)
	rng := rand.New(rand.NewSource(99))
	coveredNew, coveredOld, zeroTrials := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		idx := sample.SampleWithoutReplacement(bPop, bDraw, rng)
		items := make([]engine.Row, len(idx))
		for j, i := range idx {
			items[j] = engine.Row{engine.NewInt(1), engine.NewInt(int64(i))}
		}
		st := sample.NewStratified[engine.Row]()
		st.Put(&sample.Stratum[engine.Row]{Key: "a", Population: enumN, Items: enumItems})
		st.Put(&sample.Stratum[engine.Row]{Key: "b", Population: bPop, Items: items})

		parts, err := Partials(st, q)
		if err != nil {
			t.Fatal(err)
		}
		ests, err := Finalize(parts, Avg, conf)
		if err != nil {
			t.Fatal(err)
		}
		if len(ests) != 1 {
			t.Fatalf("trial %d: %d groups", trial, len(ests))
		}
		est := ests[0]
		if math.Abs(est.Value-trueAvg) <= est.Bound {
			coveredNew++
		}
		// The pre-fix bound, reconstructed from the same partials: ratio
		// variance + sparse term, no zero-stratum widening.
		p := parts[0]
		if p.ZeroScaled > 0 {
			zeroTrials++
		}
		r := p.ScaledSum / p.ScaledCount
		varR := p.HTSumVar - 2*r*p.HTSumCountCov + r*r*p.CountVar
		if varR < 0 {
			varR = 0
		}
		oldBound := z * math.Sqrt(varR) / p.ScaledCount
		if p.SparseN > 0 {
			oldBound += fallbackHalfWidth(p.SparseN, p.Lo, p.Hi, conf) * (p.SparseCount / p.ScaledCount)
		}
		if math.Abs(est.Value-trueAvg) <= oldBound {
			coveredOld++
		}
	}
	newRate := float64(coveredNew) / trials
	oldRate := float64(coveredOld) / trials
	t.Logf("AVG zero-stratum coverage at %.0f%% nominal: fixed %.3f, pre-fix %.3f (%d/%d predicate-empty trials)",
		conf*100, newRate, oldRate, zeroTrials, trials)
	if zeroTrials < trials/3 {
		t.Fatalf("layout produced only %d/%d predicate-empty trials — test has lost its teeth", zeroTrials, trials)
	}
	if newRate < 0.88 {
		t.Errorf("zero-stratum AVG bound covers %.3f < 0.88 (nominal %.2f)", newRate, conf)
	}
	if oldRate > 0.70 {
		t.Errorf("pre-fix AVG bound covers %.3f — expected clear under-coverage (the bug this guards)", oldRate)
	}
}

// TestSparseStratumBoundCoverage is the empirical check behind the
// sparse-stratum fix. A group is fed by a fully enumerated stratum
// (sf = 1, exact, many rows) plus one sparse stratum: a single sampled
// row standing in for a large population. The Hoeffding fallback for
// the sparse stratum must be sized by the sparse strata's own row count
// (1), not the group's total sampled rows — with the group total, the
// 1/sqrt(n) factor shrinks by the enumerated stratum's thousands of
// rows and the bound cannot absorb the sparse row's sampling error.
func TestSparseStratumBoundCoverage(t *testing.T) {
	const (
		enumN     = 4000 // fully enumerated rows, values span [0, 100]
		sparsePop = 10_000
		trials    = 400
		conf      = 0.90
	)
	// Sparse-stratum population: values 40..60, mean 50.
	sparseVal := func(i int) float64 { return 40 + float64(i%21) }
	var sparseSum float64
	for i := 0; i < sparsePop; i++ {
		sparseSum += sparseVal(i)
	}
	var enumSum float64
	enumItems := make([]engine.Row, enumN)
	for i := range enumItems {
		v := float64(i % 101) // spans [0, 100] → group range Hi−Lo = 100
		enumSum += v
		enumItems[i] = engine.Row{engine.NewFloat(v)}
	}
	trueSum := enumSum + sparseSum

	q := Query{Value: func(row engine.Row) (float64, bool) { return row[0].F, true }}
	z := ZScore(conf)
	rng := rand.New(rand.NewSource(42))
	coveredNew, coveredOld := 0, 0
	for trial := 0; trial < trials; trial++ {
		st := sample.NewStratified[engine.Row]()
		st.Put(&sample.Stratum[engine.Row]{Key: "a", Population: enumN, Items: enumItems})
		st.Put(&sample.Stratum[engine.Row]{Key: "b", Population: sparsePop,
			Items: []engine.Row{{engine.NewFloat(sparseVal(rng.Intn(sparsePop)))}}})

		parts, err := Partials(st, q)
		if err != nil {
			t.Fatal(err)
		}
		ests, err := Finalize(parts, Sum, conf)
		if err != nil {
			t.Fatal(err)
		}
		est := ests[0]
		if math.Abs(est.Value-trueSum) <= est.Bound {
			coveredNew++
		}
		// Pre-fix bound: the fallback's sqrt(1/n) used the group's total
		// sampled rows (enumN + 1) instead of the sparse strata's own.
		p := parts[0]
		oldBound := z*math.Sqrt(p.SumVar) + fallbackHalfWidth(p.N, p.Lo, p.Hi, conf)*p.SparseCount
		if math.Abs(est.Value-trueSum) <= oldBound {
			coveredOld++
		}
	}
	newRate := float64(coveredNew) / trials
	oldRate := float64(coveredOld) / trials
	t.Logf("sparse SUM coverage at %.0f%% nominal: per-stratum-sized %.3f, pre-fix %.3f", conf*100, newRate, oldRate)
	if newRate < 0.90 {
		t.Errorf("sparse fallback covers %.3f < 0.90", newRate)
	}
	if oldRate > 0.60 {
		t.Errorf("pre-fix group-sized fallback covers %.3f — expected clear under-coverage", oldRate)
	}
}
