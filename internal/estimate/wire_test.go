package estimate

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// bitsEqual compares floats by bit pattern so NaN == NaN and ±Inf are
// distinguished — the round-trip guarantee is bit-exactness, not mere
// numeric equality.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func partialsBitEqual(t *testing.T, a, b GroupPartial) {
	t.Helper()
	if a.Key != b.Key || a.N != b.N || a.SparseN != b.SparseN || a.ZeroN != b.ZeroN {
		t.Fatalf("int/string fields diverged:\n  a=%+v\n  b=%+v", a, b)
	}
	pairs := [][2]float64{
		{a.ScaledSum, b.ScaledSum}, {a.ScaledCount, b.ScaledCount},
		{a.SumVar, b.SumVar}, {a.CountVar, b.CountVar},
		{a.HTSumVar, b.HTSumVar}, {a.HTSumCountCov, b.HTSumCountCov},
		{a.Lo, b.Lo}, {a.Hi, b.Hi},
		{a.SparseCount, b.SparseCount}, {a.ZeroScaled, b.ZeroScaled},
	}
	for i, p := range pairs {
		if !bitsEqual(p[0], p[1]) {
			t.Fatalf("float field %d diverged: %v (%016x) != %v (%016x)\n  a=%+v\n  b=%+v",
				i, p[0], math.Float64bits(p[0]), p[1], math.Float64bits(p[1]), a, b)
		}
	}
}

// TestPartialWireRoundTripRandom is the round-trip property test: random
// finite partials — including denormals, negative zero and extreme
// magnitudes — survive JSON encode/decode bit-exactly.
func TestPartialWireRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	randFloat := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return 0
		case 1:
			return math.Copysign(0, -1)
		case 2:
			return rng.NormFloat64() * 1e12
		case 3:
			return rng.NormFloat64() * 1e-12
		case 4:
			return math.MaxFloat64 * rng.Float64()
		default:
			return rng.NormFloat64()
		}
	}
	for trial := 0; trial < 500; trial++ {
		in := GroupPartial{
			Key:           "g" + string(rune('a'+rng.Intn(26))),
			N:             rng.Intn(1 << 20),
			ScaledSum:     randFloat(),
			ScaledCount:   randFloat(),
			SumVar:        randFloat(),
			CountVar:      randFloat(),
			HTSumVar:      randFloat(),
			HTSumCountCov: randFloat(),
			Lo:            randFloat(),
			Hi:            randFloat(),
			SparseN:       rng.Intn(16),
			SparseCount:   randFloat(),
			ZeroN:         rng.Intn(16),
			ZeroScaled:    randFloat(),
		}
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var out GroupPartial
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("trial %d: unmarshal %s: %v", trial, b, err)
		}
		partialsBitEqual(t, in, out)
	}
}

// TestPartialWireNonFinite pins the part encoding/json cannot do alone:
// the empty partial's (+Inf, −Inf) range — and NaN — must survive the
// wire, since zero-contribution groups are exactly what distributed
// merges must not lose.
func TestPartialWireNonFinite(t *testing.T) {
	in := emptyPartial("ghost")
	in.ZeroN = 7
	in.ZeroScaled = 1234.5
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal empty partial: %v", err)
	}
	var out GroupPartial
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	partialsBitEqual(t, in, out)

	nan := GroupPartial{Key: "n", Lo: math.NaN(), Hi: math.Inf(1), ScaledSum: math.Inf(-1)}
	b, err = json.Marshal(nan)
	if err != nil {
		t.Fatalf("marshal NaN partial: %v", err)
	}
	var out2 GroupPartial
	if err := json.Unmarshal(b, &out2); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	partialsBitEqual(t, nan, out2)
}

// TestPartialWireDefaults: a record with Lo/Hi absent decodes to the
// min/max merge identity, not 0/0 — zeros would silently clamp a merged
// range to include 0.
func TestPartialWireDefaults(t *testing.T) {
	var p GroupPartial
	if err := json.Unmarshal([]byte(`{"key":"g","n":3}`), &p); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Lo, 1) || !math.IsInf(p.Hi, -1) {
		t.Fatalf("absent Lo/Hi decoded as (%v, %v), want (+Inf, -Inf)", p.Lo, p.Hi)
	}
	if err := json.Unmarshal([]byte(`{"key":"g","lo":"bogus"}`), &p); err == nil {
		t.Fatal("bad non-finite literal accepted")
	}
}

// TestPartialWireMergeEquivalence: decoding shipped partials and merging
// them gives bit-identical results to merging the originals — the
// distributed coordinator's core invariant.
func TestPartialWireMergeEquivalence(t *testing.T) {
	shardA := []GroupPartial{
		{Key: "g1", N: 10, ScaledSum: 123.456, ScaledCount: 20, SumVar: 1.5, Lo: 1, Hi: 9},
		emptyPartial("g2"),
	}
	shardA[1].ZeroN = 4
	shardA[1].ZeroScaled = 400
	shardB := []GroupPartial{
		{Key: "g2", N: 5, ScaledSum: 50, ScaledCount: 5, Lo: 9.5, Hi: 10.5, HTSumVar: 2.25},
	}

	ship := func(parts []GroupPartial) []GroupPartial {
		b, err := json.Marshal(parts)
		if err != nil {
			t.Fatal(err)
		}
		var out []GroupPartial
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	local := MergePartials(shardA, shardB)
	remote := MergePartials(ship(shardA), ship(shardB))
	if len(local) != len(remote) {
		t.Fatalf("merge lengths diverged: %d != %d", len(local), len(remote))
	}
	for i := range local {
		partialsBitEqual(t, local[i], remote[i])
	}
}
