package estimate

import (
	"math"
	"math/rand"
	"testing"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// exactPartial builds the partial a datacube-covered warehouse exports:
// pure exact mass, empty observed range, no sampled rows.
func exactPartial(key string, sum, count float64) GroupPartial {
	p := emptyPartial(key)
	p.ExactSum = sum
	p.ExactCount = count
	return p
}

// TestHybridBoundCoverage is the empirical check behind the hybrid
// exact+sample estimator: a group whose mass is split into an exactly
// answered portion (coverage fraction f of the population, zero
// variance) and a sampled residual must report bounds that cover the
// true answer at no less than the nominal rate — the exact mass shifts
// the point estimate as a constant, and the interval needs to absorb
// only the residual's sampling error. Runs 400 trials per
// (aggregate, confidence, coverage) cell at 90% and 95% nominal with
// coverage fractions 1/4, 1/2 and 3/4, and additionally pins two
// boundary contracts on every trial:
//
//   - hybrid half-widths are never wider than the same partials
//     finalized with the exact mass stripped (the pure-sample bound on
//     the residual), and for AVG they are strictly narrower, because
//     the exact count grows the ratio denominator;
//   - a fully covered group (f = 1, no sampled rows) finalizes with
//     half-width exactly 0 and the exact truth as its value.
func TestHybridBoundCoverage(t *testing.T) {
	const (
		pop    = 40_000 // group population
		draw   = 60     // sampled rows from the residual
		trials = 400
	)
	value := func(i int) float64 { return 100 + float64(i%37) + 50*math.Sin(float64(i)) }
	var trueSum float64
	for i := 0; i < pop; i++ {
		trueSum += value(i)
	}
	trueAvg := trueSum / pop

	q := Query{Value: func(row engine.Row) (float64, bool) { return row[0].F, true }}
	rng := rand.New(rand.NewSource(20260808))
	for _, conf := range []float64{0.90, 0.95} {
		// Allow ~3 standard errors of simulation noise below nominal.
		floor := conf - 3*math.Sqrt(conf*(1-conf)/trials)
		for _, f := range []float64{0.25, 0.50, 0.75} {
			cut := int(f * pop) // rows [0, cut) answered exactly
			var exactSum float64
			for i := 0; i < cut; i++ {
				exactSum += value(i)
			}
			coveredSum, coveredAvg := 0, 0
			for trial := 0; trial < trials; trial++ {
				resPop := pop - cut
				idx := sample.SampleWithoutReplacement(resPop, draw, rng)
				items := make([]engine.Row, len(idx))
				for j, i := range idx {
					items[j] = engine.Row{engine.NewFloat(value(cut + i))}
				}
				st := sample.NewStratified[engine.Row]()
				st.Put(&sample.Stratum[engine.Row]{Key: "res", Population: int64(resPop), Items: items})
				sampled, err := Partials(st, q)
				if err != nil {
					t.Fatal(err)
				}
				merged := MergePartials(sampled, []GroupPartial{exactPartial("", exactSum, float64(cut))})

				// Pure-sample finalize of the same residual partials: the
				// hybrid bound must never exceed it.
				stripped := make([]GroupPartial, len(merged))
				copy(stripped, merged)
				stripped[0].ExactSum, stripped[0].ExactCount = 0, 0
				for _, agg := range []Aggregate{Sum, Count, Avg} {
					he, err := Finalize(merged, agg, conf)
					if err != nil {
						t.Fatal(err)
					}
					se, err := Finalize(stripped, agg, conf)
					if err != nil {
						t.Fatal(err)
					}
					if len(he) != 1 || len(se) != 1 {
						t.Fatalf("conf %v f %v: %d/%d groups", conf, f, len(he), len(se))
					}
					if he[0].Bound > se[0].Bound*(1+1e-12) {
						t.Fatalf("conf %v f %v %v: hybrid bound %v wider than pure-sample %v",
							conf, f, agg, he[0].Bound, se[0].Bound)
					}
					if agg == Avg && !(he[0].Bound < se[0].Bound) {
						t.Fatalf("conf %v f %v: hybrid AVG bound %v not strictly narrower than %v",
							conf, f, he[0].Bound, se[0].Bound)
					}
					switch agg {
					case Sum:
						if math.Abs(he[0].Value-trueSum) <= he[0].Bound {
							coveredSum++
						}
					case Avg:
						if math.Abs(he[0].Value-trueAvg) <= he[0].Bound {
							coveredAvg++
						}
					}
				}
			}
			sumRate := float64(coveredSum) / trials
			avgRate := float64(coveredAvg) / trials
			t.Logf("conf %.2f coverage %.2f: SUM %.3f AVG %.3f (floor %.3f)", conf, f, sumRate, avgRate, floor)
			if sumRate < floor {
				t.Errorf("conf %.2f coverage %.2f: hybrid SUM bound covers %.3f < %.3f", conf, f, sumRate, floor)
			}
			if avgRate < floor {
				t.Errorf("conf %.2f coverage %.2f: hybrid AVG bound covers %.3f < %.3f", conf, f, avgRate, floor)
			}
		}
	}

	// Full coverage: the group is a constant, not an estimate.
	full := []GroupPartial{exactPartial("", trueSum, pop)}
	for agg, want := range map[Aggregate]float64{Sum: trueSum, Count: pop, Avg: trueAvg} {
		ests, err := Finalize(full, agg, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if len(ests) != 1 {
			t.Fatalf("full coverage %v: %d groups", agg, len(ests))
		}
		if ests[0].Bound != 0 {
			t.Errorf("full coverage %v: half-width %v, want exactly 0", agg, ests[0].Bound)
		}
		if ests[0].Value != want {
			t.Errorf("full coverage %v: value %v, want %v", agg, ests[0].Value, want)
		}
		if ests[0].SampleN != 0 {
			t.Errorf("full coverage %v: SampleN %d, want 0", agg, ests[0].SampleN)
		}
	}
}

// TestMergeHybridNoExactMassBitIdentical is the no-regression
// differential for the hybrid algebra: with zero exact mass the
// finalized estimates must be bit-identical to the pre-hybrid formulas,
// reconstructed here from the same partials — the hybrid terms have to
// vanish exactly, not merely to within rounding, so pure-sample
// deployments (and the 1e-9 sharded differentials built on them) see no
// drift at all.
func TestMergeHybridNoExactMassBitIdentical(t *testing.T) {
	st := synthSample(23, 90)
	q := Query{
		GroupKey: groupCol,
		Value: func(row engine.Row) (float64, bool) {
			v := row[1].F
			return v, v > 120 // leave some sparse and zero-contribution strata
		},
	}
	parts, err := Partials(st, q)
	if err != nil {
		t.Fatal(err)
	}
	const conf = 0.95
	z := ZScore(conf)
	for _, agg := range []Aggregate{Sum, Count, Avg} {
		ests, err := Finalize(parts, agg, conf)
		if err != nil {
			t.Fatal(err)
		}
		byKey := make(map[string]GroupEstimate, len(ests))
		for _, e := range ests {
			byKey[e.Key] = e
		}
		checked := 0
		for i := range parts {
			p := &parts[i]
			if p.ExactSum != 0 || p.ExactCount != 0 {
				t.Fatalf("sample scan produced exact mass: %+v", p)
			}
			if p.N == 0 {
				continue
			}
			e, ok := byKey[p.Key]
			if !ok {
				t.Fatalf("%v: group %q missing from estimates", agg, p.Key)
			}
			var wantVal, wantBound float64
			switch agg {
			case Sum:
				wantVal = p.ScaledSum
				wantBound = z * math.Sqrt(p.SumVar)
				if p.SparseN > 0 {
					wantBound += fallbackHalfWidth(p.SparseN, p.Lo, p.Hi, conf) * p.SparseCount
				}
				if p.ZeroScaled > 0 {
					wantBound += fallbackHalfWidth(p.ZeroN, p.Lo, p.Hi, conf) * p.ZeroScaled
				}
			case Count:
				wantVal = p.ScaledCount
				wantBound = z * math.Sqrt(p.CountVar)
				if p.ZeroScaled > 0 {
					wantBound += fallbackHalfWidth(p.ZeroN, 0, 1, conf) * p.ZeroScaled
				}
			case Avg:
				r := p.ScaledSum / p.ScaledCount
				wantVal = r
				varR := p.HTSumVar - 2*r*p.HTSumCountCov + r*r*p.CountVar
				if varR < 0 {
					varR = 0
				}
				wantBound = z * math.Sqrt(varR) / p.ScaledCount
				if p.SparseN > 0 {
					wantBound += fallbackHalfWidth(p.SparseN, p.Lo, p.Hi, conf) * (p.SparseCount / p.ScaledCount)
				}
				if p.ZeroScaled > 0 {
					wantBound += fallbackHalfWidth(p.ZeroN, p.Lo, p.Hi, conf) * (p.ZeroScaled / p.ScaledCount)
				}
			}
			if e.Value != wantVal || e.Bound != wantBound {
				t.Errorf("%v %q: (%v ± %v) != pre-hybrid (%v ± %v)", agg, p.Key, e.Value, e.Bound, wantVal, wantBound)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("%v: degenerate fixture, nothing checked", agg)
		}
	}
}

// TestMergeNearCancellingAvgVarianceClamp guards the non-negativity
// clamp on the merged delta-method AVG variance. Algebraically
// varR = Σ sf(sf−1)(v−R)² ≥ 0, but the three merged accumulators
// (HTSumVar, HTSumCountCov, CountVar) are rounded independently, so
// near-cancelling partials — large-magnitude constant values, where the
// true variance is exactly zero — can leave a tiny negative residue
// whose sqrt would be NaN. Splitting the same strata across many
// shards reorders the float additions and shifts the residue, so the
// clamp is exercised across merge shapes; a handcrafted partial with a
// guaranteed-negative quadratic pins the clamp (plus the sparse
// fallback that still applies) directly.
func TestMergeNearCancellingAvgVarianceClamp(t *testing.T) {
	// Constant value with a magnitude that makes sf(sf−1)v² rounding
	// visible; irrational-ish scale factors via prime populations.
	const v = 1.0e8 + 1.0/3.0
	mkStratum := func(key string, n int, pop int64) *sample.Stratum[engine.Row] {
		items := make([]engine.Row, n)
		for i := range items {
			items[i] = engine.Row{engine.NewString("g"), engine.NewFloat(v)}
		}
		return &sample.Stratum[engine.Row]{Key: key, Population: pop, Items: items}
	}
	q := Query{GroupKey: groupCol, Value: valueCol, Agg: Avg}
	full := sample.NewStratified[engine.Row]()
	primes := []int64{10007, 20011, 30011, 40009, 50021, 60013, 70001, 80021}
	for i, p := range primes {
		full.Put(mkStratum(string(rune('a'+i)), 3+i, p))
	}
	for _, k := range []int{1, 2, 4, 8} {
		parts := partitionByRouter(t, full, k)
		lists := make([][]GroupPartial, len(parts))
		for i, p := range parts {
			var err error
			if lists[i], err = Partials(p, q); err != nil {
				t.Fatal(err)
			}
		}
		ests, err := Finalize(MergePartials(lists...), Avg, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if len(ests) != 1 {
			t.Fatalf("k=%d: %d groups", k, len(ests))
		}
		e := ests[0]
		if math.IsNaN(e.Bound) || e.Bound < 0 {
			t.Fatalf("k=%d: half-width %v from near-cancelling partials (clamp failed)", k, e.Bound)
		}
		// Constant data: the delta-method term is zero up to rounding
		// residue in the ~1e24-magnitude accumulators, so the bound must
		// be negligible relative to the value (not necessarily zero).
		if e.Bound > 1e-6*v {
			t.Errorf("k=%d: half-width %v for constant-valued group of %v", k, e.Bound, v)
		}
		if relDiff(e.Value, v) > 1e-12 {
			t.Errorf("k=%d: AVG %v != %v", k, e.Value, v)
		}
	}

	// Handcrafted guaranteed-negative quadratic: HTSumVar = 0 with a
	// positive covariance term forces varR = −2R·HTSumCountCov < 0. Not
	// reachable from a real scan, but it proves the clamp (not luck in
	// rounding) keeps the bound finite and non-negative.
	p := emptyPartial("g")
	p.N = 2
	p.ScaledSum = 2e8
	p.ScaledCount = 2
	p.HTSumCountCov = 1
	p.Lo, p.Hi = 1e8, 1e8
	ests, err := Finalize([]GroupPartial{p}, Avg, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || math.IsNaN(ests[0].Bound) || ests[0].Bound < 0 {
		t.Fatalf("handcrafted negative varR: %+v", ests)
	}
}
