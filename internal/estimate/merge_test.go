package estimate

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
	"github.com/approxdb/congress/internal/shard"
)

// synthSample builds a many-strata stratified sample with varied scale
// factors, multi-stratum groups and a value column, deterministically
// from seed. Row layout: [group string, value float].
func synthSample(seed int64, strata int) *sample.Stratified[engine.Row] {
	rng := rand.New(rand.NewSource(seed))
	st := sample.NewStratified[engine.Row]()
	for i := 0; i < strata; i++ {
		group := fmt.Sprintf("grp-%d", i%7) // several strata per group
		n := 1 + rng.Intn(40)
		pop := int64(n) * int64(1+rng.Intn(50)) // sf in [1, 50]
		items := make([]engine.Row, n)
		base := rng.Float64() * 1000
		for j := range items {
			items[j] = engine.Row{
				engine.NewString(group),
				engine.NewFloat(base + rng.NormFloat64()*25),
			}
		}
		st.Put(&sample.Stratum[engine.Row]{
			Key: fmt.Sprintf("s-%04d", i), Population: pop, Items: items,
		})
	}
	return st
}

// partitionByRouter splits a stratified sample into k parts, whole
// strata routed by the production hash router — the same partition a
// sharded warehouse induces.
func partitionByRouter(t *testing.T, st *sample.Stratified[engine.Row], k int) []*sample.Stratified[engine.Row] {
	t.Helper()
	r, err := shard.NewRouter(k)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*sample.Stratified[engine.Row], k)
	for i := range parts {
		parts[i] = sample.NewStratified[engine.Row]()
	}
	for _, key := range st.Keys() {
		s, _ := st.Get(key)
		parts[r.Route(key)].Put(s)
	}
	return parts
}

// relDiff returns |a-b| / max(|a|,|b|,1).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return d / m
}

// TestMergeReproducesSingleScan is the scatter-gather correctness
// property: partitioning the strata across K shards, scanning each part
// independently, merging partials and finalizing once must reproduce
// the single-scan estimate — same groups, same values, same bounds —
// for every aggregate, at K in {2, 4, 8}.
func TestMergeReproducesSingleScan(t *testing.T) {
	st := synthSample(17, 120)
	q := Query{
		GroupKey: groupCol,
		Value: func(row engine.Row) (float64, bool) {
			// Predicate with value dependence, so some strata contribute
			// zero-contribution or sparse records.
			v := row[1].F
			return v, v > 150
		},
	}
	for _, agg := range []Aggregate{Sum, Count, Avg} {
		q.Agg = agg
		single, err := Run(st, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(single) == 0 {
			t.Fatal("degenerate fixture: no groups")
		}
		for _, k := range []int{2, 4, 8} {
			parts := partitionByRouter(t, st, k)
			lists := make([][]GroupPartial, k)
			for i, p := range parts {
				lists[i], err = Partials(p, q)
				if err != nil {
					t.Fatal(err)
				}
			}
			merged, err := Finalize(MergePartials(lists...), agg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(merged) != len(single) {
				t.Fatalf("%v k=%d: %d merged groups, want %d", agg, k, len(merged), len(single))
			}
			byKey := make(map[string]GroupEstimate, len(single))
			for _, e := range single {
				byKey[e.Key] = e
			}
			for _, m := range merged {
				s, ok := byKey[m.Key]
				if !ok {
					t.Fatalf("%v k=%d: merged group %q absent from single scan", agg, k, m.Key)
				}
				if m.SampleN != s.SampleN {
					t.Errorf("%v k=%d %q: SampleN %d != %d", agg, k, m.Key, m.SampleN, s.SampleN)
				}
				if relDiff(m.Value, s.Value) > 1e-9 {
					t.Errorf("%v k=%d %q: value %v != %v", agg, k, m.Key, m.Value, s.Value)
				}
				if relDiff(m.Bound, s.Bound) > 1e-9 {
					t.Errorf("%v k=%d %q: bound %v != %v (variance addition violated)", agg, k, m.Key, m.Bound, s.Bound)
				}
			}
		}
	}
}

// TestMergeAbsentGroupSemantics: a group whose strata on shard B all
// fail the predicate must merge exactly as the single scan that saw
// those strata — the zero-contribution record travels with the
// partials and widens the SUM/COUNT bounds.
func TestMergeAbsentGroupSemantics(t *testing.T) {
	mk := func(key, group string, pop int64, vals ...float64) *sample.Stratum[engine.Row] {
		items := make([]engine.Row, len(vals))
		for i, v := range vals {
			items[i] = engine.Row{engine.NewString(group), engine.NewFloat(v)}
		}
		return &sample.Stratum[engine.Row]{Key: key, Population: pop, Items: items}
	}
	// Shard A: group g passes; shard B: same group, all rows fail.
	partA := sample.NewStratified[engine.Row]()
	partA.Put(mk("s-a", "g", 1000, 50, 60, 70, 80))
	partB := sample.NewStratified[engine.Row]()
	partB.Put(mk("s-b", "g", 2000, -5, -7, -9))

	full := sample.NewStratified[engine.Row]()
	full.Put(mk("s-a", "g", 1000, 50, 60, 70, 80))
	full.Put(mk("s-b", "g", 2000, -5, -7, -9))

	q := Query{
		GroupKey: groupCol,
		Value: func(row engine.Row) (float64, bool) {
			v := row[1].F
			return v, v > 0
		},
		Agg: Sum,
	}
	pa, err := Partials(partA, q)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Partials(partB, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb) != 1 || pb[0].N != 0 || pb[0].ZeroN != 3 || pb[0].ZeroScaled != 2000 {
		t.Fatalf("shard B must export an explicit zero-contribution record, got %+v", pb)
	}
	merged, err := Finalize(MergePartials(pa, pb), Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(full, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 || len(single) != 1 {
		t.Fatalf("groups: merged %d single %d", len(merged), len(single))
	}
	if relDiff(merged[0].Bound, single[0].Bound) > 1e-12 || merged[0].Value != single[0].Value {
		t.Fatalf("merged %+v != single %+v", merged[0], single[0])
	}
	// Dropping the zero record must narrow the bound: the record carries
	// real information about unsampled population.
	withoutZero, err := Finalize(pa, Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(merged[0].Bound > withoutZero[0].Bound) {
		t.Errorf("zero-contribution record did not widen the bound: %v vs %v",
			merged[0].Bound, withoutZero[0].Bound)
	}
}

// TestMergePartialsConcurrent exercises the scatter half under -race:
// per-shard scans run concurrently (as shard.Fanout runs them) and the
// merged result must still match the single scan.
func TestMergePartialsConcurrent(t *testing.T) {
	st := synthSample(99, 64)
	q := Query{GroupKey: groupCol, Value: valueCol, Agg: Avg}
	parts := partitionByRouter(t, st, 8)
	lists := make([][]GroupPartial, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *sample.Stratified[engine.Row]) {
			defer wg.Done()
			out, err := PartialsCtx(context.Background(), p, q)
			if err != nil {
				t.Error(err)
				return
			}
			lists[i] = out
		}(i, p)
	}
	wg.Wait()
	merged, err := Finalize(MergePartials(lists...), Avg, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(st, Query{GroupKey: groupCol, Value: valueCol, Agg: Avg, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(single) {
		t.Fatalf("%d merged groups, want %d", len(merged), len(single))
	}
	byKey := make(map[string]GroupEstimate)
	for _, e := range single {
		byKey[e.Key] = e
	}
	for _, m := range merged {
		s := byKey[m.Key]
		if relDiff(m.Value, s.Value) > 1e-9 || relDiff(m.Bound, s.Bound) > 1e-9 {
			t.Errorf("%q: merged (%v ± %v) != single (%v ± %v)", m.Key, m.Value, m.Bound, s.Value, s.Bound)
		}
	}
}
