package aqua

import (
	"math"
	"testing"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/estimate"
	"github.com/approxdb/congress/internal/sample"
	"github.com/approxdb/congress/internal/tpcd"
)

// TestEstimatePathMatchesSQLPath cross-validates the two answering
// paths: the direct stratified estimator (internal/estimate) and the
// SQL path through Integrated rewriting must produce identical SUM,
// COUNT, and AVG values from the same sample.
func TestEstimatePathMatchesSQLPath(t *testing.T) {
	a, _ := newTestAqua(t, core.Congress, 1500)
	s, _ := a.Synopsis("lineitem")
	rel, _ := a.Catalog().Lookup("lineitem")
	flagIdx := rel.Schema.Index("l_returnflag")
	qtyIdx := rel.Schema.Index("l_quantity")

	for _, agg := range []estimate.Aggregate{estimate.Sum, estimate.Count, estimate.Avg} {
		var sqlAgg string
		switch agg {
		case estimate.Sum:
			sqlAgg = "sum(l_quantity)"
		case estimate.Count:
			sqlAgg = "count(*)"
		default:
			sqlAgg = "avg(l_quantity)"
		}
		res, err := a.Answer("select l_returnflag, " + sqlAgg + " from lineitem group by l_returnflag")
		if err != nil {
			t.Fatal(err)
		}
		sqlVals := map[string]float64{}
		for _, row := range res.Rows {
			v, _ := row[1].AsFloat()
			sqlVals[row[0].String()] = v
		}

		ests, err := estimate.Run(s.Sample(), estimate.Query{
			GroupKey: func(row engine.Row) string { return row[flagIdx].String() },
			Value:    func(row engine.Row) (float64, bool) { return row[qtyIdx].AsFloat() },
			Agg:      agg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(ests) != len(sqlVals) {
			t.Fatalf("%v: estimate path %d groups, SQL path %d", agg, len(ests), len(sqlVals))
		}
		for _, e := range ests {
			sv, ok := sqlVals[e.Key]
			if !ok {
				t.Fatalf("%v: group %q missing from SQL path", agg, e.Key)
			}
			if math.Abs(e.Value-sv) > 1e-6*math.Abs(sv)+1e-9 {
				t.Errorf("%v group %q: estimate %v vs SQL %v", agg, e.Key, e.Value, sv)
			}
		}
	}
}

// TestTargetGroupings checks the query-mix specialization: targeting
// only the {l_returnflag} grouping reproduces the S1 allocation for it
// and improves that query's accuracy budget relative to covering all
// groupings.
func TestTargetGroupings(t *testing.T) {
	cat := engine.NewCatalog()
	rel := tpcd.MustGenerate(tpcd.Params{TableSize: 20000, NumGroups: 27, GroupSkew: 1.2, Seed: 99})
	cat.Register(rel)
	a := New(cat)
	syn, err := a.CreateSynopsis(Config{
		Table:           "lineitem",
		GroupCols:       tpcd.GroupingAttrs,
		Space:           600,
		TargetGroupings: [][]string{{"l_returnflag"}},
		Seed:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// S1 for a single grouping needs no scale-down.
	if f := syn.Allocation().ScaleDown; math.Abs(f-1) > 1e-9 {
		t.Errorf("single-target scale-down %v, want 1", f)
	}
	// The S1 allocation gives each of the 3 flag groups ~X/3 = 200
	// sampled tuples (exact up to integer rounding and tiny-group caps).
	flagIdx2 := rel.Schema.Index("l_returnflag")
	perFlag := map[string]int{}
	syn.Sample().Each(func(str *sample.Stratum[engine.Row]) {
		if len(str.Items) == 0 {
			return
		}
		perFlag[str.Items[0][flagIdx2].String()] += len(str.Items)
	})
	if len(perFlag) != 3 {
		t.Fatalf("flag strata %v", perFlag)
	}
	for flag, n := range perFlag {
		if n < 190 || n > 210 {
			t.Errorf("flag %s holds %d tuples, want ~200", flag, n)
		}
	}
	res, err := a.Answer("select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("flag groups %d, want 3", len(res.Rows))
	}

	// Bad grouping names are rejected.
	if _, err := a.CreateSynopsis(Config{
		Table: "lineitem", GroupCols: tpcd.GroupingAttrs, Space: 100,
		TargetGroupings: [][]string{{"ghost"}},
	}); err == nil {
		t.Error("unknown target grouping accepted")
	}
}
