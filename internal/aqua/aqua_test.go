package aqua

import (
	"math"
	"sort"
	"strings"
	"testing"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/metrics"
	"github.com/approxdb/congress/internal/rewrite"
	"github.com/approxdb/congress/internal/tpcd"
)

// newTestAqua generates a small skewed lineitem table and a Congress
// synopsis over it.
func newTestAqua(t testing.TB, strategy core.Strategy, space int) (*Aqua, *engine.Catalog) {
	t.Helper()
	cat := engine.NewCatalog()
	rel := tpcd.MustGenerate(tpcd.Params{
		TableSize: 20000,
		NumGroups: 27,
		GroupSkew: 1.2,
		Seed:      99,
	})
	cat.Register(rel)
	a := New(cat)
	if _, err := a.CreateSynopsis(Config{
		Table:     "lineitem",
		GroupCols: tpcd.GroupingAttrs,
		Strategy:  strategy,
		Space:     space,
		Seed:      5,
	}); err != nil {
		t.Fatal(err)
	}
	return a, cat
}

const qg2 = `select l_returnflag, l_linestatus, sum(l_quantity)
	from lineitem group by l_returnflag, l_linestatus`

func TestCreateSynopsisValidation(t *testing.T) {
	cat := engine.NewCatalog()
	a := New(cat)
	if _, err := a.CreateSynopsis(Config{Table: "nope", GroupCols: []string{"x"}, Space: 10}); err == nil {
		t.Error("unknown table accepted")
	}
	rel := engine.NewRelation("t", engine.MustSchema(engine.Column{Name: "a", Kind: engine.KindInt}))
	rel.Insert(engine.Row{engine.NewInt(1)})
	cat.Register(rel)
	if _, err := a.CreateSynopsis(Config{Table: "t", GroupCols: []string{"zzz"}, Space: 10}); err == nil {
		t.Error("bad grouping column accepted")
	}
	if _, err := a.CreateSynopsis(Config{Table: "t", GroupCols: []string{"a"}, Space: 0}); err == nil {
		t.Error("zero space accepted")
	}
}

func TestSynopsisRelationsRegistered(t *testing.T) {
	a, cat := newTestAqua(t, core.Congress, 2000)
	for _, name := range []string{"cs_lineitem", "csn_lineitem", "csn_lineitem_aux", "csk_lineitem", "csk_lineitem_aux"} {
		if _, ok := cat.Lookup(name); !ok {
			t.Errorf("sample relation %q not registered", name)
		}
	}
	s, ok := a.Synopsis("LINEITEM")
	if !ok {
		t.Fatal("synopsis lookup is not case-insensitive")
	}
	if s.Sample().Size() == 0 || s.Allocation() == nil || s.Grouping() == nil || s.Maintainer() == nil {
		t.Error("synopsis accessors incomplete")
	}
	// Integrated sample relation has exactly the budgeted tuples.
	cs, _ := cat.Lookup("cs_lineitem")
	if cs.NumRows() != 2000 {
		t.Errorf("cs_lineitem rows %d, want 2000", cs.NumRows())
	}
	// Aux relations have one row per non-empty stratum.
	aux, _ := cat.Lookup("csn_lineitem_aux")
	if aux.NumRows() == 0 || aux.NumRows() > 27 {
		t.Errorf("aux rows %d", aux.NumRows())
	}
}

// TestAllRewriteStrategiesAgree is the key correctness test of the
// Section 5 implementation: all four rewrites of the same query over the
// same sample must produce identical answers.
func TestAllRewriteStrategiesAgree(t *testing.T) {
	a, _ := newTestAqua(t, core.Congress, 2000)
	type keyed map[string][]float64
	collect := func(strat rewrite.Strategy) keyed {
		res, err := a.AnswerWith(qg2, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		out := keyed{}
		for _, row := range res.Rows {
			k := row[0].String() + "|" + row[1].String()
			v, _ := row[2].AsFloat()
			out[k] = append(out[k], v)
		}
		return out
	}
	base := collect(rewrite.Integrated)
	if len(base) == 0 {
		t.Fatal("no groups returned")
	}
	for _, strat := range []rewrite.Strategy{rewrite.NestedIntegrated, rewrite.Normalized, rewrite.KeyNormalized} {
		got := collect(strat)
		if len(got) != len(base) {
			t.Fatalf("%v returned %d groups, Integrated %d", strat, len(got), len(base))
		}
		for k, want := range base {
			gv, ok := got[k]
			if !ok {
				t.Fatalf("%v missing group %s", strat, k)
			}
			if math.Abs(gv[0]-want[0]) > 1e-6*math.Abs(want[0])+1e-9 {
				t.Errorf("%v group %s = %v, Integrated %v", strat, k, gv[0], want[0])
			}
		}
	}
}

func TestApproximateAccuracy(t *testing.T) {
	a, _ := newTestAqua(t, core.Congress, 4000) // 20% sample
	exact, err := a.Exact(qg2)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := a.Answer(qg2)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := metrics.CompareAnswers(exact, approx, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ge.MissingGroups != 0 {
		t.Errorf("approximate answer missing %d groups", ge.MissingGroups)
	}
	if l1 := ge.L1(); l1 > 15 {
		t.Errorf("20%% congress sample mean error %.2f%%, expected well under 15%%", l1)
	}
}

func TestCongressBeatsHouseOnSmallGroups(t *testing.T) {
	qg3 := `select l_returnflag, l_linestatus, l_shipdate, sum(l_quantity)
		from lineitem group by l_returnflag, l_linestatus, l_shipdate`
	errFor := func(strategy core.Strategy) float64 {
		a, _ := newTestAqua(t, strategy, 1500)
		exact, err := a.Exact(qg3)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := a.Answer(qg3)
		if err != nil {
			t.Fatal(err)
		}
		ge, err := metrics.CompareAnswers(exact, approx, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		return ge.L1()
	}
	house := errFor(core.House)
	congress := errFor(core.Congress)
	if congress >= house {
		t.Errorf("Qg3 L1 error: congress %.2f%% vs house %.2f%% — congress should win on finest grouping", congress, house)
	}
}

func TestAnswerWithErrorColumns(t *testing.T) {
	cat := engine.NewCatalog()
	rel := tpcd.MustGenerate(tpcd.Params{TableSize: 5000, NumGroups: 8, Seed: 3})
	cat.Register(rel)
	a := New(cat)
	if _, err := a.CreateSynopsis(Config{
		Table: "lineitem", GroupCols: tpcd.GroupingAttrs,
		Strategy: core.Congress, Space: 500, WithErrorColumns: true, Seed: 4,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Answer(`select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Columns {
		if strings.HasPrefix(c, "error") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no error column in %v", res.Columns)
	}
	for _, row := range res.Rows {
		if b, ok := row[len(row)-1].AsFloat(); !ok || b < 0 {
			t.Errorf("bad error bound %v", row[len(row)-1])
		}
	}
}

func TestRewriteOnly(t *testing.T) {
	a, _ := newTestAqua(t, core.Congress, 1000)
	s, err := a.RewriteOnly(qg2, rewrite.KeyNormalized)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "csk_lineitem") || !strings.Contains(s, "gid") {
		t.Errorf("rewritten SQL %q", s)
	}
}

func TestRouteErrors(t *testing.T) {
	a, _ := newTestAqua(t, core.Congress, 1000)
	if _, err := a.Answer("select sum(x) from unknown_table"); err == nil {
		t.Error("query on unknown table accepted")
	}
	if _, err := a.Answer("not sql"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := a.Answer("select sum(q) from (select 1 as q)"); err == nil {
		t.Error("subquery FROM accepted")
	}
	if err := a.Refresh("unknown"); err == nil {
		t.Error("refresh on unknown synopsis accepted")
	}
}

func TestMaintainAndRefresh(t *testing.T) {
	a, cat := newTestAqua(t, core.Congress, 1000)
	s, _ := a.Synopsis("lineitem")
	rel, _ := cat.Lookup("lineitem")

	// Simulate warehouse inserts: new tuples flow to both the base
	// table (by the loader) and the synopsis maintainer (by Aqua).
	newRows := tpcd.MustGenerate(tpcd.Params{TableSize: 5000, NumGroups: 27, Seed: 123}).Rows()
	for _, row := range newRows {
		rel.Insert(row)
		s.Insert(row)
	}
	// The maintainer was seeded with the 20000 existing rows at
	// creation, then saw the 5000 inserts.
	if s.Maintainer().SeenCount() != 25000 {
		t.Fatalf("maintainer saw %d inserts", s.Maintainer().SeenCount())
	}
	if err := a.Refresh("lineitem"); err != nil {
		t.Fatal(err)
	}
	// Post-refresh, the integrated relation reflects the maintained
	// sample and queries still work.
	res, err := a.Answer(qg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows after refresh")
	}
	// The maintained sample's population covers the whole relation:
	// the 20000 seeded rows plus the 5000 inserts.
	if s.Sample().Population() != 25000 {
		t.Errorf("maintained population %d, want 25000", s.Sample().Population())
	}
}

func TestDeltaMaintenanceOption(t *testing.T) {
	cat := engine.NewCatalog()
	rel := tpcd.MustGenerate(tpcd.Params{TableSize: 5000, NumGroups: 8, Seed: 17})
	cat.Register(rel)
	a := New(cat)
	s, err := a.CreateSynopsis(Config{
		Table: "lineitem", GroupCols: tpcd.GroupingAttrs,
		Strategy: core.Congress, Space: 300, DeltaMaintenance: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Maintainer().(*core.CongressDeltaMaintainer); !ok {
		t.Fatalf("maintainer type %T, want CongressDeltaMaintainer", s.Maintainer())
	}
	// It was seeded with the table and refreshes cleanly.
	if err := a.Refresh("lineitem"); err != nil {
		t.Fatal(err)
	}
	if s.Sample().Population() != 5000 {
		t.Errorf("population %d", s.Sample().Population())
	}
}

func TestExactMatchesEngine(t *testing.T) {
	a, cat := newTestAqua(t, core.Congress, 500)
	r1, err := a.Exact("select count(*) from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := engine.ExecuteSQL(cat, "select count(*) from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0].I != r2.Rows[0][0].I {
		t.Error("Exact diverges from engine")
	}
}

func TestAllocationTable(t *testing.T) {
	a, _ := newTestAqua(t, core.Congress, 1000)
	s, _ := a.Synopsis("lineitem")
	rows := s.AllocationTable()
	if len(rows) != 27 {
		t.Fatalf("allocation rows %d, want 27", len(rows))
	}
	total := 0
	for i, r := range rows {
		total += r.Actual
		if len(r.Group) != 3 && r.Actual > 0 {
			t.Errorf("row %d group %v", i, r.Group)
		}
		if i > 0 && rows[i-1].Target < r.Target {
			t.Error("not sorted by descending target")
		}
	}
	if total != 1000 {
		t.Errorf("actual total %d", total)
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	// Queries snapshot relations, so concurrent warehouse inserts and
	// approximate queries must not race (run under -race in CI).
	a, cat := newTestAqua(t, core.Congress, 500)
	s, _ := a.Synopsis("lineitem")
	rel, _ := cat.Lookup("lineitem")
	newRows := tpcd.MustGenerate(tpcd.Params{TableSize: 2000, NumGroups: 27, Seed: 55}).Rows()

	done := make(chan error, 2)
	go func() {
		for _, row := range newRows {
			rel.Insert(row)
			s.Insert(row)
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 50; i++ {
			if _, err := a.Answer(qg2); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Refresh("lineitem"); err != nil {
		t.Fatal(err)
	}
}

func TestGIDStability(t *testing.T) {
	// GIDs are assigned in sorted stratum-key order; the keyed aux
	// relation must contain each gid exactly once.
	_, cat := newTestAqua(t, core.Congress, 1000)
	aux, _ := cat.Lookup("csk_lineitem_aux")
	seen := map[int64]bool{}
	var gids []int64
	for _, row := range aux.Rows() {
		id := row[0].I
		if seen[id] {
			t.Fatalf("duplicate gid %d", id)
		}
		seen[id] = true
		gids = append(gids, id)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for i, id := range gids {
		if id != int64(i+1) {
			t.Fatalf("gids not dense: %v", gids)
		}
	}
}
