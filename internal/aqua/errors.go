package aqua

import (
	"errors"

	"github.com/approxdb/congress/internal/engine"
)

// Typed sentinel errors for the route/Answer/Exact paths. Callers — in
// particular the HTTP server — classify failures with errors.Is instead
// of string matching: ErrBadQuery maps to a client error (HTTP 400),
// ErrNoSynopsis and ErrUnknownTable to not-found (HTTP 404), and
// anything else to an internal failure.
var (
	// ErrBadQuery wraps SQL parse errors and query shapes the
	// approximate-answering path does not support (multi-table FROM,
	// derived tables).
	ErrBadQuery = errors.New("aqua: bad query")

	// ErrNoSynopsis reports a query against a table that has no
	// precomputed synopsis.
	ErrNoSynopsis = errors.New("aqua: no synopsis for table")

	// ErrUnknownTable aliases the engine's sentinel so both the exact
	// path (engine resolution) and the synopsis-construction path report
	// a missing relation as the same error.
	ErrUnknownTable = engine.ErrUnknownTable
)
