package aqua

import (
	"math"
	"sort"
	"strings"

	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/estimate"
)

// Hybrid exact-aggregate support (AQP++-style): alongside the sample, a
// synopsis maintains an exact datacube over its grouping set G with SUM
// and non-null-COUNT measure prefixes for every numeric base column,
// fed by the same insert stream as the maintainer. A direct-estimation
// query whose grouping is covered by G and whose aggregate column is a
// tracked measure can then be answered exactly — zero-width confidence
// contribution — with the congressional sample reserved for whatever
// the cube does not cover (other shards, stale cubes, non-measure
// columns).
//
// Staleness contract: exactEpoch records the synopsis epoch the cube
// was last known synchronized at. Inserts feed the cube and re-sync it;
// every other epoch advance (Refresh, UpdateScaleFactor, restore from a
// snapshot whose cube was not exported fresh) leaves exactEpoch behind,
// so ExactPartials refuses to answer until the next insert proves the
// feed is live again. The guard is deliberately conservative: a cube
// that cannot be proven current contributes nothing, and the estimator
// falls back to the pure-sample path.

// exactMeasureOrdinals returns the base-schema ordinals of the columns
// the exact cube tracks as measures: every column whose Value kind
// converts through AsFloat (Int, Float, Date, Bool) — the same set the
// estimate path can aggregate.
func exactMeasureOrdinals(schema *engine.Schema) []int {
	var out []int
	for i, col := range schema.Cols {
		switch col.Kind {
		case engine.KindInt, engine.KindFloat, engine.KindDate, engine.KindBool:
			out = append(out, i)
		}
	}
	return out
}

// newExactCube builds the empty exact cube for a synopsis grouping over
// the base schema. Measure names are the canonical schema column names.
func newExactCube(schema *engine.Schema, groupCols []string) (*datacube.Cube, []int, map[int]string, map[int]int, error) {
	ords := exactMeasureOrdinals(schema)
	measures := make([]string, len(ords))
	byOrdinal := make(map[int]string, len(ords))
	for i, ci := range ords {
		measures[i] = schema.Cols[ci].Name
		byOrdinal[ci] = schema.Cols[ci].Name
	}
	cube, err := datacube.NewWithMeasures(groupCols, measures)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	groupPos := make(map[int]int, len(groupCols))
	for pos, gc := range groupCols {
		groupPos[schema.Index(gc)] = pos
	}
	return cube, ords, byOrdinal, groupPos, nil
}

// feedExactLocked records one inserted row in the exact cube. Callers
// must hold s.mu. A nil cube (legacy restore, build failure) is a no-op.
func (s *Synopsis) feedExactLocked(row engine.Row) {
	if s.exact == nil {
		return
	}
	groupIdx := s.grouping.Columns()
	id := make(datacube.GroupID, len(groupIdx))
	for i, ci := range groupIdx {
		id[i] = row[ci].String()
	}
	vals := make([]datacube.MeasureValue, len(s.exactMeasureIdx))
	for i, ci := range s.exactMeasureIdx {
		v, ok := row[ci].AsFloat()
		vals[i] = datacube.MeasureValue{V: v, OK: ok}
	}
	// The cube must never silently diverge from the base relation: any
	// feed error (impossible for a well-formed row, but defensive) drops
	// the cube entirely rather than leaving it subtly wrong.
	if err := s.exact.AddMeasured(id, vals); err != nil {
		s.exact = nil
	}
}

// syncExactEpoch publishes that the cube is synchronized at epoch e.
// Monotonic: a concurrent insert that observed a later epoch wins, so
// exactEpoch can never regress below the freshest proven sync point.
func (s *Synopsis) syncExactEpoch(e uint64) {
	for {
		cur := s.exactEpoch.Load()
		if cur >= e || s.exactEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// ExactCoverage reports whether the synopsis currently holds a fresh
// exact cube (diagnostics and tests).
func (s *Synopsis) ExactCoverage() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.exact != nil && s.exactEpoch.Load() == s.epoch.Load()
}

// ExactPartials answers a direct-estimation request entirely from the
// exact cube: one GroupPartial per non-empty group carrying only exact
// mass (ExactSum, ExactCount), which Finalize turns into zero-width
// estimates. groupCols and aggCol are resolved base-schema ordinals (the
// same ones the sample path scans), so exact and sampled answers agree
// on keys and semantics: group keys are the rendered values joined in
// request order, and groups whose aggregate column is entirely NULL are
// omitted exactly as the sample path drops them.
//
// ok is false — and the caller must fall back to the sample — when the
// cube is missing or stale, the grouping is not a subset of G, or the
// aggregate column is not a tracked measure.
func (s *Synopsis) ExactPartials(groupCols []int, aggCol int) ([]estimate.GroupPartial, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.exact == nil || s.exactEpoch.Load() != s.epoch.Load() {
		return nil, false
	}
	measure, ok := s.exactMeasureName[aggCol]
	if !ok {
		return nil, false
	}
	// Map each requested column to its position in G; the projection mask
	// selects those positions, and perm rebuilds keys in request order
	// from the cube's G-ordered key parts.
	mask := uint32(0)
	positions := make([]int, len(groupCols))
	for i, ci := range groupCols {
		pos, ok := s.exactGroupPos[ci]
		if !ok {
			return nil, false
		}
		positions[i] = pos
		mask |= 1 << uint(pos)
	}
	// Rank the *distinct* selected positions in ascending G order — the
	// order GroupID.Project emits key parts in. Duplicate requested
	// columns map to the same part.
	selected := append([]int(nil), positions...)
	sort.Ints(selected)
	rank := make(map[int]int, len(selected))
	for _, pos := range selected {
		if _, seen := rank[pos]; !seen {
			rank[pos] = len(rank)
		}
	}

	var out []estimate.GroupPartial
	found := s.exact.MeasureGroupsUnder(mask, measure, func(key string, count int64, sum float64, nonNull int64) {
		if nonNull == 0 {
			// Every row's aggregate value is NULL: the sample path never
			// observes a passing row for this group and drops it; match.
			return
		}
		outKey := key
		if len(groupCols) == 0 {
			outKey = ""
		} else {
			parts := strings.Split(key, datacube.KeySep)
			ordered := make([]string, len(groupCols))
			for i, pos := range positions {
				ordered[i] = parts[rank[pos]]
			}
			outKey = strings.Join(ordered, datacube.KeySep)
		}
		out = append(out, estimate.GroupPartial{
			Key:        outKey,
			ExactSum:   sum,
			ExactCount: float64(nonNull),
			Lo:         math.Inf(1),
			Hi:         math.Inf(-1),
		})
	})
	if !found {
		return nil, false
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, true
}
