package aqua

import (
	"fmt"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/rewrite"
)

// UpdateScaleFactor propagates a changed scale factor for one finest
// group into the materialized sample relations of the given rewrite
// layout. This isolates the maintenance-cost tradeoff Section 5.2
// identifies but does not measure: the Integrated layout stores the
// ScaleFactor on every tuple, so "insertion or deletion of tuples ...
// requires updating the ScaleFactor of all tuples in the affected
// groups", whereas the Normalized layouts confine the change to a
// single row of the (much smaller) auxiliary relation.
//
// The group is identified by its stratum key (see Synopsis.Sample). The
// returned count is the number of relation rows touched — the quantity
// BenchmarkAblationUpdateCost compares across layouts.
func (a *Aqua) UpdateScaleFactor(table string, strat rewrite.Strategy, groupKey string, sf float64) (int, error) {
	s, ok := a.Synopsis(table)
	if !ok {
		return 0, fmt.Errorf("aqua: no synopsis for %q", table)
	}
	stratum, ok := s.Sample().Get(groupKey)
	if !ok {
		return 0, fmt.Errorf("aqua: unknown group %q", groupKey)
	}
	if len(stratum.Items) == 0 {
		return 0, nil
	}
	newSF := engine.NewFloat(sf)

	switch strat {
	case rewrite.Integrated, rewrite.NestedIntegrated:
		// Every sampled tuple of the group carries the SF.
		rel, ok := a.cat.Lookup(s.integratedName)
		if !ok {
			return 0, fmt.Errorf("aqua: sample relation %q missing", s.integratedName)
		}
		sfIdx := rel.Schema.Index("sf")
		n, err := rel.Update(
			func(row engine.Row) bool {
				// The integrated row is the base row plus sf; the
				// grouping extractor works on the prefix.
				return s.grouping.Key(row) == groupKey
			},
			func(row engine.Row) engine.Row {
				next := row.Clone()
				next[sfIdx] = newSF
				return next
			},
		)
		if err == nil {
			s.bumpEpoch()
		}
		return n, err
	case rewrite.Normalized:
		rel, ok := a.cat.Lookup(s.normAuxName)
		if !ok {
			return 0, fmt.Errorf("aqua: aux relation %q missing", s.normAuxName)
		}
		sfIdx := rel.Schema.Index("sf")
		// The aux row holds the grouping column values; match on them.
		want := make(engine.Row, 0, len(s.cfg.GroupCols))
		for _, ci := range s.grouping.Columns() {
			want = append(want, stratum.Items[0][ci])
		}
		n, err := rel.Update(
			func(row engine.Row) bool {
				for i, v := range want {
					if !row[i].Equal(v) {
						return false
					}
				}
				return true
			},
			func(row engine.Row) engine.Row {
				next := row.Clone()
				next[sfIdx] = newSF
				return next
			},
		)
		if err == nil {
			s.bumpEpoch()
		}
		return n, err
	case rewrite.KeyNormalized:
		auxRel, ok := a.cat.Lookup(s.keyAuxName)
		if !ok {
			return 0, fmt.Errorf("aqua: aux relation %q missing", s.keyAuxName)
		}
		id, ok := s.gid(groupKey)
		if !ok {
			return 0, fmt.Errorf("aqua: group %q has no gid", groupKey)
		}
		gid := engine.NewInt(id)
		sfIdx := auxRel.Schema.Index("sf")
		n, err := auxRel.Update(
			func(row engine.Row) bool { return row[0].Equal(gid) },
			func(row engine.Row) engine.Row {
				next := row.Clone()
				next[sfIdx] = newSF
				return next
			},
		)
		if err == nil {
			s.bumpEpoch()
		}
		return n, err
	default:
		return 0, fmt.Errorf("aqua: unknown rewrite strategy %v", strat)
	}
}
