// Package aqua is the approximate-query middleware of Section 2: it
// precomputes congressional (or House/Senate/Basic Congress) synopses of
// warehouse relations, stores them as regular relations in the backing
// engine, intercepts user queries, rewrites them with one of the
// Section 5 strategies, executes the rewrite, and returns approximate
// answers — optionally annotated with error-bound columns.
package aqua

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/metrics"
	"github.com/approxdb/congress/internal/qcache"
	"github.com/approxdb/congress/internal/rewrite"
	"github.com/approxdb/congress/internal/sample"
	"github.com/approxdb/congress/internal/sqlparse"
)

// Config configures one synopsis over one base relation.
type Config struct {
	// Table is the base relation name.
	Table string
	// GroupCols is the grouping attribute set G.
	GroupCols []string
	// Strategy is the allocation strategy (default Congress).
	Strategy core.Strategy
	// Space is the synopsis budget X in tuples.
	Space int
	// Rewrite is the default rewriting strategy for answering queries
	// (default Integrated, the paper's recommendation for read-mostly
	// warehouses).
	Rewrite rewrite.Strategy
	// WithErrorColumns appends Aqua error-bound columns to answers
	// (Integrated rewriting only).
	WithErrorColumns bool
	// VarianceColumn, when set, enables the Section 8 multi-criteria
	// extension: a Neyman weight vector over the named aggregate
	// column's per-group variance is combined into the allocation, so
	// high-variance groups receive extra sample space.
	VarianceColumn string
	// TargetGroupings, when set, specializes the synopsis to a known
	// query mix: instead of Strategy's vectors, only the listed
	// groupings (each a subset of GroupCols; nil/empty slice means the
	// no-group-by query) compete for space. See the paper's Section
	// 4.5-4.7 discussion of specializing to query subsets.
	TargetGroupings [][]string
	// Recency, when set, applies the Section 8 ageing bias: groups are
	// weighted by how recent their value in Recency.Column is, so fresh
	// data is over-represented in the sample relative to old data.
	Recency *Recency
	// DeltaMaintenance selects the reservoir+delta Congress maintenance
	// algorithm (the Section 6 generalization of Basic Congress)
	// instead of the default Eq. 8 probability-decay maintainer. Only
	// meaningful for the Congress strategy.
	DeltaMaintenance bool
	// BuildWorkers shards the one-pass construction scan (data-cube
	// pre-scan and reservoir materialization) across this many
	// goroutines. Values <= 1 build serially. The sample drawn is
	// deterministic for a fixed (Seed, BuildWorkers) pair; different
	// worker counts draw different, equally valid samples. Use
	// core.DefaultWorkers() to saturate the machine.
	BuildWorkers int
	// Seed fixes the sampling randomness (0 = seed 1).
	Seed int64
}

// Aqua is the middleware instance sitting atop one engine catalog.
//
// Aqua is safe for concurrent use: the synopsis registry is guarded by
// an RWMutex, and each Synopsis serializes its own mutations (maintainer
// feeds, refreshes) behind a per-synopsis lock while queries read
// immutable sample snapshots.
type Aqua struct {
	cat *engine.Catalog
	tel *metrics.Telemetry

	// parse and plans memoize query parsing and per-strategy rewriting;
	// both are pure functions of the query text (plus the synopsis
	// relation names), so they need no invalidation. results is the
	// epoch-invalidated answer cache — nil (off) unless a warehouse
	// front-end opts in via EnableResultCache, so experiment harnesses
	// measuring scan cost through Answer are never silently cached.
	parse   *sqlparse.ParseCache
	plans   *rewrite.PlanCache
	results atomic.Pointer[qcache.Cache]

	mu       sync.RWMutex
	synopses map[string]*Synopsis // by lower-cased base table name
}

// New creates an Aqua instance over the catalog (the "warehouse DBMS").
func New(cat *engine.Catalog) *Aqua {
	return &Aqua{
		cat:      cat,
		tel:      metrics.NewTelemetry(),
		parse:    sqlparse.NewParseCache(defaultPlanEntries),
		plans:    rewrite.NewPlanCache(defaultPlanEntries),
		synopses: make(map[string]*Synopsis),
	}
}

// Catalog returns the backing engine catalog.
func (a *Aqua) Catalog() *engine.Catalog { return a.cat }

// Telemetry returns the middleware's operational counters.
func (a *Aqua) Telemetry() *metrics.Telemetry { return a.tel }

// Synopsis is one materialized biased sample with the relations backing
// all four rewrite strategies, plus an incremental maintainer that keeps
// the sample up to date under inserts without touching the base table.
//
// The mutex guards the mutable state: the current sample snapshot and
// gid assignment (swapped wholesale by Refresh) and the maintainer
// (mutated by every Insert). Sample snapshots are immutable once
// published, so readers that grab the pointer under the lock may keep
// using it lock-free afterwards.
type Synopsis struct {
	cfg      Config
	grouping *core.Grouping
	alloc    *core.Allocation
	tel      *metrics.Telemetry

	// id is unique across every synopsis ever created in the process and
	// epoch counts data-changing events (maintainer feeds, refreshes,
	// scale-factor updates). Together they version cached answers: a
	// result cached under (id, epoch) becomes unreachable the moment the
	// epoch advances, and ids prevent a re-created synopsis for the same
	// table from colliding with entries of its predecessor.
	id    uint64
	epoch atomic.Uint64

	mu       sync.RWMutex
	sample   *sample.Stratified[engine.Row]
	gidByKey map[string]int64
	pending  int64 // maintainer inserts not yet surfaced by Refresh

	maintainer core.Maintainer

	// exact is the hybrid estimator's exact-aggregate cube (see
	// hybrid.go): SUM/COUNT prefixes over G for every numeric base
	// column, fed under mu by the same insert stream as the maintainer.
	// The pointer is fixed at creation/restore (nil when unavailable);
	// contents are guarded by mu. exactEpoch is the synopsis epoch the
	// cube was last proven synchronized at — ExactPartials answers only
	// while exactEpoch == epoch. The ordinal maps are immutable after
	// creation.
	exact            *datacube.Cube
	exactEpoch       atomic.Uint64
	exactMeasureIdx  []int          // schema ordinals of tracked measures
	exactMeasureName map[int]string // schema ordinal -> measure name
	exactGroupPos    map[int]int    // schema ordinal -> position in G

	// Relations registered in the catalog, one layout per rewrite
	// family. Names are fixed at creation.
	integratedName string // base columns + sf
	normName       string // base columns only
	normAuxName    string // group columns + sf
	keyName        string // base columns + gid
	keyAuxName     string // gid + sf
}

// CreateSynopsis builds a synopsis: scans the base relation, allocates
// sample space with the configured strategy, materializes the stratified
// sample, and registers the sample relations for all four rewrite
// strategies. It also arms an incremental maintainer seeded with the
// same strategy so future inserts keep the synopsis fresh.
func (a *Aqua) CreateSynopsis(cfg Config) (*Synopsis, error) {
	start := time.Now()
	if cfg.Space <= 0 {
		return nil, fmt.Errorf("aqua: synopsis space must be positive")
	}
	rel, ok := a.cat.Lookup(cfg.Table)
	if !ok {
		return nil, fmt.Errorf("aqua: %w %q", ErrUnknownTable, cfg.Table)
	}
	g, err := core.NewGrouping(rel.Schema, cfg.GroupCols)
	if err != nil {
		return nil, err
	}
	// Estimate group keys join rendered grouping values with
	// datacube.KeySep (U+001F), so a value containing the separator would
	// silently merge or split groups. Table.Insert rejects such rows once
	// a synopsis exists; rows that arrived earlier — or through CSV and
	// generator paths that bypass Insert — are caught here, before any
	// sample is built over them.
	if err := rejectReservedSeparator(rel, g, cfg.Table); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	cube, err := core.BuildCubeParallel(rel, g, cfg.BuildWorkers)
	if err != nil {
		return nil, err
	}
	if cube.Total() == 0 {
		return nil, fmt.Errorf("aqua: cannot build a synopsis over empty table %q", cfg.Table)
	}

	// Assemble the Figure 19 weight-vector table: either the chosen
	// strategy's vectors or, when the query mix is known, one vector
	// per targeted grouping — plus the optional variance criterion.
	X := float64(cfg.Space)
	var vecs []core.WeightVector
	if len(cfg.TargetGroupings) > 0 {
		for _, attrs := range cfg.TargetGroupings {
			mask, err := core.MaskFor(cube, attrs)
			if err != nil {
				return nil, err
			}
			vecs = append(vecs, core.GroupingVector(cube, X, mask))
		}
	} else {
		vecs, err = core.StrategyVectors(cfg.Strategy, cube, X)
		if err != nil {
			return nil, err
		}
	}
	if cfg.VarianceColumn != "" {
		sds, err := core.GroupStdDevs(rel, g, cfg.VarianceColumn)
		if err != nil {
			return nil, err
		}
		vecs = append(vecs, core.NeymanVector(cube, X, sds))
	}
	if cfg.Recency != nil {
		rv, err := recencyVector(cfg.Recency, rel, g, cube, X)
		if err != nil {
			return nil, err
		}
		vecs = append(vecs, rv)
	}
	alloc := core.CombineVectors(X, vecs...)
	var st *sample.Stratified[engine.Row]
	if cfg.BuildWorkers > 1 {
		st, err = core.MaterializeParallel(rel, g, cube, alloc, seed, cfg.BuildWorkers)
	} else {
		st, err = core.Materialize(rel, g, cube, alloc, rng)
	}
	if err != nil {
		return nil, err
	}

	s := &Synopsis{cfg: cfg, grouping: g, sample: st, alloc: alloc, tel: a.tel, id: synopsisSeq.Add(1)}
	s.nameTables()
	if err := s.materialize(a.cat, rel.Schema); err != nil {
		return nil, err
	}

	// Arm the matching maintainer and seed it with the current table
	// contents, so later Refresh snapshots cover the whole relation —
	// this pass is exactly the paper's one-pass construction.
	switch cfg.Strategy {
	case core.House:
		s.maintainer, err = core.NewHouseMaintainer(g, cfg.Space, rng)
	case core.Senate:
		s.maintainer, err = core.NewSenateMaintainer(g, cfg.Space, rng)
	case core.BasicCongress:
		s.maintainer, err = core.NewBasicCongressMaintainer(g, cfg.Space, rng)
	default:
		if cfg.DeltaMaintenance {
			s.maintainer, err = core.NewCongressDeltaMaintainer(g, cfg.Space, rng)
		} else {
			s.maintainer, err = core.NewCongressMaintainer(g, cfg.Space, rng)
		}
	}
	if err != nil {
		return nil, err
	}
	// The exact cube shares the seeding pass below, so the hybrid
	// estimator is live from creation. A build failure (cannot happen for
	// a schema that passed NewGrouping, but defensive) just disables
	// hybrid answering; the sample path is unaffected.
	if exact, ords, byOrd, groupPos, cerr := newExactCube(rel.Schema, g.Attrs); cerr == nil {
		s.exact, s.exactMeasureIdx, s.exactMeasureName, s.exactGroupPos = exact, ords, byOrd, groupPos
	}
	rows := rel.Rows()
	for _, row := range rows {
		s.maintainer.Insert(row)
		s.feedExactLocked(row)
	}

	// Two construction scans (cube + materialize) plus the maintainer
	// seeding pass read the whole relation.
	a.tel.AddRowsScanned(3 * int64(len(rows)))
	a.tel.AddStrataTouched(int64(st.NumStrata()))
	a.tel.ObserveBuild(time.Since(start))

	a.mu.Lock()
	a.synopses[strings.ToLower(cfg.Table)] = s
	a.mu.Unlock()
	return s, nil
}

// rejectReservedSeparator fails synopsis creation when any grouping
// value already in rel contains datacube.KeySep, the byte composite
// group keys are joined with. The error wraps ErrBadQuery for errors.Is
// classification: the data violates the public key-separator contract.
func rejectReservedSeparator(rel *engine.Relation, g *core.Grouping, table string) error {
	cols := g.Columns()
	for _, row := range rel.Rows() {
		for _, ci := range cols {
			if ci < len(row) && row[ci].K == engine.KindString &&
				strings.Contains(row[ci].S, datacube.KeySep) {
				return fmt.Errorf("%w: grouping value %q in table %q contains the reserved key separator U+001F",
					ErrBadQuery, row[ci].S, table)
			}
		}
	}
	return nil
}

// Synopsis returns the synopsis for a base table, if any.
func (a *Aqua) Synopsis(table string) (*Synopsis, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s, ok := a.synopses[strings.ToLower(table)]
	return s, ok
}

// Synopses returns every registered synopsis, sorted by base table name
// so listings (the server's /v1/synopses, tests) are deterministic.
func (a *Aqua) Synopses() []*Synopsis {
	a.mu.RLock()
	out := make([]*Synopsis, 0, len(a.synopses))
	for _, s := range a.synopses {
		out = append(out, s)
	}
	a.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i].cfg.Table) < strings.ToLower(out[j].cfg.Table)
	})
	return out
}

func (s *Synopsis) nameTables() {
	base := strings.ToLower(s.cfg.Table)
	s.integratedName = "cs_" + base
	s.normName = "csn_" + base
	s.normAuxName = "csn_" + base + "_aux"
	s.keyName = "csk_" + base
	s.keyAuxName = "csk_" + base + "_aux"
}

// materialize registers the sample relations for every rewrite layout.
func (s *Synopsis) materialize(cat *engine.Catalog, baseSchema *engine.Schema) error {
	// Stable GID per stratum.
	keys := s.sample.Keys()
	gid := make(map[string]int64, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		gid[k] = int64(i + 1)
	}
	s.gidByKey = gid

	sfCol := engine.Column{Name: "sf", Kind: engine.KindFloat}
	gidCol := engine.Column{Name: "gid", Kind: engine.KindInt}

	integrated := engine.NewRelation(s.integratedName,
		engine.MustSchema(append(append([]engine.Column(nil), baseSchema.Cols...), sfCol)...))
	norm := engine.NewRelation(s.normName,
		engine.MustSchema(append([]engine.Column(nil), baseSchema.Cols...)...))
	keyed := engine.NewRelation(s.keyName,
		engine.MustSchema(append(append([]engine.Column(nil), baseSchema.Cols...), gidCol)...))

	// Aux relations: grouping columns + sf, and gid + sf.
	groupColDefs := make([]engine.Column, 0, len(s.cfg.GroupCols)+1)
	for _, gc := range s.cfg.GroupCols {
		idx := baseSchema.Index(gc)
		groupColDefs = append(groupColDefs, baseSchema.Cols[idx])
	}
	normAux := engine.NewRelation(s.normAuxName,
		engine.MustSchema(append(append([]engine.Column(nil), groupColDefs...), sfCol)...))
	keyAux := engine.NewRelation(s.keyAuxName,
		engine.MustSchema(gidCol, sfCol))

	var firstErr error
	insert := func(rel *engine.Relation, row engine.Row) {
		if err := rel.Insert(row); err != nil && firstErr == nil {
			firstErr = err
		}
	}

	groupIdx := make([]int, len(s.cfg.GroupCols))
	for i, gc := range s.cfg.GroupCols {
		groupIdx[i] = baseSchema.Index(gc)
	}

	s.sample.Each(func(str *sample.Stratum[engine.Row]) {
		if len(str.Items) == 0 {
			return
		}
		sf := engine.NewFloat(str.ScaleFactor())
		id := engine.NewInt(gid[str.Key])
		for _, row := range str.Items {
			insert(integrated, append(row.Clone(), sf))
			insert(norm, row.Clone())
			insert(keyed, append(row.Clone(), id))
		}
		auxRow := make(engine.Row, 0, len(groupIdx)+1)
		for _, gi := range groupIdx {
			auxRow = append(auxRow, str.Items[0][gi])
		}
		insert(normAux, append(auxRow, sf))
		insert(keyAux, engine.Row{id, sf})
	})
	if firstErr != nil {
		return firstErr
	}

	cat.Register(integrated)
	cat.Register(norm)
	cat.Register(normAux)
	cat.Register(keyed)
	cat.Register(keyAux)
	return nil
}

// Tables returns the rewrite.Tables wiring for the given strategy.
func (s *Synopsis) Tables(strat rewrite.Strategy) rewrite.Tables {
	t := rewrite.Tables{
		Base:             s.cfg.Table,
		GroupCols:        s.cfg.GroupCols,
		WithErrorColumns: s.cfg.WithErrorColumns,
	}
	switch strat {
	case rewrite.Integrated, rewrite.NestedIntegrated:
		t.Sample = s.integratedName
	case rewrite.Normalized:
		t.Sample = s.normName
		t.Aux = s.normAuxName
	case rewrite.KeyNormalized:
		t.Sample = s.keyName
		t.Aux = s.keyAuxName
	}
	return t
}

// Sample exposes the stratified sample backing the synopsis. The
// returned snapshot is immutable — a later Refresh publishes a new
// snapshot rather than mutating this one — so callers may read it
// without further synchronization.
func (s *Synopsis) Sample() *sample.Stratified[engine.Row] {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sample
}

// AllocationRow is one line of the Figure 5-style allocation table.
type AllocationRow struct {
	// Group holds the rendered grouping-column values of the finest
	// group.
	Group []string
	// Population is n_g.
	Population int64
	// PreScale is the row-wise max over weight vectors before scaling.
	PreScale float64
	// Target is the final fractional allocation.
	Target float64
	// Actual is the number of tuples materialized in the stratum.
	Actual int
}

// AllocationTable reports how the synopsis's space budget was divided
// among the finest groups — the per-synopsis analogue of the paper's
// Figure 5 — sorted by descending target.
func (s *Synopsis) AllocationTable() []AllocationRow {
	groupIdx := s.grouping.Columns()
	st := s.Sample()
	out := make([]AllocationRow, 0, st.NumStrata())
	st.Each(func(str *sample.Stratum[engine.Row]) {
		row := AllocationRow{
			Population: str.Population,
			PreScale:   s.alloc.PreScale[str.Key],
			Target:     s.alloc.Targets[str.Key],
			Actual:     len(str.Items),
		}
		if len(str.Items) > 0 {
			for _, ci := range groupIdx {
				row.Group = append(row.Group, str.Items[0][ci].String())
			}
		}
		out = append(out, row)
	})
	// Total order (target desc, then group, then population) so repeated
	// calls — and hence API responses and tests — render identically.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Target != out[j].Target {
			return out[i].Target > out[j].Target
		}
		gi, gj := fmt.Sprint(out[i].Group), fmt.Sprint(out[j].Group)
		if gi != gj {
			return gi < gj
		}
		return out[i].Population > out[j].Population
	})
	return out
}

// Allocation exposes the space allocation that produced the synopsis.
func (s *Synopsis) Allocation() *core.Allocation { return s.alloc }

// gid returns the stable group id assigned to a finest-group key by the
// latest materialization.
func (s *Synopsis) gid(key string) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.gidByKey[key]
	return id, ok
}

// Grouping exposes the grouping G of the synopsis.
func (s *Synopsis) Grouping() *core.Grouping { return s.grouping }

// Table returns the base relation name the synopsis covers.
func (s *Synopsis) Table() string { return s.cfg.Table }

// GroupCols returns a copy of the grouping attribute set G.
func (s *Synopsis) GroupCols() []string {
	return append([]string(nil), s.cfg.GroupCols...)
}

// Strategy returns the allocation strategy the synopsis was built with.
func (s *Synopsis) Strategy() core.Strategy { return s.cfg.Strategy }

// Space returns the synopsis space budget X in tuples.
func (s *Synopsis) Space() int { return s.cfg.Space }

// DefaultRewrite returns the rewriting strategy Answer uses for this
// synopsis.
func (s *Synopsis) DefaultRewrite() rewrite.Strategy { return s.cfg.Rewrite }

// Pending returns the number of maintainer inserts not yet surfaced by a
// Refresh.
func (s *Synopsis) Pending() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pending
}

// Maintainer exposes the incremental maintainer armed at creation.
// Maintainers are not internally synchronized: callers driving one
// directly must not race with concurrent Insert or Refresh on the same
// synopsis.
func (s *Synopsis) Maintainer() core.Maintainer { return s.maintainer }

// Insert feeds a newly inserted warehouse tuple to the synopsis
// maintainer (the base relation is assumed to be updated by the caller;
// Aqua never re-reads it, per Section 6). Safe for concurrent use with
// Refresh and with readers.
func (s *Synopsis) Insert(row engine.Row) {
	s.mu.Lock()
	s.maintainer.Insert(row)
	s.feedExactLocked(row)
	hasExact := s.exact != nil
	s.pending++
	s.mu.Unlock()
	s.tel.MaintainerInsert()
	e := s.bumpEpoch()
	if hasExact {
		// The insert fed both the base relation (caller) and the cube, so
		// the cube is synchronized at the epoch this insert produced. Any
		// interleaved non-insert mutation bumps the epoch past e and wins:
		// syncExactEpoch never advances past the freshest proven point.
		s.syncExactEpoch(e)
	}
}

// Epoch returns the synopsis's current data version. Every maintainer
// feed, refresh, and scale-factor update advances it; cached answers are
// keyed by epoch so an advance invalidates them all at once.
func (s *Synopsis) Epoch() uint64 { return s.epoch.Load() }

// ID returns the process-unique synopsis id (part of cache keys).
func (s *Synopsis) ID() uint64 { return s.id }

// bumpEpoch advances the data version and returns the new epoch. It
// must run only after the data change is visible (e.g. after Refresh has
// registered the new sample relations): a reader that observes the new
// epoch is then guaranteed to also observe the new data, so a cached
// entry keyed by epoch E can never hold data older than version E. The
// converse race — a reader that loaded epoch E just before the bump
// caches version E+1 data under key E — only ever stores *fresher* data
// than the key implies, which is harmless.
//
// Callers that are NOT insert feeds (Refresh, UpdateScaleFactor,
// restore) leave exactEpoch behind on purpose: the advance marks the
// exact cube unproven, disabling hybrid answering until the next insert
// re-synchronizes it (see hybrid.go).
func (s *Synopsis) bumpEpoch() uint64 {
	e := s.epoch.Add(1)
	s.tel.CacheInvalidation()
	return e
}

// synopsisSeq hands out process-unique synopsis ids.
var synopsisSeq atomic.Uint64

// Refresh re-materializes the sample relations from the maintainer's
// current snapshot, making maintained state visible to queries. Safe for
// concurrent use with Insert and with readers; concurrent Refresh calls
// on the same synopsis are serialized.
func (a *Aqua) Refresh(table string) error {
	start := time.Now()
	s, ok := a.Synopsis(table)
	if !ok {
		return fmt.Errorf("%w %q", ErrNoSynopsis, table)
	}
	rel, ok := a.cat.Lookup(s.cfg.Table)
	if !ok {
		return fmt.Errorf("aqua: base table %q vanished", s.cfg.Table)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.maintainer.Snapshot()
	if err != nil {
		return err
	}
	s.sample = st
	if err := s.materialize(a.cat, rel.Schema); err != nil {
		return err
	}
	drained := s.pending
	s.pending = 0
	// Bump strictly after materialize has registered the new sample
	// relations (see bumpEpoch's ordering contract).
	s.bumpEpoch()
	a.tel.MaintainerDrained(drained)
	a.tel.AddStrataTouched(int64(st.NumStrata()))
	a.tel.ObserveRefresh(time.Since(start))
	return nil
}

// Answer rewrites the query with the synopsis's default strategy and
// executes it, returning the approximate answer.
func (a *Aqua) Answer(query string) (*engine.Result, error) {
	return a.AnswerCtx(context.Background(), query)
}

// AnswerCtx is Answer under a context: the deadline or cancellation is
// observed inside the rewritten query's row-scan loops, so an abandoned
// request stops scanning promptly.
func (a *Aqua) AnswerCtx(ctx context.Context, query string) (*engine.Result, error) {
	res, _, err := a.AnswerQuery(ctx, query, QueryOptions{})
	return res, err
}

// AnswerWith answers using an explicit rewriting strategy (used by the
// Section 7.3 rewriting experiments).
func (a *Aqua) AnswerWith(query string, strat rewrite.Strategy) (*engine.Result, error) {
	return a.AnswerWithCtx(context.Background(), query, strat)
}

// AnswerWithCtx is AnswerWith under a context (see AnswerCtx).
func (a *Aqua) AnswerWithCtx(ctx context.Context, query string, strat rewrite.Strategy) (*engine.Result, error) {
	res, _, err := a.AnswerQuery(ctx, query, QueryOptions{Strategy: strat, UseStrategy: true})
	return res, err
}

// RewriteOnly returns the rewritten SQL without executing it (for
// inspection and the CLI's EXPLAIN-style mode).
func (a *Aqua) RewriteOnly(query string, strat rewrite.Strategy) (string, error) {
	s, stmt, fp, err := a.route(query)
	if err != nil {
		return "", err
	}
	out, err := a.plans.Rewrite(stmt, fp, strat, s.Tables(strat))
	if err != nil {
		return "", err
	}
	return out.String(), nil
}

// Exact executes the query against the base relation, bypassing the
// synopsis (ground truth for experiments).
func (a *Aqua) Exact(query string) (*engine.Result, error) {
	return a.ExactCtx(context.Background(), query)
}

// ExactCtx is Exact under a context: parse errors are wrapped in
// ErrBadQuery and the deadline is observed inside the engine's scan
// loops.
func (a *Aqua) ExactCtx(ctx context.Context, query string) (*engine.Result, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return engine.ExecuteCtx(ctx, a.cat, stmt)
}

// route parses (through the parse cache) and resolves the target
// synopsis. The returned statement is shared with other callers of the
// same query text and must not be modified; the fingerprint is the
// normalized cache key for the plan and result caches.
func (a *Aqua) route(query string) (*Synopsis, *sqlparse.SelectStmt, string, error) {
	stmt, fp, err := a.parse.Parse(query)
	if err != nil {
		return nil, nil, "", fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if len(stmt.From) != 1 || stmt.From[0].Subquery != nil {
		return nil, nil, "", fmt.Errorf("%w: approximate answering supports single-table queries", ErrBadQuery)
	}
	s, ok := a.Synopsis(stmt.From[0].Name)
	if !ok {
		return nil, nil, "", fmt.Errorf("%w %q", ErrNoSynopsis, stmt.From[0].Name)
	}
	return s, stmt, fp, nil
}

func (a *Aqua) answer(ctx context.Context, s *Synopsis, stmt *sqlparse.SelectStmt, fp string, strat rewrite.Strategy) (*engine.Result, error) {
	rewritten, err := a.plans.Rewrite(stmt, fp, strat, s.Tables(strat))
	if err != nil {
		return nil, err
	}
	return engine.ExecuteCtx(ctx, a.cat, rewritten)
}
