package aqua

import (
	"math/rand"
	"testing"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/metrics"
)

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }

// starFixture builds a small star schema: orders(fact) -> customers,
// products. Nation lives only on customers; category only on products.
func starFixture(t testing.TB) (*Aqua, *engine.Catalog) {
	t.Helper()
	cat := engine.NewCatalog()

	customers := engine.NewRelation("customers", engine.MustSchema(
		engine.Column{Name: "c_id", Kind: engine.KindInt},
		engine.Column{Name: "nation", Kind: engine.KindString},
	))
	nations := []string{"US", "US", "US", "DE", "DE", "JP"}
	for i, n := range nations {
		customers.Insert(engine.Row{engine.NewInt(int64(i)), engine.NewString(n)})
	}
	cat.Register(customers)

	products := engine.NewRelation("products", engine.MustSchema(
		engine.Column{Name: "p_id", Kind: engine.KindInt},
		engine.Column{Name: "category", Kind: engine.KindString},
		engine.Column{Name: "nation", Kind: engine.KindString}, // collides with customers.nation
	))
	cats := []string{"toys", "tools", "toys"}
	for i, c := range cats {
		products.Insert(engine.Row{engine.NewInt(int64(i)), engine.NewString(c), engine.NewString("origin" + c)})
	}
	cat.Register(products)

	orders := engine.NewRelation("orders", engine.MustSchema(
		engine.Column{Name: "o_id", Kind: engine.KindInt},
		engine.Column{Name: "cust", Kind: engine.KindInt},
		engine.Column{Name: "prod", Kind: engine.KindInt},
		engine.Column{Name: "amount", Kind: engine.KindFloat},
	))
	rng := newTestRNG()
	for i := 0; i < 20000; i++ {
		// Customer choice skewed: US customers get most orders.
		c := rng.Intn(len(nations))
		if rng.Intn(4) > 0 {
			c = rng.Intn(3) // a US customer
		}
		p := rng.Intn(len(cats))
		orders.Insert(engine.Row{
			engine.NewInt(int64(i)),
			engine.NewInt(int64(c)),
			engine.NewInt(int64(p)),
			engine.NewFloat(10 + rng.Float64()*90),
		})
	}
	cat.Register(orders)
	return New(cat), cat
}

var spec = JoinSpec{
	Name: "orders_wide",
	Fact: "orders",
	Dims: []DimJoin{
		{Table: "customers", FactKey: "cust", DimKey: "c_id"},
		{Table: "products", FactKey: "prod", DimKey: "p_id"},
	},
}

func TestMaterializeJoinShape(t *testing.T) {
	a, cat := starFixture(t)
	wide, err := a.MaterializeJoin(spec)
	if err != nil {
		t.Fatal(err)
	}
	if wide.NumRows() != 20000 {
		t.Fatalf("wide rows %d", wide.NumRows())
	}
	// Columns: fact 4 + nation + (category + prefixed nation).
	names := wide.Schema.Names()
	want := []string{"o_id", "cust", "prod", "amount", "nation", "category", "products_nation"}
	if len(names) != len(want) {
		t.Fatalf("wide schema %v", names)
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("column %d = %q, want %q", i, names[i], w)
		}
	}
	if _, ok := cat.Lookup("orders_wide"); !ok {
		t.Error("wide relation not registered")
	}

	// Join correctness: count per nation through SQL on the wide table
	// matches a manual join on the originals.
	res, err := engine.ExecuteSQL(cat, "select nation, count(*) from orders_wide group by nation order by nation")
	if err != nil {
		t.Fatal(err)
	}
	manual, err := engine.ExecuteSQL(cat, `select customers.nation, count(*)
		from orders, customers where orders.cust = customers.c_id
		group by customers.nation order by customers.nation`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(manual.Rows) {
		t.Fatalf("group counts differ: %v vs %v", res.Rows, manual.Rows)
	}
	for i := range res.Rows {
		if res.Rows[i][1].I != manual.Rows[i][1].I {
			t.Errorf("nation %v: wide %v vs manual %v", res.Rows[i][0], res.Rows[i][1], manual.Rows[i][1])
		}
	}
}

func TestCreateJoinSynopsisAnswersDimensionGroupBy(t *testing.T) {
	a, _ := starFixture(t)
	if _, err := a.CreateJoinSynopsis(spec, Config{
		GroupCols: []string{"nation", "category"},
		Strategy:  core.Congress,
		Space:     1200,
		Seed:      2,
	}); err != nil {
		t.Fatal(err)
	}
	q := `select nation, category, sum(amount) from orders_wide group by nation, category`
	exact, err := a.Exact(q)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := a.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := metrics.CompareAnswers(exact, approx, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ge.MissingGroups != 0 {
		t.Errorf("join synopsis missing %d groups", ge.MissingGroups)
	}
	if ge.L1() > 20 {
		t.Errorf("join synopsis mean error %.2f%%", ge.L1())
	}
	// The JP nation is the small group; it must be present and sane.
	found := false
	for _, row := range approx.Rows {
		if row[0].S == "JP" {
			found = true
		}
	}
	if !found {
		t.Error("small dimension group JP missing")
	}
}

func TestMaterializeJoinErrors(t *testing.T) {
	a, cat := starFixture(t)
	bad := []JoinSpec{
		{Name: "", Fact: "orders", Dims: spec.Dims},
		{Name: "w", Fact: "ghost", Dims: spec.Dims},
		{Name: "w", Fact: "orders"},
		{Name: "w", Fact: "orders", Dims: []DimJoin{{Table: "ghost", FactKey: "cust", DimKey: "c_id"}}},
		{Name: "w", Fact: "orders", Dims: []DimJoin{{Table: "customers", FactKey: "ghost", DimKey: "c_id"}}},
		{Name: "w", Fact: "orders", Dims: []DimJoin{{Table: "customers", FactKey: "cust", DimKey: "ghost"}}},
	}
	for i, s := range bad {
		if _, err := a.MaterializeJoin(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}

	// Dangling foreign key.
	orders, _ := cat.Lookup("orders")
	orders.Insert(engine.Row{engine.NewInt(99999), engine.NewInt(12345), engine.NewInt(0), engine.NewFloat(1)})
	if _, err := a.MaterializeJoin(spec); err == nil {
		t.Error("dangling FK accepted")
	}

	// Duplicate dimension key.
	customers, _ := cat.Lookup("customers")
	customers.Insert(engine.Row{engine.NewInt(0), engine.NewString("XX")})
	if _, err := a.MaterializeJoin(spec); err == nil {
		t.Error("duplicate dim key accepted")
	}
}
