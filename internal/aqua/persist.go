package aqua

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// SynopsisState is the serializable state of one Synopsis for durable
// warehouse snapshots: its configuration, the allocation that sized it,
// the materialized stratified sample, and the incremental maintainer's
// complete state. Together with the base relations this reconstructs a
// synopsis whose approximate answers match the exported one exactly
// (the sample rows are identical; only future randomness differs, since
// RNG state is reseeded on restore).
type SynopsisState struct {
	Config  Config
	Alloc   *core.Allocation
	ID      uint64
	Epoch   uint64
	Pending int64
	// Strata is the materialized sample snapshot, sorted by stratum key.
	Strata []*sample.Stratum[engine.Row]
	// Maintainer is the incremental maintainer's state.
	Maintainer *core.MaintainerState
	// ExactCube is the hybrid estimator's exact-aggregate cube, exported
	// only when it was proven synchronized at export time. Nil — and in
	// snapshots written before hybrid estimation existed — restores a
	// synopsis with hybrid answering disabled; everything else works.
	ExactCube *datacube.CubeState
}

// ExportState captures the synopsis's serializable state. The export is
// a consistent cut: it runs under the synopsis lock, so no maintainer
// feed or refresh can interleave.
func (s *Synopsis) ExportState() (*SynopsisState, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sm, ok := s.maintainer.(core.StatefulMaintainer)
	if !ok {
		return nil, fmt.Errorf("aqua: synopsis %q maintainer %T does not support state export", s.cfg.Table, s.maintainer)
	}
	st := &SynopsisState{
		Config:     s.cfg,
		Alloc:      s.alloc,
		ID:         s.id,
		Epoch:      s.epoch.Load(),
		Pending:    s.pending,
		Maintainer: sm.ExportState(),
	}
	if s.exact != nil && s.exactEpoch.Load() == s.epoch.Load() {
		st.ExactCube = s.exact.State()
	}
	s.sample.Each(func(str *sample.Stratum[engine.Row]) {
		st.Strata = append(st.Strata, &sample.Stratum[engine.Row]{
			Key:        str.Key,
			Population: str.Population,
			Items:      append([]engine.Row(nil), str.Items...),
		})
	})
	return st, nil
}

// ExportStates captures every registered synopsis, sorted by base table
// name.
func (a *Aqua) ExportStates() ([]*SynopsisState, error) {
	var out []*SynopsisState
	for _, s := range a.Synopses() {
		st, err := s.ExportState()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// RestoreSynopsis reconstructs a synopsis from exported state and
// registers it (and its sample relations) with the catalog. The base
// relation must already be restored. The synopsis's epoch is set
// strictly above the exported epoch so any cached answer keyed by a
// pre-export epoch can never be served against post-recovery state.
func (a *Aqua) RestoreSynopsis(st *SynopsisState) (*Synopsis, error) {
	if st == nil {
		return nil, fmt.Errorf("aqua: nil synopsis state")
	}
	cfg := st.Config
	rel, ok := a.cat.Lookup(cfg.Table)
	if !ok {
		return nil, fmt.Errorf("aqua: restoring synopsis: %w %q", ErrUnknownTable, cfg.Table)
	}
	g, err := core.NewGrouping(rel.Schema, cfg.GroupCols)
	if err != nil {
		return nil, err
	}
	if st.Alloc == nil {
		return nil, fmt.Errorf("aqua: synopsis state for %q has no allocation", cfg.Table)
	}
	// Reseed restore-side randomness from the wall clock so repeated
	// restarts do not replay the same post-recovery coin flips (the
	// build-time cfg.Seed already fixed the sample itself, which is
	// restored verbatim).
	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(st.ID)<<20))
	maint, err := core.RestoreMaintainer(st.Maintainer, rel.Schema, rng)
	if err != nil {
		return nil, fmt.Errorf("aqua: restoring synopsis for %q: %w", cfg.Table, err)
	}

	smpl := sample.NewStratified[engine.Row]()
	for _, str := range st.Strata {
		smpl.Put(&sample.Stratum[engine.Row]{
			Key:        str.Key,
			Population: str.Population,
			Items:      append([]engine.Row(nil), str.Items...),
		})
	}
	if err := smpl.Validate(); err != nil {
		return nil, fmt.Errorf("aqua: restoring synopsis for %q: %w", cfg.Table, err)
	}

	s := &Synopsis{
		cfg:        cfg,
		grouping:   g,
		alloc:      st.Alloc,
		tel:        a.tel,
		id:         st.ID,
		sample:     smpl,
		pending:    st.Pending,
		maintainer: maint,
	}
	s.epoch.Store(st.Epoch + 1)
	// Rebuild the hybrid exact cube only from a state that carried one
	// (exported fresh); it was synchronized with the snapshot's data cut,
	// so it is synchronized with the restored relation — WAL records
	// replayed after this restore re-feed it through the normal insert
	// path. A legacy or stale-at-export state restores with hybrid
	// answering disabled.
	if st.ExactCube != nil {
		exact, ords, byOrd, groupPos, cerr := newExactCube(rel.Schema, g.Attrs)
		if cerr == nil {
			restored, rerr := datacube.RestoreCube(st.ExactCube)
			if rerr == nil && exact.Merge(restored) == nil {
				s.exact, s.exactMeasureIdx, s.exactMeasureName, s.exactGroupPos = exact, ords, byOrd, groupPos
				s.exactEpoch.Store(st.Epoch + 1)
			}
		}
	}
	bumpSynopsisSeq(st.ID)
	s.nameTables()
	if err := s.materialize(a.cat, rel.Schema); err != nil {
		return nil, err
	}

	a.mu.Lock()
	a.synopses[strings.ToLower(cfg.Table)] = s
	a.mu.Unlock()
	return s, nil
}

// bumpSynopsisSeq raises the process-wide synopsis id sequence to at
// least id, so synopses created after a restore never collide with
// restored ids in cache keys.
func bumpSynopsisSeq(id uint64) {
	for {
		cur := synopsisSeq.Load()
		if cur >= id {
			return
		}
		if synopsisSeq.CompareAndSwap(cur, id) {
			return
		}
	}
}
