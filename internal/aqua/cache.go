package aqua

import (
	"context"
	"fmt"
	"time"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/qcache"
	"github.com/approxdb/congress/internal/rewrite"
)

// defaultPlanEntries bounds the parse and plan caches. Plans are tiny
// (an AST each), so the bound exists only to cap pathological workloads
// that never repeat a query text.
const defaultPlanEntries = 4096

// CacheStatus reports how an answer was produced relative to the result
// cache.
type CacheStatus int

const (
	// CacheBypass: the result cache was disabled or explicitly skipped.
	CacheBypass CacheStatus = iota
	// CacheMiss: the query executed and its answer was cached.
	CacheMiss
	// CacheHit: the answer came from the cache (or a shared in-flight
	// execution of the same query).
	CacheHit
)

// String renders the status as the wire form used by the
// X-Congress-Cache response header.
func (cs CacheStatus) String() string {
	switch cs {
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	default:
		return "bypass"
	}
}

// QueryOptions tunes one AnswerQuery call.
type QueryOptions struct {
	// Strategy overrides the synopsis's default rewriting strategy when
	// UseStrategy is set.
	Strategy    rewrite.Strategy
	UseStrategy bool
	// NoCache skips the result cache for this call: the query executes
	// against the sample and the answer is not stored.
	NoCache bool
}

// EnableResultCache switches on the epoch-invalidated answer cache.
// maxEntries <= 0 disables caching; maxBytes <= 0 means no byte bound.
// Safe to call at any time; in-flight queries finish against whichever
// cache they started with.
func (a *Aqua) EnableResultCache(maxEntries int, maxBytes int64) {
	c := qcache.New(maxEntries, maxBytes, qcache.Events{
		Hit:   a.tel.CacheHit,
		Miss:  a.tel.CacheMiss,
		Evict: a.tel.CacheEviction,
	})
	a.results.Store(c)
}

// ResultCache exposes the active result cache (nil when disabled). The
// warehouse front-end shares it for caching direct estimates.
func (a *Aqua) ResultCache() *qcache.Cache {
	return a.results.Load()
}

// AnswerQuery answers an approximate query through the full cached read
// path: parse cache, plan cache, and — when enabled and not bypassed —
// the result cache. The returned Result may be shared with concurrent
// callers of the same query and must be treated as read-only.
//
// Staleness contract: the synopsis epoch is loaded before execution and
// embedded in the cache key, and every data change bumps the epoch after
// becoming visible, so a cached answer is never older than the synopsis
// state at its key's epoch. See Synopsis.bumpEpoch.
func (a *Aqua) AnswerQuery(ctx context.Context, query string, opts QueryOptions) (*engine.Result, CacheStatus, error) {
	start := time.Now()
	s, stmt, fp, err := a.route(query)
	if err != nil {
		return nil, CacheBypass, err
	}
	strat := s.cfg.Rewrite
	if opts.UseStrategy {
		strat = opts.Strategy
	}
	rc := a.ResultCache()
	if rc == nil || opts.NoCache {
		res, err := a.answer(ctx, s, stmt, fp, strat)
		if err == nil {
			a.tel.ObserveAnswer(time.Since(start))
		}
		return res, CacheBypass, err
	}
	key := resultKey(s, strat, fp)
	v, hit, err := rc.Do(ctx, key, func() (any, int64, error) {
		res, err := a.answer(ctx, s, stmt, fp, strat)
		if err != nil {
			return nil, 0, err
		}
		return res, ResultCost(res), nil
	})
	if err != nil {
		return nil, CacheMiss, err
	}
	a.tel.ObserveAnswer(time.Since(start))
	status := CacheMiss
	if hit {
		status = CacheHit
	}
	return v.(*engine.Result), status, nil
}

// resultKey versions a cached answer by synopsis identity and epoch. The
// epoch MUST be loaded before the query executes: if a concurrent
// refresh lands mid-execution, the fresher answer is stored under the
// pre-refresh key, where it is at worst unreachable — never stale.
func resultKey(s *Synopsis, strat rewrite.Strategy, fingerprint string) string {
	return fmt.Sprintf("q\x00%d\x00%d\x00%d\x00%s", s.id, s.epoch.Load(), int(strat), fingerprint)
}

// ResultCost approximates the resident size of a Result for the cache's
// byte bound: slice/header overhead plus string payloads.
func ResultCost(res *engine.Result) int64 {
	if res == nil {
		return 0
	}
	cost := int64(64)
	for _, c := range res.Columns {
		cost += int64(16 + len(c))
	}
	for _, row := range res.Rows {
		cost += 24
		for _, v := range row {
			cost += int64(32 + len(v.S))
		}
	}
	return cost
}
