package aqua

import (
	"math"
	"testing"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/tpcd"
)

// TestErrorBoundCoverage checks Aqua's 90%-confidence sum_error bounds
// end-to-end: across many independently built synopses, the exact
// per-group sum should fall within estimate ± bound in roughly 90% of
// cases (we assert >= 80% to leave slack for the CLT approximation on
// modest strata).
func TestErrorBoundCoverage(t *testing.T) {
	cat := engine.NewCatalog()
	rel := tpcd.MustGenerate(tpcd.Params{
		TableSize: 20000, NumGroups: 8, GroupSkew: 0.86, Seed: 3,
	})
	cat.Register(rel)

	q := `select l_returnflag, l_linestatus, sum(l_quantity)
		from lineitem group by l_returnflag, l_linestatus
		order by l_returnflag, l_linestatus`
	exact, err := engine.ExecuteSQL(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	exactByKey := map[string]float64{}
	for _, row := range exact.Rows {
		v, _ := row[2].AsFloat()
		exactByKey[row[0].String()+"|"+row[1].String()] = v
	}

	covered, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		a := New(cat)
		if _, err := a.CreateSynopsis(Config{
			Table: "lineitem", GroupCols: tpcd.GroupingAttrs,
			Strategy: core.Congress, Space: 1000,
			WithErrorColumns: true, Seed: int64(trial + 1),
		}); err != nil {
			t.Fatal(err)
		}
		approx, err := a.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		// Columns: flag, status, scaled sum, error1.
		for _, row := range approx.Rows {
			key := row[0].String() + "|" + row[1].String()
			ev, ok := exactByKey[key]
			if !ok {
				continue
			}
			est, ok1 := row[2].AsFloat()
			bound, ok2 := row[3].AsFloat()
			if !ok1 || !ok2 {
				continue
			}
			total++
			if math.Abs(est-ev) <= bound {
				covered++
			}
		}
	}
	if total == 0 {
		t.Fatal("no bounds evaluated")
	}
	rate := float64(covered) / float64(total)
	if rate < 0.80 {
		t.Errorf("90%% bounds covered only %.0f%% of %d group-trials", rate*100, total)
	}
	if rate == 1.0 && total > 100 {
		t.Logf("note: bounds fully covered %d cases (conservative but valid)", total)
	}
}
