package aqua

import (
	"testing"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/sample"
)

// sampleStratum abbreviates the instantiated stratum type.
type sampleStratum = sample.Stratum[engine.Row]

// recencyFixture builds a table with four equal-sized month groups so
// any sample-size difference between months is purely the ageing bias.
func recencyFixture(t testing.TB) (*Aqua, *engine.Catalog) {
	t.Helper()
	cat := engine.NewCatalog()
	rel := engine.NewRelation("events", engine.MustSchema(
		engine.Column{Name: "month", Kind: engine.KindDate},
		engine.Column{Name: "kind", Kind: engine.KindString},
		engine.Column{Name: "v", Kind: engine.KindFloat},
	))
	months := []string{"1998-01-01", "1998-02-01", "1998-03-01", "1998-04-01"}
	for _, m := range months {
		d := engine.MustParseDate(m)
		for i := 0; i < 5000; i++ {
			kind := "a"
			if i%2 == 0 {
				kind = "b"
			}
			rel.Insert(engine.Row{d, engine.NewString(kind), engine.NewFloat(float64(i))})
		}
	}
	cat.Register(rel)
	return New(cat), cat
}

func monthSizes(t *testing.T, s *Synopsis) map[string]int {
	t.Helper()
	sizes := map[string]int{}
	s.Sample().Each(func(str *sampleStratum) {
		if len(str.Items) == 0 {
			return
		}
		sizes[str.Items[0][0].String()] += len(str.Items)
	})
	return sizes
}

func TestRecencyBiasShiftsSpaceToNewData(t *testing.T) {
	a, _ := recencyFixture(t)
	s, err := a.CreateSynopsis(Config{
		Table:     "events",
		GroupCols: []string{"month", "kind"},
		Space:     800,
		Strategy:  core.Congress,
		Recency:   &Recency{Column: "month", Decay: 0.3},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := monthSizes(t, s)
	if len(sizes) != 4 {
		t.Fatalf("month sizes %v", sizes)
	}
	newest := sizes["1998-04-01"]
	oldest := sizes["1998-01-01"]
	if newest <= oldest {
		t.Errorf("recency bias had no effect: newest %d, oldest %d", newest, oldest)
	}
	if float64(newest) < 1.5*float64(oldest) {
		t.Errorf("bias too weak: newest %d vs oldest %d", newest, oldest)
	}
	// Without the bias, months are equal-sized groups and get equal
	// space under Congress.
	s2, err := a.CreateSynopsis(Config{
		Table: "events", GroupCols: []string{"month", "kind"},
		Space: 800, Strategy: core.Congress, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat := monthSizes(t, s2)
	if flat["1998-04-01"] != flat["1998-01-01"] {
		t.Errorf("unbiased congress should be flat across equal months: %v", flat)
	}
	// Old groups keep a floor: queries over January still answer.
	if oldest < 20 {
		t.Errorf("old month starved: %d tuples", oldest)
	}
}

func TestRecencyValidation(t *testing.T) {
	a, _ := recencyFixture(t)
	cases := []*Recency{
		{Column: "month", Decay: 0},
		{Column: "month", Decay: 1.5},
		{Column: "ghost", Decay: 0.5},
		{Column: "v", Decay: 0.5}, // not a grouping column
	}
	for i, r := range cases {
		if _, err := a.CreateSynopsis(Config{
			Table: "events", GroupCols: []string{"month", "kind"},
			Space: 100, Recency: r,
		}); err == nil {
			t.Errorf("bad recency %d accepted", i)
		}
	}
}

func TestRecencyDecayOneIsUniformPreference(t *testing.T) {
	a, _ := recencyFixture(t)
	s, err := a.CreateSynopsis(Config{
		Table: "events", GroupCols: []string{"month", "kind"},
		Space: 800, Strategy: core.Congress,
		Recency: &Recency{Column: "month", Decay: 1.0}, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := monthSizes(t, s)
	if sizes["1998-04-01"] != sizes["1998-01-01"] {
		t.Errorf("decay=1 should not skew: %v", sizes)
	}
}
