package aqua

import (
	"fmt"
	"strings"

	"github.com/approxdb/congress/internal/engine"
)

// JoinSpec describes a star-schema foreign-key join: a central fact
// table plus dimension tables, each joined on a fact foreign key that
// references the dimension's key. Section 2 of the paper observes that
// with join synopses "any join query involving multiple tables ... can
// be conceptually rewritten as a query on a single join synopsis
// relation"; MaterializeJoin builds that single relation, and a synopsis
// over it serves group-bys on dimension attributes.
type JoinSpec struct {
	// Name is the name to register the joined (wide) relation under.
	Name string
	// Fact is the central fact table.
	Fact string
	// Dims are the dimension joins.
	Dims []DimJoin
}

// DimJoin is one fact->dimension foreign-key edge.
type DimJoin struct {
	// Table is the dimension table name.
	Table string
	// FactKey is the foreign-key column on the fact table.
	FactKey string
	// DimKey is the referenced key column on the dimension table.
	DimKey string
}

// MaterializeJoin computes the star join fact ⋈ dims and registers it
// in the catalog under spec.Name. Because every join is on a foreign
// key, the wide relation has exactly one row per fact row, so a uniform
// (or stratified) sample of it is a valid sample of the join result —
// the property join synopses [AGPR99] rely on. The wide schema is the
// fact schema followed by each dimension's non-key columns; a column
// name that collides with an earlier one is prefixed with its
// dimension's table name.
func (a *Aqua) MaterializeJoin(spec JoinSpec) (*engine.Relation, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("aqua: join spec needs a name")
	}
	fact, ok := a.cat.Lookup(spec.Fact)
	if !ok {
		return nil, fmt.Errorf("aqua: unknown fact table %q", spec.Fact)
	}
	if len(spec.Dims) == 0 {
		return nil, fmt.Errorf("aqua: join spec needs at least one dimension")
	}

	type dimIndex struct {
		join    DimJoin
		factCol int
		keep    []int // dim column ordinals copied into the wide row
		rows    map[string]engine.Row
	}

	wideCols := append([]engine.Column(nil), fact.Schema.Cols...)
	taken := make(map[string]bool, len(wideCols))
	for _, c := range wideCols {
		taken[strings.ToLower(c.Name)] = true
	}

	dims := make([]*dimIndex, 0, len(spec.Dims))
	for _, dj := range spec.Dims {
		dim, ok := a.cat.Lookup(dj.Table)
		if !ok {
			return nil, fmt.Errorf("aqua: unknown dimension table %q", dj.Table)
		}
		factCol := fact.Schema.Index(dj.FactKey)
		if factCol < 0 {
			return nil, fmt.Errorf("aqua: fact table %q has no column %q", spec.Fact, dj.FactKey)
		}
		keyCol := dim.Schema.Index(dj.DimKey)
		if keyCol < 0 {
			return nil, fmt.Errorf("aqua: dimension %q has no key column %q", dj.Table, dj.DimKey)
		}
		di := &dimIndex{join: dj, factCol: factCol, rows: make(map[string]engine.Row, dim.NumRows())}
		for ci, c := range dim.Schema.Cols {
			if ci == keyCol {
				continue // redundant with the fact FK
			}
			name := c.Name
			if taken[strings.ToLower(name)] {
				name = dj.Table + "_" + name
			}
			if taken[strings.ToLower(name)] {
				return nil, fmt.Errorf("aqua: column %q collides even after prefixing", name)
			}
			taken[strings.ToLower(name)] = true
			wideCols = append(wideCols, engine.Column{Name: name, Kind: c.Kind})
			di.keep = append(di.keep, ci)
		}
		for _, row := range dim.Rows() {
			key := row[keyCol].GroupKey()
			if _, dup := di.rows[key]; dup {
				return nil, fmt.Errorf("aqua: dimension %q key %v is not unique", dj.Table, row[keyCol])
			}
			di.rows[key] = row
		}
		dims = append(dims, di)
	}

	schema, err := engine.NewSchema(wideCols...)
	if err != nil {
		return nil, err
	}
	wide := engine.NewRelation(spec.Name, schema)
	for _, frow := range fact.Rows() {
		row := make(engine.Row, 0, len(wideCols))
		row = append(row, frow...)
		for _, di := range dims {
			drow, ok := di.rows[frow[di.factCol].GroupKey()]
			if !ok {
				return nil, fmt.Errorf("aqua: fact row references missing %s key %v",
					di.join.Table, frow[di.factCol])
			}
			for _, ci := range di.keep {
				row = append(row, drow[ci])
			}
		}
		if err := wide.Insert(row); err != nil {
			return nil, err
		}
	}
	a.cat.Register(wide)
	return wide, nil
}

// CreateJoinSynopsis materializes the star join and builds a synopsis
// over the joined relation; cfg.Table is overridden by spec.Name. The
// grouping columns may come from any table in the join.
func (a *Aqua) CreateJoinSynopsis(spec JoinSpec, cfg Config) (*Synopsis, error) {
	if _, err := a.MaterializeJoin(spec); err != nil {
		return nil, err
	}
	cfg.Table = spec.Name
	return a.CreateSynopsis(cfg)
}
