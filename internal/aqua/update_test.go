package aqua

import (
	"testing"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/rewrite"
)

func TestUpdateScaleFactorTouchCounts(t *testing.T) {
	a, cat := newTestAqua(t, core.Congress, 1000)
	s, _ := a.Synopsis("lineitem")

	// Pick the largest stratum.
	var key string
	var stratumSize int
	s.Sample().Each(func(str *sampleStratum) {
		if len(str.Items) > stratumSize {
			stratumSize = len(str.Items)
			key = str.Key
		}
	})
	if stratumSize == 0 {
		t.Fatal("no non-empty stratum")
	}

	// Integrated: one touched row per sampled tuple of the group.
	n, err := a.UpdateScaleFactor("lineitem", rewrite.Integrated, key, 123.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != stratumSize {
		t.Errorf("integrated touched %d rows, want %d (per-tuple SF)", n, stratumSize)
	}
	// The change is visible to queries.
	cs, _ := cat.Lookup("cs_lineitem")
	found := 0
	sfIdx := cs.Schema.Index("sf")
	for _, row := range cs.Rows() {
		if row[sfIdx].F == 123.5 {
			found++
		}
	}
	if found != stratumSize {
		t.Errorf("sf update visible on %d rows, want %d", found, stratumSize)
	}

	// Normalized / Key-normalized: exactly one aux row each.
	n, err = a.UpdateScaleFactor("lineitem", rewrite.Normalized, key, 123.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("normalized touched %d rows, want 1", n)
	}
	n, err = a.UpdateScaleFactor("lineitem", rewrite.KeyNormalized, key, 123.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("key-normalized touched %d rows, want 1", n)
	}
}

func TestUpdateScaleFactorErrors(t *testing.T) {
	a, _ := newTestAqua(t, core.Congress, 200)
	if _, err := a.UpdateScaleFactor("ghost", rewrite.Integrated, "k", 1); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := a.UpdateScaleFactor("lineitem", rewrite.Integrated, "nokey", 1); err == nil {
		t.Error("unknown group accepted")
	}
	if _, err := a.UpdateScaleFactor("lineitem", rewrite.Strategy(99), anyStratumKey(a), 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func anyStratumKey(a *Aqua) string {
	s, _ := a.Synopsis("lineitem")
	for _, k := range s.Sample().Keys() {
		if str, _ := s.Sample().Get(k); len(str.Items) > 0 {
			return k
		}
	}
	return ""
}

func TestRelationUpdateArityGuard(t *testing.T) {
	rel := engine.NewRelation("t", engine.MustSchema(engine.Column{Name: "a", Kind: engine.KindInt}))
	rel.Insert(engine.Row{engine.NewInt(1)})
	if _, err := rel.Update(
		func(engine.Row) bool { return true },
		func(engine.Row) engine.Row { return engine.Row{engine.NewInt(1), engine.NewInt(2)} },
	); err == nil {
		t.Error("arity-breaking update accepted")
	}
}
