package aqua

import (
	"fmt"
	"math"
	"sort"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
)

// Recency configures the Section 8 "Generalization to Other Queries"
// ageing bias: "if a sample of the sales data were used to analyze the
// impact of a recent sales promotion, the sample would be more effective
// if the most recent sales data were better represented". The named
// column's distinct values are ordered; the newest value's groups get
// relative weight 1, the next Decay, then Decay², and so on. The
// resulting preference vector competes with the strategy's vectors in
// the Figure 19 combination, so recent data gains space without any
// group losing its congressional floor.
type Recency struct {
	// Column is the ageing attribute; it must be one of the synopsis's
	// grouping columns (typically a date).
	Column string
	// Decay is the per-step weight multiplier, in (0, 1]. 0.5 halves a
	// value's weight each step into the past.
	Decay float64
}

// recencyVector builds the preference weight vector for the configured
// ageing bias.
func recencyVector(r *Recency, rel *engine.Relation, g *core.Grouping, cube *datacube.Cube, x float64) (core.WeightVector, error) {
	if r.Decay <= 0 || r.Decay > 1 {
		return core.WeightVector{}, fmt.Errorf("aqua: recency decay %v out of (0, 1]", r.Decay)
	}
	mask, err := core.MaskFor(cube, []string{r.Column})
	if err != nil {
		return core.WeightVector{}, err
	}
	ci := rel.Schema.Index(r.Column)
	if ci < 0 {
		return core.WeightVector{}, fmt.Errorf("aqua: unknown recency column %q", r.Column)
	}

	// Order the column's distinct values (newest = greatest) and assign
	// geometric weights by rank.
	type dv struct {
		key string
		val engine.Value
	}
	seen := make(map[string]engine.Value)
	for _, row := range rel.Rows() {
		v := row[ci]
		seen[v.GroupKey()] = v
	}
	distinct := make([]dv, 0, len(seen))
	for k, v := range seen {
		distinct = append(distinct, dv{key: k, val: v})
	}
	sort.Slice(distinct, func(i, j int) bool {
		return distinct[i].val.Compare(distinct[j].val) > 0 // newest first
	})
	prefs := make(map[string]float64, len(distinct))
	var norm float64
	for rank, d := range distinct {
		w := math.Pow(r.Decay, float64(rank))
		prefs[d.key] = w
		norm += w
	}
	for k := range prefs {
		prefs[k] /= norm
	}
	v := core.PreferenceVector(cube, x, mask, prefs)
	v.Name = "recency(" + r.Column + ")"
	return v, nil
}
