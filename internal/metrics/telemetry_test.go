package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTelemetryCountersAndSnapshot(t *testing.T) {
	tel := NewTelemetry()
	tel.AddRowsScanned(100)
	tel.AddRowsScanned(50)
	tel.AddStrataTouched(7)
	tel.ObserveBuild(2 * time.Millisecond)
	tel.ObserveBuild(4 * time.Millisecond)
	tel.ObserveRefresh(time.Millisecond)
	tel.ObserveAnswer(3 * time.Millisecond)
	tel.ObserveEstimate(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		tel.MaintainerInsert()
	}
	tel.MaintainerDrained(6)

	s := tel.Snapshot()
	if s.RowsScanned != 150 || s.StrataTouched != 7 {
		t.Errorf("scan counters %+v", s)
	}
	if s.Build.Count != 2 || s.Build.Total != 6*time.Millisecond || s.Build.Avg() != 3*time.Millisecond {
		t.Errorf("build stats %+v", s.Build)
	}
	if s.Refresh.Count != 1 || s.Answer.Count != 1 || s.Estimate.Count != 1 {
		t.Errorf("op counts %+v", s)
	}
	if s.MaintainerInserts != 10 || s.MaintainerQueueDepth != 4 {
		t.Errorf("maintainer counters %+v", s)
	}
}

func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.AddRowsScanned(1)
	tel.AddStrataTouched(1)
	tel.MaintainerInsert()
	tel.MaintainerDrained(1)
	tel.ObserveBuild(time.Second)
	tel.ObserveRefresh(time.Second)
	tel.ObserveAnswer(time.Second)
	tel.ObserveEstimate(time.Second)
	if s := tel.Snapshot(); s.RowsScanned != 0 || s.Build.Count != 0 {
		t.Errorf("nil telemetry snapshot %+v", s)
	}
	if (OpSnapshot{}).Avg() != 0 {
		t.Error("zero-op Avg not 0")
	}
}

func TestTelemetryConcurrent(t *testing.T) {
	tel := NewTelemetry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tel.AddRowsScanned(1)
				tel.MaintainerInsert()
				tel.ObserveAnswer(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := tel.Snapshot()
	if s.RowsScanned != 8000 || s.MaintainerInserts != 8000 || s.Answer.Count != 8000 {
		t.Errorf("concurrent counters %+v", s)
	}
}

func TestTelemetrySnapshotString(t *testing.T) {
	tel := NewTelemetry()
	tel.AddRowsScanned(3)
	tel.ObserveBuild(time.Second)
	out := tel.Snapshot().String()
	for _, want := range []string{
		"congress_rows_scanned_total 3",
		"congress_build_total 1",
		"congress_build_seconds_total 1.000000",
		"congress_maintainer_queue_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot output missing %q:\n%s", want, out)
		}
	}
}
