package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram()
	// 90 fast observations, 10 slow ones: p50 must land in a fast
	// bucket, p99 in a slow one.
	for i := 0; i < 90; i++ {
		h.Observe(150 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if got := s.Quantile(0.5); got > time.Millisecond {
		t.Errorf("p50 = %v, want <= 1ms", got)
	}
	if got := s.Quantile(0.99); got < 50*time.Millisecond {
		t.Errorf("p99 = %v, want >= 50ms", got)
	}
	if s.Sum < 800*time.Millisecond {
		t.Errorf("sum = %v, want >= 800ms", s.Sum)
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram not empty: %+v", s)
	}
}

func TestHistogramRenderDeterministic(t *testing.T) {
	h := NewHistogram()
	h.Observe(3 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	var a, b strings.Builder
	snap := h.Snapshot()
	snap.Render(&a, "server_request_seconds", "route", "query")
	snap.Render(&b, "server_request_seconds", "route", "query")
	if a.String() != b.String() {
		t.Fatalf("render not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		`server_request_seconds_bucket{le="+Inf",route="query"} 2`,
		`server_request_seconds_count{route="query"} 2`,
		`server_request_seconds{quantile="0.99",route="query"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}
