// Package metrics implements the group-by error metrics of Definition
// 3.1: per-group percentage relative error ε_i, and the L∞ (max), L1
// (mean), and L2 (root mean square) norms over the groups of a query
// answer. It also provides the group matching between an exact and an
// approximate answer that the metrics are defined over.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"github.com/approxdb/congress/internal/engine"
)

// RelativeErrorPct is Eq. 1: |c − c′| / |c| × 100. A zero exact value
// with a non-zero estimate yields +Inf; zero/zero is 0.
func RelativeErrorPct(exact, approx float64) float64 {
	if exact == 0 {
		if approx == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(exact-approx) / math.Abs(exact) * 100
}

// GroupErrors holds the matched per-group errors of one group-by answer.
type GroupErrors struct {
	// Errors maps group key -> ε_i (percent).
	Errors map[string]float64
	// MissingGroups counts groups present in the exact answer but
	// absent from the approximate answer (the paper's first user
	// requirement is that this be zero). Each missing group also
	// contributes a 100% error entry, since the estimate is implicitly
	// zero.
	MissingGroups int
	// ExtraGroups counts groups present only in the approximate answer.
	ExtraGroups int
}

// LInf is ε_∞: the maximum per-group error.
func (ge *GroupErrors) LInf() float64 {
	worst := 0.0
	for _, e := range ge.Errors {
		if e > worst {
			worst = e
		}
	}
	return worst
}

// L1 is ε_L1: the mean per-group error.
func (ge *GroupErrors) L1() float64 {
	if len(ge.Errors) == 0 {
		return 0
	}
	var sum float64
	for _, e := range ge.Errors {
		sum += e
	}
	return sum / float64(len(ge.Errors))
}

// L2 is ε_L2: the root mean square per-group error.
func (ge *GroupErrors) L2() float64 {
	if len(ge.Errors) == 0 {
		return 0
	}
	var sum float64
	for _, e := range ge.Errors {
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(ge.Errors)))
}

// CompareAnswers matches the groups of an exact and an approximate
// query result and computes per-group errors on one aggregate column.
// Both results must have the same column layout: groupCols grouping
// columns followed by (at least) one aggregate column; aggCol is the
// index of the aggregate column to compare. Groups are matched on the
// rendered grouping values (the metric must match corresponding groups,
// unlike the MAC error the paper rejects).
func CompareAnswers(exact, approx *engine.Result, groupCols, aggCol int) (*GroupErrors, error) {
	if aggCol >= len(exact.Columns) || aggCol >= len(approx.Columns) {
		return nil, fmt.Errorf("metrics: aggregate column %d out of range", aggCol)
	}
	keyOf := func(row engine.Row) string {
		var sb strings.Builder
		for i := 0; i < groupCols; i++ {
			sb.WriteString(row[i].GroupKey())
			sb.WriteByte(0x1f)
		}
		return sb.String()
	}
	exactVals := make(map[string]float64, len(exact.Rows))
	for _, row := range exact.Rows {
		v, ok := row[aggCol].AsFloat()
		if !ok {
			return nil, fmt.Errorf("metrics: exact aggregate %v not numeric", row[aggCol])
		}
		exactVals[keyOf(row)] = v
	}
	approxVals := make(map[string]float64, len(approx.Rows))
	for _, row := range approx.Rows {
		v, ok := row[aggCol].AsFloat()
		if !ok {
			// A NULL estimate (empty stratum) counts as missing.
			continue
		}
		approxVals[keyOf(row)] = v
	}

	ge := &GroupErrors{Errors: make(map[string]float64, len(exactVals))}
	for k, ev := range exactVals {
		av, ok := approxVals[k]
		if !ok {
			ge.MissingGroups++
			ge.Errors[k] = 100 // estimate is implicitly zero
			continue
		}
		ge.Errors[k] = RelativeErrorPct(ev, av)
	}
	for k := range approxVals {
		if _, ok := exactVals[k]; !ok {
			ge.ExtraGroups++
		}
	}
	return ge, nil
}
