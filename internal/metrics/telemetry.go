package metrics

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/approxdb/congress/internal/engine"
)

// Telemetry aggregates lightweight operational counters for the
// build/maintain/answer paths. All methods are safe for concurrent use
// (plain atomics, no locks) and are nil-receiver tolerant so
// instrumented code never needs a guard. One Telemetry instance is owned
// by each Aqua middleware; Snapshot reads a consistent-enough point-in-
// time view for reporting.
//
// Exported metric names (used by Snapshot.String and the README):
//
//	congress_rows_scanned_total        rows read by synopsis construction scans
//	congress_strata_touched_total      strata written by build + refresh materialization
//	congress_build_total               synopsis builds completed
//	congress_build_seconds_total       cumulative build wall time
//	congress_refresh_total             synopsis refreshes completed
//	congress_refresh_seconds_total     cumulative refresh wall time
//	congress_answer_total              approximate answers served (SQL path)
//	congress_answer_seconds_total      cumulative answer wall time
//	congress_estimate_total            direct estimates served (no-SQL path)
//	congress_estimate_seconds_total    cumulative estimate wall time
//	congress_maintainer_inserts_total  tuples fed to incremental maintainers
//	congress_maintainer_queue_depth    maintained tuples not yet visible to queries
//	congress_cache_hits_total          query answers served from the result cache
//	congress_cache_misses_total        query answers that had to execute
//	congress_cache_evictions_total     result-cache entries dropped by capacity bounds
//	congress_cache_invalidations_total synopsis epoch bumps (insert/refresh/update)
//	congress_cache_hit_rate            hits / (hits + misses), point-in-time
//	congress_engine_vectorized_total   statements executed by the columnar engine path
//	congress_engine_fallback_total     statements executed by the row-engine path
//	congress_hybrid_exact_total        estimates answered exactly from the datacube prefixes
//	congress_hybrid_residual_total     merged estimates composing exact + sampled mass
//	congress_hybrid_fallback_total     hybrid-eligible estimates answered from the sample alone
//	persist_wal_records_total          records appended to the write-ahead log
//	persist_wal_bytes_total            bytes appended to the write-ahead log
//	persist_fsyncs_total               fsync calls issued by the WAL
//	persist_snapshots_total            warehouse snapshots written
//	persist_snapshot_bytes_total       bytes written across all snapshots
//	persist_snapshot_seconds_total     cumulative snapshot wall time
//	persist_recovery_seconds_total     wall time spent recovering at startup
//	persist_replayed_records_total     WAL records replayed during recovery
//	persist_truncated_bytes_total      torn WAL tail bytes truncated at recovery
type Telemetry struct {
	rowsScanned       atomic.Int64
	strataTouched     atomic.Int64
	maintainerInserts atomic.Int64
	maintainerQueue   atomic.Int64

	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheEvictions     atomic.Int64
	cacheInvalidations atomic.Int64

	hybridExact    atomic.Int64
	hybridResidual atomic.Int64
	hybridFallback atomic.Int64

	walRecords      atomic.Int64
	walBytes        atomic.Int64
	fsyncs          atomic.Int64
	snapshotBytes   atomic.Int64
	replayedRecords atomic.Int64
	truncatedBytes  atomic.Int64
	recoveryNanos   atomic.Int64

	build     opStats
	refresh   opStats
	answer    opStats
	estimate  opStats
	snapshots opStats
}

// opStats accumulates a count and total duration for one operation kind.
type opStats struct {
	count atomic.Int64
	nanos atomic.Int64
}

func (o *opStats) observe(d time.Duration) {
	o.count.Add(1)
	o.nanos.Add(int64(d))
}

func (o *opStats) snapshot() OpSnapshot {
	return OpSnapshot{Count: o.count.Load(), Total: time.Duration(o.nanos.Load())}
}

// NewTelemetry returns a zeroed telemetry instance.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// AddRowsScanned records rows read by a construction or refresh scan.
func (t *Telemetry) AddRowsScanned(n int64) {
	if t != nil {
		t.rowsScanned.Add(n)
	}
}

// AddStrataTouched records strata materialized into sample relations.
func (t *Telemetry) AddStrataTouched(n int64) {
	if t != nil {
		t.strataTouched.Add(n)
	}
}

// MaintainerInsert records one tuple fed to an incremental maintainer;
// the tuple is invisible to queries until the next refresh, so it also
// deepens the maintainer queue.
func (t *Telemetry) MaintainerInsert() {
	if t != nil {
		t.maintainerInserts.Add(1)
		t.maintainerQueue.Add(1)
	}
}

// MaintainerDrained records that a refresh made n queued tuples visible.
func (t *Telemetry) MaintainerDrained(n int64) {
	if t != nil {
		t.maintainerQueue.Add(-n)
	}
}

// ObserveBuild records one completed synopsis build.
func (t *Telemetry) ObserveBuild(d time.Duration) {
	if t != nil {
		t.build.observe(d)
	}
}

// ObserveRefresh records one completed synopsis refresh.
func (t *Telemetry) ObserveRefresh(d time.Duration) {
	if t != nil {
		t.refresh.observe(d)
	}
}

// ObserveAnswer records one approximate answer served via SQL rewriting.
func (t *Telemetry) ObserveAnswer(d time.Duration) {
	if t != nil {
		t.answer.observe(d)
	}
}

// ObserveEstimate records one direct (no-SQL) estimate served.
func (t *Telemetry) ObserveEstimate(d time.Duration) {
	if t != nil {
		t.estimate.observe(d)
	}
}

// CacheHit records one answer served from the result cache.
func (t *Telemetry) CacheHit() {
	if t != nil {
		t.cacheHits.Add(1)
	}
}

// CacheMiss records one answer that had to execute against the sample.
func (t *Telemetry) CacheMiss() {
	if t != nil {
		t.cacheMisses.Add(1)
	}
}

// CacheEviction records one result-cache entry dropped to stay within
// the configured entry or byte bound.
func (t *Telemetry) CacheEviction() {
	if t != nil {
		t.cacheEvictions.Add(1)
	}
}

// CacheInvalidation records one synopsis epoch bump — every cached entry
// for that synopsis becomes unreachable.
func (t *Telemetry) CacheInvalidation() {
	if t != nil {
		t.cacheInvalidations.Add(1)
	}
}

// HybridExact records one estimate (or partials scan) answered entirely
// from the exact datacube prefixes, with zero variance contribution.
func (t *Telemetry) HybridExact() {
	if t != nil {
		t.hybridExact.Add(1)
	}
}

// HybridResidual records one merged estimate that composed exact mass
// from some shards with sampled mass from others — the covered +
// residual decomposition of the hybrid estimator.
func (t *Telemetry) HybridResidual() {
	if t != nil {
		t.hybridResidual.Add(1)
	}
}

// HybridFallback records one hybrid-eligible estimate that fell back to
// the pure sample: the cube was missing, stale, or did not cover the
// requested grouping or aggregate column.
func (t *Telemetry) HybridFallback() {
	if t != nil {
		t.hybridFallback.Add(1)
	}
}

// WALAppend records one record of n bytes appended to the WAL.
func (t *Telemetry) WALAppend(n int64) {
	if t != nil {
		t.walRecords.Add(1)
		t.walBytes.Add(n)
	}
}

// Fsync records one fsync issued by the WAL (group commit counts the
// batched fsync once, however many appends it covered).
func (t *Telemetry) Fsync() {
	if t != nil {
		t.fsyncs.Add(1)
	}
}

// ObserveSnapshot records one completed warehouse snapshot of n bytes.
func (t *Telemetry) ObserveSnapshot(n int64, d time.Duration) {
	if t != nil {
		t.snapshots.observe(d)
		t.snapshotBytes.Add(n)
	}
}

// ObserveRecovery records a completed startup recovery: its wall time,
// the number of WAL records replayed, and torn-tail bytes truncated.
func (t *Telemetry) ObserveRecovery(d time.Duration, replayed int64, truncated int64) {
	if t != nil {
		t.recoveryNanos.Add(int64(d))
		t.replayedRecords.Add(replayed)
		t.truncatedBytes.Add(truncated)
	}
}

// OpSnapshot is the point-in-time reading of one operation kind.
type OpSnapshot struct {
	Count int64
	Total time.Duration
}

// Avg returns the mean latency, or 0 with no observations.
func (o OpSnapshot) Avg() time.Duration {
	if o.Count == 0 {
		return 0
	}
	return o.Total / time.Duration(o.Count)
}

// TelemetrySnapshot is a point-in-time reading of all counters.
type TelemetrySnapshot struct {
	RowsScanned          int64
	StrataTouched        int64
	MaintainerInserts    int64
	MaintainerQueueDepth int64
	CacheHits            int64
	CacheMisses          int64
	CacheEvictions       int64
	CacheInvalidations   int64
	HybridExact          int64
	HybridResidual       int64
	HybridFallback       int64
	Build                OpSnapshot
	Refresh              OpSnapshot
	Answer               OpSnapshot
	Estimate             OpSnapshot

	// EngineVectorized / EngineFallback are process-wide (every
	// warehouse in the process shares the engine's counters, unlike the
	// per-instance fields above): statements executed by the columnar
	// path vs the row engine.
	EngineVectorized int64
	EngineFallback   int64

	WALRecords      int64
	WALBytes        int64
	Fsyncs          int64
	Snapshots       OpSnapshot
	SnapshotBytes   int64
	ReplayedRecords int64
	TruncatedBytes  int64
	Recovery        time.Duration
}

// CacheHitRate returns hits/(hits+misses), or 0 with no cache lookups.
func (s TelemetrySnapshot) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Snapshot reads the current counter values. A nil telemetry reads as
// all zeros.
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	if t == nil {
		return TelemetrySnapshot{}
	}
	vec, fb := engine.ExecCounts()
	return TelemetrySnapshot{
		EngineVectorized:     vec,
		EngineFallback:       fb,
		RowsScanned:          t.rowsScanned.Load(),
		StrataTouched:        t.strataTouched.Load(),
		MaintainerInserts:    t.maintainerInserts.Load(),
		MaintainerQueueDepth: t.maintainerQueue.Load(),
		CacheHits:            t.cacheHits.Load(),
		CacheMisses:          t.cacheMisses.Load(),
		CacheEvictions:       t.cacheEvictions.Load(),
		CacheInvalidations:   t.cacheInvalidations.Load(),
		HybridExact:          t.hybridExact.Load(),
		HybridResidual:       t.hybridResidual.Load(),
		HybridFallback:       t.hybridFallback.Load(),
		Build:                t.build.snapshot(),
		Refresh:              t.refresh.snapshot(),
		Answer:               t.answer.snapshot(),
		Estimate:             t.estimate.snapshot(),
		WALRecords:           t.walRecords.Load(),
		WALBytes:             t.walBytes.Load(),
		Fsyncs:               t.fsyncs.Load(),
		Snapshots:            t.snapshots.snapshot(),
		SnapshotBytes:        t.snapshotBytes.Load(),
		ReplayedRecords:      t.replayedRecords.Load(),
		TruncatedBytes:       t.truncatedBytes.Load(),
		Recovery:             time.Duration(t.recoveryNanos.Load()),
	}
}

// String renders the snapshot in a flat name=value form using the
// canonical metric names.
func (s TelemetrySnapshot) String() string {
	out := ""
	out += fmt.Sprintf("congress_rows_scanned_total %d\n", s.RowsScanned)
	out += fmt.Sprintf("congress_strata_touched_total %d\n", s.StrataTouched)
	for _, op := range []struct {
		name string
		s    OpSnapshot
	}{
		{"build", s.Build}, {"refresh", s.Refresh}, {"answer", s.Answer}, {"estimate", s.Estimate},
	} {
		out += fmt.Sprintf("congress_%s_total %d\n", op.name, op.s.Count)
		out += fmt.Sprintf("congress_%s_seconds_total %.6f\n", op.name, op.s.Total.Seconds())
	}
	out += fmt.Sprintf("congress_maintainer_inserts_total %d\n", s.MaintainerInserts)
	out += fmt.Sprintf("congress_maintainer_queue_depth %d\n", s.MaintainerQueueDepth)
	out += fmt.Sprintf("congress_cache_hits_total %d\n", s.CacheHits)
	out += fmt.Sprintf("congress_cache_misses_total %d\n", s.CacheMisses)
	out += fmt.Sprintf("congress_cache_evictions_total %d\n", s.CacheEvictions)
	out += fmt.Sprintf("congress_cache_invalidations_total %d\n", s.CacheInvalidations)
	out += fmt.Sprintf("congress_cache_hit_rate %.4f\n", s.CacheHitRate())
	out += fmt.Sprintf("congress_hybrid_exact_total %d\n", s.HybridExact)
	out += fmt.Sprintf("congress_hybrid_residual_total %d\n", s.HybridResidual)
	out += fmt.Sprintf("congress_hybrid_fallback_total %d\n", s.HybridFallback)
	out += fmt.Sprintf("congress_engine_vectorized_total %d\n", s.EngineVectorized)
	out += fmt.Sprintf("congress_engine_fallback_total %d\n", s.EngineFallback)
	out += fmt.Sprintf("persist_wal_records_total %d\n", s.WALRecords)
	out += fmt.Sprintf("persist_wal_bytes_total %d\n", s.WALBytes)
	out += fmt.Sprintf("persist_fsyncs_total %d\n", s.Fsyncs)
	out += fmt.Sprintf("persist_snapshots_total %d\n", s.Snapshots.Count)
	out += fmt.Sprintf("persist_snapshot_bytes_total %d\n", s.SnapshotBytes)
	out += fmt.Sprintf("persist_snapshot_seconds_total %.6f\n", s.Snapshots.Total.Seconds())
	out += fmt.Sprintf("persist_recovery_seconds_total %.6f\n", s.Recovery.Seconds())
	out += fmt.Sprintf("persist_replayed_records_total %d\n", s.ReplayedRecords)
	out += fmt.Sprintf("persist_truncated_bytes_total %d\n", s.TruncatedBytes)
	return out
}
