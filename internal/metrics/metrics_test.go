package metrics

import (
	"math"
	"testing"

	"github.com/approxdb/congress/internal/engine"
)

func TestRelativeErrorPct(t *testing.T) {
	cases := []struct {
		exact, approx, want float64
	}{
		{100, 90, 10},
		{100, 110, 10},
		{-100, -90, 10},
		{100, 100, 0},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := RelativeErrorPct(c.exact, c.approx); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelativeErrorPct(%v,%v) = %v, want %v", c.exact, c.approx, got, c.want)
		}
	}
	if !math.IsInf(RelativeErrorPct(0, 5), 1) {
		t.Error("zero exact with nonzero estimate should be +Inf")
	}
}

func result(cols []string, rows ...engine.Row) *engine.Result {
	return &engine.Result{Columns: cols, Rows: rows}
}

func TestCompareAnswersMatched(t *testing.T) {
	exact := result([]string{"g", "sum"},
		engine.Row{engine.NewString("a"), engine.NewFloat(100)},
		engine.Row{engine.NewString("b"), engine.NewFloat(200)},
	)
	approx := result([]string{"g", "sum"},
		engine.Row{engine.NewString("a"), engine.NewFloat(110)},
		engine.Row{engine.NewString("b"), engine.NewFloat(150)},
	)
	ge, err := CompareAnswers(exact, approx, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ge.MissingGroups != 0 || ge.ExtraGroups != 0 {
		t.Fatalf("missing=%d extra=%d", ge.MissingGroups, ge.ExtraGroups)
	}
	if math.Abs(ge.L1()-17.5) > 1e-9 { // (10+25)/2
		t.Errorf("L1 = %v", ge.L1())
	}
	if math.Abs(ge.LInf()-25) > 1e-9 {
		t.Errorf("LInf = %v", ge.LInf())
	}
	want := math.Sqrt((100 + 625) / 2.0)
	if math.Abs(ge.L2()-want) > 1e-9 {
		t.Errorf("L2 = %v, want %v", ge.L2(), want)
	}
}

func TestCompareAnswersMissingAndExtra(t *testing.T) {
	exact := result([]string{"g", "sum"},
		engine.Row{engine.NewString("a"), engine.NewFloat(100)},
		engine.Row{engine.NewString("b"), engine.NewFloat(200)},
	)
	approx := result([]string{"g", "sum"},
		engine.Row{engine.NewString("a"), engine.NewFloat(100)},
		engine.Row{engine.NewString("zzz"), engine.NewFloat(1)},
	)
	ge, err := CompareAnswers(exact, approx, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ge.MissingGroups != 1 || ge.ExtraGroups != 1 {
		t.Fatalf("missing=%d extra=%d", ge.MissingGroups, ge.ExtraGroups)
	}
	if ge.LInf() != 100 {
		t.Errorf("missing group should cost 100%%: %v", ge.LInf())
	}
}

func TestCompareAnswersMultiColumnGroups(t *testing.T) {
	exact := result([]string{"g1", "g2", "sum"},
		engine.Row{engine.NewString("a"), engine.NewInt(1), engine.NewFloat(10)},
		engine.Row{engine.NewString("a"), engine.NewInt(2), engine.NewFloat(20)},
	)
	approx := result([]string{"g1", "g2", "sum"},
		engine.Row{engine.NewString("a"), engine.NewInt(2), engine.NewFloat(22)},
		engine.Row{engine.NewString("a"), engine.NewInt(1), engine.NewFloat(10)},
	)
	ge, err := CompareAnswers(exact, approx, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ge.MissingGroups != 0 {
		t.Fatalf("row order should not matter: %+v", ge)
	}
	if math.Abs(ge.LInf()-10) > 1e-9 {
		t.Errorf("LInf = %v", ge.LInf())
	}
}

func TestCompareAnswersNullEstimateIsMissing(t *testing.T) {
	exact := result([]string{"g", "sum"},
		engine.Row{engine.NewString("a"), engine.NewFloat(10)},
	)
	approx := result([]string{"g", "sum"},
		engine.Row{engine.NewString("a"), engine.Null},
	)
	ge, err := CompareAnswers(exact, approx, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ge.MissingGroups != 1 {
		t.Errorf("NULL estimate should count as missing: %+v", ge)
	}
}

func TestCompareAnswersErrors(t *testing.T) {
	good := result([]string{"g", "sum"}, engine.Row{engine.NewString("a"), engine.NewFloat(1)})
	if _, err := CompareAnswers(good, good, 1, 5); err == nil {
		t.Error("out-of-range aggregate column accepted")
	}
	badExact := result([]string{"g", "sum"}, engine.Row{engine.NewString("a"), engine.NewString("oops")})
	if _, err := CompareAnswers(badExact, good, 1, 1); err == nil {
		t.Error("non-numeric exact aggregate accepted")
	}
}

func TestEmptyNorms(t *testing.T) {
	ge := &GroupErrors{Errors: map[string]float64{}}
	if ge.LInf() != 0 || ge.L1() != 0 || ge.L2() != 0 {
		t.Error("empty answer should have zero error")
	}
}
