package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// histogram bucket layout: upper bounds double from 100µs to ~52s, with
// a final catch-all +Inf bucket. Fixed at compile time so Observe is one
// loop over a small array and one atomic add — safe for concurrent use
// with no locks.
const numHistBuckets = 20

// histBounds holds the bucket upper bounds in seconds.
var histBounds = func() [numHistBuckets]float64 {
	var b [numHistBuckets]float64
	d := 100 * time.Microsecond
	for i := range b {
		b[i] = d.Seconds()
		d *= 2
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram. All methods are safe
// for concurrent use and nil-receiver tolerant, matching Telemetry.
type Histogram struct {
	counts [numHistBuckets + 1]atomic.Int64 // last bucket is +Inf
	nanos  atomic.Int64
	total  atomic.Int64
}

// NewHistogram returns a zeroed histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := 0
	for i < numHistBuckets && s > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.nanos.Add(int64(d))
	h.total.Add(1)
}

// HistogramSnapshot is a point-in-time reading of a histogram.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64
	// Sum is the total observed duration.
	Sum time.Duration
	// Counts holds per-bucket (non-cumulative) observation counts; the
	// final entry is the +Inf bucket.
	Counts [numHistBuckets + 1]int64
}

// Snapshot reads the current histogram state. A nil histogram reads as
// empty.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	// total is read first so Count never exceeds the bucket sum under a
	// concurrent Observe.
	s.Count = h.total.Load()
	s.Sum = time.Duration(h.nanos.Load())
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile returns the p-quantile (0 < p < 1) as the upper bound of the
// bucket where the cumulative count crosses p·Count — an upper estimate
// with bucket resolution. An empty histogram returns 0; observations in
// the +Inf bucket report the largest finite bound.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 || p <= 0 || p >= 1 {
		return 0
	}
	rank := int64(p*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i >= numHistBuckets {
				break // +Inf bucket: clamp to the largest finite bound
			}
			return time.Duration(histBounds[i] * float64(time.Second))
		}
	}
	return time.Duration(histBounds[numHistBuckets-1] * float64(time.Second))
}

// Render writes the histogram in Prometheus text exposition format under
// the given metric name, with cumulative _bucket lines, _sum and _count,
// plus p50/p95/p99 quantile gauges. Label pairs (key, value, key, value,
// ...) are attached to every line; output is deterministic for a fixed
// snapshot.
func (s HistogramSnapshot) Render(sb *strings.Builder, name string, labels ...string) {
	base := renderLabels(labels)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < numHistBuckets {
			le = trimFloat(histBounds[i])
		}
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, renderLabels(append(append([]string(nil), labels...), "le", le)), cum)
	}
	fmt.Fprintf(sb, "%s_sum%s %.6f\n", name, base, s.Sum.Seconds())
	fmt.Fprintf(sb, "%s_count%s %d\n", name, base, s.Count)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(sb, "%s%s %.6f\n", name,
			renderLabels(append(append([]string(nil), labels...), "quantile", trimFloat(q))),
			s.Quantile(q).Seconds())
	}
}

// renderLabels formats label pairs as {k="v",...}, sorted by key so the
// exposition is deterministic. Empty input renders as no label block.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	parts := make([]string, len(kvs))
	for i, p := range kvs {
		parts[i] = fmt.Sprintf("%s=%q", p.k, p.v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// trimFloat renders a float compactly (0.0001 not 1e-04) for label
// values.
func trimFloat(f float64) string {
	out := fmt.Sprintf("%f", f)
	out = strings.TrimRight(out, "0")
	return strings.TrimRight(out, ".")
}
