package datacube

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func id(parts ...string) GroupID { return GroupID(parts) }

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty attribute list accepted")
	}
	attrs := make([]string, MaxAttrs+1)
	for i := range attrs {
		attrs[i] = strconv.Itoa(i)
	}
	if _, err := New(attrs); err == nil {
		t.Error("too many attributes accepted")
	}
	if c := MustNew([]string{"a", "b"}); c.NumGroupings() != 4 {
		t.Errorf("2 attrs => %d groupings, want 4", c.NumGroupings())
	}
}

func TestProject(t *testing.T) {
	g := id("A", "B", "C")
	if got := g.Project(0); got != "" {
		t.Errorf("empty grouping key = %q, want empty", got)
	}
	if got := g.Project(0b001); got != "A" {
		t.Errorf("mask 001 = %q", got)
	}
	if got := g.Project(0b101); got != "A"+KeySep+"C" {
		t.Errorf("mask 101 = %q", got)
	}
	if got := g.Key(); got != "A"+KeySep+"B"+KeySep+"C" {
		t.Errorf("finest key = %q", got)
	}
}

func TestAddArityCheck(t *testing.T) {
	c := MustNew([]string{"a", "b"})
	if err := c.Add(id("x")); err == nil {
		t.Error("short group id accepted")
	}
	if err := c.Add(id("x", "y", "z")); err == nil {
		t.Error("long group id accepted")
	}
}

func TestCountsFigure5Layout(t *testing.T) {
	// The Figure 5 example: groups (a1,b1)=3000, (a1,b2)=3000,
	// (a1,b3)=1500, (a2,b3)=2500. We add one tuple per... that would be
	// slow; instead add counts by repeated Add on a scaled-down version
	// (divide by 500): 6, 6, 3, 5.
	c := MustNew([]string{"A", "B"})
	add := func(a, b string, n int) {
		for i := 0; i < n; i++ {
			if err := c.Add(id(a, b)); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("a1", "b1", 6)
	add("a1", "b2", 6)
	add("a1", "b3", 3)
	add("a2", "b3", 5)

	if c.Total() != 20 {
		t.Fatalf("total=%d, want 20", c.Total())
	}
	// Empty grouping: one group with everything.
	if c.NumGroups(0) != 1 || c.Count(0, "") != 20 {
		t.Fatalf("empty grouping: %d groups count %d", c.NumGroups(0), c.Count(0, ""))
	}
	// Grouping on A (bit 0): a1=15, a2=5.
	if c.NumGroups(0b01) != 2 {
		t.Fatalf("A grouping has %d groups", c.NumGroups(0b01))
	}
	if c.Count(0b01, "a1") != 15 || c.Count(0b01, "a2") != 5 {
		t.Fatalf("A counts: a1=%d a2=%d", c.Count(0b01, "a1"), c.Count(0b01, "a2"))
	}
	// Grouping on B (bit 1): b1=6, b2=6, b3=8.
	if c.NumGroups(0b10) != 3 || c.Count(0b10, "b3") != 8 {
		t.Fatalf("B grouping wrong: groups=%d b3=%d", c.NumGroups(0b10), c.Count(0b10, "b3"))
	}
	// Finest grouping: 4 groups.
	if c.NumGroups(c.FinestMask()) != 4 {
		t.Fatalf("finest grouping has %d groups, want 4", c.NumGroups(c.FinestMask()))
	}
	if got := c.CountFor(0b10, id("a2", "b3")); got != 8 {
		t.Fatalf("CountFor(B, (a2,b3)) = %d, want 8", got)
	}
}

func TestGroupsUnderAndFinestGroups(t *testing.T) {
	c := MustNew([]string{"x"})
	c.Add(id("p"))
	c.Add(id("p"))
	c.Add(id("q"))
	got := map[string]int64{}
	c.FinestGroups(func(k string, n int64) { got[k] = n })
	if len(got) != 2 || got["p"] != 2 || got["q"] != 1 {
		t.Fatalf("finest groups %v", got)
	}
	var totalViaEmpty int64
	c.GroupsUnder(0, func(k string, n int64) { totalViaEmpty += n })
	if totalViaEmpty != 3 {
		t.Fatalf("empty grouping total %d", totalViaEmpty)
	}
}

// Property: for every grouping, per-group counts sum to the total, and
// the count of a coarse group equals the sum of its subgroup counts.
func TestCubeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew([]string{"a", "b", "c"})
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			g := id(
				"a"+strconv.Itoa(rng.Intn(3)),
				"b"+strconv.Itoa(rng.Intn(4)),
				"c"+strconv.Itoa(rng.Intn(2)),
			)
			if err := c.Add(g); err != nil {
				return false
			}
		}
		for mask := uint32(0); int(mask) < c.NumGroupings(); mask++ {
			var sum int64
			c.GroupsUnder(mask, func(_ string, cnt int64) { sum += cnt })
			if sum != c.Total() {
				return false
			}
		}
		// Coarse group count equals sum over finest subgroups: check
		// grouping on attribute a (mask 1).
		fromFinest := map[string]int64{}
		c.FinestGroups(func(k string, cnt int64) {
			// finest key is a<KeySep>b<KeySep>c; recover a-part.
			aPart := k[:indexOf(k, KeySep)]
			fromFinest[aPart] += cnt
		})
		ok := true
		c.GroupsUnder(1, func(k string, cnt int64) {
			if fromFinest[k] != cnt {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func indexOf(s, sep string) int {
	for i := 0; i+len(sep) <= len(s); i++ {
		if s[i:i+len(sep)] == sep {
			return i
		}
	}
	return len(s)
}

func TestAccessors(t *testing.T) {
	c := MustNew([]string{"a", "b"})
	if got := c.Attrs(); len(got) != 2 || got[0] != "a" {
		t.Errorf("attrs %v", got)
	}
	if c.NumAttrs() != 2 {
		t.Errorf("num attrs %d", c.NumAttrs())
	}
	c.Add(id("x", "y"))
	gid, ok := c.ID(id("x", "y").Key())
	if !ok || gid[0] != "x" || gid[1] != "y" {
		t.Errorf("ID lookup %v %v", gid, ok)
	}
	if _, ok := c.ID("nope"); ok {
		t.Error("phantom id found")
	}
	seen := 0
	c.FinestIDs(func(g GroupID, key string, n int64) {
		seen++
		if g.Key() != key || n != 1 {
			t.Errorf("finest id mismatch %v %q %d", g, key, n)
		}
	})
	if seen != 1 {
		t.Errorf("finest ids visited %d", seen)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(nil) did not panic")
		}
	}()
	MustNew(nil)
}

func TestClone(t *testing.T) {
	c := MustNew([]string{"a"})
	c.Add(id("x"))
	cl := c.Clone()
	c.Add(id("x"))
	if cl.Count(1, "x") != 1 {
		t.Errorf("clone mutated by original: %d", cl.Count(1, "x"))
	}
	if c.Count(1, "x") != 2 {
		t.Errorf("original count %d, want 2", c.Count(1, "x"))
	}
	if cl.Total() != 1 || c.Total() != 2 {
		t.Errorf("totals clone=%d orig=%d", cl.Total(), c.Total())
	}
}

func BenchmarkAddThreeAttrs(b *testing.B) {
	c := MustNew([]string{"a", "b", "c"})
	g := id("a1", "b1", "c1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(g)
	}
}
