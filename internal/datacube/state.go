package datacube

import (
	"fmt"
	"sort"
)

// GroupCount pairs a finest GroupID with its tuple count and, for cubes
// tracking measures, the group's exact per-measure SUM and non-null
// COUNT (aligned with CubeState.Measures). Nil slices on count-only
// cubes and in states written before measures existed; gob decodes old
// encodings with the new fields left nil.
type GroupCount struct {
	ID      GroupID
	Count   int64
	Sums    []float64
	NonNull []int64
}

// CubeState is the serializable state of a Cube. Only the finest-grouping
// counts are stored: every coarser grouping's count is the exact sum of
// the finest counts it covers, so Restore rebuilds the full cube from the
// finest groups alone via AddN. This keeps snapshots O(groups) instead of
// O(2^|G| · groups). Measure prefixes follow the same rule: coarser sums
// are sums of finest sums.
type CubeState struct {
	Attrs    []string
	Groups   []GroupCount
	Measures []string
}

// AddN records n tuples belonging to the given finest group at once,
// updating every grouping's counter. It is Add generalized to a batch;
// Restore uses it to rebuild coarser masks from finest-group counts.
func (c *Cube) AddN(id GroupID, n int64) error {
	if len(id) != len(c.attrs) {
		return fmt.Errorf("datacube: group id has %d parts, cube has %d attributes", len(id), len(c.attrs))
	}
	if n < 0 {
		return fmt.Errorf("datacube: negative group count %d", n)
	}
	if n == 0 {
		return nil
	}
	for mask := uint32(0); int(mask) < len(c.counts); mask++ {
		c.counts[mask][id.Project(mask)] += n
	}
	finest := id.Key()
	if _, ok := c.ids[finest]; !ok {
		c.ids[finest] = append(GroupID(nil), id...)
	}
	c.total += n
	return nil
}

// State exports the cube's serializable state. Groups are sorted by
// finest key so the encoding is deterministic.
func (c *Cube) State() *CubeState {
	st := &CubeState{
		Attrs:    append([]string(nil), c.attrs...),
		Measures: append([]string(nil), c.measures...),
	}
	finestMask := c.FinestMask()
	finest := c.counts[finestMask]
	keys := make([]string, 0, len(finest))
	for k := range finest {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		gc := GroupCount{
			ID:    append(GroupID(nil), c.ids[k]...),
			Count: finest[k],
		}
		if len(c.measures) > 0 {
			gc.Sums = make([]float64, len(c.measures))
			gc.NonNull = make([]int64, len(c.measures))
			for mi := range c.measures {
				gc.Sums[mi] = c.sums[mi][finestMask][k]
				gc.NonNull[mi] = c.nonNull[mi][finestMask][k]
			}
		}
		st.Groups = append(st.Groups, gc)
	}
	return st
}

// RestoreCube rebuilds a cube from exported state.
func RestoreCube(st *CubeState) (*Cube, error) {
	if st == nil {
		return nil, fmt.Errorf("datacube: nil cube state")
	}
	c, err := NewWithMeasures(st.Attrs, st.Measures)
	if err != nil {
		return nil, err
	}
	for _, g := range st.Groups {
		if len(st.Measures) > 0 {
			sums, nonNull := g.Sums, g.NonNull
			if sums == nil {
				sums = make([]float64, len(st.Measures))
			}
			if nonNull == nil {
				nonNull = make([]int64, len(st.Measures))
			}
			if err := c.AddMeasuredN(g.ID, g.Count, sums, nonNull); err != nil {
				return nil, err
			}
		} else if err := c.AddN(g.ID, g.Count); err != nil {
			return nil, err
		}
	}
	return c, nil
}
