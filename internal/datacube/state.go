package datacube

import (
	"fmt"
	"sort"
)

// GroupCount pairs a finest GroupID with its tuple count.
type GroupCount struct {
	ID    GroupID
	Count int64
}

// CubeState is the serializable state of a Cube. Only the finest-grouping
// counts are stored: every coarser grouping's count is the exact sum of
// the finest counts it covers, so Restore rebuilds the full cube from the
// finest groups alone via AddN. This keeps snapshots O(groups) instead of
// O(2^|G| · groups).
type CubeState struct {
	Attrs  []string
	Groups []GroupCount
}

// AddN records n tuples belonging to the given finest group at once,
// updating every grouping's counter. It is Add generalized to a batch;
// Restore uses it to rebuild coarser masks from finest-group counts.
func (c *Cube) AddN(id GroupID, n int64) error {
	if len(id) != len(c.attrs) {
		return fmt.Errorf("datacube: group id has %d parts, cube has %d attributes", len(id), len(c.attrs))
	}
	if n < 0 {
		return fmt.Errorf("datacube: negative group count %d", n)
	}
	if n == 0 {
		return nil
	}
	for mask := uint32(0); int(mask) < len(c.counts); mask++ {
		c.counts[mask][id.Project(mask)] += n
	}
	finest := id.Key()
	if _, ok := c.ids[finest]; !ok {
		c.ids[finest] = append(GroupID(nil), id...)
	}
	c.total += n
	return nil
}

// State exports the cube's serializable state. Groups are sorted by
// finest key so the encoding is deterministic.
func (c *Cube) State() *CubeState {
	st := &CubeState{Attrs: append([]string(nil), c.attrs...)}
	finest := c.counts[c.FinestMask()]
	keys := make([]string, 0, len(finest))
	for k := range finest {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st.Groups = append(st.Groups, GroupCount{
			ID:    append(GroupID(nil), c.ids[k]...),
			Count: finest[k],
		})
	}
	return st
}

// RestoreCube rebuilds a cube from exported state.
func RestoreCube(st *CubeState) (*Cube, error) {
	if st == nil {
		return nil, fmt.Errorf("datacube: nil cube state")
	}
	c, err := New(st.Attrs)
	if err != nil {
		return nil, err
	}
	for _, g := range st.Groups {
		if err := c.AddN(g.ID, g.Count); err != nil {
			return nil, err
		}
	}
	return c, nil
}
