package datacube

import "fmt"

// Measure support: beyond tuple counts, a cube can carry exact SUM and
// non-null COUNT prefixes for a set of measure columns, maintained for
// every grouping T ⊆ G alongside the counters. This is the precomputed
// exact-aggregate side of the hybrid estimator (AQP++-style): a query
// whose group-by set is covered by G and whose aggregate column is a
// tracked measure can be answered exactly from the cube, with the
// congressional sample reserved for the residual.
//
// A measure value may be null (the source row's column was NULL or not
// numeric); nulls contribute to the tuple count but not to the measure's
// sum or non-null count, matching SQL SUM/COUNT(col) semantics.

// MeasureValue carries one measure column's contribution for a tuple.
// OK=false means NULL: no sum or non-null-count contribution.
type MeasureValue struct {
	V  float64
	OK bool
}

// NewWithMeasures creates a cube over the named grouping attributes that
// additionally tracks exact SUM and non-null COUNT for each measure
// column. Measure names must be non-empty and distinct.
func NewWithMeasures(attrs, measures []string) (*Cube, error) {
	c, err := New(attrs)
	if err != nil {
		return nil, err
	}
	if len(measures) == 0 {
		return c, nil
	}
	c.measures = append([]string(nil), measures...)
	c.mIndex = make(map[string]int, len(measures))
	for i, m := range measures {
		if m == "" {
			return nil, fmt.Errorf("datacube: empty measure name at index %d", i)
		}
		if _, dup := c.mIndex[m]; dup {
			return nil, fmt.Errorf("datacube: duplicate measure %q", m)
		}
		c.mIndex[m] = i
	}
	c.sums = make([][]map[string]float64, len(measures))
	c.nonNull = make([][]map[string]int64, len(measures))
	for i := range measures {
		c.sums[i] = make([]map[string]float64, len(c.counts))
		c.nonNull[i] = make([]map[string]int64, len(c.counts))
		for mask := range c.counts {
			c.sums[i][mask] = make(map[string]float64)
			c.nonNull[i][mask] = make(map[string]int64)
		}
	}
	return c, nil
}

// Measures returns the tracked measure column names (nil if none).
func (c *Cube) Measures() []string { return c.measures }

// HasMeasure reports whether the named column is a tracked measure.
func (c *Cube) HasMeasure(col string) bool {
	_, ok := c.mIndex[col]
	return ok
}

// AddMeasured records one tuple with its measure values, updating every
// grouping's counter and measure prefixes. vals must align with the
// cube's measure list (Measures()); on a cube without measures it
// degrades to Add.
func (c *Cube) AddMeasured(id GroupID, vals []MeasureValue) error {
	if len(vals) != len(c.measures) {
		return fmt.Errorf("datacube: %d measure values, cube tracks %d measures", len(vals), len(c.measures))
	}
	if err := c.Add(id); err != nil {
		return err
	}
	for mi, mv := range vals {
		if !mv.OK {
			continue
		}
		for mask := uint32(0); int(mask) < len(c.counts); mask++ {
			key := id.Project(mask)
			c.sums[mi][mask][key] += mv.V
			c.nonNull[mi][mask][key]++
		}
	}
	return nil
}

// AddMeasuredN records n tuples of the given finest group along with the
// group's aggregate measure contributions (total sum, total non-null
// count per measure). Restore uses it to rebuild coarser masks from
// finest-group state.
func (c *Cube) AddMeasuredN(id GroupID, n int64, sums []float64, nonNull []int64) error {
	if len(sums) != len(c.measures) || len(nonNull) != len(c.measures) {
		return fmt.Errorf("datacube: measure batch has %d/%d entries, cube tracks %d measures",
			len(sums), len(nonNull), len(c.measures))
	}
	// Validate before touching any counter: AddN mutates every mask, and
	// a rejected batch must leave the cube exactly as it was.
	for mi := range c.measures {
		if nonNull[mi] < 0 {
			return fmt.Errorf("datacube: negative non-null count %d for measure %q", nonNull[mi], c.measures[mi])
		}
	}
	if err := c.AddN(id, n); err != nil {
		return err
	}
	for mi := range c.measures {
		if nonNull[mi] == 0 && sums[mi] == 0 {
			continue
		}
		for mask := uint32(0); int(mask) < len(c.counts); mask++ {
			key := id.Project(mask)
			c.sums[mi][mask][key] += sums[mi]
			c.nonNull[mi][mask][key] += nonNull[mi]
		}
	}
	return nil
}

// MeasureSum returns the exact SUM of the measure column over the group
// identified by key under grouping mask. ok=false if the column is not a
// tracked measure.
func (c *Cube) MeasureSum(mask uint32, key, col string) (float64, bool) {
	mi, ok := c.mIndex[col]
	if !ok {
		return 0, false
	}
	return c.sums[mi][mask][key], true
}

// MeasureNonNull returns the exact non-null COUNT of the measure column
// over the group identified by key under grouping mask.
func (c *Cube) MeasureNonNull(mask uint32, key, col string) (int64, bool) {
	mi, ok := c.mIndex[col]
	if !ok {
		return 0, false
	}
	return c.nonNull[mi][mask][key], true
}

// MeasureGroupsUnder calls fn for each non-empty group under grouping
// mask with the group's tuple count and the named measure's exact sum
// and non-null count. Returns false (without iterating) if the column is
// not a tracked measure. Iteration order is unspecified.
func (c *Cube) MeasureGroupsUnder(mask uint32, col string, fn func(key string, count int64, sum float64, nonNull int64)) bool {
	mi, ok := c.mIndex[col]
	if !ok {
		return false
	}
	sums, nn := c.sums[mi][mask], c.nonNull[mi][mask]
	for k, n := range c.counts[mask] {
		fn(k, n, sums[k], nn[k])
	}
	return true
}

// sameMeasures reports whether two cubes track the same measure list in
// the same order.
func sameMeasures(a, b *Cube) bool {
	if len(a.measures) != len(b.measures) {
		return false
	}
	for i, m := range a.measures {
		if b.measures[i] != m {
			return false
		}
	}
	return true
}
