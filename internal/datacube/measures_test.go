package datacube

import (
	"fmt"
	"math/rand"
	"testing"
)

func measured(v float64) MeasureValue { return MeasureValue{V: v, OK: true} }

func TestNewWithMeasuresValidation(t *testing.T) {
	if _, err := NewWithMeasures([]string{"a"}, []string{""}); err == nil {
		t.Error("empty measure name accepted")
	}
	if _, err := NewWithMeasures([]string{"a"}, []string{"q", "q"}); err == nil {
		t.Error("duplicate measure accepted")
	}
	c, err := NewWithMeasures([]string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Measures() != nil || c.HasMeasure("q") {
		t.Errorf("measure-less cube reports measures: %v", c.Measures())
	}
	// Degrades to Add: measure accessors refuse unknown columns.
	if err := c.AddMeasured(id("x"), nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.MeasureSum(0, "", "q"); ok {
		t.Error("MeasureSum answered for untracked column")
	}
}

func TestAddMeasuredPrefixesAllMasks(t *testing.T) {
	c, err := NewWithMeasures([]string{"A", "B"}, []string{"q", "p"})
	if err != nil {
		t.Fatal(err)
	}
	// Two groups; q is null on one row of (a1,b1), p is always set.
	rows := []struct {
		a, b string
		q    MeasureValue
		p    MeasureValue
	}{
		{"a1", "b1", measured(5), measured(100)},
		{"a1", "b1", MeasureValue{}, measured(200)}, // q NULL
		{"a1", "b2", measured(7), measured(300)},
		{"a2", "b1", measured(11), measured(400)},
	}
	for _, r := range rows {
		if err := c.AddMeasured(id(r.a, r.b), []MeasureValue{r.q, r.p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddMeasured(id("a1", "b1"), []MeasureValue{measured(1)}); err == nil {
		t.Error("measure arity mismatch accepted")
	}

	check := func(mask uint32, key, col string, wantSum float64, wantNN int64) {
		t.Helper()
		s, ok := c.MeasureSum(mask, key, col)
		if !ok || s != wantSum {
			t.Errorf("MeasureSum(%b, %q, %s) = %v/%v, want %v", mask, key, col, s, ok, wantSum)
		}
		nn, ok := c.MeasureNonNull(mask, key, col)
		if !ok || nn != wantNN {
			t.Errorf("MeasureNonNull(%b, %q, %s) = %v/%v, want %v", mask, key, col, nn, ok, wantNN)
		}
	}
	// Finest grouping (A,B): the NULL q row counts for the tuple count
	// but not the measure.
	check(0b11, id("a1", "b1").Key(), "q", 5, 1)
	check(0b11, id("a1", "b1").Key(), "p", 300, 2)
	if n := c.Count(0b11, id("a1", "b1").Key()); n != 2 {
		t.Errorf("finest count %d, want 2 (nulls still count tuples)", n)
	}
	// Grouping on A only: a1 rolls up b1+b2.
	check(0b01, "a1", "q", 12, 2)
	check(0b01, "a1", "p", 600, 3)
	// Empty grouping: grand totals.
	check(0, "", "q", 23, 3)
	check(0, "", "p", 1000, 4)
}

// TestMeasureMergeCloneRestoreEquivalence drives a randomized tuple
// stream three ways — one sequential cube, a K-way partition merged
// with Merge, and a State→RestoreCube round-trip — and requires every
// mask/group/measure cell to agree exactly. This is the property the
// hybrid estimator's sharded exports rely on: per-shard cubes must
// merge into precisely the single-scan cube.
func TestMeasureMergeCloneRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	attrs := []string{"A", "B", "C"}
	meas := []string{"q", "p"}
	seq, err := NewWithMeasures(attrs, meas)
	if err != nil {
		t.Fatal(err)
	}
	const parts = 4
	shards := make([]*Cube, parts)
	for i := range shards {
		if shards[i], err = NewWithMeasures(attrs, meas); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		gid := id(
			fmt.Sprintf("a%d", rng.Intn(4)),
			fmt.Sprintf("b%d", rng.Intn(3)),
			fmt.Sprintf("c%d", rng.Intn(5)),
		)
		vals := []MeasureValue{
			{V: rng.Float64() * 100, OK: rng.Intn(10) > 0}, // ~10% NULL
			{V: float64(rng.Intn(1000)), OK: true},
		}
		if err := seq.AddMeasured(gid, vals); err != nil {
			t.Fatal(err)
		}
		if err := shards[rng.Intn(parts)].AddMeasured(gid, vals); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := NewWithMeasures(attrs, meas)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shards {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := RestoreCube(seq.State())
	if err != nil {
		t.Fatal(err)
	}
	clone := seq.Clone()

	for name, got := range map[string]*Cube{"merged": merged, "restored": restored, "clone": clone} {
		if got.Total() != seq.Total() {
			t.Errorf("%s: total %d != %d", name, got.Total(), seq.Total())
			continue
		}
		for mask := uint32(0); int(mask) < seq.NumGroupings(); mask++ {
			if got.NumGroups(mask) != seq.NumGroups(mask) {
				t.Errorf("%s mask %b: %d groups != %d", name, mask, got.NumGroups(mask), seq.NumGroups(mask))
			}
			for _, col := range meas {
				ok := seq.MeasureGroupsUnder(mask, col, func(key string, count int64, sum float64, nonNull int64) {
					if gc := got.Count(mask, key); gc != count {
						t.Errorf("%s mask %b %q: count %d != %d", name, mask, key, gc, count)
					}
					gs, _ := got.MeasureSum(mask, key, col)
					gn, _ := got.MeasureNonNull(mask, key, col)
					// Merge and restore add the same float values in a
					// different order (per finest group), so sums match
					// exactly only up to reassociation; counts are integers
					// and must be identical.
					if relErr := abs(gs-sum) / max1(abs(sum)); relErr > 1e-12 {
						t.Errorf("%s mask %b %q %s: sum %v != %v", name, mask, key, col, gs, sum)
					}
					if gn != nonNull {
						t.Errorf("%s mask %b %q %s: nonNull %d != %d", name, mask, key, col, gn, nonNull)
					}
				})
				if !ok {
					t.Fatalf("%s: measure %q lost", name, col)
				}
			}
		}
	}

	// Clone must be deep: mutating it cannot leak into the original.
	if err := clone.AddMeasured(id("a0", "b0", "c0"), []MeasureValue{measured(1e9), measured(1)}); err != nil {
		t.Fatal(err)
	}
	if got, _ := seq.MeasureSum(0, "", "q"); got >= 1e9 {
		t.Error("Clone shares measure maps with the original")
	}

	// Measure-set mismatches must refuse to merge.
	other := MustNew(attrs)
	if err := merged.Merge(other); err == nil {
		t.Error("merge of count-only cube into measured cube accepted")
	}
}

func TestAddMeasuredNValidation(t *testing.T) {
	c, err := NewWithMeasures([]string{"A"}, []string{"q"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddMeasuredN(id("x"), 3, []float64{1}, []int64{-1}); err == nil {
		t.Error("negative non-null count accepted")
	}
	if err := c.AddMeasuredN(id("x"), 3, []float64{1, 2}, []int64{1, 1}); err == nil {
		t.Error("measure batch arity mismatch accepted")
	}
	if err := c.AddMeasuredN(id("x"), 2, []float64{10}, []int64{2}); err != nil {
		t.Fatal(err)
	}
	if s, _ := c.MeasureSum(0b1, "x", "q"); s != 10 {
		t.Errorf("batch sum %v, want 10", s)
	}
	if n := c.Count(0b1, "x"); n != 2 {
		t.Errorf("batch count %d, want 2", n)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}
