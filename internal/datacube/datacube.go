// Package datacube maintains tuple counts for every group under every
// grouping T ⊆ G of a relation's grouping attributes — the "data cube of
// the counts of each group in all possible groupings" that Section 6 of
// the paper uses to size congressional samples. The cube is built in one
// pass and is incrementally maintainable: each inserted tuple updates
// 2^|G| counters, matching the paper's stated per-insert bookkeeping
// cost for Congress maintenance.
package datacube

import (
	"errors"
	"fmt"
	"strings"
)

// KeySep separates per-attribute key components inside a composite group
// key. Attribute keys produced by engine.Value.GroupKey begin with a
// NUL byte, so the separator cannot collide with key contents.
const KeySep = "\x1f"

// GroupID identifies a tuple's group at the finest partitioning: one
// canonical key string per grouping attribute, in attribute order.
type GroupID []string

// Project returns the composite key of the group this tuple belongs to
// under the grouping selected by mask (bit i set = attribute i present).
// The empty grouping projects to the empty string: all tuples share one
// group, per the paper's convention that a query with no group-by
// returns a single group.
func (g GroupID) Project(mask uint32) string {
	if mask == 0 {
		return ""
	}
	var b strings.Builder
	for i, part := range g {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(KeySep)
		}
		b.WriteString(part)
	}
	return b.String()
}

// Key returns the finest-grouping composite key (all attributes).
func (g GroupID) Key() string {
	return g.Project((1 << uint(len(g))) - 1)
}

// Cube counts tuples per group for all 2^n groupings over n grouping
// attributes.
type Cube struct {
	attrs  []string
	counts []map[string]int64 // counts[mask][compositeKey] = n_group
	ids    map[string]GroupID // finest key -> the id that produced it
	total  int64

	// Optional exact measure prefixes (see measures.go). Nil slices when
	// the cube tracks counts only.
	measures []string
	mIndex   map[string]int
	sums     [][]map[string]float64 // sums[measure][mask][compositeKey]
	nonNull  [][]map[string]int64   // nonNull[measure][mask][compositeKey]
}

// MaxAttrs bounds the number of grouping attributes; the cube costs
// 2^n counters per tuple, so n is kept small (the paper uses 3).
const MaxAttrs = 16

// New creates a cube over the named grouping attributes.
func New(attrs []string) (*Cube, error) {
	if len(attrs) == 0 {
		return nil, errors.New("datacube: need at least one grouping attribute")
	}
	if len(attrs) > MaxAttrs {
		return nil, fmt.Errorf("datacube: %d grouping attributes exceeds limit %d", len(attrs), MaxAttrs)
	}
	c := &Cube{
		attrs:  append([]string(nil), attrs...),
		counts: make([]map[string]int64, 1<<uint(len(attrs))),
		ids:    make(map[string]GroupID),
	}
	for i := range c.counts {
		c.counts[i] = make(map[string]int64)
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(attrs []string) *Cube {
	c, err := New(attrs)
	if err != nil {
		panic(err)
	}
	return c
}

// Attrs returns the grouping attribute names.
func (c *Cube) Attrs() []string { return c.attrs }

// NumAttrs returns |G|.
func (c *Cube) NumAttrs() int { return len(c.attrs) }

// NumGroupings returns 2^|G|.
func (c *Cube) NumGroupings() int { return len(c.counts) }

// Add records one tuple belonging to the given finest group, updating
// every grouping's counter.
func (c *Cube) Add(id GroupID) error {
	if len(id) != len(c.attrs) {
		return fmt.Errorf("datacube: group id has %d parts, cube has %d attributes", len(id), len(c.attrs))
	}
	for mask := uint32(0); int(mask) < len(c.counts); mask++ {
		c.counts[mask][id.Project(mask)]++
	}
	finest := id.Key()
	if _, ok := c.ids[finest]; !ok {
		c.ids[finest] = append(GroupID(nil), id...)
	}
	c.total++
	return nil
}

// ID returns the GroupID that produced the given finest-group key.
func (c *Cube) ID(finestKey string) (GroupID, bool) {
	id, ok := c.ids[finestKey]
	return id, ok
}

// FinestIDs calls fn for each non-empty finest group with its GroupID
// and count, in unspecified order.
func (c *Cube) FinestIDs(fn func(id GroupID, key string, count int64)) {
	for k, n := range c.counts[c.FinestMask()] {
		fn(c.ids[k], k, n)
	}
}

// Total returns the number of tuples recorded.
func (c *Cube) Total() int64 { return c.total }

// Count returns n_h: the number of tuples in the group identified by the
// composite key under the grouping selected by mask.
func (c *Cube) Count(mask uint32, key string) int64 {
	return c.counts[mask][key]
}

// CountFor returns the count of the group that a tuple with the given
// finest GroupID belongs to under grouping mask (n_{g(τ,T)} in Eq. 8).
func (c *Cube) CountFor(mask uint32, id GroupID) int64 {
	return c.counts[mask][id.Project(mask)]
}

// NumGroups returns m_T: the number of non-empty groups under the
// grouping selected by mask.
func (c *Cube) NumGroups(mask uint32) int {
	return len(c.counts[mask])
}

// FinestMask returns the mask selecting all attributes.
func (c *Cube) FinestMask() uint32 {
	return uint32(len(c.counts) - 1)
}

// FinestGroups calls fn for each non-empty finest group with its count.
// Iteration order is unspecified; callers needing determinism should
// sort the keys.
func (c *Cube) FinestGroups(fn func(key string, count int64)) {
	for k, n := range c.counts[c.FinestMask()] {
		fn(k, n)
	}
}

// GroupsUnder calls fn for each non-empty group under grouping mask.
func (c *Cube) GroupsUnder(mask uint32, fn func(key string, count int64)) {
	for k, n := range c.counts[mask] {
		fn(k, n)
	}
}

// Merge folds another cube's counts into this one. Both cubes must be
// defined over the same grouping attributes (in the same order). Merging
// is how parallel one-pass construction combines per-worker partial
// cubes into the full data cube; counts are additive, so the result is
// identical to a single sequential scan.
func (c *Cube) Merge(other *Cube) error {
	if len(other.attrs) != len(c.attrs) {
		return fmt.Errorf("datacube: merging cube with %d attributes into cube with %d", len(other.attrs), len(c.attrs))
	}
	for i, a := range c.attrs {
		if other.attrs[i] != a {
			return fmt.Errorf("datacube: merging cube over %v into cube over %v", other.attrs, c.attrs)
		}
	}
	if !sameMeasures(c, other) {
		return fmt.Errorf("datacube: merging cube over measures %v into cube over measures %v", other.measures, c.measures)
	}
	for mask, m := range other.counts {
		dst := c.counts[mask]
		for k, v := range m {
			dst[k] += v
		}
	}
	for mi := range c.measures {
		for mask := range other.sums[mi] {
			dstS, dstN := c.sums[mi][mask], c.nonNull[mi][mask]
			for k, v := range other.sums[mi][mask] {
				dstS[k] += v
			}
			for k, v := range other.nonNull[mi][mask] {
				dstN[k] += v
			}
		}
	}
	for k, id := range other.ids {
		if _, ok := c.ids[k]; !ok {
			c.ids[k] = append(GroupID(nil), id...)
		}
	}
	c.total += other.total
	return nil
}

// Clone returns a deep copy of the cube.
func (c *Cube) Clone() *Cube {
	out, err := NewWithMeasures(c.attrs, c.measures)
	if err != nil {
		panic(err)
	}
	out.total = c.total
	for mask, m := range c.counts {
		dst := out.counts[mask]
		for k, v := range m {
			dst[k] = v
		}
	}
	for mi := range c.measures {
		for mask := range c.sums[mi] {
			dstS, dstN := out.sums[mi][mask], out.nonNull[mi][mask]
			for k, v := range c.sums[mi][mask] {
				dstS[k] = v
			}
			for k, v := range c.nonNull[mi][mask] {
				dstN[k] = v
			}
		}
	}
	for k, id := range c.ids {
		out.ids[k] = append(GroupID(nil), id...)
	}
	return out
}
