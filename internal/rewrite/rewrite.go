// Package rewrite implements the four query-rewriting strategies of
// Section 5: Integrated, Nested-integrated, Normalized, and
// Key-normalized. Each takes a user query over the base relation and
// produces an equivalent query over the sample relation(s) with the
// aggregate expressions scaled by per-stratum scale factors, so the
// back-end engine returns statistically unbiased approximate answers.
package rewrite

import (
	"fmt"
	"strings"

	"github.com/approxdb/congress/internal/sqlparse"
)

// Strategy selects the rewriting technique.
type Strategy int

// The four rewriting strategies of Section 5.2.
const (
	// Integrated stores the ScaleFactor with every sample tuple and
	// multiplies per tuple (Figure 8).
	Integrated Strategy = iota
	// NestedIntegrated aggregates per (group, SF) first and multiplies
	// once per group (Figure 11).
	NestedIntegrated
	// Normalized stores ScaleFactors in a separate AuxRel joined on the
	// grouping columns (Figure 9).
	Normalized
	// KeyNormalized joins on a compact group identifier instead of the
	// grouping columns (Figure 10).
	KeyNormalized
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Integrated:
		return "Integrated"
	case NestedIntegrated:
		return "Nested-integrated"
	case Normalized:
		return "Normalized"
	case KeyNormalized:
		return "Key-normalized"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all four rewriting strategies in presentation order.
var Strategies = []Strategy{Integrated, NestedIntegrated, Normalized, KeyNormalized}

// Tables names the synopsis relations a rewrite targets.
type Tables struct {
	// Base is the base relation name the user query references.
	Base string
	// Sample is the sample relation. For Integrated/NestedIntegrated it
	// carries an SF column; for KeyNormalized a GID column; for
	// Normalized just the base columns.
	Sample string
	// Aux is the auxiliary scale-factor relation for Normalized
	// (grouping columns + SF) and KeyNormalized (GID + SF).
	Aux string
	// GroupCols is the full grouping attribute set G of the synopsis;
	// the Normalized join must match on all of G because scale factors
	// are per finest group.
	GroupCols []string
	// SFCol and GIDCol name the scale-factor and group-id columns
	// (default "sf" and "gid").
	SFCol  string
	GIDCol string
	// WithErrorColumns appends an Aqua error-bound pseudo-aggregate for
	// each rewritten aggregate (Figure 2's sum_error column). Supported
	// for Integrated only.
	WithErrorColumns bool
}

func (t *Tables) sfCol() string {
	if t.SFCol == "" {
		return "sf"
	}
	return t.SFCol
}

func (t *Tables) gidCol() string {
	if t.GIDCol == "" {
		return "gid"
	}
	return t.GIDCol
}

// Rewrite transforms a single-table aggregate query over t.Base into a
// query over the sample relations using the given strategy. The input
// statement is not modified.
func Rewrite(stmt *sqlparse.SelectStmt, strat Strategy, t Tables) (*sqlparse.SelectStmt, error) {
	if err := checkRewritable(stmt, t); err != nil {
		return nil, err
	}
	switch strat {
	case Integrated:
		return rewriteIntegrated(stmt, t)
	case NestedIntegrated:
		return rewriteNestedIntegrated(stmt, t)
	case Normalized:
		return rewriteNormalized(stmt, t, false)
	case KeyNormalized:
		return rewriteNormalized(stmt, t, true)
	default:
		return nil, fmt.Errorf("rewrite: unknown strategy %v", strat)
	}
}

// checkRewritable validates the query shape: single reference to the
// base table, no joins, and no DISTINCT aggregates (which cannot be
// scaled).
func checkRewritable(stmt *sqlparse.SelectStmt, t Tables) error {
	if len(stmt.From) != 1 || stmt.From[0].Subquery != nil || len(stmt.Joins) != 0 {
		return fmt.Errorf("rewrite: query must select from exactly the base relation %q", t.Base)
	}
	if !strings.EqualFold(stmt.From[0].Name, t.Base) {
		return fmt.Errorf("rewrite: query references %q, synopsis covers %q", stmt.From[0].Name, t.Base)
	}
	var err error
	visit := func(e sqlparse.Expr) {
		sqlparse.Walk(e, func(n sqlparse.Expr) bool {
			if f, ok := n.(*sqlparse.FuncCall); ok && sqlparse.AggregateFuncs[f.Name] {
				if f.Distinct && err == nil {
					err = fmt.Errorf("rewrite: DISTINCT aggregates cannot be answered from a sample")
				}
			}
			return true
		})
	}
	for _, item := range stmt.Select {
		if item.Star {
			if err == nil {
				err = fmt.Errorf("rewrite: SELECT * is not an aggregate query")
			}
			continue
		}
		visit(item.Expr)
	}
	visit(stmt.Having)
	return err
}

// cloneStmt shallow-copies the statement with fresh slices so rewrites
// never alias the caller's AST.
func cloneStmt(stmt *sqlparse.SelectStmt) *sqlparse.SelectStmt {
	out := *stmt
	out.Select = append([]sqlparse.SelectItem(nil), stmt.Select...)
	out.From = append([]sqlparse.TableRef(nil), stmt.From...)
	out.Joins = append([]sqlparse.JoinClause(nil), stmt.Joins...)
	out.GroupBy = append([]sqlparse.Expr(nil), stmt.GroupBy...)
	out.OrderBy = append([]sqlparse.OrderItem(nil), stmt.OrderBy...)
	return &out
}

// mapAggregates rebuilds an expression tree, replacing each aggregate
// call with fn's result. Non-aggregate structure is rebuilt so the
// original tree is never mutated.
func mapAggregates(e sqlparse.Expr, fn func(*sqlparse.FuncCall) (sqlparse.Expr, error)) (sqlparse.Expr, error) {
	switch n := e.(type) {
	case nil:
		return nil, nil
	case *sqlparse.ColumnRef, *sqlparse.Literal:
		return n, nil
	case *sqlparse.BinaryExpr:
		l, err := mapAggregates(n.Left, fn)
		if err != nil {
			return nil, err
		}
		r, err := mapAggregates(n.Right, fn)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BinaryExpr{Op: n.Op, Left: l, Right: r}, nil
	case *sqlparse.UnaryExpr:
		in, err := mapAggregates(n.Expr, fn)
		if err != nil {
			return nil, err
		}
		return &sqlparse.UnaryExpr{Op: n.Op, Expr: in}, nil
	case *sqlparse.BetweenExpr:
		x, err := mapAggregates(n.Expr, fn)
		if err != nil {
			return nil, err
		}
		lo, err := mapAggregates(n.Lo, fn)
		if err != nil {
			return nil, err
		}
		hi, err := mapAggregates(n.Hi, fn)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BetweenExpr{Expr: x, Lo: lo, Hi: hi, Not: n.Not}, nil
	case *sqlparse.InExpr:
		x, err := mapAggregates(n.Expr, fn)
		if err != nil {
			return nil, err
		}
		list := make([]sqlparse.Expr, len(n.List))
		for i, item := range n.List {
			li, err := mapAggregates(item, fn)
			if err != nil {
				return nil, err
			}
			list[i] = li
		}
		return &sqlparse.InExpr{Expr: x, List: list, Not: n.Not}, nil
	case *sqlparse.IsNullExpr:
		x, err := mapAggregates(n.Expr, fn)
		if err != nil {
			return nil, err
		}
		return &sqlparse.IsNullExpr{Expr: x, Not: n.Not}, nil
	case *sqlparse.CaseExpr:
		op, err := mapAggregates(n.Operand, fn)
		if err != nil {
			return nil, err
		}
		whens := make([]sqlparse.WhenClause, len(n.Whens))
		for i, w := range n.Whens {
			c, err := mapAggregates(w.Cond, fn)
			if err != nil {
				return nil, err
			}
			r, err := mapAggregates(w.Result, fn)
			if err != nil {
				return nil, err
			}
			whens[i] = sqlparse.WhenClause{Cond: c, Result: r}
		}
		els, err := mapAggregates(n.Else, fn)
		if err != nil {
			return nil, err
		}
		return &sqlparse.CaseExpr{Operand: op, Whens: whens, Else: els}, nil
	case *sqlparse.FuncCall:
		if sqlparse.AggregateFuncs[n.Name] {
			return fn(n)
		}
		args := make([]sqlparse.Expr, len(n.Args))
		for i, a := range n.Args {
			ai, err := mapAggregates(a, fn)
			if err != nil {
				return nil, err
			}
			args[i] = ai
		}
		return &sqlparse.FuncCall{Name: n.Name, Args: args, Star: n.Star, Distinct: n.Distinct}, nil
	default:
		return nil, fmt.Errorf("rewrite: unsupported expression %T", e)
	}
}

// col builds an unqualified column reference.
func col(name string) *sqlparse.ColumnRef { return &sqlparse.ColumnRef{Name: name} }

// qcol builds a qualified column reference.
func qcol(table, name string) *sqlparse.ColumnRef {
	return &sqlparse.ColumnRef{Table: table, Name: name}
}

func mul(a, b sqlparse.Expr) sqlparse.Expr { return &sqlparse.BinaryExpr{Op: "*", Left: a, Right: b} }
func div(a, b sqlparse.Expr) sqlparse.Expr { return &sqlparse.BinaryExpr{Op: "/", Left: a, Right: b} }

func sum(arg sqlparse.Expr) *sqlparse.FuncCall {
	return &sqlparse.FuncCall{Name: "sum", Args: []sqlparse.Expr{arg}}
}

// integratedAgg scales one aggregate for the Integrated family, given a
// factory for the SF column reference (unqualified for Integrated,
// aux-qualified for Normalized).
func integratedAgg(f *sqlparse.FuncCall, sf func() sqlparse.Expr) (sqlparse.Expr, error) {
	switch f.Name {
	case "sum":
		return sum(mul(f.Args[0], sf())), nil
	case "count":
		// COUNT(*) and COUNT(col) both scale to SUM(SF); for COUNT(col)
		// NULLs should be excluded, but sampled synopses never store
		// NULL grouping/aggregate values, so the simple form suffices.
		return sum(sf()), nil
	case "avg":
		return div(sum(mul(f.Args[0], sf())), sum(sf())), nil
	case "min", "max":
		// Extremes pass through unscaled: the sample's min/max is the
		// natural (biased) estimator.
		return f, nil
	default:
		return nil, fmt.Errorf("rewrite: aggregate %s cannot be rewritten over a sample", strings.ToUpper(f.Name))
	}
}

// errorAggFor builds the Aqua error-bound companion aggregate for f, or
// nil if none applies.
func errorAggFor(f *sqlparse.FuncCall, sfName string) sqlparse.Expr {
	switch f.Name {
	case "sum":
		return &sqlparse.FuncCall{Name: "sum_error", Args: []sqlparse.Expr{f.Args[0], col(sfName)}}
	case "count":
		return &sqlparse.FuncCall{Name: "count_error", Args: []sqlparse.Expr{col(sfName)}}
	case "avg":
		return &sqlparse.FuncCall{Name: "avg_error", Args: []sqlparse.Expr{f.Args[0], col(sfName)}}
	default:
		return nil
	}
}

// rewriteIntegrated implements Figure 8 (and, with WithErrorColumns,
// Figure 2's error-annotated form).
func rewriteIntegrated(stmt *sqlparse.SelectStmt, t Tables) (*sqlparse.SelectStmt, error) {
	out := cloneStmt(stmt)
	out.From = []sqlparse.TableRef{{Name: t.Sample}}
	sf := func() sqlparse.Expr { return col(t.sfCol()) }

	var errorItems []sqlparse.SelectItem
	for i, item := range out.Select {
		e, err := mapAggregates(item.Expr, func(f *sqlparse.FuncCall) (sqlparse.Expr, error) {
			if t.WithErrorColumns {
				if ea := errorAggFor(f, t.sfCol()); ea != nil {
					errorItems = append(errorItems, sqlparse.SelectItem{
						Expr:  ea,
						Alias: fmt.Sprintf("error%d", len(errorItems)+1),
					})
				}
			}
			return integratedAgg(f, sf)
		})
		if err != nil {
			return nil, err
		}
		out.Select[i] = sqlparse.SelectItem{Expr: e, Alias: item.Alias}
	}
	out.Select = append(out.Select, errorItems...)
	if out.Having != nil {
		h, err := mapAggregates(out.Having, func(f *sqlparse.FuncCall) (sqlparse.Expr, error) {
			return integratedAgg(f, sf)
		})
		if err != nil {
			return nil, err
		}
		out.Having = h
	}
	for i, o := range out.OrderBy {
		e, err := mapAggregates(o.Expr, func(f *sqlparse.FuncCall) (sqlparse.Expr, error) {
			return integratedAgg(f, sf)
		})
		if err != nil {
			return nil, err
		}
		out.OrderBy[i] = sqlparse.OrderItem{Expr: e, Desc: o.Desc}
	}
	return out, nil
}

// rewriteNestedIntegrated implements Figure 11/13: an inner query
// aggregates per (grouping, SF); the outer query applies the scale
// factor once per group.
func rewriteNestedIntegrated(stmt *sqlparse.SelectStmt, t Tables) (*sqlparse.SelectStmt, error) {
	sfName := t.sfCol()

	inner := &sqlparse.SelectStmt{Limit: -1}
	inner.From = []sqlparse.TableRef{{Name: t.Sample}}
	inner.Where = stmt.Where
	for _, g := range stmt.GroupBy {
		gc, ok := g.(*sqlparse.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("rewrite: nested-integrated requires plain column group-by keys, got %s", g)
		}
		inner.GroupBy = append(inner.GroupBy, col(gc.Name))
		inner.Select = append(inner.Select, sqlparse.SelectItem{Expr: col(gc.Name)})
	}
	inner.GroupBy = append(inner.GroupBy, col(sfName))
	inner.Select = append(inner.Select, sqlparse.SelectItem{Expr: col(sfName)})

	// Allocate one inner partial aggregate per distinct partial
	// expression, shared across outer references.
	partials := make(map[string]string) // partial expr rendering -> alias
	addPartial := func(e sqlparse.Expr) string {
		key := e.String()
		if alias, ok := partials[key]; ok {
			return alias
		}
		alias := fmt.Sprintf("p%d", len(partials))
		partials[key] = alias
		inner.Select = append(inner.Select, sqlparse.SelectItem{Expr: e, Alias: alias})
		return alias
	}

	outerAgg := func(f *sqlparse.FuncCall) (sqlparse.Expr, error) {
		switch f.Name {
		case "sum":
			alias := addPartial(sum(f.Args[0]))
			return sum(mul(col(alias), col(sfName))), nil
		case "count":
			var inner *sqlparse.FuncCall
			if f.Star {
				inner = &sqlparse.FuncCall{Name: "count", Star: true}
			} else {
				inner = &sqlparse.FuncCall{Name: "count", Args: f.Args}
			}
			alias := addPartial(inner)
			return sum(mul(col(alias), col(sfName))), nil
		case "avg":
			sAlias := addPartial(sum(f.Args[0]))
			cAlias := addPartial(&sqlparse.FuncCall{Name: "count", Star: true})
			return div(
				sum(mul(col(sAlias), col(sfName))),
				sum(mul(col(cAlias), col(sfName))),
			), nil
		case "min", "max":
			alias := addPartial(&sqlparse.FuncCall{Name: f.Name, Args: f.Args})
			return &sqlparse.FuncCall{Name: f.Name, Args: []sqlparse.Expr{col(alias)}}, nil
		default:
			return nil, fmt.Errorf("rewrite: aggregate %s cannot be rewritten over a sample", strings.ToUpper(f.Name))
		}
	}

	outer := &sqlparse.SelectStmt{Limit: stmt.Limit, Offset: stmt.Offset, Distinct: stmt.Distinct}
	for _, g := range stmt.GroupBy {
		gc := g.(*sqlparse.ColumnRef)
		outer.GroupBy = append(outer.GroupBy, col(gc.Name))
	}
	for _, item := range stmt.Select {
		e, err := mapAggregates(item.Expr, outerAgg)
		if err != nil {
			return nil, err
		}
		outer.Select = append(outer.Select, sqlparse.SelectItem{Expr: e, Alias: item.Alias})
	}
	if stmt.Having != nil {
		h, err := mapAggregates(stmt.Having, outerAgg)
		if err != nil {
			return nil, err
		}
		outer.Having = h
	}
	for _, o := range stmt.OrderBy {
		e, err := mapAggregates(o.Expr, outerAgg)
		if err != nil {
			return nil, err
		}
		outer.OrderBy = append(outer.OrderBy, sqlparse.OrderItem{Expr: e, Desc: o.Desc})
	}
	outer.From = []sqlparse.TableRef{{Subquery: inner}}
	return outer, nil
}

// rewriteNormalized implements Figures 9 and 10: the sample relation is
// joined with the auxiliary scale-factor relation — on all grouping
// columns (Normalized) or on the group identifier (Key-normalized) —
// and aggregates are scaled by the aux SF.
func rewriteNormalized(stmt *sqlparse.SelectStmt, t Tables, byKey bool) (*sqlparse.SelectStmt, error) {
	const (
		sAlias = "s"
		xAlias = "x"
	)
	if t.Aux == "" {
		return nil, fmt.Errorf("rewrite: %s requires an aux relation", map[bool]string{false: "Normalized", true: "Key-normalized"}[byKey])
	}
	out := cloneStmt(stmt)
	out.From = []sqlparse.TableRef{
		{Name: t.Sample, Alias: sAlias},
		{Name: t.Aux, Alias: xAlias},
	}

	// Join condition.
	var join sqlparse.Expr
	if byKey {
		join = &sqlparse.BinaryExpr{Op: "=", Left: qcol(sAlias, t.gidCol()), Right: qcol(xAlias, t.gidCol())}
	} else {
		if len(t.GroupCols) == 0 {
			return nil, fmt.Errorf("rewrite: Normalized requires the synopsis grouping columns")
		}
		for _, g := range t.GroupCols {
			eq := &sqlparse.BinaryExpr{Op: "=", Left: qcol(sAlias, g), Right: qcol(xAlias, g)}
			if join == nil {
				join = eq
			} else {
				join = &sqlparse.BinaryExpr{Op: "and", Left: join, Right: eq}
			}
		}
	}

	// Qualify every base-column reference with the sample alias, and
	// scale aggregates with the aux SF.
	sf := func() sqlparse.Expr { return qcol(xAlias, t.sfCol()) }
	qualify := func(e sqlparse.Expr) (sqlparse.Expr, error) {
		return mapExpr(e, func(c *sqlparse.ColumnRef) sqlparse.Expr {
			if c.Table == "" {
				return qcol(sAlias, c.Name)
			}
			return c
		}, func(f *sqlparse.FuncCall) (sqlparse.Expr, error) {
			qualArgs := make([]sqlparse.Expr, len(f.Args))
			for i, a := range f.Args {
				qa, err := mapExpr(a, func(c *sqlparse.ColumnRef) sqlparse.Expr {
					if c.Table == "" {
						return qcol(sAlias, c.Name)
					}
					return c
				}, nil)
				if err != nil {
					return nil, err
				}
				qualArgs[i] = qa
			}
			qf := &sqlparse.FuncCall{Name: f.Name, Args: qualArgs, Star: f.Star}
			return integratedAgg(qf, sf)
		})
	}

	for i, item := range out.Select {
		e, err := qualify(item.Expr)
		if err != nil {
			return nil, err
		}
		out.Select[i] = sqlparse.SelectItem{Expr: e, Alias: item.Alias}
	}
	if out.Where != nil {
		w, err := qualify(out.Where)
		if err != nil {
			return nil, err
		}
		out.Where = &sqlparse.BinaryExpr{Op: "and", Left: join, Right: w}
	} else {
		out.Where = join
	}
	for i, g := range out.GroupBy {
		e, err := qualify(g)
		if err != nil {
			return nil, err
		}
		out.GroupBy[i] = e
	}
	if out.Having != nil {
		h, err := qualify(out.Having)
		if err != nil {
			return nil, err
		}
		out.Having = h
	}
	for i, o := range out.OrderBy {
		e, err := qualify(o.Expr)
		if err != nil {
			return nil, err
		}
		out.OrderBy[i] = sqlparse.OrderItem{Expr: e, Desc: o.Desc}
	}
	return out, nil
}

// mapExpr rebuilds an expression, applying colFn to every column
// reference outside aggregates and aggFn to aggregate calls (when aggFn
// is nil, aggregates are descended into like any other function and
// their column refs mapped with colFn).
func mapExpr(e sqlparse.Expr, colFn func(*sqlparse.ColumnRef) sqlparse.Expr, aggFn func(*sqlparse.FuncCall) (sqlparse.Expr, error)) (sqlparse.Expr, error) {
	switch n := e.(type) {
	case nil:
		return nil, nil
	case *sqlparse.ColumnRef:
		return colFn(n), nil
	case *sqlparse.Literal:
		return n, nil
	case *sqlparse.FuncCall:
		if aggFn != nil && sqlparse.AggregateFuncs[n.Name] {
			return aggFn(n)
		}
		args := make([]sqlparse.Expr, len(n.Args))
		for i, a := range n.Args {
			ai, err := mapExpr(a, colFn, aggFn)
			if err != nil {
				return nil, err
			}
			args[i] = ai
		}
		return &sqlparse.FuncCall{Name: n.Name, Args: args, Star: n.Star, Distinct: n.Distinct}, nil
	case *sqlparse.BinaryExpr:
		l, err := mapExpr(n.Left, colFn, aggFn)
		if err != nil {
			return nil, err
		}
		r, err := mapExpr(n.Right, colFn, aggFn)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BinaryExpr{Op: n.Op, Left: l, Right: r}, nil
	case *sqlparse.UnaryExpr:
		in, err := mapExpr(n.Expr, colFn, aggFn)
		if err != nil {
			return nil, err
		}
		return &sqlparse.UnaryExpr{Op: n.Op, Expr: in}, nil
	case *sqlparse.BetweenExpr:
		x, err := mapExpr(n.Expr, colFn, aggFn)
		if err != nil {
			return nil, err
		}
		lo, err := mapExpr(n.Lo, colFn, aggFn)
		if err != nil {
			return nil, err
		}
		hi, err := mapExpr(n.Hi, colFn, aggFn)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BetweenExpr{Expr: x, Lo: lo, Hi: hi, Not: n.Not}, nil
	case *sqlparse.InExpr:
		x, err := mapExpr(n.Expr, colFn, aggFn)
		if err != nil {
			return nil, err
		}
		list := make([]sqlparse.Expr, len(n.List))
		for i, item := range n.List {
			li, err := mapExpr(item, colFn, aggFn)
			if err != nil {
				return nil, err
			}
			list[i] = li
		}
		return &sqlparse.InExpr{Expr: x, List: list, Not: n.Not}, nil
	case *sqlparse.IsNullExpr:
		x, err := mapExpr(n.Expr, colFn, aggFn)
		if err != nil {
			return nil, err
		}
		return &sqlparse.IsNullExpr{Expr: x, Not: n.Not}, nil
	case *sqlparse.CaseExpr:
		op, err := mapExpr(n.Operand, colFn, aggFn)
		if err != nil {
			return nil, err
		}
		whens := make([]sqlparse.WhenClause, len(n.Whens))
		for i, w := range n.Whens {
			c, err := mapExpr(w.Cond, colFn, aggFn)
			if err != nil {
				return nil, err
			}
			r, err := mapExpr(w.Result, colFn, aggFn)
			if err != nil {
				return nil, err
			}
			whens[i] = sqlparse.WhenClause{Cond: c, Result: r}
		}
		els, err := mapExpr(n.Else, colFn, aggFn)
		if err != nil {
			return nil, err
		}
		return &sqlparse.CaseExpr{Operand: op, Whens: whens, Else: els}, nil
	default:
		return nil, fmt.Errorf("rewrite: unsupported expression %T", e)
	}
}
