package rewrite

import (
	"strings"
	"testing"

	"github.com/approxdb/congress/internal/sqlparse"
)

var testTables = Tables{
	Base:      "lineitem",
	Sample:    "cs_lineitem",
	Aux:       "cs_lineitem_aux",
	GroupCols: []string{"l_returnflag", "l_linestatus"},
}

const userQuery = `select l_returnflag, l_linestatus, sum(l_quantity)
	from lineitem
	where l_shipdate <= '1998-09-01'
	group by l_returnflag, l_linestatus`

func mustRewrite(t *testing.T, q string, strat Strategy, tbl Tables) string {
	t.Helper()
	stmt := sqlparse.MustParse(q)
	out, err := Rewrite(stmt, strat, tbl)
	if err != nil {
		t.Fatalf("%v rewrite failed: %v", strat, err)
	}
	// The rewritten text must itself parse.
	if _, err := sqlparse.Parse(out.String()); err != nil {
		t.Fatalf("%v rewrite produced unparsable SQL %q: %v", strat, out, err)
	}
	return out.String()
}

func TestIntegratedShape(t *testing.T) {
	s := mustRewrite(t, userQuery, Integrated, testTables)
	for _, frag := range []string{"FROM cs_lineitem", "SUM((l_quantity * sf))", "GROUP BY l_returnflag, l_linestatus", "l_shipdate <= '1998-09-01'"} {
		if !strings.Contains(s, frag) {
			t.Errorf("integrated rewrite %q missing %q", s, frag)
		}
	}
	if strings.Contains(s, "lineitem ") && !strings.Contains(s, "cs_lineitem") {
		t.Errorf("base table leaked: %s", s)
	}
}

func TestIntegratedWithErrorColumns(t *testing.T) {
	tbl := testTables
	tbl.WithErrorColumns = true
	s := mustRewrite(t, userQuery, Integrated, tbl)
	if !strings.Contains(s, "SUM_ERROR(l_quantity, sf) AS error1") {
		t.Errorf("missing error column: %s", s)
	}
}

func TestIntegratedCountAvg(t *testing.T) {
	s := mustRewrite(t, "select l_returnflag, count(*), avg(l_quantity) from lineitem group by l_returnflag", Integrated, testTables)
	if !strings.Contains(s, "SUM(sf)") {
		t.Errorf("count not rewritten to SUM(sf): %s", s)
	}
	if !strings.Contains(s, "(SUM((l_quantity * sf)) / SUM(sf))") {
		t.Errorf("avg not rewritten to ratio: %s", s)
	}
}

func TestIntegratedScaledExpression(t *testing.T) {
	// The Figure 2 form: 100*sum(...) — the constant multiplies the
	// already-scaled aggregate.
	s := mustRewrite(t, "select 100*sum(l_quantity) from lineitem", Integrated, testTables)
	if !strings.Contains(s, "(100 * SUM((l_quantity * sf)))") {
		t.Errorf("arithmetic around aggregate lost: %s", s)
	}
}

func TestNestedIntegratedShape(t *testing.T) {
	s := mustRewrite(t, userQuery, NestedIntegrated, testTables)
	for _, frag := range []string{
		"FROM (SELECT l_returnflag, l_linestatus, sf, SUM(l_quantity) AS p0 FROM cs_lineitem",
		"GROUP BY l_returnflag, l_linestatus, sf",
		"SUM((p0 * sf))",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("nested-integrated rewrite %q missing %q", s, frag)
		}
	}
	// The WHERE must move inside the derived table.
	inner := s[strings.Index(s, "("):strings.LastIndex(s, ")")]
	if !strings.Contains(inner, "l_shipdate") {
		t.Errorf("predicate not pushed into inner query: %s", s)
	}
}

func TestNestedIntegratedAvg(t *testing.T) {
	// Figure 13: AVG becomes sum(p_sum*SF)/sum(p_count*SF).
	s := mustRewrite(t, "select l_returnflag, avg(l_quantity) from lineitem group by l_returnflag", NestedIntegrated, testTables)
	if !strings.Contains(s, "SUM((p0 * sf)) / SUM((p1 * sf))") {
		t.Errorf("nested avg shape: %s", s)
	}
	if !strings.Contains(s, "COUNT(*) AS p1") {
		t.Errorf("inner count partial missing: %s", s)
	}
}

func TestNestedIntegratedSharedPartials(t *testing.T) {
	// sum(x) appearing twice should share one inner partial.
	s := mustRewrite(t, "select sum(l_quantity), sum(l_quantity)/2 from lineitem", NestedIntegrated, testTables)
	if strings.Count(s, "SUM(l_quantity) AS p0") != 1 {
		t.Errorf("partials not shared: %s", s)
	}
	if strings.Contains(s, "AS p1") {
		t.Errorf("extra partial allocated: %s", s)
	}
}

func TestNormalizedShape(t *testing.T) {
	s := mustRewrite(t, userQuery, Normalized, testTables)
	for _, frag := range []string{
		"FROM cs_lineitem s, cs_lineitem_aux x",
		"(s.l_returnflag = x.l_returnflag)",
		"(s.l_linestatus = x.l_linestatus)",
		"SUM((s.l_quantity * x.sf))",
		"GROUP BY s.l_returnflag, s.l_linestatus",
		"s.l_shipdate <= '1998-09-01'",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("normalized rewrite %q missing %q", s, frag)
		}
	}
}

func TestKeyNormalizedShape(t *testing.T) {
	s := mustRewrite(t, userQuery, KeyNormalized, testTables)
	if !strings.Contains(s, "(s.gid = x.gid)") {
		t.Errorf("gid join missing: %s", s)
	}
	if strings.Contains(s, "x.l_returnflag") {
		t.Errorf("key-normalized should not join on grouping columns: %s", s)
	}
}

func TestRewriteHavingAndOrderBy(t *testing.T) {
	q := "select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag having sum(l_quantity) > 10 order by sum(l_quantity) desc"
	for _, strat := range Strategies {
		s := mustRewrite(t, q, strat, testTables)
		if !strings.Contains(s, "HAVING") || !strings.Contains(s, "ORDER BY") {
			t.Errorf("%v lost HAVING/ORDER BY: %s", strat, s)
		}
		if strings.Contains(strings.ToUpper(s), "HAVING SUM(L_QUANTITY) >") {
			t.Errorf("%v HAVING not scaled: %s", strat, s)
		}
	}
}

func TestRewriteMinMaxPassThrough(t *testing.T) {
	s := mustRewrite(t, "select l_returnflag, min(l_quantity), max(l_quantity) from lineitem group by l_returnflag", Integrated, testTables)
	if !strings.Contains(s, "MIN(l_quantity)") || !strings.Contains(s, "MAX(l_quantity)") {
		t.Errorf("min/max should pass through unscaled: %s", s)
	}
}

func TestRewriteErrors(t *testing.T) {
	cases := []struct {
		q     string
		strat Strategy
	}{
		{"select sum(q) from othertable", Integrated},
		{"select sum(q) from lineitem, other", Integrated},
		{"select sum(q) from (select q from lineitem)", Integrated},
		{"select * from lineitem", Integrated},
		{"select count(distinct l_quantity) from lineitem", Integrated},
		{"select variance(l_quantity) from lineitem", Integrated},
		{"select sum(l_quantity) from lineitem group by l_returnflag+1", NestedIntegrated},
	}
	for _, c := range cases {
		stmt, err := sqlparse.Parse(c.q)
		if err != nil {
			t.Fatalf("parse %q: %v", c.q, err)
		}
		if _, err := Rewrite(stmt, c.strat, testTables); err == nil {
			t.Errorf("Rewrite(%q, %v) succeeded, want error", c.q, c.strat)
		}
	}
	// Normalized without an aux relation.
	stmt := sqlparse.MustParse("select sum(l_quantity) from lineitem")
	if _, err := Rewrite(stmt, Normalized, Tables{Base: "lineitem", Sample: "s"}); err == nil {
		t.Error("Normalized without aux accepted")
	}
	if _, err := Rewrite(stmt, Strategy(99), testTables); err == nil {
		t.Error("unknown strategy accepted")
	}
	// Normalized needs grouping columns.
	if _, err := Rewrite(stmt, Normalized, Tables{Base: "lineitem", Sample: "s", Aux: "a"}); err == nil {
		t.Error("Normalized without grouping columns accepted")
	}
}

func TestRewriteDoesNotMutateInput(t *testing.T) {
	stmt := sqlparse.MustParse(userQuery)
	before := stmt.String()
	for _, strat := range Strategies {
		if _, err := Rewrite(stmt, strat, testTables); err != nil {
			t.Fatal(err)
		}
	}
	if stmt.String() != before {
		t.Errorf("input AST mutated:\nbefore: %s\nafter:  %s", before, stmt.String())
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		Integrated: "Integrated", NestedIntegrated: "Nested-integrated",
		Normalized: "Normalized", KeyNormalized: "Key-normalized",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d = %q, want %q", s, s.String(), want)
		}
	}
	if Strategy(42).String() == "" {
		t.Error("unknown strategy renders empty")
	}
}
