package rewrite

import (
	"strconv"
	"strings"
	"sync"

	"github.com/approxdb/congress/internal/sqlparse"
)

// PlanCache memoizes Rewrite outputs keyed by (query fingerprint,
// strategy, target tables). Rewriting is pure — it never mutates its
// input and its output depends only on the statement and Tables — so a
// cached plan is valid until the synopsis is re-registered with
// different relation names, at which point the Tables signature in the
// key changes and old plans become unreachable.
//
// Cached plans are shared between callers and must be treated as
// read-only; the engine executes statements without modifying them.
// A nil *PlanCache falls back to calling Rewrite directly.
type PlanCache struct {
	max int

	mu    sync.Mutex
	items map[string]planEntry
}

type planEntry struct {
	stmt *sqlparse.SelectStmt
	err  error
}

// NewPlanCache returns a plan cache bounded to max entries (<= 0
// disables caching and returns nil).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		return nil
	}
	return &PlanCache{max: max, items: make(map[string]planEntry, 64)}
}

// tablesSig folds every field of Tables that affects the rewrite output
// into the cache key.
func tablesSig(t Tables) string {
	var b strings.Builder
	b.WriteString(t.Base)
	b.WriteByte('|')
	b.WriteString(t.Sample)
	b.WriteByte('|')
	b.WriteString(t.Aux)
	b.WriteByte('|')
	b.WriteString(strings.Join(t.GroupCols, ","))
	b.WriteByte('|')
	b.WriteString(t.sfCol())
	b.WriteByte('|')
	b.WriteString(t.gidCol())
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(t.WithErrorColumns))
	return b.String()
}

// Rewrite returns the memoized plan for (fingerprint, strat, t),
// computing and storing it on a miss. Rewrite errors are cached too, so
// a repeatedly submitted unrewritable query fails fast.
func (pc *PlanCache) Rewrite(stmt *sqlparse.SelectStmt, fingerprint string, strat Strategy, t Tables) (*sqlparse.SelectStmt, error) {
	if pc == nil || fingerprint == "" {
		return Rewrite(stmt, strat, t)
	}
	key := fingerprint + "\x00" + strconv.Itoa(int(strat)) + "\x00" + tablesSig(t)
	pc.mu.Lock()
	e, ok := pc.items[key]
	pc.mu.Unlock()
	if ok {
		return e.stmt, e.err
	}
	out, err := Rewrite(stmt, strat, t)
	pc.mu.Lock()
	if len(pc.items) >= pc.max {
		pc.items = make(map[string]planEntry, 64)
	}
	pc.items[key] = planEntry{stmt: out, err: err}
	pc.mu.Unlock()
	return out, err
}

// Len reports the number of memoized plans.
func (pc *PlanCache) Len() int {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.items)
}
