package rewrite

import (
	"strings"
	"testing"

	"github.com/approxdb/congress/internal/sqlparse"
)

// TestRewritePredicateShapes drives every expression-node kind through
// the Normalized qualifier (mapExpr) and the Integrated aggregate
// mapper (mapAggregates).
func TestRewritePredicateShapes(t *testing.T) {
	q := `select l_returnflag,
		sum(case when l_quantity > 5 then l_quantity else 0 end),
		avg(abs(l_quantity))
	from lineitem
	where l_shipdate between '1995-01-01' and '1998-01-01'
		and l_returnflag in (1, 2, 3)
		and l_linestatus is not null
		and not l_quantity > 100
		and -l_quantity < 0
	group by l_returnflag`

	for _, strat := range []Strategy{Integrated, Normalized, KeyNormalized} {
		s := mustRewrite(t, q, strat, testTables)
		if !strings.Contains(s, "BETWEEN") || !strings.Contains(s, "IN (1, 2, 3)") ||
			!strings.Contains(s, "IS NOT NULL") || !strings.Contains(s, "CASE WHEN") {
			t.Errorf("%v dropped predicate structure: %s", strat, s)
		}
	}
	// Normalized must qualify columns inside those predicates.
	s := mustRewrite(t, q, Normalized, testTables)
	for _, frag := range []string{"s.l_shipdate", "s.l_returnflag", "s.l_linestatus"} {
		if !strings.Contains(s, frag) {
			t.Errorf("normalized did not qualify %q: %s", frag, s)
		}
	}
	// Scalar function arguments inside aggregates get qualified too.
	if !strings.Contains(s, "ABS(s.l_quantity)") {
		t.Errorf("normalized did not qualify function args: %s", s)
	}
}

func TestRewriteSimpleCaseAndConcat(t *testing.T) {
	q := `select sum(l_quantity), case l_returnflag when 1 then 'a' else 'b' end
		from lineitem group by case l_returnflag when 1 then 'a' else 'b' end`
	// Group-by on an expression is fine for non-nested strategies.
	for _, strat := range []Strategy{Integrated, Normalized} {
		s := mustRewrite(t, q, strat, testTables)
		if !strings.Contains(s, "CASE l_returnflag") && !strings.Contains(s, "CASE s.l_returnflag") {
			t.Errorf("%v lost simple CASE: %s", strat, s)
		}
	}
}

func TestRewriteQualifiedInputColumns(t *testing.T) {
	// A user query that already qualifies columns with the base table
	// name keeps working under Integrated (the qualifier is left as-is
	// only when it resolves; our Integrated rewrite does not rename).
	q := `select sum(l_quantity) from lineitem where l_quantity > 1`
	s := mustRewrite(t, q, Integrated, testTables)
	if !strings.Contains(s, "FROM cs_lineitem") {
		t.Errorf("integrated rewrite: %s", s)
	}
}

func TestRewriteIntegratedErrorColumnsForCountAvg(t *testing.T) {
	tbl := testTables
	tbl.WithErrorColumns = true
	s := mustRewrite(t, "select count(*), avg(l_quantity) from lineitem", Integrated, tbl)
	if !strings.Contains(s, "COUNT_ERROR(sf)") || !strings.Contains(s, "AVG_ERROR(l_quantity, sf)") {
		t.Errorf("error columns missing: %s", s)
	}
	// min/max contribute no error column.
	s = mustRewrite(t, "select min(l_quantity) from lineitem", Integrated, tbl)
	if strings.Contains(s, "_ERROR") {
		t.Errorf("min should not emit an error column: %s", s)
	}
}

func TestRewriteCustomColumnNames(t *testing.T) {
	tbl := testTables
	tbl.SFCol = "scalef"
	tbl.GIDCol = "groupid"
	s := mustRewrite(t, "select sum(l_quantity) from lineitem", Integrated, tbl)
	if !strings.Contains(s, "scalef") {
		t.Errorf("custom SF column ignored: %s", s)
	}
	s = mustRewrite(t, "select sum(l_quantity) from lineitem", KeyNormalized, tbl)
	if !strings.Contains(s, "s.groupid = x.groupid") {
		t.Errorf("custom GID column ignored: %s", s)
	}
}

func TestRewriteNestedCountColumn(t *testing.T) {
	// COUNT(col) (not star) through Nested-integrated.
	s := mustRewrite(t, "select l_returnflag, count(l_quantity) from lineitem group by l_returnflag", NestedIntegrated, testTables)
	if !strings.Contains(s, "COUNT(l_quantity) AS p0") || !strings.Contains(s, "SUM((p0 * sf))") {
		t.Errorf("nested count(col): %s", s)
	}
}

func TestRewriteNestedMinMax(t *testing.T) {
	s := mustRewrite(t, "select l_returnflag, min(l_quantity), max(l_quantity) from lineitem group by l_returnflag", NestedIntegrated, testTables)
	if !strings.Contains(s, "MIN(l_quantity) AS p0") || !strings.Contains(s, "MIN(p0)") {
		t.Errorf("nested min: %s", s)
	}
	if !strings.Contains(s, "MAX(p1)") {
		t.Errorf("nested max: %s", s)
	}
}

func TestRewriteNestedDistinctKeyword(t *testing.T) {
	stmt := sqlparse.MustParse("select distinct l_returnflag, sum(l_quantity) from lineitem group by l_returnflag")
	out, err := Rewrite(stmt, NestedIntegrated, testTables)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Distinct {
		t.Error("DISTINCT dropped by nested rewrite")
	}
}

func TestRewriteLimitOffsetPreserved(t *testing.T) {
	q := "select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag order by l_returnflag limit 5 offset 2"
	for _, strat := range Strategies {
		s := mustRewrite(t, q, strat, testTables)
		if !strings.Contains(s, "LIMIT 5") || !strings.Contains(s, "OFFSET 2") {
			t.Errorf("%v lost LIMIT/OFFSET: %s", strat, s)
		}
	}
}

// TestIntegratedMapAggregatesArms drives every expression-node kind
// through the Integrated aggregate mapper by embedding aggregates in
// rich select-list expressions.
func TestIntegratedMapAggregatesArms(t *testing.T) {
	q := `select
		case when sum(l_quantity) > 100 then 'big' else 'small' end,
		case sum(l_quantity) when 0 then 1 end,
		sum(l_quantity) between 1 and 10,
		sum(l_quantity) in (1, 2),
		sum(l_quantity) is null,
		-sum(l_quantity),
		abs(sum(l_quantity)),
		not sum(l_quantity) > 5
	from lineitem`
	s := mustRewrite(t, q, Integrated, testTables)
	if strings.Count(s, "SUM((l_quantity * sf))") < 8 {
		t.Errorf("not all aggregate occurrences rewritten: %s", s)
	}
	// The same shapes survive Nested-integrated, sharing one partial.
	s = mustRewrite(t, q, NestedIntegrated, testTables)
	if strings.Count(s, "SUM(l_quantity) AS p0") != 1 {
		t.Errorf("nested partials: %s", s)
	}
}

func TestRewriteVarianceInHavingRejected(t *testing.T) {
	stmt := sqlparse.MustParse("select sum(l_quantity) from lineitem having variance(l_quantity) > 0")
	for _, strat := range Strategies {
		if _, err := Rewrite(stmt, strat, testTables); err == nil {
			t.Errorf("%v accepted VARIANCE in HAVING", strat)
		}
	}
}
