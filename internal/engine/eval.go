package engine

import (
	"fmt"
	"math"
	"strings"

	"github.com/approxdb/congress/internal/sqlparse"
)

// rowEnv maps column references to positions in a (possibly joined) row.
type rowEnv struct {
	cols   []envCol
	byName map[string][]int // lower(name) -> candidate indices
	byQual map[string]int   // lower(table.name) -> index
}

type envCol struct {
	table string // qualifier (alias or table name), lower-cased; may be empty
	name  string // lower-cased
}

func newRowEnv() *rowEnv {
	return &rowEnv{byName: make(map[string][]int), byQual: make(map[string]int)}
}

func (e *rowEnv) add(table, name string) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	idx := len(e.cols)
	e.cols = append(e.cols, envCol{table: table, name: name})
	e.byName[name] = append(e.byName[name], idx)
	if table != "" {
		e.byQual[table+"."+name] = idx
	}
}

// merge appends all columns of o to e.
func (e *rowEnv) merge(o *rowEnv) {
	for _, c := range o.cols {
		e.add(c.table, c.name)
	}
}

func (e *rowEnv) resolve(table, name string) (int, error) {
	name = strings.ToLower(name)
	if table != "" {
		if idx, ok := e.byQual[strings.ToLower(table)+"."+name]; ok {
			return idx, nil
		}
		return -1, fmt.Errorf("engine: unknown column %s.%s", table, name)
	}
	cands := e.byName[name]
	switch len(cands) {
	case 0:
		return -1, fmt.Errorf("engine: unknown column %s", name)
	case 1:
		return cands[0], nil
	default:
		return -1, fmt.Errorf("engine: ambiguous column %s", name)
	}
}

// evalCtx carries everything needed to evaluate an expression against
// one row (and, inside grouped queries, the already-computed aggregate
// values for the current group).
type evalCtx struct {
	env    *rowEnv
	row    Row
	aggs   map[string]Value // aggregate expr rendering -> value
	params []Value
	nParam int
}

func (ctx *evalCtx) eval(e sqlparse.Expr) (Value, error) {
	switch n := e.(type) {
	case *sqlparse.Literal:
		return literalValue(n)
	case *sqlparse.ColumnRef:
		idx, err := ctx.env.resolve(n.Table, n.Name)
		if err != nil {
			return Null, err
		}
		if idx >= len(ctx.row) {
			// Global aggregate over zero input rows: the group has no
			// representative row, so bare column references are NULL.
			return Null, nil
		}
		return ctx.row[idx], nil
	case *sqlparse.BinaryExpr:
		return ctx.evalBinary(n)
	case *sqlparse.UnaryExpr:
		return ctx.evalUnary(n)
	case *sqlparse.BetweenExpr:
		v, err := ctx.eval(n.Expr)
		if err != nil {
			return Null, err
		}
		lo, err := ctx.eval(n.Lo)
		if err != nil {
			return Null, err
		}
		hi, err := ctx.eval(n.Hi)
		if err != nil {
			return Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return NewBool(n.Not), nil
		}
		in := compareCoerced(v, lo) >= 0 && compareCoerced(v, hi) <= 0
		return NewBool(in != n.Not), nil
	case *sqlparse.InExpr:
		v, err := ctx.eval(n.Expr)
		if err != nil {
			return Null, err
		}
		found := false
		for _, item := range n.List {
			iv, err := ctx.eval(item)
			if err != nil {
				return Null, err
			}
			if !v.IsNull() && !iv.IsNull() && compareCoerced(v, iv) == 0 {
				found = true
				break
			}
		}
		return NewBool(found != n.Not), nil
	case *sqlparse.IsNullExpr:
		v, err := ctx.eval(n.Expr)
		if err != nil {
			return Null, err
		}
		return NewBool(v.IsNull() != n.Not), nil
	case *sqlparse.FuncCall:
		if sqlparse.AggregateFuncs[n.Name] {
			if ctx.aggs == nil {
				return Null, fmt.Errorf("engine: aggregate %s used outside grouped query", strings.ToUpper(n.Name))
			}
			v, ok := ctx.aggs[n.String()]
			if !ok {
				return Null, fmt.Errorf("engine: internal: aggregate %s not computed", n.String())
			}
			return v, nil
		}
		return ctx.evalScalarFunc(n)
	case *sqlparse.CaseExpr:
		return ctx.evalCase(n)
	default:
		return Null, fmt.Errorf("engine: unsupported expression %T", e)
	}
}

func literalValue(l *sqlparse.Literal) (Value, error) {
	switch l.Kind {
	case sqlparse.LitNull:
		return Null, nil
	case sqlparse.LitInt:
		return NewInt(l.I), nil
	case sqlparse.LitFloat:
		return NewFloat(l.F), nil
	case sqlparse.LitBool:
		return NewBool(l.B), nil
	case sqlparse.LitDate:
		return ParseDate(l.S)
	default:
		return NewString(l.S), nil
	}
}

// compareCoerced compares values, coercing an ISO-date string against a
// DATE so predicates like l_shipdate <= '1998-09-01' work as they do on
// the paper's testbed.
func compareCoerced(a, b Value) int {
	if a.K == KindDate && b.K == KindString {
		if d, err := ParseDate(b.S); err == nil {
			b = d
		}
	} else if b.K == KindDate && a.K == KindString {
		if d, err := ParseDate(a.S); err == nil {
			a = d
		}
	}
	return a.Compare(b)
}

func (ctx *evalCtx) evalBinary(n *sqlparse.BinaryExpr) (Value, error) {
	switch n.Op {
	case "and":
		l, err := ctx.eval(n.Left)
		if err != nil {
			return Null, err
		}
		if !l.Bool() {
			return NewBool(false), nil
		}
		r, err := ctx.eval(n.Right)
		if err != nil {
			return Null, err
		}
		return NewBool(r.Bool()), nil
	case "or":
		l, err := ctx.eval(n.Left)
		if err != nil {
			return Null, err
		}
		if l.Bool() {
			return NewBool(true), nil
		}
		r, err := ctx.eval(n.Right)
		if err != nil {
			return Null, err
		}
		return NewBool(r.Bool()), nil
	}

	l, err := ctx.eval(n.Left)
	if err != nil {
		return Null, err
	}
	r, err := ctx.eval(n.Right)
	if err != nil {
		return Null, err
	}

	switch n.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return NewBool(false), nil // NULL comparisons are never true
		}
		c := compareCoerced(l, r)
		var ok bool
		switch n.Op {
		case "=":
			ok = c == 0
		case "<>":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return NewBool(ok), nil
	case "like":
		if l.K != KindString || r.K != KindString {
			return NewBool(false), nil
		}
		return NewBool(matchLike(l.S, r.S)), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return NewString(l.String() + r.String()), nil
	case "+", "-", "*", "/", "%":
		return arith(n.Op, l, r)
	default:
		return Null, fmt.Errorf("engine: unsupported operator %q", n.Op)
	}
}

// arith performs SQL arithmetic: integer ops stay integral except
// division, which always yields a float (the rewrites divide scaled sums
// and must not truncate). NULL propagates.
func arith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null, nil
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return Null, fmt.Errorf("engine: non-numeric operand for %q (%s, %s)", op, l.K, r.K)
	}
	intOp := l.K == KindInt && r.K == KindInt
	switch op {
	case "+":
		if intOp {
			return NewInt(l.I + r.I), nil
		}
		return NewFloat(lf + rf), nil
	case "-":
		if intOp {
			return NewInt(l.I - r.I), nil
		}
		return NewFloat(lf - rf), nil
	case "*":
		if intOp {
			return NewInt(l.I * r.I), nil
		}
		return NewFloat(lf * rf), nil
	case "/":
		if rf == 0 {
			return Null, nil
		}
		return NewFloat(lf / rf), nil
	case "%":
		if !intOp || r.I == 0 {
			return Null, nil
		}
		return NewInt(l.I % r.I), nil
	}
	return Null, fmt.Errorf("engine: unknown arithmetic op %q", op)
}

func (ctx *evalCtx) evalUnary(n *sqlparse.UnaryExpr) (Value, error) {
	v, err := ctx.eval(n.Expr)
	if err != nil {
		return Null, err
	}
	switch n.Op {
	case "not":
		return NewBool(!v.Bool()), nil
	case "-":
		switch v.K {
		case KindInt:
			return NewInt(-v.I), nil
		case KindFloat:
			return NewFloat(-v.F), nil
		case KindNull:
			return Null, nil
		default:
			return Null, fmt.Errorf("engine: cannot negate %s", v.K)
		}
	}
	return Null, fmt.Errorf("engine: unknown unary op %q", n.Op)
}

func (ctx *evalCtx) evalCase(n *sqlparse.CaseExpr) (Value, error) {
	if n.Operand != nil {
		op, err := ctx.eval(n.Operand)
		if err != nil {
			return Null, err
		}
		for _, w := range n.Whens {
			wv, err := ctx.eval(w.Cond)
			if err != nil {
				return Null, err
			}
			if !op.IsNull() && !wv.IsNull() && compareCoerced(op, wv) == 0 {
				return ctx.eval(w.Result)
			}
		}
	} else {
		for _, w := range n.Whens {
			cv, err := ctx.eval(w.Cond)
			if err != nil {
				return Null, err
			}
			if cv.Bool() {
				return ctx.eval(w.Result)
			}
		}
	}
	if n.Else != nil {
		return ctx.eval(n.Else)
	}
	return Null, nil
}

func (ctx *evalCtx) evalScalarFunc(n *sqlparse.FuncCall) (Value, error) {
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := ctx.eval(a)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	need := func(k int) error {
		if len(args) != k {
			return fmt.Errorf("engine: %s expects %d argument(s), got %d", strings.ToUpper(n.Name), k, len(args))
		}
		return nil
	}
	num := func(i int) (float64, bool) { return args[i].AsFloat() }

	switch n.Name {
	case "abs":
		if err := need(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		if args[0].K == KindInt {
			if args[0].I < 0 {
				return NewInt(-args[0].I), nil
			}
			return args[0], nil
		}
		f, _ := num(0)
		return NewFloat(math.Abs(f)), nil
	case "sqrt":
		if err := need(1); err != nil {
			return Null, err
		}
		f, ok := num(0)
		if !ok {
			return Null, nil
		}
		return NewFloat(math.Sqrt(f)), nil
	case "ln":
		if err := need(1); err != nil {
			return Null, err
		}
		f, ok := num(0)
		if !ok || f <= 0 {
			return Null, nil
		}
		return NewFloat(math.Log(f)), nil
	case "exp":
		if err := need(1); err != nil {
			return Null, err
		}
		f, ok := num(0)
		if !ok {
			return Null, nil
		}
		return NewFloat(math.Exp(f)), nil
	case "power":
		if err := need(2); err != nil {
			return Null, err
		}
		b, ok1 := num(0)
		e, ok2 := num(1)
		if !ok1 || !ok2 {
			return Null, nil
		}
		return NewFloat(math.Pow(b, e)), nil
	case "round":
		if len(args) == 1 {
			f, ok := num(0)
			if !ok {
				return Null, nil
			}
			return NewFloat(math.Round(f)), nil
		}
		if err := need(2); err != nil {
			return Null, err
		}
		f, ok1 := num(0)
		d, ok2 := args[1].AsInt()
		if !ok1 || !ok2 {
			return Null, nil
		}
		scale := math.Pow(10, float64(d))
		return NewFloat(math.Round(f*scale) / scale), nil
	case "floor":
		if err := need(1); err != nil {
			return Null, err
		}
		f, ok := num(0)
		if !ok {
			return Null, nil
		}
		return NewFloat(math.Floor(f)), nil
	case "ceil", "ceiling":
		if err := need(1); err != nil {
			return Null, err
		}
		f, ok := num(0)
		if !ok {
			return Null, nil
		}
		return NewFloat(math.Ceil(f)), nil
	case "mod":
		if err := need(2); err != nil {
			return Null, err
		}
		return arith("%", args[0], args[1])
	case "lower":
		if err := need(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewString(strings.ToLower(args[0].String())), nil
	case "upper":
		if err := need(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewString(strings.ToUpper(args[0].String())), nil
	case "length":
		if err := need(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewInt(int64(len(args[0].String()))), nil
	case "substr", "substring":
		if len(args) < 2 || len(args) > 3 {
			return Null, fmt.Errorf("engine: SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		s := args[0].String()
		start, _ := args[1].AsInt()
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return NewString(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			ln, _ := args[2].AsInt()
			if ln < 0 {
				ln = 0
			}
			if int(ln) < len(out) {
				out = out[:ln]
			}
		}
		return NewString(out), nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	case "nullif":
		if err := need(2); err != nil {
			return Null, err
		}
		if !args[0].IsNull() && !args[1].IsNull() && compareCoerced(args[0], args[1]) == 0 {
			return Null, nil
		}
		return args[0], nil
	case "year":
		if err := need(1); err != nil {
			return Null, err
		}
		if args[0].K != KindDate {
			return Null, nil
		}
		return NewInt(int64(epochDaysToYear(args[0].I))), nil
	default:
		return Null, fmt.Errorf("engine: unknown function %s", strings.ToUpper(n.Name))
	}
}

func epochDaysToYear(days int64) int {
	// 1970-01-01 + days; cheap conversion via civil-from-days algorithm.
	z := days + 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	if mp >= 10 {
		y++
	}
	return int(y)
}

// matchLike implements SQL LIKE with % (any run) and _ (any single
// character) wildcards, matching bytes (the dialect is ASCII-oriented).
func matchLike(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Dynamic programming over pattern positions with greedy % handling.
	var si, pi int
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
