package engine

import (
	"math"
	"testing"
)

func TestScalarMathFunctions(t *testing.T) {
	cat := NewCatalog()
	res := mustQuery(t, cat, "select ln(exp(2.0)), power(2, 10), mod(17, 5), floor(2.9), ceil(2.1), ceiling(2.1), round(2.4)")
	row := res.Rows[0]
	if math.Abs(row[0].F-2) > 1e-9 {
		t.Errorf("ln(exp(2)) = %v", row[0])
	}
	if row[1].F != 1024 {
		t.Errorf("power %v", row[1])
	}
	if row[2].I != 2 {
		t.Errorf("mod %v", row[2])
	}
	if row[3].F != 2 || row[4].F != 3 || row[5].F != 3 {
		t.Errorf("floor/ceil %v %v %v", row[3], row[4], row[5])
	}
	if row[6].F != 2 {
		t.Errorf("round %v", row[6])
	}
}

func TestScalarStringFunctions(t *testing.T) {
	cat := NewCatalog()
	res := mustQuery(t, cat, "select lower('ABC'), substr('hello', 2), substr('hello', 2, 2), substr('hi', 99), 'a' || 'b' || 1")
	row := res.Rows[0]
	if row[0].S != "abc" {
		t.Errorf("lower %v", row[0])
	}
	if row[1].S != "ello" || row[2].S != "el" || row[3].S != "" {
		t.Errorf("substr %v %v %v", row[1], row[2], row[3])
	}
	if row[4].S != "ab1" {
		t.Errorf("concat %v", row[4])
	}
}

func TestScalarNullPropagation(t *testing.T) {
	cat := NewCatalog()
	res := mustQuery(t, cat, "select abs(null), sqrt(null), lower(null), null + 1, null || 'x', ln(-1), 1/0, mod(1, 0)")
	for i, v := range res.Rows[0] {
		if !v.IsNull() {
			t.Errorf("column %d = %v, want NULL", i, v)
		}
	}
}

func TestScalarFunctionArityErrors(t *testing.T) {
	cat := NewCatalog()
	for _, q := range []string{
		"select abs(1, 2)",
		"select sqrt()",
		"select power(2)",
		"select substr('x')",
		"select substr('x', 1, 2, 3)",
		"select nullif(1)",
	} {
		if _, err := ExecuteSQL(cat, q); err == nil {
			t.Errorf("%q accepted", q)
		}
	}
}

func TestLikeSemantics(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%lo", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"abc", "a%c%", true},
		{"aXbXc", "a%b%c", true},
		{"ab", "a%b%c", false},
	}
	for _, c := range cases {
		if got := matchLike(c.s, c.p); got != c.want {
			t.Errorf("LIKE(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestUnaryMinusOnNonNumeric(t *testing.T) {
	cat := fixture(t)
	if _, err := ExecuteSQL(cat, "select -region from sales"); err == nil {
		t.Error("negating a string accepted")
	}
}

func TestCaseWithoutElseYieldsNull(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select case when qty > 1000 then 1 end from sales where id = 1")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("case without else = %v", res.Rows[0][0])
	}
}

func TestBetweenWithNullOperand(t *testing.T) {
	cat := NewCatalog()
	rel := NewRelation("t", MustSchema(Column{Name: "v", Kind: KindInt}))
	rel.Insert(Row{Null})
	rel.Insert(Row{NewInt(5)})
	cat.Register(rel)
	res := mustQuery(t, cat, "select count(*) from t where v between 1 and 10")
	if res.Rows[0][0].I != 1 {
		t.Errorf("between over null = %v", res.Rows[0][0])
	}
	res = mustQuery(t, cat, "select count(*) from t where v not between 1 and 4")
	if res.Rows[0][0].I != 2 { // NULL NOT BETWEEN evaluates true under our three-valued shortcut
		t.Errorf("not between = %v", res.Rows[0][0])
	}
}

func TestYearFunction(t *testing.T) {
	cat := NewCatalog()
	rel := NewRelation("d", MustSchema(Column{Name: "day", Kind: KindDate}))
	for _, s := range []string{"1970-01-01", "1969-12-31", "2000-02-29", "1992-07-14"} {
		rel.Insert(Row{MustParseDate(s)})
	}
	cat.Register(rel)
	res := mustQuery(t, cat, "select year(day) from d")
	want := []int64{1970, 1969, 2000, 1992}
	for i, row := range res.Rows {
		if row[0].I != want[i] {
			t.Errorf("year #%d = %v, want %d", i, row[0], want[i])
		}
	}
	// year of non-date is NULL
	res = mustQuery(t, cat, "select year(1)")
	if !res.Rows[0][0].IsNull() {
		t.Error("year(int) should be NULL")
	}
}

func TestGlobalAggregateWithBareColumnOverEmptyInput(t *testing.T) {
	// No GROUP BY, zero qualifying rows, but a bare column in the
	// select list: the synthesized empty group has no representative
	// row, so the column is NULL (and must not panic).
	cat := fixture(t)
	res := mustQuery(t, cat, "select region, sum(qty) from sales where qty > 99999")
	if len(res.Rows) != 1 {
		t.Fatalf("rows %v", res.Rows)
	}
	if !res.Rows[0][0].IsNull() || !res.Rows[0][1].IsNull() {
		t.Errorf("want NULL,NULL got %v", res.Rows[0])
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select sum(qty) from sales having count(*) > 100")
	if len(res.Rows) != 0 {
		t.Errorf("having filtered global group: %v", res.Rows)
	}
	res = mustQuery(t, cat, "select sum(qty) from sales having count(*) > 1")
	if len(res.Rows) != 1 {
		t.Errorf("having kept global group: %v", res.Rows)
	}
}

func TestLimitZero(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select id from sales limit 0")
	if len(res.Rows) != 0 {
		t.Errorf("limit 0 returned %d rows", len(res.Rows))
	}
}

func TestOrderByMultipleKeysAndNulls(t *testing.T) {
	cat := NewCatalog()
	rel := NewRelation("t", MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindInt}))
	rel.InsertAll([]Row{
		{NewInt(1), NewInt(2)},
		{NewInt(1), Null},
		{NewInt(0), NewInt(9)},
	})
	cat.Register(rel)
	res := mustQuery(t, cat, "select a, b from t order by a, b")
	// NULL sorts first within a=1.
	if res.Rows[0][0].I != 0 || !res.Rows[1][1].IsNull() || res.Rows[2][1].I != 2 {
		t.Errorf("order %v", res.Rows)
	}
}

func TestInListWithNulls(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select count(*) from sales where region in ('east', null)")
	if res.Rows[0][0].I != 3 {
		t.Errorf("in with null = %v", res.Rows[0][0])
	}
}

func TestEmptyRelationQueries(t *testing.T) {
	cat := NewCatalog()
	rel := NewRelation("e", MustSchema(Column{Name: "x", Kind: KindInt}))
	cat.Register(rel)
	res := mustQuery(t, cat, "select x from e")
	if len(res.Rows) != 0 {
		t.Error("rows from empty relation")
	}
	res = mustQuery(t, cat, "select x, sum(x) from e group by x")
	if len(res.Rows) != 0 {
		t.Error("groups from empty relation")
	}
	res = mustQuery(t, cat, "select min(x), max(x), avg(x) from e")
	for _, v := range res.Rows[0] {
		if !v.IsNull() {
			t.Errorf("aggregate over empty should be NULL, got %v", v)
		}
	}
}

func TestCrossJoinEmptySide(t *testing.T) {
	cat := fixture(t)
	empty := NewRelation("empty", MustSchema(Column{Name: "z", Kind: KindInt}))
	cat.Register(empty)
	res := mustQuery(t, cat, "select count(*) from sales, empty")
	if res.Rows[0][0].I != 0 {
		t.Errorf("cross join with empty = %v", res.Rows[0][0])
	}
}

func TestCompareCoercedDateString(t *testing.T) {
	d := MustParseDate("1998-01-01")
	if compareCoerced(d, NewString("1998-01-01")) != 0 {
		t.Error("date = iso-string failed")
	}
	if compareCoerced(NewString("1999-01-01"), d) <= 0 {
		t.Error("string-date ordering failed")
	}
	// Unparseable strings fall back to kind ordering, not a panic.
	_ = compareCoerced(d, NewString("not a date"))
}
